package mercury

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/trace"
)

func bootSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return sys
}

func TestBootAllTrees(t *testing.T) {
	for _, name := range []string{"I", "II", "IIp", "III", "IV", "V"} {
		name := name
		t.Run("tree"+name, func(t *testing.T) {
			sys := bootSystem(t, Config{Seed: 1, TreeName: name, Policy: PolicyPerfect})
			if !sys.Mgr.AllServing(sys.Components()...) {
				t.Fatal("not all components serving after boot")
			}
		})
	}
}

func TestUnknownTreeRejected(t *testing.T) {
	if _, err := NewSystem(Config{TreeName: "VII"}); !errors.Is(err, ErrUnknownTree) {
		t.Fatalf("err = %v", err)
	}
}

func TestMeasureRecoveryRequiresBoot(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MeasureRecovery(Fault{Component: "rtu"}, time.Minute); !errors.Is(err, ErrNotBooted) {
		t.Fatalf("err = %v", err)
	}
	if err := sys.Inject(Fault{Component: "rtu"}); !errors.Is(err, ErrNotBooted) {
		t.Fatalf("Inject err = %v", err)
	}
}

func TestDoubleBootRejected(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 1})
	if err := sys.Boot(); err == nil {
		t.Fatal("second Boot accepted")
	}
}

func TestTreeIIRecoveryIsPartial(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 2, TreeName: "II", Policy: PolicyPerfect})
	d, err := sys.MeasureRecovery(Fault{Component: "rtu"}, time.Minute)
	if err != nil {
		t.Fatalf("MeasureRecovery: %v", err)
	}
	// Paper: 5.59 s. Accept the right neighbourhood.
	if d < 4*time.Second || d > 8*time.Second {
		t.Fatalf("tree II rtu recovery = %v, want ~5.6s", d)
	}
	// Only rtu restarted.
	for _, c := range sys.Components() {
		n, _ := sys.Mgr.Restarts(c)
		if c == "rtu" && n != 1 {
			t.Fatalf("rtu restarts = %d", n)
		}
		if c != "rtu" && n != 0 {
			t.Fatalf("%s restarted %d times under partial restart", c, n)
		}
	}
}

func TestTreeIRecoveryIsTotal(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 3, TreeName: "I", Policy: PolicyPerfect})
	d, err := sys.MeasureRecovery(Fault{Component: "rtu"}, 2*time.Minute)
	if err != nil {
		t.Fatalf("MeasureRecovery: %v", err)
	}
	// Paper: 24.75 s for any component under tree I.
	if d < 20*time.Second || d > 30*time.Second {
		t.Fatalf("tree I recovery = %v, want ~24.75s", d)
	}
	// Everything was restarted together.
	for _, c := range sys.Components() {
		if n, _ := sys.Mgr.Restarts(c); n != 1 {
			t.Fatalf("%s restarts = %d under whole-system restart", c, n)
		}
	}
}

func TestTreeIVConsolidatedRecovery(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 4, TreeName: "IV", Policy: PolicyPerfect})
	d, err := sys.MeasureRecovery(Fault{Component: "ses"}, time.Minute)
	if err != nil {
		t.Fatalf("MeasureRecovery: %v", err)
	}
	// Paper: 6.25 s (max-based), versus ~9.5 s sequential under tree III.
	if d > 8*time.Second {
		t.Fatalf("tree IV ses recovery = %v, want ~6s", d)
	}
	// Both trackers restarted exactly once, together.
	for _, c := range []string{"ses", "str"} {
		if n, _ := sys.Mgr.Restarts(c); n != 1 {
			t.Fatalf("%s restarts = %d", c, n)
		}
	}
}

func TestTreeIIISequentialTrackerRecovery(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 5, TreeName: "III", Policy: PolicyPerfect})
	d, err := sys.MeasureRecovery(Fault{Component: "ses"}, time.Minute)
	if err != nil {
		t.Fatalf("MeasureRecovery: %v", err)
	}
	// Paper: 9.50 s — ses restart induces a str failure, handled serially.
	if d < 7*time.Second || d > 13*time.Second {
		t.Fatalf("tree III ses recovery = %v, want ~9.5s", d)
	}
	if n, _ := sys.Mgr.Restarts("str"); n != 1 {
		t.Fatalf("str restarts = %d (induced failure not recovered)", n)
	}
}

func TestFaultyOracleEscalatesOnJointFault(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 6, TreeName: "IV", Policy: PolicyFaulty, FaultyP: 1.0})
	d, err := sys.MeasureRecovery(Fault{Component: "pbcom", Cure: []string{"fedr", "pbcom"}}, 3*time.Minute)
	if err != nil {
		t.Fatalf("MeasureRecovery: %v", err)
	}
	// Always-wrong: pbcom alone (~21s), persist, then joint (~21s): ~42s+.
	if d < 35*time.Second {
		t.Fatalf("always-wrong faulty oracle recovered in %v; too fast", d)
	}
}

func TestTreeVImmuneToFaultyOracle(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 7, TreeName: "V", Policy: PolicyFaulty, FaultyP: 1.0})
	d, err := sys.MeasureRecovery(Fault{Component: "pbcom", Cure: []string{"fedr", "pbcom"}}, 2*time.Minute)
	if err != nil {
		t.Fatalf("MeasureRecovery: %v", err)
	}
	// In tree V pbcom's cell already includes fedr: a guess-too-low
	// mistake is structurally impossible, so one joint restart suffices.
	if d > 26*time.Second {
		t.Fatalf("tree V pbcom recovery with faulty oracle = %v, want ~22s", d)
	}
}

func TestDisableRecovery(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 8, TreeName: "IV", DisableRecovery: true})
	if err := sys.Inject(Fault{Component: "rtu"}); err != nil {
		t.Fatal(err)
	}
	_ = sys.RunFor(time.Minute)
	if sys.Mgr.Serving("rtu") {
		t.Fatal("rtu recovered without FD/REC")
	}
}

func TestSystemRecoveredLoggedOnce(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 9, TreeName: "II", Policy: PolicyPerfect})
	if _, err := sys.MeasureRecovery(Fault{Component: "rtu"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	_ = sys.RunFor(30 * time.Second)
	recs := sys.Log.Filter(func(e trace.Event) bool { return e.Kind == trace.SystemRecovered })
	if len(recs) != 1 {
		t.Fatalf("SystemRecovered logged %d times, want 1", len(recs))
	}
}

func TestBackToBackRecoveries(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 10, TreeName: "IV", Policy: PolicyPerfect})
	var prev time.Duration
	for i := 0; i < 3; i++ {
		d, err := sys.MeasureRecovery(Fault{Component: "rtu"}, time.Minute)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if d <= 0 {
			t.Fatalf("trial %d: non-positive recovery %v", i, d)
		}
		prev = d
		_ = sys.RunFor(10 * time.Second) // settle between trials
	}
	_ = prev
}

func TestLearningOracleConverges(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 11, TreeName: "IV", Policy: PolicyLearning})
	joint := Fault{Component: "pbcom", Cure: []string{"fedr", "pbcom"}}
	var first, last time.Duration
	const rounds = 5
	for i := 0; i < rounds; i++ {
		d, err := sys.MeasureRecovery(joint, 4*time.Minute)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if i == 0 {
			first = d
		}
		last = d
		_ = sys.RunFor(30 * time.Second) // let the verdict window close
	}
	// Round 1 escalates (~43s); once learned, one joint restart (~22s).
	if last >= first {
		t.Fatalf("learning oracle did not improve: first=%v last=%v", first, last)
	}
	if last > 26*time.Second {
		t.Fatalf("converged recovery still slow: %v", last)
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{PolicyEscalating, PolicyPerfect, PolicyFaulty, PolicyLearning} {
		if strings.Contains(p.String(), "policy(") {
			t.Fatalf("missing name for %d", p)
		}
	}
	if !strings.Contains(Policy(99).String(), "99") {
		t.Fatal("unknown policy string")
	}
}

func TestDeterministicMeasurements(t *testing.T) {
	measure := func() time.Duration {
		sys := bootSystem(t, Config{Seed: 77, TreeName: "IV", Policy: PolicyPerfect})
		d, err := sys.MeasureRecovery(Fault{Component: "str"}, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, b := measure(), measure(); a != b {
		t.Fatalf("same seed, different measurements: %v vs %v", a, b)
	}
}

func TestHangRecovery(t *testing.T) {
	sys := bootSystem(t, Config{Seed: 30, TreeName: "IV", Policy: PolicyPerfect})
	d, err := sys.MeasureRecovery(Fault{Component: "rtu", Hang: true}, time.Minute)
	if err != nil {
		t.Fatalf("MeasureRecovery: %v", err)
	}
	// A hang is detected and cured exactly like a crash.
	if d < 4*time.Second || d > 8*time.Second {
		t.Fatalf("hang recovery = %v, want ~5.6s", d)
	}
}
