// Satellite pass: the paper's §5.2 "not all downtime is the same"
// argument, live. A front-end failure strikes two minutes into a satellite
// pass. Under the original tree I the whole-system recovery (~25 s)
// exceeds what the link tolerates and the session is lost; under tree IV
// the partial restart (~6 s) rides it out and nearly all science data
// survives.
package main

import (
	"fmt"
	"log"

	"github.com/recursive-restart/mercury/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Downtime during a satellite pass (paper §5.2) ===")
	fmt.Printf("downlink %.1f kbps; link tolerates %v of outage mid-pass\n\n",
		experiment.DataRateKbps, experiment.LinkBreakThreshold)

	for _, tree := range []string{"I", "IV"} {
		o, err := experiment.SatPass(tree, 42)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderPassOutcome(o))
	}

	fmt.Println("A large MTTF cannot guarantee a failure-free pass, but a short MTTR")
	fmt.Println("provides high assurance that a failure will not cost the whole pass.")
	return nil
}
