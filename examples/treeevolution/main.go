// Tree evolution: walk the paper's §4 narrative live. Starting from the
// trivial restart tree (any failure → whole-system reboot), apply depth
// augmentation, the fedrcom split, group consolidation and node promotion,
// measuring the recovery times that motivate each transformation.
package main

import (
	"fmt"
	"log"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// measure runs a few trials of one cell and returns the mean in seconds.
func measure(tree string, policy mercury.Policy, p float64, comp string, cure []string, seed int64) (float64, error) {
	s, err := experiment.RunCell(experiment.Cell{
		Tree: tree, Policy: policy, FaultyP: p, Component: comp, Cure: cure,
	}, 5, seed)
	if err != nil {
		return 0, err
	}
	return s.MeanSeconds(), nil
}

func run() error {
	fmt.Println("=== Evolving Mercury's restart tree (paper §4) ===")
	start := time.Now()

	sysI, err := mercury.NewSystem(mercury.Config{Seed: 1, TreeName: "I"})
	if err != nil {
		return err
	}
	fmt.Println(sysI.Trees["I"].Render())
	fmt.Println("Tree I: the only policy is a total reboot. Failing the cheap rtu")
	fmt.Println("still costs a full fedrcom restart:")
	rtuI, err := measure("I", mercury.PolicyPerfect, 0, "rtu", nil, 100)
	if err != nil {
		return err
	}
	fmt.Printf("  rtu failure → %.2f s (paper: 24.75 s)\n\n", rtuI)

	fmt.Println(sysI.Trees["II"].Render())
	fmt.Println("Tree II (simple depth augmentation): each component gets its own cell.")
	rtuII, err := measure("II", mercury.PolicyPerfect, 0, "rtu", nil, 200)
	if err != nil {
		return err
	}
	fedrcomII, err := measure("II", mercury.PolicyPerfect, 0, "fedrcom", nil, 300)
	if err != nil {
		return err
	}
	fmt.Printf("  rtu     → %.2f s (paper 5.59); fedrcom → %.2f s (paper 20.93)\n", rtuII, fedrcomII)
	fmt.Printf("  %.1f× faster for rtu — but fedrcom is still slow AND fails often.\n\n", rtuI/rtuII)

	fmt.Println(sysI.Trees["III"].Render())
	fmt.Println("Tree III (subtree depth augmentation): fedrcom splits into fedr (buggy,")
	fmt.Println("fast restart) + pbcom (stable, slow serial negotiation).")
	fedrIII, err := measure("III", mercury.PolicyPerfect, 0, "fedr", nil, 400)
	if err != nil {
		return err
	}
	sesIII, err := measure("III", mercury.PolicyPerfect, 0, "ses", nil, 500)
	if err != nil {
		return err
	}
	fmt.Printf("  fedr → %.2f s (paper 5.76): the frequent failures became cheap.\n", fedrIII)
	fmt.Printf("  ses  → %.2f s (paper 9.50): still slow — restarting ses crashes str.\n\n", sesIII)

	fmt.Println(sysI.Trees["IV"].Render())
	fmt.Println("Tree IV (group consolidation): ses and str share a cell, so correlated")
	fmt.Println("failures cost max(MTTR_ses, MTTR_str) instead of the sum.")
	sesIV, err := measure("IV", mercury.PolicyPerfect, 0, "ses", nil, 600)
	if err != nil {
		return err
	}
	fmt.Printf("  ses → %.2f s (paper 6.25)\n\n", sesIV)

	cure := []string{"fedr", "pbcom"}
	pbIV, err := measure("IV", mercury.PolicyFaulty, experiment.FaultyP, "pbcom", cure, 700)
	if err != nil {
		return err
	}
	fmt.Println(sysI.Trees["V"].Render())
	fmt.Println("Tree V (node promotion): with a 30%-wrong oracle, tree IV pays for")
	fmt.Println("guess-too-low mistakes on pbcom; tree V makes them impossible.")
	pbV, err := measure("V", mercury.PolicyFaulty, experiment.FaultyP, "pbcom", cure, 800)
	if err != nil {
		return err
	}
	fmt.Printf("  pbcom joint failure, faulty oracle: IV → %.2f s (paper 29.19),"+
		" V → %.2f s (paper 21.63)\n\n", pbIV, pbV)

	fmt.Printf("done in %v of wall time (all measurements in simulated time)\n",
		time.Since(start).Round(time.Millisecond))
	return nil
}
