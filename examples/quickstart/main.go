// Quickstart: boot the recursively restartable Mercury ground station with
// restart tree IV, kill the radio tuner, and watch the failure detector
// and recoverer bring the system back automatically.
package main

import (
	"fmt"
	"log"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed:     2002,
		TreeName: "IV",
		Policy:   mercury.PolicyEscalating, // the realistic production policy
	})
	if err != nil {
		return err
	}

	// Stream the interesting trace events as they happen.
	bootDone := false
	sys.Log.Subscribe(func(e trace.Event) {
		if !bootDone {
			return
		}
		switch e.Kind {
		case trace.FaultInjected, trace.FailureDetected, trace.OracleGuess,
			trace.RestartRequested, trace.ComponentReady, trace.SystemRecovered:
			fmt.Println("  ", e)
		}
	})

	fmt.Println("booting Mercury (restart tree IV, escalating oracle)...")
	if err := sys.Boot(); err != nil {
		return err
	}
	bootDone = true
	fmt.Println("station is up:", sys.Components())
	fmt.Println()
	fmt.Println(sys.Tree.Render())

	fmt.Println("killing rtu (SIGKILL, fail-silent)...")
	d, err := sys.MeasureRecovery(mercury.Fault{Component: "rtu"}, time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("\nautomated recovery in %.2f s (paper tree IV: 5.59 s)\n", d.Seconds())

	fmt.Println("\nnow a correlated failure: ses (restarting it will crash str too)...")
	d, err = sys.MeasureRecovery(mercury.Fault{Component: "ses"}, time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("\nautomated recovery in %.2f s (paper tree IV: 6.25 s — both trackers\n", d.Seconds())
	fmt.Println("restarted together because the tree consolidates them into one cell)")
	return nil
}
