// Learning oracle: the paper's §7 future work, implemented. The oracle
// starts with no knowledge of Mercury's failure structure and repeatedly
// faces pbcom failures that only a joint [fedr pbcom] restart cures. Each
// episode it updates its f estimates from the restart outcome; after a few
// rounds it recommends the joint restart immediately and recovery time
// halves.
package main

import (
	"fmt"
	"log"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed:     7,
		TreeName: "IV",
		Policy:   mercury.PolicyLearning,
	})
	if err != nil {
		return err
	}
	if err := sys.Boot(); err != nil {
		return err
	}
	fmt.Println("=== Oracle that learns f estimates from its mistakes (paper §7) ===")
	fmt.Println(sys.Tree.Render())

	joint := mercury.Fault{Component: "pbcom", Cure: []string{"fedr", "pbcom"}}
	for round := 1; round <= 6; round++ {
		d, err := sys.MeasureRecovery(joint, 5*time.Minute)
		if err != nil {
			return err
		}
		fmt.Printf("round %d: pbcom joint failure recovered in %6.2f s\n", round, d.Seconds())
		// Let the persistence window close so the outcome is observed.
		if err := sys.RunFor(30 * time.Second); err != nil {
			return err
		}
	}

	if lo, ok := sys.Oracle.(*core.LearningOracle); ok {
		fmt.Println("\nlearned cure-probability estimates for failures at pbcom:")
		fmt.Print(lo.Estimates("pbcom"))
	}
	fmt.Println("\nthe oracle converged on the joint [fedr pbcom] restart: no more")
	fmt.Println("wasted pbcom-only restarts, matching the minimal restart policy.")
	fmt.Println("(an occasional slow round is the oracle's 5% deliberate exploration,")
	fmt.Println("which keeps the estimates honest if the system's behaviour changes)")
	return nil
}
