package sim

import "time"

// Shard is the scheduling surface a simulation kernel exposes to a
// coordinator that drives many kernels side by side. *Kernel implements it;
// extracting the interface keeps the fleet scheduler (fleet.go) decoupled
// from the kernel's internals, so a shard can equally be a raw kernel or a
// kernel wrapped with domain state (a station group, its buses, its
// cross-link terminals).
type Shard interface {
	// Now returns the shard's current virtual time.
	Now() time.Time
	// RunUntil executes local events with timestamps at or before target,
	// then advances the shard clock to target.
	RunUntil(target time.Time) error
	// RunFor executes events for d of virtual time from the current instant.
	RunFor(d time.Duration) error
	// Step pops and executes the next local event, reporting false when the
	// local queue is empty.
	Step() bool
	// Pending reports the number of scheduled local events.
	Pending() int
	// Executed reports how many local events have run so far.
	Executed() uint64
}

var _ Shard = (*Kernel)(nil)

// Parcel is one cross-shard hand-off: a message (or any payload) produced
// on one shard during an epoch and due on another shard at a later virtual
// instant. Parcels are the only way state crosses shard boundaries, and
// they cross only at epoch barriers, in (From, Seq) order — which is what
// makes a multi-core fleet run byte-identical to a single-core one.
type Parcel struct {
	// From and To are shard indices in the fleet.
	From, To int
	// At is the delivery instant. The conservative-lookahead protocol
	// requires At to be at or after the end of the epoch in which the
	// parcel was produced (link latency >= epoch length); the fleet rejects
	// violations with ErrLookahead rather than silently losing determinism.
	At time.Time
	// Seq orders parcels from the same source shard within one epoch.
	Seq uint64
	// Payload is the carried value; the fleet never inspects it.
	Payload any
}

// FleetShard is one member of a Fleet: a shard kernel plus the cross-shard
// exchange hooks the barrier protocol calls. CollectOutbound and Inject are
// only invoked on the coordinator goroutine, between epochs, so
// implementations need no locking of their own.
type FleetShard interface {
	Shard
	// CollectOutbound appends the parcels produced since the previous
	// barrier to dst (in send order) and resets the outbound queue.
	CollectOutbound(dst []Parcel) []Parcel
	// Inject schedules an inbound parcel for local handling at p.At.
	Inject(p Parcel)
}
