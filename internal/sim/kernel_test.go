package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAfterFuncOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	k.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	k.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	k := New(1)
	start := k.Now()
	var at time.Time
	k.AfterFunc(90*time.Second, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := at.Sub(start); got != 90*time.Second {
		t.Fatalf("event ran at +%v, want +90s", got)
	}
	if k.Now() != start.Add(90*time.Second) {
		t.Fatalf("kernel now = %v", k.Now())
	}
}

func TestNegativeDelayRunsImmediately(t *testing.T) {
	k := New(1)
	ran := false
	k.AfterFunc(-time.Second, func() { ran = true })
	if !k.Step() {
		t.Fatal("Step found no event")
	}
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if k.Now() != Epoch {
		t.Fatalf("clock moved backwards: %v", k.Now())
	}
}

func TestTimerStop(t *testing.T) {
	k := New(1)
	ran := false
	tm := k.AfterFunc(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on live timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	k := New(1)
	tm := k.AfterFunc(0, func() {})
	k.Step()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := New(1)
	fired := 0
	k.AfterFunc(time.Second, func() { fired++ })
	k.AfterFunc(time.Hour, func() { fired++ })
	if err := k.RunUntil(Epoch.Add(time.Minute)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != Epoch.Add(time.Minute) {
		t.Fatalf("now = %v, want +1m", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

func TestRunWhile(t *testing.T) {
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 5 {
			k.AfterFunc(time.Second, tick)
		}
	}
	k.AfterFunc(time.Second, tick)
	if err := k.RunWhile(func() bool { return n < 3 }); err != nil {
		t.Fatalf("RunWhile: %v", err)
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
}

func TestRunWhileDeadlock(t *testing.T) {
	k := New(1)
	if err := k.RunWhile(func() bool { return true }); err != ErrDeadlocked {
		t.Fatalf("err = %v, want ErrDeadlocked", err)
	}
}

func TestRunawayDetection(t *testing.T) {
	k := New(1)
	k.SetMaxEvents(100)
	var loop func()
	loop = func() { k.AfterFunc(time.Millisecond, loop) }
	k.AfterFunc(0, loop)
	if err := k.Run(); err != ErrRunaway {
		t.Fatalf("err = %v, want ErrRunaway", err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []float64 {
		k := New(seed)
		var out []float64
		var step func()
		step = func() {
			out = append(out, k.Rand().Float64())
			if len(out) < 50 {
				k.AfterFunc(time.Duration(k.Rand().Intn(1000))*time.Millisecond, step)
			}
		}
		k.AfterFunc(0, step)
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never moves backwards.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		k := New(7)
		var last time.Time
		ok := true
		for _, d := range delaysMs {
			k.AfterFunc(time.Duration(d)*time.Millisecond, func() {
				if k.Now().Before(last) {
					ok = false
				}
				last = k.Now()
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pending decreases by exactly one per executed event and reaches
// zero when Run completes.
func TestPropertyPendingAccounting(t *testing.T) {
	f := func(n uint8) bool {
		k := New(3)
		for i := 0; i < int(n); i++ {
			k.AfterFunc(time.Duration(i)*time.Millisecond, func() {})
		}
		if k.Pending() != int(n) {
			return false
		}
		for i := int(n); i > 0; i-- {
			if !k.Step() {
				return false
			}
			if k.Pending() != i-1 {
				return false
			}
		}
		return !k.Step() && k.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := New(1)
	var hits []time.Duration
	k.AfterFunc(time.Second, func() {
		k.AfterFunc(time.Second, func() {
			hits = append(hits, k.Now().Sub(Epoch))
		})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(hits) != 1 || hits[0] != 2*time.Second {
		t.Fatalf("hits = %v, want [2s]", hits)
	}
}

// countEvent is a test Event carrying a prebound counter.
type countEvent struct {
	k   *Kernel
	out *[]int
	v   int
}

func (e *countEvent) Fire() { *e.out = append(*e.out, e.v) }

func TestScheduleInterleavesWithAfterFunc(t *testing.T) {
	k := New(1)
	var order []int
	k.AfterFunc(time.Second, func() { order = append(order, 1) })
	k.Schedule(time.Second, &countEvent{k: k, out: &order, v: 2})
	k.AfterFunc(time.Second, func() { order = append(order, 3) })
	k.Schedule(500*time.Millisecond, &countEvent{k: k, out: &order, v: 0})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v (Schedule must share the seq tie-break)", order, want)
		}
	}
}

func TestMaxEventsExact(t *testing.T) {
	k := New(1)
	k.SetMaxEvents(100)
	var loop func()
	loop = func() { k.AfterFunc(time.Millisecond, loop) }
	k.AfterFunc(0, loop)
	if err := k.Run(); err != ErrRunaway {
		t.Fatalf("err = %v, want ErrRunaway", err)
	}
	if k.Executed() != 100 {
		t.Fatalf("executed = %d, want exactly 100 (budget must be checked before executing)", k.Executed())
	}
}

func TestMaxEventsExactRunUntil(t *testing.T) {
	k := New(1)
	k.SetMaxEvents(10)
	var loop func()
	loop = func() { k.AfterFunc(time.Millisecond, loop) }
	k.AfterFunc(0, loop)
	if err := k.RunUntil(Epoch.Add(time.Hour)); err != ErrRunaway {
		t.Fatalf("err = %v, want ErrRunaway", err)
	}
	if k.Executed() != 10 {
		t.Fatalf("executed = %d, want exactly 10", k.Executed())
	}
}

func TestMaxEventsExactRunWhile(t *testing.T) {
	k := New(1)
	k.SetMaxEvents(10)
	var loop func()
	loop = func() { k.AfterFunc(time.Millisecond, loop) }
	k.AfterFunc(0, loop)
	if err := k.RunWhile(func() bool { return true }); err != ErrRunaway {
		t.Fatalf("err = %v, want ErrRunaway", err)
	}
	if k.Executed() != 10 {
		t.Fatalf("executed = %d, want exactly 10", k.Executed())
	}
}

func TestMaxEventsAllowsExactBudget(t *testing.T) {
	// A run that needs exactly maxEvents events must complete without error.
	k := New(1)
	k.SetMaxEvents(10)
	for i := 0; i < 10; i++ {
		k.AfterFunc(time.Duration(i)*time.Second, func() {})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run with exactly-budget work: %v", err)
	}
	if k.Executed() != 10 {
		t.Fatalf("executed = %d, want 10", k.Executed())
	}
}

func TestStopOfRecycledSlotIsNoOp(t *testing.T) {
	k := New(1)
	firedA, firedB := false, false
	tmA := k.AfterFunc(time.Second, func() { firedA = true })
	if !k.Step() {
		t.Fatal("Step found no event")
	}
	if !firedA {
		t.Fatal("A did not fire")
	}
	// B reuses A's just-recycled slot; the stale handle must not touch it.
	k.AfterFunc(time.Second, func() { firedB = true })
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	if tmA.Stop() {
		t.Fatal("Stop of a fired timer (recycled slot) returned true")
	}
	if k.Pending() != 1 {
		t.Fatalf("stale Stop changed pending: %d", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !firedB {
		t.Fatal("stale Stop cancelled the slot's new occupant")
	}
}

func TestStopTwiceThenReuse(t *testing.T) {
	k := New(1)
	tm := k.AfterFunc(time.Second, func() { t.Fatal("stopped timer fired") })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	fired := false
	k.AfterFunc(2*time.Second, func() { fired = true })
	if tm.Stop() {
		t.Fatal("Stop after slot reuse returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("reused slot's event did not fire")
	}
}

func TestZeroTimerStop(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer Stop returned true")
	}
}

func TestPendingCountsStops(t *testing.T) {
	k := New(1)
	tms := make([]Timer, 5)
	for i := range tms {
		tms[i] = k.AfterFunc(time.Duration(i+1)*time.Second, func() {})
	}
	if k.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", k.Pending())
	}
	tms[1].Stop()
	tms[3].Stop()
	if k.Pending() != 3 {
		t.Fatalf("pending after stops = %d, want 3", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.Pending() != 0 {
		t.Fatalf("pending after drain = %d, want 0", k.Pending())
	}
}

// TestSteadyStateStepAllocs pins the tentpole property: once the heap and
// slot arena are warm, AfterFunc+Step performs no heap allocation.
func TestSteadyStateStepAllocs(t *testing.T) {
	k := New(1)
	var fn func()
	fn = func() { k.AfterFunc(time.Millisecond, fn) }
	k.AfterFunc(0, fn)
	for i := 0; i < 64; i++ { // warm the free list and heap capacity
		k.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { k.Step() }); allocs != 0 {
		t.Fatalf("steady-state AfterFunc+Step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSteadyStateScheduleAllocs pins the same property for the Schedule
// fast path with a reused Event.
func TestSteadyStateScheduleAllocs(t *testing.T) {
	k := New(1)
	ev := &reschedulingEvent{}
	ev.k = k
	k.Schedule(0, ev)
	for i := 0; i < 64; i++ {
		k.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { k.Step() }); allocs != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.1f objects/op, want 0", allocs)
	}
}

type reschedulingEvent struct{ k *Kernel }

func (e *reschedulingEvent) Fire() { e.k.Schedule(time.Millisecond, e) }

// TestArmStopChurnBounded pins the compaction property: endless
// arm-then-stop cycles (the failure-detector pattern) must not grow the
// event queue without bound.
func TestArmStopChurnBounded(t *testing.T) {
	k := New(1)
	fn := func() {}
	for i := 0; i < 100_000; i++ {
		k.AfterFunc(time.Second, fn).Stop()
	}
	if len(k.heap) > 1024 {
		t.Fatalf("heap holds %d entries after pure arm/stop churn, want bounded (stale entries must be compacted)", len(k.heap))
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", k.Pending())
	}
}
