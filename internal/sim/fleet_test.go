package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// pingShard is a minimal FleetShard for exercising the coordinator: each
// shard periodically sends a numbered ping to a peer shard and records
// every delivery it receives, mixing in its kernel RNG so any divergence
// in event order corrupts the transcript visibly.
type pingShard struct {
	*Kernel
	idx     int
	peer    int
	latency time.Duration
	out     []Parcel
	seq     uint64
	log     []string
	sent    int
}

func newPingShard(idx, peer int, seed int64, latency time.Duration) *pingShard {
	return &pingShard{Kernel: New(seed), idx: idx, peer: peer, latency: latency}
}

func (s *pingShard) CollectOutbound(dst []Parcel) []Parcel {
	dst = append(dst, s.out...)
	s.out = s.out[:0]
	return dst
}

func (s *pingShard) Inject(p Parcel) {
	msg := p.Payload.(string)
	delay := p.At.Sub(s.Now())
	s.AfterFunc(delay, func() {
		s.log = append(s.log, fmt.Sprintf("%s recv %s r=%d",
			s.Now().Format("15:04:05.000"), msg, s.Rand().Intn(1000)))
	})
}

// start schedules a periodic ping to the peer.
func (s *pingShard) start(period time.Duration, count int) {
	var tick func()
	tick = func() {
		if s.sent >= count {
			return
		}
		s.sent++
		s.seq++
		s.out = append(s.out, Parcel{
			To:      s.peer,
			At:      s.Now().Add(s.latency),
			Seq:     s.seq,
			Payload: fmt.Sprintf("ping-%d-%d", s.idx, s.sent),
		})
		s.log = append(s.log, fmt.Sprintf("%s sent ping-%d-%d r=%d",
			s.Now().Format("15:04:05.000"), s.idx, s.sent, s.Rand().Intn(1000)))
		s.AfterFunc(period, tick)
	}
	s.AfterFunc(0, tick)
}

// runPingFleet builds an n-shard ring, runs it for horizon, and returns the
// concatenated per-shard transcripts plus the fleet for counter checks.
func runPingFleet(t *testing.T, n, workers int, seed int64) (string, *Fleet) {
	t.Helper()
	const (
		latency = 250 * time.Millisecond
		epoch   = 250 * time.Millisecond
	)
	shards := make([]FleetShard, n)
	pings := make([]*pingShard, n)
	for i := 0; i < n; i++ {
		ps := newPingShard(i, (i+1)%n, seed+int64(i)*101, latency)
		ps.start(400*time.Millisecond, 25)
		pings[i] = ps
		shards[i] = ps
	}
	fl := NewFleet(FleetConfig{Epoch: epoch, Workers: workers}, shards)
	if err := fl.RunUntil(pings[0].Now().Add(30 * time.Second)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	var sb strings.Builder
	for i, ps := range pings {
		fmt.Fprintf(&sb, "== shard %d ==\n", i)
		for _, line := range ps.log {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String(), fl
}

// TestFleetDeterministicAcrossWorkers is the tentpole invariant: the same
// constellation and seed folds byte-identically regardless of worker count.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	ref, refFleet := runPingFleet(t, 6, 1, 42)
	if refFleet.Parcels() == 0 {
		t.Fatal("no parcels exchanged; test is vacuous")
	}
	for _, workers := range []int{2, 4, 16} {
		got, fl := runPingFleet(t, 6, workers, 42)
		if got != ref {
			t.Fatalf("workers=%d transcript differs from sequential reference:\n--- want ---\n%s\n--- got ---\n%s", workers, ref, got)
		}
		if fl.Parcels() != refFleet.Parcels() {
			t.Fatalf("workers=%d parcels=%d, want %d", workers, fl.Parcels(), refFleet.Parcels())
		}
		if fl.Epochs() != refFleet.Epochs() {
			t.Fatalf("workers=%d epochs=%d, want %d", workers, fl.Epochs(), refFleet.Epochs())
		}
	}
}

// TestFleetSeedSensitivity guards against the transcript being constant.
func TestFleetSeedSensitivity(t *testing.T) {
	a, _ := runPingFleet(t, 4, 1, 1)
	b, _ := runPingFleet(t, 4, 1, 2)
	if a == b {
		t.Fatal("different seeds produced identical transcripts")
	}
}

// TestFleetLookaheadViolation: a link shorter than the epoch must be
// rejected with ErrLookahead, not silently accepted.
func TestFleetLookaheadViolation(t *testing.T) {
	const epoch = 500 * time.Millisecond
	a := newPingShard(0, 1, 7, 100*time.Millisecond) // latency < epoch
	b := newPingShard(1, 0, 8, 100*time.Millisecond)
	a.start(time.Second, 5)
	fl := NewFleet(FleetConfig{Epoch: epoch, Workers: 1}, []FleetShard{a, b})
	err := fl.RunUntil(a.Now().Add(5 * time.Second))
	if !errors.Is(err, ErrLookahead) {
		t.Fatalf("err = %v, want ErrLookahead", err)
	}
}

// TestFleetBadDestination: a parcel addressed outside the fleet is a
// deterministic error, not a panic or a drop.
func TestFleetBadDestination(t *testing.T) {
	a := newPingShard(0, 5, 7, time.Second) // peer 5 does not exist
	b := newPingShard(1, 0, 8, time.Second)
	a.start(time.Second, 3)
	fl := NewFleet(FleetConfig{Epoch: time.Second, Workers: 1}, []FleetShard{a, b})
	err := fl.RunUntil(a.Now().Add(5 * time.Second))
	if err == nil || !strings.Contains(err.Error(), "unknown shard") {
		t.Fatalf("err = %v, want unknown-shard error", err)
	}
}

// TestFleetConfigValidation: construction panics on programmer error.
func TestFleetConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("no shards", func() {
		NewFleet(FleetConfig{Epoch: time.Second}, nil)
	})
	mustPanic("zero epoch", func() {
		NewFleet(FleetConfig{}, []FleetShard{newPingShard(0, 0, 1, time.Second)})
	})
}

// TestFleetRunForAdvancesClock: RunFor moves every shard's clock together.
func TestFleetRunForAdvancesClock(t *testing.T) {
	a := newPingShard(0, 1, 7, time.Second)
	b := newPingShard(1, 0, 8, time.Second)
	fl := NewFleet(FleetConfig{Epoch: time.Second, Workers: 2}, []FleetShard{a, b})
	start := fl.Now()
	if err := fl.RunFor(10 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := fl.Now().Sub(start); got != 10*time.Second {
		t.Fatalf("advanced %v, want 10s", got)
	}
	if a.Now() != b.Now() {
		t.Fatalf("shard clocks diverged: %v vs %v", a.Now(), b.Now())
	}
}

// TestShardInterface pins *Kernel to the Shard surface.
func TestShardInterface(t *testing.T) {
	var s Shard = New(1)
	if s.Pending() != 0 || s.Executed() != 0 {
		t.Fatal("fresh kernel should be empty")
	}
}
