package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkStepChain measures the steady-state hot path: one AfterFunc +
// one Step per op, the pattern every simulated actor generates. With the
// int64 heap and slot recycling this is zero-allocation.
func BenchmarkStepChain(b *testing.B) {
	k := New(1)
	var fn func()
	fn = func() { k.AfterFunc(time.Millisecond, fn) }
	k.AfterFunc(0, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// BenchmarkScheduleChain measures the closure-free Event fast path.
func BenchmarkScheduleChain(b *testing.B) {
	k := New(1)
	ev := &reschedulingEvent{k: k}
	k.Schedule(0, ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// BenchmarkDeepHeap measures stepping with a standing population of timers
// (the shape of a full station: many armed pings/timeouts per event fired).
func BenchmarkDeepHeap(b *testing.B) {
	for _, depth := range []int{64, 1024, 16384} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			k := New(1)
			var fn func()
			fn = func() { k.AfterFunc(time.Duration(1+k.rng.Intn(1000))*time.Millisecond, fn) }
			for i := 0; i < depth; i++ {
				k.AfterFunc(time.Duration(k.rng.Intn(1000))*time.Millisecond, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Step()
			}
		})
	}
}

// BenchmarkTimerStop measures schedule + cancel, the failure-detector
// pattern (arm a timeout, stop it when the pong arrives).
func BenchmarkTimerStop(b *testing.B) {
	k := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.AfterFunc(time.Second, fn).Stop()
	}
}
