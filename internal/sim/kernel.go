// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and a priority queue of scheduled events.
// All simulated activity — component startups, liveness pings, fault
// injection, message delivery — is expressed as events. Running the kernel
// pops events in (time, sequence) order and executes their callbacks, which
// may schedule further events. Two runs with the same seed and the same
// schedule of calls produce identical traces.
//
// The kernel is single-threaded by design: events run one at a time on the
// goroutine that calls Run/Step. This gives the simulation the determinism
// that real concurrent execution cannot, while the actor code driven by the
// kernel remains oblivious (it only sees the clock.Clock interface).
//
// The hot path is allocation-lean: virtual time is an int64 nanosecond
// offset from the start instant (time.Time appears only at the Now/AfterFunc
// API boundary), the priority queue is a hand-rolled 4-ary min-heap of
// inline entries (no container/heap boxing), and fired or stopped events
// recycle their slots through a kernel-owned free list, so steady-state
// stepping performs no heap allocation at all.
package sim

import (
	"errors"
	"math/rand"
	"time"
)

// Epoch is the default simulation start time. Any fixed instant works; this
// one is recognisable in traces.
var Epoch = time.Date(2002, time.June, 23, 0, 0, 0, 0, time.UTC)

// ErrDeadlocked is returned by RunUntil when the event queue drains before
// the target time is reached and no further progress is possible.
var ErrDeadlocked = errors.New("sim: event queue empty before target time")

// ErrRunaway is returned when a Run* call exceeds the configured event cap,
// which almost always indicates an accidental self-perpetuating event loop.
var ErrRunaway = errors.New("sim: event cap exceeded (runaway event loop?)")

// Event is a prebound callback scheduled through the Schedule fast path:
// fire-and-forget, no Timer handle, no closure. Callers that need
// allocation-free scheduling implement Event on a (possibly pooled) struct
// carrying their arguments instead of capturing them in a func literal.
type Event interface {
	// Fire runs the event. It is called exactly once, on the kernel's
	// dispatch goroutine, at the event's virtual instant.
	Fire()
}

// slot holds a scheduled event's payload. Slots live in a kernel-owned
// arena and are recycled through a free list once the event fires or is
// stopped; gen increments on every recycle so stale Timer handles (and
// stale heap entries) can detect reuse.
type slot struct {
	fn  func()
	ev  Event
	gen uint32
}

// entry is one priority-queue element: 24 inline bytes, ordered by
// (at, seq). The sequence number breaks ties so same-instant events run in
// schedule order, which keeps the simulation deterministic. gen snapshots
// the slot generation at schedule time; a mismatch at pop time means the
// event was stopped (or its slot already recycled) and the entry is stale.
type entry struct {
	at  int64 // virtual nanoseconds since the kernel's start instant
	seq uint64
	id  int32
	gen uint32
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; construct with New.
type Kernel struct {
	base  time.Time // instant of virtual time zero
	now   int64     // virtual nanoseconds since base
	seq   uint64
	heap  []entry
	slots []slot
	free  []int32
	rng   *rand.Rand

	// pending counts live (scheduled, not stopped, not fired) events so
	// Pending is O(1).
	pending int
	// stale counts stopped events whose entries still sit in the heap
	// (lazy deletion); when they outnumber the live ones the heap is
	// compacted, so arm/stop churn (the failure-detector pattern) cannot
	// grow the queue without bound.
	stale int
	// executed counts events run, for tests and runaway detection.
	executed uint64
	// maxEvents aborts Run loops that exceed this many events (0 = no cap).
	maxEvents uint64
}

// New returns a kernel starting at Epoch whose random source is seeded with
// seed. The same seed yields an identical simulation.
func New(seed int64) *Kernel {
	return NewAt(seed, Epoch)
}

// NewAt returns a kernel starting at the given instant.
func NewAt(seed int64, start time.Time) *Kernel {
	return &Kernel{
		base: start,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.base.Add(time.Duration(k.now)) }

// NowNs returns the current virtual time as nanoseconds since the kernel's
// base instant: the conversion-free form of Now for hot paths that only
// compare or subtract instants.
func (k *Kernel) NowNs() int64 { return k.now }

// Rand returns the kernel's deterministic random source. All simulated
// randomness (failure laws, startup jitter, oracle coin flips) must come
// from here to keep runs reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed reports how many events have run so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// SetMaxEvents caps the number of events a Run* call may execute; exceeding
// the cap makes Run* return ErrRunaway. Zero disables the cap.
func (k *Kernel) SetMaxEvents(n uint64) { k.maxEvents = n }

// Timer is a handle to a scheduled event. Stop cancels the event if it has
// not yet fired. The zero Timer is a valid no-op handle.
type Timer struct {
	k   *Kernel
	id  int32
	gen uint32
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing. Stopping an already-fired or already-stopped timer — or one
// whose slot has since been recycled for a newer event — is a harmless
// no-op returning false: the generation counter distinguishes this handle's
// event from any later occupant of the same slot.
func (t Timer) Stop() bool {
	if t.k == nil {
		return false
	}
	s := &t.k.slots[t.id]
	if s.gen != t.gen {
		return false
	}
	t.k.recycle(t.id)
	t.k.pending--
	t.k.stale++
	if t.k.stale > 64 && t.k.stale*2 > len(t.k.heap) {
		t.k.compact()
	}
	return true
}

// schedule allocates a slot and pushes a heap entry for it. Exactly one of
// fn and ev is non-nil.
func (k *Kernel) schedule(d time.Duration, fn func(), ev Event) (int32, uint32) {
	if d < 0 {
		d = 0
	}
	var id int32
	if n := len(k.free); n > 0 {
		id = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slots = append(k.slots, slot{})
		id = int32(len(k.slots) - 1)
	}
	s := &k.slots[id]
	s.fn, s.ev = fn, ev
	k.push(entry{at: k.now + int64(d), seq: k.seq, id: id, gen: s.gen})
	k.seq++
	k.pending++
	return id, s.gen
}

// recycle returns a slot to the free list, invalidating outstanding Timer
// handles and heap entries for it.
func (k *Kernel) recycle(id int32) {
	s := &k.slots[id]
	s.fn, s.ev = nil, nil
	s.gen++
	k.free = append(k.free, id)
}

// AfterFunc schedules fn to run after d of virtual time. A non-positive d
// schedules fn "immediately": it still goes through the queue, preserving
// run-to-completion semantics for the caller. The returned Timer may be used
// to cancel the event.
func (k *Kernel) AfterFunc(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil function")
	}
	id, gen := k.schedule(d, fn, nil)
	return Timer{k: k, id: id, gen: gen}
}

// Schedule is the fire-and-forget fast path: ev.Fire runs after d of
// virtual time. No Timer is returned, so a pooled Event costs no allocation
// at all. Events cannot be cancelled; use AfterFunc when Stop is needed.
func (k *Kernel) Schedule(d time.Duration, ev Event) {
	if ev == nil {
		panic("sim: Schedule with nil event")
	}
	k.schedule(d, nil, ev)
}

// Step pops and executes the next event. It reports false when the queue is
// empty (nothing executed).
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		e := k.heap[0]
		k.pop()
		s := &k.slots[e.id]
		if s.gen != e.gen {
			k.stale-- // stopped; slot already recycled
			continue
		}
		fn, ev := s.fn, s.ev
		// Recycle before firing so the callback can schedule new events
		// into the just-freed slot.
		k.recycle(e.id)
		k.pending--
		k.now = e.at
		k.executed++
		if fn != nil {
			fn()
		} else {
			ev.Fire()
		}
		return true
	}
	return false
}

// peek returns the virtual instant of the next runnable event, discarding
// stale (stopped) entries from the top of the heap.
func (k *Kernel) peek() (int64, bool) {
	for len(k.heap) > 0 {
		e := k.heap[0]
		if k.slots[e.id].gen != e.gen {
			k.pop()
			k.stale--
			continue
		}
		return e.at, true
	}
	return 0, false
}

// overBudget reports whether a Run* loop that started at executed==start
// has exhausted the event cap; checked before executing each event so the
// cap is exact (a cap of n allows exactly n events).
func (k *Kernel) overBudget(start uint64) bool {
	return k.maxEvents > 0 && k.executed-start >= k.maxEvents
}

// Run executes events until the queue is empty. It returns ErrRunaway if an
// event cap is configured and exceeded.
func (k *Kernel) Run() error {
	start := k.executed
	for {
		if k.overBudget(start) {
			if _, ok := k.peek(); ok {
				return ErrRunaway
			}
			return nil
		}
		if !k.Step() {
			return nil
		}
	}
}

// RunUntil executes events with timestamps at or before target, then
// advances the clock to target. If the queue drains first the clock still
// advances to target and RunUntil returns nil; use RunWhile if draining
// should be detected.
func (k *Kernel) RunUntil(target time.Time) error {
	return k.runUntil(int64(target.Sub(k.base)))
}

// RunFor executes events for d of virtual time from the current instant.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.runUntil(k.now + int64(d))
}

func (k *Kernel) runUntil(target int64) error {
	start := k.executed
	for {
		at, ok := k.peek()
		if !ok || at > target {
			if target > k.now {
				k.now = target
			}
			return nil
		}
		if k.overBudget(start) {
			return ErrRunaway
		}
		k.Step()
	}
}

// RunWhile executes events until cond reports false (checked after every
// event) or the queue drains. It returns ErrDeadlocked if the queue drained
// while cond was still true, and ErrRunaway on cap overrun.
func (k *Kernel) RunWhile(cond func() bool) error {
	start := k.executed
	for cond() {
		if k.overBudget(start) {
			if _, ok := k.peek(); ok {
				return ErrRunaway
			}
			return ErrDeadlocked
		}
		if !k.Step() {
			return ErrDeadlocked
		}
	}
	return nil
}

// Pending reports the number of scheduled (non-stopped) events. It is O(1):
// the kernel maintains a live-event counter across schedule, Stop and Step.
func (k *Kernel) Pending() int { return k.pending }

// The priority queue is a 4-ary min-heap of inline entries. 4-ary beats
// binary here: sift-down does ~half the levels, and the four children share
// a cache line (4 × 24 B ≈ 1.5 lines) so the extra comparisons are cheap.

func lessEntry(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends e and sifts it up.
func (k *Kernel) push(e entry) {
	h := append(k.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !lessEntry(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	k.heap = h
}

// pop removes the minimum entry (the caller has already read h[0]).
func (k *Kernel) pop() {
	h := k.heap
	n := len(h) - 1
	e := h[n]
	h = h[:n]
	k.heap = h
	if n == 0 {
		return
	}
	h[0] = e
	k.siftDown(0)
}

// siftDown restores heap order below i.
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lessEntry(h[j], h[m]) {
				m = j
			}
		}
		if !lessEntry(h[m], e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}

// compact drops stale (stopped) entries and re-heapifies in place. Pop
// order is unaffected: (at, seq) is a total order, so any valid heap
// layout yields the same execution sequence — determinism is preserved.
func (k *Kernel) compact() {
	h := k.heap[:0]
	for _, e := range k.heap {
		if k.slots[e.id].gen == e.gen {
			h = append(h, e)
		}
	}
	k.heap = h
	k.stale = 0
	for i := (len(h) - 2) >> 2; i >= 0; i-- {
		k.siftDown(i)
	}
}
