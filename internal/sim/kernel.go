// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and a priority queue of scheduled events.
// All simulated activity — component startups, liveness pings, fault
// injection, message delivery — is expressed as events. Running the kernel
// pops events in (time, sequence) order and executes their callbacks, which
// may schedule further events. Two runs with the same seed and the same
// schedule of calls produce identical traces.
//
// The kernel is single-threaded by design: events run one at a time on the
// goroutine that calls Run/Step. This gives the simulation the determinism
// that real concurrent execution cannot, while the actor code driven by the
// kernel remains oblivious (it only sees the clock.Clock interface).
package sim

import (
	"container/heap"
	"errors"
	"math/rand"
	"time"
)

// Epoch is the default simulation start time. Any fixed instant works; this
// one is recognisable in traces.
var Epoch = time.Date(2002, time.June, 23, 0, 0, 0, 0, time.UTC)

// ErrDeadlocked is returned by RunUntil when the event queue drains before
// the target time is reached and no further progress is possible.
var ErrDeadlocked = errors.New("sim: event queue empty before target time")

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; construct with New.
type Kernel struct {
	now     time.Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool

	// executed counts events run, for tests and runaway detection.
	executed uint64
	// maxEvents aborts Run loops that exceed this many events (0 = no cap).
	maxEvents uint64
}

// New returns a kernel starting at Epoch whose random source is seeded with
// seed. The same seed yields an identical simulation.
func New(seed int64) *Kernel {
	return NewAt(seed, Epoch)
}

// NewAt returns a kernel starting at the given instant.
func NewAt(seed int64, start time.Time) *Kernel {
	return &Kernel{
		now: start,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// Rand returns the kernel's deterministic random source. All simulated
// randomness (failure laws, startup jitter, oracle coin flips) must come
// from here to keep runs reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed reports how many events have run so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// SetMaxEvents caps the number of events a Run* call may execute; exceeding
// the cap makes Run* return ErrRunaway. Zero disables the cap.
func (k *Kernel) SetMaxEvents(n uint64) { k.maxEvents = n }

// ErrRunaway is returned when a Run* call exceeds the configured event cap,
// which almost always indicates an accidental self-perpetuating event loop.
var ErrRunaway = errors.New("sim: event cap exceeded (runaway event loop?)")

// Timer is a handle to a scheduled event. Stop cancels the event if it has
// not yet fired.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing. Stopping an already-fired or already-stopped timer is a
// harmless no-op returning false.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	t.ev.fn = nil
	return true
}

// AfterFunc schedules fn to run after d of virtual time. A non-positive d
// schedules fn "immediately": it still goes through the queue, preserving
// run-to-completion semantics for the caller. The returned Timer may be used
// to cancel the event.
func (k *Kernel) AfterFunc(d time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil function")
	}
	if d < 0 {
		d = 0
	}
	ev := &event{
		at:  k.now.Add(d),
		seq: k.seq,
		fn:  fn,
	}
	k.seq++
	heap.Push(&k.queue, ev)
	return &Timer{ev: ev}
}

// Step pops and executes the next event. It reports false when the queue is
// empty (nothing executed).
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		ev.fired = true
		fn := ev.fn
		ev.fn = nil
		k.executed++
		fn()
		return true
	}
	return false
}

// peekTime returns the time of the next runnable event.
func (k *Kernel) peekTime() (time.Time, bool) {
	for k.queue.Len() > 0 {
		ev := k.queue[0]
		if ev.cancelled {
			heap.Pop(&k.queue)
			continue
		}
		return ev.at, true
	}
	return time.Time{}, false
}

// Run executes events until the queue is empty. It returns ErrRunaway if an
// event cap is configured and exceeded.
func (k *Kernel) Run() error {
	start := k.executed
	for k.Step() {
		if k.maxEvents > 0 && k.executed-start > k.maxEvents {
			return ErrRunaway
		}
	}
	return nil
}

// RunUntil executes events with timestamps at or before target, then
// advances the clock to target. If the queue drains first the clock still
// advances to target and RunUntil returns nil; use RunUntilOrIdle if
// draining should be detected.
func (k *Kernel) RunUntil(target time.Time) error {
	start := k.executed
	for {
		at, ok := k.peekTime()
		if !ok || at.After(target) {
			if target.After(k.now) {
				k.now = target
			}
			return nil
		}
		k.Step()
		if k.maxEvents > 0 && k.executed-start > k.maxEvents {
			return ErrRunaway
		}
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now.Add(d))
}

// RunWhile executes events until cond reports false (checked after every
// event) or the queue drains. It returns ErrDeadlocked if the queue drained
// while cond was still true, and ErrRunaway on cap overrun.
func (k *Kernel) RunWhile(cond func() bool) error {
	start := k.executed
	for cond() {
		if !k.Step() {
			return ErrDeadlocked
		}
		if k.maxEvents > 0 && k.executed-start > k.maxEvents {
			return ErrRunaway
		}
	}
	return nil
}

// Pending reports the number of scheduled (non-cancelled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, ev := range k.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// event is a scheduled callback.
type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	index     int
	cancelled bool
	fired     bool
}

// eventQueue is a min-heap ordered by (at, seq). The sequence number breaks
// ties so same-instant events run in schedule order, which keeps the
// simulation deterministic.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
