package sim

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/recursive-restart/mercury/internal/obs"
)

// ErrLookahead reports a parcel due before the epoch edge it was collected
// at. That means some link's latency is shorter than the epoch length, so
// the conservative-lookahead contract is broken and parallel execution
// would no longer be deterministic; the fleet refuses to continue.
var ErrLookahead = errors.New("sim: parcel due before epoch edge (link latency < epoch)")

// FleetConfig configures a Fleet.
type FleetConfig struct {
	// Epoch is the synchronization quantum. Every shard runs Epoch of
	// virtual time, then all shards exchange cross-shard parcels at a
	// barrier. Epoch must not exceed the minimum cross-shard link latency
	// (the lookahead bound): a parcel sent during an epoch must never be
	// due before that epoch's edge. Required, > 0.
	Epoch time.Duration
	// Workers is the number of goroutines executing shards between
	// barriers. 0 or 1 runs every shard inline on the caller's goroutine —
	// the reference sequential schedule. Worker count affects wall-clock
	// time only, never simulation output.
	Workers int
}

// Fleet drives many shard kernels in lock-step epochs with conservative
// lookahead: within an epoch every shard executes independently (in
// parallel when Workers > 1); at the epoch edge all shards reach a barrier
// and the coordinator exchanges cross-shard parcels serially in (shard
// index, send seq) order before the next epoch begins.
//
// Determinism: each shard's kernel is single-threaded and seeded; within an
// epoch a shard can only see messages injected at an earlier barrier, and
// the lookahead bound guarantees nothing sent in the current epoch lands in
// it; the exchange order is fixed by shard index and per-shard send order.
// So the event sequence each kernel executes is independent of worker
// count and of wall-clock interleaving, and per-seed output folds
// byte-identically on 1 core and on 16.
//
// Memory model: shard kernels are confined to exactly one goroutine per
// epoch; the WaitGroup barrier provides a happens-before edge between a
// shard's epoch run and the coordinator's CollectOutbound/Inject calls, and
// between those calls and the shard's next epoch run.
type Fleet struct {
	cfg    FleetConfig
	shards []FleetShard

	// epochs and parcels are fleet-local deterministic totals (distinct
	// from the process-global wall-clock-flavored metrics in M), safe to
	// include in folded output.
	epochs  uint64
	parcels uint64

	scratch  []Parcel       // exchange buffer, reused across epochs
	stalls   []int64        // per-shard wall ns spent running the last epoch
	shardCtr []*obs.Counter // cached M.ShardEvents counters by index
	prevExec []uint64       // per-shard Executed at the previous barrier
}

// NewFleet builds a fleet over shards. It panics on an invalid
// configuration (no shards, non-positive epoch): fleet construction is
// programmer-controlled setup, not runtime input.
func NewFleet(cfg FleetConfig, shards []FleetShard) *Fleet {
	if len(shards) == 0 {
		panic("sim: fleet needs at least one shard")
	}
	if cfg.Epoch <= 0 {
		panic("sim: fleet epoch must be positive")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	f := &Fleet{
		cfg:      cfg,
		shards:   shards,
		stalls:   make([]int64, len(shards)),
		shardCtr: make([]*obs.Counter, len(shards)),
		prevExec: make([]uint64, len(shards)),
	}
	for i := range shards {
		f.shardCtr[i] = M.ShardEvents.With(strconv.Itoa(i))
		f.prevExec[i] = shards[i].Executed()
	}
	M.Shards.Set(int64(len(shards)))
	return f
}

// Shards reports the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// Shard returns the i-th shard.
func (f *Fleet) Shard(i int) FleetShard { return f.shards[i] }

// Epochs reports the number of completed epoch barriers (deterministic).
func (f *Fleet) Epochs() uint64 { return f.epochs }

// Parcels reports the number of cross-shard parcels exchanged
// (deterministic).
func (f *Fleet) Parcels() uint64 { return f.parcels }

// Executed reports total events executed across all shards.
func (f *Fleet) Executed() uint64 {
	var total uint64
	for _, s := range f.shards {
		total += s.Executed()
	}
	return total
}

// Now returns the fleet's synchronized virtual time: the maximum shard
// clock (shards may briefly disagree before the first barrier aligns them).
func (f *Fleet) Now() time.Time {
	now := f.shards[0].Now()
	for _, s := range f.shards[1:] {
		if t := s.Now(); t.After(now) {
			now = t
		}
	}
	return now
}

// RunUntil advances every shard to target in epoch-length steps, exchanging
// cross-shard parcels at each barrier. The first edge is aligned to the
// most advanced shard clock, so a shard that booted slightly behind catches
// up inside the first epoch. Returns the first shard error (lowest shard
// index wins, deterministically) or ErrLookahead on a latency/epoch
// misconfiguration.
func (f *Fleet) RunUntil(target time.Time) error {
	edge := f.Now()
	for edge.Before(target) {
		edge = edge.Add(f.cfg.Epoch)
		if edge.After(target) {
			edge = target
		}
		if err := f.runEpoch(edge); err != nil {
			return err
		}
	}
	return nil
}

// RunFor advances the fleet by d of synchronized virtual time.
func (f *Fleet) RunFor(d time.Duration) error {
	return f.RunUntil(f.Now().Add(d))
}

// runEpoch runs every shard to edge, waits at the barrier, then exchanges
// outbound parcels in deterministic order.
func (f *Fleet) runEpoch(edge time.Time) error {
	epochStart := time.Now()
	errs := make([]error, len(f.shards))

	if f.cfg.Workers <= 1 || len(f.shards) == 1 {
		for i, s := range f.shards {
			t0 := time.Now()
			errs[i] = s.RunUntil(edge)
			f.stalls[i] = time.Since(t0).Nanoseconds()
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		workers := f.cfg.Workers
		if workers > len(f.shards) {
			workers = len(f.shards)
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(f.shards) {
						return
					}
					t0 := time.Now()
					errs[i] = f.shards[i].RunUntil(edge)
					f.stalls[i] = time.Since(t0).Nanoseconds()
				}
			}()
		}
		wg.Wait()
	}
	epochWall := time.Since(epochStart)

	// Wall-clock observability (never folded into deterministic output):
	// each shard's stall is the gap between its own run time and the
	// slowest shard's — the time it sat waiting at the barrier.
	var slowest int64
	for _, ns := range f.stalls {
		if ns > slowest {
			slowest = ns
		}
	}
	for i, ns := range f.stalls {
		M.BarrierStall.Observe(time.Duration(slowest - ns))
		exec := f.shards[i].Executed()
		f.shardCtr[i].Add(exec - f.prevExec[i])
		f.prevExec[i] = exec
	}
	M.EpochWall.Observe(epochWall)
	M.Epochs.Inc()
	f.epochs++

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sim: shard %d: %w", i, err)
		}
	}

	// Exchange: serial, on the coordinator goroutine, in (shard index,
	// send seq) order — the deterministic heart of the protocol.
	for i, s := range f.shards {
		f.scratch = s.CollectOutbound(f.scratch[:0])
		for _, p := range f.scratch {
			if p.To < 0 || p.To >= len(f.shards) {
				return fmt.Errorf("sim: shard %d emitted parcel for unknown shard %d", i, p.To)
			}
			if p.At.Before(edge) {
				M.LookaheadViolations.Inc()
				return fmt.Errorf("sim: shard %d parcel due %s before edge %s: %w",
					i, p.At.Format(time.RFC3339Nano), edge.Format(time.RFC3339Nano), ErrLookahead)
			}
			p.From = i
			f.shards[p.To].Inject(p)
			f.parcels++
			M.Parcels.Inc()
		}
	}
	return nil
}
