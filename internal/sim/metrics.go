package sim

import (
	"time"

	"github.com/recursive-restart/mercury/internal/obs"
)

// FleetMetrics are the process-wide observability counters for the sharded
// fleet scheduler. Like the other instrumented layers (bus, proc, core)
// they live in a package-level struct and are exposed by calling
// RegisterMetrics on the serving registry. Metrics are aggregate and
// wall-clock flavored; anything that feeds deterministic folds lives on the
// Fleet itself, never here.
type FleetMetrics struct {
	// Shards is the shard count of the most recently constructed fleet.
	Shards obs.Gauge
	// Epochs counts completed epoch barriers across all fleets.
	Epochs obs.Counter
	// Parcels counts cross-shard parcels exchanged at barriers.
	Parcels obs.Counter
	// LookaheadViolations counts parcels rejected for arriving before the
	// epoch edge (a configuration bug: link latency < epoch length).
	LookaheadViolations obs.Counter
	// ShardEvents counts simulation events executed, by shard index.
	ShardEvents *obs.CounterVec
	// EpochWall is the wall-clock duration of whole epochs (run + barrier +
	// exchange).
	EpochWall *obs.Histogram
	// BarrierStall is, per shard per epoch, the wall-clock time the shard
	// sat finished at the barrier waiting for the slowest shard.
	BarrierStall *obs.Histogram
}

// fleetBuckets is the wall-clock ladder for epoch and stall timings. Epochs
// of a small constellation run in tens of microseconds; a 10k-station epoch
// or a badly skewed shard can take tens of milliseconds. 10 µs – 10 s in a
// 1-2.5-5 progression brackets both.
func fleetBuckets() []time.Duration {
	return []time.Duration{
		10 * time.Microsecond,
		25 * time.Microsecond,
		50 * time.Microsecond,
		100 * time.Microsecond,
		250 * time.Microsecond,
		500 * time.Microsecond,
		time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
		2500 * time.Millisecond,
		10 * time.Second,
	}
}

// M holds the package's metrics.
var M = FleetMetrics{
	ShardEvents:  obs.NewCounterVec(),
	EpochWall:    obs.NewHistogram(fleetBuckets()...),
	BarrierStall: obs.NewHistogram(fleetBuckets()...),
}

// RegisterMetrics exposes the fleet scheduler's metrics on r.
func RegisterMetrics(r *obs.Registry) {
	r.RegisterGauge("mercury_fleet_shards",
		"Shard count of the most recently constructed fleet.", &M.Shards)
	r.RegisterCounter("mercury_fleet_epochs_total",
		"Completed epoch barriers across all fleets.", &M.Epochs)
	r.RegisterCounter("mercury_fleet_parcels_total",
		"Cross-shard parcels exchanged at epoch barriers.", &M.Parcels)
	r.RegisterCounter("mercury_fleet_lookahead_violations_total",
		"Parcels rejected for arriving before the epoch edge.", &M.LookaheadViolations)
	r.RegisterCounterVec("mercury_fleet_shard_events_total",
		"Simulation events executed, by shard index.", "shard", M.ShardEvents)
	r.RegisterHistogram("mercury_fleet_epoch_wall_seconds",
		"Wall-clock duration of whole fleet epochs.", M.EpochWall)
	r.RegisterHistogram("mercury_fleet_barrier_stall_seconds",
		"Per-shard wall-clock time spent waiting at the epoch barrier.", M.BarrierStall)
}
