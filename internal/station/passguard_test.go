package station

import (
	"math"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/orbit"
	"github.com/recursive-restart/mercury/internal/sim"
)

func TestPassGuard(t *testing.T) {
	k := sim.New(3)
	clk := clock.Sim{K: k}
	el := orbit.SSOElements(k.Now())
	ground := orbit.StanfordStation()
	guard, err := NewPassGuard(clk, el, ground, k.Now(), 24*time.Hour,
		5*math.Pi/180, 30*time.Second)
	if err != nil {
		t.Fatalf("NewPassGuard: %v", err)
	}
	passes := guard.Passes()
	if len(passes) == 0 {
		t.Fatal("no passes predicted")
	}

	next, ok := guard.NextPass()
	if !ok {
		t.Fatal("no next pass")
	}

	// Now (long before the first pass): idle.
	if !guard.Idle() {
		t.Fatal("not idle before the first pass")
	}

	// Inside the pre-AOS margin: busy.
	_ = k.RunUntil(next.AOS.Add(-10 * time.Second))
	if guard.Idle() {
		t.Fatal("idle within the pre-AOS margin")
	}

	// Mid-pass: busy.
	_ = k.RunUntil(next.AOS.Add(next.Duration() / 2))
	if guard.Idle() {
		t.Fatal("idle mid-pass")
	}

	// Just after LOS: idle again, and NextPass advances.
	_ = k.RunUntil(next.LOS.Add(time.Second))
	if !guard.Idle() {
		t.Fatal("not idle after LOS")
	}
	after, ok := guard.NextPass()
	if ok && !after.AOS.After(next.LOS) {
		t.Fatal("NextPass did not advance past the finished pass")
	}
}

func TestPassGuardRejectsBadElements(t *testing.T) {
	k := sim.New(3)
	bad := orbit.Elements{SemiMajorKm: 100, Epoch: k.Now()}
	if _, err := NewPassGuard(clock.Sim{K: k}, bad, orbit.StanfordStation(),
		k.Now(), time.Hour, 0.1, 0); err == nil {
		t.Fatal("bad elements accepted")
	}
}
