package station

import (
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/orbit"
)

// PassGuard decides when proactive downtime is acceptable (§5.2: downtime
// during a satellite pass is very expensive, between passes it is cheap).
// Plug its Idle method into core.RECParams.IdleCheck so the rejuvenation
// policy only restarts aging components between passes, with a safety
// margin before each AOS so a slow restart (pbcom, ~21 s) finishes before
// the satellite rises.
type PassGuard struct {
	clk    clock.Clock
	passes []orbit.Pass
	// Margin is the keep-quiet lead time before each AOS.
	Margin time.Duration
}

// NewPassGuard predicts the passes in [from, from+horizon] and returns a
// guard over them.
func NewPassGuard(clk clock.Clock, el orbit.Elements, ground orbit.Station,
	from time.Time, horizon time.Duration, minElevationRad float64, margin time.Duration) (*PassGuard, error) {
	passes, err := orbit.PredictPasses(el, ground, from, horizon, minElevationRad)
	if err != nil {
		return nil, err
	}
	return &PassGuard{clk: clk, passes: passes, Margin: margin}, nil
}

// Idle reports whether proactive downtime is acceptable right now: the
// station is outside every pass window (including the pre-AOS margin).
func (g *PassGuard) Idle() bool {
	now := g.clk.Now()
	for _, p := range g.passes {
		if !now.Before(p.AOS.Add(-g.Margin)) && !now.After(p.LOS) {
			return false
		}
	}
	return true
}

// NextPass returns the next upcoming pass after now, if any.
func (g *PassGuard) NextPass() (orbit.Pass, bool) {
	now := g.clk.Now()
	for _, p := range g.passes {
		if p.AOS.After(now) {
			return p, true
		}
	}
	return orbit.Pass{}, false
}

// Passes returns the predicted windows (copy).
func (g *PassGuard) Passes() []orbit.Pass {
	out := make([]orbit.Pass, len(g.passes))
	copy(out, g.passes)
	return out
}
