package station

import (
	"fmt"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/proc"
)

// Layout selects which component decomposition to build.
type Layout int

// Layouts.
const (
	// Monolithic is the original station: fedrcom as one process
	// (trees I and II).
	Monolithic Layout = iota + 1
	// Split is the station after the fedrcom split into fedr + pbcom
	// (trees III, IV and V).
	Split
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case Monolithic:
		return "monolithic"
	case Split:
		return "split"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Components returns the component set of the layout.
func (l Layout) Components() ([]string, error) {
	switch l {
	case Monolithic:
		return MonolithicComponents(), nil
	case Split:
		return SplitComponents(), nil
	default:
		return nil, fmt.Errorf("station: unknown layout %d", int(l))
	}
}

// Register registers the station's components with the manager and returns
// their names. The caller starts them (typically with StartBatch, which is
// itself the initial whole-system boot).
func Register(mgr *proc.Manager, p Params, layout Layout) ([]string, error) {
	if p.AntennaSlewRateRad <= 0 {
		return nil, fmt.Errorf("station: antenna slew rate must be positive")
	}
	names, err := layout.Components()
	if err != nil {
		return nil, err
	}
	if err := mgr.Register(MBus, bus.BrokerHandler(p.MBusStartup)); err != nil {
		return nil, err
	}
	switch layout {
	case Monolithic:
		if err := mgr.Register(Fedrcom, NewFedrcom(p)); err != nil {
			return nil, err
		}
		if err := mgr.Register(RTU, NewRTU(p, Fedrcom)); err != nil {
			return nil, err
		}
	case Split:
		if err := mgr.Register(Fedr, NewFedr(p)); err != nil {
			return nil, err
		}
		if err := mgr.Register(Pbcom, NewPbcom(p)); err != nil {
			return nil, err
		}
		if err := mgr.Register(RTU, NewRTU(p, Fedr)); err != nil {
			return nil, err
		}
	}
	if err := mgr.Register(SES, NewSES(p)); err != nil {
		return nil, err
	}
	if err := mgr.Register(STR, NewSTR(p)); err != nil {
		return nil, err
	}
	if p.Micro != nil {
		if layout != Split {
			return nil, fmt.Errorf("station: micro mode requires the split layout, got %s", layout)
		}
		if p.Micro.Store == nil {
			return nil, fmt.Errorf("station: micro mode requires a store")
		}
		if err := RegisterSubs(mgr); err != nil {
			return nil, err
		}
	}
	return names, nil
}
