package station

import (
	"strings"

	"github.com/recursive-restart/mercury/internal/radio"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

type rig struct {
	k     *sim.Kernel
	mgr   *proc.Manager
	bus   *bus.Sim
	log   *trace.Log
	comps []string
	coll  *Collector
}

func newRig(t *testing.T, layout Layout, seed int64) *rig {
	t.Helper()
	k := sim.New(seed)
	log := trace.NewLog()
	mgr := proc.NewManager(clock.Sim{K: k}, k.Rand(), log)
	b := bus.NewSim(clock.Sim{K: k}, mgr, MBus)
	mgr.SetTransport(b)
	p := DefaultParams(k.Now())
	comps, err := Register(mgr, p, layout)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	coll := NewCollector()
	if err := mgr.Register(Ops, coll.Handler()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(Ops); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mgr: mgr, bus: b, log: log, comps: comps, coll: coll}
}

func (r *rig) boot(t *testing.T) {
	t.Helper()
	if err := r.mgr.StartBatch(r.comps); err != nil {
		t.Fatalf("StartBatch: %v", err)
	}
	if err := r.k.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !r.mgr.AllServing(r.comps...) {
		for _, c := range r.comps {
			st, _ := r.mgr.State(c)
			t.Logf("%s: %v serving=%v", c, st, r.mgr.Serving(c))
		}
		t.Fatal("station did not fully boot")
	}
}

func TestMonolithicBoot(t *testing.T) {
	r := newRig(t, Monolithic, 1)
	r.boot(t)
}

func TestSplitBoot(t *testing.T) {
	r := newRig(t, Split, 1)
	r.boot(t)
}

func TestLayoutComponents(t *testing.T) {
	mono, err := Monolithic.Components()
	if err != nil || len(mono) != 5 {
		t.Fatalf("monolithic = %v, %v", mono, err)
	}
	split, err := Split.Components()
	if err != nil || len(split) != 6 {
		t.Fatalf("split = %v, %v", split, err)
	}
	if _, err := Layout(99).Components(); err == nil {
		t.Fatal("unknown layout accepted")
	}
	if Monolithic.String() != "monolithic" || Split.String() != "split" {
		t.Fatal("layout names wrong")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := newRig(t, Split, 1) // occupies names
	if _, err := Register(r.mgr, DefaultParams(r.k.Now()), Split); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	k := sim.New(1)
	mgr := proc.NewManager(clock.Sim{K: k}, k.Rand(), trace.NewLog())
	p := DefaultParams(k.Now())
	p.AntennaSlewRateRad = 0
	if _, err := Register(mgr, p, Split); err == nil {
		t.Fatal("zero slew rate accepted")
	}
	if _, err := Register(mgr, DefaultParams(k.Now()), Layout(42)); err == nil {
		t.Fatal("bad layout accepted")
	}
}

func TestReadyComponentAnswersPing(t *testing.T) {
	r := newRig(t, Split, 2)
	r.boot(t)
	fd := &pingSink{}
	if err := r.mgr.Register("fd", func() proc.Handler { return fd }); err != nil {
		t.Fatal(err)
	}
	_ = r.mgr.Start("fd")
	_ = r.k.RunFor(time.Second)
	r.bus.Send(xmlcmd.NewPing("fd", RTU, 1, 55))
	_ = r.k.RunFor(time.Second)
	if fd.pongs != 1 {
		t.Fatalf("pongs = %d, want 1", fd.pongs)
	}
}

func TestStartingComponentIgnoresPing(t *testing.T) {
	r := newRig(t, Split, 3)
	r.boot(t)
	fd := &pingSink{}
	_ = r.mgr.Register("fd", func() proc.Handler { return fd })
	_ = r.mgr.Start("fd")
	_ = r.k.RunFor(time.Second)
	_ = r.mgr.Restart([]string{RTU})
	r.bus.Send(xmlcmd.NewPing("fd", RTU, 1, 1))
	_ = r.k.RunFor(2 * time.Second) // rtu startup is ~4.9s; still starting
	if fd.pongs != 0 {
		t.Fatal("starting rtu answered ping")
	}
}

// TestLoneSesRestartInducesStrFailure reproduces the §4.3 artifact: a ses
// restart inevitably crashes str (f_ses ≈ 0, f_{ses,str} ≈ 1).
func TestLoneSesRestartInducesStrFailure(t *testing.T) {
	r := newRig(t, Split, 4)
	r.boot(t)
	if err := r.mgr.Restart([]string{SES}); err != nil {
		t.Fatal(err)
	}
	// Run until ses proposes its new epoch; str must crash.
	_ = r.k.RunFor(10 * time.Second)
	st, _ := r.mgr.State(STR)
	if st != proc.Dead {
		t.Fatalf("str state = %v, want Dead (induced failure)", st)
	}
	downs := r.log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.ComponentDown && e.Component == STR
	})
	if len(downs) == 0 || !strings.Contains(downs[len(downs)-1].Detail, "resynchronization") {
		t.Fatalf("str down events = %v", downs)
	}
	// ses is stuck in WAIT_SYNC, not ready.
	if r.mgr.Serving(SES) {
		t.Fatal("ses became ready without peer resync")
	}
	// Restarting str completes the handshake and both become ready.
	if err := r.mgr.Restart([]string{STR}); err != nil {
		t.Fatal(err)
	}
	_ = r.k.RunFor(15 * time.Second)
	if !r.mgr.Serving(SES) || !r.mgr.Serving(STR) {
		t.Fatal("pair did not recover after str restart")
	}
}

// TestJointSesStrRestartAvoidsInducedFailure is the consolidation payoff:
// restarting the pair together costs ~max of the two startups and induces
// nothing.
func TestJointSesStrRestartAvoidsInducedFailure(t *testing.T) {
	r := newRig(t, Split, 5)
	r.boot(t)
	start := r.k.Now()
	if err := r.mgr.Restart([]string{SES, STR}); err != nil {
		t.Fatal(err)
	}
	_ = r.k.RunWhile(func() bool {
		return !r.mgr.Serving(SES) || !r.mgr.Serving(STR)
	})
	elapsed := r.k.Now().Sub(start)
	if elapsed > 8*time.Second {
		t.Fatalf("joint restart took %v, want ~max startup + settle", elapsed)
	}
	// No component crashed during the joint restart.
	downs := r.log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.ComponentDown && e.At.After(start) &&
			strings.Contains(e.Detail, "resynchronization")
	})
	if len(downs) != 0 {
		t.Fatalf("induced failures during joint restart: %v", downs)
	}
}

// TestPbcomAging reproduces §4.2: repeated fedr failures eventually lead
// to a pbcom failure.
func TestPbcomAging(t *testing.T) {
	r := newRig(t, Split, 6)
	r.boot(t)
	limit := DefaultParams(r.k.Now()).PbcomAgeLimit
	for i := 0; i < limit; i++ {
		if st, _ := r.mgr.State(Pbcom); st == proc.Dead {
			break
		}
		_ = r.mgr.Restart([]string{Fedr})
		_ = r.k.RunFor(10 * time.Second)
	}
	st, _ := r.mgr.State(Pbcom)
	if st != proc.Dead {
		t.Fatalf("pbcom state = %v after %d fedr restarts, want Dead (aging)", st, limit)
	}
	downs := r.log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.ComponentDown && e.Component == Pbcom
	})
	if len(downs) == 0 || !strings.Contains(downs[len(downs)-1].Detail, "aged out") {
		t.Fatalf("pbcom down events = %v", downs)
	}
}

// TestFedrReadyRequiresPbcom: fedr only becomes ready once pbcom
// acknowledges the connection, so a joint restart costs ~pbcom's startup.
func TestFedrReadyRequiresPbcom(t *testing.T) {
	r := newRig(t, Split, 7)
	r.boot(t)
	_ = r.mgr.Kill(Pbcom, "test")
	_ = r.mgr.Restart([]string{Fedr})
	_ = r.k.RunFor(15 * time.Second) // fedr startup ~5s, but no pbcom
	if r.mgr.Serving(Fedr) {
		t.Fatal("fedr ready without pbcom connection")
	}
	_ = r.mgr.Restart([]string{Pbcom})
	_ = r.k.RunFor(30 * time.Second)
	if !r.mgr.Serving(Fedr) || !r.mgr.Serving(Pbcom) {
		t.Fatal("front end did not recover")
	}
}

// TestFedrFastRestartWhenPbcomUp: with pbcom up, a fedr restart completes
// in roughly its own startup time (the split's payoff).
func TestFedrFastRestartWhenPbcomUp(t *testing.T) {
	r := newRig(t, Split, 8)
	r.boot(t)
	start := r.k.Now()
	_ = r.mgr.Restart([]string{Fedr})
	_ = r.k.RunWhile(func() bool { return !r.mgr.Serving(Fedr) })
	elapsed := r.k.Now().Sub(start)
	if elapsed > 7*time.Second {
		t.Fatalf("fedr restart took %v, want ~5s", elapsed)
	}
}

// TestTelemetryFlows is the domain integration check: ses estimates drive
// str pointing and rtu tuning all the way to radio-locked telemetry.
func TestTelemetryFlows(t *testing.T) {
	r := newRig(t, Split, 9)
	r.boot(t)
	_ = r.k.RunFor(2 * time.Minute)
	if r.coll.Count("elevation_rad") == 0 {
		t.Fatal("no ses telemetry")
	}
	if r.coll.Count("on_target") == 0 {
		t.Fatal("no str tracking telemetry")
	}
	if r.coll.Count("radio_locked") == 0 {
		t.Fatal("no radio telemetry")
	}
	if v, ok := r.coll.Latest("radio_locked"); !ok || v != 1 {
		t.Fatalf("radio not locked: %v %v", v, ok)
	}
}

// TestMonolithicTelemetryFlows checks the tree-I/II data path through
// fedrcom.
func TestMonolithicTelemetryFlows(t *testing.T) {
	r := newRig(t, Monolithic, 10)
	r.boot(t)
	_ = r.k.RunFor(2 * time.Minute)
	if v, ok := r.coll.Latest("radio_locked"); !ok || v != 1 {
		t.Fatalf("radio not locked via fedrcom: %v %v", v, ok)
	}
}

// TestSyncSurvivesMbusRestart: the resync retransmission rides out a bus
// outage during a whole-system boot.
func TestSyncSurvivesMbusRestart(t *testing.T) {
	r := newRig(t, Split, 11)
	r.boot(t)
	// Restart ses, str and mbus together: sync proposals sent while mbus
	// is still starting get lost and must be retransmitted.
	if err := r.mgr.Restart([]string{SES, STR, MBus}); err != nil {
		t.Fatal(err)
	}
	_ = r.k.RunFor(30 * time.Second)
	if !r.mgr.Serving(SES) || !r.mgr.Serving(STR) || !r.mgr.Serving(MBus) {
		t.Fatal("pair did not resync after mbus restart")
	}
}

// TestDeterministicBoot: the same seed yields an identical event trace.
func TestDeterministicBoot(t *testing.T) {
	run := func() []string {
		r := newRig(t, Split, 42)
		r.boot(t)
		evs := r.log.Events()
		out := make([]string, len(evs))
		for i, e := range evs {
			out[i] = e.String()
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// pingSink counts pongs (a minimal FD stand-in).
type pingSink struct {
	pongs int
}

func (p *pingSink) Start(ctx proc.Context) { ctx.After(0, ctx.Ready) }
func (p *pingSink) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindPong {
		p.pongs++
	}
}

// TestSharedPortWedgeDefeatsRestart models the paper's §7 hard hardware
// failure: a wedged serial port makes every fedrcom restart fail, no
// matter how many times the recoverer pushes the button.
func TestSharedPortWedgeDefeatsRestart(t *testing.T) {
	k := sim.New(31)
	log := trace.NewLog()
	mgr := proc.NewManager(clock.Sim{K: k}, k.Rand(), log)
	b := bus.NewSim(clock.Sim{K: k}, mgr, MBus)
	mgr.SetTransport(b)
	p := DefaultParams(k.Now())

	port := radio.NewSerialPort(p.SerialNegotiation)
	if err := mgr.Register(Fedrcom, NewFedrcomSharedPort(p, port)); err != nil {
		t.Fatal(err)
	}
	// The physical port is released whenever the process dies.
	mgr.OnDown(func(name, _ string) {
		if name == Fedrcom {
			port.Close()
		}
	})

	if err := mgr.Start(Fedrcom); err != nil {
		t.Fatal(err)
	}
	_ = k.RunFor(30 * time.Second)
	if !mgr.Serving(Fedrcom) {
		t.Fatal("fedrcom did not boot on the shared port")
	}

	// A normal kill+restart cycle works: the port is released on death.
	_ = mgr.Kill(Fedrcom, "test")
	_ = mgr.Restart([]string{Fedrcom})
	_ = k.RunFor(30 * time.Second)
	if !mgr.Serving(Fedrcom) {
		t.Fatal("fedrcom did not recover after a clean kill")
	}

	// Wedge the hardware: every subsequent restart fails at port open.
	_ = mgr.Kill(Fedrcom, "crash")
	port.Wedge()
	for i := 0; i < 3; i++ {
		_ = mgr.Restart([]string{Fedrcom})
		_ = k.RunFor(30 * time.Second)
		if mgr.Serving(Fedrcom) {
			t.Fatal("restart cured a wedged port")
		}
	}
	downs := log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.ComponentDown && e.Component == Fedrcom &&
			strings.Contains(e.Detail, "serial port")
	})
	if len(downs) < 3 {
		t.Fatalf("expected repeated port-open failures, got %d", len(downs))
	}
	// Only the power cycle recovers it.
	port.Unwedge()
	_ = mgr.Restart([]string{Fedrcom})
	_ = k.RunFor(30 * time.Second)
	if !mgr.Serving(Fedrcom) {
		t.Fatal("fedrcom did not recover after power-cycling the port")
	}
}
