package station

import (
	"sort"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/store"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file implements the microrebootable decomposition of the fat
// components. In micro mode the session/track state that used to live in
// process memory — and forced the ses↔str co-restart — moves into the
// crash-only store behind leases, and each fat component splits into
// subcomponents whose logic can crash and be microrebooted individually
// while the hosting process's protocol shell keeps serving.
//
//	ses  = ses.cache (session epoch)  + ses.est  (estimator workload)
//	str  = str.cache (session epoch)  + str.track (antenna target)
//	fedr = fedr.session (pbcom connection session)
//
// A microreboot is "drop the logic, reattach to the state": the sub's
// reattach hook re-reads its state from the store and the sub is
// functional again after MicrorebootTime — no process teardown, no resync
// handshake, no induced peer failure.

// Subcomponent short names.
const (
	SubCache   = "cache"
	SubEst     = "est"
	SubTrack   = "track"
	SubSession = "session"
)

// Store keys for the externalized state.
const (
	KeySessionEpoch = "session/epoch" // shared ses↔str session epoch
	KeyTrackTarget  = "track/target"  // str's current antenna target
	KeyFedrSession  = "session/fedr"  // fedr's pbcom connection session
)

// MicroParams configures the microrebootable decomposition. A nil pointer
// in Params means the classic monolithic-state components — byte-identical
// to the seed behaviour.
type MicroParams struct {
	// Store is the crash-only state store (required).
	Store *store.Store
	// MicrorebootTime is the subcomponent re-init time: drop logic,
	// reattach to store state. The paper's successors measure this at
	// orders of magnitude below process restart.
	MicrorebootTime time.Duration
	// ReattachSettle replaces SyncSettle when a restarted component adopts
	// the surviving session epoch from the store instead of handshaking
	// with its peer.
	ReattachSettle time.Duration
	// SubFaultDetect is the in-process assertion latency: how quickly the
	// hosting container catches a crashed subcomponent and reports it.
	SubFaultDetect time.Duration
	// SubReReport is the re-report period while a subcomponent stays
	// broken (covers report loss and REC restarts).
	SubReReport time.Duration
	// SessionTTL is the store lease TTL on externalized state; components
	// renew at a third of it. Once every holder is dead for a full TTL the
	// state dies with them — the crash-only contract.
	SessionTTL time.Duration
}

// DefaultMicroParams returns the calibrated micro-mode configuration on
// the given store.
func DefaultMicroParams(st *store.Store) *MicroParams {
	return &MicroParams{
		Store:           st,
		MicrorebootTime: 250 * time.Millisecond,
		ReattachSettle:  300 * time.Millisecond,
		SubFaultDetect:  200 * time.Millisecond,
		SubReReport:     2 * time.Second,
		SessionTTL:      30 * time.Second,
	}
}

// MicroSubs maps each fat component to its subcomponent short names; this
// is both the proc registration set and the SubAugment input for the
// m-variant trees.
func MicroSubs() map[string][]string {
	return map[string][]string{
		SES:  {SubCache, SubEst},
		STR:  {SubCache, SubTrack},
		Fedr: {SubSession},
	}
}

// MicroCheckpointKeys maps each stateful subcomponent (dotted name) to the
// store keys holding its externalized state — the checkpoint manager's
// coverage map. Stateless subs (ses.est) are not checkpointable: a
// microreboot already recovers everything they have.
func MicroCheckpointKeys() map[string][]string {
	return map[string][]string{
		proc.SubName(SES, SubCache):    {KeySessionEpoch},
		proc.SubName(STR, SubTrack):    {KeyTrackTarget},
		proc.SubName(Fedr, SubSession): {KeyFedrSession},
	}
}

// RegisterSubs registers the microrebootable subcomponents with the
// manager, in deterministic order.
func RegisterSubs(mgr *proc.Manager) error {
	subs := MicroSubs()
	parents := make([]string, 0, len(subs))
	for parent := range subs {
		parents = append(parents, parent)
	}
	sort.Strings(parents)
	for _, parent := range parents {
		for _, short := range subs[parent] {
			if err := mgr.RegisterSub(parent, short); err != nil {
				return err
			}
		}
	}
	return nil
}

// microState is the per-incarnation container bookkeeping base carries in
// micro mode: which subcomponents are currently broken, and how to
// reattach each one to its store state.
type microState struct {
	ctx      proc.Context
	broken   map[string]bool
	reattach map[string]func()
	leases   []*store.Lease
	renewer  *clock.Ticker
}

// microArm initialises the container for this incarnation. Components call
// it at Start; it is a no-op in classic mode.
func (b *base) microArm(ctx proc.Context) {
	if b.params.Micro == nil {
		return
	}
	b.micro = &microState{
		ctx:      ctx,
		broken:   make(map[string]bool),
		reattach: make(map[string]func()),
	}
}

// microHook registers sub's reattach logic, run on every microreboot.
func (b *base) microHook(sub string, fn func()) {
	if b.micro != nil {
		b.micro.reattach[sub] = fn
	}
}

// microLease tracks a lease for periodic renewal and starts the renewal
// ticker on first use. Tickers ride the incarnation context, so renewals
// stop the instant the process dies — which is exactly what lets the state
// expire when nobody is left alive to claim it.
func (b *base) microLease(ctx proc.Context, l *store.Lease) {
	m := b.micro
	m.leases = append(m.leases, l)
	if m.renewer == nil {
		ttl := b.params.Micro.SessionTTL
		m.renewer = clock.NewTicker(tickClock{ctx}, ttl/3, func() {
			for _, l := range m.leases {
				_ = l.Renew(ttl) // a lost lease re-arms via the next reattach
			}
		})
	}
}

// subOK reports whether a subcomponent's logic is functional. Classic-mode
// components have no subs and are always whole.
func (b *base) subOK(sub string) bool {
	return b.micro == nil || !b.micro.broken[sub]
}

// SubFail implements proc.Microrebootable: the named subcomponent's logic
// crashed. The container shell keeps serving (pings, beacons, unrelated
// subs), notices after the assertion latency and self-reports to FD,
// re-reporting until a recovery action repairs the sub.
func (b *base) SubFail(sub string) {
	if b.micro == nil {
		return
	}
	b.micro.broken[sub] = true
	b.scheduleSubReport(sub, b.params.Micro.SubFaultDetect)
}

func (b *base) scheduleSubReport(sub string, after time.Duration) {
	ctx := b.micro.ctx
	ctx.After(after, func() {
		if b.micro == nil || !b.micro.broken[sub] {
			return
		}
		ctx.Send(xmlcmd.NewEvent(ctx.Name(), xmlcmd.AddrFD, b.nextSeq(),
			"subfault", proc.SubName(ctx.Name(), sub)))
		b.scheduleSubReport(sub, b.params.Micro.SubReReport)
	})
}

// SubMicroreboot implements proc.Microrebootable: discard the sub's logic
// state and reattach it to the store. The manager marks the sub ready
// after the returned re-init delay.
func (b *base) SubMicroreboot(sub string) time.Duration {
	if b.micro == nil {
		return 0
	}
	delete(b.micro.broken, sub)
	if fn := b.micro.reattach[sub]; fn != nil {
		fn()
	}
	return b.params.Micro.MicrorebootTime
}

// trackTarget is str's externalized antenna target.
type trackTarget struct {
	az, el float64
}

// trackCodec encodes a trackTarget as two fixed-width floats.
func trackCodec() store.Codec[trackTarget] {
	return store.Codec[trackTarget]{
		Append: func(dst []byte, v trackTarget) []byte {
			dst = store.AppendFloat64(dst, v.az)
			return store.AppendFloat64(dst, v.el)
		},
		Parse: func(src []byte) (trackTarget, bool) {
			az, rest, ok := store.ParseFloat64(src)
			if !ok {
				return trackTarget{}, false
			}
			el, rest, ok := store.ParseFloat64(rest)
			if !ok || len(rest) != 0 {
				return trackTarget{}, false
			}
			return trackTarget{az: az, el: el}, true
		},
	}
}

// sessionCell is the typed view of the shared session epoch.
type sessionCell = store.Cell[int64]

// acquireSessionCell leases the shared ses↔str session epoch. Both peers
// use the same co-ownership token: either can reattach while the other
// lives, and the epoch dies only when both stay dead for a full TTL.
func acquireSessionCell(ctx proc.Context, b *base) (*sessionCell, bool) {
	mp := b.params.Micro
	l, err := mp.Store.Acquire(KeySessionEpoch, "ses+str", mp.SessionTTL)
	if err != nil {
		return nil, false
	}
	b.microLease(ctx, l)
	return store.NewCell(l, store.Int64Codec()), true
}
