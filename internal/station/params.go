// Package station implements the Mercury ground-station components as
// restartable actors: the satellite estimator (ses), satellite tracker
// (str), radio tuner (rtu), the monolithic front-end driver (fedrcom) and
// its split successors (fedr + pbcom).
//
// The components reproduce the failure-relevant behaviours the paper
// measures:
//
//   - startup durations calibrated near the paper's restart times,
//     stretched under whole-system restart contention;
//   - the ses↔str startup resynchronisation artifact: restarting one
//     inevitably crashes the other (f_ses ≈ f_str ≈ 0, f_{ses,str} ≈ 1);
//   - pbcom's slow serial-port negotiation (high MTTR, high MTTF) versus
//     fedr's quick restart but buggy translator (low MTTR, low MTTF);
//   - pbcom aging: every severed fedr connection ages pbcom until it
//     eventually fails — the correlated-failure tail the paper observed.
package station

import (
	"time"

	"github.com/recursive-restart/mercury/internal/orbit"
)

// Component bus addresses re-exported for convenience.
const (
	MBus    = "mbus"
	Fedrcom = "fedrcom"
	Fedr    = "fedr"
	Pbcom   = "pbcom"
	SES     = "ses"
	STR     = "str"
	RTU     = "rtu"
)

// Params collects every tunable constant of the station simulation. The
// defaults are calibrated so the reproduced tables land near the paper's
// measurements (see DESIGN.md §6 and EXPERIMENTS.md).
type Params struct {
	// Base startup times (before contention stretch and jitter).
	MBusStartup    time.Duration
	FedrcomStartup time.Duration // serial negotiation + init, monolithic
	FedrStartup    time.Duration
	PbcomStartup   time.Duration // dominated by serial negotiation
	SesStartup     time.Duration
	StrStartup     time.Duration
	RtuStartup     time.Duration

	// StartupJitterFrac randomises each startup by ±frac.
	StartupJitterFrac float64

	// SyncSettle is the time ses/str take to finish resynchronising after
	// agreeing on a session epoch.
	SyncSettle time.Duration
	// SyncRetransmit is the period at which a component in WAIT_SYNC
	// re-proposes its epoch (covers losses while mbus restarts).
	SyncRetransmit time.Duration

	// ConnectRetransmit is fedr's reconnect retry period toward pbcom.
	ConnectRetransmit time.Duration

	// PbcomAgeLimit is how many severed fedr connections pbcom survives
	// before its accumulated aging kills it (paper §4.2: "multiple fedr
	// failures eventually lead to a pbcom failure").
	PbcomAgeLimit int

	// SerialNegotiation is the port handshake share of pbcom/fedrcom
	// startup (informational split; the startup totals above govern).
	SerialNegotiation time.Duration
	// TuneTime is the radio synthesizer settle time per retune.
	TuneTime time.Duration

	// TelemetryPeriod is how often ses publishes pointing/tuning updates
	// during a pass.
	TelemetryPeriod time.Duration

	// HealthPeriod is the health-summary beacon period (0 disables).
	HealthPeriod time.Duration

	// Elements and Ground define the tracking workload.
	Elements orbit.Elements
	Ground   orbit.Station

	// AntennaSlewRateRad and AntennaBeamwidthRad parameterise the tracker.
	AntennaSlewRateRad  float64
	AntennaBeamwidthRad float64

	// CarrierHz is the downlink the rtu keeps tuned (Doppler-corrected).
	CarrierHz float64

	// Micro enables the microrebootable decomposition on a crash-only
	// store (see micro.go); nil means the classic monolithic-state
	// components.
	Micro *MicroParams
}

// DefaultParams returns the calibrated parameter set. The epoch anchors
// the workload satellite's elements.
func DefaultParams(epoch time.Time) Params {
	return Params{
		MBusStartup:    5000 * time.Millisecond,
		FedrcomStartup: 20200 * time.Millisecond,
		FedrStartup:    5050 * time.Millisecond,
		PbcomStartup:   20500 * time.Millisecond,
		SesStartup:     3500 * time.Millisecond,
		StrStartup:     3750 * time.Millisecond,
		RtuStartup:     4900 * time.Millisecond,

		StartupJitterFrac: 0.02,

		SyncSettle:     1200 * time.Millisecond,
		SyncRetransmit: time.Second,

		ConnectRetransmit: time.Second,
		PbcomAgeLimit:     6,

		SerialNegotiation: 15500 * time.Millisecond,
		TuneTime:          150 * time.Millisecond,

		TelemetryPeriod: 2 * time.Second,
		HealthPeriod:    5 * time.Second,

		Elements: orbit.SSOElements(epoch),
		Ground:   orbit.StanfordStation(),

		AntennaSlewRateRad:  0.10, // ~5.7 deg/s, typical az/el rotator
		AntennaBeamwidthRad: 0.30, // wide UHF yagi beam

		CarrierHz: 437.1e6,
	}
}

// MonolithicComponents lists the tree-I/II component set.
func MonolithicComponents() []string {
	return []string{MBus, Fedrcom, SES, STR, RTU}
}

// SplitComponents lists the component set after the fedrcom split
// (trees III, IV, V).
func SplitComponents() []string {
	return []string{MBus, Fedr, Pbcom, SES, STR, RTU}
}
