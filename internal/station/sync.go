package station

import (
	"fmt"

	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// syncCore implements the ses↔str startup-resynchronisation protocol.
//
// The paper (§4.3): the two components "synchronize with each other at
// startup and, when either is restarted, the other will inevitably have to
// be restarted as well. When restarted, both ses and str block waiting for
// the peer component to resynchronize." That is:
//
//   - A freshly started component proposes a new session epoch to its peer
//     and blocks (WAIT_SYNC) until the epoch is agreed.
//   - A peer that is itself starting adopts the larger epoch: both settle
//     and become ready.
//   - A peer that is already running sees an epoch it cannot adopt and
//     crashes — the induced correlated failure (f_ses ≈ f_str ≈ 0,
//     f_{ses,str} ≈ 1) that motivates group consolidation.
//
// Proposals are retransmitted until acknowledged so the handshake survives
// message loss (e.g. while mbus is itself restarting).
type syncCore struct {
	base
	peer string

	myEpoch    int64
	peerEpoch  int64 // proposal buffered while still initialising
	inWaitSync bool
	synced     bool

	// session is the externalized epoch cell in micro mode; nil classic.
	session *sessionCell
}

// enterWaitSync is called when base initialisation finishes. In micro mode
// the session epoch lives in the crash-only store: if a live epoch
// survives there, this incarnation reattaches to it without any handshake
// — the running peer is never disturbed, so the induced correlated
// failure (restart one, crash the other) disappears. The handshake only
// runs when no epoch survives (both peers dead past the lease TTL), and
// its agreed epoch is persisted for the next restart.
func (s *syncCore) enterWaitSync(ctx proc.Context) {
	if s.params.Micro != nil && s.session == nil {
		if cell, ok := acquireSessionCell(ctx, &s.base); ok {
			s.session = cell
		}
	}
	if s.session != nil {
		if epoch, ok := s.session.Load(); ok {
			s.myEpoch = epoch
			s.synced = true
			ctx.After(s.params.Micro.ReattachSettle, func() { s.becomeReady(ctx) })
			return
		}
	}
	s.inWaitSync = true
	s.myEpoch = ctx.Rand().Int63()
	if s.peerEpoch != 0 {
		// The peer proposed while we were initialising; agree now.
		s.agree(ctx, maxInt64(s.myEpoch, s.peerEpoch))
		ctx.Send(xmlcmd.NewSyncAck(ctx.Name(), s.peer, s.nextSeq(), s.myEpoch))
		return
	}
	s.sendSync(ctx)
	s.retransmitLoop(ctx)
}

// sendSync proposes the current epoch to the peer.
func (s *syncCore) sendSync(ctx proc.Context) {
	ctx.Send(xmlcmd.NewSync(ctx.Name(), s.peer, s.nextSeq(), s.myEpoch))
}

// retransmitLoop re-proposes until synced; the timer dies with the
// incarnation automatically.
func (s *syncCore) retransmitLoop(ctx proc.Context) {
	ctx.After(s.params.SyncRetransmit, func() {
		if s.synced {
			return
		}
		s.sendSync(ctx)
		s.retransmitLoop(ctx)
	})
}

// agree adopts the winning epoch and schedules readiness after the settle
// time. In micro mode the agreed epoch is persisted so future restarts
// reattach instead of handshaking.
func (s *syncCore) agree(ctx proc.Context, epoch int64) {
	s.myEpoch = epoch
	s.synced = true
	if s.session != nil {
		_ = s.session.Save(epoch)
	}
	ctx.After(s.params.SyncSettle, func() { s.becomeReady(ctx) })
}

// reloadEpoch is the cache subcomponent's reattach hook: re-read the
// session epoch from the store after a microreboot dropped the logic copy.
func (s *syncCore) reloadEpoch() {
	if s.session != nil {
		if e, ok := s.session.Load(); ok {
			s.myEpoch = e
		}
	}
}

// handleSync processes a peer proposal.
func (s *syncCore) handleSync(ctx proc.Context, m *xmlcmd.Message) {
	e := m.Sync.Epoch
	switch {
	case s.ready:
		if e != s.myEpoch {
			// A running component cannot resynchronise with a restarted
			// peer: the failure the paper observed. The restart of the
			// peer thereby induces this component's failure.
			ctx.Fail(fmt.Sprintf("resynchronization with restarted %s failed (epoch %d != %d)",
				s.peer, e, s.myEpoch))
			return
		}
		// Same epoch: duplicate proposal; re-acknowledge.
		ctx.Send(xmlcmd.NewSyncAck(ctx.Name(), s.peer, s.nextSeq(), s.myEpoch))
	case s.inWaitSync && !s.synced:
		winner := maxInt64(s.myEpoch, e)
		s.agree(ctx, winner)
		ctx.Send(xmlcmd.NewSyncAck(ctx.Name(), s.peer, s.nextSeq(), winner))
	case s.inWaitSync && s.synced:
		// Settling; the peer may have missed the ack.
		ctx.Send(xmlcmd.NewSyncAck(ctx.Name(), s.peer, s.nextSeq(), s.myEpoch))
	default:
		// Still initialising: buffer and answer on WAIT_SYNC entry.
		s.peerEpoch = e
	}
}

// handleSyncAck processes the peer's acceptance.
func (s *syncCore) handleSyncAck(ctx proc.Context, m *xmlcmd.Message) {
	if s.inWaitSync && !s.synced {
		s.agree(ctx, m.SyncAck.Epoch)
	}
	// Duplicate or late acks are ignored.
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
