package station

import (
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// base carries the behaviour every station component shares: readiness
// gating of liveness pings, per-incarnation sequence numbers, startup
// jitter, health-summary beacons, and a pooled-envelope mint for
// steady-state replies.
type base struct {
	params Params
	ready  bool
	seq    uint64
	pool   msgPool

	healthTicker *clock.Ticker
	warnings     int
	ageScore     float64
	queueDepth   int

	// micro is the microrebootable-container state; nil in classic mode
	// (see micro.go).
	micro *microState
}

// nextSeq returns a fresh sender-scoped sequence number.
func (b *base) nextSeq() uint64 {
	b.seq++
	return b.seq
}

// msgPool recycles a component's outbound reply/forward envelopes through
// the simulated fabric: each minted message carries the pool as its Owner,
// and bus.Sim hands it back once the last in-flight copy is delivered or
// dropped. Steady-state acks and single-param command forwards therefore
// allocate nothing — the property the request plane's 0 allocs/request
// budget rests on. Envelopes are typed by body (a pool-minted message
// carries exactly one body for its whole life), and everything runs on the
// single kernel dispatch context, so no locking.
type msgPool struct {
	acks []*xmlcmd.Message
	cmds []*xmlcmd.Message
}

var _ xmlcmd.Recycler = (*msgPool)(nil)

// RecycleMessage implements xmlcmd.Recycler.
func (p *msgPool) RecycleMessage(m *xmlcmd.Message) {
	switch {
	case m.Ack != nil:
		p.acks = append(p.acks, m)
	case m.Command != nil:
		p.cmds = append(p.cmds, m)
	}
}

// newAck mints a pooled equivalent of xmlcmd.NewAck.
func (p *msgPool) newAck(from, to string, seq, ofSeq uint64, ok bool, errStr string) *xmlcmd.Message {
	var m *xmlcmd.Message
	if n := len(p.acks); n > 0 {
		m = p.acks[n-1]
		p.acks = p.acks[:n-1]
	} else {
		m = &xmlcmd.Message{Ack: new(xmlcmd.Ack), Owner: p}
	}
	m.From, m.To, m.Seq = from, to, seq
	*m.Ack = xmlcmd.Ack{OfSeq: ofSeq, OK: ok, Error: errStr}
	return m
}

// newCommand1 mints a pooled single-parameter command. Callers forwarding
// a numeric parameter should pass the incoming wire string through
// unchanged rather than re-formatting: FormatFloat∘ParseFloat is exact, so
// the forwarded bytes are identical and the formatting allocation
// disappears.
func (p *msgPool) newCommand1(from, to string, seq uint64, name, key, value string) *xmlcmd.Message {
	var m *xmlcmd.Message
	if n := len(p.cmds); n > 0 {
		m = p.cmds[n-1]
		p.cmds = p.cmds[:n-1]
		m.Command.Params = m.Command.Params[:0]
	} else {
		m = &xmlcmd.Message{Command: &xmlcmd.Command{Params: make([]xmlcmd.Param, 0, 1)}, Owner: p}
	}
	m.From, m.To, m.Seq = from, to, seq
	m.Command.Name = name
	m.Command.Params = append(m.Command.Params, xmlcmd.Param{Key: key, Value: value})
	return m
}

// startupDelay computes this incarnation's startup duration: the base time
// stretched by restart contention, with a small jitter.
func (b *base) startupDelay(ctx proc.Context, baseDur time.Duration) time.Duration {
	d := time.Duration(float64(baseDur) * ctx.Stretch())
	return clock.Jitter(ctx.Rand(), d, b.params.StartupJitterFrac)
}

// handleCommon services the protocol traffic shared by all components. It
// reports whether the message was consumed.
func (b *base) handleCommon(ctx proc.Context, m *xmlcmd.Message) bool {
	switch m.Kind() {
	case xmlcmd.KindPing:
		// Only a functionally-ready component certifies liveness; a ping
		// during startup goes unanswered, so FD keeps treating the
		// component as down until it really serves (paper §2.2).
		if b.ready {
			ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
		}
		return true
	case xmlcmd.KindPong, xmlcmd.KindAck, xmlcmd.KindHealth:
		// Absorbed by default; components that care override before
		// delegating here.
		return true
	}
	return false
}

// becomeReady flips the component to ready, starts its health beacon and
// reports readiness to the process manager.
func (b *base) becomeReady(ctx proc.Context) {
	if b.ready {
		return
	}
	b.ready = true
	if b.params.HealthPeriod > 0 {
		startedAt := ctx.Now()
		b.healthTicker = clock.NewTicker(tickClock{ctx}, b.params.HealthPeriod, func() {
			ctx.Send(&xmlcmd.Message{
				From: ctx.Name(),
				To:   xmlcmd.AddrFD,
				Seq:  b.nextSeq(),
				Health: &xmlcmd.Health{
					Incarnation: ctx.Incarnation(),
					UptimeMs:    ctx.Now().Sub(startedAt).Milliseconds(),
					QueueDepth:  b.queueDepth,
					AgeScore:    b.ageScore,
					Warnings:    b.warnings,
					Suspect:     b.ageScore >= 0.8,
				},
			})
		})
	}
	ctx.Ready()
}

// tickClock adapts a proc.Context to clock.Clock so tickers die with the
// incarnation (ctx.After drops callbacks of ended incarnations).
type tickClock struct {
	ctx proc.Context
}

func (t tickClock) Now() time.Time { return t.ctx.Now() }
func (t tickClock) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return t.ctx.After(d, fn)
}
func (t tickClock) Schedule(d time.Duration, ev clock.Event) {
	t.ctx.After(d, ev.Fire)
}
