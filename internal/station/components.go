package station

import (
	"fmt"
	"strconv"
	"time"

	"github.com/recursive-restart/mercury/internal/antenna"
	"github.com/recursive-restart/mercury/internal/orbit"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/radio"
	"github.com/recursive-restart/mercury/internal/store"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// Ops is the bus address of the operations console / telemetry sink.
const Ops = "ops"

// sesComponent is the satellite estimator: it computes satellite position,
// antenna pointing angles and Doppler-corrected radio frequencies, and
// commands str and rtu accordingly. It resynchronises with str at startup.
type sesComponent struct {
	syncCore
	front string // rtu's downstream front end, for context only
}

// NewSES returns a factory for the ses handler.
func NewSES(p Params) func() proc.Handler {
	return func() proc.Handler {
		c := &sesComponent{}
		c.params = p
		c.peer = STR
		return c
	}
}

func (c *sesComponent) Start(ctx proc.Context) {
	c.microArm(ctx)
	c.microHook(SubCache, c.reloadEpoch)
	d := c.startupDelay(ctx, c.params.SesStartup)
	ctx.After(d, func() { c.enterWaitSync(ctx) })
	c.scheduleEstimation(ctx)
}

// scheduleEstimation drives the pass workload once ready: every telemetry
// period, point the antenna and retune the radio for Doppler. In micro
// mode the workload pauses while the estimator or session-cache
// subcomponent is crashed — the container shell keeps serving.
func (c *sesComponent) scheduleEstimation(ctx proc.Context) {
	ctx.After(c.params.TelemetryPeriod, func() {
		if c.ready && c.subOK(SubEst) && c.subOK(SubCache) {
			c.estimate(ctx)
		}
		c.scheduleEstimation(ctx)
	})
}

func (c *sesComponent) estimate(ctx proc.Context) {
	look, err := orbit.LookAt(c.params.Elements, c.params.Ground, ctx.Now())
	if err != nil {
		c.warnings++
		return
	}
	ctx.Send(xmlcmd.NewCommand(SES, STR, c.nextSeq(), "point",
		"azRad", formatFloat(look.AzimuthRad),
		"elRad", formatFloat(look.ElevationRad)))
	freq := c.params.CarrierHz + look.DopplerHz(c.params.CarrierHz)
	ctx.Send(xmlcmd.NewCommand(SES, RTU, c.nextSeq(), "tune",
		"freqHz", formatFloat(freq)))
	ctx.Send(xmlcmd.NewTelemetry(SES, Ops, c.nextSeq(), "elevation_rad",
		look.ElevationRad, ctx.Now()))
}

func (c *sesComponent) Receive(ctx proc.Context, m *xmlcmd.Message) {
	switch m.Kind() {
	case xmlcmd.KindSync:
		c.handleSync(ctx, m)
	case xmlcmd.KindSyncAck:
		c.handleSyncAck(ctx, m)
	default:
		c.handleCommon(ctx, m)
	}
}

// strComponent is the satellite tracker: it drives the antenna toward the
// pointing targets ses computes and reports whether the link geometry
// holds. It resynchronises with ses at startup.
type strComponent struct {
	syncCore
	ant      *antenna.Model
	targetAz float64
	targetEl float64
	haveTgt  bool

	// track is the externalized antenna target in micro mode; nil classic.
	track *store.Cell[trackTarget]
}

// NewSTR returns a factory for the str handler.
func NewSTR(p Params) func() proc.Handler {
	return func() proc.Handler {
		c := &strComponent{}
		c.params = p
		c.peer = SES
		ant, err := antenna.New(p.AntennaSlewRateRad, p.AntennaBeamwidthRad)
		if err != nil {
			// Parameters are validated at registration; reaching this
			// means a programming error in the caller.
			panic(fmt.Sprintf("station: bad antenna params: %v", err))
		}
		c.ant = ant
		return c
	}
}

func (c *strComponent) Start(ctx proc.Context) {
	c.microArm(ctx)
	c.microHook(SubCache, c.reloadEpoch)
	c.microHook(SubTrack, func() { c.reloadTrack() })
	if mp := c.params.Micro; mp != nil {
		if l, err := mp.Store.Acquire(KeyTrackTarget, STR, mp.SessionTTL); err == nil {
			c.microLease(ctx, l)
			c.track = store.NewCell(l, trackCodec())
			// A target surviving a process restart resumes tracking
			// immediately instead of waiting for ses's next point command.
			c.reloadTrack()
		}
	}
	d := c.startupDelay(ctx, c.params.StrStartup)
	ctx.After(d, func() { c.enterWaitSync(ctx) })
	c.scheduleTracking(ctx)
}

// reloadTrack is the track subcomponent's reattach path: re-adopt the
// externalized antenna target.
func (c *strComponent) reloadTrack() {
	if c.track == nil {
		return
	}
	if t, ok := c.track.Load(); ok {
		c.targetAz, c.targetEl, c.haveTgt = t.az, t.el, true
	}
}

// scheduleTracking steps the antenna once a second while ready (and, in
// micro mode, while the tracking subcomponents are whole).
func (c *strComponent) scheduleTracking(ctx proc.Context) {
	const tick = time.Second
	ctx.After(tick, func() {
		if c.ready && c.haveTgt && c.subOK(SubTrack) && c.subOK(SubCache) {
			c.ant.Step(c.targetAz, c.targetEl, tick)
			onTarget := 0.0
			if c.ant.OnTarget(c.targetAz, c.targetEl) {
				onTarget = 1
			}
			ctx.Send(xmlcmd.NewTelemetry(STR, Ops, c.nextSeq(), "on_target",
				onTarget, ctx.Now()))
		}
		c.scheduleTracking(ctx)
	})
}

func (c *strComponent) Receive(ctx proc.Context, m *xmlcmd.Message) {
	switch m.Kind() {
	case xmlcmd.KindSync:
		c.handleSync(ctx, m)
	case xmlcmd.KindSyncAck:
		c.handleSyncAck(ctx, m)
	case xmlcmd.KindCommand:
		if m.Command.Name != "point" || !c.ready || !c.subOK(SubTrack) {
			return
		}
		az, errA := m.Command.FloatParam("azRad")
		el, errE := m.Command.FloatParam("elRad")
		if errA != nil || errE != nil {
			c.warnings++
			return
		}
		c.targetAz, c.targetEl, c.haveTgt = az, el, true
		if c.track != nil {
			_ = c.track.Save(trackTarget{az: az, el: el})
		}
		ctx.Send(c.pool.newAck(STR, m.From, c.nextSeq(), m.Seq, true, ""))
	default:
		c.handleCommon(ctx, m)
	}
}

// rtuComponent is the radio tuner: it accepts high-level tune commands
// from ses and forwards them to the radio front end (fedrcom before the
// split, fedr after).
type rtuComponent struct {
	base
	front      string
	lastFreqHz float64
}

// NewRTU returns a factory for the rtu handler. front names the component
// that owns the radio (Fedrcom or Fedr).
func NewRTU(p Params, front string) func() proc.Handler {
	return func() proc.Handler {
		c := &rtuComponent{front: front}
		c.params = p
		return c
	}
}

func (c *rtuComponent) Start(ctx proc.Context) {
	d := c.startupDelay(ctx, c.params.RtuStartup)
	ctx.After(d, func() { c.becomeReady(ctx) })
}

func (c *rtuComponent) Receive(ctx proc.Context, m *xmlcmd.Message) {
	switch m.Kind() {
	case xmlcmd.KindCommand:
		if m.Command.Name != "tune" || !c.ready {
			return
		}
		f, err := m.Command.FloatParam("freqHz")
		if err != nil {
			c.warnings++
			return
		}
		c.lastFreqHz = f
		// Forward the wire string as-is: it parsed, and re-formatting the
		// parsed float reproduces the same bytes (round-trip exactness), so
		// the old formatFloat here was pure allocation.
		v, _ := m.Command.Param("freqHz")
		ctx.Send(c.pool.newCommand1(RTU, c.front, c.nextSeq(), "radio-tune",
			"freqHz", v))
		ctx.Send(c.pool.newAck(RTU, m.From, c.nextSeq(), m.Seq, true, ""))
	default:
		c.handleCommon(ctx, m)
	}
}

// fedrcomComponent is the original monolithic bidirectional proxy between
// XML commands and low-level radio commands. It owns the serial port, so a
// restart pays the full hardware negotiation (high MTTR); its command
// translator is the unstable half (low MTTF) — the bad combination the
// split fixes.
type fedrcomComponent struct {
	base
	port *radio.SerialPort
	xcvr *radio.Transceiver
}

// NewFedrcom returns a factory for the monolithic front end. Each
// incarnation gets a fresh serial-port model (the process re-opens the
// device); use NewFedrcomSharedPort to model the physical device whose
// state survives process restarts.
func NewFedrcom(p Params) func() proc.Handler {
	return func() proc.Handler {
		c := &fedrcomComponent{}
		c.params = p
		c.port = radio.NewSerialPort(p.SerialNegotiation)
		c.xcvr = radio.NewTransceiver(c.port, radio.UHFAmateur, p.TuneTime)
		return c
	}
}

// NewFedrcomSharedPort returns a fedrcom factory bound to an externally
// owned serial port — the physical device. The caller must arrange for the
// port to be released when the process dies (Manager.OnDown → port.Close),
// since a killed process cannot clean up after itself. A wedged port makes
// every restart fail: the class of hard hardware failure the paper's §7
// notes restarting cannot cure.
func NewFedrcomSharedPort(p Params, port *radio.SerialPort) func() proc.Handler {
	return func() proc.Handler {
		c := &fedrcomComponent{}
		c.params = p
		c.port = port
		c.xcvr = radio.NewTransceiver(port, radio.UHFAmateur, p.TuneTime)
		return c
	}
}

func (c *fedrcomComponent) Start(ctx proc.Context) {
	if err := c.port.BeginOpen(); err != nil {
		ctx.Fail("serial port open: " + err.Error())
		return
	}
	// The negotiation plus translator init is the calibrated startup time.
	d := c.startupDelay(ctx, c.params.FedrcomStartup)
	ctx.After(d, func() {
		if err := c.port.FinishNegotiation(); err != nil {
			ctx.Fail("serial negotiation: " + err.Error())
			return
		}
		c.becomeReady(ctx)
	})
}

func (c *fedrcomComponent) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindCommand && m.Command.Name == "radio-tune" && c.ready {
		c.applyTune(ctx, m)
		return
	}
	c.handleCommon(ctx, m)
}

func (c *fedrcomComponent) applyTune(ctx proc.Context, m *xmlcmd.Message) {
	f, err := m.Command.FloatParam("freqHz")
	if err != nil {
		c.warnings++
		return
	}
	if err := c.xcvr.BeginTune(f); err != nil {
		c.warnings++
		ctx.Send(xmlcmd.NewAck(ctx.Name(), m.From, c.nextSeq(), m.Seq, false, err.Error()))
		return
	}
	ctx.After(c.params.TuneTime, func() {
		c.xcvr.FinishTune()
		locked := 0.0
		if c.xcvr.Locked() {
			locked = 1
		}
		ctx.Send(xmlcmd.NewTelemetry(ctx.Name(), Ops, c.nextSeq(), "radio_locked",
			locked, ctx.Now()))
	})
	ctx.Send(xmlcmd.NewAck(ctx.Name(), m.From, c.nextSeq(), m.Seq, true, ""))
}

// pbcomComponent maps the serial port to the bus: simple and very stable,
// but slow to recover (hardware negotiation). It ages every time it loses
// the connection from fedr; enough losses kill it — the residual
// correlated failure after the split.
type pbcomComponent struct {
	base
	port     *radio.SerialPort
	xcvr     *radio.Transceiver
	fedrInc  int // last connected fedr incarnation
	ageCount int
	ageLimit int
}

// NewPbcom returns a factory for the serial-port proxy.
func NewPbcom(p Params) func() proc.Handler {
	return func() proc.Handler {
		c := &pbcomComponent{ageLimit: p.PbcomAgeLimit}
		c.params = p
		c.port = radio.NewSerialPort(p.SerialNegotiation)
		c.xcvr = radio.NewTransceiver(c.port, radio.UHFAmateur, p.TuneTime)
		return c
	}
}

func (c *pbcomComponent) Start(ctx proc.Context) {
	if err := c.port.BeginOpen(); err != nil {
		ctx.Fail("serial port open: " + err.Error())
		return
	}
	d := c.startupDelay(ctx, c.params.PbcomStartup)
	ctx.After(d, func() {
		if err := c.port.FinishNegotiation(); err != nil {
			ctx.Fail("serial negotiation: " + err.Error())
			return
		}
		c.becomeReady(ctx)
	})
}

func (c *pbcomComponent) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindCommand && c.ready {
		switch m.Command.Name {
		case "connect":
			c.handleConnect(ctx, m)
			return
		case "radio-tune":
			c.applyTune(ctx, m)
			return
		}
	}
	c.handleCommon(ctx, m)
}

// handleConnect registers a fedr connection. Seeing a new fedr incarnation
// means the previous connection was severed; each severance ages pbcom
// (leaked sockets, stale buffers) until it eventually fails.
func (c *pbcomComponent) handleConnect(ctx proc.Context, m *xmlcmd.Message) {
	incStr, _ := m.Command.Param("incarnation")
	inc, err := strconv.Atoi(incStr)
	if err != nil {
		c.warnings++
		return
	}
	if c.fedrInc != 0 && inc != c.fedrInc {
		c.ageCount++
		c.ageScore = float64(c.ageCount) / float64(c.ageLimit)
		c.warnings++
		if c.ageCount >= c.ageLimit {
			ctx.Fail(fmt.Sprintf("aged out after %d severed fedr connections", c.ageCount))
			return
		}
	}
	c.fedrInc = inc
	ctx.Send(c.pool.newAck(Pbcom, m.From, c.nextSeq(), m.Seq, true, ""))
}

func (c *pbcomComponent) applyTune(ctx proc.Context, m *xmlcmd.Message) {
	f, err := m.Command.FloatParam("freqHz")
	if err != nil {
		c.warnings++
		return
	}
	if err := c.xcvr.BeginTune(f); err != nil {
		c.warnings++
		ctx.Send(c.pool.newAck(Pbcom, m.From, c.nextSeq(), m.Seq, false, err.Error()))
		return
	}
	ctx.After(c.params.TuneTime, func() {
		c.xcvr.FinishTune()
		locked := 0.0
		if c.xcvr.Locked() {
			locked = 1
		}
		ctx.Send(xmlcmd.NewTelemetry(Pbcom, Ops, c.nextSeq(), "radio_locked",
			locked, ctx.Now()))
	})
	ctx.Send(c.pool.newAck(Pbcom, m.From, c.nextSeq(), m.Seq, true, ""))
}

// fedrComponent is the front-end driver-radio after the split: the buggy,
// fast-restarting command translator. It connects to pbcom over the bus at
// startup and becomes ready once pbcom acknowledges the connection.
type fedrComponent struct {
	base
	connected  bool
	connectSeq uint64

	// session is the externalized pbcom-connection session in micro mode;
	// nil classic.
	session *store.Cell[int64]
}

// NewFedr returns a factory for the split front-end driver.
func NewFedr(p Params) func() proc.Handler {
	return func() proc.Handler {
		c := &fedrComponent{}
		c.params = p
		return c
	}
}

func (c *fedrComponent) Start(ctx proc.Context) {
	c.microArm(ctx)
	d := c.startupDelay(ctx, c.params.FedrStartup)
	ctx.After(d, func() {
		if mp := c.params.Micro; mp != nil {
			if l, err := mp.Store.Acquire(KeyFedrSession, Fedr, mp.SessionTTL); err == nil {
				c.microLease(ctx, l)
				c.session = store.NewCell(l, store.Int64Codec())
				if _, ok := c.session.Load(); ok {
					// A live session survived the restart: reattach without
					// a new connect handshake. pbcom never sees a severed
					// connection, so fedr restarts stop aging it.
					c.connected = true
					c.becomeReady(ctx)
					return
				}
			}
		}
		c.connectLoop(ctx)
	})
}

// connectLoop (re)sends the connect request until pbcom acknowledges.
func (c *fedrComponent) connectLoop(ctx proc.Context) {
	if c.connected {
		return
	}
	c.connectSeq = c.nextSeq()
	ctx.Send(xmlcmd.NewCommand(Fedr, Pbcom, c.connectSeq, "connect",
		"incarnation", strconv.Itoa(ctx.Incarnation())))
	ctx.After(c.params.ConnectRetransmit, func() { c.connectLoop(ctx) })
}

func (c *fedrComponent) Receive(ctx proc.Context, m *xmlcmd.Message) {
	switch m.Kind() {
	case xmlcmd.KindAck:
		if m.From == Pbcom && m.Ack.OfSeq == c.connectSeq && m.Ack.OK && !c.connected {
			c.connected = true
			if c.session != nil {
				// Persist the session so the next incarnation reattaches
				// instead of reconnecting (and re-aging pbcom).
				_ = c.session.Save(int64(ctx.Incarnation()))
			}
			c.becomeReady(ctx)
		}
	case xmlcmd.KindCommand:
		if m.Command.Name == "radio-tune" && c.ready && c.subOK(SubSession) {
			// Translate and forward to the port proxy, reusing the incoming
			// wire string (see rtu: round-trip exactness makes this
			// byte-identical to re-formatting).
			if _, err := m.Command.FloatParam("freqHz"); err != nil {
				c.warnings++
				return
			}
			v, _ := m.Command.Param("freqHz")
			ctx.Send(c.pool.newCommand1(Fedr, Pbcom, c.nextSeq(), "radio-tune",
				"freqHz", v))
			ctx.Send(c.pool.newAck(Fedr, m.From, c.nextSeq(), m.Seq, true, ""))
		}
	default:
		c.handleCommon(ctx, m)
	}
}

// Collector is the operations console: a telemetry sink examples and
// experiments read link state from. It is infrastructure, not part of any
// restart tree.
type Collector struct {
	latest map[string]float64
	counts map[string]int
}

// NewCollector returns a factory producing a shared collector instance;
// call it once and keep the pointer to query state.
func NewCollector() *Collector {
	return &Collector{
		latest: make(map[string]float64),
		counts: make(map[string]int),
	}
}

// Handler adapts the collector to proc.Handler.
func (c *Collector) Handler() func() proc.Handler {
	return func() proc.Handler { return collectorHandler{c: c} }
}

// Latest returns the most recent value for a telemetry key.
func (c *Collector) Latest(key string) (float64, bool) {
	v, ok := c.latest[key]
	return v, ok
}

// Count returns how many samples arrived for a key.
func (c *Collector) Count(key string) int { return c.counts[key] }

type collectorHandler struct {
	c *Collector
}

func (h collectorHandler) Start(ctx proc.Context) { ctx.After(0, ctx.Ready) }

func (h collectorHandler) Receive(ctx proc.Context, m *xmlcmd.Message) {
	switch m.Kind() {
	case xmlcmd.KindTelemetry:
		h.c.latest[m.Telemetry.Key] = m.Telemetry.Value
		h.c.counts[m.Telemetry.Key]++
	case xmlcmd.KindPing:
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
