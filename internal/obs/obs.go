// Package obs is Mercury's live observability core: zero-allocation
// runtime counters, gauges and fixed-bucket latency histograms, plus a
// registry that renders the Prometheus text exposition format without
// reflection.
//
// The package is dependency-free (standard library only, no other mercury
// packages), so any layer — the bus fabric, the failure detector, the
// recoverer, the process manager — can instrument itself without import
// cycles. Instrumented layers keep their counters as package-level
// variables and expose a RegisterMetrics(*Registry) function; the obs HTTP
// listener in cmd/mercuryd gathers them into one registry and serves
// /metrics.
//
// Three contracts shape the design:
//
//   - Increments are zero-allocation and lock-free (a single atomic add),
//     so instrumentation can sit on the paths the PR-2/PR-4 work pinned at
//     0 allocs/op — the simulated fabric's Send, the wire codec's frame
//     loops — without moving those floors.
//   - Counters are sharded across padded cache lines: concurrent writers
//     (broker connection goroutines, parallel simulation trials) take a
//     per-writer shard so hot increments do not false-share or contend.
//   - Nothing in this package reads the clock or draws randomness, so
//     instrumented code never branches on time or RNG and the seeded
//     golden/byte-identity determinism tests are unaffected.
package obs

import "sync/atomic"

// NumShards is the number of independent cache-line-padded cells a Counter
// spreads its increments over. A power of two so shard selection is a
// cheap mask.
const NumShards = 8

// cacheLine is the assumed cache-line size used for padding. 64 bytes
// covers x86-64 and most ARM server cores; being wrong only costs a little
// memory or a little false sharing, never correctness.
const cacheLine = 64

// CounterShard is one padded cell of a Counter. Writers that own a shard
// (via Counter.Shard) increment it without contending with — or
// false-sharing against — any other writer.
type CounterShard struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// Inc adds 1 to the shard.
func (s *CounterShard) Inc() { s.n.Add(1) }

// Add adds n to the shard.
func (s *CounterShard) Add(n uint64) { s.n.Add(n) }

// Counter is a monotonically increasing metric, sharded across padded
// cache lines. The zero value is ready to use, so counters can live
// directly inside package-level metric structs with no constructor.
//
// Single-writer or low-rate call sites use Inc/Add (shard 0). Hot
// concurrent call sites acquire a dedicated shard once (cold path) with
// Shard and increment that; Value folds all shards back together.
type Counter struct {
	shards [NumShards]CounterShard
}

// Inc adds 1 to the counter (shard 0).
func (c *Counter) Inc() { c.shards[0].n.Add(1) }

// Add adds n to the counter (shard 0).
func (c *Counter) Add(n uint64) { c.shards[0].n.Add(n) }

// Shard returns the i%NumShards-th shard. Callers with a long-lived
// identity (a connection, a simulated fabric instance) pick a shard at
// setup time and keep the pointer; the increment itself then touches a
// cache line no other writer shares.
func (c *Counter) Shard(i uint64) *CounterShard {
	return &c.shards[i%NumShards]
}

// Value returns the counter's current total across all shards. It is a
// racy-but-monotonic snapshot: shards are read one atomic load at a time,
// which is exactly the consistency a scrape needs.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (current connections, queue
// depth). A single padded atomic: gauges are read-mostly and their writers
// are rarely hot enough to shard. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
