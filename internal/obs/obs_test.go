package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	// Shards fold into the same total.
	c.Shard(3).Inc()
	c.Shard(3 + NumShards).Add(2) // same shard, wrapped index
	if got := c.Value(); got != 8 {
		t.Fatalf("Value = %d, want 8", got)
	}
	if c.Shard(3) != c.Shard(3+NumShards) {
		t.Fatal("shard index is not reduced modulo NumShards")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const writers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := c.Shard(uint64(w))
			for i := 0; i < per; i++ {
				sh.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != writers*per {
		t.Fatalf("Value = %d, want %d", got, writers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the inclusive ("le") boundary
// semantics: an observation equal to a bound lands in that bound's
// bucket, one nanosecond more spills into the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 100*time.Millisecond, time.Second)
	h.Observe(0)
	h.Observe(10 * time.Millisecond)                 // == bound: bucket 0
	h.Observe(10*time.Millisecond + time.Nanosecond) // just over: bucket 1
	h.Observe(100 * time.Millisecond)                // == bound: bucket 1
	h.Observe(time.Second)                           // == bound: bucket 2
	h.Observe(time.Hour)                             // overflow: +Inf
	h.Observe(-time.Second)                          // clamped to 0: bucket 0

	wantCum := []uint64{3, 5, 6, 7} // le=10ms, le=100ms, le=1s, +Inf
	for i, want := range wantCum {
		if got := h.Cumulative(i); got != want {
			t.Fatalf("Cumulative(%d) = %d, want %d", i, got, want)
		}
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	wantSum := 10*time.Millisecond + (10*time.Millisecond + time.Nanosecond) +
		100*time.Millisecond + time.Second + time.Hour
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bad := range [][]time.Duration{
		{},
		{time.Second, time.Second},
		{time.Second, time.Millisecond},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bad)
				}
			}()
			NewHistogram(bad...)
		}()
	}
}

func TestDefBucketsAscending(t *testing.T) {
	b := DefBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("DefBuckets not ascending at %d: %v", i, b)
		}
	}
	// The ladder must bracket the system's calibrated thresholds.
	if b[0] > time.Millisecond || b[len(b)-1] < time.Minute {
		t.Fatalf("DefBuckets span %v–%v does not cover 1ms–60s", b[0], b[len(b)-1])
	}
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec()
	v.With("a").Inc()
	v.With("b").Add(2)
	v.With("a").Inc()
	if got := v.With("a").Value(); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
	labels := v.Labels()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Fatalf("Labels = %v, want [a b]", labels)
	}
}

// The zero-allocation contract: every increment path the hot layers use
// is pinned at 0 allocs/op.
func TestIncrementAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(DefBuckets()...)
	v := NewCounterVec()
	v.With("warm") // create outside the measured region
	sh := c.Shard(5)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"CounterShard.Inc", func() { sh.Inc() }},
		{"CounterShard.Add", func() { sh.Add(3) }},
		{"Counter.Shard+Inc", func() { c.Shard(2).Inc() }},
		{"Gauge.Set", func() { g.Set(1) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(300 * time.Millisecond) }},
		{"CounterVec.With+Inc", func() { v.With("warm").Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects/op, want 0", tc.name, allocs)
		}
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var frames Counter
	frames.Add(42)
	var conns Gauge
	conns.Set(3)
	h := NewHistogram(time.Second, time.Minute)
	h.Observe(500 * time.Millisecond)
	h.Observe(30 * time.Second)
	h.Observe(2 * time.Hour)
	v := NewCounterVec()
	v.With("R(rtu)").Add(2)
	v.With(`q"uo\te`).Inc()

	r.RegisterCounter("m_frames_total", "frames moved", &frames, "dir", "in")
	r.RegisterGauge("m_conns", "open connections", &conns)
	r.RegisterGaugeFunc("m_up", "always one", func() float64 { return 1 })
	r.RegisterHistogram("m_latency_seconds", "op latency", h)
	r.RegisterCounterVec("m_restarts_total", "restarts by node", "node", v)

	var sb strings.Builder
	if _, err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	for _, want := range []string{
		"# HELP m_frames_total frames moved\n# TYPE m_frames_total counter\nm_frames_total{dir=\"in\"} 42\n",
		"# TYPE m_conns gauge\nm_conns 3\n",
		"m_up 1\n",
		"m_latency_seconds_bucket{le=\"1\"} 1\n",
		"m_latency_seconds_bucket{le=\"60\"} 2\n",
		"m_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"m_latency_seconds_count 3\n",
		"m_restarts_total{node=\"R(rtu)\"} 2\n",
		`m_restarts_total{node="q\"uo\\te"} 1` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	// Families are sorted by name for stable scrapes.
	if strings.Index(got, "m_conns") > strings.Index(got, "m_frames_total") {
		t.Error("families not sorted by name")
	}
	// _sum renders in seconds.
	if !strings.Contains(got, "m_latency_seconds_sum 7230.5\n") {
		t.Errorf("unexpected _sum rendering in:\n%s", got)
	}
}

func TestRegistryHistogramWithLabels(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(time.Second)
	h.Observe(time.Millisecond)
	r.RegisterHistogram("m_h_seconds", "labeled hist", h, "stage", "detect")
	var sb strings.Builder
	if _, err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m_h_seconds_bucket{stage="detect",le="1"} 1`) {
		t.Fatalf("labels and le not merged:\n%s", sb.String())
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	r.RegisterCounter("m_x", "x", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.RegisterGauge("m_x", "x", &g)
}

func TestRenderLabelsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label pair count did not panic")
		}
	}()
	renderLabels([]string{"k"})
}

// TestRegistryConcurrentScrape exercises render-while-increment under the
// race detector: scrapes must never tear or race against hot writers.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var c Counter
	h := NewHistogram(DefBuckets()...)
	v := NewCounterVec()
	r.RegisterCounter("m_c_total", "c", &c)
	r.RegisterHistogram("m_h_seconds", "h", h)
	r.RegisterCounterVec("m_v_total", "v", "k", v)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := c.Shard(uint64(w))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sh.Inc()
				h.Observe(time.Duration(w) * time.Millisecond)
				v.With("node").Inc()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if _, err := r.WritePrometheus(&sb); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestValueHistogram(t *testing.T) {
	h := NewValueHistogram(1, 4, 16)
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if got := h.Sum(); got != 1045 {
		t.Fatalf("Sum = %d, want 1045", got)
	}
	// le semantics: a value equal to a bound lands in that bucket.
	wantCum := []uint64{2, 4, 6, 8} // ≤1, ≤4, ≤16, +Inf
	for i, want := range wantCum {
		if got := h.Cumulative(i); got != want {
			t.Fatalf("Cumulative(%d) = %d, want %d", i, got, want)
		}
	}
	if got, want := h.Mean(), 1045.0/8; got != want {
		t.Fatalf("Mean = %g, want %g", got, want)
	}
}

func TestValueHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {5, 5}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewValueHistogram(%v) did not panic", bounds)
				}
			}()
			NewValueHistogram(bounds...)
		}()
	}
}

func TestRegistryValueHistogram(t *testing.T) {
	r := NewRegistry()
	h := NewValueHistogram(1, 8, 64)
	r.RegisterValueHistogram("mercury_bus_shard_batch_frames", "Frames per batched write.", h)
	h.Observe(1)
	h.Observe(8)
	h.Observe(100)
	var sb strings.Builder
	if _, err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mercury_bus_shard_batch_frames histogram",
		`mercury_bus_shard_batch_frames_bucket{le="1"} 1`,
		`mercury_bus_shard_batch_frames_bucket{le="8"} 2`,
		`mercury_bus_shard_batch_frames_bucket{le="64"} 2`,
		`mercury_bus_shard_batch_frames_bucket{le="+Inf"} 3`,
		"mercury_bus_shard_batch_frames_sum 109",
		"mercury_bus_shard_batch_frames_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
