package obs

import "sync/atomic"

// ValueHistogram is the unitless sibling of Histogram: a fixed-bucket
// distribution over plain numbers (frames per batched write, queue depths)
// rather than durations. Same contract as Histogram — Observe is a short
// linear scan plus two atomic adds, no allocation, no locking — and the
// exposition is the standard Prometheus cumulative form with the bucket
// bounds rendered as numbers instead of seconds.
type ValueHistogram struct {
	bounds []float64       // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Uint64 // len(bounds)+1; last cell is the +Inf overflow
	sum    atomic.Uint64   // total of observed values ×1 (integral observations)
}

// NewValueHistogram builds a histogram with the given ascending bucket
// upper bounds ("le" semantics, like NewHistogram). Panics on empty or
// unsorted bounds: construction is programmer-controlled setup.
func NewValueHistogram(bounds ...float64) *ValueHistogram {
	if len(bounds) == 0 {
		panic("obs: value histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: value histogram bounds must be strictly ascending")
		}
	}
	return &ValueHistogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one non-negative integral value (a batch's frame count,
// a queue depth sample). Safe for concurrent use.
func (h *ValueHistogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && float64(v) > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *ValueHistogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *ValueHistogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average observed value (0 with no observations).
func (h *ValueHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Bounds returns a copy of the bucket upper bounds.
func (h *ValueHistogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Cumulative returns the number of observations ≤ the i-th bound;
// i == len(Bounds()) returns the total (the +Inf bucket).
func (h *ValueHistogram) Cumulative(i int) uint64 {
	var total uint64
	for j := 0; j <= i && j < len(h.counts); j++ {
		total += h.counts[j].Load()
	}
	return total
}
