package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram. Bucket upper bounds are
// chosen at construction and never change, so Observe is a short linear
// scan plus two atomic adds — no allocation, no locking, no dynamic
// resizing — and the exposition is the standard Prometheus cumulative
// form (_bucket{le=...}, _sum, _count).
//
// Fixed buckets are a deliberate trade: Mercury's interesting durations
// (ping RTTs, failure detection, component restarts, whole recoveries)
// span roughly 1 ms to 1 min and their decision thresholds are known in
// advance (ping timeout 200 ms, ping period 1 s, restarts 2-30 s), so a
// static exponential ladder captures every regime; a quantile sketch
// would buy precision nobody reads at the cost of allocation and locking
// on the observe path.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Uint64 // len(bounds)+1; last cell is the +Inf overflow
	sum    atomic.Int64    // total observed nanoseconds
}

// DefBuckets returns the default duration ladder: 1 ms to 60 s in a
// 1-2.5-5 progression, bracketing every calibrated threshold in the
// system (200 ms ping timeout, 1 s ping period, 2-21 s component
// startups, ~5-25 s recoveries).
func DefBuckets() []time.Duration {
	return []time.Duration{
		time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
		2500 * time.Millisecond,
		5 * time.Second,
		10 * time.Second,
		25 * time.Second,
		time.Minute,
	}
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. Bounds are inclusive ("le" semantics): an observation equal to
// a bound lands in that bound's bucket. NewHistogram panics on empty or
// unsorted bounds — histogram construction is programmer-controlled setup,
// not runtime input.
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one duration. Zero-allocation and safe for concurrent
// use; negative durations are clamped to zero (a scaled clock can report
// a tiny negative delta across a restart boundary).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sum.Load())
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []time.Duration {
	return append([]time.Duration(nil), h.bounds...)
}

// Cumulative returns the number of observations less than or equal to the
// i-th bound; i == len(Bounds()) returns the total (the +Inf bucket).
func (h *Histogram) Cumulative(i int) uint64 {
	var total uint64
	for j := 0; j <= i && j < len(h.counts); j++ {
		total += h.counts[j].Load()
	}
	return total
}
