package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// CounterVec is a family of counters keyed by one label value (e.g. the
// recoverer's restarts by tree node). Lookup of an existing label is
// lock-cheap (RLock + map read, no allocation); creating a new label is a
// cold path. Label cardinality is expected to be small and bounded — tree
// nodes, component names — so the map never needs eviction.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewCounterVec returns an empty vector.
func NewCounterVec() *CounterVec {
	return &CounterVec{m: make(map[string]*Counter)}
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(label string) *Counter {
	v.mu.RLock()
	c := v.m[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[label]; c == nil {
		c = &Counter{}
		v.m[label] = c
	}
	return c
}

// Labels returns the label values present, sorted.
func (v *CounterVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// series is one exposed time series: a metric instance plus its rendered
// label pairs. Exactly one of the value fields is set.
type series struct {
	labels  string // pre-rendered `k="v",k2="v2"` (no braces), may be ""
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	vhist   *ValueHistogram
	vec     *CounterVec
	vecKey  string // label key for vec series
}

// family groups the series sharing one metric name, so # HELP and # TYPE
// are emitted once per name as the exposition format requires.
type family struct {
	name   string
	help   string
	typ    string
	series []series
}

// Registry holds registered metrics and renders them as Prometheus text
// exposition (version 0.0.4). Registration is cold-path and may allocate;
// rendering walks plain slices and appends with strconv — no reflection,
// no fmt. The registry never copies metric values: it holds pointers and
// reads them atomically at render time.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	buf  []byte // render scratch, reused across scrapes
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// RegisterCounter exposes c under name. labels are optional key, value
// pairs baked into the series (static dimensions like dir="in").
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...string) {
	r.register(name, help, "counter", series{labels: renderLabels(labels), counter: c})
}

// RegisterGauge exposes g under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...string) {
	r.register(name, help, "gauge", series{labels: renderLabels(labels), gauge: g})
}

// RegisterGaugeFunc exposes a computed gauge: fn is called at every
// render (uptime, derived ratios). fn must be safe for concurrent use.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "gauge", series{labels: renderLabels(labels), gaugeFn: fn})
}

// RegisterHistogram exposes h under name in the standard cumulative
// _bucket/_sum/_count form.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...string) {
	r.register(name, help, "histogram", series{labels: renderLabels(labels), hist: h})
}

// RegisterValueHistogram exposes h under name in the standard cumulative
// _bucket/_sum/_count form, with unitless numeric bucket bounds.
func (r *Registry) RegisterValueHistogram(name, help string, h *ValueHistogram, labels ...string) {
	r.register(name, help, "histogram", series{labels: renderLabels(labels), vhist: h})
}

// RegisterCounterVec exposes every label value of v under name, with the
// value keyed as labelKey. New label values appearing after registration
// are picked up automatically at the next render.
func (r *Registry) RegisterCounterVec(name, help, labelKey string, v *CounterVec) {
	r.register(name, help, "counter", series{vec: v, vecKey: labelKey})
}

// register files one series under its family, creating the family on
// first use. Conflicting re-registration of a name with a different type
// panics: metric wiring is startup code and a mismatch is a bug.
func (r *Registry) register(name, help, typ string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ {
		panic("obs: metric " + name + " re-registered as " + typ + ", was " + f.typ)
	}
	f.series = append(f.series, s)
}

// WritePrometheus renders every registered metric to w in text exposition
// format, families sorted by name for a stable, diffable scrape.
func (r *Registry) WritePrometheus(w io.Writer) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)

	b := r.buf[:0]
	for _, n := range names {
		f := r.fams[n]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		for _, s := range f.series {
			b = appendSeries(b, f.name, s)
		}
	}
	r.buf = b
	return w.Write(b)
}

// appendSeries renders one series' sample lines.
func appendSeries(b []byte, name string, s series) []byte {
	switch {
	case s.counter != nil:
		b = appendSample(b, name, s.labels, "")
		b = strconv.AppendUint(b, s.counter.Value(), 10)
		b = append(b, '\n')
	case s.gauge != nil:
		b = appendSample(b, name, s.labels, "")
		b = strconv.AppendInt(b, s.gauge.Value(), 10)
		b = append(b, '\n')
	case s.gaugeFn != nil:
		b = appendSample(b, name, s.labels, "")
		b = strconv.AppendFloat(b, s.gaugeFn(), 'g', -1, 64)
		b = append(b, '\n')
	case s.hist != nil:
		b = appendHistogram(b, name, s.labels, s.hist)
	case s.vhist != nil:
		b = appendValueHistogram(b, name, s.labels, s.vhist)
	case s.vec != nil:
		for _, label := range s.vec.Labels() {
			kv := s.vecKey + `="` + escapeLabel(label) + `"`
			b = appendSample(b, name, kv, "")
			b = strconv.AppendUint(b, s.vec.With(label).Value(), 10)
			b = append(b, '\n')
		}
	}
	return b
}

// appendHistogram renders the cumulative bucket ladder plus _sum/_count.
func appendHistogram(b []byte, name, labels string, h *Histogram) []byte {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(bound.Seconds(), 'g', -1, 64)
		b = appendSample(b, name+"_bucket", labels, `le="`+le+`"`)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b = appendSample(b, name+"_bucket", labels, `le="+Inf"`)
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	b = appendSample(b, name+"_sum", labels, "")
	b = strconv.AppendFloat(b, h.Sum().Seconds(), 'g', -1, 64)
	b = append(b, '\n')
	b = appendSample(b, name+"_count", labels, "")
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	return b
}

// appendValueHistogram renders a unitless histogram's cumulative bucket
// ladder plus _sum/_count.
func appendValueHistogram(b []byte, name, labels string, h *ValueHistogram) []byte {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		b = appendSample(b, name+"_bucket", labels, `le="`+le+`"`)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b = appendSample(b, name+"_bucket", labels, `le="+Inf"`)
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	b = appendSample(b, name+"_sum", labels, "")
	b = strconv.AppendUint(b, h.Sum(), 10)
	b = append(b, '\n')
	b = appendSample(b, name+"_count", labels, "")
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	return b
}

// appendSample writes `name{labels,extra} ` (braces omitted when both
// label strings are empty), leaving the value for the caller to append.
func appendSample(b []byte, name, labels, extra string) []byte {
	b = append(b, name...)
	if labels != "" || extra != "" {
		b = append(b, '{')
		b = append(b, labels...)
		if labels != "" && extra != "" {
			b = append(b, ',')
		}
		b = append(b, extra...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	return b
}

// renderLabels turns key, value, key, value... pairs into the exposition
// label form `k="v",k2="v2"`. Panics on an odd pair count (startup-time
// programmer error).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key, value pairs")
	}
	var sb strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[i+1]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}
