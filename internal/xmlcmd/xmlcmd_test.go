package xmlcmd

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPingRoundTrip(t *testing.T) {
	m := NewPing(AddrFD, AddrSES, 7, 42)
	b, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Kind() != KindPing || got.From != AddrFD || got.To != AddrSES ||
		got.Seq != 7 || got.Ping.Nonce != 42 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestPongPairsWithPing(t *testing.T) {
	ping := NewPing(AddrFD, AddrRTU, 3, 99)
	pong := NewPong(AddrRTU, ping, 2)
	if pong.To != AddrFD || pong.Seq != 3 || pong.Pong.Nonce != 99 || pong.Pong.Incarnation != 2 {
		t.Fatalf("pong mismatch: %+v", pong)
	}
	if err := pong.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCommandParams(t *testing.T) {
	m := NewCommand(AddrSES, AddrRTU, 1, "tune", "freqHz", "437100000", "mode", "fm")
	b, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Command.Name != "tune" {
		t.Fatalf("name = %q", got.Command.Name)
	}
	f, err := got.Command.FloatParam("freqHz")
	if err != nil || f != 437100000 {
		t.Fatalf("FloatParam = %v, %v", f, err)
	}
	if v, ok := got.Command.Param("mode"); !ok || v != "fm" {
		t.Fatalf("Param(mode) = %q, %v", v, ok)
	}
	if _, ok := got.Command.Param("absent"); ok {
		t.Fatal("Param(absent) reported present")
	}
	if _, err := got.Command.FloatParam("mode"); err == nil {
		t.Fatal("FloatParam(mode) should fail to parse")
	}
	if _, err := got.Command.FloatParam("absent"); err == nil {
		t.Fatal("FloatParam(absent) should fail")
	}
}

func TestTelemetryTimestamp(t *testing.T) {
	at := time.Date(2002, 6, 23, 12, 0, 0, 0, time.UTC)
	m := NewTelemetry(AddrSTR, AddrMBus, 5, "el_deg", 42.5, at)
	b, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Telemetry.At().Equal(at) {
		t.Fatalf("At = %v, want %v", got.Telemetry.At(), at)
	}
	if got.Telemetry.Value != 42.5 {
		t.Fatalf("Value = %v", got.Telemetry.Value)
	}
}

func TestSyncRoundTrip(t *testing.T) {
	m := NewSync(AddrSES, AddrSTR, 9, 12345)
	b, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Kind() != KindSync || got.Sync.Epoch != 12345 {
		t.Fatalf("sync mismatch: %+v", got)
	}
	ack := NewSyncAck(AddrSTR, AddrSES, 10, got.Sync.Epoch)
	if err := ack.Validate(); err != nil {
		t.Fatalf("Validate ack: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name string
		m    *Message
		want error
	}{
		{"no body", &Message{From: "a", To: "b"}, ErrNoBody},
		{"missing from", &Message{To: "b", Ping: &Ping{}}, ErrMissingFrom},
		{"missing to", &Message{From: "a", Ping: &Ping{}}, ErrMissingTo},
		{
			"two bodies",
			&Message{From: "a", To: "b", Ping: &Ping{}, Pong: &Pong{}},
			ErrMultipleBody,
		},
		{
			"empty command",
			&Message{From: "a", To: "b", Command: &Command{}},
			ErrEmptyCommand,
		},
		{
			"empty event",
			&Message{From: "a", To: "b", Event: &Event{}},
			ErrEmptyEvent,
		},
		{
			"empty telemetry key",
			&Message{From: "a", To: "b", Telemetry: &Telemetry{}},
			ErrBadTelemetry,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); err != tt.want {
				t.Fatalf("Validate = %v, want %v", err, tt.want)
			}
			if _, err := Encode(tt.m); err != tt.want {
				t.Fatalf("Encode = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("<message><unclosed")); err == nil {
		t.Fatal("Decode accepted malformed XML")
	}
	if _, err := Decode([]byte("<message from='a' to='b'/>")); err != ErrNoBody {
		t.Fatalf("Decode empty envelope = %v, want ErrNoBody", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := strings.Repeat("x", MaxFrame)
	m := NewEvent("a", "b", 1, "e", big)
	if _, err := Encode(m); err != ErrFrameTooLarge {
		t.Fatalf("Encode oversized = %v, want ErrFrameTooLarge", err)
	}
	if _, err := Decode(make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("Decode oversized = %v, want ErrFrameTooLarge", err)
	}
}

func TestKindString(t *testing.T) {
	if KindPing.String() != "ping" || KindInvalid.String() != "invalid" {
		t.Fatal("Kind.String mismatch")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string should include number")
	}
}

func TestMessageString(t *testing.T) {
	s := NewPing(AddrFD, AddrSES, 7, 1).String()
	for _, want := range []string{AddrFD, AddrSES, "ping", "7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// Property: every well-formed event message round-trips through the codec
// unchanged.
func TestPropertyEventRoundTrip(t *testing.T) {
	f := func(from, to, name, detail string, seq uint64) bool {
		if from == "" || to == "" || name == "" {
			return true // not well-formed; out of scope
		}
		if !validXMLText(from) || !validXMLText(to) || !validXMLText(name) || !validXMLText(detail) {
			return true
		}
		m := NewEvent(from, to, seq, name, detail)
		b, err := Encode(m)
		if err != nil {
			return len(b) == 0 // oversized frames may be rejected
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return got.From == from && got.To == to && got.Seq == seq &&
			got.Event.Name == name && got.Event.Detail == detail
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// validXMLText filters out characters encoding/xml cannot represent: it
// replaces anything outside the XML character range (control characters,
// U+FFFE, U+FFFF) with U+FFFD on marshal, so such strings cannot round-trip.
func validXMLText(s string) bool {
	for _, r := range s {
		if !isXMLChar(r) || r == 0xFFFD {
			return false
		}
	}
	return true
}

// Property: seq numbers survive the codec for ping/pong pairing at any
// value including extremes.
func TestPropertySeqPreserved(t *testing.T) {
	f := func(seq, nonce uint64) bool {
		b, err := Encode(NewPing("a", "b", seq, nonce))
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return got.Seq == seq && got.Ping.Nonce == nonce
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
