package xmlcmd

// This file is the hot wire path: a hand-rolled encoder/decoder for the
// fixed xmlcmd vocabulary, replacing reflection-driven encoding/xml on
// every TCP frame. The real-time runtime serializes each liveness ping,
// command and telemetry sample through this codec, so it is written for
// zero steady-state allocations:
//
//   - AppendEncode appends the wire form to a caller-owned buffer and
//     produces output byte-identical to xml.Marshal for every valid
//     message (pinned by the corpus test in codec_test.go), so the frame
//     format is unchanged on the wire.
//   - DecodeInto parses the known envelope/attribute grammar directly —
//     no reflection, no xml.Decoder — reusing the destination message's
//     body structs and interning the well-known bus addresses, so a
//     ping/pong decode allocates nothing in steady state.
//
// The decoder is deliberately *stricter* than encoding/xml: everything it
// accepts, encoding/xml accepts with an identical result (the property
// FuzzCodecDiff checks), but it rejects XML it will never see from the
// encoder (comments, processing instructions, namespaces, unknown
// elements). Rejecting a frame tears down the connection exactly as a
// corrupt frame always has, so strictness is safe; accepting something
// encoding/xml would reject (or reading it differently) would be a silent
// wire-format fork, which the fuzz target exists to prevent.

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"
	"unicode/utf8"
)

// AppendEncode validates m and appends its XML wire form to dst, returning
// the extended buffer. The output is byte-identical to xml.Marshal. On
// error the returned buffer is dst unchanged. The appended frame is
// limited to MaxFrame. Steady state performs zero allocations once dst has
// capacity.
func AppendEncode(dst []byte, m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, `<message from="`...)
	dst = appendEscaped(dst, m.From)
	dst = append(dst, `" to="`...)
	dst = appendEscaped(dst, m.To)
	dst = append(dst, `" seq="`...)
	dst = strconv.AppendUint(dst, m.Seq, 10)
	dst = append(dst, `">`...)
	switch {
	case m.Ping != nil:
		dst = append(dst, `<ping nonce="`...)
		dst = strconv.AppendUint(dst, m.Ping.Nonce, 10)
		dst = append(dst, `"></ping>`...)
	case m.Pong != nil:
		dst = append(dst, `<pong nonce="`...)
		dst = strconv.AppendUint(dst, m.Pong.Nonce, 10)
		dst = append(dst, `" incarnation="`...)
		dst = strconv.AppendInt(dst, int64(m.Pong.Incarnation), 10)
		dst = append(dst, `"></pong>`...)
	case m.Command != nil:
		dst = append(dst, `<command name="`...)
		dst = appendEscaped(dst, m.Command.Name)
		dst = append(dst, `">`...)
		dst = appendParams(dst, m.Command.Params)
		dst = append(dst, `</command>`...)
	case m.Ack != nil:
		dst = append(dst, `<ack of="`...)
		dst = strconv.AppendUint(dst, m.Ack.OfSeq, 10)
		dst = append(dst, `" ok="`...)
		dst = strconv.AppendBool(dst, m.Ack.OK)
		if m.Ack.Error != "" {
			dst = append(dst, `" error="`...)
			dst = appendEscaped(dst, m.Ack.Error)
		}
		dst = append(dst, `"></ack>`...)
	case m.Telemetry != nil:
		dst = append(dst, `<telemetry key="`...)
		dst = appendEscaped(dst, m.Telemetry.Key)
		dst = append(dst, `" value="`...)
		dst = strconv.AppendFloat(dst, m.Telemetry.Value, 'g', -1, 64)
		dst = append(dst, `" atUnixMilli="`...)
		dst = strconv.AppendInt(dst, m.Telemetry.AtUnixMilli, 10)
		dst = append(dst, `"></telemetry>`...)
	case m.Event != nil:
		dst = append(dst, `<event name="`...)
		dst = appendEscaped(dst, m.Event.Name)
		if m.Event.Detail != "" {
			dst = append(dst, `" detail="`...)
			dst = appendEscaped(dst, m.Event.Detail)
		}
		dst = append(dst, `">`...)
		dst = appendParams(dst, m.Event.Params)
		dst = append(dst, `</event>`...)
	case m.Sync != nil:
		dst = append(dst, `<sync epoch="`...)
		dst = strconv.AppendInt(dst, m.Sync.Epoch, 10)
		dst = append(dst, `"></sync>`...)
	case m.SyncAck != nil:
		dst = append(dst, `<syncack epoch="`...)
		dst = strconv.AppendInt(dst, m.SyncAck.Epoch, 10)
		dst = append(dst, `"></syncack>`...)
	case m.Health != nil:
		dst = append(dst, `<health incarnation="`...)
		dst = strconv.AppendInt(dst, int64(m.Health.Incarnation), 10)
		dst = append(dst, `" uptimeMs="`...)
		dst = strconv.AppendInt(dst, m.Health.UptimeMs, 10)
		dst = append(dst, `" queueDepth="`...)
		dst = strconv.AppendInt(dst, int64(m.Health.QueueDepth), 10)
		dst = append(dst, `" ageScore="`...)
		dst = strconv.AppendFloat(dst, m.Health.AgeScore, 'g', -1, 64)
		dst = append(dst, `" warnings="`...)
		dst = strconv.AppendInt(dst, int64(m.Health.Warnings), 10)
		dst = append(dst, `" suspect="`...)
		dst = strconv.AppendBool(dst, m.Health.Suspect)
		dst = append(dst, `"></health>`...)
	}
	dst = append(dst, `</message>`...)
	if len(dst)-start > MaxFrame {
		return dst[:start], ErrFrameTooLarge
	}
	return dst, nil
}

func appendParams(dst []byte, params []Param) []byte {
	for i := range params {
		dst = append(dst, `<param key="`...)
		dst = appendEscaped(dst, params[i].Key)
		dst = append(dst, `" value="`...)
		dst = appendEscaped(dst, params[i].Value)
		dst = append(dst, `"></param>`...)
	}
	return dst
}

// appendEscaped appends s with the exact escaping xml's EscapeString
// applies to attribute values, including the replacement-character
// handling for invalid UTF-8 and characters outside the XML range.
func appendEscaped(dst []byte, s string) []byte {
	last := 0
	for i := 0; i < len(s); {
		r, w := utf8.DecodeRuneInString(s[i:])
		var esc string
		switch r {
		case '"':
			esc = "&#34;"
		case '\'':
			esc = "&#39;"
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			if !isXMLChar(r) || (r == utf8.RuneError && w == 1) {
				esc = "�"
				break
			}
			i += w
			continue
		}
		dst = append(dst, s[last:i]...)
		dst = append(dst, esc...)
		i += w
		last = i
	}
	return append(dst, s[last:]...)
}

// isXMLChar reports whether r is in the XML 1.0 character range (the same
// predicate encoding/xml applies to both input and output).
func isXMLChar(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// Decoder errors. These are static so the reject path of a hostile frame
// allocates as little as possible.
var (
	errBadSyntax   = errors.New("malformed frame")
	errBadName     = errors.New("bad element or attribute name")
	errBadAttr     = errors.New("bad attribute value")
	errBadEntity   = errors.New("bad entity reference")
	errBadChar     = errors.New("character outside XML range")
	errBadUTF8     = errors.New("invalid UTF-8")
	errUnknownElem = errors.New("unknown element")
	errMismatch    = errors.New("mismatched end tag")
	errTrailing    = errors.New("trailing data after envelope")
	errNamespaced  = errors.New("namespaced frames not supported")
)

// decodeScratch holds one instance of every body type so DecodeInto can
// rebuild a message without allocating. It hangs off the Message lazily:
// messages built by the New* constructors never pay for it.
type decodeScratch struct {
	ping      Ping
	pong      Pong
	command   Command
	ack       Ack
	telemetry Telemetry
	event     Event
	sync      Sync
	syncAck   SyncAck
	health    Health
}

// DecodeInto parses and validates a message from its XML wire form into m,
// reusing m's internal scratch bodies and parameter slices. The decoded
// message (including its body pointer) is only valid until the next
// DecodeInto on the same m — callers that hand messages to another
// goroutine must decode into a fresh Message (Decode does). Steady state
// performs zero allocations for frames whose strings are all interned
// well-known tokens (every ping/pong is).
func DecodeInto(b []byte, m *Message) error {
	if len(b) > MaxFrame {
		return ErrFrameTooLarge
	}
	if m.scratch == nil {
		m.scratch = new(decodeScratch)
	}
	m.XMLName = xml.Name{Local: "message"}
	m.From, m.To, m.Seq = "", "", 0
	m.Owner = nil
	m.Ping, m.Pong, m.Command, m.Ack = nil, nil, nil, nil
	m.Telemetry, m.Event, m.Sync, m.SyncAck, m.Health = nil, nil, nil, nil, nil
	d := decoder{b: b, m: m}
	if err := d.parse(); err != nil {
		return fmt.Errorf("xmlcmd: unmarshal: %w", err)
	}
	return m.Validate()
}

// internedStrings maps the wire bytes of well-known tokens — bus addresses
// and the control-command vocabulary — to shared string constants, so
// decoding them allocates nothing. Lookup with a []byte key compiles to a
// no-copy map access.
var internedStrings = map[string]string{
	AddrMBus:     AddrMBus,
	AddrFedrcom:  AddrFedrcom,
	AddrFedr:     AddrFedr,
	AddrPbcom:    AddrPbcom,
	AddrSES:      AddrSES,
	AddrSTR:      AddrSTR,
	AddrRTU:      AddrRTU,
	AddrFD:       AddrFD,
	AddrREC:      AddrREC,
	"supervisor": "supervisor",
	"ctl":        "ctl",
	"faultgen":   "faultgen",
	"register":   "register",
	"sys-hang":   "sys-hang",
}

// intern returns a shared string for well-known wire tokens, copying only
// unknown ones.
func intern(b []byte) string {
	if s, ok := internedStrings[string(b)]; ok {
		return s
	}
	return string(b)
}

// decoder is a pull parser over one frame.
type decoder struct {
	b   []byte
	i   int
	m   *Message
	tmp []byte // entity/CR expansion buffer; allocated only when needed
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func (d *decoder) skipSpace() {
	for d.i < len(d.b) && isSpace(d.b[d.i]) {
		d.i++
	}
}

// readName consumes an element or attribute name. Only the ASCII subset of
// XML names is accepted — a strict subset of what encoding/xml allows, and
// everything the encoder emits. Colons are rejected, so namespaced input
// never parses (keeping decoded messages identical to encoding/xml's,
// which would otherwise record a namespace).
func (d *decoder) readName() ([]byte, error) {
	start := d.i
	if d.i >= len(d.b) {
		return nil, errBadSyntax
	}
	c := d.b[d.i]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_') {
		return nil, errBadName
	}
	d.i++
	for d.i < len(d.b) {
		c = d.b[d.i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.' {
			d.i++
			continue
		}
		break
	}
	return d.b[start:d.i], nil
}

// parse reads the whole envelope: <message ...> body </message>.
func (d *decoder) parse() error {
	d.skipSpace()
	if d.i >= len(d.b) || d.b[d.i] != '<' {
		return errBadSyntax
	}
	d.i++
	name, err := d.readName()
	if err != nil {
		return err
	}
	if string(name) != "message" {
		return errUnknownElem
	}
	selfClose, err := d.parseAttrs(d.messageAttr)
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.parseBodies(); err != nil {
			return err
		}
	}
	d.skipSpace()
	if d.i != len(d.b) {
		return errTrailing
	}
	return nil
}

func (d *decoder) messageAttr(name, val []byte) error {
	switch string(name) {
	case "from":
		d.m.From = intern(val)
	case "to":
		d.m.To = intern(val)
	case "seq":
		n, ok := parseUint(val)
		if !ok {
			return errBadAttr
		}
		d.m.Seq = n
	}
	return nil
}

// parseBodies reads child elements until </message>.
func (d *decoder) parseBodies() error {
	for {
		d.skipSpace()
		if d.i >= len(d.b) || d.b[d.i] != '<' {
			return errBadSyntax
		}
		d.i++
		if d.i < len(d.b) && d.b[d.i] == '/' {
			d.i++
			return d.closeTag("message")
		}
		name, err := d.readName()
		if err != nil {
			return err
		}
		switch string(name) {
		case "ping":
			err = d.ping()
		case "pong":
			err = d.pong()
		case "command":
			err = d.command()
		case "ack":
			err = d.ack()
		case "telemetry":
			err = d.telemetry()
		case "event":
			err = d.event()
		case "sync":
			err = d.sync()
		case "syncack":
			err = d.syncAck()
		case "health":
			err = d.health()
		default:
			return errUnknownElem
		}
		if err != nil {
			return err
		}
	}
}

// closeTag consumes the remainder of an already-opened end tag: the name
// (which must match want) and the closing '>'.
func (d *decoder) closeTag(want string) error {
	name, err := d.readName()
	if err != nil {
		return err
	}
	if string(name) != want {
		return errMismatch
	}
	d.skipSpace()
	if d.i >= len(d.b) || d.b[d.i] != '>' {
		return errBadSyntax
	}
	d.i++
	return nil
}

// closeSimple consumes whitespace and the end tag of a childless element.
func (d *decoder) closeSimple(want string) error {
	d.skipSpace()
	if d.i+1 >= len(d.b) || d.b[d.i] != '<' || d.b[d.i+1] != '/' {
		return errBadSyntax
	}
	d.i += 2
	return d.closeTag(want)
}

// parseAttrs reads the attribute list of the element whose name has just
// been consumed, invoking set for each known attribute (unknown ones are
// parsed and validated, then dropped, as encoding/xml drops them). It
// reports whether the element was self-closing.
func (d *decoder) parseAttrs(set func(name, val []byte) error) (selfClose bool, err error) {
	for {
		d.skipSpace()
		if d.i >= len(d.b) {
			return false, errBadSyntax
		}
		switch d.b[d.i] {
		case '>':
			d.i++
			return false, nil
		case '/':
			d.i++
			if d.i >= len(d.b) || d.b[d.i] != '>' {
				return false, errBadSyntax
			}
			d.i++
			return true, nil
		}
		name, err := d.readName()
		if err != nil {
			return false, err
		}
		if string(name) == "xmlns" {
			return false, errNamespaced
		}
		d.skipSpace()
		if d.i >= len(d.b) || d.b[d.i] != '=' {
			return false, errBadSyntax
		}
		d.i++
		d.skipSpace()
		val, err := d.attrValue()
		if err != nil {
			return false, err
		}
		if err := set(name, val); err != nil {
			return false, err
		}
	}
}

// attrValue reads a quoted attribute value, expanding entity references
// and normalising \r / \r\n to \n exactly as encoding/xml does, and
// enforcing the XML character range on the result. The returned slice
// aliases either the input (fast path) or d.tmp, and is valid until the
// next attrValue call.
func (d *decoder) attrValue() ([]byte, error) {
	if d.i >= len(d.b) {
		return nil, errBadSyntax
	}
	quote := d.b[d.i]
	if quote != '"' && quote != '\'' {
		return nil, errBadSyntax
	}
	d.i++
	start := d.i
	// Fast path: scan for the closing quote; fall into the expanding path
	// at the first entity reference or carriage return.
	for d.i < len(d.b) {
		c := d.b[d.i]
		switch {
		case c == quote:
			v := d.b[start:d.i]
			d.i++
			return v, nil
		case c == '&' || c == '\r':
			return d.attrValueSlow(start, quote)
		case c == '<':
			// Forbidden in attribute values by the XML grammar; the
			// encoder always escapes it.
			return nil, errBadSyntax
		case c < 0x20 && c != '\t' && c != '\n':
			return nil, errBadChar
		case c < utf8.RuneSelf:
			d.i++
		default:
			r, w := utf8.DecodeRune(d.b[d.i:])
			if r == utf8.RuneError && w == 1 {
				return nil, errBadUTF8
			}
			if !isXMLChar(r) {
				return nil, errBadChar
			}
			d.i += w
		}
	}
	return nil, errBadSyntax
}

// attrValueSlow finishes an attribute value that needs rewriting, copying
// into d.tmp.
func (d *decoder) attrValueSlow(start int, quote byte) ([]byte, error) {
	d.tmp = append(d.tmp[:0], d.b[start:d.i]...)
	for d.i < len(d.b) {
		c := d.b[d.i]
		switch {
		case c == quote:
			d.i++
			return d.tmp, nil
		case c == '&':
			r, err := d.entity()
			if err != nil {
				return nil, err
			}
			d.tmp = utf8.AppendRune(d.tmp, r)
		case c == '\r':
			d.i++
			if d.i < len(d.b) && d.b[d.i] == '\n' {
				d.i++
			}
			d.tmp = append(d.tmp, '\n')
		case c == '<':
			return nil, errBadSyntax
		case c < 0x20 && c != '\t' && c != '\n':
			return nil, errBadChar
		case c < utf8.RuneSelf:
			d.tmp = append(d.tmp, c)
			d.i++
		default:
			r, w := utf8.DecodeRune(d.b[d.i:])
			if r == utf8.RuneError && w == 1 {
				return nil, errBadUTF8
			}
			if !isXMLChar(r) {
				return nil, errBadChar
			}
			d.tmp = append(d.tmp, d.b[d.i:d.i+w]...)
			d.i += w
		}
	}
	return nil, errBadSyntax
}

// entity parses one entity reference starting at '&': the five predefined
// names plus decimal and (lowercase-x) hexadecimal character references.
// The resulting rune must be in the XML character range — a strict subset
// of encoding/xml, which launders out-of-range references through U+FFFD.
func (d *decoder) entity() (rune, error) {
	d.i++ // consume '&'
	if d.i < len(d.b) && d.b[d.i] == '#' {
		d.i++
		base := uint32(10)
		if d.i < len(d.b) && d.b[d.i] == 'x' {
			base = 16
			d.i++
		}
		var n uint32
		digits := 0
		for d.i < len(d.b) {
			c := d.b[d.i]
			var v uint32
			switch {
			case c >= '0' && c <= '9':
				v = uint32(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				v = uint32(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				v = uint32(c-'A') + 10
			case c == ';':
				if digits == 0 {
					return 0, errBadEntity
				}
				d.i++
				r := rune(n)
				if !isXMLChar(r) {
					return 0, errBadChar
				}
				return r, nil
			default:
				return 0, errBadEntity
			}
			n = n*base + v
			if n > utf8.MaxRune {
				return 0, errBadEntity
			}
			digits++
			d.i++
		}
		return 0, errBadEntity
	}
	start := d.i
	for d.i < len(d.b) && d.i-start <= 4 {
		if d.b[d.i] == ';' {
			name := d.b[start:d.i]
			d.i++
			switch string(name) {
			case "lt":
				return '<', nil
			case "gt":
				return '>', nil
			case "amp":
				return '&', nil
			case "apos":
				return '\'', nil
			case "quot":
				return '"', nil
			}
			return 0, errBadEntity
		}
		d.i++
	}
	return 0, errBadEntity
}

// Body element parsers. Each parses attributes, consumes the end tag, and
// installs the body pointer. The scratch struct is zeroed only on the
// element's FIRST occurrence in a frame: encoding/xml unmarshals a
// repeated element into the same (already-populated) struct, so later
// occurrences merge — attributes they omit keep the earlier values, and
// param lists append (FuzzCodecDiff holds the codec to exactly that).

func (d *decoder) ping() error {
	p := &d.m.scratch.ping
	if d.m.Ping == nil {
		*p = Ping{}
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		if string(name) == "nonce" {
			n, ok := parseUint(val)
			if !ok {
				return errBadAttr
			}
			p.Nonce = n
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.closeSimple("ping"); err != nil {
			return err
		}
	}
	d.m.Ping = p
	return nil
}

func (d *decoder) pong() error {
	p := &d.m.scratch.pong
	if d.m.Pong == nil {
		*p = Pong{}
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		switch string(name) {
		case "nonce":
			n, ok := parseUint(val)
			if !ok {
				return errBadAttr
			}
			p.Nonce = n
		case "incarnation":
			n, ok := parseInt(val)
			if !ok {
				return errBadAttr
			}
			p.Incarnation = int(n)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.closeSimple("pong"); err != nil {
			return err
		}
	}
	d.m.Pong = p
	return nil
}

func (d *decoder) command() error {
	c := &d.m.scratch.command
	if d.m.Command == nil {
		c.Name = ""
		c.Params = c.Params[:0]
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		if string(name) == "name" {
			c.Name = intern(val)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.params(&c.Params, "command"); err != nil {
			return err
		}
	}
	d.m.Command = c
	return nil
}

func (d *decoder) event() error {
	e := &d.m.scratch.event
	if d.m.Event == nil {
		e.Name = ""
		e.Detail = ""
		e.Params = e.Params[:0]
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		switch string(name) {
		case "name":
			e.Name = intern(val)
		case "detail":
			e.Detail = intern(val)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.params(&e.Params, "event"); err != nil {
			return err
		}
	}
	d.m.Event = e
	return nil
}

// params reads <param .../> children until the parent's end tag.
func (d *decoder) params(dst *[]Param, parent string) error {
	for {
		d.skipSpace()
		if d.i >= len(d.b) || d.b[d.i] != '<' {
			return errBadSyntax
		}
		d.i++
		if d.i < len(d.b) && d.b[d.i] == '/' {
			d.i++
			return d.closeTag(parent)
		}
		name, err := d.readName()
		if err != nil {
			return err
		}
		if string(name) != "param" {
			return errUnknownElem
		}
		var p Param
		selfClose, err := d.parseAttrs(func(name, val []byte) error {
			switch string(name) {
			case "key":
				p.Key = intern(val)
			case "value":
				p.Value = intern(val)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if !selfClose {
			if err := d.closeSimple("param"); err != nil {
				return err
			}
		}
		*dst = append(*dst, p)
	}
}

func (d *decoder) ack() error {
	a := &d.m.scratch.ack
	if d.m.Ack == nil {
		*a = Ack{}
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		switch string(name) {
		case "of":
			n, ok := parseUint(val)
			if !ok {
				return errBadAttr
			}
			a.OfSeq = n
		case "ok":
			b, ok := parseBool(val)
			if !ok {
				return errBadAttr
			}
			a.OK = b
		case "error":
			a.Error = intern(val)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.closeSimple("ack"); err != nil {
			return err
		}
	}
	d.m.Ack = a
	return nil
}

func (d *decoder) telemetry() error {
	t := &d.m.scratch.telemetry
	if d.m.Telemetry == nil {
		*t = Telemetry{}
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		switch string(name) {
		case "key":
			t.Key = intern(val)
		case "value":
			f, err := strconv.ParseFloat(string(val), 64)
			if err != nil {
				return errBadAttr
			}
			t.Value = f
		case "atUnixMilli":
			n, ok := parseInt(val)
			if !ok {
				return errBadAttr
			}
			t.AtUnixMilli = n
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.closeSimple("telemetry"); err != nil {
			return err
		}
	}
	d.m.Telemetry = t
	return nil
}

func (d *decoder) sync() error {
	s := &d.m.scratch.sync
	if d.m.Sync == nil {
		*s = Sync{}
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		if string(name) == "epoch" {
			n, ok := parseInt(val)
			if !ok {
				return errBadAttr
			}
			s.Epoch = n
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.closeSimple("sync"); err != nil {
			return err
		}
	}
	d.m.Sync = s
	return nil
}

func (d *decoder) syncAck() error {
	s := &d.m.scratch.syncAck
	if d.m.SyncAck == nil {
		*s = SyncAck{}
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		if string(name) == "epoch" {
			n, ok := parseInt(val)
			if !ok {
				return errBadAttr
			}
			s.Epoch = n
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.closeSimple("syncack"); err != nil {
			return err
		}
	}
	d.m.SyncAck = s
	return nil
}

func (d *decoder) health() error {
	h := &d.m.scratch.health
	if d.m.Health == nil {
		*h = Health{}
	}
	selfClose, err := d.parseAttrs(func(name, val []byte) error {
		switch string(name) {
		case "incarnation":
			n, ok := parseInt(val)
			if !ok {
				return errBadAttr
			}
			h.Incarnation = int(n)
		case "uptimeMs":
			n, ok := parseInt(val)
			if !ok {
				return errBadAttr
			}
			h.UptimeMs = n
		case "queueDepth":
			n, ok := parseInt(val)
			if !ok {
				return errBadAttr
			}
			h.QueueDepth = int(n)
		case "ageScore":
			f, err := strconv.ParseFloat(string(val), 64)
			if err != nil {
				return errBadAttr
			}
			h.AgeScore = f
		case "warnings":
			n, ok := parseInt(val)
			if !ok {
				return errBadAttr
			}
			h.Warnings = int(n)
		case "suspect":
			b, ok := parseBool(val)
			if !ok {
				return errBadAttr
			}
			h.Suspect = b
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !selfClose {
		if err := d.closeSimple("health"); err != nil {
			return err
		}
	}
	d.m.Health = h
	return nil
}

// parseUint mirrors strconv.ParseUint(s, 10, 64) over bytes without
// forcing a string allocation: digits only, overflow rejected.
func parseUint(v []byte) (uint64, bool) {
	if len(v) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range v {
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > (1<<64-1)/10 {
			return 0, false
		}
		n *= 10
		d := uint64(c - '0')
		if n+d < n {
			return 0, false
		}
		n += d
	}
	return n, true
}

// parseInt mirrors strconv.ParseInt(s, 10, 64) over bytes.
func parseInt(v []byte) (int64, bool) {
	neg := false
	if len(v) > 0 && (v[0] == '+' || v[0] == '-') {
		neg = v[0] == '-'
		v = v[1:]
	}
	n, ok := parseUint(v)
	if !ok {
		return 0, false
	}
	if !neg {
		if n > 1<<63-1 {
			return 0, false
		}
		return int64(n), true
	}
	if n > 1<<63 {
		return 0, false
	}
	return -int64(n), true
}

// parseBool accepts exactly the strconv.ParseBool vocabulary.
func parseBool(v []byte) (bool, bool) {
	switch string(v) {
	case "1", "t", "T", "true", "TRUE", "True":
		return true, true
	case "0", "f", "F", "false", "FALSE", "False":
		return false, true
	}
	return false, false
}
