package xmlcmd

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// codecCorpus is every message shape the station puts on the wire, plus
// the awkward ones: optional attributes present and absent, XML
// metacharacters, non-ASCII text, extreme numbers.
func codecCorpus() []*Message {
	return []*Message{
		NewPing(AddrFD, AddrSES, 1, 42),
		NewPing(AddrFD, AddrMBus, 0, 0),
		NewPing("a", "b", math.MaxUint64, math.MaxUint64),
		NewPong(AddrSES, NewPing(AddrFD, AddrSES, 2, 43), 3),
		NewPong(AddrSES, NewPing(AddrFD, AddrSES, 2, 43), 0),
		NewCommand(AddrREC, AddrMBus, 4, "register"),
		NewCommand(AddrFedr, AddrPbcom, 5, "tune", "freq", "437.5", "mode", "fm"),
		NewCommand("x", "y", 6, "escape&<>\"'", "key&", "<value>", "'quoted'", "\"double\""),
		NewCommand("x", "y", 6, "tabs\tand\nnewlines\rand", "k", "v"),
		NewCommand("x", "y", 7, "unicode", "λ", "ω→α", "emoji", "🛰"),
		NewAck(AddrPbcom, AddrFedr, 8, 5, true, ""),
		NewAck(AddrPbcom, AddrFedr, 9, 5, false, "tune failed: <radio> said \"no\" & hung"),
		NewTelemetry(AddrRTU, AddrSTR, 10, "az", 181.5, time.Unix(1020000000, 0).UTC()),
		NewTelemetry(AddrRTU, AddrSTR, 11, "el", -0.25, time.UnixMilli(-12345)),
		NewTelemetry(AddrRTU, AddrSTR, 12, "inf", math.Inf(1), time.UnixMilli(0)),
		NewTelemetry(AddrRTU, AddrSTR, 13, "nan", math.NaN(), time.UnixMilli(0)),
		NewTelemetry(AddrRTU, AddrSTR, 14, "tiny", 5e-324, time.UnixMilli(1)),
		NewEvent(AddrFD, AddrREC, 15, "failure", "ses"),
		NewEvent(AddrFD, AddrREC, 16, "pass-start", ""), // detail omitted
		func() *Message {
			m := NewEvent(AddrFD, AddrREC, 17, "link", "lost")
			m.Event.Params = []Param{{Key: "hops", Value: "4"}, {Key: "why", Value: "a&b"}}
			return m
		}(),
		NewSync(AddrSES, AddrSTR, 18, 1020000000),
		NewSync(AddrSES, AddrSTR, 19, math.MinInt64),
		NewSyncAck(AddrSTR, AddrSES, 20, math.MaxInt64),
		{
			From: AddrSES, To: AddrFD, Seq: 21,
			Health: &Health{Incarnation: 2, UptimeMs: 123456, QueueDepth: 7, AgeScore: 0.125, Warnings: 3, Suspect: true},
		},
		{
			From: AddrSES, To: AddrFD, Seq: 22,
			Health: &Health{AgeScore: -1e300},
		},
	}
}

// sameMessage compares decoded messages, treating nil and empty param
// slices as equal (encoding/xml leaves absent params nil; the reusing
// decoder keeps an empty slice) and ignoring the unexported scratch.
func sameMessage(t *testing.T, got, want *Message) {
	t.Helper()
	if got.XMLName != want.XMLName {
		t.Fatalf("XMLName = %v, want %v", got.XMLName, want.XMLName)
	}
	if got.From != want.From || got.To != want.To || got.Seq != want.Seq {
		t.Fatalf("envelope = %s->%s #%d, want %s->%s #%d",
			got.From, got.To, got.Seq, want.From, want.To, want.Seq)
	}
	samePtr := func(name string, g, w any, gNil, wNil bool) {
		if gNil != wNil {
			t.Fatalf("%s: got nil=%v, want nil=%v", name, gNil, wNil)
		}
	}
	samePtr("ping", got.Ping, want.Ping, got.Ping == nil, want.Ping == nil)
	if got.Ping != nil && *got.Ping != *want.Ping {
		t.Fatalf("ping = %+v, want %+v", *got.Ping, *want.Ping)
	}
	samePtr("pong", got.Pong, want.Pong, got.Pong == nil, want.Pong == nil)
	if got.Pong != nil && *got.Pong != *want.Pong {
		t.Fatalf("pong = %+v, want %+v", *got.Pong, *want.Pong)
	}
	samePtr("command", got.Command, want.Command, got.Command == nil, want.Command == nil)
	if got.Command != nil {
		if got.Command.Name != want.Command.Name {
			t.Fatalf("command name = %q, want %q", got.Command.Name, want.Command.Name)
		}
		sameParams(t, got.Command.Params, want.Command.Params)
	}
	samePtr("ack", got.Ack, want.Ack, got.Ack == nil, want.Ack == nil)
	if got.Ack != nil && *got.Ack != *want.Ack {
		t.Fatalf("ack = %+v, want %+v", *got.Ack, *want.Ack)
	}
	samePtr("telemetry", got.Telemetry, want.Telemetry, got.Telemetry == nil, want.Telemetry == nil)
	if got.Telemetry != nil {
		g, w := *got.Telemetry, *want.Telemetry
		// NaN != NaN; compare bit-compatibly.
		if g.Key != w.Key || g.AtUnixMilli != w.AtUnixMilli ||
			(g.Value != w.Value && !(math.IsNaN(g.Value) && math.IsNaN(w.Value))) {
			t.Fatalf("telemetry = %+v, want %+v", g, w)
		}
	}
	samePtr("event", got.Event, want.Event, got.Event == nil, want.Event == nil)
	if got.Event != nil {
		if got.Event.Name != want.Event.Name || got.Event.Detail != want.Event.Detail {
			t.Fatalf("event = %+v, want %+v", *got.Event, *want.Event)
		}
		sameParams(t, got.Event.Params, want.Event.Params)
	}
	samePtr("sync", got.Sync, want.Sync, got.Sync == nil, want.Sync == nil)
	if got.Sync != nil && *got.Sync != *want.Sync {
		t.Fatalf("sync = %+v, want %+v", *got.Sync, *want.Sync)
	}
	samePtr("syncack", got.SyncAck, want.SyncAck, got.SyncAck == nil, want.SyncAck == nil)
	if got.SyncAck != nil && *got.SyncAck != *want.SyncAck {
		t.Fatalf("syncack = %+v, want %+v", *got.SyncAck, *want.SyncAck)
	}
	samePtr("health", got.Health, want.Health, got.Health == nil, want.Health == nil)
	if got.Health != nil && *got.Health != *want.Health {
		t.Fatalf("health = %+v, want %+v", *got.Health, *want.Health)
	}
}

func sameParams(t *testing.T, got, want []Param) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("params = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("param[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCorpusEquivalence is the structural correctness proof for the
// hand-rolled codec: for the whole corpus, (1) the new encoder's bytes
// are identical to encoding/xml's, (2) encoding/xml decodes the new
// encoder's output back to the original message, and (3) the new decoder
// reads the old encoder's output back to the original message.
func TestCorpusEquivalence(t *testing.T) {
	for _, m := range codecCorpus() {
		fast, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%s): %v", m, err)
		}
		std, err := StdEncode(m)
		if err != nil {
			t.Fatalf("StdEncode(%s): %v", m, err)
		}
		if !bytes.Equal(fast, std) {
			t.Fatalf("encoder output diverged for %s:\n fast: %s\n  std: %s", m, fast, std)
		}
		byStd, err := StdDecode(fast)
		if err != nil {
			t.Fatalf("StdDecode(fast %s): %v", fast, err)
		}
		sameMessage(t, byStd, withXMLName(m))
		byFast, err := Decode(std)
		if err != nil {
			t.Fatalf("Decode(std %s): %v", std, err)
		}
		sameMessage(t, byFast, withXMLName(m))
	}
}

// withXMLName returns a copy of m with XMLName populated the way both
// decoders report it.
func withXMLName(m *Message) *Message {
	c := *m
	c.XMLName.Local = "message"
	return &c
}

// TestDecodeIntoReuse drives one reused Message through every corpus
// shape in sequence: scratch reuse must never leak state between frames.
func TestDecodeIntoReuse(t *testing.T) {
	var m Message
	corpus := codecCorpus()
	// Interleave so each decode follows a different body kind.
	for i := 0; i < 2; i++ {
		for _, want := range corpus {
			b, err := Encode(want)
			if err != nil {
				t.Fatal(err)
			}
			if err := DecodeInto(b, &m); err != nil {
				t.Fatalf("DecodeInto(%s): %v", b, err)
			}
			sameMessage(t, &m, withXMLName(want))
		}
	}
}

// TestCodecZeroAlloc pins the wire path's whole point: encoding and
// decoding the failure detector's ping/pong traffic allocates nothing in
// steady state.
func TestCodecZeroAlloc(t *testing.T) {
	ping := NewPing(AddrFD, AddrSES, 7, 42)
	pong := NewPong(AddrSES, ping, 3)
	buf := make([]byte, 0, 256)
	var m Message
	for _, tc := range []struct {
		name string
		msg  *Message
	}{{"ping", ping}, {"pong", pong}} {
		// Warm the scratch and buffer outside the measured region.
		var err error
		buf, err = AppendEncode(buf[:0], tc.msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(buf, &m); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			b, err := AppendEncode(buf[:0], tc.msg)
			if err != nil {
				t.Fatal(err)
			}
			if err := DecodeInto(b, &m); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s encode+decode round trip: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestValidateZeroAlloc pins the bodyCount fix: Validate runs on every
// encode and decode and must not allocate.
func TestValidateZeroAlloc(t *testing.T) {
	m := NewPing(AddrFD, AddrSES, 7, 42)
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Validate: %v allocs/op, want 0", allocs)
	}
}

// TestKindStringIndexed covers the array-indexed Kind.String across the
// whole range including out-of-range values.
func TestKindStringIndexed(t *testing.T) {
	want := map[Kind]string{
		KindInvalid: "invalid", KindPing: "ping", KindPong: "pong",
		KindCommand: "command", KindAck: "ack", KindTelemetry: "telemetry",
		KindEvent: "event", KindSync: "sync", KindSyncAck: "syncack",
		KindHealth: "health",
	}
	for k, w := range want {
		if got := k.String(); got != w {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, w)
		}
	}
	if got := Kind(-1).String(); got != "kind(-1)" {
		t.Errorf("Kind(-1).String() = %q", got)
	}
	if got := Kind(len(kindNames)).String(); !strings.Contains(got, "kind(") {
		t.Errorf("out-of-range kind = %q", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = KindPing.String()
	})
	if allocs != 0 {
		t.Errorf("Kind.String: %v allocs/op, want 0", allocs)
	}
}

// TestOptionalAttrsOmitted pins the omitempty behaviour both ways: empty
// optional attributes are absent from the wire form, and frames without
// them decode to empty strings.
func TestOptionalAttrsOmitted(t *testing.T) {
	ack, err := Encode(NewAck("a", "b", 1, 2, true, ""))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ack, []byte("error=")) {
		t.Fatalf("empty Ack.Error still on the wire: %s", ack)
	}
	ev, err := Encode(NewEvent("a", "b", 1, "pass", ""))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ev, []byte("detail=")) {
		t.Fatalf("empty Event.Detail still on the wire: %s", ev)
	}
	for _, b := range [][]byte{ack, ev} {
		m, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%s): %v", b, err)
		}
		if m.Ack != nil && m.Ack.Error != "" {
			t.Fatalf("absent error attr decoded to %q", m.Ack.Error)
		}
		if m.Event != nil && m.Event.Detail != "" {
			t.Fatalf("absent detail attr decoded to %q", m.Event.Detail)
		}
	}
}

// TestEscapingRoundTrip pins XML-escaping of every metacharacter in the
// places operators actually put them: command params and error strings.
func TestEscapingRoundTrip(t *testing.T) {
	hostile := `&<>"'` + " and &amp; pre-escaped"
	for _, m := range []*Message{
		NewCommand("a", "b", 1, "go", hostile, hostile),
		NewAck("a", "b", 2, 1, false, hostile),
		NewEvent("a", "b", 3, hostile, hostile),
	} {
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%s): %v", b, err)
		}
		sameMessage(t, got, withXMLName(m))
		// And the other decoder agrees.
		std, err := StdDecode(b)
		if err != nil {
			t.Fatalf("StdDecode(%s): %v", b, err)
		}
		sameMessage(t, std, withXMLName(m))
	}
}

// TestMaxFrameBoundary exercises the exact MaxFrame edge on both encode
// and decode: a frame of exactly MaxFrame bytes passes, one byte more is
// rejected.
func TestMaxFrameBoundary(t *testing.T) {
	// Find the fixed overhead of an event frame, then size the detail so
	// the encoding lands exactly on MaxFrame.
	probe, err := Encode(NewEvent("a", "b", 1, "e", "x"))
	if err != nil {
		t.Fatal(err)
	}
	overhead := len(probe) - 1
	exact := NewEvent("a", "b", 1, "e", strings.Repeat("x", MaxFrame-overhead))
	b, err := Encode(exact)
	if err != nil {
		t.Fatalf("Encode at MaxFrame: %v", err)
	}
	if len(b) != MaxFrame {
		t.Fatalf("frame = %d bytes, want exactly MaxFrame=%d", len(b), MaxFrame)
	}
	if _, err := Decode(b); err != nil {
		t.Fatalf("Decode at MaxFrame: %v", err)
	}
	var m Message
	if err := DecodeInto(b, &m); err != nil {
		t.Fatalf("DecodeInto at MaxFrame: %v", err)
	}
	over := NewEvent("a", "b", 1, "e", strings.Repeat("x", MaxFrame-overhead+1))
	if _, err := Encode(over); err != ErrFrameTooLarge {
		t.Fatalf("Encode over MaxFrame = %v, want ErrFrameTooLarge", err)
	}
	if _, err := Decode(make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("Decode over MaxFrame = %v, want ErrFrameTooLarge", err)
	}
	// AppendEncode must leave dst untouched on rejection.
	dst := []byte("prefix")
	dst2, err := AppendEncode(dst, over)
	if err != ErrFrameTooLarge || string(dst2) != "prefix" {
		t.Fatalf("AppendEncode over MaxFrame = %q, %v", dst2, err)
	}
}

// TestDecoderLeniency checks the hand-rolled parser handles the XML
// variants encoding/xml would: quoting styles, self-closing tags,
// whitespace, entity and character references.
func TestDecoderLeniency(t *testing.T) {
	cases := []struct {
		in   string
		want *Message
	}{
		{
			`<message from='a' to='b' seq='1'><ping nonce='2'/></message>`,
			NewPing("a", "b", 1, 2),
		},
		{
			" \n\t<message from=\"a\" to=\"b\" seq=\"1\">\n  <ping nonce=\"2\"></ping>\n</message>\r\n",
			NewPing("a", "b", 1, 2),
		},
		{
			`<message from = "a" to = "b" seq = "1"><ping nonce="2" /></message>`,
			NewPing("a", "b", 1, 2),
		},
		{
			`<message from="&#97;&#x62;&lt;&gt;&amp;&apos;&quot;" to="b" seq="1"><ping nonce="2"/></message>`,
			NewPing(`ab<>&'"`, "b", 1, 2),
		},
		{
			`<message from="a" to="b" seq="1" extra="ignored"><ack of="3" ok="1" bogus="x"/></message>`,
			NewAck("a", "b", 1, 3, true, ""),
		},
		{
			`<message from="a" to="b" seq="1"><command name="c"><param key="k" value="v"/><param key="k2" value="v2"></param></command></message>`,
			NewCommand("a", "b", 1, "c", "k", "v", "k2", "v2"),
		},
		{
			// Duplicate body element: last wins, as with encoding/xml.
			`<message from="a" to="b" seq="1"><ping nonce="1"/><ping nonce="9"/></message>`,
			NewPing("a", "b", 1, 9),
		},
		{
			// \r and \r\n in attribute values normalise to \n.
			"<message from=\"a\rb\rc\" to=\"b\" seq=\"1\"><ping nonce=\"2\"/></message>",
			NewPing("a\nb\nc", "b", 1, 2),
		},
	}
	for _, tc := range cases {
		got, err := Decode([]byte(tc.in))
		if err != nil {
			t.Errorf("Decode(%q): %v", tc.in, err)
			continue
		}
		sameMessage(t, got, withXMLName(tc.want))
		// Every lenient acceptance must agree with encoding/xml.
		std, err := StdDecode([]byte(tc.in))
		if err != nil {
			t.Errorf("StdDecode(%q): %v (new decoder accepted)", tc.in, err)
			continue
		}
		sameMessage(t, got, std)
	}
}

// TestDecoderStrictness enumerates inputs the hand-rolled parser must
// reject: malformed syntax, out-of-range characters, unknown elements,
// and the XML machinery the codec deliberately does not speak.
func TestDecoderStrictness(t *testing.T) {
	cases := []string{
		"",
		"<",
		"<message",
		`<message from="a" to="b" seq="1">`,
		`<message from="a" to="b" seq="1"><ping nonce="2"/>`,
		`<message from="a" to="b" seq="1"><ping nonce="2"/></msg>`,
		`<message from="a" to="b" seq="1"><ping nonce="2"/></message>x`,
		`<message from="a" to="b" seq="1"><blob/></message>`,
		`<message from="a" to="b" seq="1"><ping nonce="x"/></message>`,
		`<message from="a" to="b" seq="-1"><ping nonce="2"/></message>`,
		`<message from="a" to="b" seq="99999999999999999999"><ping nonce="2"/></message>`,
		`<message from="a" to="b" seq="1"><ping nonce="2">text</ping></message>`,
		`<message from="a" to="b" seq="1"><!-- comment --><ping nonce="2"/></message>`,
		`<?xml version="1.0"?><message from="a" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message xmlns="ns" from="a" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message from="&bad;" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message from="&#0;" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message from="&#xD800;" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message from="&#x110000;" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message from="a` + "\x01" + `" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message from="a` + "\xff" + `" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message from="a<b" to="b" seq="1"><ping nonce="2"/></message>`,
		`<message from="unterminated`,
		`<message from="a" to="b" seq="1"><ack of="1" ok="yes"/></message>`,
	}
	for _, in := range cases {
		if m, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) accepted: %+v", in, m)
		}
		var reused Message
		if err := DecodeInto([]byte(in), &reused); err == nil {
			t.Errorf("DecodeInto(%q) accepted", in)
		}
	}
}

// BenchmarkAppendEncode / BenchmarkDecodeInto / their Std counterparts
// give the per-op view of the wire records in BENCH_RESULTS.json.
func BenchmarkAppendEncode(b *testing.B) {
	m := NewPing(AddrFD, AddrSES, 7, 42)
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendEncode(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStdEncode(b *testing.B) {
	m := NewPing(AddrFD, AddrSES, 7, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := StdEncode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	buf, err := Encode(NewPing(AddrFD, AddrSES, 7, 42))
	if err != nil {
		b.Fatal(err)
	}
	var m Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(buf, &m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStdDecode(b *testing.B) {
	buf, err := Encode(NewPing(AddrFD, AddrSES, 7, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := StdDecode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
