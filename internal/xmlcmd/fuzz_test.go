package xmlcmd

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// FuzzDecode throws arbitrary bytes at the codec: whatever the fabric
// delivers, Decode must return a validated message or an error — never
// panic, and never accept a frame its own Validate would reject.
func FuzzDecode(f *testing.F) {
	seedMsgs := []*Message{
		NewPing("fd", "ses", 1, 42),
		NewPong("ses", NewPing("fd", "ses", 2, 43), 3),
		NewCommand("rec", "mbus", 4, "register"),
		NewCommand("fedr", "pbcom", 5, "tune", "freq", "437.5"),
		NewAck("pbcom", "fedr", 6, 5, true, ""),
		NewTelemetry("rtu", "str", 7, "az", 181.5, time.Unix(1020000000, 0).UTC()),
		NewEvent("fd", "rec", 8, "failure", "ses"),
		NewSync("ses", "str", 9, 1020000000),
		NewSyncAck("str", "ses", 10, 1020000000),
	}
	for _, m := range seedMsgs {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Truncated and lightly corrupted variants of real frames.
		f.Add(b[:len(b)/2])
		f.Add(bytes.Replace(b, []byte("<"), []byte("&"), 2))
	}
	f.Add([]byte(""))
	f.Add([]byte("<msg>"))
	f.Add(bytes.Repeat([]byte("<msg from=\"a\" to=\"b\">"), 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if len(data) > MaxFrame {
			if !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("oversized frame (%d bytes) decoded to %v, %v", len(data), m, err)
			}
			return
		}
		if err != nil {
			return
		}
		// Anything Decode accepts must satisfy the same invariants the
		// system relies on: it validates and re-encodes.
		if verr := m.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid message: %v", verr)
		}
		if _, eerr := Encode(m); eerr != nil {
			t.Fatalf("decoded message does not re-encode: %v", eerr)
		}
	})
}
