package xmlcmd

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"
)

// FuzzDecode throws arbitrary bytes at the codec: whatever the fabric
// delivers, Decode must return a validated message or an error — never
// panic, and never accept a frame its own Validate would reject.
func FuzzDecode(f *testing.F) {
	seedMsgs := []*Message{
		NewPing("fd", "ses", 1, 42),
		NewPong("ses", NewPing("fd", "ses", 2, 43), 3),
		NewCommand("rec", "mbus", 4, "register"),
		NewCommand("fedr", "pbcom", 5, "tune", "freq", "437.5"),
		NewAck("pbcom", "fedr", 6, 5, true, ""),
		NewTelemetry("rtu", "str", 7, "az", 181.5, time.Unix(1020000000, 0).UTC()),
		NewEvent("fd", "rec", 8, "failure", "ses"),
		NewSync("ses", "str", 9, 1020000000),
		NewSyncAck("str", "ses", 10, 1020000000),
	}
	for _, m := range seedMsgs {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Truncated and lightly corrupted variants of real frames.
		f.Add(b[:len(b)/2])
		f.Add(bytes.Replace(b, []byte("<"), []byte("&"), 2))
	}
	f.Add([]byte(""))
	f.Add([]byte("<msg>"))
	f.Add(bytes.Repeat([]byte("<msg from=\"a\" to=\"b\">"), 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if len(data) > MaxFrame {
			if !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("oversized frame (%d bytes) decoded to %v, %v", len(data), m, err)
			}
			return
		}
		if err != nil {
			return
		}
		// Anything Decode accepts must satisfy the same invariants the
		// system relies on: it validates and re-encodes.
		if verr := m.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid message: %v", verr)
		}
		if _, eerr := Encode(m); eerr != nil {
			t.Fatalf("decoded message does not re-encode: %v", eerr)
		}
	})
}

// FuzzCodecDiff cross-checks the hand-rolled decoder against encoding/xml
// on arbitrary input. The contract is one-sided by design: the hand-rolled
// parser may reject XML machinery it doesn't speak (comments, namespaces,
// unknown elements — rejecting a frame just tears down the connection),
// but everything it ACCEPTS, encoding/xml must accept with an identical
// message, and both encoders must re-encode that message to identical
// bytes. Any divergence here is a silent wire-format fork.
func FuzzCodecDiff(f *testing.F) {
	seedMsgs := []*Message{
		NewPing("fd", "ses", 1, 42),
		NewPong("ses", NewPing("fd", "ses", 2, 43), 3),
		NewCommand("rec", "mbus", 4, "register"),
		NewCommand("fedr", "pbcom", 5, "tune", "freq", "437.5"),
		NewAck("pbcom", "fedr", 6, 5, false, "radio said \"no\" & <hung>"),
		NewTelemetry("rtu", "str", 7, "az", 181.5, time.Unix(1020000000, 0).UTC()),
		NewEvent("fd", "rec", 8, "failure", "ses"),
		NewSync("ses", "str", 9, 1020000000),
		NewSyncAck("str", "ses", 10, 1020000000),
		{From: "ses", To: "fd", Seq: 11, Health: &Health{Incarnation: 2, UptimeMs: 5, AgeScore: 0.5, Suspect: true}},
	}
	for _, m := range seedMsgs {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Variants the strict parser treats differently from the canonical
	// form: quoting, self-closing, entities, whitespace, duplicates.
	f.Add([]byte(`<message from='a' to='b' seq='1'><ping nonce='2'/></message>`))
	f.Add([]byte(`<message from="&#97;&lt;" to="b" seq="1"><ack of="3" ok="True"/></message>`))
	f.Add([]byte("<message from=\"a\rb\" to = 'b' seq='1'>\n<ping nonce='1'/><ping nonce='2'/>\n</message>\n"))
	f.Add([]byte(`<message from="a" to="b" seq="1" x="y"><command name="c"><param key="k" value="&#x41;"/></command></message>`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := DecodeInto(data, &m); err != nil {
			// The hand-rolled parser is allowed to be stricter than
			// encoding/xml; rejection needs no cross-check.
			return
		}
		std, err := StdDecode(data)
		if err != nil {
			t.Fatalf("hand-rolled decoder accepted what encoding/xml rejects (%v): %q", err, data)
		}
		diffMessages(t, &m, std, data)
		fast, ferr := Encode(&m)
		slow, serr := StdEncode(std)
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("re-encode disagreement: fast err %v, std err %v on %q", ferr, serr, data)
		}
		if ferr == nil && !bytes.Equal(fast, slow) {
			t.Fatalf("re-encoded bytes diverged:\nfast: %q\n std: %q\n  on: %q", fast, slow, data)
		}
	})
}

// diffMessages fails the test when two decoded messages differ in any
// wire-visible field (the unexported scratch is ignored; nil and empty
// param slices are equal).
func diffMessages(t *testing.T, a, b *Message, data []byte) {
	t.Helper()
	fail := func(field string, av, bv any) {
		t.Fatalf("decoders diverged on %q: %s = %v vs %v", data, field, av, bv)
	}
	if a.XMLName != b.XMLName {
		fail("XMLName", a.XMLName, b.XMLName)
	}
	if a.From != b.From || a.To != b.To || a.Seq != b.Seq {
		fail("envelope", []any{a.From, a.To, a.Seq}, []any{b.From, b.To, b.Seq})
	}
	if (a.Ping == nil) != (b.Ping == nil) || a.Ping != nil && *a.Ping != *b.Ping {
		fail("ping", a.Ping, b.Ping)
	}
	if (a.Pong == nil) != (b.Pong == nil) || a.Pong != nil && *a.Pong != *b.Pong {
		fail("pong", a.Pong, b.Pong)
	}
	if (a.Command == nil) != (b.Command == nil) {
		fail("command", a.Command, b.Command)
	}
	if a.Command != nil {
		if a.Command.Name != b.Command.Name || !sameParamSlices(a.Command.Params, b.Command.Params) {
			fail("command", a.Command, b.Command)
		}
	}
	if (a.Ack == nil) != (b.Ack == nil) || a.Ack != nil && *a.Ack != *b.Ack {
		fail("ack", a.Ack, b.Ack)
	}
	if (a.Telemetry == nil) != (b.Telemetry == nil) {
		fail("telemetry", a.Telemetry, b.Telemetry)
	}
	if a.Telemetry != nil {
		x, y := *a.Telemetry, *b.Telemetry
		nanBoth := math.IsNaN(x.Value) && math.IsNaN(y.Value)
		if x.Key != y.Key || x.AtUnixMilli != y.AtUnixMilli || (x.Value != y.Value && !nanBoth) {
			fail("telemetry", x, y)
		}
	}
	if (a.Event == nil) != (b.Event == nil) {
		fail("event", a.Event, b.Event)
	}
	if a.Event != nil {
		if a.Event.Name != b.Event.Name || a.Event.Detail != b.Event.Detail ||
			!sameParamSlices(a.Event.Params, b.Event.Params) {
			fail("event", a.Event, b.Event)
		}
	}
	if (a.Sync == nil) != (b.Sync == nil) || a.Sync != nil && *a.Sync != *b.Sync {
		fail("sync", a.Sync, b.Sync)
	}
	if (a.SyncAck == nil) != (b.SyncAck == nil) || a.SyncAck != nil && *a.SyncAck != *b.SyncAck {
		fail("syncack", a.SyncAck, b.SyncAck)
	}
	if (a.Health == nil) != (b.Health == nil) || a.Health != nil && *a.Health != *b.Health {
		fail("health", a.Health, b.Health)
	}
}

func sameParamSlices(a, b []Param) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
