// Package xmlcmd implements Mercury's high-level XML command language.
//
// All inter-component traffic in the ground station — liveness pings,
// radio-tuning commands, antenna-pointing commands, satellite state
// telemetry, startup-resynchronisation handshakes and component health
// beacons — is carried as XML messages of this vocabulary over the software
// message bus (see internal/bus). A successful application-level reply
// indicates liveness with higher confidence than a network-level ping,
// which is exactly the property the paper's failure detector relies on.
package xmlcmd

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"
	"time"
)

// Well-known component addresses on the bus.
const (
	AddrMBus    = "mbus"
	AddrFedrcom = "fedrcom"
	AddrFedr    = "fedr"
	AddrPbcom   = "pbcom"
	AddrSES     = "ses"
	AddrSTR     = "str"
	AddrRTU     = "rtu"
	AddrFD      = "fd"
	AddrREC     = "rec"
)

// Kind identifies the body carried by a Message.
type Kind int

// Message kinds. The zero value is invalid so that a forgotten body is
// caught by Validate.
const (
	KindInvalid Kind = iota
	KindPing
	KindPong
	KindCommand
	KindAck
	KindTelemetry
	KindEvent
	KindSync
	KindSyncAck
	KindHealth
)

// kindNames is indexed by Kind: String is called on every trace line, so
// it must not pay for a map lookup.
var kindNames = [...]string{
	KindInvalid:   "invalid",
	KindPing:      "ping",
	KindPong:      "pong",
	KindCommand:   "command",
	KindAck:       "ack",
	KindTelemetry: "telemetry",
	KindEvent:     "event",
	KindSync:      "sync",
	KindSyncAck:   "syncack",
	KindHealth:    "health",
}

// String returns the element name of the kind.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Validation errors.
var (
	ErrNoBody        = errors.New("xmlcmd: message has no body")
	ErrMultipleBody  = errors.New("xmlcmd: message has more than one body")
	ErrMissingFrom   = errors.New("xmlcmd: missing from attribute")
	ErrMissingTo     = errors.New("xmlcmd: missing to attribute")
	ErrEmptyCommand  = errors.New("xmlcmd: command with empty name")
	ErrEmptyEvent    = errors.New("xmlcmd: event with empty name")
	ErrBadTelemetry  = errors.New("xmlcmd: telemetry with empty key")
	ErrFrameTooLarge = errors.New("xmlcmd: frame exceeds maximum size")
)

// Message is the envelope of the XML command language. Exactly one body
// pointer must be non-nil.
type Message struct {
	XMLName xml.Name `xml:"message"`

	// From and To are bus addresses.
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
	// Seq is a sender-scoped sequence number used to pair requests with
	// replies (ping/pong, command/ack).
	Seq uint64 `xml:"seq,attr"`

	Ping      *Ping      `xml:"ping"`
	Pong      *Pong      `xml:"pong"`
	Command   *Command   `xml:"command"`
	Ack       *Ack       `xml:"ack"`
	Telemetry *Telemetry `xml:"telemetry"`
	Event     *Event     `xml:"event"`
	Sync      *Sync      `xml:"sync"`
	SyncAck   *SyncAck   `xml:"syncack"`
	Health    *Health    `xml:"health"`

	// Owner, when non-nil, is handed the message back by the simulated
	// fabric once its last in-flight copy has been delivered or dropped
	// (see bus.Sim). It lets senders pool envelopes and bodies across the
	// fabric boundary instead of allocating per send. Never encoded; the
	// TCP transport ignores it (frames are copied onto the wire, so the
	// sender may reuse the message as soon as Send returns there).
	Owner Recycler `xml:"-"`

	// scratch holds reusable body structs for DecodeInto (invisible to
	// encoding/xml). See codec.go.
	scratch *decodeScratch
}

// Recycler receives messages back from a transport at the end of their
// delivery lifecycle. Implementations are called on the transport's
// dispatch context with the message no longer referenced by the fabric;
// they may clear and reuse it. A recycler must tolerate messages it did
// not mint (drop them) — under chaos duplication the fabric guarantees at
// most one recycle per message, but delivery and recycle order is
// unspecified.
type Recycler interface {
	RecycleMessage(m *Message)
}

// Ping is an application-level liveness probe ("are you alive?").
type Ping struct {
	// Nonce is echoed back in the Pong so stale replies are discarded.
	Nonce uint64 `xml:"nonce,attr"`
}

// Pong is the reply to a Ping. A component only answers once functionally
// ready, so a Pong certifies end-to-end application liveness.
type Pong struct {
	Nonce uint64 `xml:"nonce,attr"`
	// Incarnation is the responder's restart generation, letting the
	// failure detector distinguish a recovered instance from a stale one.
	Incarnation int `xml:"incarnation,attr"`
}

// Command is a high-level ground-station command (tune, point, track, …).
type Command struct {
	Name   string  `xml:"name,attr"`
	Params []Param `xml:"param"`
}

// Param is a named command argument.
type Param struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

// Ack acknowledges a Command, reporting success or an error string.
type Ack struct {
	OfSeq uint64 `xml:"of,attr"`
	OK    bool   `xml:"ok,attr"`
	Error string `xml:"error,attr,omitempty"`
}

// Telemetry is a stream sample (antenna angles, radio frequency, satellite
// range, science data counters, …).
type Telemetry struct {
	Key   string  `xml:"key,attr"`
	Value float64 `xml:"value,attr"`
	// AtUnixMilli stamps the sample; XML attributes carry the unit in the
	// name because encoding/xml has no native time.Duration support.
	AtUnixMilli int64 `xml:"atUnixMilli,attr"`
}

// At returns the sample instant.
func (t *Telemetry) At() time.Time { return time.UnixMilli(t.AtUnixMilli) }

// Event is an asynchronous notification (pass start, link lost, …).
type Event struct {
	Name   string  `xml:"name,attr"`
	Detail string  `xml:"detail,attr,omitempty"`
	Params []Param `xml:"param"`
}

// Sync is the startup-resynchronisation handshake used by the ses/str pair.
// A freshly started component proposes a new session epoch; a peer that is
// itself (re)starting adopts it, while a running peer with a different
// epoch cannot resynchronise and fails — the correlated-failure artifact
// the paper's group consolidation addresses.
type Sync struct {
	Epoch int64 `xml:"epoch,attr"`
}

// SyncAck accepts a proposed session epoch.
type SyncAck struct {
	Epoch int64 `xml:"epoch,attr"`
}

// Health is a component health-summary beacon (paper §7): a digest of
// internal metrics that has not yet caused a failure.
type Health struct {
	Incarnation int     `xml:"incarnation,attr"`
	UptimeMs    int64   `xml:"uptimeMs,attr"`
	QueueDepth  int     `xml:"queueDepth,attr"`
	AgeScore    float64 `xml:"ageScore,attr"`
	Warnings    int     `xml:"warnings,attr"`
	Suspect     bool    `xml:"suspect,attr"`
}

// Kind reports which body the message carries, or KindInvalid if none.
func (m *Message) Kind() Kind {
	switch {
	case m.Ping != nil:
		return KindPing
	case m.Pong != nil:
		return KindPong
	case m.Command != nil:
		return KindCommand
	case m.Ack != nil:
		return KindAck
	case m.Telemetry != nil:
		return KindTelemetry
	case m.Event != nil:
		return KindEvent
	case m.Sync != nil:
		return KindSync
	case m.SyncAck != nil:
		return KindSyncAck
	case m.Health != nil:
		return KindHealth
	}
	return KindInvalid
}

// bodyCount returns how many bodies are set. It runs inside Validate on
// every encode and decode, so it is straight-line code: the obvious slice
// literal costs an allocation per call.
func (m *Message) bodyCount() int {
	n := 0
	if m.Ping != nil {
		n++
	}
	if m.Pong != nil {
		n++
	}
	if m.Command != nil {
		n++
	}
	if m.Ack != nil {
		n++
	}
	if m.Telemetry != nil {
		n++
	}
	if m.Event != nil {
		n++
	}
	if m.Sync != nil {
		n++
	}
	if m.SyncAck != nil {
		n++
	}
	if m.Health != nil {
		n++
	}
	return n
}

// Validate checks that the envelope is well formed: addressed, and carrying
// exactly one body with its required fields.
func (m *Message) Validate() error {
	if m.From == "" {
		return ErrMissingFrom
	}
	if m.To == "" {
		return ErrMissingTo
	}
	switch n := m.bodyCount(); {
	case n == 0:
		return ErrNoBody
	case n > 1:
		return ErrMultipleBody
	}
	switch m.Kind() {
	case KindCommand:
		if m.Command.Name == "" {
			return ErrEmptyCommand
		}
	case KindEvent:
		if m.Event.Name == "" {
			return ErrEmptyEvent
		}
	case KindTelemetry:
		if m.Telemetry.Key == "" {
			return ErrBadTelemetry
		}
	}
	return nil
}

// String renders a compact one-line description for traces and logs.
func (m *Message) String() string {
	return fmt.Sprintf("%s->%s %s#%d", m.From, m.To, m.Kind(), m.Seq)
}

// MaxFrame is the largest encoded message the codec accepts; anything
// larger indicates corruption or abuse.
const MaxFrame = 64 * 1024

// Encode marshals the message to its XML wire form after validating it.
// It is a thin wrapper over AppendEncode (codec.go); callers on the hot
// path should hold their own buffer and call AppendEncode directly.
func Encode(m *Message) ([]byte, error) {
	b, err := AppendEncode(nil, m)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Decode parses and validates a message from its XML wire form. It is a
// thin wrapper over DecodeInto (codec.go) allocating a fresh Message, so
// the result can safely outlive the next frame; callers on the hot path
// that consume the message before reading the next frame should reuse a
// Message with DecodeInto.
func Decode(b []byte) (*Message, error) {
	m := new(Message)
	if err := DecodeInto(b, m); err != nil {
		return nil, err
	}
	return m, nil
}

// StdEncode is the retained encoding/xml implementation Encode wrapped
// before the hand-rolled codec existed. It survives as the reference the
// corpus-equivalence test and FuzzCodecDiff compare against, and as the
// baseline `rrbench wire` measures.
func StdEncode(m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b, err := xml.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("xmlcmd: marshal: %w", err)
	}
	if len(b) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// StdDecode is the retained encoding/xml counterpart of StdEncode.
func StdDecode(b []byte) (*Message, error) {
	if len(b) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	var m Message
	if err := xml.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("xmlcmd: unmarshal: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// NewPing builds a liveness probe.
func NewPing(from, to string, seq, nonce uint64) *Message {
	return &Message{From: from, To: to, Seq: seq, Ping: &Ping{Nonce: nonce}}
}

// NewPong builds the reply to ping.
func NewPong(from string, ping *Message, incarnation int) *Message {
	return &Message{
		From: from,
		To:   ping.From,
		Seq:  ping.Seq,
		Pong: &Pong{Nonce: ping.Ping.Nonce, Incarnation: incarnation},
	}
}

// NewCommand builds a command message; params are alternating key, value
// pairs.
func NewCommand(from, to string, seq uint64, name string, params ...string) *Message {
	c := &Command{Name: name}
	for i := 0; i+1 < len(params); i += 2 {
		c.Params = append(c.Params, Param{Key: params[i], Value: params[i+1]})
	}
	return &Message{From: from, To: to, Seq: seq, Command: c}
}

// NewAck acknowledges command seq ofSeq.
func NewAck(from, to string, seq, ofSeq uint64, ok bool, errStr string) *Message {
	return &Message{From: from, To: to, Seq: seq, Ack: &Ack{OfSeq: ofSeq, OK: ok, Error: errStr}}
}

// NewTelemetry builds a telemetry sample.
func NewTelemetry(from, to string, seq uint64, key string, value float64, at time.Time) *Message {
	return &Message{
		From: from, To: to, Seq: seq,
		Telemetry: &Telemetry{Key: key, Value: value, AtUnixMilli: at.UnixMilli()},
	}
}

// NewEvent builds an event notification.
func NewEvent(from, to string, seq uint64, name, detail string) *Message {
	return &Message{From: from, To: to, Seq: seq, Event: &Event{Name: name, Detail: detail}}
}

// NewSync builds a startup resynchronisation proposal.
func NewSync(from, to string, seq uint64, epoch int64) *Message {
	return &Message{From: from, To: to, Seq: seq, Sync: &Sync{Epoch: epoch}}
}

// NewSyncAck accepts a resynchronisation proposal.
func NewSyncAck(from, to string, seq uint64, epoch int64) *Message {
	return &Message{From: from, To: to, Seq: seq, SyncAck: &SyncAck{Epoch: epoch}}
}

// Param looks up a command parameter by key.
func (c *Command) Param(key string) (string, bool) {
	for _, p := range c.Params {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// FloatParam looks up a command parameter and parses it as float64.
func (c *Command) FloatParam(key string) (float64, error) {
	v, ok := c.Param(key)
	if !ok {
		return 0, fmt.Errorf("xmlcmd: command %q missing param %q", c.Name, key)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("xmlcmd: command %q param %q: %w", c.Name, key, err)
	}
	return f, nil
}
