// Package trace records the structured event log that experiments measure
// recovery time from. The paper defines recovery time as the interval from
// the instant a failure occurs (the SIGKILL, not its detection) until the
// component logs a timestamped "functionally ready" message; this package
// is that log.
//
// Trace is one of two event planes: it captures the full causal sequence
// of a run (per-event, subscribable, what experiments and the mercuryd
// live stream consume), while internal/obs keeps aggregate runtime
// counters and histograms for scraping. The two never feed each other.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind int

// Trace event kinds.
const (
	// FaultInjected marks the instant a fault is delivered to a component.
	// Downtime starts here (paper §3.2).
	FaultInjected Kind = iota + 1
	// ComponentDown marks the instant a component actually stops serving.
	ComponentDown
	// FailureDetected marks FD reporting a failed component to REC.
	FailureDetected
	// RestartRequested marks REC deciding to push a restart-cell button.
	RestartRequested
	// ComponentKilled marks a component being torn down as part of a
	// restart action.
	ComponentKilled
	// ComponentStarting marks the beginning of a component's startup.
	ComponentStarting
	// ComponentReady marks the component's "functionally ready" log line.
	ComponentReady
	// FaultCured marks a fault's minimal cure set having been restarted.
	FaultCured
	// SystemRecovered marks all components ready with no active fault.
	SystemRecovered
	// OracleGuess records which node the oracle recommended.
	OracleGuess
	// GiveUp marks the restart policy abandoning a "hard" failure after
	// exhausting its restart budget.
	GiveUp
	// Note is free-form annotation.
	Note
)

var kindNames = map[Kind]string{
	FaultInjected:     "fault-injected",
	ComponentDown:     "component-down",
	FailureDetected:   "failure-detected",
	RestartRequested:  "restart-requested",
	ComponentKilled:   "component-killed",
	ComponentStarting: "component-starting",
	ComponentReady:    "component-ready",
	FaultCured:        "fault-cured",
	SystemRecovered:   "system-recovered",
	OracleGuess:       "oracle-guess",
	GiveUp:            "give-up",
	Note:              "note",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timestamped record.
type Event struct {
	At        time.Time
	Kind      Kind
	Component string // affected component, if any
	Node      string // restart-tree node, if any
	Detail    string
}

// String renders one log line.
func (e Event) String() string {
	s := fmt.Sprintf("%s %-18s", e.At.Format("15:04:05.000"), e.Kind)
	if e.Component != "" {
		s += " comp=" + e.Component
	}
	if e.Node != "" {
		s += " node=" + e.Node
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Log is an append-only event log, safe for concurrent use so it serves
// both the single-threaded simulator and the real-time runtime.
type Log struct {
	mu     sync.Mutex
	events []Event
	subs   []func(Event)
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append records an event and fans it out to subscribers.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	subs := l.subs
	l.mu.Unlock()
	for _, fn := range subs {
		fn(e)
	}
}

// Add is shorthand for Append with the common fields.
func (l *Log) Add(at time.Time, k Kind, component, node, detail string) {
	l.Append(Event{At: at, Kind: k, Component: component, Node: node, Detail: detail})
}

// Subscribe registers fn to be called for every future event. Subscribers
// run on the appender's context and must be fast and non-blocking.
func (l *Log) Subscribe(fn func(Event)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs = append(l.subs, fn)
}

// Events returns a copy of all recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards all recorded events but keeps subscribers.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = l.events[:0]
}

// Filter returns the events matching pred, in order.
func (l *Log) Filter(pred func(Event) bool) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// LastRecovery returns the duration between the most recent FaultInjected
// event and the first SystemRecovered event after it, which is the paper's
// definition of time-to-recover. ok is false if no such pair exists.
func (l *Log) LastRecovery() (d time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var injectedAt time.Time
	haveInjected := false
	for _, e := range l.events {
		switch e.Kind {
		case FaultInjected:
			injectedAt = e.At
			haveInjected = true
		case SystemRecovered:
			if haveInjected {
				d, ok = e.At.Sub(injectedAt), true
				haveInjected = false
			}
		}
	}
	return d, ok
}
