package trace

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2002, 6, 23, 10, 0, 0, 0, time.UTC)

func TestAppendAndEvents(t *testing.T) {
	l := NewLog()
	l.Add(t0, FaultInjected, "rtu", "", "kill")
	l.Add(t0.Add(time.Second), FailureDetected, "rtu", "", "")
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	evs := l.Events()
	if evs[0].Kind != FaultInjected || evs[1].Component != "rtu" {
		t.Fatalf("events = %+v", evs)
	}
	// Events must be a copy.
	evs[0].Component = "mutated"
	if l.Events()[0].Component != "rtu" {
		t.Fatal("Events exposed internal state")
	}
}

func TestSubscribe(t *testing.T) {
	l := NewLog()
	var got []Event
	l.Subscribe(func(e Event) { got = append(got, e) })
	l.Add(t0, Note, "", "", "hello")
	if len(got) != 1 || got[0].Detail != "hello" {
		t.Fatalf("subscriber got %+v", got)
	}
}

func TestFilter(t *testing.T) {
	l := NewLog()
	l.Add(t0, FaultInjected, "a", "", "")
	l.Add(t0, ComponentReady, "a", "", "")
	l.Add(t0, ComponentReady, "b", "", "")
	ready := l.Filter(func(e Event) bool { return e.Kind == ComponentReady })
	if len(ready) != 2 {
		t.Fatalf("filtered %d events, want 2", len(ready))
	}
}

func TestLastRecovery(t *testing.T) {
	l := NewLog()
	if _, ok := l.LastRecovery(); ok {
		t.Fatal("empty log reported a recovery")
	}
	l.Add(t0, FaultInjected, "rtu", "", "")
	if _, ok := l.LastRecovery(); ok {
		t.Fatal("unrecovered fault reported recovery")
	}
	l.Add(t0.Add(5*time.Second), SystemRecovered, "", "", "")
	d, ok := l.LastRecovery()
	if !ok || d != 5*time.Second {
		t.Fatalf("recovery = %v, %v", d, ok)
	}
	// A later fault supersedes; its recovery is the one measured.
	l.Add(t0.Add(time.Minute), FaultInjected, "ses", "", "")
	l.Add(t0.Add(time.Minute+9*time.Second), SystemRecovered, "", "", "")
	d, ok = l.LastRecovery()
	if !ok || d != 9*time.Second {
		t.Fatalf("second recovery = %v, %v", d, ok)
	}
}

func TestReset(t *testing.T) {
	l := NewLog()
	l.Add(t0, Note, "", "", "")
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	// Subscribers survive reset.
	n := 0
	l.Subscribe(func(Event) { n++ })
	l.Reset()
	l.Add(t0, Note, "", "", "")
	if n != 1 {
		t.Fatal("subscriber lost after Reset")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: t0, Kind: RestartRequested, Component: "ses", Node: "[ses str]", Detail: "escalation"}
	s := e.String()
	for _, want := range []string{"restart-requested", "comp=ses", "node=[ses str]", "escalation"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if FaultInjected.String() != "fault-injected" {
		t.Fatal("kind name mismatch")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind should include number")
	}
}
