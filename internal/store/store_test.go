package store

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/sim"
)

func simStore(sweep time.Duration) (*Store, *sim.Kernel) {
	k := sim.New(1)
	return New(clock.Sim{K: k}, Options{SweepPeriod: sweep}), k
}

func TestLeaseLifecycle(t *testing.T) {
	s, _ := simStore(0)
	l, err := s.Acquire("session/epoch", "ses", 10*time.Second)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, _, ok := l.Get(); ok {
		t.Fatal("value present before any Put")
	}
	v, err := l.Put([]byte("e1"))
	if err != nil || v != 1 {
		t.Fatalf("put: v=%d err=%v", v, err)
	}
	if v, err = l.Put([]byte("e2")); err != nil || v != 2 {
		t.Fatalf("second put: v=%d err=%v", v, err)
	}
	got, ver, ok := l.Get()
	if !ok || ver != 2 || string(got) != "e2" {
		t.Fatalf("get: %q v=%d ok=%v", got, ver, ok)
	}

	// Same owner reattaches; a different owner is refused while live.
	if _, err := s.Acquire("session/epoch", "ses", 10*time.Second); err != nil {
		t.Fatalf("same-owner reacquire: %v", err)
	}
	if _, err := s.Acquire("session/epoch", "intruder", time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("expected ErrLeaseHeld, got %v", err)
	}

	// Release kills the lease: operations fail, others may take the key.
	l.Release()
	if _, err := l.Put([]byte("x")); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("put after release: %v", err)
	}
	if _, err := s.Acquire("session/epoch", "next", time.Second); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestLeaseExpirySim pins the crash-only contract on virtual time: once the
// holder stops renewing, the state dies at the deadline — deterministically.
func TestLeaseExpirySim(t *testing.T) {
	s, k := simStore(5 * time.Second)
	l, err := s.Acquire("track/str", "str", 10*time.Second)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := l.Put([]byte("az=12")); err != nil {
		t.Fatalf("put: %v", err)
	}

	// Renewing moves the deadline; the sweeper must not reclaim early.
	if err := k.RunFor(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(10 * time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := k.RunFor(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("track/str"); !ok {
		t.Fatal("value dead before lease expiry")
	}

	// Stop renewing: past the deadline the value reads as absent, the
	// sweeper reclaims it, and any owner may take the key fresh.
	if err := k.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("track/str"); ok {
		t.Fatal("value survived lease expiry")
	}
	if s.Len() != 0 {
		t.Fatalf("sweeper left %d entries", s.Len())
	}
	l2, err := s.Acquire("track/str", "str2", time.Second)
	if err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	if _, _, ok := l2.Get(); ok {
		t.Fatal("stale value visible to the new owner")
	}
}

// TestLeaseExpiryScaled runs the same contract on compressed wall time —
// the rt path — under the race detector.
func TestLeaseExpiryScaled(t *testing.T) {
	clk := clock.Scaled{Inner: clock.Real{}, Factor: 100}
	s := New(clk, Options{SweepPeriod: 500 * time.Millisecond})
	defer s.Close()
	l, err := s.Acquire("session/epoch", "ses", 2*time.Second)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := l.Put([]byte("epoch")); err != nil {
		t.Fatalf("put: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := s.Get("session/epoch"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired under scaled time")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Acquire("session/epoch", "other", time.Second); err != nil {
		t.Fatalf("acquire after scaled expiry: %v", err)
	}
}

// TestLeaseSurvivesReattach pins the microreboot path: a new incarnation of
// the same owner reacquires and sees the surviving state unchanged.
func TestLeaseSurvivesReattach(t *testing.T) {
	s, k := simStore(0)
	l, _ := s.Acquire("session/epoch", "ses+str", 30*time.Second)
	cell := NewCell(l, Int64Codec())
	if err := cell.Save(424242); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The component restarts: logic gone, a fresh lease handle reattaches.
	l2, err := s.Acquire("session/epoch", "ses+str", 30*time.Second)
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}
	got, ok := NewCell(l2, Int64Codec()).Load()
	if !ok || got != 424242 {
		t.Fatalf("state lost across reattach: %d ok=%v", got, ok)
	}
}

// TestZeroAllocHotPath pins the steady-state Put/Get/Save/Load paths at
// zero allocations.
func TestZeroAllocHotPath(t *testing.T) {
	s, _ := simStore(0)
	l, _ := s.Acquire("k", "o", time.Hour)
	val := []byte("steady-state payload")
	if _, err := l.Put(val); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := l.Put(val); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := l.Get(); !ok {
			t.Fatal("get miss")
		}
	}); n != 0 {
		t.Fatalf("lease hot path allocates %.1f/op", n)
	}

	l2, _ := s.Acquire("epoch", "o", time.Hour)
	cell := NewCell(l2, Int64Codec())
	if err := cell.Save(7); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := cell.Save(99); err != nil {
			t.Fatal(err)
		}
		if _, ok := cell.Load(); !ok {
			t.Fatal("load miss")
		}
	}); n != 0 {
		t.Fatalf("cell hot path allocates %.1f/op", n)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, _ := simStore(0)
	for _, kv := range []struct{ k, o, v string }{
		{"session/epoch", "ses+str", "1234"},
		{"track/str", "str", "az=181.5 el=44.0"},
		{"session/fedr", "fedr", "inc=3"},
	} {
		l, err := s.Acquire(kv.k, kv.o, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Put([]byte(kv.v)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if !bytes.Equal(snap, s.Snapshot()) {
		t.Fatal("snapshot not deterministic")
	}
	s2, _ := simStore(0)
	if err := s2.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !bytes.Equal(snap, s2.Snapshot()) {
		t.Fatal("snapshot changed across restore")
	}
	if got, _, ok := s2.Get("track/str"); !ok || string(got) != "az=181.5 el=44.0" {
		t.Fatalf("restored value wrong: %q ok=%v", got, ok)
	}
	if err := s2.Restore([]byte("garbage")); err == nil {
		t.Fatal("restore accepted garbage")
	}
}

func TestCodecHelpers(t *testing.T) {
	buf := AppendFloat64(AppendInt64(nil, -7), 181.5)
	i, rest, ok := ParseInt64(buf)
	if !ok || i != -7 {
		t.Fatalf("int64: %d ok=%v", i, ok)
	}
	f, rest, ok := ParseFloat64(rest)
	if !ok || f != 181.5 || len(rest) != 0 {
		t.Fatalf("float64: %v ok=%v rest=%d", f, ok, len(rest))
	}
	if _, _, ok := ParseInt64([]byte{1, 2}); ok {
		t.Fatal("short parse succeeded")
	}
}
