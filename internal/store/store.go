// Package store is the crash-only state store backing microrebootable
// components. Subcomponents keep their session/track state here — versioned,
// leased entries on the runtime clock — so a microreboot is "drop the logic,
// reattach to the state" instead of a full process restart with resync.
//
// The crash-only contract: state lives exactly as long as some live
// component renews its lease. A component that dies stops renewing; once the
// lease deadline passes, the entry is dead — Acquire by anyone succeeds,
// Get reports absence, and the deterministic sweeper reclaims the bytes.
// There is no shutdown path and no cleanup protocol to get wrong: the only
// way state disappears is the same way it disappears in a crash.
//
// The hot path (Lease.Get / Lease.Put / Cell.Load / Cell.Save) is
// allocation-free in steady state: values are copied into per-entry buffers
// that are reused across writes, and reads return borrowed views.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
)

var (
	// ErrLeaseHeld is returned by Acquire when another owner holds a live
	// lease on the key.
	ErrLeaseHeld = errors.New("store: lease held by another owner")
	// ErrLeaseLost is returned by lease operations after the lease expired
	// or was taken over by another owner.
	ErrLeaseLost = errors.New("store: lease lost")
)

// Options configures a Store.
type Options struct {
	// SweepPeriod is the interval of the deterministic expired-entry
	// sweeper. Zero disables the background sweeper; expired entries are
	// then reclaimed only by explicit Sweep calls (they are treated as
	// absent either way).
	SweepPeriod time.Duration
}

// entry is one versioned, leased value. The value buffer is reused across
// writes so steady-state puts allocate nothing.
type entry struct {
	val      []byte
	version  uint64
	owner    string
	deadline time.Time // lease expiry; entry is dead once this passes
}

// Store is a crash-only, versioned, leased key-value store. It is
// mutex-protected: the sim runtime drives it from one dispatch context, but
// rt live nodes touch it from component callbacks under the race detector.
type Store struct {
	clk clock.Clock

	mu      sync.Mutex
	entries map[string]*entry
	bytes   int // total live value bytes
	sweeper *clock.Ticker
}

// New builds a store on the given clock and, if opts.SweepPeriod > 0,
// starts the deterministic expired-entry sweeper on it.
func New(clk clock.Clock, opts Options) *Store {
	s := &Store{clk: clk, entries: make(map[string]*entry)}
	if opts.SweepPeriod > 0 {
		s.sweeper = clock.NewTicker(clk, opts.SweepPeriod, func() { s.Sweep() })
	}
	return s
}

// Close stops the background sweeper. The store itself needs no shutdown —
// that is the point.
func (s *Store) Close() {
	if s.sweeper != nil {
		s.sweeper.Stop()
	}
}

// live reports whether e holds an unexpired lease at time now.
func live(e *entry, now time.Time) bool {
	return e.owner != "" && e.deadline.After(now)
}

// Acquire takes (or retakes) the lease on key for owner with the given TTL.
// It succeeds when the key is unleased, expired, or already held by the
// same owner — the last case is the microreboot path: a rebooted
// subcomponent reattaches to its own surviving state. A live lease held by
// a different owner yields ErrLeaseHeld.
func (s *Store) Acquire(key, owner string, ttl time.Duration) (*Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	e := s.entries[key]
	if e == nil {
		e = &entry{}
		s.entries[key] = e
	} else if live(e, now) && e.owner != owner {
		M.LeaseConflicts.Inc()
		return nil, fmt.Errorf("%w: %q holds %q", ErrLeaseHeld, e.owner, key)
	} else if !live(e, now) && e.version > 0 {
		// The previous holder stopped renewing: the state died with it.
		s.expireLocked(key, e)
		e = &entry{}
		s.entries[key] = e
	}
	e.owner = owner
	e.deadline = now.Add(ttl)
	M.LeaseAcquires.Inc()
	return &Lease{s: s, key: key, owner: owner}, nil
}

// expireLocked drops a dead entry's value, keeping metrics honest.
// Callers hold s.mu.
func (s *Store) expireLocked(key string, e *entry) {
	s.bytes -= len(e.val)
	delete(s.entries, key)
	M.LeaseExpirations.Inc()
}

// Sweep reclaims every expired entry, in deterministic (sorted-key) order,
// and returns how many were removed.
func (s *Store) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	var dead []string
	for k, e := range s.entries {
		if !live(e, now) {
			dead = append(dead, k)
		}
	}
	sort.Strings(dead)
	for _, k := range dead {
		s.expireLocked(k, s.entries[k])
	}
	M.Sweeps.Inc()
	return len(dead)
}

// Get returns a borrowed view of the value under key, with its version.
// Expired entries read as absent. The returned slice is owned by the store
// and valid only until the next Put on the same key — copy to retain.
func (s *Store) Get(key string) ([]byte, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	M.Gets.Inc()
	e := s.entries[key]
	if e == nil || !live(e, s.clk.Now()) || e.version == 0 {
		M.Misses.Inc()
		return nil, 0, false
	}
	return e.val, e.version, true
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	n := 0
	for _, e := range s.entries {
		if live(e, now) {
			n++
		}
	}
	return n
}

// Bytes returns the total live value bytes held.
func (s *Store) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Lease is a handle on one leased key. All value access goes through a
// lease: state belongs to whoever keeps renewing it.
type Lease struct {
	s     *Store
	key   string
	owner string
}

// Key returns the leased key.
func (l *Lease) Key() string { return l.key }

// check returns the entry if the lease is still ours and live.
// Callers hold l.s.mu.
func (l *Lease) check(now time.Time) (*entry, error) {
	e := l.s.entries[l.key]
	if e == nil || e.owner != l.owner || !e.deadline.After(now) {
		return nil, ErrLeaseLost
	}
	return e, nil
}

// Put replaces the value under the lease, bumping the version. The bytes
// are copied into a buffer reused across writes — zero allocations once the
// buffer has grown to the working size.
func (l *Lease) Put(val []byte) (uint64, error) {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	e, err := l.check(l.s.clk.Now())
	if err != nil {
		return 0, err
	}
	l.s.bytes += len(val) - len(e.val)
	e.val = append(e.val[:0], val...)
	e.version++
	M.Puts.Inc()
	M.ValueBytes.Observe(uint64(len(val)))
	return e.version, nil
}

// Get returns a borrowed view of the leased value and its version, or
// ok=false when nothing has been Put yet. Errors (lease lost) also read as
// ok=false: to the reattaching component, lost state and absent state are
// the same thing.
func (l *Lease) Get() ([]byte, uint64, bool) {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	M.Gets.Inc()
	e, err := l.check(l.s.clk.Now())
	if err != nil || e.version == 0 {
		M.Misses.Inc()
		return nil, 0, false
	}
	return e.val, e.version, true
}

// Version returns the current version under the lease (0 before any Put or
// after the lease is lost).
func (l *Lease) Version() uint64 {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	e, err := l.check(l.s.clk.Now())
	if err != nil {
		return 0
	}
	return e.version
}

// Renew pushes the lease deadline to now+ttl. A component that stops
// renewing — because it crashed — lets the state die with it.
func (l *Lease) Renew(ttl time.Duration) error {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	now := l.s.clk.Now()
	e, err := l.check(now)
	if err != nil {
		return err
	}
	e.deadline = now.Add(ttl)
	M.LeaseRenewals.Inc()
	return nil
}

// Release drops the lease immediately, leaving the entry expired. Nothing
// in the crash-only protocol requires calling it — crashing is equivalent.
func (l *Lease) Release() {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	if e, err := l.check(l.s.clk.Now()); err == nil {
		e.deadline = time.Time{}
	}
}

// ErrNoEntry is returned by Revert for a key with no entry to revert.
var ErrNoEntry = errors.New("store: no entry under key")

// Revert overwrites the value under key with val, bumping the version —
// the checkpoint-restore path. It deliberately bypasses lease ownership:
// the restore is an administrative action by the recovery plane, not a
// component write, and the holder (possibly mid-reboot) keeps its lease.
// Reverting a key with no entry at all fails: checkpoint restore
// resurrects state for components that still exist, it does not create
// orphan entries nobody leases.
func (s *Store) Revert(key string, val []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoEntry, key)
	}
	s.bytes += len(val) - len(e.val)
	e.val = append(e.val[:0], val...)
	e.version++
	M.Reverts.Inc()
	return e.version, nil
}

// --- snapshot / restore ---

// snapMagic versions the snapshot encoding.
const snapMagic = "MSTO1"

// Snapshot encodes every entry — including expired ones not yet swept — in
// deterministic sorted-key order. Byte-identical stores produce
// byte-identical snapshots.
func (s *Store) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		e := s.entries[k]
		buf = appendString(buf, k)
		buf = appendString(buf, e.owner)
		buf = appendBytes(buf, e.val)
		buf = binary.AppendUvarint(buf, e.version)
		var dl int64
		if !e.deadline.IsZero() {
			dl = e.deadline.UnixNano()
		}
		buf = binary.AppendVarint(buf, dl)
	}
	return buf
}

// Restore replaces the store contents from a snapshot. Malformed input
// returns an error and leaves the store unchanged.
func (s *Store) Restore(snap []byte) error {
	if len(snap) < len(snapMagic) || string(snap[:len(snapMagic)]) != snapMagic {
		return errors.New("store: bad snapshot magic")
	}
	src := snap[len(snapMagic):]
	n, src, err := takeUvarint(src)
	if err != nil {
		return err
	}
	if n > uint64(len(snap)) {
		return errors.New("store: snapshot count exceeds input")
	}
	entries := make(map[string]*entry, n)
	bytes := 0
	for i := uint64(0); i < n; i++ {
		var key, owner string
		var val []byte
		if key, src, err = takeString(src); err != nil {
			return err
		}
		if owner, src, err = takeString(src); err != nil {
			return err
		}
		if val, src, err = takeBytes(src); err != nil {
			return err
		}
		e := &entry{val: val, owner: owner}
		if e.version, src, err = takeUvarint(src); err != nil {
			return err
		}
		var dl int64
		if dl, src, err = takeVarint(src); err != nil {
			return err
		}
		if dl != 0 {
			e.deadline = time.Unix(0, dl)
		}
		if _, dup := entries[key]; dup {
			return fmt.Errorf("store: duplicate snapshot key %q", key)
		}
		entries[key] = e
		bytes += len(val)
	}
	if len(src) != 0 {
		return errors.New("store: trailing bytes after snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = entries
	s.bytes = bytes
	M.Restores.Inc()
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func takeUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, errors.New("store: truncated uvarint")
	}
	return v, src[n:], nil
}

func takeVarint(src []byte) (int64, []byte, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, nil, errors.New("store: truncated varint")
	}
	return v, src[n:], nil
}

func takeString(src []byte) (string, []byte, error) {
	b, rest, err := takeBytes(src)
	return string(b), rest, err
}

func takeBytes(src []byte) ([]byte, []byte, error) {
	n, src, err := takeUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(src)) {
		return nil, nil, errors.New("store: truncated bytes")
	}
	out := make([]byte, n)
	copy(out, src[:n])
	return out, src[n:], nil
}

// --- typed cells ---

// Codec encodes and decodes one value type for a Cell. Append writes v onto
// dst and returns the extended slice; Parse reads a value back, reporting
// ok=false on malformed input.
type Codec[T any] struct {
	Append func(dst []byte, v T) []byte
	Parse  func(src []byte) (T, bool)
}

// Cell is a typed view of one leased entry. Save encodes into a scratch
// buffer reused across calls, so steady-state writes allocate nothing.
type Cell[T any] struct {
	lease *Lease
	codec Codec[T]
	buf   []byte
}

// NewCell wraps a lease with a codec.
func NewCell[T any](l *Lease, c Codec[T]) *Cell[T] {
	return &Cell[T]{lease: l, codec: c}
}

// Load decodes the current value, reporting ok=false when the entry is
// empty, the lease is lost, or the bytes do not parse.
func (c *Cell[T]) Load() (T, bool) {
	raw, _, ok := c.lease.Get()
	if !ok {
		var zero T
		return zero, false
	}
	return c.codec.Parse(raw)
}

// Save encodes and stores v under the lease.
func (c *Cell[T]) Save(v T) error {
	c.buf = c.codec.Append(c.buf[:0], v)
	_, err := c.lease.Put(c.buf)
	return err
}

// Lease returns the underlying lease (for Renew/Release).
func (c *Cell[T]) Lease() *Lease { return c.lease }

// Fixed-width scalar helpers for building codecs.

// AppendUint64 appends v big-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// ParseUint64 reads a big-endian uint64 and returns the remainder.
func ParseUint64(src []byte) (uint64, []byte, bool) {
	if len(src) < 8 {
		return 0, nil, false
	}
	return binary.BigEndian.Uint64(src), src[8:], true
}

// AppendInt64 appends v big-endian.
func AppendInt64(dst []byte, v int64) []byte {
	return AppendUint64(dst, uint64(v))
}

// ParseInt64 reads a big-endian int64 and returns the remainder.
func ParseInt64(src []byte) (int64, []byte, bool) {
	u, rest, ok := ParseUint64(src)
	return int64(u), rest, ok
}

// AppendFloat64 appends the IEEE-754 bits of v big-endian.
func AppendFloat64(dst []byte, v float64) []byte {
	return AppendUint64(dst, math.Float64bits(v))
}

// ParseFloat64 reads a big-endian float64 and returns the remainder.
func ParseFloat64(src []byte) (float64, []byte, bool) {
	u, rest, ok := ParseUint64(src)
	return math.Float64frombits(u), rest, ok
}

// Int64Codec is the codec for a single int64 (session epochs, ids).
func Int64Codec() Codec[int64] {
	return Codec[int64]{
		Append: AppendInt64,
		Parse: func(src []byte) (int64, bool) {
			v, rest, ok := ParseInt64(src)
			return v, ok && len(rest) == 0
		},
	}
}
