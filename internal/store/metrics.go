package store

import (
	"github.com/recursive-restart/mercury/internal/obs"
)

// StoreMetrics aggregates the process-wide crash-only store counters.
// Every operation is a single atomic add on the dispatch context; values
// are only read when an obs registry renders them.
type StoreMetrics struct {
	Gets             obs.Counter // value reads (raw and leased)
	Misses           obs.Counter // reads finding no live value
	Puts             obs.Counter // value writes
	LeaseAcquires    obs.Counter // leases granted (incl. same-owner reattach)
	LeaseConflicts   obs.Counter // acquires refused: live lease, other owner
	LeaseRenewals    obs.Counter // deadline extensions
	LeaseExpirations obs.Counter // entries reclaimed after their lease died
	Sweeps           obs.Counter // deterministic sweeper passes
	Restores         obs.Counter // snapshot restores
	Reverts          obs.Counter // checkpoint-restore value reverts

	// ValueBytes is the size distribution of written values.
	ValueBytes *obs.ValueHistogram
}

// M is the process-wide store metrics instance.
var M = StoreMetrics{
	ValueBytes: obs.NewValueHistogram(16, 64, 256, 1024, 4096, 16384),
}

// RegisterMetrics registers the store family with an obs registry under
// the mercury_store_* namespace. Per-store entry/byte gauges are wired by
// the daemon via RegisterGaugeFunc against a concrete Store.
func RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("mercury_store_gets_total",
		"Value reads from the crash-only store.", &M.Gets)
	r.RegisterCounter("mercury_store_misses_total",
		"Reads finding no live value.", &M.Misses)
	r.RegisterCounter("mercury_store_puts_total",
		"Value writes to the crash-only store.", &M.Puts)
	r.RegisterCounter("mercury_store_lease_acquires_total",
		"Leases granted, including same-owner reattach.", &M.LeaseAcquires)
	r.RegisterCounter("mercury_store_lease_conflicts_total",
		"Acquires refused because another owner holds a live lease.", &M.LeaseConflicts)
	r.RegisterCounter("mercury_store_lease_renewals_total",
		"Lease deadline extensions.", &M.LeaseRenewals)
	r.RegisterCounter("mercury_store_lease_expirations_total",
		"Entries reclaimed after their lease expired.", &M.LeaseExpirations)
	r.RegisterCounter("mercury_store_sweeps_total",
		"Deterministic expired-entry sweeper passes.", &M.Sweeps)
	r.RegisterCounter("mercury_store_restores_total",
		"Snapshot restores.", &M.Restores)
	r.RegisterCounter("mercury_store_reverts_total",
		"Checkpoint-restore value reverts.", &M.Reverts)
	r.RegisterValueHistogram("mercury_store_value_bytes",
		"Size distribution of written values.", M.ValueBytes)
}

// RegisterStoreGauges registers the live-size gauges for one concrete
// store instance.
func RegisterStoreGauges(r *obs.Registry, s *Store) {
	r.RegisterGaugeFunc("mercury_store_entries",
		"Live entries in the crash-only store.",
		func() float64 { return float64(s.Len()) })
	r.RegisterGaugeFunc("mercury_store_bytes",
		"Live value bytes in the crash-only store.",
		func() float64 { return float64(s.Bytes()) })
}
