package store

import (
	"bytes"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/sim"
)

// FuzzStoreSnapshot feeds arbitrary bytes to Restore — it must never panic
// — and checks that any accepted input round-trips byte-identically:
// Restore → Snapshot → Restore → Snapshot is a fixed point.
func FuzzStoreSnapshot(f *testing.F) {
	seed, _ := simStore(0)
	l, _ := seed.Acquire("session/epoch", "ses+str", time.Hour)
	l.Put([]byte("1234"))
	l2, _ := seed.Acquire("track/str", "str", time.Hour)
	l2.Put([]byte{0xff, 0x00, 0x41})
	f.Add(seed.Snapshot())
	f.Add([]byte(snapMagic))
	f.Add([]byte("MSTO1\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(clock.Sim{K: sim.New(1)}, Options{})
		if err := s.Restore(data); err != nil {
			return
		}
		snap := s.Snapshot()
		s2 := New(clock.Sim{K: sim.New(1)}, Options{})
		if err := s2.Restore(snap); err != nil {
			t.Fatalf("re-restore of own snapshot failed: %v", err)
		}
		if !bytes.Equal(snap, s2.Snapshot()) {
			t.Fatal("snapshot round trip not a fixed point")
		}
	})
}
