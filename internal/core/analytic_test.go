package core

import (
	"math"
	"strings"
	"testing"
)

func mercuryTreesForAnalysis(t *testing.T) map[string]*Tree {
	t.Helper()
	trees, err := MercuryTrees(
		[]string{"mbus", "fedrcom", "ses", "str", "rtu"},
		[]string{"mbus", "fedr", "pbcom", "ses", "str", "rtu"})
	if err != nil {
		t.Fatal(err)
	}
	return trees
}

func TestAnalyticMatchesSimulationShape(t *testing.T) {
	trees := mercuryTreesForAnalysis(t)
	ap := MercuryAnalyticParams()

	// Single rtu fault under tree II: analytic ≈ 5.7 s (paper 5.59).
	mix := []FaultClass{{Manifest: "rtu", Weight: 1}}
	got, err := ExpectedMTTR(trees["II"], mix, ap, ModelPerfect, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5.7) > 1.0 {
		t.Fatalf("analytic tree II rtu = %.2f, want ~5.7", got)
	}

	// Same fault under tree I: whole-system restart ≈ 24.75.
	got, err = ExpectedMTTR(trees["I"], mix, ap, ModelPerfect, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-24.75) > 2.0 {
		t.Fatalf("analytic tree I rtu = %.2f, want ~24.75", got)
	}
}

func TestAnalyticFaultyOracleOrdering(t *testing.T) {
	trees := mercuryTreesForAnalysis(t)
	ap := MercuryAnalyticParams()
	mix := []FaultClass{{Manifest: "pbcom", Cure: []string{"fedr", "pbcom"}, Weight: 1}}

	iv, err := ExpectedMTTR(trees["IV"], mix, ap, ModelFaulty, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ExpectedMTTR(trees["V"], mix, ap, ModelFaulty, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	ivPerfect, err := ExpectedMTTR(trees["IV"], mix, ap, ModelPerfect, 0)
	if err != nil {
		t.Fatal(err)
	}
	vPerfect, err := ExpectedMTTR(trees["V"], mix, ap, ModelPerfect, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: IV faulty 29.19 > V faulty 21.63; with a perfect oracle V has
	// no advantage.
	if v >= iv {
		t.Fatalf("promotion did not help analytically: IV=%.2f V=%.2f", iv, v)
	}
	if math.Abs(iv-29.19) > 3 {
		t.Fatalf("analytic IV faulty = %.2f, paper 29.19", iv)
	}
	if vPerfect < ivPerfect-1e-9 {
		t.Fatalf("tree V should not beat IV under a perfect oracle: %.2f vs %.2f",
			vPerfect, ivPerfect)
	}
}

func TestAnalyticEscalatingCorrelatedPair(t *testing.T) {
	trees := mercuryTreesForAnalysis(t)
	ap := MercuryAnalyticParams()
	mix := []FaultClass{{Manifest: "ses", Cure: []string{"ses", "str"}, Weight: 1}}
	iii, err := ExpectedMTTR(trees["III"], mix, ap, ModelEscalating, 0)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := ExpectedMTTR(trees["IV"], mix, ap, ModelEscalating, 0)
	if err != nil {
		t.Fatal(err)
	}
	if iv >= iii {
		t.Fatalf("consolidation did not help analytically: III=%.2f IV=%.2f", iii, iv)
	}
}

func TestAnalyticValidation(t *testing.T) {
	trees := mercuryTreesForAnalysis(t)
	ap := MercuryAnalyticParams()
	if _, err := ExpectedMTTR(trees["II"], nil, ap, ModelPerfect, 0); err != ErrNoFaultClasses {
		t.Fatalf("err = %v", err)
	}
	zero := []FaultClass{{Manifest: "rtu", Weight: 0}}
	if _, err := ExpectedMTTR(trees["II"], zero, ap, ModelPerfect, 0); err != ErrNoFaultClasses {
		t.Fatalf("zero-weight err = %v", err)
	}
	bad := AnalyticParams{RestartSeconds: map[string]float64{}}
	mix := []FaultClass{{Manifest: "rtu", Weight: 1}}
	if _, err := ExpectedMTTR(trees["II"], mix, bad, ModelPerfect, 0); err == nil {
		t.Fatal("missing restart time accepted")
	}
	if _, err := ExpectedMTTR(trees["II"], mix, MercuryAnalyticParams(), OracleModel(99), 0); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestGroupCells(t *testing.T) {
	trees := mercuryTreesForAnalysis(t)
	t2 := trees["IIp"]
	grouped, err := GroupCells(t2, "g", "fedr", "pbcom")
	if err != nil {
		t.Fatalf("GroupCells: %v", err)
	}
	cover, err := grouped.LowestCovering([]string{"fedr", "pbcom"})
	if err != nil {
		t.Fatal(err)
	}
	if cover == grouped.Root() {
		t.Fatal("grouping did not create a joint node")
	}
	// Errors.
	if _, err := GroupCells(t2, "g", "fedr", "fedr"); err == nil {
		t.Fatal("self-group accepted")
	}
	if _, err := GroupCells(trees["IV"], "g", "ses", "str"); err == nil {
		t.Fatal("grouping a shared cell accepted")
	}
	if _, err := GroupCells(trees["V"], "g", "fedr", "mbus"); err == nil {
		t.Fatal("non-sibling group accepted")
	}
}

func TestIsolate(t *testing.T) {
	trees := mercuryTreesForAnalysis(t)
	t4 := trees["IV"]
	iso, err := Isolate(t4, "iso", "str")
	if err != nil {
		t.Fatalf("Isolate: %v", err)
	}
	sesCell, _ := iso.CellOf("ses")
	strCell, _ := iso.CellOf("str")
	if sesCell == strCell {
		t.Fatal("isolation did not split the cell")
	}
	if _, err := Isolate(iso, "x", "str"); err == nil {
		t.Fatal("isolating a singleton accepted")
	}
}

func TestOptimizerRediscoversConsolidation(t *testing.T) {
	comps := []string{"mbus", "fedr", "pbcom", "ses", "str", "rtu"}
	res, err := Optimize(comps, MercuryFaultMix(), MercuryAnalyticParams(), ModelEscalating, 0)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Expected >= res.Start {
		t.Fatalf("optimizer found no improvement: %.2f -> %.2f", res.Start, res.Expected)
	}
	// The paper's key insight must fall out: ses and str end in one cell.
	sesCell, err := res.Tree.CellOf("ses")
	if err != nil {
		t.Fatal(err)
	}
	strCell, err := res.Tree.CellOf("str")
	if err != nil {
		t.Fatal(err)
	}
	if sesCell != strCell {
		t.Fatalf("optimizer missed the ses/str consolidation:\n%s", res.Tree.Render())
	}
}

func TestOptimizerPromotesUnderFaultyOracle(t *testing.T) {
	comps := []string{"mbus", "fedr", "pbcom", "ses", "str", "rtu"}
	res, err := Optimize(comps, MercuryFaultMix(), MercuryAnalyticParams(), ModelFaulty, 0.30)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	// Under a faulty oracle the pbcom cell must cover fedr too (promotion
	// or joint grouping), eliminating guess-too-low double restarts.
	pbcomCell, err := res.Tree.CellOf("pbcom")
	if err != nil {
		t.Fatal(err)
	}
	sub := pbcomCell.Subtree()
	hasFedr := false
	for _, c := range sub {
		if c == "fedr" {
			hasFedr = true
		}
	}
	if !hasFedr {
		t.Fatalf("optimizer missed pbcom's promotion:\n%s", res.Tree.Render())
	}
	if len(res.Steps) == 0 {
		t.Fatal("no optimization steps recorded")
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(nil, MercuryFaultMix(), MercuryAnalyticParams(), ModelPerfect, 0); err != ErrNoComponents {
		t.Fatalf("err = %v", err)
	}
}

func TestRenderMixAndModelString(t *testing.T) {
	out := RenderMix(MercuryFaultMix())
	if !strings.Contains(out, "fedr") || !strings.Contains(out, "cure=") {
		t.Fatalf("mix render:\n%s", out)
	}
	if ModelPerfect.String() != "perfect" || ModelEscalating.String() != "escalating" {
		t.Fatal("model names wrong")
	}
	if !strings.Contains(OracleModel(42).String(), "42") {
		t.Fatal("unknown model string")
	}
}

// Property: the optimizer's tree is never worse than any of the paper's
// hand-derived trees under the same mix and oracle model.
func TestPropertyOptimizerDominatesPaperTrees(t *testing.T) {
	trees := mercuryTreesForAnalysis(t)
	comps := []string{"mbus", "fedr", "pbcom", "ses", "str", "rtu"}
	mix := MercuryFaultMix()
	ap := MercuryAnalyticParams()
	for _, tc := range []struct {
		model  OracleModel
		faulty float64
	}{
		{ModelPerfect, 0},
		{ModelEscalating, 0},
		{ModelFaulty, 0.30},
	} {
		res, err := Optimize(comps, mix, ap, tc.model, tc.faulty)
		if err != nil {
			t.Fatalf("%v: %v", tc.model, err)
		}
		for _, name := range []string{"IIp", "III", "IV", "V"} {
			e, err := ExpectedMTTR(trees[name], mix, ap, tc.model, tc.faulty)
			if err != nil {
				t.Fatal(err)
			}
			if res.Expected > e+1e-9 {
				t.Fatalf("model %v: optimizer (%.3f) worse than tree %s (%.3f)",
					tc.model, res.Expected, name, e)
			}
		}
	}
}
