package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// RECParams configures the recoverer.
type RECParams struct {
	// Startup is REC's own startup time when (re)started by FD.
	Startup time.Duration
	// DecisionDelay models the oracle-consultation and process-control
	// overhead before pushing a restart button.
	DecisionDelay time.Duration
	// PersistWindow is how soon after a restarted component's ready a new
	// failure report for it counts as "the failure persists" (escalate the
	// same episode) rather than a fresh failure.
	PersistWindow time.Duration
	// MaxRestarts and BudgetWindow bound restarts per component: more than
	// MaxRestarts within BudgetWindow means a hard failure that restarting
	// cannot cure, and the policy gives up (paper §2.2: "the policy also
	// keeps track of past restarts to prevent infinite restarts").
	MaxRestarts  int
	BudgetWindow time.Duration
	// RestartBackoff damps restart storms (layered *under* the budget
	// give-up above): when a component already has n restarts inside
	// BudgetWindow, the next restart action waits an extra
	// RestartBackoff × 2^(n-1), capped at RestartBackoffMax, before the
	// button is pushed. Zero disables damping — the paper's immediate
	// restarts.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// FDPingPeriod / FDFailAfter drive REC's monitoring of FD.
	FDPingPeriod time.Duration
	FDTimeout    time.Duration
	FDFailAfter  int

	// ReadyGrace ignores failure reports for a component that is serving
	// and became ready this recently: such reports raced with the
	// recovery's completion (FD had a probe in flight) and acting on them
	// would trigger a spurious second restart.
	ReadyGrace time.Duration

	// Rejuvenate enables proactive restarts (paper §7 health-summary
	// beacons + [9]'s software rejuvenation): when FD relays a component's
	// "suspect" health beacon, REC restarts that component's cell before
	// the aging turns into a failure — provided IdleCheck (if set) says
	// the downtime is cheap right now (§5.2: not during a pass).
	Rejuvenate bool
	// IdleCheck reports whether proactive downtime is acceptable now;
	// nil means always.
	IdleCheck func() bool
	// RejuvenateCooldown throttles proactive restarts per component.
	RejuvenateCooldown time.Duration

	// Procedures maps a component to its custom recovery procedure
	// (paper §7 recursive recovery: restart is just one example). The
	// procedure runs whenever a recovery action targets exactly that
	// component; escalated multi-component restarts stay plain restarts.
	Procedures map[string]Recovery

	// CkptRestore restores the externalized state of the restart set from
	// the latest checkpoint, returning the modeled restore latency the
	// action must pay before the reboot fires. Nil disables the
	// checkpoint-restore rung even if an ActionOracle asks for it.
	CkptRestore func(set []string) (time.Duration, error)
}

// DefaultRECParams returns the calibrated recoverer configuration.
func DefaultRECParams() RECParams {
	return RECParams{
		Startup:       500 * time.Millisecond,
		DecisionDelay: 50 * time.Millisecond,
		PersistWindow: 5 * time.Second,
		MaxRestarts:   6,
		BudgetWindow:  2 * time.Minute,
		FDPingPeriod:  time.Second,
		FDTimeout:     200 * time.Millisecond,
		FDFailAfter:   3,

		ReadyGrace:         1500 * time.Millisecond,
		RejuvenateCooldown: 30 * time.Second,
	}
}

// episode tracks one failure's recovery across escalation attempts.
type episode struct {
	attempt         int
	prev            *Node
	prevAct         Action // last action taken; Node nil before the first
	awaitingVerdict bool      // restart completed; watching for persistence
	lastReadyAt     time.Time // when the restart action finished
	pendingReady    map[string]bool
	observed        bool        // outcome already reported to a learning oracle
	startedAt       time.Time   // when the current attempt's report arrived
	charged         []time.Time // budget charges accrued by this episode, refunded on cure
}

// REC is the recoverer: it owns the restart tree and the oracle, receives
// failure reports from FD over the dedicated link, and pushes restart-cell
// buttons via the process manager. It never decides *which* node to
// restart — that is the oracle's job; REC executes, escalates persisting
// episodes, enforces the restart budget, and (special case) monitors and
// recovers FD.
type REC struct {
	params RECParams
	tree   *Tree
	oracle Oracle
	mgr    *proc.Manager

	// restartFD performs FD's recovery.
	restartFD func()

	ready     bool
	seq       uint64
	nonce     uint64
	episodes  map[string]*episode
	inFlight  map[string]bool // component has a decision or restart running
	history   map[string][]time.Time
	abandoned map[string]bool
	lastRejuv map[string]time.Time
	readyAt   map[string]time.Time
	fdNonce   uint64
	fdMissed  int
}

// recShared carries the long-lived wiring a fresh REC incarnation needs.
type recShared struct {
	params    RECParams
	tree      *Tree
	oracle    Oracle
	mgr       *proc.Manager
	restartFD func()
	current   *REC
}

// RECHandle lets the host swap the tree/oracle between experiments and
// reach the live handler.
type RECHandle struct {
	shared *recShared
}

// SetPolicy swaps the restart tree and oracle (takes effect for the
// current and future incarnations).
func (h *RECHandle) SetPolicy(t *Tree, o Oracle) {
	h.shared.tree = t
	h.shared.oracle = o
	if h.shared.current != nil {
		h.shared.current.tree = t
		h.shared.current.oracle = o
	}
}

// Tree returns the active restart tree.
func (h *RECHandle) Tree() *Tree { return h.shared.tree }

// Oracle returns the active policy.
func (h *RECHandle) Oracle() Oracle { return h.shared.oracle }

// Abandoned reports whether the policy has given up on a component.
func (h *RECHandle) Abandoned(component string) bool {
	if h.shared.current == nil {
		return false
	}
	return h.shared.current.abandoned[component]
}

// NewREC returns a factory for REC handlers plus a handle for policy
// swaps. Procedural state (episodes, budgets) is per-incarnation: a REC
// restart loses it, exactly as a process restart would.
func NewREC(p RECParams, tree *Tree, oracle Oracle, mgr *proc.Manager, restartFD func()) (func() proc.Handler, *RECHandle) {
	shared := &recShared{
		params:    p,
		tree:      tree,
		oracle:    oracle,
		mgr:       mgr,
		restartFD: restartFD,
	}
	// Restart-completion bookkeeping must survive handler churn, so the
	// subscriptions forward to whichever incarnation is current.
	mgr.OnReady(func(name string) {
		if shared.current != nil {
			shared.current.onReady(name)
		}
	})
	mgr.OnDown(func(name, reason string) {
		if shared.current != nil {
			shared.current.onDownEvent(name, reason)
		}
	})
	factory := func() proc.Handler {
		r := &REC{
			params:    shared.params,
			tree:      shared.tree,
			oracle:    shared.oracle,
			mgr:       shared.mgr,
			restartFD: shared.restartFD,
			episodes:  make(map[string]*episode),
			inFlight:  make(map[string]bool),
			history:   make(map[string][]time.Time),
			abandoned: make(map[string]bool),
			lastRejuv: make(map[string]time.Time),
			readyAt:   make(map[string]time.Time),
		}
		shared.current = r
		return r
	}
	return factory, &RECHandle{shared: shared}
}

// Start implements proc.Handler.
func (r *REC) Start(ctx proc.Context) {
	ctx.After(r.params.Startup, func() {
		r.ready = true
		ctx.Ready()
		ctx.After(r.params.FDPingPeriod/3, func() { r.fdLoop(ctx) })
	})
}

// Receive implements proc.Handler.
func (r *REC) Receive(ctx proc.Context, m *xmlcmd.Message) {
	switch m.Kind() {
	case xmlcmd.KindEvent:
		if m.From != xmlcmd.AddrFD || !r.ready {
			return
		}
		switch m.Event.Name {
		case "failure":
			r.onFailureReport(ctx, m.Event.Detail)
		case "suspect":
			r.onSuspect(ctx, m.Event.Detail)
		}
	case xmlcmd.KindPing:
		if r.ready {
			r.seq++
			pong := xmlcmd.NewPong(xmlcmd.AddrREC, m, ctx.Incarnation())
			ctx.Send(pong)
		}
	case xmlcmd.KindPong:
		if m.From == xmlcmd.AddrFD && m.Pong.Nonce == r.fdNonce {
			r.fdNonce = 0
			r.fdMissed = 0
		}
	}
}

// onFailureReport is the heart of the recovery loop.
func (r *REC) onFailureReport(ctx proc.Context, component string) {
	if r.abandoned[component] {
		return
	}
	if r.inFlight[component] {
		return
	}
	if r.mgr.IsSub(component) {
		if par, err := r.mgr.SubParent(component); err == nil && !r.mgr.Accepting(par) {
			// The hosting process itself is down: its own failure report
			// governs, and any process-level repair reboots the sub anyway.
			return
		}
	}
	if st, err := r.stateOf(component); err != nil || st == proc.Starting {
		// Unknown component, or its restart is still under way: the report
		// is stale.
		return
	}
	now := ctx.Now()
	if r.serving(component) && now.Sub(r.readyAt[component]) < r.params.ReadyGrace {
		// The component recovered between FD's last probe and this report
		// (detection lag right after a restart completes); acting on it
		// would trigger a spurious second restart. A serving component
		// reported *outside* the grace window is trusted — the process
		// manager's view can be stale (e.g. a hung child process whose
		// supervisor still believes it healthy).
		return
	}

	// A previous episode whose persistence window passed quietly is cured:
	// settle it (verdict + budget refund) before judging the budget, so a
	// recovery that already succeeded never counts against the component.
	ep := r.episodes[component]
	if ep != nil && ep.awaitingVerdict && now.Sub(ep.lastReadyAt) > r.params.PersistWindow {
		r.resolveCured(component, ep)
	}

	// Budget: a component that keeps needing restarts has a hard failure.
	hist := r.history[component]
	cutoff := now.Add(-r.params.BudgetWindow)
	kept := hist[:0]
	for _, at := range hist {
		if at.After(cutoff) {
			kept = append(kept, at)
		}
	}
	r.history[component] = kept
	if len(kept) >= r.params.MaxRestarts {
		r.abandoned[component] = true
		M.RECGiveUps.Inc()
		ctx.Log().Add(now, trace.GiveUp, component, "",
			fmt.Sprintf("restart budget exhausted (%d in %v)", len(kept), r.params.BudgetWindow))
		return
	}

	// Episode continuation: if we just finished restarting for this
	// component and the failure is back immediately, escalate.
	if ep != nil && ep.awaitingVerdict && now.Sub(ep.lastReadyAt) <= r.params.PersistWindow {
		ep.attempt++
		ep.awaitingVerdict = false
		M.RECEscalations.Inc()
		r.observe(component, ep.prev, false)
	} else {
		ep = &episode{attempt: 1}
		r.episodes[component] = ep
		if fo, ok := r.oracle.(FailureObserver); ok {
			fo.ObserveFailure(component, now)
		}
	}
	ep.startedAt = now

	act, err := r.chooseAction(component, ep)
	if err != nil {
		ctx.Log().Add(now, trace.Note, component, "", "oracle error: "+err.Error())
		return
	}
	node := act.Node
	ep.prev = node
	ep.prevAct = act
	if _, actionAware := r.oracle.(ActionOracle); actionAware {
		ctx.Log().Add(now, trace.OracleGuess, component, node.Label(),
			fmt.Sprintf("policy=%s attempt=%d action=%s", r.oracle.Name(), ep.attempt, act.Kind))
	} else {
		ctx.Log().Add(now, trace.OracleGuess, component, node.Label(),
			fmt.Sprintf("policy=%s attempt=%d", r.oracle.Name(), ep.attempt))
	}

	delay := r.params.DecisionDelay
	if bo := r.restartBackoff(len(kept)); bo > 0 {
		delay += bo
		M.RECBackoffWaits.Inc()
		ctx.Log().Add(now, trace.Note, component, node.Label(),
			fmt.Sprintf("restart backoff %v (%d recent restarts)", bo, len(kept)))
	}
	r.inFlight[component] = true
	r.history[component] = append(r.history[component], now)
	ep.charged = append(ep.charged, now)
	ctx.After(delay, func() {
		set := node.Subtree()
		ep.pendingReady = make(map[string]bool, len(set))
		for _, c := range set {
			ep.pendingReady[c] = true
		}
		M.RECRestarts.Inc()
		M.RECRestartsByNode.With(node.Label()).Inc()
		if act.Kind == ActCkptRestore && r.params.CkptRestore != nil {
			if lat, cerr := r.params.CkptRestore(set); cerr == nil {
				M.RECCkptRestores.Inc()
				ctx.Log().Add(ctx.Now(), trace.RestartRequested, component, node.Label(),
					fmt.Sprintf("ckpt-restore (%v) then reboot [%s]", lat, strings.Join(set, " ")))
				ctx.After(lat, func() {
					if err := r.mgr.Restart(set); err != nil {
						ctx.Log().Add(ctx.Now(), trace.Note, component, node.Label(),
							"recovery failed: "+err.Error())
						delete(r.inFlight, component)
					}
				})
				return
			} else {
				ctx.Log().Add(ctx.Now(), trace.Note, component, node.Label(),
					"ckpt-restore unavailable, falling back to restart: "+cerr.Error())
			}
		}
		proc, detail := r.procedureFor(set)
		ctx.Log().Add(ctx.Now(), trace.RestartRequested, component, node.Label(), detail)
		if err := proc.Execute(set); err != nil {
			ctx.Log().Add(ctx.Now(), trace.Note, component, node.Label(),
				"recovery failed: "+err.Error())
			delete(r.inFlight, component)
		}
	})
}

// chooseAction consults the oracle: an ActionOracle chooses a full action
// (node + kind); a classic oracle's node choice is wrapped as a plain
// restart, keeping the v1 semantics byte-identical.
func (r *REC) chooseAction(component string, ep *episode) (Action, error) {
	if ao, ok := r.oracle.(ActionOracle); ok {
		var prev *Action
		if ep.attempt > 1 && ep.prevAct.Node != nil {
			prev = &ep.prevAct
		}
		return ao.ChooseAction(r.tree, component, prev, ep.attempt)
	}
	node, err := r.oracle.Choose(r.tree, component, ep.prev, ep.attempt)
	if err != nil {
		return Action{}, err
	}
	return Action{Node: node, Kind: ActRestart}, nil
}

// restartBackoff computes the exponential damping delay before a restart
// action, given how many restarts the component already has inside the
// budget window. Deterministic (no RNG), so seeded trials stay exact.
func (r *REC) restartBackoff(recent int) time.Duration {
	base := r.params.RestartBackoff
	if base <= 0 || recent <= 0 {
		return 0
	}
	lim := r.params.RestartBackoffMax
	bo := base
	for i := 1; i < recent; i++ {
		bo *= 2
		if lim > 0 && bo >= lim {
			return lim
		}
	}
	if lim > 0 && bo > lim {
		return lim
	}
	return bo
}

// procedureFor picks the recovery procedure for a restart set: a custom
// per-component procedure when the set is that single component, else the
// plain restart.
func (r *REC) procedureFor(set []string) (Recovery, string) {
	if len(set) == 1 && r.params.Procedures != nil {
		if p, ok := r.params.Procedures[set[0]]; ok {
			return p, "recovering [" + set[0] + "] via procedure " + p.Name()
		}
	}
	if r.allSubs(set) {
		// The whole set is subcomponents: the action is microreboots only,
		// the cheapest rung — no process is torn down.
		M.RECMicroreboots.Inc()
		return RestartRecovery{Exec: r.mgr.Restart}, "microrebooting [" + strings.Join(set, " ") + "]"
	}
	return RestartRecovery{Exec: r.mgr.Restart}, "restarting [" + strings.Join(set, " ") + "]"
}

// allSubs reports whether every member of a restart set is a registered
// subcomponent.
func (r *REC) allSubs(set []string) bool {
	if len(set) == 0 {
		return false
	}
	for _, name := range set {
		if !r.mgr.IsSub(name) {
			return false
		}
	}
	return true
}

// onReady tracks restart-action completion for episode verdicts. It is
// called for every component ready event in the system.
func (r *REC) onReady(name string) {
	r.readyAt[name] = r.mgr.Clock().Now()
	for comp, ep := range r.episodes {
		if ep.pendingReady == nil || !ep.pendingReady[name] {
			continue
		}
		delete(ep.pendingReady, name)
		if len(ep.pendingReady) == 0 {
			ep.pendingReady = nil
			ep.awaitingVerdict = true
			ep.lastReadyAt = r.mgr.Clock().Now()
			if !ep.startedAt.IsZero() {
				M.RECRecovery.Observe(ep.lastReadyAt.Sub(ep.startedAt))
			}
			delete(r.inFlight, comp)
			r.scheduleVerdict(comp, ep)
		}
	}
}

// onDownEvent watches for a restart action failing outright: a component
// that dies while the action still awaits its ready never completes the
// action, so the episode is closed as a persisting failure — the next
// report escalates instead of deadlocking behind an in-flight action.
func (r *REC) onDownEvent(name, reason string) {
	if reason == "restart action" {
		return // our own teardown preceding a respawn
	}
	for comp, ep := range r.episodes {
		if ep.pendingReady == nil || !ep.pendingReady[name] {
			continue
		}
		ep.pendingReady = nil
		ep.awaitingVerdict = true
		ep.lastReadyAt = r.mgr.Clock().Now()
		delete(r.inFlight, comp)
	}
}

// scheduleVerdict settles the episode as cured once the persistence window
// passes without the failure re-manifesting: the learning oracle (if any)
// gets its verdict and the restart budget is refunded.
func (r *REC) scheduleVerdict(comp string, ep *episode) {
	r.mgr.Clock().AfterFunc(r.params.PersistWindow+100*time.Millisecond, func() {
		if r.episodes[comp] == ep && ep.awaitingVerdict {
			r.resolveCured(comp, ep)
		}
	})
}

// resolveCured closes an episode whose recovery held: beyond the oracle
// verdict, the restart charges the episode accrued are refunded from the
// component's budget. A recovery that succeeded — at any level of the
// ladder, a microreboot included — must leave the process-level restart
// budget untouched; without the refund, a string of independently cured
// cheap failures would eventually trip the give-up threshold that is meant
// for hard failures restarting cannot cure. Idempotent: settling the same
// episode twice (verdict timer + quiet-resolution path) is harmless.
func (r *REC) resolveCured(comp string, ep *episode) {
	if !ep.observed {
		r.observe(comp, ep.prev, true)
	}
	if len(ep.charged) == 0 {
		return
	}
	hist := r.history[comp]
	kept := hist[:0]
	ci := 0
	for _, at := range hist {
		if ci < len(ep.charged) && at.Equal(ep.charged[ci]) {
			ci++
			continue
		}
		kept = append(kept, at)
	}
	r.history[comp] = kept
	ep.charged = nil
}

// stateOf resolves a component or dotted subcomponent state.
func (r *REC) stateOf(name string) (proc.State, error) {
	if r.mgr.IsSub(name) {
		return r.mgr.SubState(name)
	}
	return r.mgr.State(name)
}

// serving resolves component/subcomponent liveness.
func (r *REC) serving(name string) bool {
	if r.mgr.IsSub(name) {
		return r.mgr.SubServing(name)
	}
	return r.mgr.Serving(name)
}

// observe forwards an outcome to a learning oracle, once per attempt. An
// ActionOutcomeObserver additionally gets the action taken and its measured
// report→ready duration — the estimator's MTTR feed.
func (r *REC) observe(comp string, node *Node, cured bool) {
	ep := r.episodes[comp]
	fed := false
	if ao, ok := r.oracle.(ActionOutcomeObserver); ok && ep != nil && ep.prevAct.Node != nil {
		var elapsed time.Duration
		if !ep.startedAt.IsZero() && ep.lastReadyAt.After(ep.startedAt) {
			elapsed = ep.lastReadyAt.Sub(ep.startedAt)
		}
		ao.ObserveAction(comp, ep.prevAct, elapsed, cured)
		fed = true
	}
	if obs, ok := r.oracle.(OutcomeObserver); ok {
		obs.Observe(comp, node, cured)
		fed = true
	}
	if fed && ep != nil {
		ep.observed = cured // a persisted failure re-opens observation
	}
}

// onSuspect handles a relayed health-beacon warning: the component is
// aging but has not failed yet. If rejuvenation is enabled and downtime is
// currently cheap, restart the component's cell proactively — bounded
// software rejuvenation, the MTTF-raising half of recursive restartability.
func (r *REC) onSuspect(ctx proc.Context, component string) {
	if !r.params.Rejuvenate || r.inFlight[component] || r.abandoned[component] {
		return
	}
	if r.params.IdleCheck != nil && !r.params.IdleCheck() {
		return
	}
	now := ctx.Now()
	if last, ok := r.lastRejuv[component]; ok && now.Sub(last) < r.params.RejuvenateCooldown {
		return
	}
	if !r.mgr.Serving(component) {
		return // a real failure is (about to be) handled by the main path
	}
	node, err := r.tree.CellOf(component)
	if err != nil {
		return
	}
	r.lastRejuv[component] = now
	r.inFlight[component] = true
	M.RECRejuvenations.Inc()
	ctx.Log().Add(now, trace.Note, component, node.Label(), "proactive rejuvenation restart")
	ctx.After(r.params.DecisionDelay, func() {
		set := node.Subtree()
		ep := &episode{attempt: 1, prev: node, pendingReady: make(map[string]bool, len(set)), startedAt: now}
		for _, c := range set {
			ep.pendingReady[c] = true
		}
		r.episodes[component] = ep
		M.RECRestarts.Inc()
		M.RECRestartsByNode.With(node.Label()).Inc()
		ctx.Log().Add(ctx.Now(), trace.RestartRequested, component, node.Label(),
			"rejuvenation restart of ["+strings.Join(set, " ")+"]")
		if err := r.mgr.Restart(set); err != nil {
			ctx.Log().Add(ctx.Now(), trace.Note, component, node.Label(),
				"rejuvenation restart failed: "+err.Error())
			delete(r.inFlight, component)
		}
	})
}

// fdLoop monitors FD over the dedicated link; REC performs FD's recovery
// (the paper's other special case).
func (r *REC) fdLoop(ctx proc.Context) {
	r.nonce++
	nonce := r.nonce
	r.fdNonce = nonce
	r.seq++
	ctx.Send(xmlcmd.NewPing(xmlcmd.AddrREC, xmlcmd.AddrFD, r.seq, nonce))
	ctx.After(r.params.FDTimeout, func() {
		if r.fdNonce == nonce {
			r.fdMissed++
			if r.fdMissed >= r.params.FDFailAfter {
				r.fdMissed = 0
				M.RECFDRecoveries.Inc()
				ctx.Log().Add(ctx.Now(), trace.FailureDetected, xmlcmd.AddrFD, "",
					"rec initiating fd recovery")
				if r.restartFD != nil {
					r.restartFD()
				}
			}
		}
		ctx.After(r.params.FDPingPeriod-r.params.FDTimeout, func() { r.fdLoop(ctx) })
	})
}
