package core

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

var (
	monolithic = []string{"mbus", "fedrcom", "ses", "str", "rtu"}
	split      = []string{"mbus", "fedr", "pbcom", "ses", "str", "rtu"}
)

func mustTrees(t *testing.T) map[string]*Tree {
	t.Helper()
	trees, err := MercuryTrees(monolithic, split)
	if err != nil {
		t.Fatalf("MercuryTrees: %v", err)
	}
	return trees
}

func subtreeOf(t *testing.T, tr *Tree, comp string) []string {
	t.Helper()
	cell, err := tr.CellOf(comp)
	if err != nil {
		t.Fatalf("CellOf(%s): %v", comp, err)
	}
	return cell.Subtree()
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTreeIWholeSystemOnly(t *testing.T) {
	tr := mustTrees(t)["I"]
	if got := tr.Components(); !eq(got, monolithic) {
		t.Fatalf("components = %v", got)
	}
	if len(tr.Groups()) != 1 {
		t.Fatalf("tree I should have exactly one restart group, got %d", len(tr.Groups()))
	}
	// Any component's cell is the root: total reboot.
	if got := subtreeOf(t, tr, "rtu"); !eq(got, monolithic) {
		t.Fatalf("rtu cell restarts %v", got)
	}
}

func TestTreeIIPerComponentCells(t *testing.T) {
	tr := mustTrees(t)["II"]
	// Root plus one cell per component: 6 groups.
	if len(tr.Groups()) != 6 {
		t.Fatalf("groups = %d, want 6", len(tr.Groups()))
	}
	for _, c := range monolithic {
		if got := subtreeOf(t, tr, c); !eq(got, []string{c}) {
			t.Fatalf("%s cell restarts %v, want itself only", c, got)
		}
	}
	// Root still restarts everything.
	if got := tr.Root().Subtree(); !eq(got, monolithic) {
		t.Fatalf("root restarts %v", got)
	}
}

func TestTreeIIPrimeFlatSplit(t *testing.T) {
	tr := mustTrees(t)["IIp"]
	if got := tr.Components(); !eq(got, split) {
		t.Fatalf("components = %v", got)
	}
	// fedr and pbcom are independent top-level cells: each restarts itself
	// only, and the lowest node covering both is the root.
	if got := subtreeOf(t, tr, "fedr"); !eq(got, []string{"fedr"}) {
		t.Fatalf("fedr cell restarts %v", got)
	}
	if got := subtreeOf(t, tr, "pbcom"); !eq(got, []string{"pbcom"}) {
		t.Fatalf("pbcom cell restarts %v", got)
	}
	cover, err := tr.LowestCovering([]string{"fedr", "pbcom"})
	if err != nil {
		t.Fatal(err)
	}
	if cover != tr.Root() {
		t.Fatalf("lowest covering of {fedr,pbcom} = %s, want root", cover.Label())
	}
}

func TestTreeIIIJointFrontEndCell(t *testing.T) {
	tr := mustTrees(t)["III"]
	if got := tr.Components(); !eq(got, split) {
		t.Fatalf("components = %v", got)
	}
	// Individual cells exist.
	if got := subtreeOf(t, tr, "fedr"); !eq(got, []string{"fedr"}) {
		t.Fatalf("fedr cell restarts %v", got)
	}
	if got := subtreeOf(t, tr, "pbcom"); !eq(got, []string{"pbcom"}) {
		t.Fatalf("pbcom cell restarts %v", got)
	}
	// The joint node covers exactly the pair, below the root.
	cover, err := tr.LowestCovering([]string{"fedr", "pbcom"})
	if err != nil {
		t.Fatal(err)
	}
	if cover == tr.Root() {
		t.Fatal("joint front-end node missing: covering node is the root")
	}
	if got := cover.Subtree(); !eq(got, []string{"fedr", "pbcom"}) {
		t.Fatalf("joint node restarts %v", got)
	}
	d, err := tr.Depth(cover)
	if err != nil || d != 1 {
		t.Fatalf("joint node depth = %d, %v", d, err)
	}
}

func TestTreeIVConsolidatedTrackers(t *testing.T) {
	tr := mustTrees(t)["IV"]
	// ses and str share one cell: restarting either restarts both.
	sesCell, err := tr.CellOf("ses")
	if err != nil {
		t.Fatal(err)
	}
	strCell, err := tr.CellOf("str")
	if err != nil {
		t.Fatal(err)
	}
	if sesCell != strCell {
		t.Fatal("ses and str not consolidated into one cell")
	}
	if got := sesCell.Subtree(); !eq(got, []string{"ses", "str"}) {
		t.Fatalf("consolidated cell restarts %v", got)
	}
	// The fedr/pbcom joint structure survives.
	if got := subtreeOf(t, tr, "fedr"); !eq(got, []string{"fedr"}) {
		t.Fatalf("fedr cell restarts %v", got)
	}
}

func TestTreeVPromotedPbcom(t *testing.T) {
	tr := mustTrees(t)["V"]
	// pbcom's cell restarts fedr too; fedr's cell restarts only fedr.
	if got := subtreeOf(t, tr, "pbcom"); !eq(got, []string{"fedr", "pbcom"}) {
		t.Fatalf("pbcom cell restarts %v, want {fedr pbcom}", got)
	}
	if got := subtreeOf(t, tr, "fedr"); !eq(got, []string{"fedr"}) {
		t.Fatalf("fedr cell restarts %v", got)
	}
	// fedr's cell is a child of pbcom's cell.
	fedrCell, _ := tr.CellOf("fedr")
	pbcomCell, _ := tr.CellOf("pbcom")
	if fedrCell.Parent() != pbcomCell {
		t.Fatal("fedr cell is not directly under pbcom's promoted cell")
	}
	// Trackers stay consolidated.
	sesCell, _ := tr.CellOf("ses")
	strCell, _ := tr.CellOf("str")
	if sesCell != strCell {
		t.Fatal("tree V lost the ses/str consolidation")
	}
}

func TestEveryTreeCoversAllComponents(t *testing.T) {
	trees := mustTrees(t)
	for name, tr := range trees {
		want := monolithic
		if name != "I" && name != "II" {
			want = split
		}
		if got := tr.Components(); !eq(got, want) {
			t.Fatalf("tree %s components = %v, want %v", name, got, want)
		}
		if got := tr.Root().Subtree(); !eq(got, want) {
			t.Fatalf("tree %s root restarts %v", name, got)
		}
	}
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree("x", &Node{}); err != ErrEmptyTree {
		t.Fatalf("empty tree err = %v", err)
	}
	dup := &Node{
		Components: []string{"a"},
		Children:   []*Node{{Components: []string{"a"}}},
	}
	if _, err := NewTree("x", dup); err == nil {
		t.Fatal("duplicate attachment accepted")
	}
}

func TestCellOfUnknown(t *testing.T) {
	tr := mustTrees(t)["II"]
	if _, err := tr.CellOf("ghost"); err == nil {
		t.Fatal("unknown component accepted")
	}
	if _, err := tr.LowestCovering([]string{"ghost"}); err == nil {
		t.Fatal("unknown covering accepted")
	}
	if _, err := tr.LowestCovering(nil); err == nil {
		t.Fatal("empty covering accepted")
	}
}

func TestDepth(t *testing.T) {
	tr := mustTrees(t)["III"]
	if d, err := tr.Depth(tr.Root()); err != nil || d != 0 {
		t.Fatalf("root depth = %d, %v", d, err)
	}
	fedrCell, _ := tr.CellOf("fedr")
	if d, err := tr.Depth(fedrCell); err != nil || d != 2 {
		t.Fatalf("fedr depth = %d, %v (want 2: root → joint → fedr)", d, err)
	}
	if _, err := tr.Depth(&Node{}); err != ErrUnknownNode {
		t.Fatalf("foreign node err = %v", err)
	}
}

func TestRenderShowsStructure(t *testing.T) {
	trees := mustTrees(t)
	for _, name := range []string{"I", "II", "IIp", "III", "IV", "V"} {
		r := trees[name].Render()
		if !strings.Contains(r, "tree "+name) {
			t.Fatalf("render of %s missing header:\n%s", name, r)
		}
		for _, c := range trees[name].Components() {
			if !strings.Contains(r, c) {
				t.Fatalf("render of %s missing %s:\n%s", name, c, r)
			}
		}
	}
	// Tree V should show nesting of fedr under pbcom.
	rv := trees["V"].Render()
	if !strings.Contains(rv, "pbcom") || !strings.Contains(rv, "fedr") {
		t.Fatalf("tree V render:\n%s", rv)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := mustTrees(t)["IV"]
	cl, err := tr.Clone("copy")
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	cl.Root().Components = append(cl.Root().Components, "extra")
	if eq(tr.Root().Components, cl.Root().Components) {
		t.Fatal("clone shares storage with original")
	}
}

func TestSplitValidation(t *testing.T) {
	tr := mustTrees(t)["II"]
	if _, err := SplitComponent(tr, "x", "fedrcom", []string{"one"}); err == nil {
		t.Fatal("single-part split accepted")
	}
	if _, err := SplitComponent(tr, "x", "ghost", []string{"a", "b"}); err == nil {
		t.Fatal("unknown component split accepted")
	}
	if _, err := GroupSplitComponent(tr, "x", "ghost", []string{"a", "b"}); err == nil {
		t.Fatal("unknown component group split accepted")
	}
}

func TestConsolidateValidation(t *testing.T) {
	tr := mustTrees(t)["III"]
	if _, err := Consolidate(tr, "x", []string{"ses"}); err == nil {
		t.Fatal("single-component consolidation accepted")
	}
	if _, err := Consolidate(tr, "x", []string{"ses", "ghost"}); err == nil {
		t.Fatal("unknown component consolidation accepted")
	}
}

func TestPromoteValidation(t *testing.T) {
	tr := mustTrees(t)["IV"]
	if _, err := Promote(tr, "x", "pbcom", "pbcom"); err == nil {
		t.Fatal("self-promotion accepted")
	}
	if _, err := Promote(tr, "x", "ghost", "fedr"); err == nil {
		t.Fatal("unknown promoted component accepted")
	}
	if _, err := Promote(tr, "x", "pbcom", "ghost"); err == nil {
		t.Fatal("unknown target component accepted")
	}
}

// Property: LowestCovering of any single component equals its cell, and
// climbing from any cell to the root only grows the restart set.
func TestPropertyCoveringMonotone(t *testing.T) {
	trees := mustTrees(t)
	names := []string{"I", "II", "IIp", "III", "IV", "V"}
	f := func(treeIdx, compIdx uint8) bool {
		tr := trees[names[int(treeIdx)%len(names)]]
		comps := tr.Components()
		comp := comps[int(compIdx)%len(comps)]
		cell, err := tr.CellOf(comp)
		if err != nil {
			return false
		}
		cover, err := tr.LowestCovering([]string{comp})
		if err != nil || cover != cell {
			return false
		}
		prev := len(cell.Subtree())
		for n := cell.Parent(); n != nil; n = n.Parent() {
			cur := len(n.Subtree())
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every component appears in exactly one cell in every Mercury
// tree (the NewTree invariant holds post-transformation).
func TestPropertyUniqueAttachment(t *testing.T) {
	trees := mustTrees(t)
	for name, tr := range trees {
		seen := make(map[string]int)
		var count func(n *Node)
		count = func(n *Node) {
			for _, c := range n.Components {
				seen[c]++
			}
			for _, ch := range n.Children {
				count(ch)
			}
		}
		count(tr.Root())
		for c, k := range seen {
			if k != 1 {
				t.Fatalf("tree %s attaches %s %d times", name, c, k)
			}
		}
	}
}

// Property: random sequences of transformations preserve the tree
// invariants — every component attached exactly once, the root's subtree
// covers all components, and every single-component covering equals its
// cell.
func TestPropertyTransformationsPreserveInvariants(t *testing.T) {
	comps := []string{"mbus", "fedr", "pbcom", "ses", "str", "rtu"}
	f := func(moves []uint8) bool {
		t1, err := TrivialTree("p-I", comps)
		if err != nil {
			return false
		}
		tr, err := DepthAugment(t1, "p")
		if err != nil {
			return false
		}
		if len(moves) > 12 {
			moves = moves[:12]
		}
		for _, mv := range moves {
			a := comps[int(mv)%len(comps)]
			b := comps[int(mv/7)%len(comps)]
			var next *Tree
			switch mv % 4 {
			case 0:
				next, err = Consolidate(tr, "p", []string{a, b})
			case 1:
				next, err = GroupCells(tr, "p", a, b)
			case 2:
				next, err = Promote(tr, "p", a, b)
			case 3:
				next, err = Isolate(tr, "p", a)
			}
			if err != nil {
				continue // invalid move for this shape; skip
			}
			tr = next
		}
		// Invariants.
		seen := map[string]int{}
		var count func(n *Node)
		count = func(n *Node) {
			for _, c := range n.Components {
				seen[c]++
			}
			for _, ch := range n.Children {
				count(ch)
			}
		}
		count(tr.Root())
		if len(seen) != len(comps) {
			return false
		}
		for _, k := range seen {
			if k != 1 {
				return false
			}
		}
		if got := tr.Root().Subtree(); len(got) != len(comps) {
			return false
		}
		for _, c := range comps {
			cell, err := tr.CellOf(c)
			if err != nil {
				return false
			}
			cover, err := tr.LowestCovering([]string{c})
			if err != nil || cover != cell {
				return false
			}
		}
		cover, err := tr.LowestCovering(comps)
		if err != nil || cover != tr.Root() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
