package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Estimator keeps the live per-site statistics oracle v2 decides on:
// failure inter-arrival times (MTTF), per-action success probabilities
// (Laplace-smoothed, the learning-oracle idiom) and per-action durations
// (MTTR), both EWMA-damped so the estimates track a changing system. It
// is fed by the recoverer via the FailureObserver / ActionOutcomeObserver
// interfaces and mirrored onto the obs plane as mercury_oracle_* series.
//
// Everything here is a deterministic function of the observation sequence
// and the simulated clock — no RNG, no wall time — which is the
// determinism argument for running cost-aware policies inside parallel
// campaigns (DESIGN.md §12).
type Estimator struct {
	alpha float64
	sites map[string]*siteEstimate
}

// siteEstimate aggregates one manifest site (a component or dotted sub).
type siteEstimate struct {
	failures int
	last     time.Time
	mttf     float64 // EWMA inter-arrival, seconds; 0 until two failures
	acts     map[string]*actEstimate
}

// actEstimate aggregates one (site, action) pair.
type actEstimate struct {
	tries  int
	cures  int
	dur    float64 // EWMA action duration, seconds
	hasDur bool
}

// NewEstimator builds an estimator with EWMA window N (alpha = 2/(N+1));
// window <= 0 means 8.
func NewEstimator(window int) *Estimator {
	if window <= 0 {
		window = 8
	}
	return &Estimator{
		alpha: 2.0 / (float64(window) + 1),
		sites: make(map[string]*siteEstimate),
	}
}

func (e *Estimator) site(name string) *siteEstimate {
	s := e.sites[name]
	if s == nil {
		s = &siteEstimate{acts: make(map[string]*actEstimate)}
		e.sites[name] = s
	}
	return s
}

func (s *siteEstimate) act(key string) *actEstimate {
	a := s.acts[key]
	if a == nil {
		a = &actEstimate{}
		s.acts[key] = a
	}
	return a
}

// ObserveFailure records a fresh failure episode at the site.
func (e *Estimator) ObserveFailure(site string, at time.Time) {
	s := e.site(site)
	if s.failures > 0 && at.After(s.last) {
		gap := at.Sub(s.last)
		sec := gap.Seconds()
		if s.mttf == 0 {
			s.mttf = sec
		} else {
			s.mttf += e.alpha * (sec - s.mttf)
		}
		M.OracleMTTFEst.Observe(gap)
	}
	s.failures++
	s.last = at
}

// ObserveAction records one recovery attempt's outcome and duration.
func (e *Estimator) ObserveAction(site string, act Action, elapsed time.Duration, cured bool) {
	a := e.site(site).act(act.key())
	a.tries++
	if cured {
		a.cures++
		M.OracleOutcomes.With("cured").Inc()
	} else {
		M.OracleOutcomes.With("persisted").Inc()
	}
	if elapsed > 0 {
		sec := elapsed.Seconds()
		if !a.hasDur {
			a.dur, a.hasDur = sec, true
		} else {
			a.dur += e.alpha * (sec - a.dur)
		}
		M.OracleActionSeconds.Observe(elapsed)
	}
}

// PSuccess returns the Laplace-smoothed cure probability of the action at
// the site: (cures+1)/(tries+2), 0.5 with no evidence.
func (e *Estimator) PSuccess(site, actKey string) float64 {
	s := e.sites[site]
	if s == nil {
		return 0.5
	}
	a := s.acts[actKey]
	if a == nil {
		return 0.5
	}
	return (float64(a.cures) + 1) / (float64(a.tries) + 2)
}

// Duration returns the EWMA duration of the action at the site, ok=false
// before any timed sample.
func (e *Estimator) Duration(site, actKey string) (time.Duration, bool) {
	s := e.sites[site]
	if s == nil {
		return 0, false
	}
	a := s.acts[actKey]
	if a == nil || !a.hasDur {
		return 0, false
	}
	return time.Duration(a.dur * float64(time.Second)), true
}

// MTTF returns the EWMA failure inter-arrival at the site, ok=false before
// two failures.
func (e *Estimator) MTTF(site string) (time.Duration, bool) {
	s := e.sites[site]
	if s == nil || s.mttf == 0 {
		return 0, false
	}
	return time.Duration(s.mttf * float64(time.Second)), true
}

// Failures returns the number of failures observed at the site.
func (e *Estimator) Failures(site string) int {
	if s := e.sites[site]; s != nil {
		return s.failures
	}
	return 0
}

// Render prints the estimates in deterministic sorted order (ops console,
// treeopt, tests).
func (e *Estimator) Render() string {
	var sb strings.Builder
	sites := make([]string, 0, len(e.sites))
	for name := range e.sites {
		sites = append(sites, name)
	}
	sort.Strings(sites)
	for _, name := range sites {
		s := e.sites[name]
		mttf := "—"
		if s.mttf > 0 {
			mttf = fmt.Sprintf("%.1fs", s.mttf)
		}
		fmt.Fprintf(&sb, "%s: failures=%d mttf=%s\n", name, s.failures, mttf)
		keys := make([]string, 0, len(s.acts))
		for k := range s.acts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a := s.acts[k]
			dur := "—"
			if a.hasDur {
				dur = fmt.Sprintf("%.2fs", a.dur)
			}
			fmt.Fprintf(&sb, "  %-40s p=%.2f (%d/%d) dur=%s\n",
				k, (float64(a.cures)+1)/(float64(a.tries)+2), a.cures, a.tries, dur)
		}
	}
	return sb.String()
}
