package core

import (
	"strings"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/trace"
)

// Tests for the degraded-network hardening knobs: FD's SuspectAfter
// K-consecutive-miss threshold and REC's exponential restart backoff.

// totalRestarts sums restart counts across the harness components.
func (h *harness) totalRestarts(t *testing.T) int {
	t.Helper()
	total := 0
	for _, c := range h.comps {
		n, err := h.mgr.Restarts(c)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	return total
}

// TestSuspectAfterRidesOutLossyBus: on a healthy station over a 10%-loss
// fabric, the paper's single-miss detector restart-storms while the
// K=3 detector stays quiet. Seeded, so the comparison is exact.
func TestSuspectAfterRidesOutLossyBus(t *testing.T) {
	storms := make(map[int]int)
	for _, k := range []int{1, 3} {
		fdp := DefaultFDParams()
		fdp.SuspectAfter = k
		h := newHarnessParams(t, 21, treeII(t), EscalatingOracle{}, fdp, DefaultRECParams())
		h.bus.SetChaos(&bus.ChaosProfile{Loss: 0.10})
		if err := h.k.RunFor(time.Minute); err != nil {
			t.Fatal(err)
		}
		storms[k] = h.totalRestarts(t)
	}
	if storms[1] == 0 {
		t.Fatal("single-miss detector saw no false positives at 10% loss; the scenario is vacuous")
	}
	if storms[3] >= storms[1] {
		t.Fatalf("SuspectAfter=3 (%d restarts) no better than SuspectAfter=1 (%d)", storms[3], storms[1])
	}
}

// TestSuspectAfterDetectionStillFast: the miss-retry probes keep K=3
// detection under 2× the 1 s ping period even though three misses must
// accrue.
func TestSuspectAfterDetectionStillFast(t *testing.T) {
	fdp := DefaultFDParams()
	fdp.SuspectAfter = 3
	h := newHarnessParams(t, 22, treeII(t), EscalatingOracle{}, fdp, DefaultRECParams())
	injectAt := h.k.Now()
	if err := h.board.Inject(fault.Fault{Manifest: "a"}); err != nil {
		t.Fatal(err)
	}
	h.runUntilRecovered(t, 30*time.Second)
	detections := h.log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.FailureDetected && e.Component == "a" && e.At.After(injectAt)
	})
	if len(detections) == 0 {
		t.Fatal("failure never detected")
	}
	latency := detections[0].At.Sub(injectAt)
	if latency >= 2*time.Second {
		t.Fatalf("K=3 detection latency %v, want < 2s (2× the 1s ping period)", latency)
	}
}

// TestSuspectAfterDefaultUnchanged: SuspectAfter left zero (or 1) must
// reproduce the paper's single-miss detector exactly — same detection
// schedule, same single restart.
func TestSuspectAfterDefaultUnchanged(t *testing.T) {
	h := newHarness(t, 23, treeII(t), EscalatingOracle{})
	if err := h.board.Inject(fault.Fault{Manifest: "a"}); err != nil {
		t.Fatal(err)
	}
	d := h.runUntilRecovered(t, 30*time.Second)
	if d > 5*time.Second {
		t.Fatalf("default-knob recovery took %v, want < 5s", d)
	}
	if n, _ := h.mgr.Restarts("a"); n != 1 {
		t.Fatalf("a restarted %d times", n)
	}
}

// TestRestartBackoffDampsStorm: with a hard (uncurable) fault, the budget
// is burned at full speed without backoff and strictly slower with it;
// the give-up backstop still fires either way.
func TestRestartBackoffDampsStorm(t *testing.T) {
	span := make(map[bool]time.Duration)
	for _, withBackoff := range []bool{false, true} {
		recp := DefaultRECParams()
		if withBackoff {
			recp.RestartBackoff = 500 * time.Millisecond
			recp.RestartBackoffMax = 4 * time.Second
		}
		h := newHarnessParams(t, 24, treeII(t), EscalatingOracle{}, DefaultFDParams(), recp)
		if err := h.board.Inject(fault.Fault{Manifest: "a", Hard: true}); err != nil {
			t.Fatal(err)
		}
		if err := h.k.RunFor(4 * time.Minute); err != nil {
			t.Fatal(err)
		}
		giveups := h.log.Filter(func(e trace.Event) bool { return e.Kind == trace.GiveUp })
		if len(giveups) == 0 {
			t.Fatalf("withBackoff=%v: policy never gave up", withBackoff)
		}
		requests := h.log.Filter(func(e trace.Event) bool { return e.Kind == trace.RestartRequested })
		if len(requests) < 2 {
			t.Fatalf("withBackoff=%v: only %d restart requests", withBackoff, len(requests))
		}
		span[withBackoff] = requests[len(requests)-1].At.Sub(requests[0].At)

		notes := h.log.Filter(func(e trace.Event) bool {
			return e.Kind == trace.Note && strings.Contains(e.Detail, "restart backoff")
		})
		if withBackoff && len(notes) == 0 {
			t.Fatal("no backoff delays recorded")
		}
		if !withBackoff && len(notes) != 0 {
			t.Fatalf("backoff disabled but %d delays recorded", len(notes))
		}
	}
	if span[true] <= span[false] {
		t.Fatalf("backoff did not slow the storm: %v (backoff) vs %v (plain)", span[true], span[false])
	}
}

// TestRestartBackoffCap pins the exponential schedule and its cap.
func TestRestartBackoffCap(t *testing.T) {
	r := &REC{params: RECParams{RestartBackoff: 500 * time.Millisecond, RestartBackoffMax: 3 * time.Second}}
	want := []time.Duration{0, 500 * time.Millisecond, time.Second, 2 * time.Second, 3 * time.Second, 3 * time.Second}
	for recent, w := range want {
		if got := r.restartBackoff(recent); got != w {
			t.Fatalf("restartBackoff(%d) = %v, want %v", recent, got, w)
		}
	}
	r = &REC{params: RECParams{}}
	if got := r.restartBackoff(5); got != 0 {
		t.Fatalf("disabled backoff returned %v", got)
	}
}
