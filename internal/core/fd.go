package core

import (
	"time"

	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// FDParams configures the failure detector.
type FDParams struct {
	// PingPeriod is the per-target liveness ping interval (paper: 1 s,
	// chosen to minimise detection time without overloading mbus).
	PingPeriod time.Duration
	// PingTimeout is how long FD waits for the application-level pong.
	PingTimeout time.Duration
	// ReReportInterval throttles repeat reports for a still-failed target.
	ReReportInterval time.Duration
	// Startup is FD's own startup time when (re)started by REC.
	Startup time.Duration
	// RECFailAfter is how many consecutive missed REC pongs trigger FD's
	// special-case recovery of REC.
	RECFailAfter int
	// SuspectAfter is how many consecutive missed pongs a target accrues
	// before FD suspects it. The paper's detector — and the default, 1 —
	// suspects on the first miss, which melts down into restart storms on
	// a merely lossy (rather than dead) bus; raising the threshold trades
	// a little detection latency for loss tolerance.
	SuspectAfter int
	// MissRetry is the delay before the follow-up probe after an
	// inconclusive miss (only used when SuspectAfter > 1). Keeping it
	// short keeps worst-case detection near SuspectAfter × PingTimeout
	// instead of SuspectAfter × PingPeriod.
	MissRetry time.Duration
}

// DefaultFDParams returns the paper's detector configuration.
func DefaultFDParams() FDParams {
	return FDParams{
		PingPeriod:       time.Second,
		PingTimeout:      200 * time.Millisecond,
		ReReportInterval: 2 * time.Second,
		Startup:          500 * time.Millisecond,
		RECFailAfter:     3,
		SuspectAfter:     1,
	}
}

// FD is the failure detector: it liveness-pings every monitored component
// over mbus (and the mbus broker itself), and reports failures to REC over
// their dedicated link. Because an mbus outage makes every target look
// dead at once, FD diagnoses the broker first: while the broker is
// suspected, only the broker is reported.
//
// FD also monitors REC over the dedicated link and, as the paper's special
// case requires, initiates REC's recovery itself when REC dies (the
// procedural knowledge for everything else lives in REC).
type FD struct {
	params  FDParams
	targets []string
	broker  string

	// restartREC performs REC's recovery (typically mgr.Restart). It runs
	// on the dispatch context.
	restartREC func()

	ready            bool
	seq              uint64
	nonce            uint64
	targetSt         map[string]*targetState
	lastBrokerPong   time.Time
	lastSuspectRelay map[string]time.Time
	lastSubReport    map[string]time.Time
	recMissed        int
	recNonce         uint64
	recWait          bool
}

// targetState is FD's per-component suspicion bookkeeping.
type targetState struct {
	outstanding  uint64 // nonce awaiting pong, 0 = none
	missed       int    // consecutive missed pongs (reset by any pong)
	suspected    bool
	lastReportAt time.Time
	everReported bool
	sentAt       time.Time // when the outstanding probe was sent
	firstMissAt  time.Time // send time of the miss streak's first probe
}

// NewFD returns a factory for FD handlers. targets are the monitored
// components (including the broker); broker names the message bus;
// restartREC performs the special-case REC recovery.
func NewFD(p FDParams, targets []string, broker string, restartREC func()) func() proc.Handler {
	factory, _ := NewFDWithHandle(p, targets, broker, restartREC)
	return factory
}

// fdShared tracks the live FD incarnation so a handle can reach it across
// restarts (the same current-pointer pattern RECHandle uses).
type fdShared struct {
	targets []string
	current *FD
}

// FDHandle exposes the live failure detector's view to the host (tests,
// the ops endpoints). FD state belongs to the dispatch context: callers
// off that context must wrap every accessor in rt.Dispatcher.Call.
type FDHandle struct {
	shared *fdShared
}

// Targets returns the monitored component names.
func (h *FDHandle) Targets() []string {
	return append([]string(nil), h.shared.targets...)
}

// Suspected reports the live incarnation's suspicion for a target; false
// while FD is restarting.
func (h *FDHandle) Suspected(target string) bool {
	if h.shared.current == nil {
		return false
	}
	return h.shared.current.Suspected(target)
}

// NewFDWithHandle is NewFD plus a handle onto the live incarnation.
func NewFDWithHandle(p FDParams, targets []string, broker string, restartREC func()) (func() proc.Handler, *FDHandle) {
	shared := &fdShared{targets: append([]string(nil), targets...)}
	factory := func() proc.Handler {
		fd := &FD{
			params:           p,
			targets:          append([]string(nil), shared.targets...),
			broker:           broker,
			restartREC:       restartREC,
			targetSt:         make(map[string]*targetState, len(shared.targets)),
			lastSuspectRelay: make(map[string]time.Time),
			lastSubReport:    make(map[string]time.Time),
		}
		for _, t := range shared.targets {
			fd.targetSt[t] = &targetState{}
		}
		shared.current = fd
		return fd
	}
	return factory, &FDHandle{shared: shared}
}

// Start implements proc.Handler.
func (fd *FD) Start(ctx proc.Context) {
	ctx.After(fd.params.Startup, func() {
		fd.ready = true
		ctx.Ready()
		// Stagger the ping loops so the bus sees a smooth ping stream.
		for i, target := range fd.targets {
			target := target
			offset := time.Duration(i) * fd.params.PingPeriod / time.Duration(len(fd.targets)+1)
			ctx.After(offset, func() { fd.pingLoop(ctx, target) })
		}
		ctx.After(fd.params.PingPeriod/2, func() { fd.recLoop(ctx) })
	})
}

// pingLoop sends one liveness ping and schedules its verification; the
// verification schedules the next ping, so exactly one probe per target is
// in flight.
func (fd *FD) pingLoop(ctx proc.Context, target string) {
	st := fd.targetSt[target]
	fd.nonce++
	nonce := fd.nonce
	st.outstanding = nonce
	st.sentAt = ctx.Now()
	fd.seq++
	M.FDPingsSent.Inc()
	ctx.Send(xmlcmd.NewPing(xmlcmd.AddrFD, target, fd.seq, nonce))
	ctx.After(fd.params.PingTimeout, func() {
		if st.outstanding == nonce {
			// No pong: the target is fail-silent, unreachable, or the bus
			// lost a frame.
			st.outstanding = 0
			st.missed++
			M.FDPongsMissed.Inc()
			if st.missed == 1 {
				st.firstMissAt = st.sentAt
			}
			// The K-miss threshold applies to every suspicion, not just the
			// first: a sticky suspected flag would turn one unlucky probe
			// into a hair-trigger detector for the rest of the target's life.
			if st.missed < fd.suspectAfter() {
				// Inconclusive under the K-miss threshold: re-probe after
				// a short retry instead of waiting out the full period, so
				// a real failure still costs ~K probes, not K periods.
				ctx.After(fd.params.MissRetry, func() { fd.pingLoop(ctx, target) })
				return
			}
			st.missed = 0
			fd.suspect(ctx, target)
		}
		next := fd.params.PingPeriod - fd.params.PingTimeout
		ctx.After(next, func() { fd.pingLoop(ctx, target) })
	})
}

// suspectAfter returns the effective K-consecutive-miss threshold.
func (fd *FD) suspectAfter() int {
	if fd.params.SuspectAfter > 1 {
		return fd.params.SuspectAfter
	}
	return 1
}

// suspect marks the target failed and reports it to REC, subject to the
// broker-first rule and the re-report throttle. A silent non-broker target
// is indistinguishable from a dead bus, so before blaming the component FD
// probes the broker out of band: if the broker answers, the component is
// really down; if not, the broker is the diagnosis (paper: "mbus itself is
// monitored as well").
func (fd *FD) suspect(ctx proc.Context, target string) {
	st := fd.targetSt[target]
	st.suspected = true
	M.FDSuspicions.Inc()
	if !st.firstMissAt.IsZero() {
		M.FDDetect.Observe(ctx.Now().Sub(st.firstMissAt))
		st.firstMissAt = time.Time{}
	}
	if target == fd.broker {
		fd.report(ctx, target)
		return
	}
	if b, ok := fd.targetSt[fd.broker]; ok && b.suspected {
		// The bus is already the diagnosis; re-reporting will catch real
		// casualties once it recovers.
		return
	}
	fd.verifyBroker(ctx, target, 1)
}

// verifyBroker probes the broker out of band before blaming target. Under
// SuspectAfter > 1 a lost verification probe is retried up to the same K
// threshold — otherwise a lossy (but live) bus would get the broker
// blamed on a single dropped frame, and a false mbus restart is the most
// expensive mistake the detector can make.
func (fd *FD) verifyBroker(ctx proc.Context, target string, attempt int) {
	st := fd.targetSt[target]
	probeAt := ctx.Now()
	fd.nonce++
	fd.seq++
	M.FDPingsSent.Inc()
	M.FDVerifications.Inc()
	ctx.Send(xmlcmd.NewPing(xmlcmd.AddrFD, fd.broker, fd.seq, fd.nonce))
	ctx.After(fd.params.PingTimeout, func() {
		if !st.suspected {
			return // target answered a later ping meanwhile
		}
		if fd.lastBrokerPong.After(probeAt) {
			fd.report(ctx, target)
			return
		}
		if attempt < fd.suspectAfter() {
			ctx.After(fd.params.MissRetry, func() {
				if st.suspected {
					fd.verifyBroker(ctx, target, attempt+1)
				}
			})
			return
		}
		if b, ok := fd.targetSt[fd.broker]; ok {
			b.suspected = true
			fd.report(ctx, fd.broker)
		}
	})
}

// report delivers a failure report over the dedicated link, throttled per
// target.
func (fd *FD) report(ctx proc.Context, target string) {
	st := fd.targetSt[target]
	now := ctx.Now()
	if st.everReported && now.Sub(st.lastReportAt) < fd.params.ReReportInterval {
		return
	}
	st.lastReportAt = now
	st.everReported = true
	M.FDReports.Inc()
	ctx.Log().Add(now, trace.FailureDetected, target, "", "reported to rec")
	fd.seq++
	ctx.Send(xmlcmd.NewEvent(xmlcmd.AddrFD, xmlcmd.AddrREC, fd.seq, "failure", target))
}

// recLoop monitors REC over the dedicated link.
func (fd *FD) recLoop(ctx proc.Context) {
	if fd.recWait {
		return
	}
	fd.nonce++
	nonce := fd.nonce
	fd.recNonce = nonce
	fd.seq++
	M.FDPingsSent.Inc()
	ctx.Send(xmlcmd.NewPing(xmlcmd.AddrFD, xmlcmd.AddrREC, fd.seq, nonce))
	ctx.After(fd.params.PingTimeout, func() {
		if fd.recNonce == nonce {
			fd.recMissed++
			M.FDPongsMissed.Inc()
			if fd.recMissed >= fd.params.RECFailAfter {
				fd.recMissed = 0
				M.FDRECRecoveries.Inc()
				ctx.Log().Add(ctx.Now(), trace.FailureDetected, xmlcmd.AddrREC, "",
					"fd initiating rec recovery")
				if fd.restartREC != nil {
					fd.restartREC()
				}
			}
		}
		ctx.After(fd.params.PingPeriod-fd.params.PingTimeout, func() { fd.recLoop(ctx) })
	})
}

// Receive implements proc.Handler.
func (fd *FD) Receive(ctx proc.Context, m *xmlcmd.Message) {
	switch m.Kind() {
	case xmlcmd.KindPong:
		if m.From == xmlcmd.AddrREC {
			if m.Pong.Nonce == fd.recNonce {
				fd.recNonce = 0
				fd.recMissed = 0
				M.FDPongs.Inc()
			}
			return
		}
		st, ok := fd.targetSt[m.From]
		if !ok {
			return
		}
		if m.From == fd.broker {
			// Any broker pong proves bus liveness, including out-of-band
			// verification probes.
			fd.lastBrokerPong = ctx.Now()
			st.suspected = false
			st.missed = 0
		}
		if m.Pong.Nonce == st.outstanding {
			st.outstanding = 0
			st.suspected = false
			st.missed = 0
			st.firstMissAt = time.Time{}
			M.FDPongs.Inc()
			M.FDRTT.Observe(ctx.Now().Sub(st.sentAt))
		}
	case xmlcmd.KindPing:
		// REC liveness-pings FD over the dedicated link.
		if fd.ready {
			fd.seq++
			pong := xmlcmd.NewPong(xmlcmd.AddrFD, m, ctx.Incarnation())
			pong.Seq = m.Seq
			ctx.Send(pong)
		}
	case xmlcmd.KindEvent:
		// Subcomponent failures are self-reported by the hosting process:
		// the container's intact shell catches the crashed subcomponent and
		// raises a "subfault" event naming it (e.g. ses.cache). The detector
		// relays it to REC like any other failure, with the usual re-report
		// throttle — in-process assertion beats ping timeouts by an order of
		// magnitude, which is most of the microreboot MTTR win.
		if m.Event.Name == "subfault" && fd.ready {
			sub := m.Event.Detail
			now := ctx.Now()
			if last, ok := fd.lastSubReport[sub]; ok && now.Sub(last) < fd.params.ReReportInterval {
				return
			}
			fd.lastSubReport[sub] = now
			M.FDReports.Inc()
			ctx.Log().Add(now, trace.FailureDetected, sub, "", "subfault reported to rec")
			fd.seq++
			ctx.Send(xmlcmd.NewEvent(xmlcmd.AddrFD, xmlcmd.AddrREC, fd.seq, "failure", sub))
		}
	case xmlcmd.KindHealth:
		// Health-summary beacons (paper §7): warnings of suspect behaviour
		// that has not yet caused a failure are relayed to REC, whose
		// rejuvenation policy may act on them.
		if m.Health.Suspect && fd.ready {
			now := ctx.Now()
			if last, ok := fd.lastSuspectRelay[m.From]; !ok || now.Sub(last) >= fd.params.ReReportInterval {
				fd.lastSuspectRelay[m.From] = now
				fd.seq++
				ctx.Send(xmlcmd.NewEvent(xmlcmd.AddrFD, xmlcmd.AddrREC, fd.seq, "suspect", m.From))
			}
		}
	}
}

// Suspected reports FD's current suspicion for a target (for tests and the
// ops console).
func (fd *FD) Suspected(target string) bool {
	st, ok := fd.targetSt[target]
	return ok && st.suspected
}
