package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// This file promotes the offline tree optimizer to an *online* one: during
// a soak, measured recovery episodes are mined into an empirical fault mix
// (arrival weights from observed failure counts, cure sets from the curing
// restart action, durations from the trace) and the hill-climber proposes
// transformations of the tree actually deployed — depth augmentation,
// consolidation, promotion and micro-augmentation — scored by the analytic
// model against that measured mix. RandomTree generates the randomized
// trees the rrbench oracle campaign uses to validate the analytic
// predictions against fleet-sim ground truth.

// Episode is one measured recovery: where the failure manifested, the
// component set of the restart action that finally cured it, and how long
// report→whole took. CuredBy is an *upper bound* on the minimal cure set —
// an escalating recovery only proves cure ⊆ CuredBy (and cure ⊄ each
// failed earlier rung); the miner uses the smallest curing set seen per
// manifest, which converges onto the minimal cure as episodes accumulate.
type Episode struct {
	Manifest string
	CuredBy  []string
	Recovery time.Duration
}

// OnlineOptimizer accumulates measured episodes and proposes tree
// transformations from them.
type OnlineOptimizer struct {
	eps []Episode
}

// NewOnlineOptimizer builds an empty episode miner.
func NewOnlineOptimizer() *OnlineOptimizer { return &OnlineOptimizer{} }

// Add records one measured episode.
func (o *OnlineOptimizer) Add(ep Episode) { o.eps = append(o.eps, ep) }

// Episodes reports how many episodes have been mined.
func (o *OnlineOptimizer) Episodes() int { return len(o.eps) }

// Mix converts the mined episodes into an empirical fault mix over the
// given observation horizon: one class per (manifest, smallest observed
// curing set), weighted by observed arrivals per hour. Dotted sub
// manifests keep their site (micro-augmented trees can score them);
// classic trees resolve them via the miner's host fallback in Propose.
func (o *OnlineOptimizer) Mix(horizon time.Duration) []FaultClass {
	if horizon <= 0 || len(o.eps) == 0 {
		return nil
	}
	type key struct{ manifest, cure string }
	smallest := make(map[string][]string) // manifest → smallest curing set
	counts := make(map[string]int)
	for _, ep := range o.eps {
		counts[ep.Manifest]++
		cure := append([]string(nil), ep.CuredBy...)
		sort.Strings(cure)
		if prev, ok := smallest[ep.Manifest]; !ok || len(cure) < len(prev) {
			smallest[ep.Manifest] = cure
		}
	}
	manifests := make([]string, 0, len(counts))
	for m := range counts {
		manifests = append(manifests, m)
	}
	sort.Strings(manifests)
	hours := horizon.Hours()
	mix := make([]FaultClass, 0, len(manifests))
	for _, m := range manifests {
		mix = append(mix, FaultClass{
			Manifest: m,
			Cure:     smallest[m],
			Weight:   float64(counts[m]) / hours,
		})
	}
	return mix
}

// hostOf strips a dotted sub name to its hosting process.
func hostOf(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// hostMix maps every dotted site in the mix onto its hosting process —
// the projection classic (non-micro-augmented) trees can score.
func hostMix(mix []FaultClass) []FaultClass {
	out := make([]FaultClass, 0, len(mix))
	for _, fc := range mix {
		hc := FaultClass{Manifest: hostOf(fc.Manifest), Weight: fc.Weight}
		seen := map[string]bool{}
		for _, c := range fc.Cure {
			h := hostOf(c)
			if !seen[h] {
				seen[h] = true
				hc.Cure = append(hc.Cure, h)
			}
		}
		sort.Strings(hc.Cure)
		out = append(out, hc)
	}
	return out
}

// Propose hill-climbs from the deployed tree under the mined mix and
// returns the best transformation sequence found. subs, when non-nil,
// adds micro-augmentation to the candidate moves. Dotted sites in the mix
// are projected onto their hosting processes for trees without the
// corresponding sub cells.
func (o *OnlineOptimizer) Propose(start *Tree, ap AnalyticParams, model OracleModel,
	faultyP float64, horizon time.Duration, subs map[string][]string) (*OptimizeResult, error) {
	mix := o.Mix(horizon)
	if len(mix) == 0 {
		return nil, ErrNoFaultClasses
	}
	comps := make([]string, 0)
	for _, c := range start.Components() {
		if !strings.Contains(c, ".") {
			comps = append(comps, c)
		}
	}
	sort.Strings(comps)
	return OptimizeFrom(start, comps, mix, ap, model, faultyP, subs)
}

// OptimizeFrom hill-climbs from an arbitrary starting tree over the
// transformation moves (plus micro-augmentation when subs is non-nil),
// minimising analytic expected MTTR under the mix. Candidate trees the
// parameters cannot score (e.g. a micro-augmented tree without sub restart
// times) are skipped, and mixes whose sites a candidate lacks fall back to
// their host-process projection.
func OptimizeFrom(start *Tree, comps []string, mix []FaultClass, ap AnalyticParams,
	model OracleModel, faultyP float64, subs map[string][]string) (*OptimizeResult, error) {
	if len(comps) == 0 {
		return nil, ErrNoComponents
	}
	score := func(t *Tree) (float64, error) {
		s, err := ExpectedMTTR(t, mix, ap, model, faultyP)
		if err == nil {
			return s, nil
		}
		return ExpectedMTTR(t, hostMix(mix), ap, model, faultyP)
	}
	current := start
	sc, err := score(current)
	if err != nil {
		return nil, err
	}
	res := &OptimizeResult{Start: sc}
	seen := map[string]bool{current.Render(): true}
	for iter := 0; iter < 64; iter++ {
		bestTree, bestScore, bestMove := (*Tree)(nil), sc, ""
		cands := candidateMoves(current, comps)
		if subs != nil {
			if tr, err := SubAugment(current, "opt", subs); err == nil {
				cands = append(cands, candidate{tree: tr, desc: "micro-augment"})
			}
		}
		for _, cand := range cands {
			if seen[cand.tree.Render()] {
				continue
			}
			s, err := score(cand.tree)
			if err != nil {
				continue
			}
			if s < bestScore-1e-9 {
				bestTree, bestScore, bestMove = cand.tree, s, cand.desc
			}
		}
		if bestTree == nil {
			break
		}
		current, sc = bestTree, bestScore
		seen[current.Render()] = true
		res.Steps = append(res.Steps, fmt.Sprintf("%s → %.2f s", bestMove, bestScore))
	}
	named, err := current.Clone("optimized")
	if err != nil {
		return nil, err
	}
	res.Tree = named
	res.Expected = sc
	return res, nil
}

// RandomTree generates a seeded random restart tree over the components: a
// recursive random partition where each group either becomes a shared
// (consolidated) cell or an inner node over sub-partitions. The rrbench
// oracle campaign boots thousands of these to verify that the analytic
// model's tree ranking matches simulated ground truth.
func RandomTree(rng *rand.Rand, name string, comps []string) (*Tree, error) {
	if len(comps) == 0 {
		return nil, ErrNoComponents
	}
	sorted := append([]string(nil), comps...)
	sort.Strings(sorted)
	root := &Node{Children: []*Node{randPartition(rng, sorted)}}
	// A root with a single child collapses to that child as the
	// whole-system node.
	if len(root.Children) == 1 {
		root = root.Children[0]
	}
	if len(root.Children) == 0 {
		// Everything consolidated into one cell: hang it under a root so
		// the tree still has a whole-system button distinct from the cell.
		root = &Node{Children: []*Node{root}}
	}
	return NewTree(name, root)
}

// randPartition builds a random subtree over the (non-empty) component set.
func randPartition(rng *rand.Rand, comps []string) *Node {
	if len(comps) == 1 {
		return &Node{Components: []string{comps[0]}}
	}
	// Consolidate the whole group into one shared cell 30% of the time
	// (small groups only — a giant shared cell is a degenerate tree I).
	if len(comps) <= 3 && rng.Float64() < 0.3 {
		return &Node{Components: append([]string(nil), comps...)}
	}
	shuffled := append([]string(nil), comps...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	k := 2
	if len(shuffled) > 2 {
		k += rng.Intn(len(shuffled) - 1) // 2..len
	}
	groups := make([][]string, k)
	for i, c := range shuffled {
		groups[i%k] = append(groups[i%k], c)
	}
	n := &Node{}
	for _, g := range groups {
		sort.Strings(g)
		n.Children = append(n.Children, randPartition(rng, g))
	}
	return n
}
