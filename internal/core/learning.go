package core

import (
	"fmt"
	"math/rand"
)

// OutcomeObserver is implemented by oracles that learn from restart
// outcomes. The recoverer reports every resolved attempt: cured means no
// failure re-manifested within the persistence window after the restart.
type OutcomeObserver interface {
	Observe(component string, node *Node, cured bool)
}

// LearningOracle implements the paper's §7 future work: "extend the oracle
// with the ability to learn from its mistakes and this way generate
// estimates for f_ci values". It keeps per-(component, node) cure
// statistics and picks the lowest node on the failed component's root path
// whose estimated cure probability clears a confidence bar; with no
// evidence it behaves like the escalating oracle (cheapest first), and a
// small exploration rate keeps re-testing lower nodes so the estimates can
// track a changing system.
type LearningOracle struct {
	// Confidence is the cure-probability bar a node must clear to be
	// chosen outright.
	Confidence float64
	// Explore is the probability of deliberately trying the component's
	// own cell regardless of the estimates.
	Explore float64

	rng   *rand.Rand
	tries map[string]map[string]int
	cures map[string]map[string]int
}

var (
	_ Oracle          = (*LearningOracle)(nil)
	_ OutcomeObserver = (*LearningOracle)(nil)
)

// NewLearningOracle builds a learning oracle with standard settings.
func NewLearningOracle(rng *rand.Rand) *LearningOracle {
	return &LearningOracle{
		Confidence: 0.6,
		Explore:    0.05,
		rng:        rng,
		tries:      make(map[string]map[string]int),
		cures:      make(map[string]map[string]int),
	}
}

// Name implements Oracle.
func (o *LearningOracle) Name() string { return "learning" }

// cureProb returns the Laplace-smoothed cure estimate for restarting node
// when the failure manifested at component. Unseen pairs start at 0.5.
func (o *LearningOracle) cureProb(component, label string) float64 {
	t := o.tries[component][label]
	c := o.cures[component][label]
	return (float64(c) + 1) / (float64(t) + 2)
}

// Choose implements Oracle.
func (o *LearningOracle) Choose(t *Tree, component string, prev *Node, attempt int) (*Node, error) {
	if t == nil {
		return nil, ErrNilTree
	}
	if attempt > 1 {
		return escalate(t, component, prev)
	}
	cell, err := t.CellOf(component)
	if err != nil {
		return nil, err
	}
	if o.rng != nil && o.rng.Float64() < o.Explore {
		return cell, nil
	}
	// Walk the root path bottom-up: the first node confident enough wins.
	var best *Node
	bestProb := -1.0
	for n := cell; n != nil; n = n.Parent() {
		p := o.cureProb(component, n.Label())
		if p >= o.Confidence {
			return n, nil
		}
		if p > bestProb+1e-12 {
			best, bestProb = n, p
		}
	}
	if best == nil {
		return cell, nil
	}
	return best, nil
}

// Observe implements OutcomeObserver.
func (o *LearningOracle) Observe(component string, node *Node, cured bool) {
	if node == nil {
		return
	}
	label := node.Label()
	if o.tries[component] == nil {
		o.tries[component] = make(map[string]int)
		o.cures[component] = make(map[string]int)
	}
	o.tries[component][label]++
	if cured {
		o.cures[component][label]++
	}
}

// Estimates renders the learned f estimates for a component (for the
// example and the ops console).
func (o *LearningOracle) Estimates(component string) string {
	out := ""
	for label, t := range o.tries[component] {
		out += fmt.Sprintf("%s: %.2f (%d tries)\n", label, o.cureProb(component, label), t)
	}
	return out
}
