package core

import (
	"github.com/recursive-restart/mercury/internal/obs"
)

// CoreMetrics aggregates the process-wide runtime counters for the
// detection/recovery stack: the failure detector's probe traffic and
// verdicts, and the recoverer's restart actions. Counters are incremented
// unconditionally on the dispatch context — a single atomic add — and only
// read when an obs registry renders them, so goldens and campaigns are
// unaffected.
type CoreMetrics struct {
	// Failure detector.
	FDPingsSent     obs.Counter // liveness pings sent (targets + REC + verification)
	FDPongs         obs.Counter // pongs matched to an outstanding probe
	FDPongsMissed   obs.Counter // probes that timed out unanswered
	FDSuspicions    obs.Counter // targets crossing the K-miss threshold
	FDVerifications obs.Counter // out-of-band broker probes before blaming a target
	FDReports       obs.Counter // failure reports delivered to REC
	FDRECRecoveries obs.Counter // special-case REC recoveries initiated by FD

	// FDRTT is the ping→pong round trip for matched probes; FDDetect is
	// first missed probe → suspicion, the detector's contribution to MTTR.
	FDRTT    *obs.Histogram
	FDDetect *obs.Histogram

	// Recoverer.
	RECRestarts       obs.Counter     // restart actions pushed (any node)
	RECRestartsByNode *obs.CounterVec // same, labeled by restart-tree node
	RECEscalations    obs.Counter     // persisting episodes escalated to a wider node
	RECMicroreboots   obs.Counter     // recovery actions resolved as pure microreboots
	RECBackoffWaits   obs.Counter     // restart actions damped by exponential backoff
	RECGiveUps        obs.Counter     // components abandoned on budget exhaustion
	RECRejuvenations  obs.Counter     // proactive rejuvenation restarts
	RECFDRecoveries   obs.Counter     // special-case FD recoveries initiated by REC

	// RECRecovery is failure report → restart set fully ready: the
	// recoverer's end-to-end repair time for one action.
	RECRecovery *obs.Histogram

	// RECCkptRestores counts recovery actions executed as
	// checkpoint-restores (restore externalized state, then reboot).
	RECCkptRestores obs.Counter

	// Oracle v2 estimator plane.
	OracleDecisions     *obs.CounterVec    // policy decisions by action kind
	OracleOutcomes      *obs.CounterVec    // attempt outcomes: cured / persisted
	OracleMTTFEst       *obs.Histogram     // observed failure inter-arrivals per site
	OracleActionSeconds *obs.Histogram     // observed recovery-action durations
	OraclePredictedHarm *obs.ValueHistogram // predicted harm of the chosen action
}

// M is the process-wide core metrics instance. FD/REC run on a single
// dispatch context per station, so plain Inc on shard 0 is uncontended.
var M = CoreMetrics{
	FDRTT:               obs.NewHistogram(obs.DefBuckets()...),
	FDDetect:            obs.NewHistogram(obs.DefBuckets()...),
	RECRestartsByNode:   obs.NewCounterVec(),
	RECRecovery:         obs.NewHistogram(obs.DefBuckets()...),
	OracleDecisions:     obs.NewCounterVec(),
	OracleOutcomes:      obs.NewCounterVec(),
	OracleMTTFEst:       obs.NewHistogram(obs.DefBuckets()...),
	OracleActionSeconds: obs.NewHistogram(obs.DefBuckets()...),
	OraclePredictedHarm: obs.NewValueHistogram(1, 10, 100, 1e3, 1e4, 1e5, 1e6),
}

// RegisterMetrics registers the detection/recovery families with an obs
// registry under the mercury_fd_* / mercury_rec_* namespaces.
func RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("mercury_fd_pings_sent_total",
		"Liveness pings sent by the failure detector.", &M.FDPingsSent)
	r.RegisterCounter("mercury_fd_pongs_total",
		"Pongs matched to an outstanding probe.", &M.FDPongs)
	r.RegisterCounter("mercury_fd_pongs_missed_total",
		"Probes that timed out without a pong.", &M.FDPongsMissed)
	r.RegisterCounter("mercury_fd_suspicions_total",
		"Targets crossing the K-consecutive-miss threshold.", &M.FDSuspicions)
	r.RegisterCounter("mercury_fd_broker_verifications_total",
		"Out-of-band broker probes before blaming a silent target.", &M.FDVerifications)
	r.RegisterCounter("mercury_fd_reports_total",
		"Failure reports delivered to the recoverer.", &M.FDReports)
	r.RegisterCounter("mercury_fd_rec_recoveries_total",
		"Special-case REC recoveries initiated by the failure detector.", &M.FDRECRecoveries)
	r.RegisterHistogram("mercury_fd_rtt_seconds",
		"Ping-to-pong round trip for matched probes.", M.FDRTT)
	r.RegisterHistogram("mercury_fd_detect_seconds",
		"First missed probe to suspicion.", M.FDDetect)

	r.RegisterCounter("mercury_rec_restarts_total",
		"Restart actions pushed by the recoverer.", &M.RECRestarts)
	r.RegisterCounterVec("mercury_rec_restarts_by_node_total",
		"Restart actions by restart-tree node.", "node", M.RECRestartsByNode)
	r.RegisterCounter("mercury_rec_escalations_total",
		"Persisting episodes escalated past the first attempt.", &M.RECEscalations)
	r.RegisterCounter("mercury_rec_microreboots_total",
		"Recovery actions resolved as pure subcomponent microreboots.", &M.RECMicroreboots)
	r.RegisterCounter("mercury_rec_backoff_waits_total",
		"Restart actions damped by exponential backoff.", &M.RECBackoffWaits)
	r.RegisterCounter("mercury_rec_give_ups_total",
		"Components abandoned on restart-budget exhaustion.", &M.RECGiveUps)
	r.RegisterCounter("mercury_rec_rejuvenations_total",
		"Proactive rejuvenation restarts.", &M.RECRejuvenations)
	r.RegisterCounter("mercury_rec_fd_recoveries_total",
		"Special-case FD recoveries initiated by the recoverer.", &M.RECFDRecoveries)
	r.RegisterHistogram("mercury_rec_recovery_seconds",
		"Failure report to restart set fully ready.", M.RECRecovery)
	r.RegisterCounter("mercury_rec_ckpt_restores_total",
		"Recovery actions executed as checkpoint-restores.", &M.RECCkptRestores)

	r.RegisterCounterVec("mercury_oracle_decisions_total",
		"Oracle v2 decisions by recovery-action kind.", "action", M.OracleDecisions)
	r.RegisterCounterVec("mercury_oracle_outcomes_total",
		"Recovery-attempt outcomes observed by the estimator.", "outcome", M.OracleOutcomes)
	r.RegisterHistogram("mercury_oracle_mttf_estimate_seconds",
		"Observed failure inter-arrival times per manifest site.", M.OracleMTTFEst)
	r.RegisterHistogram("mercury_oracle_action_seconds",
		"Observed recovery-action durations.", M.OracleActionSeconds)
	r.RegisterValueHistogram("mercury_oracle_predicted_harm",
		"Predicted user harm of the chosen action (harm-rate-weighted seconds).", M.OraclePredictedHarm)
}
