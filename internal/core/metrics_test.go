package core

import (
	"strings"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/obs"
)

// coreSnapshot reads the process-wide FD/REC counters (other tests in the
// package increment them too, so assertions work on deltas).
type coreSnapshot struct {
	pings, pongs, missed, suspicions, reports uint64
	restarts, byNode                          uint64
	rttCount, detectCount, recoveryCount      uint64
}

func takeCoreSnapshot() coreSnapshot {
	var byNode uint64
	for _, l := range M.RECRestartsByNode.Labels() {
		byNode += M.RECRestartsByNode.With(l).Value()
	}
	return coreSnapshot{
		pings:         M.FDPingsSent.Value(),
		pongs:         M.FDPongs.Value(),
		missed:        M.FDPongsMissed.Value(),
		suspicions:    M.FDSuspicions.Value(),
		reports:       M.FDReports.Value(),
		restarts:      M.RECRestarts.Value(),
		byNode:        byNode,
		rttCount:      M.FDRTT.Count(),
		detectCount:   M.FDDetect.Count(),
		recoveryCount: M.RECRecovery.Count(),
	}
}

// TestCoreMetricsAcrossRecovery pins that a full kill→detect→restart→ready
// cycle moves every stage's counter: probe traffic and RTT observations
// while healthy, then misses, a suspicion with a detect-latency sample, a
// report, a restart (mirrored in the by-node vector) and a recovery-latency
// sample once the restart set is ready again.
func TestCoreMetricsAcrossRecovery(t *testing.T) {
	before := takeCoreSnapshot()
	h := newHarness(t, 1, treeII(t), EscalatingOracle{})
	if err := h.board.Inject(fault.Fault{Manifest: "a"}); err != nil {
		t.Fatal(err)
	}
	h.runUntilRecovered(t, 30*time.Second)
	// Let FD re-probe the restarted component so the post-recovery pong
	// and RTT samples land too.
	if err := h.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	after := takeCoreSnapshot()

	if d := after.pings - before.pings; d == 0 {
		t.Error("FDPingsSent did not move")
	}
	if d := after.pongs - before.pongs; d == 0 {
		t.Error("FDPongs did not move")
	}
	if d := after.rttCount - before.rttCount; d == 0 {
		t.Error("FDRTT recorded no samples")
	}
	if d := after.missed - before.missed; d == 0 {
		t.Error("FDPongsMissed did not move across a kill")
	}
	if d := after.suspicions - before.suspicions; d == 0 {
		t.Error("FDSuspicions did not move across a kill")
	}
	if d := after.detectCount - before.detectCount; d == 0 {
		t.Error("FDDetect recorded no samples")
	}
	if d := after.reports - before.reports; d == 0 {
		t.Error("FDReports did not move across a kill")
	}
	if d := after.restarts - before.restarts; d == 0 {
		t.Error("RECRestarts did not move across a kill")
	}
	if d := after.recoveryCount - before.recoveryCount; d == 0 {
		t.Error("RECRecovery recorded no samples")
	}
	// Every restart action increments both the total and its node's cell.
	if rd, nd := after.restarts-before.restarts, after.byNode-before.byNode; rd != nd {
		t.Errorf("RECRestarts delta = %d but by-node sum delta = %d", rd, nd)
	}
}

// TestCoreRegisterMetricsRenders pins that every FD/REC family renders
// under an obs registry (name collisions or type conflicts would panic).
func TestCoreRegisterMetricsRenders(t *testing.T) {
	// Ensure the by-node vector has at least one cell to render.
	M.RECRestartsByNode.With("render-probe").Inc()
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	var sb strings.Builder
	if _, err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mercury_fd_pings_sent_total",
		"mercury_fd_suspicions_total",
		"mercury_fd_detect_seconds_bucket",
		"mercury_rec_restarts_total",
		`mercury_rec_restarts_by_node_total{node="render-probe"}`,
		"mercury_rec_recovery_seconds_count",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}
