package core

import (
	"strings"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// simpleComp is a synthetic station component: ready after a fixed
// startup, answers pings when ready.
type simpleComp struct {
	startup time.Duration
	ready   bool
}

func (c *simpleComp) Start(ctx proc.Context) {
	d := time.Duration(float64(c.startup) * ctx.Stretch())
	ctx.After(d, func() {
		c.ready = true
		ctx.Ready()
	})
}

func (c *simpleComp) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindPing && c.ready {
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}

// harness wires a minimal recursively-restartable system: broker + two
// synthetic components + fault board + FD + REC.
type harness struct {
	k      *sim.Kernel
	mgr    *proc.Manager
	bus    *bus.Sim
	board  *fault.Board
	log    *trace.Log
	handle *RECHandle
	comps  []string
}

func newHarness(t *testing.T, seed int64, tree *Tree, oracle Oracle) *harness {
	t.Helper()
	return newHarnessParams(t, seed, tree, oracle, DefaultFDParams(), DefaultRECParams())
}

// newHarnessParams is newHarness with explicit FD/REC parameters, for the
// hardened-knob tests (SuspectAfter, restart backoff).
func newHarnessParams(t *testing.T, seed int64, tree *Tree, oracle Oracle, fdp FDParams, recp RECParams) *harness {
	t.Helper()
	k := sim.New(seed)
	log := trace.NewLog()
	clk := clock.Sim{K: k}
	mgr := proc.NewManager(clk, k.Rand(), log)
	b := bus.NewSim(clk, mgr, "mbus")
	mgr.SetTransport(b)
	board := fault.NewBoard(clk, mgr, log)

	comps := []string{"mbus", "a", "b"}
	if err := mgr.Register("mbus", bus.BrokerHandler(time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		startup := 2 * time.Second
		if name == "b" {
			startup = 4 * time.Second
		}
		dur := startup
		if err := mgr.Register(name, func() proc.Handler { return &simpleComp{startup: dur} }); err != nil {
			t.Fatal(err)
		}
	}

	restartFD := func() {
		if st, _ := mgr.State(xmlcmd.AddrFD); st != proc.Starting {
			_ = mgr.Restart([]string{xmlcmd.AddrFD})
		}
	}
	restartREC := func() {
		if st, _ := mgr.State(xmlcmd.AddrREC); st != proc.Starting {
			_ = mgr.Restart([]string{xmlcmd.AddrREC})
		}
	}
	recFactory, handle := NewREC(recp, tree, oracle, mgr, restartFD)
	if err := mgr.Register(xmlcmd.AddrREC, recFactory); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(xmlcmd.AddrFD, NewFD(fdp, comps, "mbus", restartREC)); err != nil {
		t.Fatal(err)
	}
	b.AddDirectLink(xmlcmd.AddrFD, xmlcmd.AddrREC)

	h := &harness{k: k, mgr: mgr, bus: b, board: board, log: log, handle: handle, comps: comps}
	if err := mgr.StartBatch(comps); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !mgr.AllServing(comps...) {
		t.Fatal("harness components did not boot")
	}
	if err := mgr.StartBatch([]string{xmlcmd.AddrFD, xmlcmd.AddrREC}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	return h
}

// treeII builds a depth-augmented tree over the harness components.
func treeII(t *testing.T) *Tree {
	t.Helper()
	t1, err := TrivialTree("h-I", []string{"mbus", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := DepthAugment(t1, "h-II")
	if err != nil {
		t.Fatal(err)
	}
	return t2
}

// runUntilRecovered steps the simulation until all components serve and no
// fault is active, or the deadline passes.
func (h *harness) runUntilRecovered(t *testing.T, limit time.Duration) time.Duration {
	t.Helper()
	start := h.k.Now()
	deadline := start.Add(limit)
	for h.k.Now().Before(deadline) {
		if h.mgr.AllServing(h.comps...) && h.board.ActiveCount() == 0 {
			return h.k.Now().Sub(start)
		}
		if !h.k.Step() {
			t.Fatal("simulation went idle before recovery")
		}
	}
	t.Fatalf("no recovery within %v; states: %s", limit, h.describe())
	return 0
}

func (h *harness) describe() string {
	var sb strings.Builder
	for _, c := range h.comps {
		st, _ := h.mgr.State(c)
		sb.WriteString(c + "=" + st.String() + " ")
	}
	return sb.String()
}

func TestAutomatedRecoveryFromKill(t *testing.T) {
	h := newHarness(t, 1, treeII(t), EscalatingOracle{})
	if err := h.board.Inject(fault.Fault{Manifest: "a"}); err != nil {
		t.Fatal(err)
	}
	d := h.runUntilRecovered(t, 30*time.Second)
	// Detection (~0.5-1.2s) + restart of a (2s): well under b's share.
	if d > 5*time.Second {
		t.Fatalf("recovery took %v, want < 5s for component-only restart", d)
	}
	// Only a (and nothing else) should have been restarted.
	if n, _ := h.mgr.Restarts("a"); n != 1 {
		t.Fatalf("a restarted %d times", n)
	}
	if n, _ := h.mgr.Restarts("b"); n != 0 {
		t.Fatalf("b restarted %d times; partial restart leaked", n)
	}
}

func TestEscalationCuresJointFault(t *testing.T) {
	h := newHarness(t, 2, treeII(t), EscalatingOracle{})
	// The fault manifests at a but needs {a, b} restarted together.
	if err := h.board.Inject(fault.Fault{Manifest: "a", Cure: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	d := h.runUntilRecovered(t, 60*time.Second)
	// Two rounds: restart a (fails to cure), escalate to root.
	if d < 5*time.Second {
		t.Fatalf("recovery suspiciously fast (%v) for an escalation", d)
	}
	guesses := h.log.Filter(func(e trace.Event) bool { return e.Kind == trace.OracleGuess })
	if len(guesses) < 2 {
		t.Fatalf("expected at least 2 oracle guesses, got %d", len(guesses))
	}
	if !strings.Contains(guesses[len(guesses)-1].Detail, "attempt=2") {
		t.Fatalf("no escalation recorded: %v", guesses)
	}
}

func TestPerfectOracleSkipsEscalation(t *testing.T) {
	h := newHarness(t, 3, treeII(t), PerfectOracle{Advisor: nil})
	h.handle.SetPolicy(h.handle.Tree(), PerfectOracle{Advisor: h.board})
	if err := h.board.Inject(fault.Fault{Manifest: "a", Cure: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	h.runUntilRecovered(t, 60*time.Second)
	guesses := h.log.Filter(func(e trace.Event) bool { return e.Kind == trace.OracleGuess })
	if len(guesses) != 1 {
		t.Fatalf("perfect oracle used %d guesses, want 1: %v", len(guesses), guesses)
	}
	// It went straight to the root (the only node covering {a,b}).
	if !strings.Contains(guesses[0].Node, "a") || !strings.Contains(guesses[0].Node, "b") {
		t.Fatalf("perfect oracle chose %q", guesses[0].Node)
	}
}

func TestFaultyOracleAlwaysWrongEscalates(t *testing.T) {
	h := newHarness(t, 4, treeII(t), EscalatingOracle{})
	h.handle.SetPolicy(h.handle.Tree(), &FaultyOracle{P: 1.0, Advisor: h.board, Rng: h.k.Rand()})
	if err := h.board.Inject(fault.Fault{Manifest: "a", Cure: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	h.runUntilRecovered(t, 60*time.Second)
	guesses := h.log.Filter(func(e trace.Event) bool { return e.Kind == trace.OracleGuess })
	if len(guesses) < 2 {
		t.Fatalf("always-wrong oracle cured in %d guesses", len(guesses))
	}
}

func TestMbusFailureDiagnosedFirst(t *testing.T) {
	h := newHarness(t, 5, treeII(t), EscalatingOracle{})
	if err := h.board.Inject(fault.Fault{Manifest: "mbus"}); err != nil {
		t.Fatal(err)
	}
	h.runUntilRecovered(t, 30*time.Second)
	// While the broker was down every target looked dead; only mbus may
	// have been restarted.
	for _, c := range []string{"a", "b"} {
		if n, _ := h.mgr.Restarts(c); n != 0 {
			t.Fatalf("%s restarted %d times during broker outage", c, n)
		}
	}
	if n, _ := h.mgr.Restarts("mbus"); n != 1 {
		t.Fatalf("mbus restarted %d times", n)
	}
}

func TestGiveUpOnHardFault(t *testing.T) {
	h := newHarness(t, 6, treeII(t), EscalatingOracle{})
	if err := h.board.Inject(fault.Fault{Manifest: "a", Hard: true}); err != nil {
		t.Fatal(err)
	}
	_ = h.k.RunFor(3 * time.Minute)
	giveups := h.log.Filter(func(e trace.Event) bool { return e.Kind == trace.GiveUp })
	if len(giveups) == 0 {
		t.Fatal("policy never gave up on a hard failure")
	}
	if !h.handle.Abandoned("a") {
		t.Fatal("component not marked abandoned")
	}
	// After giving up, restarts must stop.
	before, _ := h.mgr.Restarts("a")
	_ = h.k.RunFor(time.Minute)
	after, _ := h.mgr.Restarts("a")
	if after != before {
		t.Fatalf("restarts continued after give-up: %d -> %d", before, after)
	}
}

func TestFDKilledRECRecoversIt(t *testing.T) {
	h := newHarness(t, 7, treeII(t), EscalatingOracle{})
	if err := h.mgr.Kill(xmlcmd.AddrFD, "test kill of fd"); err != nil {
		t.Fatal(err)
	}
	_ = h.k.RunFor(15 * time.Second)
	if !h.mgr.Serving(xmlcmd.AddrFD) {
		t.Fatal("REC did not recover FD")
	}
	// The system still heals afterwards.
	if err := h.board.Inject(fault.Fault{Manifest: "b"}); err != nil {
		t.Fatal(err)
	}
	h.runUntilRecovered(t, 30*time.Second)
}

func TestRECKilledFDRecoversIt(t *testing.T) {
	h := newHarness(t, 8, treeII(t), EscalatingOracle{})
	if err := h.mgr.Kill(xmlcmd.AddrREC, "test kill of rec"); err != nil {
		t.Fatal(err)
	}
	_ = h.k.RunFor(15 * time.Second)
	if !h.mgr.Serving(xmlcmd.AddrREC) {
		t.Fatal("FD did not recover REC")
	}
	if err := h.board.Inject(fault.Fault{Manifest: "a"}); err != nil {
		t.Fatal(err)
	}
	h.runUntilRecovered(t, 30*time.Second)
}

func TestNoSpuriousRestartsWhenHealthy(t *testing.T) {
	h := newHarness(t, 9, treeII(t), EscalatingOracle{})
	_ = h.k.RunFor(2 * time.Minute)
	for _, c := range h.comps {
		if n, _ := h.mgr.Restarts(c); n != 0 {
			t.Fatalf("healthy %s restarted %d times", c, n)
		}
	}
}

func TestConcurrentIndependentFailures(t *testing.T) {
	h := newHarness(t, 10, treeII(t), EscalatingOracle{})
	if err := h.board.Inject(fault.Fault{Manifest: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := h.board.Inject(fault.Fault{Manifest: "b"}); err != nil {
		t.Fatal(err)
	}
	d := h.runUntilRecovered(t, 30*time.Second)
	// Recoveries overlap: total well under the sum of sequential paths.
	if d > 10*time.Second {
		t.Fatalf("concurrent recovery took %v", d)
	}
	if n, _ := h.mgr.Restarts("a"); n != 1 {
		t.Fatalf("a restarted %d times", n)
	}
	if n, _ := h.mgr.Restarts("b"); n != 1 {
		t.Fatalf("b restarted %d times", n)
	}
}

func TestOracleChooseValidation(t *testing.T) {
	tr := treeII(t)
	for _, o := range []Oracle{EscalatingOracle{}, PerfectOracle{}, &FaultyOracle{P: 0.5, Rng: sim.New(1).Rand()}} {
		if _, err := o.Choose(nil, "a", nil, 1); err == nil {
			t.Fatalf("%s accepted nil tree", o.Name())
		}
		if _, err := o.Choose(tr, "ghost", nil, 1); err == nil {
			t.Fatalf("%s accepted unknown component", o.Name())
		}
		if o.Name() == "" {
			t.Fatal("empty oracle name")
		}
	}
}

func TestEscalationStopsAtRoot(t *testing.T) {
	tr := treeII(t)
	root := tr.Root()
	n, err := EscalatingOracle{}.Choose(tr, "a", root, 3)
	if err != nil || n != root {
		t.Fatalf("escalation from root = %v, %v; want root", n, err)
	}
}

// TestReadyGraceIgnoresStaleReports: a report for a serving component
// within the grace window after its ready is stale and must not trigger a
// restart; the same report outside the window is trusted (the process
// manager's view can lag reality, e.g. a hung child process).
func TestReadyGraceIgnoresStaleReports(t *testing.T) {
	h := newHarness(t, 11, treeII(t), EscalatingOracle{})
	// Recover once so REC has a readyAt record for a.
	if err := h.board.Inject(fault.Fault{Manifest: "a"}); err != nil {
		t.Fatal(err)
	}
	h.runUntilRecovered(t, 30*time.Second)
	restartsAfterFirst, _ := h.mgr.Restarts("a")

	// Forge a stale report immediately after recovery: a is serving and
	// just became ready, so REC must ignore it.
	h.bus.Send(xmlcmd.NewEvent(xmlcmd.AddrFD, xmlcmd.AddrREC, 999, "failure", "a"))
	_ = h.k.RunFor(5 * time.Second)
	if n, _ := h.mgr.Restarts("a"); n != restartsAfterFirst {
		t.Fatalf("stale report triggered a restart: %d -> %d", restartsAfterFirst, n)
	}

	// Long after ready, the same report is trusted even though the manager
	// still believes a is serving.
	_ = h.k.RunFor(time.Minute)
	h.bus.Send(xmlcmd.NewEvent(xmlcmd.AddrFD, xmlcmd.AddrREC, 1000, "failure", "a"))
	_ = h.k.RunFor(10 * time.Second)
	if n, _ := h.mgr.Restarts("a"); n != restartsAfterFirst+1 {
		t.Fatalf("trusted report did not restart: %d", n)
	}
}

// TestHangDetectedAndRecovered: a hang (silence) is fail-silent like a
// crash and must be cured by the same restart path.
func TestHangDetectedAndRecovered(t *testing.T) {
	h := newHarness(t, 12, treeII(t), EscalatingOracle{})
	if err := h.board.Inject(fault.Fault{Manifest: "b", Hang: true}); err != nil {
		t.Fatal(err)
	}
	d := h.runUntilRecovered(t, 30*time.Second)
	if d > 8*time.Second {
		t.Fatalf("hang recovery took %v", d)
	}
	if n, _ := h.mgr.Restarts("b"); n != 1 {
		t.Fatalf("b restarted %d times", n)
	}
}

// hwComp models a component whose startup needs working hardware: while
// the device is wedged, every plain restart fails at startup.
type hwComp struct {
	wedged *bool
	ready  bool
}

func (c *hwComp) Start(ctx proc.Context) {
	if *c.wedged {
		ctx.After(100*time.Millisecond, func() { ctx.Fail("hardware wedged") })
		return
	}
	ctx.After(2*time.Second, func() {
		c.ready = true
		ctx.Ready()
	})
}

func (c *hwComp) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindPing && c.ready {
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}

// newHWHarness builds a harness whose component "a" depends on wedgeable
// hardware, optionally registering the §7 custom recovery procedure that
// power-cycles the device before the restart.
func newHWHarness(t *testing.T, seed int64, withProcedure bool) (*harness, *bool) {
	t.Helper()
	wedged := new(bool)
	k := sim.New(seed)
	log := trace.NewLog()
	clk := clock.Sim{K: k}
	mgr := proc.NewManager(clk, k.Rand(), log)
	b := bus.NewSim(clk, mgr, "mbus")
	mgr.SetTransport(b)
	board := fault.NewBoard(clk, mgr, log)

	comps := []string{"mbus", "a"}
	if err := mgr.Register("mbus", bus.BrokerHandler(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("a", func() proc.Handler { return &hwComp{wedged: wedged} }); err != nil {
		t.Fatal(err)
	}

	params := DefaultRECParams()
	if withProcedure {
		params.Procedures = map[string]Recovery{
			"a": FuncRecovery{
				Label: "power-cycle+restart",
				Fn: func(set []string) error {
					*wedged = false // power-cycle the device
					return mgr.Restart(set)
				},
			},
		}
	}
	t1, err := TrivialTree("hw-I", comps)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := DepthAugment(t1, "hw-II")
	if err != nil {
		t.Fatal(err)
	}
	recFactory, handle := NewREC(params, tree, EscalatingOracle{}, mgr, nil)
	if err := mgr.Register(xmlcmd.AddrREC, recFactory); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register(xmlcmd.AddrFD, NewFD(DefaultFDParams(), comps, "mbus", nil)); err != nil {
		t.Fatal(err)
	}
	b.AddDirectLink(xmlcmd.AddrFD, xmlcmd.AddrREC)

	h := &harness{k: k, mgr: mgr, bus: b, board: board, log: log, handle: handle, comps: comps}
	if err := mgr.StartBatch(comps); err != nil {
		t.Fatal(err)
	}
	_ = k.RunFor(10 * time.Second)
	if !mgr.AllServing(comps...) {
		t.Fatal("hw harness did not boot")
	}
	if err := mgr.StartBatch([]string{xmlcmd.AddrFD, xmlcmd.AddrREC}); err != nil {
		t.Fatal(err)
	}
	_ = k.RunFor(2 * time.Second)
	return h, wedged
}

// TestHardwareWedgeDefeatsPlainRestart: without a custom procedure, the
// policy exhausts its budget and gives up — §7's point that restart cannot
// recover from a hard hardware failure.
func TestHardwareWedgeDefeatsPlainRestart(t *testing.T) {
	h, wedged := newHWHarness(t, 13, false)
	*wedged = true
	_ = h.mgr.Kill("a", "hardware wedge crash")
	_ = h.k.RunFor(3 * time.Minute)
	if h.mgr.Serving("a") {
		t.Fatal("wedged hardware recovered by plain restart")
	}
	giveups := h.log.Filter(func(e trace.Event) bool { return e.Kind == trace.GiveUp })
	if len(giveups) == 0 {
		t.Fatal("policy never gave up on the hard failure")
	}
}

// TestCustomRecoveryProcedureCuresHardFailure: the registered §7 procedure
// power-cycles the device before the restart, curing what a plain restart
// cannot.
func TestCustomRecoveryProcedureCuresHardFailure(t *testing.T) {
	h, wedged := newHWHarness(t, 14, true)
	*wedged = true
	_ = h.mgr.Kill("a", "hardware wedge crash")
	h.runUntilRecovered(t, time.Minute)
	reqs := h.log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.RestartRequested && strings.Contains(e.Detail, "power-cycle")
	})
	if len(reqs) == 0 {
		t.Fatal("custom procedure never invoked")
	}
	if *wedged {
		t.Fatal("device still wedged")
	}
}
