// Package core implements the paper's primary contribution: restart trees,
// restart groups and cells, the tree transformations of §4 (depth
// augmentation, subtree depth augmentation, group consolidation, node
// promotion), the failure detector (FD), the recoverer (REC) and the
// oracle — the restart policy that maps detected failures to tree nodes.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Tree errors.
var (
	ErrEmptyTree          = errors.New("core: tree has no components")
	ErrDuplicateComponent = errors.New("core: component attached to more than one cell")
	ErrUnknownComponent   = errors.New("core: component not in tree")
	ErrUnknownNode        = errors.New("core: node not in tree")
	ErrNotCovered         = errors.New("core: no node covers the component set")
)

// Node is a restart cell: conceptually a "button" whose push restarts
// every software component attached anywhere in its subtree. Components
// may be attached at any node, not only leaves — node promotion (tree V)
// attaches pbcom to an inner node above fedr's cell.
type Node struct {
	// Name labels the cell in traces and renders; derived from the
	// attached components when empty.
	Name string
	// Components are the software components attached at this cell.
	Components []string
	// Children are the sub-cells.
	Children []*Node

	parent *Node
}

// Label returns the node's display name.
func (n *Node) Label() string {
	if n.Name != "" {
		return n.Name
	}
	all := n.Subtree()
	return "[" + strings.Join(all, " ") + "]"
}

// Parent returns the node's parent, or nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// Subtree returns every component restarted by this cell's button, sorted.
func (n *Node) Subtree() []string {
	var out []string
	n.walk(func(m *Node) {
		out = append(out, m.Components...)
	})
	sort.Strings(out)
	return out
}

// walk visits the subtree pre-order.
func (n *Node) walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.walk(fn)
	}
}

// Tree is a validated restart tree.
type Tree struct {
	// Name labels the tree variant ("I" … "V", or custom).
	Name string

	root   *Node
	byComp map[string]*Node // lowest cell a component is attached to
	nodes  []*Node          // pre-order
}

// NewTree validates a root node and builds the component index. Every
// component must be attached exactly once.
func NewTree(name string, root *Node) (*Tree, error) {
	t := &Tree{Name: name, root: root, byComp: make(map[string]*Node)}
	var err error
	var link func(n, parent *Node)
	link = func(n, parent *Node) {
		n.parent = parent
		t.nodes = append(t.nodes, n)
		for _, comp := range n.Components {
			if _, dup := t.byComp[comp]; dup {
				err = fmt.Errorf("%w: %s", ErrDuplicateComponent, comp)
			}
			t.byComp[comp] = n
		}
		for _, c := range n.Children {
			link(c, n)
		}
	}
	link(root, nil)
	if err != nil {
		return nil, err
	}
	if len(t.byComp) == 0 {
		return nil, ErrEmptyTree
	}
	return t, nil
}

// Root returns the root cell (the whole-system restart button).
func (t *Tree) Root() *Node { return t.root }

// Components returns every component in the tree, sorted.
func (t *Tree) Components() []string { return t.root.Subtree() }

// CellOf returns the lowest cell a component is attached to.
func (t *Tree) CellOf(component string) (*Node, error) {
	n, ok := t.byComp[component]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownComponent, component)
	}
	return n, nil
}

// Contains reports whether the node belongs to this tree.
func (t *Tree) Contains(n *Node) bool {
	for _, m := range t.nodes {
		if m == n {
			return true
		}
	}
	return false
}

// LowestCovering returns the deepest node whose subtree covers every
// component in set. This is the node a perfect oracle recommends for a
// minimally set-curable failure.
func (t *Tree) LowestCovering(set []string) (*Node, error) {
	if len(set) == 0 {
		return nil, ErrNotCovered
	}
	// Start at the first component's cell and climb until all are covered.
	n, err := t.CellOf(set[0])
	if err != nil {
		return nil, err
	}
	for n != nil {
		if covers(n, set) {
			return n, nil
		}
		n = n.parent
	}
	return nil, fmt.Errorf("%w: %v", ErrNotCovered, set)
}

// covers reports whether the node's subtree includes every component.
func covers(n *Node, set []string) bool {
	have := make(map[string]bool)
	for _, c := range n.Subtree() {
		have[c] = true
	}
	for _, c := range set {
		if !have[c] {
			return false
		}
	}
	return true
}

// Depth returns the node's distance from the root (root = 0).
func (t *Tree) Depth(n *Node) (int, error) {
	if !t.Contains(n) {
		return 0, ErrUnknownNode
	}
	d := 0
	for m := n; m.parent != nil; m = m.parent {
		d++
	}
	return d, nil
}

// Groups returns all restart groups (one per node), pre-order. The paper
// counts trivial single-cell groups too, so a 5-cell tree has 5 groups.
func (t *Tree) Groups() []*Node {
	out := make([]*Node, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// Render draws the tree as ASCII art (the paper's figures 2–6).
func (t *Tree) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tree %s\n", t.Name)
	var rec func(n *Node, prefix string, last bool)
	rec = func(n *Node, prefix string, last bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if n.parent == nil {
			connector = ""
			childPrefix = ""
		}
		label := "R" + brackets(n)
		sb.WriteString(prefix + connector + label + "\n")
		for i, c := range n.Children {
			rec(c, childPrefix, i == len(n.Children)-1)
		}
	}
	rec(t.root, "", true)
	return sb.String()
}

// brackets renders the attached components plus a subtree hint.
func brackets(n *Node) string {
	if len(n.Components) == 0 {
		return "{" + strings.Join(n.Subtree(), " ") + "}"
	}
	return "(" + strings.Join(n.Components, " ") + ")"
}

// Clone deep-copies the tree structure (transformations are
// non-destructive: each returns a new tree).
func (t *Tree) Clone(name string) (*Tree, error) {
	return NewTree(name, cloneNode(t.root))
}

func cloneNode(n *Node) *Node {
	m := &Node{Name: n.Name, Components: append([]string(nil), n.Components...)}
	for _, c := range n.Children {
		m.Children = append(m.Children, cloneNode(c))
	}
	return m
}
