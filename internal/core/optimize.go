package core

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements the other §7 future-work item: "identify specific
// algorithms for transforming restart trees". The optimizer hill-climbs
// over the paper's transformation moves — group consolidation, joint-node
// grouping (the structural half of subtree depth augmentation), node
// promotion and their inverses — scoring candidates with the analytic
// expected-MTTR model. On Mercury's own failure mix it rediscovers the
// paper's hand-derived trees: consolidation of ses/str under any oracle,
// and pbcom's promotion exactly when the oracle is faulty.

// ErrNoComponents guards the optimizer input.
var ErrNoComponents = errors.New("core: optimizer needs components")

// GroupCells creates a joint inner node over two components' cells (they
// must be siblings): the structural move behind tree III's [fedr pbcom]
// node.
func GroupCells(t *Tree, name, a, b string) (*Tree, error) {
	if a == b {
		return nil, fmt.Errorf("core: cannot group %q with itself", a)
	}
	clone, err := t.Clone("tmp")
	if err != nil {
		return nil, err
	}
	ca, err := clone.CellOf(a)
	if err != nil {
		return nil, err
	}
	cb, err := clone.CellOf(b)
	if err != nil {
		return nil, err
	}
	if ca == cb {
		return nil, fmt.Errorf("core: %q and %q already share a cell", a, b)
	}
	if ca.Parent() == nil || ca.Parent() != cb.Parent() {
		return nil, fmt.Errorf("core: %q and %q are not sibling cells", a, b)
	}
	parent := ca.Parent()
	joint := &Node{Children: []*Node{ca, cb}}
	kept := parent.Children[:0]
	for _, c := range parent.Children {
		if c != ca && c != cb {
			kept = append(kept, c)
		}
	}
	parent.Children = append(kept, joint)
	return NewTree(name, clone.root)
}

// Isolate splits one component out of a shared cell into its own sibling
// cell — the inverse of consolidation.
func Isolate(t *Tree, name, component string) (*Tree, error) {
	clone, err := t.Clone("tmp")
	if err != nil {
		return nil, err
	}
	cell, err := clone.CellOf(component)
	if err != nil {
		return nil, err
	}
	if len(cell.Components) < 2 {
		return nil, fmt.Errorf("core: %q is already isolated", component)
	}
	removeComponent(cell, component)
	leaf := &Node{Components: []string{component}}
	if cell.Parent() == nil {
		cell.Children = append(cell.Children, leaf)
	} else {
		cell.Parent().Children = append(cell.Parent().Children, leaf)
	}
	return NewTree(name, clone.root)
}

// OptimizeResult reports the optimizer's outcome.
type OptimizeResult struct {
	Tree     *Tree
	Expected float64 // expected MTTR, seconds
	Start    float64 // expected MTTR of the starting tree
	Steps    []string
}

// Optimize hill-climbs from the depth-augmented tree over the
// transformation moves, minimising analytic expected MTTR under the given
// fault mix and oracle model.
func Optimize(components []string, mix []FaultClass, ap AnalyticParams,
	model OracleModel, faultyP float64) (*OptimizeResult, error) {
	if len(components) == 0 {
		return nil, ErrNoComponents
	}
	comps := append([]string(nil), components...)
	sort.Strings(comps)

	trivial, err := TrivialTree("opt-0", comps)
	if err != nil {
		return nil, err
	}
	current, err := DepthAugment(trivial, "opt")
	if err != nil {
		return nil, err
	}
	return OptimizeFrom(current, comps, mix, ap, model, faultyP, nil)
}

// candidate is one transformed tree plus a human-readable move.
type candidate struct {
	tree *Tree
	desc string
}

// candidateMoves enumerates one application of each transformation over
// all component pairs.
func candidateMoves(t *Tree, comps []string) []candidate {
	var out []candidate
	add := func(tr *Tree, err error, desc string) {
		if err == nil && tr != nil {
			out = append(out, candidate{tree: tr, desc: desc})
		}
	}
	for i, a := range comps {
		tr, err := Isolate(t, "opt", a)
		add(tr, err, "isolate "+a)
		for j, b := range comps {
			if i == j {
				continue
			}
			if i < j {
				tr, err := Consolidate(t, "opt", []string{a, b})
				add(tr, err, fmt.Sprintf("consolidate %s+%s", a, b))
				tr, err = GroupCells(t, "opt", a, b)
				add(tr, err, fmt.Sprintf("group [%s %s]", a, b))
			}
			tr, err := Promote(t, "opt", a, b)
			add(tr, err, fmt.Sprintf("promote %s over %s", a, b))
		}
	}
	return out
}
