package core

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements the analytic availability model sketched in the
// paper's §7 ("we expect to explore a more detailed analytic model"): the
// expected system MTTR of a restart tree under a failure mix expressed in
// the paper's f_ci formalism — the probability that a manifested failure
// is minimally curable by each restart set.

// FaultClass is one class of failures: it manifests at a component, is
// minimally cured by restarting Cure together, and occurs with relative
// Weight (e.g. 1/MTTF).
type FaultClass struct {
	Manifest string
	Cure     []string
	Weight   float64
}

// AnalyticParams captures the recovery-cost constants of the system.
type AnalyticParams struct {
	// RestartSeconds is each component's base restart time.
	RestartSeconds map[string]float64
	// DetectSeconds is the mean failure-detection latency.
	DetectSeconds float64
	// DecisionSeconds is REC's per-restart overhead.
	DecisionSeconds float64
	// ContentionPerPeer stretches concurrent startups: a k-component
	// restart runs at 1 + ContentionPerPeer*(k-1).
	ContentionPerPeer float64
}

// OracleModel selects the policy assumed by the analysis.
type OracleModel int

// Oracle models.
const (
	// ModelPerfect restarts the lowest covering node immediately.
	ModelPerfect OracleModel = iota + 1
	// ModelEscalating starts at the manifest component's cell and walks up
	// until the restart set covers the cure.
	ModelEscalating
	// ModelFaulty is perfect except it guesses the manifest's cell first
	// with probability FaultyP whenever that cell is not already correct.
	ModelFaulty
)

// String names the model.
func (m OracleModel) String() string {
	switch m {
	case ModelPerfect:
		return "perfect"
	case ModelEscalating:
		return "escalating"
	case ModelFaulty:
		return "faulty"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Analytic evaluation errors.
var (
	ErrNoFaultClasses = errors.New("core: analytic model needs at least one fault class")
	ErrNoRestartTime  = errors.New("core: missing restart time for component")
)

// restartCost returns the cost of pushing one node's button: detection +
// decision + the contention-stretched slowest member startup.
func (ap AnalyticParams) restartCost(n *Node) (float64, error) {
	set := n.Subtree()
	stretch := 1.0
	if len(set) > 1 {
		stretch = 1 + ap.ContentionPerPeer*float64(len(set)-1)
	}
	worst := 0.0
	for _, c := range set {
		r, ok := ap.RestartSeconds[c]
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrNoRestartTime, c)
		}
		if r*stretch > worst {
			worst = r * stretch
		}
	}
	return ap.DetectSeconds + ap.DecisionSeconds + worst, nil
}

// classCost returns the expected recovery cost of one fault class under
// the model: the cost of every attempted restart until one covers the cure
// set (failed attempts pay full price plus the re-detection of the
// persisting failure, which is folded into the next attempt's detect
// term).
func (ap AnalyticParams) classCost(t *Tree, fc FaultClass, model OracleModel, faultyP float64) (float64, error) {
	cure := fc.Cure
	if len(cure) == 0 {
		cure = []string{fc.Manifest}
	}
	correct, err := t.LowestCovering(cure)
	if err != nil {
		// Not curable below the root by construction of LowestCovering;
		// treat as a root restart.
		correct = t.Root()
	}
	cell, err := t.CellOf(fc.Manifest)
	if err != nil {
		return 0, err
	}

	// ladder walks from a starting node to the first covering ancestor,
	// accumulating the cost of every attempt.
	ladder := func(start *Node) (float64, error) {
		total := 0.0
		for n := start; n != nil; n = n.Parent() {
			c, err := ap.restartCost(n)
			if err != nil {
				return 0, err
			}
			total += c
			if covers(n, cure) {
				return total, nil
			}
		}
		return total, nil
	}

	switch model {
	case ModelPerfect:
		return ap.restartCost(correct)
	case ModelEscalating:
		return ladder(cell)
	case ModelFaulty:
		right, err := ap.restartCost(correct)
		if err != nil {
			return 0, err
		}
		if cell == correct {
			return right, nil
		}
		wrong, err := ladder(cell)
		if err != nil {
			return 0, err
		}
		return (1-faultyP)*right + faultyP*wrong, nil
	default:
		return 0, fmt.Errorf("core: unknown oracle model %v", model)
	}
}

// ExpectedMTTR returns the weight-averaged expected recovery time of the
// tree under the fault mix and oracle model.
func ExpectedMTTR(t *Tree, mix []FaultClass, ap AnalyticParams, model OracleModel, faultyP float64) (float64, error) {
	if len(mix) == 0 {
		return 0, ErrNoFaultClasses
	}
	var sumW, sumC float64
	for _, fc := range mix {
		if fc.Weight <= 0 {
			continue
		}
		c, err := ap.classCost(t, fc, model, faultyP)
		if err != nil {
			return 0, err
		}
		sumW += fc.Weight
		sumC += fc.Weight * c
	}
	if sumW == 0 {
		return 0, ErrNoFaultClasses
	}
	return sumC / sumW, nil
}

// MercuryFaultMix returns the split-layout failure mix implied by the
// paper: fedr fails constantly (the buggy translator), ses/str failures
// are jointly curable (f_{ses,str} ≈ 1), a share of pbcom failures needs
// the joint front-end restart, and mbus/rtu fail independently. Weights
// are failure rates per hour from Table 1 (extended across the split).
func MercuryFaultMix() []FaultClass {
	return []FaultClass{
		{Manifest: "fedr", Cure: []string{"fedr"}, Weight: 6.0},                       // MTTF 10 min
		{Manifest: "ses", Cure: []string{"ses", "str"}, Weight: 0.2},                  // MTTF 5 h, correlated
		{Manifest: "str", Cure: []string{"ses", "str"}, Weight: 0.2},                  // MTTF 5 h, correlated
		{Manifest: "rtu", Cure: []string{"rtu"}, Weight: 0.2},                         // MTTF 5 h
		{Manifest: "mbus", Cure: []string{"mbus"}, Weight: 1.0 / (30 * 24)},           // MTTF 1 month
		{Manifest: "pbcom", Cure: []string{"pbcom"}, Weight: 0.5 / (14 * 24)},         // stable
		{Manifest: "pbcom", Cure: []string{"fedr", "pbcom"}, Weight: 0.5 / (14 * 24)}, // §4.4 class
	}
}

// MercuryAnalyticParams returns the calibrated cost constants matching
// station.DefaultParams.
func MercuryAnalyticParams() AnalyticParams {
	return AnalyticParams{
		RestartSeconds: map[string]float64{
			"mbus": 5.0, "fedr": 5.05, "pbcom": 20.5,
			"ses": 4.7, "str": 4.95, // startup + resync settle
			"rtu": 4.9, "fedrcom": 20.2,
			// Microreboot rungs (micro-augmented trees only): reboot +
			// reattach settle. Absent from classic trees, so classic
			// scores are untouched.
			"ses.cache": 0.6, "ses.est": 0.6,
			"str.cache": 0.6, "str.track": 0.6,
			"fedr.session": 0.6,
		},
		DetectSeconds:     0.75,
		DecisionSeconds:   0.05,
		ContentionPerPeer: 0.048,
	}
}

// RenderMix pretty-prints a fault mix.
func RenderMix(mix []FaultClass) string {
	out := ""
	sorted := append([]FaultClass(nil), mix...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Weight > sorted[j].Weight })
	for _, fc := range sorted {
		out += fmt.Sprintf("  %-6s cure=%v weight=%.4f/h\n", fc.Manifest, fc.Cure, fc.Weight)
	}
	return out
}
