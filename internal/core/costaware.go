package core

import (
	"strings"
	"time"
)

// This file implements oracle v2: recovery actions beyond "push a restart
// button" and a cost-aware policy that chooses between them. The paper's
// oracle maps a failure to a restart-tree node with fixed escalation;
// "Asymptotic efficiency of restart and checkpointing" (PAPERS.md) frames
// the real decision — restart at some depth, microreboot, or restore from
// a checkpoint — as minimizing expected cost given observed MTTF/MTTR.
// Oracle v2 ranks the escalation ladder by expected user-facing outage,
// using live per-site estimates (see estimate.go) with calibrated priors.

// ActionKind discriminates recovery actions.
type ActionKind uint8

// Action kinds, cheapest-first on a typical ladder.
const (
	// ActRestart is the classic kill-and-respawn of the node's subtree.
	ActRestart ActionKind = iota + 1
	// ActMicroreboot drops only subcomponent logic and reattaches to the
	// crash-only store — the node's subtree is all subcomponents.
	ActMicroreboot
	// ActCkptRestore restores the components' externalized state from the
	// latest checkpoint and then reboots them: it can cure state
	// corruption that a plain microreboot would faithfully reattach to.
	ActCkptRestore
)

// String names the kind for traces and metric labels.
func (k ActionKind) String() string {
	switch k {
	case ActRestart:
		return "restart"
	case ActMicroreboot:
		return "microreboot"
	case ActCkptRestore:
		return "ckpt-restore"
	default:
		return "unknown"
	}
}

// Action is one recovery action: which node's subtree to recover and how.
type Action struct {
	Node *Node
	Kind ActionKind
}

// key identifies the action for estimator bookkeeping.
func (a Action) key() string { return a.Kind.String() + "|" + a.Node.Label() }

// ActionOracle is implemented by policies that choose full actions, not
// just nodes. The recoverer prefers it over Oracle when present; classic
// oracles keep the plain-restart semantics untouched.
type ActionOracle interface {
	Oracle
	// ChooseAction returns the recovery action for a failure reported at
	// component. attempt starts at 1; prev is the previous attempt's
	// action (nil when attempt == 1).
	ChooseAction(t *Tree, component string, prev *Action, attempt int) (Action, error)
}

// CheckpointModel exposes checkpoint availability and modeled restore
// latency to the policy. internal/ckpt's Manager implements it; keeping it
// an interface here avoids a core→ckpt dependency.
type CheckpointModel interface {
	// RestoreCost returns the modeled latency of restoring the
	// component's externalized state from the latest checkpoint, and
	// whether such a checkpoint exists.
	RestoreCost(component string) (time.Duration, bool)
}

// FailureObserver is implemented by oracles that track failure arrivals
// (MTTF estimation). The recoverer reports every fresh failure episode.
type FailureObserver interface {
	ObserveFailure(component string, at time.Time)
}

// ActionOutcomeObserver extends OutcomeObserver with the action taken and
// its measured duration — the recoverer's feed for MTTR estimation.
type ActionOutcomeObserver interface {
	ObserveAction(component string, act Action, elapsed time.Duration, cured bool)
}

// defaultIsSub treats dotted names as subcomponents, matching
// proc.SubName's naming scheme.
func defaultIsSub(name string) bool { return strings.Contains(name, ".") }

// actionLadder enumerates the escalation ladder for a failure at
// component, cheapest rung first: the microreboot of the sub's own cell,
// then (when a checkpoint exists) checkpoint-restore at the same cell,
// then plain restarts of each ancestor up to the root.
func actionLadder(t *Tree, component string, isSub func(string) bool, ckpt CheckpointModel) ([]Action, error) {
	if isSub == nil {
		isSub = defaultIsSub
	}
	cell, err := t.CellOf(component)
	if err != nil {
		return nil, err
	}
	var ladder []Action
	start := cell
	if isSub(component) {
		allSub := true
		for _, c := range cell.Subtree() {
			if !isSub(c) {
				allSub = false
				break
			}
		}
		if allSub {
			ladder = append(ladder, Action{Node: cell, Kind: ActMicroreboot})
			if ckpt != nil {
				if _, ok := ckpt.RestoreCost(component); ok {
					ladder = append(ladder, Action{Node: cell, Kind: ActCkptRestore})
				}
			}
			start = cell.Parent()
		}
	}
	for n := start; n != nil; n = n.Parent() {
		ladder = append(ladder, Action{Node: n, Kind: ActRestart})
	}
	return ladder, nil
}

// indexOfAction locates prev in the ladder (-1 when absent).
func indexOfAction(ladder []Action, prev Action) int {
	for i, a := range ladder {
		if a.Node == prev.Node && a.Kind == prev.Kind {
			return i
		}
	}
	return -1
}

// CostAwareConfig parameterises oracle v2.
type CostAwareConfig struct {
	// IsSub reports whether a name is a microrebootable subcomponent;
	// nil treats dotted names as subs.
	IsSub func(name string) bool
	// Ckpt models checkpoint availability and restore latency; nil
	// removes the checkpoint-restore rung.
	Ckpt CheckpointModel
	// HarmRate returns the user-harm rate (e.g. offered requests/s)
	// attributable to an outage of the component. The rate scales every
	// rung of one site's ladder equally — the argmin is rate-invariant —
	// but it is what the policy reports as predicted harm and what
	// cross-site comparisons use. Nil means 1 for every component.
	HarmRate func(component string) float64
	// ReDetect is the modeled turnaround of a failed attempt: the
	// persisting failure must be re-detected and re-reported before the
	// next rung fires.
	ReDetect time.Duration
	// DurationPrior seeds per-action duration estimates before any
	// outcome is observed; nil uses crude built-in defaults.
	DurationPrior func(site string, act Action) time.Duration
	// Window is the estimator's effective EWMA window N (alpha =
	// 2/(N+1)); <= 0 means 8.
	Window int
}

// CostAwareOracle is oracle v2: it ranks every viable starting rung of the
// escalation ladder by expected outage seconds —
//
//	H(last) = D(last)                         (the root cures, A_cure)
//	H(i)    = D(i) + (1-P(i)) · (redetect + H(i+1))
//
// with per-(site, action) success probabilities P and durations D from the
// live estimator, and starts at the argmin. On persistence it re-ranks the
// rungs above the failed one, so a failed microreboot can escalate
// straight past checkpoint-restore when the estimates say so. All inputs
// are deterministic functions of observed history on the simulated clock,
// so decisions are reproducible across parallel campaign trials.
type CostAwareOracle struct {
	cfg CostAwareConfig
	est *Estimator
}

var (
	_ ActionOracle          = (*CostAwareOracle)(nil)
	_ FailureObserver       = (*CostAwareOracle)(nil)
	_ ActionOutcomeObserver = (*CostAwareOracle)(nil)
)

// NewCostAwareOracle builds oracle v2.
func NewCostAwareOracle(cfg CostAwareConfig) *CostAwareOracle {
	if cfg.ReDetect <= 0 {
		cfg.ReDetect = 1500 * time.Millisecond
	}
	return &CostAwareOracle{cfg: cfg, est: NewEstimator(cfg.Window)}
}

// Name implements Oracle.
func (o *CostAwareOracle) Name() string { return "costaware" }

// Estimator exposes the live estimates (ops console, tests).
func (o *CostAwareOracle) Estimator() *Estimator { return o.est }

// Choose implements Oracle for hosts that only speak nodes.
func (o *CostAwareOracle) Choose(t *Tree, component string, prev *Node, attempt int) (*Node, error) {
	if attempt > 1 {
		return escalate(t, component, prev)
	}
	act, err := o.ChooseAction(t, component, nil, 1)
	if err != nil {
		return nil, err
	}
	return act.Node, nil
}

// harmRate resolves the component's harm rate, falling back from a dotted
// sub to its hosting process.
func (o *CostAwareOracle) harmRate(component string) float64 {
	if o.cfg.HarmRate == nil {
		return 1
	}
	return o.cfg.HarmRate(component)
}

// duration returns the expected seconds of one action at a site: the
// estimator's EWMA when it has a sample, else the prior.
func (o *CostAwareOracle) duration(site string, a Action) float64 {
	if d, ok := o.est.Duration(site, a.key()); ok {
		return d.Seconds()
	}
	if o.cfg.DurationPrior != nil {
		if d := o.cfg.DurationPrior(site, a); d > 0 {
			return d.Seconds()
		}
	}
	switch a.Kind {
	case ActMicroreboot:
		return 0.5
	case ActCkptRestore:
		base := 0.5
		if o.cfg.Ckpt != nil {
			if d, ok := o.cfg.Ckpt.RestoreCost(site); ok {
				base += d.Seconds()
			}
		}
		return base
	default:
		return 5 + 0.5*float64(len(a.Node.Subtree())-1)
	}
}

// ChooseAction implements ActionOracle.
func (o *CostAwareOracle) ChooseAction(t *Tree, component string, prev *Action, attempt int) (Action, error) {
	if t == nil {
		return Action{}, ErrNilTree
	}
	ladder, err := actionLadder(t, component, o.cfg.IsSub, o.cfg.Ckpt)
	if err != nil || len(ladder) == 0 {
		node, cerr := t.CellOf(component)
		if cerr != nil {
			return Action{}, cerr
		}
		return Action{Node: node, Kind: ActRestart}, nil
	}
	lo := 0
	if attempt > 1 && prev != nil {
		idx := indexOfAction(ladder, *prev)
		if idx < 0 {
			// The tree changed mid-episode; fall back to plain escalation.
			node, eerr := escalate(t, component, prev.Node)
			if eerr != nil {
				return Action{}, eerr
			}
			return Action{Node: node, Kind: ActRestart}, nil
		}
		lo = idx + 1
		if lo >= len(ladder) {
			lo = len(ladder) - 1 // at the root; the budget will stop us
		}
	}
	// Backward induction over the ladder suffix.
	H := make([]float64, len(ladder))
	redetect := o.cfg.ReDetect.Seconds()
	for i := len(ladder) - 1; i >= lo; i-- {
		d := o.duration(component, ladder[i])
		if i == len(ladder)-1 {
			H[i] = d
			continue
		}
		p := o.est.PSuccess(component, ladder[i].key())
		H[i] = d + (1-p)*(redetect+H[i+1])
	}
	best := lo
	for i := lo + 1; i < len(ladder); i++ {
		if H[i] < H[best]-1e-12 {
			best = i
		}
	}
	chosen := ladder[best]
	M.OracleDecisions.With(chosen.Kind.String()).Inc()
	M.OraclePredictedHarm.Observe(uint64(H[best] * o.harmRate(component)))
	return chosen, nil
}

// ObserveFailure implements FailureObserver.
func (o *CostAwareOracle) ObserveFailure(component string, at time.Time) {
	o.est.ObserveFailure(component, at)
}

// ObserveAction implements ActionOutcomeObserver.
func (o *CostAwareOracle) ObserveAction(component string, act Action, elapsed time.Duration, cured bool) {
	o.est.ObserveAction(component, act, elapsed, cured)
}

// FixedPolicyKind selects a fixed baseline action policy.
type FixedPolicyKind uint8

// Fixed policies — the baselines the policy campaign compares v2 against.
const (
	// FixedMicro always starts with the cheapest microreboot and
	// escalates with plain restarts (never checkpoint-restores).
	FixedMicro FixedPolicyKind = iota + 1
	// FixedProcess always starts at the hosting process's cell (skipping
	// the sub-level rungs entirely).
	FixedProcess
	// FixedCkpt always starts with checkpoint-restore when a checkpoint
	// exists (degrading to a microreboot before the first snapshot).
	FixedCkpt
)

// FixedActionOracle applies one fixed starting action with standard upward
// escalation. It is the policy-campaign baseline family: no estimates, no
// cost model, one rule.
type FixedActionOracle struct {
	Mode FixedPolicyKind
	// Ckpt is required by FixedCkpt; others ignore it.
	Ckpt CheckpointModel
	// IsSub as in CostAwareConfig; nil treats dotted names as subs.
	IsSub func(name string) bool
}

var _ ActionOracle = (*FixedActionOracle)(nil)

// Name implements Oracle.
func (o *FixedActionOracle) Name() string {
	switch o.Mode {
	case FixedMicro:
		return "fixed-micro"
	case FixedProcess:
		return "fixed-process"
	case FixedCkpt:
		return "fixed-ckpt"
	default:
		return "fixed"
	}
}

// ladder builds the mode's restricted escalation ladder.
func (o *FixedActionOracle) ladder(t *Tree, component string) ([]Action, error) {
	var ckpt CheckpointModel
	if o.Mode == FixedCkpt {
		ckpt = o.Ckpt
	}
	full, err := actionLadder(t, component, o.IsSub, ckpt)
	if err != nil {
		return nil, err
	}
	switch o.Mode {
	case FixedProcess:
		kept := full[:0]
		for _, a := range full {
			if a.Kind == ActRestart {
				kept = append(kept, a)
			}
		}
		return kept, nil
	case FixedCkpt:
		hasCkpt := false
		for _, a := range full {
			if a.Kind == ActCkptRestore {
				hasCkpt = true
				break
			}
		}
		if !hasCkpt {
			return full, nil
		}
		kept := full[:0]
		for _, a := range full {
			if a.Kind != ActMicroreboot {
				kept = append(kept, a)
			}
		}
		return kept, nil
	default:
		return full, nil
	}
}

// Choose implements Oracle.
func (o *FixedActionOracle) Choose(t *Tree, component string, prev *Node, attempt int) (*Node, error) {
	if t == nil {
		return nil, ErrNilTree
	}
	if attempt > 1 {
		return escalate(t, component, prev)
	}
	act, err := o.ChooseAction(t, component, nil, 1)
	if err != nil {
		return nil, err
	}
	return act.Node, nil
}

// ChooseAction implements ActionOracle.
func (o *FixedActionOracle) ChooseAction(t *Tree, component string, prev *Action, attempt int) (Action, error) {
	if t == nil {
		return Action{}, ErrNilTree
	}
	ladder, err := o.ladder(t, component)
	if err != nil || len(ladder) == 0 {
		node, cerr := t.CellOf(component)
		if cerr != nil {
			return Action{}, cerr
		}
		return Action{Node: node, Kind: ActRestart}, nil
	}
	i := 0
	if attempt > 1 && prev != nil {
		if idx := indexOfAction(ladder, *prev); idx >= 0 {
			i = idx + 1
		} else {
			node, eerr := escalate(t, component, prev.Node)
			if eerr != nil {
				return Action{}, eerr
			}
			return Action{Node: node, Kind: ActRestart}, nil
		}
		if i >= len(ladder) {
			i = len(ladder) - 1
		}
	}
	chosen := ladder[i]
	M.OracleDecisions.With(chosen.Kind.String()).Inc()
	return chosen, nil
}
