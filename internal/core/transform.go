package core

import (
	"fmt"
	"sort"
)

// This file implements the paper's §4 restart-tree transformations. Each
// transformation is non-destructive: it clones the input tree and returns
// the evolved variant, so an experiment can hold trees I–V simultaneously.

// TrivialTree builds tree I: a single restart cell holding every
// component, so the only possible policy is a whole-system reboot.
func TrivialTree(name string, components []string) (*Tree, error) {
	comps := append([]string(nil), components...)
	sort.Strings(comps)
	return NewTree(name, &Node{Components: comps})
}

// DepthAugment (tree I → II) gives every component its own child cell
// under the root, enabling bounded per-component restarts. Useful when
// f_A + f_B > 0, i.e. some failures are curable below the root.
func DepthAugment(t *Tree, name string) (*Tree, error) {
	root := &Node{}
	for _, comp := range t.Components() {
		root.Children = append(root.Children, &Node{Components: []string{comp}})
	}
	return NewTree(name, root)
}

// SplitComponent (tree II → II′) replaces one component with its
// sub-components, each in its own cell where the original's cell was. The
// caller is responsible for the matching station-layout change (fedrcom →
// fedr + pbcom).
func SplitComponent(t *Tree, name, component string, into []string) (*Tree, error) {
	if len(into) < 2 {
		return nil, fmt.Errorf("core: split of %q needs at least two parts", component)
	}
	if _, err := t.CellOf(component); err != nil {
		return nil, err
	}
	clone := cloneNode(t.root)
	if !replaceComponent(clone, component, into, false) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownComponent, component)
	}
	return NewTree(name, clone)
}

// GroupSplitComponent (tree II′ → III) replaces one component with a new
// subtree: an inner cell whose children are the sub-components' cells.
// The inner cell enables the joint restart that cures correlated failures
// between the new parts without a whole-system restart (useful when
// f_{A,B} > 0).
func GroupSplitComponent(t *Tree, name, component string, into []string) (*Tree, error) {
	if len(into) < 2 {
		return nil, fmt.Errorf("core: split of %q needs at least two parts", component)
	}
	if _, err := t.CellOf(component); err != nil {
		return nil, err
	}
	clone := cloneNode(t.root)
	if !replaceComponent(clone, component, into, true) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownComponent, component)
	}
	return NewTree(name, clone)
}

// replaceComponent rewrites the first cell holding component. With group
// set, the replacement is an inner node with one child cell per part;
// otherwise the parts become sibling cells in place of the original cell
// (or in-place attachments when the cell also holds other components).
// parent/slot identify where n hangs so the flat split can splice
// siblings; parent is nil at the root.
func replaceComponent(n *Node, component string, into []string, group bool) bool {
	return replaceComponentAt(nil, -1, n, component, into, group)
}

func replaceComponentAt(parent *Node, slot int, n *Node, component string, into []string, group bool) bool {
	for i, comp := range n.Components {
		if comp != component {
			continue
		}
		n.Components = append(n.Components[:i], n.Components[i+1:]...)
		parts := make([]*Node, 0, len(into))
		for _, p := range into {
			parts = append(parts, &Node{Components: []string{p}})
		}
		switch {
		case group && len(n.Components) == 0 && len(n.Children) == 0 && parent != nil:
			// The cell held only this component: the joint cell takes its
			// place directly.
			parent.Children[slot] = &Node{Children: parts}
		case group:
			// A joint cell for the parts hangs where the component was
			// attached.
			n.Children = append(n.Children, &Node{Children: parts})
		case len(n.Components) == 0 && len(n.Children) == 0 && parent != nil:
			// The cell held only this component: the parts become sibling
			// cells in its place.
			parent.Children = append(parent.Children[:slot],
				append(parts, parent.Children[slot+1:]...)...)
		default:
			// The cell holds other components (or is the root): attach the
			// parts as its own child cells so each remains independently
			// restartable.
			n.Children = append(n.Children, parts...)
		}
		return true
	}
	for i, c := range n.Children {
		if replaceComponentAt(n, i, c, component, into, group) {
			return true
		}
	}
	return false
}

// Consolidate (tree III → IV) merges the cells of the given components
// into one shared cell, encoding that separate restarts are useless
// (f_A + f_B ≪ f_{A,B}): whenever one is restarted, so is the other,
// turning MTTR_A + MTTR_B into max(MTTR_A, MTTR_B).
func Consolidate(t *Tree, name string, components []string) (*Tree, error) {
	if len(components) < 2 {
		return nil, fmt.Errorf("core: consolidation needs at least two components")
	}
	uniq := make(map[string]bool, len(components))
	for _, c := range components {
		if uniq[c] {
			return nil, fmt.Errorf("core: duplicate component %q in consolidation", c)
		}
		uniq[c] = true
		if _, err := t.CellOf(c); err != nil {
			return nil, err
		}
	}
	clone, err := t.Clone("tmp")
	if err != nil {
		return nil, err
	}
	merged := &Node{Components: append([]string(nil), components...)}
	sort.Strings(merged.Components)

	// Remove each component's old cell; insert the merged cell where the
	// first one was.
	root := clone.root
	inserted := false
	for _, comp := range components {
		cell, err := clone.CellOf(comp)
		if err != nil {
			return nil, err
		}
		removeComponent(cell, comp)
		if !inserted {
			if cell.parent == nil {
				root.Children = append(root.Children, merged)
			} else {
				cell.parent.Children = append(cell.parent.Children, merged)
			}
			inserted = true
		}
	}
	pruned := prune(root)
	if pruned == nil {
		return nil, ErrEmptyTree
	}
	return NewTree(name, pruned)
}

// Promote (tree IV → V) moves a high-MTTR component up: its cell becomes
// the parent of the given child cell, so every restart of the promoted
// component also restarts the subtree below it. This wastes a cheap child
// restart on every promoted-component failure, but removes the double
// restart a guess-too-low oracle mistake would cost — tree V can only be
// better than tree IV when the oracle is faulty.
func Promote(t *Tree, name, component, overComponent string) (*Tree, error) {
	if component == overComponent {
		return nil, fmt.Errorf("core: cannot promote %q over itself", component)
	}
	if _, err := t.CellOf(component); err != nil {
		return nil, err
	}
	if _, err := t.CellOf(overComponent); err != nil {
		return nil, err
	}
	clone, err := t.Clone("tmp")
	if err != nil {
		return nil, err
	}
	promotedCell, err := clone.CellOf(component)
	if err != nil {
		return nil, err
	}
	removeComponent(promotedCell, component)
	childCell, err := clone.CellOf(overComponent)
	if err != nil {
		return nil, err
	}
	// Walk up from the child cell to the nearest surviving ancestor and
	// interpose the promoted component there: the new node holds the
	// component and adopts the child's subtree.
	parent := childCell.parent
	newNode := &Node{Components: []string{component}, Children: []*Node{childCell}}
	if parent == nil {
		return nil, fmt.Errorf("core: cannot promote over the root cell")
	}
	for i, c := range parent.Children {
		if c == childCell {
			parent.Children[i] = newNode
			break
		}
	}
	pruned := prune(clone.root)
	if pruned == nil {
		return nil, ErrEmptyTree
	}
	return NewTree(name, pruned)
}

// removeComponent deletes a component from a cell's attachment list.
func removeComponent(n *Node, component string) {
	for i, c := range n.Components {
		if c == component {
			n.Components = append(n.Components[:i], n.Components[i+1:]...)
			return
		}
	}
}

// prune removes empty leaf cells (no components, no children) and
// collapses empty pass-through cells with a single child — including an
// emptied root, whose only child then becomes the new root. Restart
// semantics are preserved: a pass-through cell's button is identical to
// its child's.
func prune(n *Node) *Node {
	kept := n.Children[:0]
	for _, c := range n.Children {
		if p := prune(c); p != nil {
			kept = append(kept, p)
		}
	}
	n.Children = kept
	if len(n.Components) == 0 {
		switch len(n.Children) {
		case 0:
			return nil
		case 1:
			return n.Children[0]
		}
	}
	return n
}

// MercuryTrees builds the paper's five trees. Trees I and II use the
// monolithic component set; II′ (returned as "IIp"), III, IV and V use the
// split set.
func MercuryTrees(monolithic, split []string) (map[string]*Tree, error) {
	trees := make(map[string]*Tree, 6)

	t1, err := TrivialTree("I", monolithic)
	if err != nil {
		return nil, fmt.Errorf("tree I: %w", err)
	}
	trees["I"] = t1

	t2, err := DepthAugment(t1, "II")
	if err != nil {
		return nil, fmt.Errorf("tree II: %w", err)
	}
	trees["II"] = t2

	t2p, err := SplitComponent(t2, "IIp", "fedrcom", []string{"fedr", "pbcom"})
	if err != nil {
		return nil, fmt.Errorf("tree II': %w", err)
	}
	trees["IIp"] = t2p

	t3, err := GroupSplitComponent(t2, "III", "fedrcom", []string{"fedr", "pbcom"})
	if err != nil {
		return nil, fmt.Errorf("tree III: %w", err)
	}
	trees["III"] = t3

	t4, err := Consolidate(t3, "IV", []string{"ses", "str"})
	if err != nil {
		return nil, fmt.Errorf("tree IV: %w", err)
	}
	trees["IV"] = t4

	t5, err := Promote(t4, "V", "pbcom", "fedr")
	if err != nil {
		return nil, fmt.Errorf("tree V: %w", err)
	}
	trees["V"] = t5

	_ = split // the split component list is implied by the transformations
	return trees, nil
}

// SubAugment extends a tree below the process level: each named component
// keeps its cell, which gains one child cell per subcomponent (dotted
// names, e.g. ses.cache). The sub cells are the microreboot rung — the
// cheapest button on the escalation ladder. A failure confined to a
// subcomponent restarts just it; persistence escalates to the hosting
// process's own cell and onward exactly as before.
func SubAugment(t *Tree, name string, subs map[string][]string) (*Tree, error) {
	clone := cloneNode(t.root)
	comps := make([]string, 0, len(subs))
	for comp := range subs {
		comps = append(comps, comp)
	}
	sort.Strings(comps)
	for _, comp := range comps {
		n := findComponent(clone, comp)
		if n == nil {
			return nil, fmt.Errorf("%w: %s", ErrUnknownComponent, comp)
		}
		for _, sub := range subs[comp] {
			n.Children = append(n.Children, &Node{Components: []string{comp + "." + sub}})
		}
	}
	return NewTree(name, clone)
}

// findComponent locates the cell holding comp in an unlinked clone.
func findComponent(n *Node, comp string) *Node {
	for _, c := range n.Components {
		if c == comp {
			return n
		}
	}
	for _, child := range n.Children {
		if found := findComponent(child, comp); found != nil {
			return found
		}
	}
	return nil
}
