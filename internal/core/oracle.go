package core

import (
	"errors"
	"fmt"
	"math/rand"
)

// The oracle is the restart policy (paper §3.3): given a failure reported
// at a component, it recommends the restart-tree node whose button the
// recoverer should push. If the failure persists after the restart, the
// recoverer asks again with an incremented attempt and the previous node;
// policies then escalate toward the root.

// CureAdvisor exposes minimal-cure knowledge about active faults. The
// fault board implements it; the perfect oracle consults it — this is the
// experimental device the paper uses ("we ran an experiment with a perfect
// oracle"), not something a production policy could have.
type CureAdvisor interface {
	// MinimalCure returns the minimal cure set of the fault manifesting at
	// the component, if one is known.
	MinimalCure(component string) ([]string, bool)
}

// Oracle chooses restart nodes.
type Oracle interface {
	// Choose returns the node to restart for a failure reported at
	// component. attempt starts at 1 for a fresh failure episode; prev is
	// the node restarted by the previous attempt (nil when attempt == 1).
	Choose(t *Tree, component string, prev *Node, attempt int) (*Node, error)
	// Name identifies the policy in traces and tables.
	Name() string
}

// ErrNilTree guards oracle calls.
var ErrNilTree = errors.New("core: oracle called with nil tree")

// escalate climbs one level from prev, staying at the root once reached.
func escalate(t *Tree, component string, prev *Node) (*Node, error) {
	if prev == nil {
		return t.CellOf(component)
	}
	if p := prev.Parent(); p != nil {
		return p, nil
	}
	return prev, nil // already at the root; policy budget will stop us
}

// EscalatingOracle is the realistic default policy: restart the failed
// component's own cell first, then walk up the tree while the failure
// persists. It needs no knowledge of fault structure.
type EscalatingOracle struct{}

var _ Oracle = EscalatingOracle{}

// Name implements Oracle.
func (EscalatingOracle) Name() string { return "escalating" }

// Choose implements Oracle.
func (EscalatingOracle) Choose(t *Tree, component string, prev *Node, attempt int) (*Node, error) {
	if t == nil {
		return nil, ErrNilTree
	}
	if attempt <= 1 {
		return t.CellOf(component)
	}
	return escalate(t, component, prev)
}

// PerfectOracle embodies the minimal restart policy (A_oracle): for every
// minimally n-curable failure it recommends node n, learned from the cure
// advisor.
type PerfectOracle struct {
	Advisor CureAdvisor
}

var _ Oracle = PerfectOracle{}

// Name implements Oracle.
func (PerfectOracle) Name() string { return "perfect" }

// Choose implements Oracle.
func (o PerfectOracle) Choose(t *Tree, component string, prev *Node, attempt int) (*Node, error) {
	if t == nil {
		return nil, ErrNilTree
	}
	if attempt > 1 {
		// A perfect oracle is never wrong, but induced failures (new
		// failures created by a curing action) can still re-enter; keep
		// the escalation ladder as a safety net.
		return escalate(t, component, prev)
	}
	cure, ok := cureOf(o.Advisor, component)
	if !ok {
		return t.CellOf(component)
	}
	node, err := t.LowestCovering(cure)
	if err != nil {
		// The cure names components outside this tree (e.g. a split name
		// under a monolithic layout); fall back to the component's cell.
		return t.CellOf(component)
	}
	return node, nil
}

// FaultyOracle reproduces §4.4's experiment: it knows the minimal node but
// guesses too low with probability P whenever the correct node is an
// ancestor of the failed component's own cell. After a wrong guess it
// realises the failure persists and escalates.
type FaultyOracle struct {
	P       float64
	Advisor CureAdvisor
	Rng     *rand.Rand
}

var _ Oracle = (*FaultyOracle)(nil)

// Name implements Oracle.
func (o *FaultyOracle) Name() string { return fmt.Sprintf("faulty(%.0f%%)", o.P*100) }

// Choose implements Oracle.
func (o *FaultyOracle) Choose(t *Tree, component string, prev *Node, attempt int) (*Node, error) {
	if t == nil {
		return nil, ErrNilTree
	}
	if attempt > 1 {
		return escalate(t, component, prev)
	}
	cure, ok := cureOf(o.Advisor, component)
	if !ok {
		return t.CellOf(component)
	}
	correct, err := t.LowestCovering(cure)
	if err != nil {
		return t.CellOf(component)
	}
	cell, err := t.CellOf(component)
	if err != nil {
		return nil, err
	}
	if correct != cell && o.Rng.Float64() < o.P {
		return cell, nil // guess-too-low mistake
	}
	return correct, nil
}

// cureOf queries the advisor, tolerating a nil advisor.
func cureOf(a CureAdvisor, component string) ([]string, bool) {
	if a == nil {
		return nil, false
	}
	return a.MinimalCure(component)
}
