package core

import (
	"testing"
	"time"
)

// fakeCkpt is a CheckpointModel covering a fixed component set.
type fakeCkpt struct {
	cost  time.Duration
	cover map[string]bool
}

func (f fakeCkpt) RestoreCost(component string) (time.Duration, bool) {
	if f.cover[component] {
		return f.cost, true
	}
	return 0, false
}

func microTree(t *testing.T) *Tree {
	t.Helper()
	trees := mustTrees(t)
	subs := map[string][]string{
		"ses":  {"cache", "est"},
		"str":  {"cache", "track"},
		"fedr": {"session"},
	}
	mt, err := SubAugment(trees["III"], "IIIm", subs)
	if err != nil {
		t.Fatalf("SubAugment: %v", err)
	}
	return mt
}

func TestActionLadder(t *testing.T) {
	mt := microTree(t)
	ck := fakeCkpt{cost: time.Second, cover: map[string]bool{"str.track": true}}

	ladder, err := actionLadder(mt, "str.track", nil, ck)
	if err != nil {
		t.Fatalf("ladder: %v", err)
	}
	if len(ladder) < 3 {
		t.Fatalf("ladder too short: %v", ladder)
	}
	if ladder[0].Kind != ActMicroreboot {
		t.Fatalf("rung 0 = %v, want microreboot", ladder[0].Kind)
	}
	if ladder[1].Kind != ActCkptRestore || ladder[1].Node != ladder[0].Node {
		t.Fatalf("rung 1 = %v@%s, want ckpt-restore at the same cell", ladder[1].Kind, ladder[1].Node.Label())
	}
	for _, a := range ladder[2:] {
		if a.Kind != ActRestart {
			t.Fatalf("upper rung %v, want restart", a.Kind)
		}
	}
	// The first restart rung is the hosting process's cell.
	if got := ladder[2].Node.Subtree(); !eq(got, []string{"str", "str.cache", "str.track"}) {
		t.Fatalf("first restart rung subtree = %v", got)
	}
	// The last rung is the root.
	if ladder[len(ladder)-1].Node != mt.Root() {
		t.Fatal("ladder does not end at the root")
	}

	// Without a checkpoint: no ckpt rung.
	ladder, err = actionLadder(mt, "ses.est", nil, ck)
	if err != nil {
		t.Fatalf("ladder: %v", err)
	}
	if ladder[0].Kind != ActMicroreboot || ladder[1].Kind != ActRestart {
		t.Fatalf("uncovered sub ladder starts %v,%v", ladder[0].Kind, ladder[1].Kind)
	}

	// A plain process: restarts only, starting at its own cell.
	ladder, err = actionLadder(mt, "rtu", nil, ck)
	if err != nil {
		t.Fatalf("ladder: %v", err)
	}
	for _, a := range ladder {
		if a.Kind != ActRestart {
			t.Fatalf("process ladder has %v", a.Kind)
		}
	}
}

func TestCostAwareLearnsStateFault(t *testing.T) {
	mt := microTree(t)
	ck := fakeCkpt{cost: time.Second, cover: map[string]bool{"str.track": true}}
	o := NewCostAwareOracle(CostAwareConfig{Ckpt: ck})

	// First decision with no evidence: the cheap microreboot wins (its
	// prior duration is lowest and all rungs share the 0.5 prior success).
	act, err := o.ChooseAction(mt, "str.track", nil, 1)
	if err != nil {
		t.Fatalf("choose: %v", err)
	}
	if act.Kind != ActMicroreboot {
		t.Fatalf("cold-start action = %v, want microreboot", act.Kind)
	}

	// Teach it: microreboots never cure this site, checkpoint-restores do.
	micro := act
	ckAct := Action{Node: act.Node, Kind: ActCkptRestore}
	for i := 0; i < 6; i++ {
		o.ObserveAction("str.track", micro, 600*time.Millisecond, false)
		o.ObserveAction("str.track", ckAct, 1800*time.Millisecond, true)
	}
	act, err = o.ChooseAction(mt, "str.track", nil, 1)
	if err != nil {
		t.Fatalf("choose: %v", err)
	}
	if act.Kind != ActCkptRestore {
		t.Fatalf("learned action = %v, want ckpt-restore", act.Kind)
	}

	// Escalation: after the ckpt rung fails, the next rung up is chosen
	// from the remaining suffix — a restart.
	act, err = o.ChooseAction(mt, "str.track", &ckAct, 2)
	if err != nil {
		t.Fatalf("escalate: %v", err)
	}
	if act.Kind != ActRestart {
		t.Fatalf("escalated action = %v, want restart", act.Kind)
	}
}

func TestFixedOracleLadders(t *testing.T) {
	mt := microTree(t)
	ck := fakeCkpt{cost: time.Second, cover: map[string]bool{"str.track": true}}

	proc := &FixedActionOracle{Mode: FixedProcess}
	act, err := proc.ChooseAction(mt, "str.track", nil, 1)
	if err != nil {
		t.Fatalf("fixed-process: %v", err)
	}
	if act.Kind != ActRestart {
		t.Fatalf("fixed-process starts with %v", act.Kind)
	}
	if got := act.Node.Subtree(); !eq(got, []string{"str", "str.cache", "str.track"}) {
		t.Fatalf("fixed-process starts at %v", got)
	}

	mi := &FixedActionOracle{Mode: FixedMicro}
	act, err = mi.ChooseAction(mt, "str.track", nil, 1)
	if err != nil || act.Kind != ActMicroreboot {
		t.Fatalf("fixed-micro starts with %v err=%v", act.Kind, err)
	}

	cp := &FixedActionOracle{Mode: FixedCkpt, Ckpt: ck}
	act, err = cp.ChooseAction(mt, "str.track", nil, 1)
	if err != nil || act.Kind != ActCkptRestore {
		t.Fatalf("fixed-ckpt starts with %v err=%v", act.Kind, err)
	}
	// Uncovered site: degrades to the full ladder's cheapest rung.
	act, err = cp.ChooseAction(mt, "fedr.session", nil, 1)
	if err != nil || act.Kind != ActMicroreboot {
		t.Fatalf("fixed-ckpt uncovered starts with %v err=%v", act.Kind, err)
	}
}

func TestEstimator(t *testing.T) {
	e := NewEstimator(0)
	base := time.Unix(0, 0)
	if _, ok := e.MTTF("str"); ok {
		t.Fatal("MTTF before any failure")
	}
	e.ObserveFailure("str", base)
	e.ObserveFailure("str", base.Add(100*time.Second))
	mttf, ok := e.MTTF("str")
	if !ok || mttf != 100*time.Second {
		t.Fatalf("MTTF = %v ok=%v, want 100s", mttf, ok)
	}
	e.ObserveFailure("str", base.Add(200*time.Second))
	if mttf, _ = e.MTTF("str"); mttf != 100*time.Second {
		t.Fatalf("steady MTTF drifted: %v", mttf)
	}
	if got := e.Failures("str"); got != 3 {
		t.Fatalf("failures = %d", got)
	}

	act := Action{Node: &Node{Name: "STR"}, Kind: ActMicroreboot}
	if p := e.PSuccess("str", act.key()); p != 0.5 {
		t.Fatalf("prior p = %v", p)
	}
	e.ObserveAction("str", act, 500*time.Millisecond, true)
	if p := e.PSuccess("str", act.key()); p != 2.0/3.0 {
		t.Fatalf("p after one cure = %v", p)
	}
	d, ok := e.Duration("str", act.key())
	if !ok || d != 500*time.Millisecond {
		t.Fatalf("duration = %v ok=%v", d, ok)
	}
	if e.Render() == "" {
		t.Fatal("empty render")
	}
}
