package core

// This file implements a slice of the paper's §7 "recursively recoverable
// systems" generalisation: restart is just one example of a recovery
// procedure. A component may register a custom procedure — power-cycling a
// wedged serial port before respawning the process, replaying a journal,
// re-negotiating a session — and the recoverer invokes it in place of the
// plain restart whenever a restart action targets exactly that component.
// Escalated (multi-component) restarts remain plain restarts: custom
// procedures compose upward through the same tree.

// Recovery is a custom recovery procedure. Execute must leave the
// components (re)starting so that their eventual ready events complete the
// recovery action, exactly as a plain restart would.
type Recovery interface {
	// Name labels the procedure in traces.
	Name() string
	// Execute initiates recovery of the given components.
	Execute(set []string) error
}

// RestartRecovery is the default procedure: the process manager's plain
// kill-and-respawn.
type RestartRecovery struct {
	Exec func(set []string) error
}

var _ Recovery = RestartRecovery{}

// Name implements Recovery.
func (RestartRecovery) Name() string { return "restart" }

// Execute implements Recovery.
func (r RestartRecovery) Execute(set []string) error { return r.Exec(set) }

// FuncRecovery adapts a closure to Recovery.
type FuncRecovery struct {
	Label string
	Fn    func(set []string) error
}

var _ Recovery = FuncRecovery{}

// Name implements Recovery.
func (f FuncRecovery) Name() string { return f.Label }

// Execute implements Recovery.
func (f FuncRecovery) Execute(set []string) error { return f.Fn(set) }
