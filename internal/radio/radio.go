// Package radio models the COTS radio hardware behind fedrcom/pbcom/fedr:
// an emulated serial port whose parameter negotiation dominates startup
// time (the reason pbcom takes ~20 s to restart), and a tunable
// transceiver driven by high-level commands.
//
// Like the antenna model, these are pure state machines: components own
// the timing by scheduling the transition callbacks on their own clocks.
package radio

import (
	"errors"
	"fmt"
	"time"
)

// Serial port states.
type PortState int

// Port states.
const (
	PortClosed PortState = iota + 1
	PortNegotiating
	PortOpen
	PortWedged
)

var portStateNames = map[PortState]string{
	PortClosed:      "closed",
	PortNegotiating: "negotiating",
	PortOpen:        "open",
	PortWedged:      "wedged",
}

// String names the state.
func (s PortState) String() string {
	if n, ok := portStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("portstate(%d)", int(s))
}

// Port errors.
var (
	ErrPortNotOpen    = errors.New("radio: serial port not open")
	ErrPortBusy       = errors.New("radio: serial port already negotiating or open")
	ErrPortWedged     = errors.New("radio: serial port wedged; power-cycle required")
	ErrOutOfBand      = errors.New("radio: frequency outside radio band")
	ErrNotNegotiating = errors.New("radio: no negotiation in progress")
)

// SerialPort emulates the ground station's radio serial link. Opening it
// requires a parameter negotiation with the radio hardware; the caller
// schedules FinishNegotiation after NegotiationTime.
type SerialPort struct {
	// NegotiationTime is how long the open handshake takes — the dominant
	// cost of a pbcom/fedrcom restart.
	NegotiationTime time.Duration

	state PortState
	// writes counts frames written since open, for health beacons.
	writes int
}

// NewSerialPort returns a closed port with the given negotiation time.
func NewSerialPort(negotiation time.Duration) *SerialPort {
	return &SerialPort{NegotiationTime: negotiation, state: PortClosed}
}

// State reports the port state.
func (p *SerialPort) State() PortState { return p.state }

// BeginOpen starts the negotiation. The caller must invoke
// FinishNegotiation after NegotiationTime (scaled by any startup stretch).
func (p *SerialPort) BeginOpen() error {
	switch p.state {
	case PortWedged:
		return ErrPortWedged
	case PortNegotiating, PortOpen:
		return ErrPortBusy
	}
	p.state = PortNegotiating
	return nil
}

// FinishNegotiation completes the handshake.
func (p *SerialPort) FinishNegotiation() error {
	if p.state != PortNegotiating {
		return ErrNotNegotiating
	}
	p.state = PortOpen
	return nil
}

// Write sends a frame to the radio.
func (p *SerialPort) Write(frame []byte) error {
	if p.state == PortWedged {
		return ErrPortWedged
	}
	if p.state != PortOpen {
		return ErrPortNotOpen
	}
	p.writes++
	return nil
}

// Writes reports frames written since the port opened.
func (p *SerialPort) Writes() int { return p.writes }

// Close returns the port to the closed state (kills any negotiation).
func (p *SerialPort) Close() {
	if p.state != PortWedged {
		p.state = PortClosed
	}
	p.writes = 0
}

// Wedge simulates the hardware corner case where the port stops responding
// and only a power cycle (Unwedge) recovers it. Restarting the software
// component does not help — the kind of hard failure restart cannot cure.
func (p *SerialPort) Wedge() { p.state = PortWedged }

// Unwedge power-cycles the port back to closed.
func (p *SerialPort) Unwedge() { p.state = PortClosed }

// Band is a radio tuning range.
type Band struct {
	LoHz, HiHz float64
}

// Contains reports whether f lies in the band.
func (b Band) Contains(f float64) bool { return f >= b.LoHz && f <= b.HiHz }

// UHFAmateur is the band Mercury's 437 MHz downlinks live in.
var UHFAmateur = Band{LoHz: 420e6, HiHz: 450e6}

// Transceiver is the tunable radio.
type Transceiver struct {
	// Band constrains tuning.
	Band Band
	// TuneTime is how long a retune takes to settle.
	TuneTime time.Duration

	port    *SerialPort
	freqHz  float64
	settled bool
	tunes   int
}

// NewTransceiver builds a radio attached to the port.
func NewTransceiver(port *SerialPort, band Band, tuneTime time.Duration) *Transceiver {
	return &Transceiver{Band: band, TuneTime: tuneTime, port: port}
}

// BeginTune starts a retune to freqHz; the caller schedules FinishTune
// after TuneTime. Tuning requires the serial link to be open.
func (t *Transceiver) BeginTune(freqHz float64) error {
	if !t.Band.Contains(freqHz) {
		return fmt.Errorf("%w: %.3f MHz", ErrOutOfBand, freqHz/1e6)
	}
	if err := t.port.Write([]byte("FREQ")); err != nil {
		return err
	}
	t.freqHz = freqHz
	t.settled = false
	t.tunes++
	return nil
}

// FinishTune marks the synthesizer settled.
func (t *Transceiver) FinishTune() { t.settled = true }

// FrequencyHz returns the commanded frequency.
func (t *Transceiver) FrequencyHz() float64 { return t.freqHz }

// Settled reports whether the last tune completed.
func (t *Transceiver) Settled() bool { return t.settled }

// Tunes reports how many retunes were commanded (Doppler tracking issues
// many per pass).
func (t *Transceiver) Tunes() int { return t.tunes }

// Locked reports whether the radio is usable for the link: port open,
// synthesizer settled, frequency within band.
func (t *Transceiver) Locked() bool {
	return t.port.State() == PortOpen && t.settled && t.Band.Contains(t.freqHz)
}
