package radio

import (
	"errors"
	"testing"
	"time"
)

func TestPortLifecycle(t *testing.T) {
	p := NewSerialPort(15 * time.Second)
	if p.State() != PortClosed {
		t.Fatalf("initial state = %v", p.State())
	}
	if err := p.BeginOpen(); err != nil {
		t.Fatalf("BeginOpen: %v", err)
	}
	if p.State() != PortNegotiating {
		t.Fatalf("state = %v, want negotiating", p.State())
	}
	if err := p.Write([]byte("x")); !errors.Is(err, ErrPortNotOpen) {
		t.Fatalf("Write during negotiation = %v", err)
	}
	if err := p.FinishNegotiation(); err != nil {
		t.Fatalf("FinishNegotiation: %v", err)
	}
	if p.State() != PortOpen {
		t.Fatalf("state = %v, want open", p.State())
	}
	if err := p.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if p.Writes() != 1 {
		t.Fatalf("writes = %d", p.Writes())
	}
	p.Close()
	if p.State() != PortClosed || p.Writes() != 0 {
		t.Fatal("Close did not reset")
	}
}

func TestPortDoubleOpenRejected(t *testing.T) {
	p := NewSerialPort(time.Second)
	_ = p.BeginOpen()
	if err := p.BeginOpen(); !errors.Is(err, ErrPortBusy) {
		t.Fatalf("double BeginOpen = %v", err)
	}
	_ = p.FinishNegotiation()
	if err := p.BeginOpen(); !errors.Is(err, ErrPortBusy) {
		t.Fatalf("BeginOpen while open = %v", err)
	}
}

func TestFinishWithoutBegin(t *testing.T) {
	p := NewSerialPort(time.Second)
	if err := p.FinishNegotiation(); !errors.Is(err, ErrNotNegotiating) {
		t.Fatalf("err = %v", err)
	}
}

func TestWedgedPort(t *testing.T) {
	p := NewSerialPort(time.Second)
	_ = p.BeginOpen()
	_ = p.FinishNegotiation()
	p.Wedge()
	if err := p.Write([]byte("x")); !errors.Is(err, ErrPortWedged) {
		t.Fatalf("Write on wedged = %v", err)
	}
	if err := p.BeginOpen(); !errors.Is(err, ErrPortWedged) {
		t.Fatalf("BeginOpen on wedged = %v", err)
	}
	p.Close() // close cannot clear a wedge
	if p.State() != PortWedged {
		t.Fatal("Close cleared a wedge")
	}
	p.Unwedge()
	if p.State() != PortClosed {
		t.Fatal("Unwedge did not power-cycle")
	}
	if err := p.BeginOpen(); err != nil {
		t.Fatalf("BeginOpen after unwedge: %v", err)
	}
}

func openPort(t *testing.T) *SerialPort {
	t.Helper()
	p := NewSerialPort(time.Second)
	if err := p.BeginOpen(); err != nil {
		t.Fatal(err)
	}
	if err := p.FinishNegotiation(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTransceiverTune(t *testing.T) {
	p := openPort(t)
	tr := NewTransceiver(p, UHFAmateur, 200*time.Millisecond)
	if err := tr.BeginTune(437.1e6); err != nil {
		t.Fatalf("BeginTune: %v", err)
	}
	if tr.Settled() || tr.Locked() {
		t.Fatal("settled before FinishTune")
	}
	tr.FinishTune()
	if !tr.Settled() || !tr.Locked() {
		t.Fatal("not locked after FinishTune")
	}
	if tr.FrequencyHz() != 437.1e6 || tr.Tunes() != 1 {
		t.Fatalf("freq=%v tunes=%d", tr.FrequencyHz(), tr.Tunes())
	}
}

func TestTuneOutOfBand(t *testing.T) {
	tr := NewTransceiver(openPort(t), UHFAmateur, time.Millisecond)
	if err := tr.BeginTune(100e6); !errors.Is(err, ErrOutOfBand) {
		t.Fatalf("out-of-band tune = %v", err)
	}
}

func TestTuneRequiresOpenPort(t *testing.T) {
	p := NewSerialPort(time.Second)
	tr := NewTransceiver(p, UHFAmateur, time.Millisecond)
	if err := tr.BeginTune(437.1e6); !errors.Is(err, ErrPortNotOpen) {
		t.Fatalf("tune on closed port = %v", err)
	}
}

func TestLockedDropsWhenPortCloses(t *testing.T) {
	p := openPort(t)
	tr := NewTransceiver(p, UHFAmateur, time.Millisecond)
	_ = tr.BeginTune(437.1e6)
	tr.FinishTune()
	p.Close()
	if tr.Locked() {
		t.Fatal("locked with closed port")
	}
}

func TestBandContains(t *testing.T) {
	if !UHFAmateur.Contains(437.1e6) {
		t.Fatal("437.1 MHz should be in UHF amateur band")
	}
	if UHFAmateur.Contains(500e6) {
		t.Fatal("500 MHz should be out of band")
	}
}

func TestPortStateString(t *testing.T) {
	if PortOpen.String() != "open" || PortWedged.String() != "wedged" {
		t.Fatal("state names wrong")
	}
	if PortState(42).String() == "" {
		t.Fatal("unknown state empty")
	}
}
