package bus

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file composes TCPBroker instances into a sharded fabric. Each
// shard is an independent broker owning a slice of the bus address space;
// a message's shard is a pure function of its destination address, so
// clients and brokers agree on placement with no routing table, no
// coordination traffic, and no shared state between shards. Killing one
// shard takes down only the addresses that hash to it — the recursive-
// restart property applied to the bus itself: the fabric restarts by
// parts, and the blast radius of a shard failure is its address slice,
// not the whole message plane.

// fnv1a32 is the 32-bit FNV-1a hash. Inlined rather than hash/fnv so the
// per-send shard lookup allocates nothing and both sides of the wire are
// pinned to the same constants forever (changing them would strand
// in-flight deployments on disagreeing placements).
func fnv1a32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// ShardFor maps a bus address to its broker shard. Deterministic and
// identical on client and broker side — placement is the hash, there is
// no table to distribute or invalidate. n <= 1 collapses to shard 0 (the
// unsharded fabric).
func ShardFor(addr string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv1a32(addr) % uint32(n))
}

// Conn is the client-side bus handle shared by the single-broker
// TCPClient and the multiplexed ShardedClient, so components and tools
// work against either fabric shape.
type Conn interface {
	// Send queues a frame for delivery. Fail-silent, like the fabric.
	Send(m *xmlcmd.Message)
	// Close flushes queued frames and tears the connection(s) down.
	Close()
}

var (
	_ Conn = (*TCPClient)(nil)
	_ Conn = (*ShardedClient)(nil)
)

// ShardedBroker runs n independent broker shards. Shard addresses are
// pinned at listen time and survive KillShard/RestartShard, so clients
// reconnect to a restarted shard at the address they already know.
type ShardedBroker struct {
	cfg   BrokerConfig
	addrs []string

	mu     sync.Mutex
	shards []*TCPBroker // nil entry = shard currently down
}

// ListenSharded starts n broker shards at addr. Port 0 gives every shard
// its own ephemeral port; a fixed port P assigns consecutive ports
// P, P+1, …, P+n-1, so `-listen 127.0.0.1:7707 -bus-shards 2` yields the
// predictable pair 7707,7708. The per-connection batch config applies to
// every shard; each shard labels its metrics with its own index.
func ListenSharded(addr string, n int, cfg BrokerConfig) (*ShardedBroker, error) {
	if n < 1 {
		return nil, fmt.Errorf("bus: sharded fabric needs >= 1 shard, got %d", n)
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("bus: sharded listen address: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bus: sharded listen address %q: %w", addr, err)
	}
	sb := &ShardedBroker{
		cfg:    cfg,
		addrs:  make([]string, n),
		shards: make([]*TCPBroker, n),
	}
	for i := 0; i < n; i++ {
		c := cfg
		c.Shard = i
		shardAddr := addr
		if port != 0 {
			shardAddr = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
		b, err := ListenBrokerConfig(shardAddr, c)
		if err != nil {
			_ = sb.Close()
			return nil, err
		}
		sb.shards[i] = b
		sb.addrs[i] = b.Addr()
	}
	return sb, nil
}

// ListenShardedAddrs starts one shard per explicit address (a fabric
// reopening on known ports, e.g. after a supervisor restart).
func ListenShardedAddrs(addrs []string, cfg BrokerConfig) (*ShardedBroker, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("bus: sharded fabric needs >= 1 address")
	}
	sb := &ShardedBroker{
		cfg:    cfg,
		addrs:  append([]string(nil), addrs...),
		shards: make([]*TCPBroker, len(addrs)),
	}
	for i, addr := range sb.addrs {
		c := cfg
		c.Shard = i
		b, err := ListenBrokerConfig(addr, c)
		if err != nil {
			_ = sb.Close()
			return nil, err
		}
		sb.shards[i] = b
	}
	return sb, nil
}

// NumShards returns the fabric width.
func (sb *ShardedBroker) NumShards() int { return len(sb.addrs) }

// Addrs returns every shard's pinned address, in shard order.
func (sb *ShardedBroker) Addrs() []string {
	return append([]string(nil), sb.addrs...)
}

// AddrList returns the fabric's addresses as one comma-separated string,
// the form DialAuto and the -bus flags accept.
func (sb *ShardedBroker) AddrList() string { return strings.Join(sb.addrs, ",") }

// ShardAlive reports whether shard i is currently serving.
func (sb *ShardedBroker) ShardAlive(i int) bool {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return i >= 0 && i < len(sb.shards) && sb.shards[i] != nil
}

// KillShard stops shard i, disconnecting its clients. The shard's address
// stays reserved for RestartShard. Idempotent: killing a dead shard is a
// no-op, mirroring how the supervisor treats kill of a dead cell.
func (sb *ShardedBroker) KillShard(i int) error {
	if i < 0 || i >= len(sb.addrs) {
		return fmt.Errorf("bus: no shard %d in a %d-shard fabric", i, len(sb.addrs))
	}
	sb.mu.Lock()
	b := sb.shards[i]
	sb.shards[i] = nil
	sb.mu.Unlock()
	if b == nil {
		return nil
	}
	return b.Close()
}

// RestartShard brings shard i back on its pinned address. Clients that
// lost the shard reconnect on their own backoff and flush their parked
// frames; nothing else participates in the recovery.
func (sb *ShardedBroker) RestartShard(i int) error {
	if i < 0 || i >= len(sb.addrs) {
		return fmt.Errorf("bus: no shard %d in a %d-shard fabric", i, len(sb.addrs))
	}
	c := sb.cfg
	c.Shard = i
	sb.mu.Lock()
	if sb.shards[i] != nil {
		sb.mu.Unlock()
		return nil // already serving
	}
	sb.mu.Unlock()
	// Listen outside the lock; binding a pinned port can take time when
	// the dead shard's socket lingers in TIME_WAIT.
	b, err := ListenBrokerConfig(sb.addrs[i], c)
	if err != nil {
		return err
	}
	sb.mu.Lock()
	if sb.shards[i] != nil { // lost a restart race; keep the incumbent
		sb.mu.Unlock()
		return b.Close()
	}
	sb.shards[i] = b
	sb.mu.Unlock()
	return nil
}

// Shard returns shard i's live broker, or nil while it is down.
func (sb *ShardedBroker) Shard(i int) *TCPBroker {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if i < 0 || i >= len(sb.shards) {
		return nil
	}
	return sb.shards[i]
}

// Close stops every live shard.
func (sb *ShardedBroker) Close() error {
	var first error
	for i := range sb.addrs {
		if err := sb.KillShard(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardedClient multiplexes one TCPClient per shard behind the Conn
// interface: Send hashes the destination to pick the connection, so a
// component talks to an n-shard fabric exactly as it talked to one
// broker. Each underlying client reconnects to its own shard
// independently — one shard's outage parks only that shard's traffic.
type ShardedClient struct {
	clients []*TCPClient
}

// DialSharded connects name to every shard of the fabric. onMsg receives
// inbound frames from all shards; frames for one destination arrive on
// exactly one shard (the hash), so per-peer ordering matches the
// single-broker client.
func DialSharded(addrs []string, name string, cfg ClientConfig, onMsg func(*xmlcmd.Message)) (*ShardedClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("bus: sharded client needs >= 1 address")
	}
	sc := &ShardedClient{clients: make([]*TCPClient, len(addrs))}
	for i, addr := range addrs {
		c, err := DialBusConfig(addr, name, cfg, onMsg)
		if err != nil {
			sc.Close()
			return nil, err
		}
		sc.clients[i] = c
	}
	return sc, nil
}

// DialAuto dials a bus address spec: a single "host:port" yields a plain
// TCPClient, a comma-separated list yields a ShardedClient over those
// shards. Tools (mercuryd -bus, faultgen) accept either transparently.
func DialAuto(spec, name string, onMsg func(*xmlcmd.Message)) (Conn, error) {
	return DialAutoConfig(spec, name, ClientConfig{}, onMsg)
}

// DialAutoConfig is DialAuto with explicit client tuning.
func DialAutoConfig(spec, name string, cfg ClientConfig, onMsg func(*xmlcmd.Message)) (Conn, error) {
	if !strings.Contains(spec, ",") {
		return DialBusConfig(spec, name, cfg, onMsg)
	}
	parts := strings.Split(spec, ",")
	addrs := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			addrs = append(addrs, p)
		}
	}
	return DialSharded(addrs, name, cfg, onMsg)
}

// Send queues m on the shard its destination hashes to.
func (sc *ShardedClient) Send(m *xmlcmd.Message) {
	sc.clients[ShardFor(m.To, len(sc.clients))].Send(m)
}

// Client returns the underlying per-shard client (for tests/ops).
func (sc *ShardedClient) Client(i int) *TCPClient { return sc.clients[i] }

// Close tears down every per-shard connection, flushing live queues.
func (sc *ShardedClient) Close() {
	for _, c := range sc.clients {
		if c != nil {
			c.Close()
		}
	}
}
