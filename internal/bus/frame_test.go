package bus

import (
	"bytes"
	"io"
	"testing"

	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// countingWriter records every Write call so tests can assert how many
// syscalls a frame costs.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func TestFrameWriterSingleWrite(t *testing.T) {
	var fw FrameWriter
	var w countingWriter
	msgs := []*xmlcmd.Message{
		xmlcmd.NewPing("fd", "ses", 1, 42),
		xmlcmd.NewCommand("ses", "rtu", 2, "tune", "freqHz", "437100000"),
		xmlcmd.NewAck("rtu", "ses", 3, 2, true, ""),
	}
	for _, m := range msgs {
		if err := fw.WriteFrame(&w, m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if w.writes != len(msgs) {
		t.Fatalf("WriteFrame issued %d writes for %d frames, want one each", w.writes, len(msgs))
	}
	// The buffered frames must be readable by the package-level ReadFrame,
	// i.e. header+payload composition did not change the wire format.
	r := bytes.NewReader(w.buf.Bytes())
	for _, want := range msgs {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if got.From != want.From || got.Seq != want.Seq || got.Kind() != want.Kind() {
			t.Fatalf("round trip mismatch: got %v want %v", got, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after reading all frames", r.Len())
	}
}

func TestFrameWriterRejectsInvalid(t *testing.T) {
	var fw FrameWriter
	var w countingWriter
	if err := fw.WriteFrame(&w, &xmlcmd.Message{From: "a", To: "b"}); err != xmlcmd.ErrNoBody {
		t.Fatalf("WriteFrame invalid = %v, want ErrNoBody", err)
	}
	if w.writes != 0 {
		t.Fatal("rejected frame must not reach the socket")
	}
}

func TestFrameReaderInto(t *testing.T) {
	var fw FrameWriter
	var buf bytes.Buffer
	msgs := []*xmlcmd.Message{
		xmlcmd.NewPing("fd", "ses", 1, 7),
		xmlcmd.NewEvent("fd", "rec", 2, "failure", "ses"),
		xmlcmd.NewPing("fd", "rtu", 3, 9),
	}
	for _, m := range msgs {
		if err := fw.WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	var fr FrameReader
	var m xmlcmd.Message
	for _, want := range msgs {
		if err := fr.ReadFrameInto(&buf, &m); err != nil {
			t.Fatalf("ReadFrameInto: %v", err)
		}
		if m.To != want.To || m.Seq != want.Seq || m.Kind() != want.Kind() {
			t.Fatalf("got %v want %v", &m, want)
		}
	}
	// The event's stale body pointer must not survive into the next frame.
	if m.Event != nil {
		t.Fatal("body pointer from an earlier frame leaked through reuse")
	}
	if err := fr.ReadFrameInto(&buf, &m); err != io.EOF {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}
}

func TestFrameReaderOversized(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	var fr FrameReader
	if _, err := fr.ReadFrame(bytes.NewReader(hdr)); err != xmlcmd.ErrFrameTooLarge {
		t.Fatalf("oversized header = %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameSteadyStateAllocs pins the whole wire hot path: once the
// writer's and reader's buffers are warm, framing a ping costs zero
// allocations on the write side and zero on the ReadFrameInto side (the
// broker path). ReadFrame allocates exactly the one fresh Message it hands
// to the caller.
func TestFrameSteadyStateAllocs(t *testing.T) {
	m := xmlcmd.NewPing("fd", "ses", 1, 42)
	var fw FrameWriter
	if err := fw.WriteFrame(io.Discard, m); err != nil { // warm the buffer
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := fw.WriteFrame(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("FrameWriter.WriteFrame allocates %v/op in steady state, want 0", n)
	}

	var frame bytes.Buffer
	if err := fw.WriteFrame(&frame, m); err != nil {
		t.Fatal(err)
	}
	var fr FrameReader
	var dst xmlcmd.Message
	r := bytes.NewReader(frame.Bytes())
	if err := fr.ReadFrameInto(r, &dst); err != nil { // warm buffers + scratch
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.Reset(frame.Bytes())
		if err := fr.ReadFrameInto(r, &dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("FrameReader.ReadFrameInto allocates %v/op in steady state, want 0", n)
	}
	if dst.Ping == nil || dst.Ping.Nonce != 42 {
		t.Fatalf("steady-state decode corrupted the message: %v", &dst)
	}
}
