package bus

import (
	"strings"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// prefixResolver treats addresses of the form "s<N>:<local>" as remote
// when N differs from home; everything else is local.
func prefixResolver(home int) func(string) (int, string, bool) {
	return func(addr string) (int, string, bool) {
		rest, ok := strings.CutPrefix(addr, "s")
		if !ok {
			return 0, "", false
		}
		idx := strings.IndexByte(rest, ':')
		if idx <= 0 {
			return 0, "", false
		}
		n := 0
		for _, c := range rest[:idx] {
			if c < '0' || c > '9' {
				return 0, "", false
			}
			n = n*10 + int(c-'0')
		}
		if n == home {
			return 0, "", false
		}
		return n, rest[idx+1:], true
	}
}

func TestCrossLinkInterceptsRemoteOnly(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)

	x := NewCrossLink(clock.Sim{K: r.k}, prefixResolver(0))
	r.bus.SetCrossLink(x)

	// Local traffic still routes through the broker untouched.
	r.bus.Send(xmlcmd.NewEvent("b", "a", 1, "local", ""))
	_ = r.k.RunFor(time.Second)
	if len(a.received) != 1 {
		t.Fatalf("local message not delivered: %v", a.received)
	}
	if x.Pending() != 0 {
		t.Fatalf("cross-link queued local traffic: %d", x.Pending())
	}

	// Remote traffic is intercepted, never delivered locally, and stamped
	// in send order.
	sentAt := r.k.Now()
	r.bus.Send(xmlcmd.NewEvent("a", "s3:rtu", 2, "remote-1", ""))
	r.bus.Send(xmlcmd.NewEvent("a", "s7:ops", 3, "remote-2", ""))
	_ = r.k.RunFor(time.Second)
	if len(a.received) != 1 {
		t.Fatalf("remote message leaked to local delivery: %v", a.received)
	}
	st := r.bus.Stats()
	if st.CrossSent != 2 {
		t.Fatalf("CrossSent = %d, want 2", st.CrossSent)
	}

	var hs []Handoff
	hs = x.Drain(hs)
	if len(hs) != 2 {
		t.Fatalf("drained %d hand-offs, want 2", len(hs))
	}
	if hs[0].Station != 3 || hs[0].Msg.To != "rtu" || hs[0].Seq != 1 {
		t.Fatalf("handoff[0] = %+v", hs[0])
	}
	if hs[1].Station != 7 || hs[1].Msg.To != "ops" || hs[1].Seq != 2 {
		t.Fatalf("handoff[1] = %+v", hs[1])
	}
	if !hs[0].SentAt.Equal(sentAt) {
		t.Fatalf("SentAt = %v, want %v", hs[0].SentAt, sentAt)
	}
	if x.Pending() != 0 {
		t.Fatal("Drain did not empty the queue")
	}
}

func TestDeliverLocalBypassesBroker(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.startAll(t)

	before := r.bus.Stats()
	r.bus.DeliverLocal(xmlcmd.NewEvent("s9:rtu", "a", 1, "inbound", ""))
	if len(a.received) != 1 || a.received[0].Event.Name != "inbound" {
		t.Fatalf("a received %v", a.received)
	}
	st := r.bus.Stats()
	if st.Delivered != before.Delivered+1 {
		t.Fatalf("Delivered = %d, want %d", st.Delivered, before.Delivered+1)
	}
	// DeliverLocal is synchronous and broker-free: Sent must not move.
	if st.Sent != before.Sent {
		t.Fatalf("Sent moved: %d -> %d", before.Sent, st.Sent)
	}

	// A dead destination is a DroppedDest, same as the broker path.
	r.bus.DeliverLocal(xmlcmd.NewEvent("s9:rtu", "nobody", 2, "lost", ""))
	if got := r.bus.Stats().DroppedDest; got != before.DroppedDest+1 {
		t.Fatalf("DroppedDest = %d, want %d", got, before.DroppedDest+1)
	}
}
