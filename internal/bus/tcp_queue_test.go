package bus

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// Tests for the client reconnect queue and the broker's per-connection
// back-pressure: the two places where the bus bounds memory instead of
// either losing frames silently or growing without limit.

// TestTCPReconnectQueueFlush pins the reconnect-queue contract: frames
// sent while the broker is away are parked, counted, and delivered — in
// send order, ahead of post-reconnect traffic — once the broker returns.
// This is the regression test for the old behaviour, where Send while
// disconnected discarded the frame with nothing but a counter tick. The
// client sends to itself so delivery is deterministic: its register frame
// precedes the flushed queue on the same connection, so the destination
// is guaranteed to be routable by the time the parked frames arrive.
func TestTCPReconnectQueueFlush(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()

	var got collector
	send, err := DialBus(addr, "fd", got.on)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	waitFor(t, "registration", func() bool { return len(b.ClientNames()) == 1 })

	queued0 := M.TCPReconnectQueued.Value()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Wait until the client has noticed the outage (bw torn down) so the
	// sends below exercise the parked-queue path, not the live path.
	waitFor(t, "client to notice outage", func() bool {
		send.mu.Lock()
		defer send.mu.Unlock()
		return send.bw == nil
	})
	const parked = 5
	for i := uint64(0); i < parked; i++ {
		send.Send(xmlcmd.NewPing("fd", "fd", i, 100+i))
	}
	if d := M.TCPReconnectQueued.Value() - queued0; d != parked {
		t.Fatalf("reconnect-queued counter moved by %d, want %d", d, parked)
	}

	b2, err := ListenBroker(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	waitFor(t, "reconnection", func() bool { return len(b2.ClientNames()) == 1 })
	send.Send(xmlcmd.NewPing("fd", "fd", parked, 100+parked))

	waitFor(t, "parked frames + follow-up", func() bool { return got.count() == parked+1 })
	got.mu.Lock()
	defer got.mu.Unlock()
	for i, m := range got.msgs {
		if m.Ping.Nonce != uint64(100+i) {
			t.Fatalf("frame %d: nonce %d, want %d (queue must flush in order, ahead of new sends)",
				i, m.Ping.Nonce, 100+i)
		}
	}
}

// TestTCPReconnectQueueBound: the parked queue is bounded; overflow is
// dropped against the dropped-outcome counter rather than growing the
// queue without limit.
func TestTCPReconnectQueueBound(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Queue bound of ~1 KiB: a dozen pings fit, a few hundred do not.
	send, err := DialBusConfig(b.Addr(), "fd", ClientConfig{ReconnectQueue: 1 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "client to notice outage", func() bool {
		send.mu.Lock()
		defer send.mu.Unlock()
		return send.bw == nil
	})

	drops0 := M.TCPReconnectDrops.Value()
	for i := uint64(0); i < 200; i++ {
		send.Send(xmlcmd.NewPing("fd", "ses", i, i))
	}
	if M.TCPReconnectDrops.Value() == drops0 {
		t.Fatal("200 parked pings never overflowed a 1 KiB reconnect queue")
	}
	send.mu.Lock()
	qlen := len(send.queue)
	send.mu.Unlock()
	if qlen > (1<<10)+xmlcmd.MaxFrame {
		t.Fatalf("parked queue grew to %d bytes past its 1 KiB bound", qlen)
	}
}

// stalledClient registers a name at the broker over a raw connection and
// then never reads: its kernel buffers fill, the broker's bounded send
// queue for it fills, and further frames must be dropped — without the
// stall propagating to other destinations.
func stalledClient(t *testing.T, addr, name string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, xmlcmd.NewCommand(name, "mbus", 0, registerCommand)); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestTCPBrokerStalledReaderIsolation: a destination that stops reading
// must cost the broker at most one bounded queue, not wedge routing. The
// fabric's DropNewest policy sheds that destination's frames against the
// back-pressure counter while a healthy destination keeps receiving.
func TestTCPBrokerStalledReaderIsolation(t *testing.T) {
	b, err := ListenBrokerConfig("127.0.0.1:0", BrokerConfig{
		Batch: BatchConfig{FlushBytes: 1 << 10, MaxQueue: 1 << 10, Policy: DropNewest},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	stalled := stalledClient(t, b.Addr(), "stuck")
	defer stalled.Close()
	var got collector
	live, err := DialBus(b.Addr(), "ses", got.on)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	send, err := DialBus(b.Addr(), "fd", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	waitFor(t, "registration", func() bool { return len(b.ClientNames()) == 3 })

	// Flood the stalled destination with fat frames until its socket
	// buffers and bounded queue overflow and the drop counter moves.
	drops0 := M.TCPBackpressureDrops.Value()
	payload := strings.Repeat("x", 4<<10)
	for i := uint64(0); i < 4096 && M.TCPBackpressureDrops.Value() == drops0; i++ {
		send.Send(xmlcmd.NewEvent("fd", "stuck", i, "flood", payload))
	}
	if M.TCPBackpressureDrops.Value() == drops0 {
		t.Fatal("16 MiB at a stalled reader never tripped its 1 KiB bounded queue")
	}

	// The healthy destination must still receive traffic promptly.
	send.Send(xmlcmd.NewPing("fd", "ses", 1, 7))
	waitFor(t, "delivery past the stalled peer", func() bool { return got.count() == 1 })
	if m := got.last(); m.Ping == nil || m.Ping.Nonce != 7 {
		t.Fatalf("got %+v", m)
	}
}

// BenchmarkBrokerRouteParallel measures the broker's routing hot path —
// registry lookup plus batch enqueue — under concurrent senders. Before
// the sharded registry this serialised every sender on one broker mutex;
// now senders to one destination contend only on its queue.
func BenchmarkBrokerRouteParallel(b *testing.B) {
	br, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer br.Close()

	// A draining sink: register raw, then discard everything inbound so
	// the batch writer never blocks on the socket.
	conn, err := net.Dial("tcp", br.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, xmlcmd.NewCommand("sink", "mbus", 0, registerCommand)); err != nil {
		b.Fatal(err)
	}
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		_, _ = io.Copy(io.Discard, conn)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for len(br.ClientNames()) == 0 {
		if time.Now().After(deadline) {
			b.Fatal("sink never registered")
		}
		time.Sleep(time.Millisecond)
	}

	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		routed := br.routed.Shard(nextShard())
		m := xmlcmd.NewPing("fd", "sink", 0, 42)
		for pb.Next() {
			br.route(m, routed)
		}
	})
	b.StopTimer()
	_ = conn.Close()
	drain.Wait()
}
