package bus

import (
	"fmt"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// TestShardForDeterminism pins the address-hash placement: stable across
// calls, pinned to the FNV-1a constants (so client and broker builds can
// never disagree), collapsing to shard 0 for an unsharded fabric, and
// non-degenerate — a realistic component-name population must not all
// land on one shard.
func TestShardForDeterminism(t *testing.T) {
	names := []string{"fd", "rec", "ses", "rtu", "pms", "fes", "ctl", "faultgen"}
	for _, n := range names {
		if ShardFor(n, 1) != 0 {
			t.Fatalf("ShardFor(%q, 1) != 0", n)
		}
		for _, shards := range []int{2, 3, 4, 8} {
			a, b := ShardFor(n, shards), ShardFor(n, shards)
			if a != b {
				t.Fatalf("ShardFor(%q, %d) unstable: %d then %d", n, shards, a, b)
			}
			if a < 0 || a >= shards {
				t.Fatalf("ShardFor(%q, %d) = %d out of range", n, shards, a)
			}
		}
	}
	// Golden FNV-1a values: these may never change, or mixed-version
	// client/broker pairs would route the same address differently.
	if h := fnv1a32(""); h != 2166136261 {
		t.Fatalf("fnv1a32(\"\") = %d, want offset basis 2166136261", h)
	}
	if h := fnv1a32("a"); h != 0xe40c292c {
		t.Fatalf("fnv1a32(\"a\") = %#x, want 0xe40c292c", h)
	}
	// Distribution sanity over a wider population.
	counts := make([]int, 4)
	for i := 0; i < 256; i++ {
		counts[ShardFor(fmt.Sprintf("cell-%d", i), 4)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got none of 256 addresses: %v", s, counts)
		}
	}
}

// shardName finds a name with the given prefix hashing to shard want of
// an n-shard fabric.
func shardName(t *testing.T, prefix string, want, n int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if ShardFor(name, n) == want {
			return name
		}
	}
	t.Fatalf("no %s name hashes to shard %d/%d", prefix, want, n)
	return ""
}

// TestShardedRoundTrip drives a frame through each shard of a two-shard
// fabric: destinations hashing to different shards are both reachable
// through one ShardedClient, and each frame travels its own shard's
// broker (asserted via the per-shard routed counters).
func TestShardedRoundTrip(t *testing.T) {
	sb, err := ListenSharded("127.0.0.1:0", 2, BrokerConfig{Batch: BatchConfig{Policy: DropNewest}})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	n0 := shardName(t, "ses", 0, 2)
	n1 := shardName(t, "rtu", 1, 2)
	var got0, got1 collector
	r0, err := DialSharded(sb.Addrs(), n0, ClientConfig{}, got0.on)
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	r1, err := DialSharded(sb.Addrs(), n1, ClientConfig{}, got1.on)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	send, err := DialAuto(sb.AddrList(), "fd", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if _, ok := send.(*ShardedClient); !ok {
		t.Fatalf("DialAuto(%q) returned %T, want *ShardedClient", sb.AddrList(), send)
	}
	waitFor(t, "registration on both shards", func() bool {
		return len(sb.Shard(0).ClientNames()) == 3 && len(sb.Shard(1).ClientNames()) == 3
	})

	routed0 := M.TCPShardFrames.With("0").Value()
	routed1 := M.TCPShardFrames.With("1").Value()
	send.Send(xmlcmd.NewPing("fd", n0, 1, 10))
	send.Send(xmlcmd.NewPing("fd", n1, 2, 11))
	waitFor(t, "cross-shard delivery", func() bool { return got0.count() == 1 && got1.count() == 1 })
	if m := got0.last(); m.Ping.Nonce != 10 {
		t.Fatalf("shard-0 dest got nonce %d", m.Ping.Nonce)
	}
	if m := got1.last(); m.Ping.Nonce != 11 {
		t.Fatalf("shard-1 dest got nonce %d", m.Ping.Nonce)
	}
	if d := M.TCPShardFrames.With("0").Value() - routed0; d != 1 {
		t.Fatalf("shard 0 routed %d frames, want exactly 1", d)
	}
	if d := M.TCPShardFrames.With("1").Value() - routed1; d != 1 {
		t.Fatalf("shard 1 routed %d frames, want exactly 1", d)
	}
}

// TestShardKillIsolation is the acceptance test for the fabric's blast
// radius: killing one shard must degrade only the addresses hashing to
// it. Traffic to the surviving shard flows throughout the outage, and
// once the dead shard restarts, parked frames for its addresses drain in
// order — bus recovery by parts, with no whole-fabric restart.
func TestShardKillIsolation(t *testing.T) {
	sb, err := ListenSharded("127.0.0.1:0", 2, BrokerConfig{Batch: BatchConfig{Policy: DropNewest}})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	n0 := shardName(t, "ses", 0, 2)
	n1 := shardName(t, "rtu", 1, 2)
	var got0, got1 collector
	r0, err := DialSharded(sb.Addrs(), n0, ClientConfig{}, got0.on)
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	r1, err := DialSharded(sb.Addrs(), n1, ClientConfig{}, got1.on)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	send, err := DialSharded(sb.Addrs(), "fd", ClientConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	waitFor(t, "registration on both shards", func() bool {
		return len(sb.Shard(0).ClientNames()) == 3 && len(sb.Shard(1).ClientNames()) == 3
	})

	if err := sb.KillShard(0); err != nil {
		t.Fatal(err)
	}
	// The sender must notice shard 0 is gone so its frames park instead
	// of dying with the half-closed connection.
	waitFor(t, "sender to notice the dead shard", func() bool {
		c := send.Client(0)
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.bw == nil
	})

	// During the outage: shard-1 traffic flows, shard-0 traffic parks.
	const during = 3
	for i := uint64(0); i < during; i++ {
		send.Send(xmlcmd.NewPing("fd", n0, i, 100+i))
		send.Send(xmlcmd.NewPing("fd", n1, i, 200+i))
	}
	waitFor(t, "surviving shard delivery during outage", func() bool { return got1.count() == during })
	if got0.count() != 0 {
		t.Fatalf("dead shard delivered %d frames during its outage", got0.count())
	}

	// Restart the shard on its pinned address: receivers re-register,
	// the sender's parked frames drain in order.
	if err := sb.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	if !sb.ShardAlive(0) {
		t.Fatal("restarted shard not alive")
	}
	waitFor(t, "re-registration on restarted shard", func() bool {
		b := sb.Shard(0)
		return b != nil && len(b.ClientNames()) == 3
	})
	// The destination may have re-registered after the sender flushed its
	// parked frames (independent backoffs), losing the parked batch to
	// route drops; a fresh send after both are back must always arrive.
	send.Send(xmlcmd.NewPing("fd", n0, during, 100+during))
	waitFor(t, "post-restart delivery on healed shard", func() bool { return got0.count() >= 1 })
	got0.mu.Lock()
	defer got0.mu.Unlock()
	for i := 1; i < len(got0.msgs); i++ {
		if got0.msgs[i].Ping.Nonce <= got0.msgs[i-1].Ping.Nonce {
			t.Fatalf("healed shard delivered out of order: %d after %d",
				got0.msgs[i].Ping.Nonce, got0.msgs[i-1].Ping.Nonce)
		}
	}
	// Throughout all of this, the surviving shard was never disturbed.
	if got1.count() != during {
		t.Fatalf("surviving shard frame count moved: %d, want %d", got1.count(), during)
	}
}

// TestShardedClientFlushOnClose: frames queued on every shard's
// connection reach the wire when the multiplexed client closes — the
// one-shot-tool pattern (faultgen) over a sharded fabric.
func TestShardedClientFlushOnClose(t *testing.T) {
	sb, err := ListenSharded("127.0.0.1:0", 2, BrokerConfig{Batch: BatchConfig{Policy: DropNewest}})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	n0 := shardName(t, "ses", 0, 2)
	n1 := shardName(t, "rtu", 1, 2)
	var got0, got1 collector
	r0, err := DialSharded(sb.Addrs(), n0, ClientConfig{}, got0.on)
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	r1, err := DialSharded(sb.Addrs(), n1, ClientConfig{}, got1.on)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	send, err := DialSharded(sb.Addrs(), "tool", ClientConfig{
		// A long flush delay proves Close itself drains the queues rather
		// than the deadline happening to fire.
		Batch: BatchConfig{FlushDelay: time.Hour},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registration on both shards", func() bool {
		return len(sb.Shard(0).ClientNames()) == 3 && len(sb.Shard(1).ClientNames()) == 3
	})

	send.Send(xmlcmd.NewPing("tool", n0, 1, 31))
	send.Send(xmlcmd.NewPing("tool", n1, 2, 32))
	send.Close()
	waitFor(t, "flush-on-close delivery", func() bool { return got0.count() == 1 && got1.count() == 1 })
}
