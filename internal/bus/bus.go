// Package bus implements Mercury's software message bus.
//
// All high-level XML command traffic flows over the bus through the mbus
// broker component: sender → mbus → recipient. When mbus is down, messages
// are lost — which is why mbus itself is monitored and why an mbus failure
// looks, to a naive detector, like everything failing at once. The failure
// detector and the recoverer exchange traffic over a separate dedicated
// link that does not transit mbus, mirroring the paper's isolation choice.
//
// Two implementations exist: Sim (simulated fabric with a latency model,
// deterministic under the event kernel) and the TCP broker/client in
// tcp.go used by the real-time runtime.
package bus

import (
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// Stats counts bus activity for tests and health beacons.
type Stats struct {
	Sent          int
	Delivered     int
	DroppedBroker int // lost because mbus was not serving
	DroppedDest   int // lost because the destination was not accepting
	DirectSent    int // messages on dedicated links
	DroppedChaos  int // lost to the chaos layer's per-hop loss
	Duplicated    int // hops duplicated by the chaos layer
	CrossSent     int // messages handed to the cross-shard link
}

// Sim is the simulated message fabric. Messages between ordinary
// components take two hops (to the broker, then to the destination), each
// costing Latency; dedicated-link messages take one hop.
//
// Like the proc.Manager it delivers into, Sim is not internally
// synchronised: Send and the scheduled hops must run on one dispatch
// context (the event kernel), which also makes the delivery-event pool
// safe.
type Sim struct {
	clk    clock.Clock
	mgr    *proc.Manager
	broker string

	// kern is the underlying event kernel when clk is the simulation
	// clock; it unlocks the int64-nanosecond fast paths (hop queue). Nil
	// under other clocks, where the bus falls back to per-hop events.
	kern *sim.Kernel

	// Latency is the one-hop propagation + processing delay.
	Latency time.Duration

	// direct holds addresses joined by dedicated links; any message whose
	// From and To are both direct bypasses the broker. A short slice, not
	// a map: the membership test sits on the per-Send hot path and the set
	// is two entries (fd, rec), where a linear compare beats a string hash.
	direct []string

	// brokerRef caches a stable handle for the broker's serving check,
	// resolved lazily once the broker registers.
	brokerRef proc.Ref

	// pool recycles delivery events so steady-state routing allocates
	// nothing: each in-flight message holds one event through both hops.
	// Only chaos-perturbed hops use events; clean hops ride hopQ.
	pool []*deliveryEvent

	// hopQ is the clean-path hop queue. Every clean hop is due exactly
	// Latency after it is sent, so due times are non-decreasing in send
	// order and the queue is FIFO by construction. One self-rescheduling
	// pump event drains it, which keeps the kernel heap at a handful of
	// entries no matter how many messages are in flight — at a million
	// requests/s the heap would otherwise hold tens of thousands of hop
	// events and heap maintenance dominates the whole simulation.
	hopQ    []hopEntry
	hopHead int
	pumpOn  bool
	pump    hopPump

	// extraRefs counts in-flight copies of a message beyond the structural
	// one, minted by chaos duplication. It is consulted only when non-empty,
	// so the clean fabric's recycling path never touches the map — which is
	// what keeps message recycling free on the request plane's hot path.
	extraRefs map[*xmlcmd.Message]int

	// xlink, when installed, intercepts messages addressed to other
	// stations and queues them for the fleet's epoch exchange (see
	// crosslink.go). Nil for a standalone station.
	xlink *CrossLink

	// chaosDefault/chaosLinks model a degraded fabric (see chaos.go);
	// both nil means the historical perfect fabric.
	chaosDefault *ChaosProfile
	chaosLinks   map[linkKey]*ChaosProfile

	// chaosDrops counts chaos-layer discards per directed hop (see
	// LinkDiscards). Plain map: mutated only on the dispatch context.
	chaosDrops map[linkKey]uint64

	stats Stats

	// m mirrors stats into the process-wide obs counters through this
	// fabric's private shards (see metrics.go).
	m simCounters
}

var _ proc.Transport = (*Sim)(nil)

// NewSim builds a simulated bus routed through the named broker component.
func NewSim(clk clock.Clock, mgr *proc.Manager, broker string) *Sim {
	b := &Sim{
		clk:        clk,
		mgr:        mgr,
		broker:     broker,
		Latency:    5 * time.Millisecond,
		chaosDrops: make(map[linkKey]uint64),
		m:          newSimCounters(),
	}
	if ks, ok := clk.(clock.Sim); ok {
		b.kern = ks.K
	}
	return b
}

// AddDirectLink marks two addresses as joined by a dedicated connection
// that does not transit the broker (the paper's FD↔REC TCP link).
func (b *Sim) AddDirectLink(a, c string) {
	for _, n := range []string{a, c} {
		if !b.isDirect(n) {
			b.direct = append(b.direct, n)
		}
	}
}

func (b *Sim) isDirect(name string) bool {
	for _, d := range b.direct {
		if d == name {
			return true
		}
	}
	return false
}

// brokerServing tests the broker's serving state through the cached
// process handle, falling back to resolution until the broker registers.
func (b *Sim) brokerServing() bool {
	if !b.brokerRef.Valid() {
		b.brokerRef = b.mgr.Ref(b.broker)
	}
	return b.brokerRef.Serving()
}

// Stats returns a copy of the bus counters.
func (b *Sim) Stats() Stats { return b.stats }

// Send routes a message. Sends never fail synchronously: loss is silent,
// exactly like writing into a TCP connection whose peer has crashed.
//
// A message with a non-nil Owner is owned by the fabric from this call
// until the owner's RecycleMessage fires: the sender must not mutate or
// resend it in between.
func (b *Sim) Send(m *xmlcmd.Message) {
	b.stats.Sent++
	b.m.sent.Inc()
	if b.xlink != nil {
		// A message crossing shards is delivered on another fabric's
		// dispatch context; recycling it back into a sender-side pool from
		// there would race. The pool forfeits the envelope instead.
		owner := m.Owner
		m.Owner = nil
		if b.xlink.offer(m) {
			b.stats.CrossSent++
			b.m.crossSent.Inc()
			return
		}
		m.Owner = owner
	}
	if b.isDirect(m.From) && b.isDirect(m.To) {
		b.stats.DirectSent++
		b.sendHop(m, hopDeliver, m.From, m.To)
		return
	}
	// Hop 1: reach the broker. Messages to or from the broker itself are
	// single-hop (the broker terminates them locally).
	if m.To == b.broker || m.From == b.broker {
		b.sendHop(m, hopDeliver, m.From, m.To)
		return
	}
	b.sendHop(m, hopBroker, m.From, b.broker)
}

// Delivery hops.
const (
	// hopDeliver is the final hop: hand the message to its destination.
	hopDeliver = iota
	// hopBroker is the first hop of a routed message: the broker, if
	// serving, forwards to the destination; otherwise the message is lost.
	hopBroker
)

// deliveryEvent is one message's journey across the fabric, prebound with
// everything a hop needs so no closure is allocated per Send. The same
// event is rescheduled from the broker hop to the final hop and returned to
// the bus pool once the message is delivered or dropped.
type deliveryEvent struct {
	b   *Sim
	m   *xmlcmd.Message
	hop int
}

var _ clock.Event = (*deliveryEvent)(nil)

// Fire advances the message by one hop.
func (e *deliveryEvent) Fire() {
	b, m, hop := e.b, e.m, e.hop
	b.release(e)
	b.hop(m, hop)
}

// hop lands one physical hop: forward at the broker, or deliver.
func (b *Sim) hop(m *xmlcmd.Message, hop int) {
	if hop == hopBroker {
		// The broker must be accepting traffic to route. A broker that is
		// starting up or dead loses the message.
		if !b.brokerServing() {
			b.stats.DroppedBroker++
			b.m.dropBroker.Inc()
			b.finish(m)
			return
		}
		// Second hop, broker → destination, under that link's chaos.
		b.sendHop(m, hopDeliver, b.broker, m.To)
		return
	}
	if b.mgr.Deliver(m) {
		b.stats.Delivered++
		b.m.delivered.Inc()
	} else {
		b.stats.DroppedDest++
		b.m.dropDest.Inc()
	}
	b.finish(m)
}

// hopEntry is one clean hop queued for delivery at due (kernel
// nanoseconds — int64 so queue maintenance never touches time.Time).
type hopEntry struct {
	m   *xmlcmd.Message
	due int64
	hop int32
}

// queueHop appends a clean hop to the FIFO queue and arms the pump. It
// refuses (returning false) when no kernel clock is attached, or if the
// new due time would break the queue's sort order — only possible if
// Latency is lowered mid-run — so the caller can fall back to a
// kernel-scheduled event.
func (b *Sim) queueHop(m *xmlcmd.Message, hop int) bool {
	if b.kern == nil {
		return false
	}
	due := b.kern.NowNs() + int64(b.Latency)
	if n := len(b.hopQ); n > b.hopHead && due < b.hopQ[n-1].due {
		return false
	}
	// Reclaim the drained prefix once it dominates the slice, amortised
	// O(1) per hop, so a queue that never empties does not grow forever.
	if b.hopHead > 1024 && b.hopHead*2 >= len(b.hopQ) {
		n := copy(b.hopQ, b.hopQ[b.hopHead:])
		b.hopQ = b.hopQ[:n]
		b.hopHead = 0
	}
	b.hopQ = append(b.hopQ, hopEntry{m: m, due: due, hop: int32(hop)})
	if !b.pumpOn {
		b.pumpOn = true
		b.pump.b = b
		b.kern.Schedule(b.Latency, &b.pump)
	}
	return true
}

// hopPump is the queue's single self-rescheduling kernel event: it drains
// every hop that has come due, then sleeps until the next one.
type hopPump struct{ b *Sim }

func (p *hopPump) Fire() {
	b := p.b
	now := b.kern.NowNs()
	for b.hopHead < len(b.hopQ) {
		e := b.hopQ[b.hopHead]
		if e.due > now {
			b.kern.Schedule(time.Duration(e.due-now), p)
			return
		}
		b.hopQ[b.hopHead].m = nil
		b.hopHead++
		b.hop(e.m, int(e.hop))
	}
	b.hopQ = b.hopQ[:0]
	b.hopHead = 0
	b.pumpOn = false
}

// finish retires one in-flight obligation for m: every scheduled hop chain
// ends in exactly one finish (delivered, dropped at a dead broker or
// destination, or lost to chaos before scheduling). The last obligation
// returns the message to its Owner pool. Delivery is synchronous
// (mgr.Deliver runs the handler inline), so by the time finish runs the
// receiver is done with the message.
func (b *Sim) finish(m *xmlcmd.Message) {
	if len(b.extraRefs) != 0 {
		if n, ok := b.extraRefs[m]; ok {
			if n <= 1 {
				delete(b.extraRefs, m)
			} else {
				b.extraRefs[m] = n - 1
			}
			return
		}
	}
	if m.Owner != nil {
		m.Owner.RecycleMessage(m)
	}
}

func (b *Sim) acquire(m *xmlcmd.Message, hop int) *deliveryEvent {
	if n := len(b.pool); n > 0 {
		e := b.pool[n-1]
		b.pool = b.pool[:n-1]
		e.m, e.hop = m, hop
		return e
	}
	return &deliveryEvent{b: b, m: m, hop: hop}
}

func (b *Sim) release(e *deliveryEvent) {
	e.m = nil
	b.pool = append(b.pool, e)
}

// Broker is the mbus broker component itself: the process that, when
// serving, carries traffic. Its handler only needs to answer liveness
// pings; the routing fast path lives in the fabric (Sim or the TCP
// broker), gated on this process's serving state.
type Broker struct {
	// StartupTime is the base time for the broker to come up.
	StartupTime time.Duration
}

// BrokerHandler returns a proc.Handler factory for the broker process.
func BrokerHandler(startup time.Duration) func() proc.Handler {
	return func() proc.Handler { return &brokerHandler{startup: startup} }
}

type brokerHandler struct {
	startup time.Duration
	ready   bool
}

func (h *brokerHandler) Start(ctx proc.Context) {
	d := time.Duration(float64(h.startup) * ctx.Stretch())
	ctx.After(d, func() {
		h.ready = true
		ctx.Ready()
	})
}

func (h *brokerHandler) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindPing && h.ready {
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}
