// Package bus implements Mercury's software message bus.
//
// All high-level XML command traffic flows over the bus through the mbus
// broker component: sender → mbus → recipient. When mbus is down, messages
// are lost — which is why mbus itself is monitored and why an mbus failure
// looks, to a naive detector, like everything failing at once. The failure
// detector and the recoverer exchange traffic over a separate dedicated
// link that does not transit mbus, mirroring the paper's isolation choice.
//
// Two implementations exist: Sim (simulated fabric with a latency model,
// deterministic under the event kernel) and the TCP broker/client in
// tcp.go used by the real-time runtime.
package bus

import (
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// Stats counts bus activity for tests and health beacons.
type Stats struct {
	Sent          int
	Delivered     int
	DroppedBroker int // lost because mbus was not serving
	DroppedDest   int // lost because the destination was not accepting
	DirectSent    int // messages on dedicated links
	DroppedChaos  int // lost to the chaos layer's per-hop loss
	Duplicated    int // hops duplicated by the chaos layer
	CrossSent     int // messages handed to the cross-shard link
}

// Sim is the simulated message fabric. Messages between ordinary
// components take two hops (to the broker, then to the destination), each
// costing Latency; dedicated-link messages take one hop.
//
// Like the proc.Manager it delivers into, Sim is not internally
// synchronised: Send and the scheduled hops must run on one dispatch
// context (the event kernel), which also makes the delivery-event pool
// safe.
type Sim struct {
	clk    clock.Clock
	mgr    *proc.Manager
	broker string

	// Latency is the one-hop propagation + processing delay.
	Latency time.Duration

	// direct holds addresses joined by dedicated links; any message whose
	// From and To are both direct bypasses the broker.
	direct map[string]bool

	// pool recycles delivery events so steady-state routing allocates
	// nothing: each in-flight message holds one event through both hops.
	pool []*deliveryEvent

	// xlink, when installed, intercepts messages addressed to other
	// stations and queues them for the fleet's epoch exchange (see
	// crosslink.go). Nil for a standalone station.
	xlink *CrossLink

	// chaosDefault/chaosLinks model a degraded fabric (see chaos.go);
	// both nil means the historical perfect fabric.
	chaosDefault *ChaosProfile
	chaosLinks   map[linkKey]*ChaosProfile

	// chaosDrops counts chaos-layer discards per directed hop (see
	// LinkDiscards). Plain map: mutated only on the dispatch context.
	chaosDrops map[linkKey]uint64

	stats Stats

	// m mirrors stats into the process-wide obs counters through this
	// fabric's private shards (see metrics.go).
	m simCounters
}

var _ proc.Transport = (*Sim)(nil)

// NewSim builds a simulated bus routed through the named broker component.
func NewSim(clk clock.Clock, mgr *proc.Manager, broker string) *Sim {
	return &Sim{
		clk:        clk,
		mgr:        mgr,
		broker:     broker,
		Latency:    5 * time.Millisecond,
		direct:     make(map[string]bool),
		chaosDrops: make(map[linkKey]uint64),
		m:          newSimCounters(),
	}
}

// AddDirectLink marks two addresses as joined by a dedicated connection
// that does not transit the broker (the paper's FD↔REC TCP link).
func (b *Sim) AddDirectLink(a, c string) {
	b.direct[a] = true
	b.direct[c] = true
}

// Stats returns a copy of the bus counters.
func (b *Sim) Stats() Stats { return b.stats }

// Send routes a message. Sends never fail synchronously: loss is silent,
// exactly like writing into a TCP connection whose peer has crashed.
func (b *Sim) Send(m *xmlcmd.Message) {
	b.stats.Sent++
	b.m.sent.Inc()
	if b.xlink != nil && b.xlink.offer(m) {
		b.stats.CrossSent++
		b.m.crossSent.Inc()
		return
	}
	if b.direct[m.From] && b.direct[m.To] {
		b.stats.DirectSent++
		b.sendHop(m, hopDeliver, m.From, m.To)
		return
	}
	// Hop 1: reach the broker. Messages to or from the broker itself are
	// single-hop (the broker terminates them locally).
	if m.To == b.broker || m.From == b.broker {
		b.sendHop(m, hopDeliver, m.From, m.To)
		return
	}
	b.sendHop(m, hopBroker, m.From, b.broker)
}

// Delivery hops.
const (
	// hopDeliver is the final hop: hand the message to its destination.
	hopDeliver = iota
	// hopBroker is the first hop of a routed message: the broker, if
	// serving, forwards to the destination; otherwise the message is lost.
	hopBroker
)

// deliveryEvent is one message's journey across the fabric, prebound with
// everything a hop needs so no closure is allocated per Send. The same
// event is rescheduled from the broker hop to the final hop and returned to
// the bus pool once the message is delivered or dropped.
type deliveryEvent struct {
	b   *Sim
	m   *xmlcmd.Message
	hop int
}

var _ clock.Event = (*deliveryEvent)(nil)

// Fire advances the message by one hop.
func (e *deliveryEvent) Fire() {
	b := e.b
	if e.hop == hopBroker {
		// The broker must be accepting traffic to route. A broker that is
		// starting up or dead loses the message.
		if !b.mgr.Serving(b.broker) {
			b.stats.DroppedBroker++
			b.m.dropBroker.Inc()
			b.release(e)
			return
		}
		// Second hop, broker → destination, under that link's chaos.
		// Releasing first keeps the pool at one event per clean in-flight
		// message: sendHop's acquire pops this same event straight back.
		m := e.m
		b.release(e)
		b.sendHop(m, hopDeliver, b.broker, m.To)
		return
	}
	if b.mgr.Deliver(e.m) {
		b.stats.Delivered++
		b.m.delivered.Inc()
	} else {
		b.stats.DroppedDest++
		b.m.dropDest.Inc()
	}
	b.release(e)
}

func (b *Sim) acquire(m *xmlcmd.Message, hop int) *deliveryEvent {
	if n := len(b.pool); n > 0 {
		e := b.pool[n-1]
		b.pool = b.pool[:n-1]
		e.m, e.hop = m, hop
		return e
	}
	return &deliveryEvent{b: b, m: m, hop: hop}
}

func (b *Sim) release(e *deliveryEvent) {
	e.m = nil
	b.pool = append(b.pool, e)
}

// Broker is the mbus broker component itself: the process that, when
// serving, carries traffic. Its handler only needs to answer liveness
// pings; the routing fast path lives in the fabric (Sim or the TCP
// broker), gated on this process's serving state.
type Broker struct {
	// StartupTime is the base time for the broker to come up.
	StartupTime time.Duration
}

// BrokerHandler returns a proc.Handler factory for the broker process.
func BrokerHandler(startup time.Duration) func() proc.Handler {
	return func() proc.Handler { return &brokerHandler{startup: startup} }
}

type brokerHandler struct {
	startup time.Duration
	ready   bool
}

func (h *brokerHandler) Start(ctx proc.Context) {
	d := time.Duration(float64(h.startup) * ctx.Stretch())
	ctx.After(d, func() {
		h.ready = true
		ctx.Ready()
	})
}

func (h *brokerHandler) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindPing && h.ready {
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}
