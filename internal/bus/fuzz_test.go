package bus

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// FuzzReadFrame feeds arbitrary byte streams to the wire-frame reader: a
// corrupt length prefix or payload must produce an error, never a panic,
// and an oversized header must be rejected before any payload buffer is
// allocated (a 4 GB length prefix is a one-frame denial of service
// otherwise).
func FuzzReadFrame(f *testing.F) {
	frame := func(m *xmlcmd.Message) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	ping := frame(xmlcmd.NewPing("fd", "ses", 1, 42))
	reg := frame(xmlcmd.NewCommand("ses", "mbus", 2, "register"))
	f.Add(ping)
	f.Add(reg)
	f.Add(append(ping, reg...)) // back-to-back frames
	f.Add(ping[:len(ping)-3])   // truncated payload
	f.Add(ping[:2])             // truncated header
	f.Add([]byte{})

	// Hostile length prefixes: huge, and huge-with-tiny-payload.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], 0xFFFFFFFF)
	f.Add(huge[:])
	f.Add(append(huge[:], []byte("<msg/>")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		m, err := ReadFrame(r)
		if err != nil {
			if len(data) >= frameHeader {
				if n := binary.BigEndian.Uint32(data[:frameHeader]); n > xmlcmd.MaxFrame && !errors.Is(err, xmlcmd.ErrFrameTooLarge) {
					t.Fatalf("oversized length prefix %d rejected with %v, want ErrFrameTooLarge", n, err)
				}
			}
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("ReadFrame accepted an invalid message: %v", verr)
		}
		// A successfully read frame must round-trip through the writer.
		var buf bytes.Buffer
		if werr := WriteFrame(&buf, m); werr != nil {
			t.Fatalf("read frame does not re-write: %v", werr)
		}
	})
}

// FuzzReadBatchedFrames pins the batching invariant at the byte level: a
// message sequence pushed through a BatchWriter must produce a stream
// byte-identical to the same frames written one at a time, and that
// stream must decode back into the same number of valid frames. Batching
// may change how bytes are grouped into Write calls, never the bytes.
func FuzzReadBatchedFrames(f *testing.F) {
	f.Add("fd", "ses", uint64(1), uint64(42), "overload", "detail", uint16(0b10101))
	f.Add("a", "b", uint64(0), uint64(0), "", "", uint16(0))
	f.Add("x<&>", "y\"'", uint64(9), uint64(7), "na<me", "de&tail\n", uint16(0xFFFF))

	f.Fuzz(func(t *testing.T, from, to string, seq, nonce uint64, name, detail string, kinds uint16) {
		// Derive up to 16 messages of mixed kinds from the fuzz inputs.
		var msgs []*xmlcmd.Message
		ping := xmlcmd.NewPing(from, to, seq, nonce)
		for i := 0; i < 16; i++ {
			switch (kinds >> i) & 0b11 {
			case 0:
				msgs = append(msgs, xmlcmd.NewPing(from, to, seq+uint64(i), nonce+uint64(i)))
			case 1:
				msgs = append(msgs, xmlcmd.NewPong(from, ping, i))
			case 2:
				msgs = append(msgs, xmlcmd.NewCommand(from, to, seq+uint64(i), name, "k", detail))
			case 3:
				msgs = append(msgs, xmlcmd.NewEvent(from, to, seq+uint64(i), name, detail))
			}
		}

		// Reference stream: every encodable message written frame-at-a-
		// time. Messages the codec rejects are skipped on both paths.
		var plain bytes.Buffer
		var kept []*xmlcmd.Message
		var fw FrameWriter
		for _, m := range msgs {
			if err := fw.WriteFrame(&plain, m); err == nil {
				kept = append(kept, m)
			}
		}

		// Batched stream: same messages through the batch writer, with a
		// deadline long enough that only size/close flushes happen.
		var batched lockedBuffer
		bw := NewBatchWriter(&batched, BatchConfig{FlushDelay: time.Hour, MaxQueue: 1 << 24})
		for _, m := range kept {
			if err := bw.Enqueue(m); err != nil {
				t.Fatalf("Enqueue rejected a message WriteFrame accepted: %v", err)
			}
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}

		got := batched.Bytes()
		if !bytes.Equal(got, plain.Bytes()) {
			t.Fatalf("batched stream differs from unbatched: %d vs %d bytes", len(got), plain.Len())
		}
		decoded := decodeStream(t, got)
		if len(decoded) != len(kept) {
			t.Fatalf("batched stream decoded to %d frames, want %d", len(decoded), len(kept))
		}
		for i, m := range decoded {
			if err := m.Validate(); err != nil {
				t.Fatalf("frame %d decoded invalid: %v", i, err)
			}
		}
	})
}
