package bus

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// FuzzReadFrame feeds arbitrary byte streams to the wire-frame reader: a
// corrupt length prefix or payload must produce an error, never a panic,
// and an oversized header must be rejected before any payload buffer is
// allocated (a 4 GB length prefix is a one-frame denial of service
// otherwise).
func FuzzReadFrame(f *testing.F) {
	frame := func(m *xmlcmd.Message) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	ping := frame(xmlcmd.NewPing("fd", "ses", 1, 42))
	reg := frame(xmlcmd.NewCommand("ses", "mbus", 2, "register"))
	f.Add(ping)
	f.Add(reg)
	f.Add(append(ping, reg...)) // back-to-back frames
	f.Add(ping[:len(ping)-3])   // truncated payload
	f.Add(ping[:2])             // truncated header
	f.Add([]byte{})

	// Hostile length prefixes: huge, and huge-with-tiny-payload.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], 0xFFFFFFFF)
	f.Add(huge[:])
	f.Add(append(huge[:], []byte("<msg/>")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		m, err := ReadFrame(r)
		if err != nil {
			if len(data) >= frameHeader {
				if n := binary.BigEndian.Uint32(data[:frameHeader]); n > xmlcmd.MaxFrame && !errors.Is(err, xmlcmd.ErrFrameTooLarge) {
					t.Fatalf("oversized length prefix %d rejected with %v, want ErrFrameTooLarge", n, err)
				}
			}
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("ReadFrame accepted an invalid message: %v", verr)
		}
		// A successfully read frame must round-trip through the writer.
		var buf bytes.Buffer
		if werr := WriteFrame(&buf, m); werr != nil {
			t.Fatalf("read frame does not re-write: %v", werr)
		}
	})
}
