package bus

import (
	"math/rand"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// echoComp becomes ready instantly and records everything it receives.
type echoComp struct {
	received []*xmlcmd.Message
}

func (e *echoComp) Start(ctx proc.Context) { ctx.After(0, ctx.Ready) }
func (e *echoComp) Receive(ctx proc.Context, m *xmlcmd.Message) {
	e.received = append(e.received, m)
	if m.Kind() == xmlcmd.KindPing {
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}

type rig struct {
	k   *sim.Kernel
	mgr *proc.Manager
	bus *Sim
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.New(5)
	mgr := proc.NewManager(clock.Sim{K: k}, rand.New(rand.NewSource(2)), trace.NewLog())
	b := NewSim(clock.Sim{K: k}, mgr, "mbus")
	mgr.SetTransport(b)
	if err := mgr.Register("mbus", BrokerHandler(100*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mgr: mgr, bus: b}
}

func (r *rig) addEcho(t *testing.T, name string) *echoComp {
	t.Helper()
	e := &echoComp{}
	if err := r.mgr.Register(name, func() proc.Handler { return e }); err != nil {
		t.Fatal(err)
	}
	return e
}

func (r *rig) startAll(t *testing.T) {
	t.Helper()
	if err := r.mgr.StartBatch(r.mgr.Names()); err != nil {
		t.Fatal(err)
	}
	if err := r.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTwoHopRouting(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	r.bus.Send(xmlcmd.NewEvent("b", "a", 1, "hello", ""))
	_ = r.k.RunFor(time.Second)
	if len(a.received) != 1 || a.received[0].Event.Name != "hello" {
		t.Fatalf("a received %v", a.received)
	}
	if r.bus.Stats().Delivered != 1 {
		t.Fatalf("stats = %+v", r.bus.Stats())
	}
}

func TestRoutingLatencyIsTwoHops(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	r.bus.Latency = 50 * time.Millisecond
	start := r.k.Now()
	r.bus.Send(xmlcmd.NewEvent("b", "a", 1, "x", ""))
	_ = r.k.RunWhile(func() bool { return len(a.received) == 0 })
	if got := r.k.Now().Sub(start); got != 100*time.Millisecond {
		t.Fatalf("delivery took %v, want 100ms (two hops)", got)
	}
}

func TestBrokerDownDropsTraffic(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	if err := r.mgr.Kill("mbus", "test kill"); err != nil {
		t.Fatal(err)
	}
	r.bus.Send(xmlcmd.NewEvent("b", "a", 1, "lost", ""))
	_ = r.k.RunFor(time.Second)
	if len(a.received) != 0 {
		t.Fatal("message delivered through dead broker")
	}
	if r.bus.Stats().DroppedBroker != 1 {
		t.Fatalf("stats = %+v", r.bus.Stats())
	}
}

func TestBrokerStartingDropsTraffic(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	_ = r.mgr.Restart([]string{"mbus"}) // broker back to Starting
	r.bus.Send(xmlcmd.NewEvent("b", "a", 1, "lost", ""))
	_ = r.k.RunFor(10 * time.Millisecond)
	if len(a.received) != 0 {
		t.Fatal("message delivered through starting broker")
	}
}

func TestMessagesToBrokerAreSingleHop(t *testing.T) {
	r := newRig(t)
	fd := r.addEcho(t, "fd")
	r.startAll(t)
	r.bus.Send(xmlcmd.NewPing("fd", "mbus", 1, 9))
	_ = r.k.RunFor(time.Second)
	if len(fd.received) != 1 || fd.received[0].Kind() != xmlcmd.KindPong {
		t.Fatalf("fd received %v", fd.received)
	}
	if fd.received[0].Pong.Nonce != 9 {
		t.Fatal("broker pong nonce mismatch")
	}
}

func TestBrokerNotReadyIgnoresPing(t *testing.T) {
	r := newRig(t)
	fd := r.addEcho(t, "fd")
	r.startAll(t)
	_ = r.mgr.Restart([]string{"mbus"})
	// Ping while broker is starting: delivered to handler but unanswered.
	r.bus.Send(xmlcmd.NewPing("fd", "mbus", 2, 1))
	_ = r.k.RunFor(20 * time.Millisecond)
	if len(fd.received) != 0 {
		t.Fatal("starting broker answered a ping")
	}
}

func TestDirectLinkBypassesBroker(t *testing.T) {
	r := newRig(t)
	fd := r.addEcho(t, "fd")
	r.addEcho(t, "rec")
	r.bus.AddDirectLink("fd", "rec")
	r.startAll(t)
	_ = r.mgr.Kill("mbus", "broker down")
	r.bus.Send(xmlcmd.NewEvent("rec", "fd", 1, "report", ""))
	_ = r.k.RunFor(time.Second)
	if len(fd.received) != 1 {
		t.Fatal("direct link message lost while broker down")
	}
	if r.bus.Stats().DirectSent != 1 {
		t.Fatalf("stats = %+v", r.bus.Stats())
	}
}

func TestDeadDestinationDrops(t *testing.T) {
	r := newRig(t)
	r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	_ = r.mgr.Kill("a", "dead dest")
	r.bus.Send(xmlcmd.NewEvent("b", "a", 1, "x", ""))
	_ = r.k.RunFor(time.Second)
	if r.bus.Stats().DroppedDest != 1 {
		t.Fatalf("stats = %+v", r.bus.Stats())
	}
}

func TestPingPongRoundTripOverBus(t *testing.T) {
	r := newRig(t)
	fd := r.addEcho(t, "fd")
	r.addEcho(t, "rtu")
	r.startAll(t)
	r.bus.Send(xmlcmd.NewPing("fd", "rtu", 5, 123))
	_ = r.k.RunFor(time.Second)
	if len(fd.received) != 1 || fd.received[0].Pong == nil || fd.received[0].Pong.Nonce != 123 {
		t.Fatalf("fd received %v", fd.received)
	}
}

// quietComp becomes ready instantly and never replies — so Send alloc
// measurements see only the fabric, not handler responses.
type quietComp struct{}

func (quietComp) Start(ctx proc.Context)                { ctx.After(0, ctx.Ready) }
func (quietComp) Receive(proc.Context, *xmlcmd.Message) {}

// TestSendAllocsRouted pins the closure-free routing path: once the
// delivery-event pool and kernel arena are warm, a routed Send (two hops
// through the broker) plus its delivery allocates nothing.
func TestSendAllocsRouted(t *testing.T) {
	k := sim.New(5)
	mgr := proc.NewManager(clock.Sim{K: k}, rand.New(rand.NewSource(2)), trace.NewLog())
	b := NewSim(clock.Sim{K: k}, mgr, "mbus")
	mgr.SetTransport(b)
	if err := mgr.Register("mbus", BrokerHandler(100*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("a", func() proc.Handler { return quietComp{} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.StartBatch(mgr.Names()); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	m := xmlcmd.NewEvent("b", "a", 1, "x", "")
	warm := func() {
		b.Send(m)
		if err := k.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		warm()
	}
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("routed Send allocates %.1f objects/op, want 0", allocs)
	}
	if b.Stats().Delivered == 0 {
		t.Fatal("no message delivered; the measurement is vacuous")
	}
}

// TestSendAllocsDirect pins the same property for dedicated-link traffic.
func TestSendAllocsDirect(t *testing.T) {
	k := sim.New(5)
	mgr := proc.NewManager(clock.Sim{K: k}, rand.New(rand.NewSource(2)), trace.NewLog())
	b := NewSim(clock.Sim{K: k}, mgr, "mbus")
	mgr.SetTransport(b)
	if err := mgr.Register("fd", func() proc.Handler { return quietComp{} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("rec", func() proc.Handler { return quietComp{} }); err != nil {
		t.Fatal(err)
	}
	b.AddDirectLink("fd", "rec")
	if err := mgr.StartBatch(mgr.Names()); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	m := xmlcmd.NewEvent("rec", "fd", 1, "report", "")
	warm := func() {
		b.Send(m)
		if err := k.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		warm()
	}
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("direct-link Send allocates %.1f objects/op, want 0", allocs)
	}
}

// TestBrokerDropReleasesEvent exercises the pool's broker-drop path: a
// message lost at a dead broker must return its delivery event to the pool
// (steady-state drops allocate nothing either).
func TestBrokerDropReleasesEvent(t *testing.T) {
	r := newRig(t)
	r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	if err := r.mgr.Kill("mbus", "test kill"); err != nil {
		t.Fatal(err)
	}
	m := xmlcmd.NewEvent("b", "a", 1, "lost", "")
	warm := func() {
		r.bus.Send(m)
		if err := r.k.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		warm()
	}
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("dropped Send allocates %.1f objects/op, want 0", allocs)
	}
	if got := r.bus.Stats().DroppedBroker; got == 0 {
		t.Fatal("no broker drops recorded; the measurement is vacuous")
	}
}

// BenchmarkSendRouted measures the two-hop fabric path end to end.
func BenchmarkSendRouted(b *testing.B) {
	k := sim.New(5)
	mgr := proc.NewManager(clock.Sim{K: k}, rand.New(rand.NewSource(2)), trace.NewLog())
	bus := NewSim(clock.Sim{K: k}, mgr, "mbus")
	mgr.SetTransport(bus)
	if err := mgr.Register("mbus", BrokerHandler(100*time.Millisecond)); err != nil {
		b.Fatal(err)
	}
	if err := mgr.Register("a", func() proc.Handler { return quietComp{} }); err != nil {
		b.Fatal(err)
	}
	if err := mgr.StartBatch(mgr.Names()); err != nil {
		b.Fatal(err)
	}
	if err := k.RunFor(time.Second); err != nil {
		b.Fatal(err)
	}
	m := xmlcmd.NewEvent("b", "a", 1, "x", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Send(m)
		if err := k.RunFor(20 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendDirect measures the dedicated-link path.
func BenchmarkSendDirect(b *testing.B) {
	k := sim.New(5)
	mgr := proc.NewManager(clock.Sim{K: k}, rand.New(rand.NewSource(2)), trace.NewLog())
	bus := NewSim(clock.Sim{K: k}, mgr, "mbus")
	mgr.SetTransport(bus)
	if err := mgr.Register("fd", func() proc.Handler { return quietComp{} }); err != nil {
		b.Fatal(err)
	}
	if err := mgr.Register("rec", func() proc.Handler { return quietComp{} }); err != nil {
		b.Fatal(err)
	}
	bus.AddDirectLink("fd", "rec")
	if err := mgr.StartBatch(mgr.Names()); err != nil {
		b.Fatal(err)
	}
	if err := k.RunFor(time.Second); err != nil {
		b.Fatal(err)
	}
	m := xmlcmd.NewEvent("rec", "fd", 1, "report", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Send(m)
		if err := k.RunFor(20 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}
