package bus

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// lockedBuffer is an io.Writer the batch writer's goroutine can share with
// the test goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// chunkRecorder records each Write as one chunk, optionally gating every
// write on a token so tests can stall the writer deliberately.
type chunkRecorder struct {
	mu     sync.Mutex
	chunks [][]byte
	gate   chan struct{} // nil = never stall
}

func (r *chunkRecorder) Write(p []byte) (int, error) {
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.chunks = append(r.chunks, append([]byte(nil), p...))
	return len(p), nil
}

func (r *chunkRecorder) chunkCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.chunks)
}

func (r *chunkRecorder) all() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []byte
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	return out
}

// decodeStream decodes a concatenation of length-prefixed frames.
func decodeStream(t *testing.T, data []byte) []*xmlcmd.Message {
	t.Helper()
	var out []*xmlcmd.Message
	var fr FrameReader
	r := bytes.NewReader(data)
	for {
		m, err := fr.ReadFrame(r)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("decode batched stream: %v", err)
		}
		out = append(out, m)
	}
}

func batchCorpus(n int) []*xmlcmd.Message {
	msgs := make([]*xmlcmd.Message, n)
	for i := range msgs {
		msgs[i] = xmlcmd.NewPing("fd", "ses", uint64(i), uint64(100+i))
	}
	return msgs
}

// TestBatchByteIdentity: a batched writer's byte stream is identical to
// the same frames written one at a time — batching is invisible on the
// wire.
func TestBatchByteIdentity(t *testing.T) {
	msgs := batchCorpus(57)

	var plain bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&plain, m); err != nil {
			t.Fatal(err)
		}
	}

	var batched lockedBuffer
	bw := NewBatchWriter(&batched, BatchConfig{})
	for _, m := range msgs {
		if err := bw.Enqueue(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), batched.Bytes()) {
		t.Fatalf("batched stream differs from unbatched: %d vs %d bytes",
			batched.buf.Len(), plain.Len())
	}
}

// TestBatchSizeFlush: with an effectively infinite deadline, reaching
// FlushBytes alone must trigger the flush.
func TestBatchSizeFlush(t *testing.T) {
	rec := &chunkRecorder{}
	bw := NewBatchWriter(rec, BatchConfig{FlushDelay: time.Hour, FlushBytes: 256})
	defer bw.Close()
	msgs := batchCorpus(64) // ~80 wire bytes each: crosses 256 well before 64 frames
	for _, m := range msgs {
		if err := bw.Enqueue(m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for rec.chunkCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("size threshold did not trigger a flush")
		}
		time.Sleep(time.Millisecond)
	}
	rec.mu.Lock()
	first := len(rec.chunks[0])
	rec.mu.Unlock()
	if first < 256 {
		t.Fatalf("size-triggered batch is %d bytes, want >= FlushBytes (256)", first)
	}
}

// TestBatchDeadlineFlush: a lone frame below the size threshold must be
// written once FlushDelay elapses — and not sooner.
func TestBatchDeadlineFlush(t *testing.T) {
	const delay = 80 * time.Millisecond
	rec := &chunkRecorder{}
	bw := NewBatchWriter(rec, BatchConfig{FlushDelay: delay, FlushBytes: 1 << 20})
	defer bw.Close()

	start := time.Now()
	if err := bw.Enqueue(xmlcmd.NewPing("fd", "ses", 1, 42)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rec.chunkCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline did not trigger a flush")
		}
		time.Sleep(time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed < delay-10*time.Millisecond {
		t.Fatalf("flushed after %v, want the frame held for ~%v", elapsed, delay)
	}
	if got := decodeStream(t, rec.all()); len(got) != 1 || got[0].Ping.Nonce != 42 {
		t.Fatalf("decoded %d frames, want the queued ping", len(got))
	}
}

// TestBatchFlushKick: an explicit Flush overrides the deadline.
func TestBatchFlushKick(t *testing.T) {
	rec := &chunkRecorder{}
	bw := NewBatchWriter(rec, BatchConfig{FlushDelay: time.Hour, FlushBytes: 1 << 20})
	defer bw.Close()
	if err := bw.Enqueue(xmlcmd.NewPing("fd", "ses", 1, 7)); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for rec.chunkCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("explicit Flush did not trigger a write")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchCloseFlushOrdering: Close drains everything still queued, in
// enqueue order, before returning — even under an hour-long deadline.
func TestBatchCloseFlushOrdering(t *testing.T) {
	rec := &chunkRecorder{}
	bw := NewBatchWriter(rec, BatchConfig{FlushDelay: time.Hour, FlushBytes: 1 << 20})
	msgs := batchCorpus(23)
	for _, m := range msgs {
		if err := bw.Enqueue(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	got := decodeStream(t, rec.all())
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d frames after Close, want %d", len(got), len(msgs))
	}
	for i, m := range got {
		if m.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d: Close flush out of order", i, m.Seq)
		}
	}
	if err := bw.Enqueue(msgs[0]); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("Enqueue after Close = %v, want ErrWriterClosed", err)
	}
}

// TestBatchBackpressureDrop: a stalled connection with the DropNewest
// policy rejects overflow frames with ErrBackpressure and counts them,
// then delivers every accepted frame in order once the stall clears.
func TestBatchBackpressureDrop(t *testing.T) {
	rec := &chunkRecorder{gate: make(chan struct{})}
	bw := NewBatchWriter(rec, BatchConfig{MaxQueue: 512, FlushBytes: 128, Policy: DropNewest})

	drops0 := M.TCPBackpressureDrops.Value()
	accepted := 0
	sawDrop := false
	for i := 0; i < 1000; i++ {
		err := bw.Enqueue(xmlcmd.NewPing("fd", "ses", uint64(i), uint64(i)))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBackpressure):
			sawDrop = true
		default:
			t.Fatal(err)
		}
	}
	if !sawDrop {
		t.Fatal("a stalled 512-byte queue accepted 1000 frames without back-pressure")
	}
	if got := M.TCPBackpressureDrops.Value(); got == drops0 {
		t.Fatal("back-pressure drops not counted")
	}
	// Unstall: every accepted frame must come out, in order.
	close(rec.gate)
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	got := decodeStream(t, rec.all())
	if len(got) != accepted {
		t.Fatalf("delivered %d frames, accepted %d", len(got), accepted)
	}
	last := -1
	for _, m := range got {
		if int(m.Seq) <= last {
			t.Fatalf("frames reordered: seq %d after %d", m.Seq, last)
		}
		last = int(m.Seq)
	}
}

// TestBatchBackpressureBlock: under the Block policy a full queue makes
// Enqueue wait until the writer drains instead of dropping.
func TestBatchBackpressureBlock(t *testing.T) {
	rec := &chunkRecorder{gate: make(chan struct{}, 1)}
	bw := NewBatchWriter(rec, BatchConfig{MaxQueue: 512, FlushBytes: 128, Policy: Block})
	defer bw.Close()

	done := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; i < 50; i++ {
			if err := bw.Enqueue(xmlcmd.NewPing("fd", "ses", uint64(i), uint64(i))); err != nil {
				break
			}
			n++
		}
		done <- n
	}()
	select {
	case n := <-done:
		t.Fatalf("50 frames fit a stalled 512-byte queue (%d accepted): Block did not block", n)
	case <-time.After(200 * time.Millisecond):
		// Blocked, as it should be.
	}
	// Admit writes: the blocked sender must finish all 50 frames.
	go func() {
		for {
			select {
			case rec.gate <- struct{}{}:
			case <-bw.done:
				return
			}
		}
	}()
	select {
	case n := <-done:
		if n != 50 {
			t.Fatalf("sender finished only %d/50 frames", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sender still blocked after the writer drained")
	}
}

// TestBatchWriteErrorPropagates: after the connection fails, Enqueue and
// Close report the terminal error instead of buffering into the void.
func TestBatchWriteErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("wire torn")
	bw := NewBatchWriter(writerFunc(func(p []byte) (int, error) { return 0, boom }), BatchConfig{})
	_ = bw.Enqueue(xmlcmd.NewPing("fd", "ses", 1, 1))
	deadline := time.Now().Add(5 * time.Second)
	for bw.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("write error never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := bw.Enqueue(xmlcmd.NewPing("fd", "ses", 2, 2)); !errors.Is(err, boom) {
		t.Fatalf("Enqueue after failure = %v, want the write error", err)
	}
	if err := bw.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the write error", err)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestBatchConcurrentSenders: many goroutines share one writer; each
// goroutine's frames stay in its enqueue order. Run with -race.
func TestBatchConcurrentSenders(t *testing.T) {
	const senders, per = 8, 200
	var buf lockedBuffer
	bw := NewBatchWriter(&buf, BatchConfig{FlushBytes: 1024})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			from := fmt.Sprintf("c%d", s)
			for i := 0; i < per; i++ {
				if err := bw.Enqueue(xmlcmd.NewPing(from, "sink", uint64(i), uint64(i))); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	got := decodeStream(t, buf.Bytes())
	if len(got) != senders*per {
		t.Fatalf("decoded %d frames, want %d", len(got), senders*per)
	}
	next := map[string]uint64{}
	for _, m := range got {
		if m.Seq != next[m.From] {
			t.Fatalf("sender %s: frame seq %d arrived, want %d (per-sender order broken)",
				m.From, m.Seq, next[m.From])
		}
		next[m.From]++
	}
}
