package bus

import (
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// countingRecycler records every message handed back by the fabric.
type countingRecycler struct {
	recycled []*xmlcmd.Message
}

func (c *countingRecycler) RecycleMessage(m *xmlcmd.Message) {
	c.recycled = append(c.recycled, m)
}

func (c *countingRecycler) msg(from, to string, seq uint64) *xmlcmd.Message {
	m := xmlcmd.NewEvent(from, to, seq, "probe", "")
	m.Owner = c
	return m
}

// TestRecycleOnDelivery: a delivered owned message comes back exactly once,
// after the handler ran.
func TestRecycleOnDelivery(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)

	var rec countingRecycler
	r.bus.Send(rec.msg("b", "a", 1))
	_ = r.k.RunFor(time.Second)

	if len(a.received) != 1 {
		t.Fatalf("a received %d messages", len(a.received))
	}
	if len(rec.recycled) != 1 || rec.recycled[0] != a.received[0] {
		t.Fatalf("recycled %v, want the delivered message once", rec.recycled)
	}
}

// TestRecycleOnBrokerDrop: a message lost at a dead broker is still
// returned to its owner.
func TestRecycleOnBrokerDrop(t *testing.T) {
	r := newRig(t)
	r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	_ = r.mgr.Kill("mbus", "test kill")

	var rec countingRecycler
	r.bus.Send(rec.msg("b", "a", 1))
	_ = r.k.RunFor(time.Second)

	if r.bus.Stats().DroppedBroker != 1 {
		t.Fatalf("stats = %+v", r.bus.Stats())
	}
	if len(rec.recycled) != 1 {
		t.Fatalf("recycled %d, want 1 (dropped message must come back)", len(rec.recycled))
	}
}

// TestRecycleUnderChaos: with loss and duplication the fabric must return
// every owned message exactly once — never zero (pool leak), never twice
// (aliasing corruption) — regardless of how many copies were in flight.
func TestRecycleUnderChaos(t *testing.T) {
	r := newRig(t)
	r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	r.bus.SetChaos(&ChaosProfile{
		Loss:   0.3,
		Dup:    0.3,
		Jitter: fault.Uniform{Lo: 0, Hi: 2 * time.Millisecond},
	})

	var rec countingRecycler
	const n = 2000
	sent := make(map[*xmlcmd.Message]bool, n)
	for i := 0; i < n; i++ {
		m := rec.msg("b", "a", uint64(i))
		sent[m] = true
		r.bus.Send(m)
		_ = r.k.RunFor(time.Millisecond)
	}
	_ = r.k.RunFor(time.Second)

	if len(rec.recycled) != n {
		t.Fatalf("recycled %d of %d owned messages", len(rec.recycled), n)
	}
	seen := make(map[*xmlcmd.Message]bool, n)
	for _, m := range rec.recycled {
		if !sent[m] {
			t.Fatal("recycled a message the owner never sent")
		}
		if seen[m] {
			t.Fatal("message recycled twice")
		}
		seen[m] = true
	}
	if len(r.bus.extraRefs) != 0 {
		t.Fatalf("extraRefs not drained: %d entries", len(r.bus.extraRefs))
	}
	st := r.bus.Stats()
	if st.Duplicated == 0 || st.DroppedChaos == 0 {
		t.Fatalf("chaos did not engage: %+v", st)
	}
}

// TestUnownedMessagesUnaffected: messages without an owner flow exactly as
// before — no recycler calls, no refcount entries.
func TestUnownedMessagesUnaffected(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	r.bus.SetChaos(&ChaosProfile{Dup: 0.5})
	for i := 0; i < 100; i++ {
		r.bus.Send(xmlcmd.NewEvent("b", "a", uint64(i), "x", ""))
	}
	_ = r.k.RunFor(time.Second)
	if len(a.received) < 100 {
		t.Fatalf("a received %d", len(a.received))
	}
	if len(r.bus.extraRefs) != 0 {
		t.Fatalf("extraRefs leaked %d entries for unowned traffic", len(r.bus.extraRefs))
	}
}
