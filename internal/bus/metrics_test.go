package bus

import (
	"strings"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/obs"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// snapshotSim reads the process-wide sim counters (other tests increment
// them too, so assertions work on deltas).
type simSnapshot struct {
	sent, delivered, dropBroker, dropDest, dropChaos, dup uint64
}

func takeSimSnapshot() simSnapshot {
	return simSnapshot{
		sent:       M.SimFramesSent.Value(),
		delivered:  M.SimFramesDelivered.Value(),
		dropBroker: M.SimDroppedBroker.Value(),
		dropDest:   M.SimDroppedDest.Value(),
		dropChaos:  M.SimDroppedChaos.Value(),
		dup:        M.SimDuplicated.Value(),
	}
}

// TestSimMetricsMirrorStats pins that the process-wide counters move in
// lockstep with the per-fabric Stats struct across routed deliveries,
// broker-down drops and chaos losses.
func TestSimMetricsMirrorStats(t *testing.T) {
	before := takeSimSnapshot()
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)

	r.bus.Send(xmlcmd.NewEvent("b", "a", 1, "hello", ""))
	_ = r.k.RunFor(time.Second)
	if len(a.received) != 1 {
		t.Fatalf("a received %d", len(a.received))
	}

	// Broker down: the next routed send is lost at the broker hop.
	if err := r.mgr.Kill("mbus", "test"); err != nil {
		t.Fatal(err)
	}
	r.bus.Send(xmlcmd.NewEvent("b", "a", 2, "lost", ""))
	_ = r.k.RunFor(time.Second)

	// Chaos loss on a direct link.
	r.bus.AddDirectLink("fd", "rec")
	r.bus.SetLinkChaos("fd", "rec", &ChaosProfile{Loss: 0.999999999})
	r.bus.Send(xmlcmd.NewEvent("fd", "rec", 3, "doomed", ""))
	_ = r.k.RunFor(time.Second)

	after := takeSimSnapshot()
	st := r.bus.Stats()
	if got := after.sent - before.sent; got != uint64(st.Sent) {
		t.Errorf("SimFramesSent delta = %d, Stats.Sent = %d", got, st.Sent)
	}
	if got := after.delivered - before.delivered; got != uint64(st.Delivered) {
		t.Errorf("SimFramesDelivered delta = %d, Stats.Delivered = %d", got, st.Delivered)
	}
	if got := after.dropBroker - before.dropBroker; got != uint64(st.DroppedBroker) {
		t.Errorf("SimDroppedBroker delta = %d, Stats.DroppedBroker = %d", got, st.DroppedBroker)
	}
	if got := after.dropChaos - before.dropChaos; got != uint64(st.DroppedChaos) {
		t.Errorf("SimDroppedChaos delta = %d, Stats.DroppedChaos = %d", got, st.DroppedChaos)
	}
	if st.DroppedBroker == 0 || st.DroppedChaos == 0 {
		t.Errorf("test did not exercise both drop paths: %+v", st)
	}
}

// TestLinkDiscards pins the per-hop chaos discard ledger.
func TestLinkDiscards(t *testing.T) {
	r := newRig(t)
	r.addEcho(t, "fd")
	r.addEcho(t, "rec")
	r.bus.AddDirectLink("fd", "rec")
	r.startAll(t)
	r.bus.SetLinkChaos("fd", "rec", &ChaosProfile{Loss: 0.999999999})
	for i := 0; i < 5; i++ {
		r.bus.Send(xmlcmd.NewEvent("fd", "rec", uint64(i), "doomed", ""))
	}
	_ = r.k.RunFor(time.Second)
	d := r.bus.LinkDiscards()
	if d["fd->rec"] != 5 {
		t.Fatalf("LinkDiscards = %v, want fd->rec: 5", d)
	}
}

// TestRegisterMetricsRenders pins that every bus family renders under an
// obs registry (name collisions or type conflicts would panic here).
func TestRegisterMetricsRenders(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	M.TCPShardFrames.With("0") // materialise one shard label
	var sb strings.Builder
	if _, err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mercury_bus_sim_frames_sent_total",
		`mercury_bus_sim_dropped_total{cause="chaos-loss"}`,
		`mercury_bus_tcp_frames_total{dir="out"}`,
		"mercury_bus_tcp_connections",
		`mercury_bus_shard_frames_total{shard="0"}`,
		`mercury_bus_shard_batch_frames_bucket{le="+Inf"}`,
		"mercury_bus_shard_queue_bytes",
		"mercury_bus_shard_backpressure_drops_total",
		`mercury_bus_tcp_reconnect_queue_total{outcome="queued"}`,
		`mercury_bus_tcp_reconnect_queue_total{outcome="dropped"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}
