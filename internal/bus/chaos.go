package bus

import (
	"fmt"

	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file is the bus chaos layer: a seeded, deterministic model of a
// *degraded* (rather than dead) network. The paper's failure model is
// clean fail-silent over a perfect mbus; real fabrics lose, delay and
// duplicate frames without any component being at fault. The chaos layer
// wraps every physical hop of the simulated fabric with a per-link
// ChaosProfile so experiments can measure how the detection/recovery
// stack behaves as channel quality degrades.
//
// Determinism: all chaos draws come from the process manager's RNG — the
// same stream every other simulated decision uses — and happen on the
// single kernel dispatch context, so a seeded trial is bit-identical run
// to run (and across the parallel runner). When no profile is installed
// the delivery path takes the exact pre-chaos schedule with zero extra
// RNG draws and zero allocations, which is what keeps the Table 2/4
// golden traces byte-identical.

// ChaosProfile describes one link's degradation. The zero value is a
// perfect link.
type ChaosProfile struct {
	// Loss is the per-hop probability a frame is silently dropped.
	// A routed message crosses two hops (sender→mbus, mbus→dest) and is
	// exposed twice; dedicated-link traffic crosses one.
	Loss float64
	// Dup is the per-hop probability a frame is delivered twice (e.g. a
	// retransmission whose original was not actually lost). Each copy is
	// then subject to Loss and Jitter independently.
	Dup float64
	// Jitter, when non-nil, adds a sampled extra delay to the hop's base
	// Latency. Because each frame samples independently, a large jitter
	// reorders frames — the bus makes no FIFO promise under chaos.
	Jitter fault.Law
}

// active reports whether the profile perturbs anything.
func (p *ChaosProfile) active() bool {
	return p != nil && (p.Loss > 0 || p.Dup > 0 || p.Jitter != nil)
}

// Validate rejects probabilities outside [0, 1).
func (p *ChaosProfile) Validate() error {
	if p == nil {
		return nil
	}
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("bus: chaos loss %v outside [0, 1)", p.Loss)
	}
	if p.Dup < 0 || p.Dup >= 1 {
		return fmt.Errorf("bus: chaos dup %v outside [0, 1)", p.Dup)
	}
	return nil
}

// linkKey identifies one directed physical hop.
type linkKey struct {
	from, to string
}

// SetChaos installs (or, with nil, clears) the fabric-wide default
// profile. It applies to every hop without a per-link override.
func (b *Sim) SetChaos(p *ChaosProfile) {
	if !p.active() {
		p = nil
	}
	b.chaosDefault = p
}

// SetLinkChaos overrides the profile for one directed hop (from → to).
// The broker leg of a routed message uses the sender→broker and
// broker→destination hops. A nil profile pins the hop clean even when a
// fabric-wide default is installed.
func (b *Sim) SetLinkChaos(from, to string, p *ChaosProfile) {
	if b.chaosLinks == nil {
		b.chaosLinks = make(map[linkKey]*ChaosProfile)
	}
	b.chaosLinks[linkKey{from, to}] = p
}

// chaosFor resolves the profile governing one hop. Must not allocate:
// it sits on the zero-alloc Send fast path.
func (b *Sim) chaosFor(from, to string) *ChaosProfile {
	if b.chaosLinks != nil {
		if p, ok := b.chaosLinks[linkKey{from, to}]; ok {
			return p
		}
	}
	return b.chaosDefault
}

// sendHop schedules one physical hop of a message, applying the link's
// chaos profile. With no profile the hop is the historical clean path:
// one pooled delivery event after Latency, no RNG draws.
func (b *Sim) sendHop(m *xmlcmd.Message, hop int, from, to string) {
	p := b.chaosFor(from, to)
	if !p.active() {
		// Clean hops ride the FIFO hop queue (one kernel event total);
		// a pooled per-hop event is the fallback if the queue's sort
		// invariant would break (or no kernel clock is attached).
		if !b.queueHop(m, hop) {
			b.clk.Schedule(b.Latency, b.acquire(m, hop))
		}
		return
	}
	rng := b.mgr.Rand()
	copies := 1
	if p.Dup > 0 && rng.Float64() < p.Dup {
		copies = 2
		b.stats.Duplicated++
		b.m.dup.Inc()
	}
	scheduled := 0
	for i := 0; i < copies; i++ {
		if p.Loss > 0 && rng.Float64() < p.Loss {
			b.stats.DroppedChaos++
			b.m.dropChaos.Inc()
			b.chaosDrops[linkKey{from, to}]++
			continue
		}
		d := b.Latency
		if p.Jitter != nil {
			d += p.Jitter.Sample(rng)
		}
		b.clk.Schedule(d, b.acquire(m, hop))
		scheduled++
	}
	// Message-recycling bookkeeping: sendHop was handed one in-flight
	// obligation for m and minted `scheduled` hop chains. Zero means the
	// message dies here; two means an extra obligation outlives this call
	// and must be recorded so only the final finish recycles the envelope.
	switch scheduled {
	case 0:
		b.finish(m)
	case 2:
		if b.extraRefs == nil {
			b.extraRefs = make(map[*xmlcmd.Message]int)
		}
		b.extraRefs[m]++
	}
}
