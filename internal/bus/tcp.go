package bus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/obs"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file implements the real message bus used by the real-time runtime
// (cmd/mercuryd): a TCP broker carrying length-prefixed XML command frames
// between named clients, exactly the role mbus plays in the paper. The
// broker can be stopped and restarted — clients reconnect with backoff, so
// the fabric exhibits the same outage/recovery behaviour the simulated bus
// models. Multiple brokers compose into a sharded fabric (see shard.go);
// outbound sides batch frames through BatchWriter (see batch.go).

// Frame format: 4-byte big-endian length followed by the XML payload.
const frameHeader = 4

// readBufSize sizes the buffered readers on broker and client read loops:
// comfortably above DefaultFlushBytes, so a full batch lands in one read.
const readBufSize = 32 << 10

// TCP errors.
var (
	ErrClientClosed  = errors.New("bus: client closed")
	ErrNotRegistered = errors.New("bus: first frame must register a name")
)

// FrameWriter frames messages onto a stream, composing the length header
// and XML payload in one reusable scratch buffer so each frame costs a
// single Write call and, in steady state, zero allocations. A FrameWriter
// is owned by one connection and is not safe for concurrent use; callers
// serialise. Connection send paths batch through BatchWriter instead; the
// FrameWriter remains for one-shot frames (registration, tests, the
// unbatched benchmark baseline).
type FrameWriter struct {
	buf []byte
	sh  uint64 // metrics shard index; 0 = not yet assigned
}

// WriteFrame encodes m and writes it to w as one length-prefixed frame.
func (fw *FrameWriter) WriteFrame(w io.Writer, m *xmlcmd.Message) error {
	if cap(fw.buf) < frameHeader {
		fw.buf = make([]byte, frameHeader, 512)
	}
	buf, err := xmlcmd.AppendEncode(fw.buf[:frameHeader], m)
	if err != nil {
		return err
	}
	fw.buf = buf
	binary.BigEndian.PutUint32(buf[:frameHeader], uint32(len(buf)-frameHeader))
	_, err = w.Write(buf)
	if err == nil {
		if fw.sh == 0 {
			fw.sh = nextShard()
		}
		M.TCPFramesOut.Shard(fw.sh).Inc()
		M.TCPBytesOut.Shard(fw.sh).Add(uint64(len(buf)))
	}
	return err
}

// FrameReader reads length-prefixed frames from a stream, reusing one
// payload buffer across frames. Decoded messages never alias the payload
// buffer (the codec copies every string), so the buffer can be reused even
// when messages outlive the read call. A FrameReader is owned by one
// connection's read loop and is not safe for concurrent use.
type FrameReader struct {
	hdr     [frameHeader]byte
	payload []byte
	sh      uint64 // metrics shard index; 0 = not yet assigned
}

// ReadFrameInto reads one frame and decodes it into m, reusing both the
// reader's payload buffer and m's decode scratch. Suited to synchronous
// consumers like the broker's route loop, which is done with m before the
// next read; callers that hand messages off asynchronously must use
// ReadFrame so each frame gets a fresh message.
func (fr *FrameReader) ReadFrameInto(r io.Reader, m *xmlcmd.Message) error {
	if _, err := io.ReadFull(r, fr.hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:])
	if n > xmlcmd.MaxFrame {
		return xmlcmd.ErrFrameTooLarge
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	payload := fr.payload[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if fr.sh == 0 {
		fr.sh = nextShard()
	}
	M.TCPFramesIn.Shard(fr.sh).Inc()
	M.TCPBytesIn.Shard(fr.sh).Add(uint64(frameHeader) + uint64(n))
	return xmlcmd.DecodeInto(payload, m)
}

// ReadFrame reads one frame into a fresh message, reusing only the payload
// buffer. The returned message is safe to retain and hand to other
// goroutines.
func (fr *FrameReader) ReadFrame(r io.Reader) (*xmlcmd.Message, error) {
	m := new(xmlcmd.Message)
	if err := fr.ReadFrameInto(r, m); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteFrame writes one length-prefixed message. Convenience wrapper over
// a throwaway FrameWriter for one-shot callers; connection loops hold a
// FrameWriter to amortise the buffer.
func WriteFrame(w io.Writer, m *xmlcmd.Message) error {
	var fw FrameWriter
	return fw.WriteFrame(w, m)
}

// ReadFrame reads one length-prefixed message. Convenience wrapper over a
// throwaway FrameReader; connection loops hold a FrameReader to amortise
// the buffers.
func ReadFrame(r io.Reader) (*xmlcmd.Message, error) {
	var fr FrameReader
	return fr.ReadFrame(r)
}

// registerCommand is the client's first frame.
const registerCommand = "register"

// BrokerConfig tunes one broker (or broker shard).
type BrokerConfig struct {
	// Batch configures every connection's outbound send queue. The
	// broker's policy should stay DropNewest (the ListenBroker default):
	// one stalled reader must never wedge routing for other destinations.
	Batch BatchConfig
	// Shard is this broker's shard index, used as the metrics label on
	// the mercury_bus_shard_* family. 0 for an unsharded broker.
	Shard int
}

// TCPBroker is the mbus broker: it accepts client connections, each
// opening with a register frame naming its bus address, and routes every
// subsequent frame to the connection registered under the frame's To
// address. Unroutable frames are dropped silently (fail-silent fabric);
// frames to a stalled destination are bounded by that connection's send
// queue, not by the sender.
//
// The registry is a sync.Map: routing is read-mostly (registrations are
// rare, routed frames are the hot path), so concurrent senders resolve
// destinations without serialising on a broker-wide lock, and each
// destination's writes serialise only on its own BatchWriter.
type TCPBroker struct {
	ln  net.Listener
	cfg BrokerConfig

	conns  sync.Map // name → *brokerConn
	nconns atomic.Int64

	// routed counts frames this broker forwarded, labelled by shard index.
	routed *obs.Counter

	mu     sync.Mutex // lifecycle only: closed flag vs. new registrations
	closed bool
	wg     sync.WaitGroup
}

// brokerConn pairs a registered client connection with its batching send
// queue. Routed frames enqueue here and a per-connection writer goroutine
// coalesces them into single Write calls.
type brokerConn struct {
	conn net.Conn
	bw   *BatchWriter
}

// ListenBroker starts a broker on addr (use "127.0.0.1:0" for an ephemeral
// port) with the default drop-on-backpressure batching config.
func ListenBroker(addr string) (*TCPBroker, error) {
	return ListenBrokerConfig(addr, BrokerConfig{Batch: BatchConfig{Policy: DropNewest}})
}

// ListenBrokerConfig starts a broker with explicit batching/back-pressure
// tuning.
func ListenBrokerConfig(addr string, cfg BrokerConfig) (*TCPBroker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen: %w", err)
	}
	b := &TCPBroker{
		ln:     ln,
		cfg:    cfg,
		routed: M.TCPShardFrames.With(strconv.Itoa(cfg.Shard)),
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *TCPBroker) Addr() string { return b.ln.Addr().String() }

// Close shuts the broker down and disconnects every client.
func (b *TCPBroker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	err := b.ln.Close()
	b.mu.Unlock()
	// Closing the connections unblocks every serve loop; each cleans up
	// its own registry entry and batch writer.
	b.conns.Range(func(_, v any) bool {
		_ = v.(*brokerConn).conn.Close()
		return true
	})
	b.wg.Wait()
	return err
}

func (b *TCPBroker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serve(conn)
	}
}

// serve handles one client connection. The read side owns one FrameReader
// and one Message for the connection's lifetime: route() hands the frame
// to the destination's send queue, which copies it into the batch buffer
// before returning, so the buffers are safe to reuse for the next frame.
func (b *TCPBroker) serve(conn net.Conn) {
	defer b.wg.Done()
	var fr FrameReader
	// Buffer the read side: peers write whole batches, so one kernel read
	// typically yields many frames instead of two reads per frame.
	br := bufio.NewReaderSize(conn, readBufSize)
	// Registration.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	first, err := fr.ReadFrame(br)
	if err != nil || first.Kind() != xmlcmd.KindCommand || first.Command.Name != registerCommand {
		_ = conn.Close()
		return
	}
	name := first.From
	_ = conn.SetReadDeadline(time.Time{})

	bc := &brokerConn{conn: conn, bw: NewBatchWriter(conn, b.cfg.Batch)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = bc.bw.Close()
		_ = conn.Close()
		return
	}
	if old, loaded := b.conns.Swap(name, bc); loaded {
		// A reconnecting client replaces its old session; the old serve
		// loop wakes on the closed connection and tears itself down.
		_ = old.(*brokerConn).conn.Close()
	} else {
		M.TCPConnections.Set(b.nconns.Add(1))
	}
	M.TCPRegistrations.Inc()
	b.mu.Unlock()

	routed := b.routed.Shard(nextShard())
	var m xmlcmd.Message
	for {
		if err := fr.ReadFrameInto(br, &m); err != nil {
			break
		}
		b.route(&m, routed)
	}

	if b.conns.CompareAndDelete(name, bc) {
		M.TCPConnections.Set(b.nconns.Add(-1))
	}
	_ = bc.bw.Close()
	_ = conn.Close()
}

// route forwards a frame to its destination's send queue, dropping it if
// the destination has no live connection. No broker-wide lock is held:
// concurrent senders to different destinations proceed independently, and
// senders to one destination contend only on that queue's mutex.
func (b *TCPBroker) route(m *xmlcmd.Message, routed *obs.CounterShard) {
	v, ok := b.conns.Load(m.To)
	if !ok {
		M.TCPRouteDrops.Inc()
		return
	}
	routed.Inc()
	// Back-pressure drops are counted by the queue; write errors are
	// surfaced by the destination's own read loop. Fail-silent either way.
	_ = v.(*brokerConn).bw.Enqueue(m)
}

// ClientNames lists currently registered clients (for tests/ops).
func (b *TCPBroker) ClientNames() []string {
	var out []string
	b.conns.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	return out
}

// Client defaults.
const (
	// DefaultReconnectQueue bounds the bytes of encoded frames a client
	// parks while its broker is away. 64 KiB ≈ 800 typical frames: enough
	// to ride out a broker restart, small enough that a dead shard cannot
	// balloon every sender.
	DefaultReconnectQueue = 64 << 10
)

// ClientConfig tunes one client connection.
type ClientConfig struct {
	// Batch configures the outbound send queue. The client default policy
	// is Block: a slow broker throttles the sender, matching the old
	// synchronous-write semantics.
	Batch BatchConfig
	// ReconnectQueue bounds (in bytes) the frames parked while the broker
	// is unreachable, flushed in order on reconnect. <= 0 selects
	// DefaultReconnectQueue. Overflow is dropped against
	// mercury_bus_tcp_reconnect_queue_total{outcome="dropped"}.
	ReconnectQueue int
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.ReconnectQueue <= 0 {
		c.ReconnectQueue = DefaultReconnectQueue
	}
	return c
}

// TCPClient is one component's connection to the broker. It reconnects
// with backoff when the broker goes away; frames sent meanwhile are parked
// in a bounded queue and flushed, in order, ahead of new traffic once the
// broker returns — only queue overflow is lost (counted, not silent).
type TCPClient struct {
	name  string
	addr  string
	onMsg func(*xmlcmd.Message)
	rng   *rand.Rand // backoff jitter; owned by readLoop
	cfg   ClientConfig

	mu          sync.Mutex
	conn        net.Conn
	bw          *BatchWriter // live connection's send queue; nil while disconnected
	queue       []byte       // encoded frames parked for the next reconnect
	queueFrames int
	closed      bool
	done        chan struct{} // closed by Close; unblocks the backoff wait
	wg          sync.WaitGroup

	// fw writes the registration frame during connect (under mu).
	fw FrameWriter
}

// DialBus connects and registers a client. onMsg is invoked from the read
// goroutine for every inbound frame; the caller serialises. Each frame is
// delivered as a fresh message (only the frame buffers are reused), so
// handlers may retain it or hand it to another goroutine.
func DialBus(addr, name string, onMsg func(*xmlcmd.Message)) (*TCPClient, error) {
	return DialBusConfig(addr, name, ClientConfig{}, onMsg)
}

// DialBusConfig connects with explicit batching/queue tuning.
func DialBusConfig(addr, name string, cfg ClientConfig, onMsg func(*xmlcmd.Message)) (*TCPClient, error) {
	// Seed the backoff jitter from the client name so a station's clients
	// desynchronise deterministically rather than herding the broker.
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	c := &TCPClient{
		name:  name,
		addr:  addr,
		onMsg: onMsg,
		rng:   rand.New(rand.NewSource(int64(h.Sum64()))),
		cfg:   cfg.withDefaults(),
		done:  make(chan struct{}),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// connect dials, registers, and flushes any frames parked while
// disconnected — in order, ahead of anything sent after the reconnect.
func (c *TCPClient) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, 2*time.Second)
	if err != nil {
		return err
	}
	reg := xmlcmd.NewCommand(c.name, "mbus", 0, registerCommand)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return ErrClientClosed
	}
	err = c.fw.WriteFrame(conn, reg)
	if err == nil && len(c.queue) > 0 {
		// The parked queue is already a valid frame stream; one Write
		// delivers the whole backlog as a single batch.
		_, err = conn.Write(c.queue)
		if err == nil {
			M.TCPFramesOut.Add(uint64(c.queueFrames))
			M.TCPBytesOut.Add(uint64(len(c.queue)))
			M.TCPBatchFrames.Observe(uint64(c.queueFrames))
			c.queue = c.queue[:0]
			c.queueFrames = 0
		}
	}
	if err != nil {
		c.mu.Unlock()
		_ = conn.Close()
		return err
	}
	c.conn = conn
	c.bw = NewBatchWriter(conn, c.cfg.Batch)
	c.mu.Unlock()
	return nil
}

// Send queues a frame. Delivery stays fail-silent (the bus contract), but
// failure is no longer silent *loss* at the first hop: while disconnected
// the frame is parked in the bounded reconnect queue (overflow counted in
// mercury_bus_tcp_reconnect_queue_total{outcome="dropped"}), and on a live
// connection it joins the batched send queue, whose Block policy throttles
// the caller instead of dropping.
func (c *TCPClient) Send(m *xmlcmd.Message) {
	c.mu.Lock()
	bw := c.bw
	if bw == nil {
		defer c.mu.Unlock()
		if c.closed {
			M.TCPSendDrops.Inc()
			return
		}
		if len(c.queue) >= c.cfg.ReconnectQueue {
			M.TCPReconnectDrops.Inc()
			M.TCPSendDrops.Inc()
			return
		}
		n0 := len(c.queue)
		buf, err := xmlcmd.AppendEncode(append(c.queue, 0, 0, 0, 0), m)
		if err != nil {
			c.queue = buf[:n0]
			M.TCPSendDrops.Inc()
			return
		}
		binary.BigEndian.PutUint32(buf[n0:n0+frameHeader], uint32(len(buf)-n0-frameHeader))
		c.queue = buf
		c.queueFrames++
		M.TCPReconnectQueued.Inc()
		return
	}
	c.mu.Unlock()
	if err := bw.Enqueue(m); err != nil && !errors.Is(err, ErrBackpressure) {
		// The connection failed under us: count the loss and nudge the
		// read loop into its reconnect cycle.
		M.TCPSendDrops.Inc()
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		}
	}
}

// Disconnected reports whether the client currently has no live
// connection — sends are parking in the reconnect queue. For tests and
// campaigns that must observe an outage before acting on it.
func (c *TCPClient) Disconnected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bw == nil
}

// readLoop receives frames and reconnects on failure until closed. It owns
// a FrameReader whose buffers persist across reconnects; messages handed to
// onMsg are fresh per frame because handlers (e.g. the supervisor's
// dispatcher) hand them off asynchronously.
func (c *TCPClient) readLoop() {
	defer c.wg.Done()
	var fr FrameReader
	// One buffered reader reused across reconnects: the broker writes whole
	// batches, so one kernel read typically yields many frames.
	br := bufio.NewReaderSize(nil, readBufSize)
	backoff := 100 * time.Millisecond
	for {
		c.mu.Lock()
		conn := c.conn
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if conn != nil {
			br.Reset(conn)
			for {
				m, err := fr.ReadFrame(br)
				if err != nil {
					break
				}
				backoff = 100 * time.Millisecond
				if c.onMsg != nil {
					c.onMsg(m)
				}
			}
			_ = conn.Close()
			c.mu.Lock()
			var bw *BatchWriter
			if c.conn == conn {
				c.conn = nil
				bw, c.bw = c.bw, nil
			}
			c.mu.Unlock()
			if bw != nil {
				_ = bw.Close() // queued-but-unwritten frames die with the conn
			}
		}
		// Reconnect with capped, jittered backoff. Waiting on a timer
		// instead of sleeping keeps Close responsive mid-backoff, and the
		// ±20% jitter spreads a station's clients out after a broker
		// restart instead of having them reconnect in lockstep.
		t := time.NewTimer(clock.Jitter(c.rng, backoff, 0.2))
		select {
		case <-c.done:
			t.Stop()
			return
		case <-t.C:
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
		c.mu.Lock()
		closed = c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if c.connect() == nil { // failure leaves conn nil; loop retries
			M.TCPReconnects.Inc()
		}
	}
}

// Close tears the client down, flushing the live send queue first so
// frames already queued (a one-shot tool's final command) reach the wire.
func (c *TCPClient) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	conn := c.conn
	bw := c.bw
	c.bw = nil
	c.mu.Unlock()
	if bw != nil {
		_ = bw.Close()
	}
	if conn != nil {
		_ = conn.Close()
	}
	c.wg.Wait()
}
