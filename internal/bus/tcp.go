package bus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file implements the real message bus used by the real-time runtime
// (cmd/mercuryd): a TCP broker carrying length-prefixed XML command frames
// between named clients, exactly the role mbus plays in the paper. The
// broker can be stopped and restarted — clients reconnect with backoff, so
// the fabric exhibits the same outage/recovery behaviour the simulated bus
// models.

// Frame format: 4-byte big-endian length followed by the XML payload.
const frameHeader = 4

// TCP errors.
var (
	ErrClientClosed  = errors.New("bus: client closed")
	ErrNotRegistered = errors.New("bus: first frame must register a name")
)

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, m *xmlcmd.Message) error {
	payload, err := xmlcmd.Encode(m)
	if err != nil {
		return err
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) (*xmlcmd.Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > xmlcmd.MaxFrame {
		return nil, xmlcmd.ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return xmlcmd.Decode(payload)
}

// registerCommand is the client's first frame.
const registerCommand = "register"

// TCPBroker is the mbus broker: it accepts client connections, each
// opening with a register frame naming its bus address, and routes every
// subsequent frame to the connection registered under the frame's To
// address. Unroutable frames are dropped silently (fail-silent fabric).
type TCPBroker struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[string]net.Conn
	closed bool
	wg     sync.WaitGroup
}

// ListenBroker starts a broker on addr (use "127.0.0.1:0" for an ephemeral
// port).
func ListenBroker(addr string) (*TCPBroker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen: %w", err)
	}
	b := &TCPBroker{ln: ln, conns: make(map[string]net.Conn)}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *TCPBroker) Addr() string { return b.ln.Addr().String() }

// Close shuts the broker down and disconnects every client.
func (b *TCPBroker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	err := b.ln.Close()
	for _, c := range b.conns {
		_ = c.Close()
	}
	b.conns = make(map[string]net.Conn)
	b.mu.Unlock()
	b.wg.Wait()
	return err
}

func (b *TCPBroker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serve(conn)
	}
}

// serve handles one client connection.
func (b *TCPBroker) serve(conn net.Conn) {
	defer b.wg.Done()
	// Registration.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	first, err := ReadFrame(conn)
	if err != nil || first.Kind() != xmlcmd.KindCommand || first.Command.Name != registerCommand {
		_ = conn.Close()
		return
	}
	name := first.From
	_ = conn.SetReadDeadline(time.Time{})

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old, ok := b.conns[name]; ok {
		_ = old.Close() // a reconnecting client replaces its old session
	}
	b.conns[name] = conn
	b.mu.Unlock()

	for {
		m, err := ReadFrame(conn)
		if err != nil {
			break
		}
		b.route(m)
	}

	b.mu.Lock()
	if b.conns[name] == conn {
		delete(b.conns, name)
	}
	b.mu.Unlock()
	_ = conn.Close()
}

// route forwards a frame to its destination, dropping it if the
// destination has no live connection.
func (b *TCPBroker) route(m *xmlcmd.Message) {
	b.mu.Lock()
	dest, ok := b.conns[m.To]
	b.mu.Unlock()
	if !ok {
		return
	}
	// Serialise writes per destination under the broker lock; broker
	// throughput is nowhere near the point where this matters for the
	// ground station's tens of messages per second.
	b.mu.Lock()
	defer b.mu.Unlock()
	if cur, ok := b.conns[m.To]; ok && cur == dest {
		_ = WriteFrame(dest, m)
	}
}

// ClientNames lists currently registered clients (for tests/ops).
func (b *TCPBroker) ClientNames() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.conns))
	for n := range b.conns {
		out = append(out, n)
	}
	return out
}

// TCPClient is one component's connection to the broker. It reconnects
// with backoff when the broker goes away, so a broker restart behaves like
// the simulated bus outage: frames sent meanwhile are silently lost.
type TCPClient struct {
	name  string
	addr  string
	onMsg func(*xmlcmd.Message)
	rng   *rand.Rand // backoff jitter; owned by readLoop

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	done   chan struct{} // closed by Close; unblocks the backoff wait
	wg     sync.WaitGroup
}

// DialBus connects and registers a client. onMsg is invoked from the read
// goroutine for every inbound frame; the caller serialises.
func DialBus(addr, name string, onMsg func(*xmlcmd.Message)) (*TCPClient, error) {
	// Seed the backoff jitter from the client name so a station's clients
	// desynchronise deterministically rather than herding the broker.
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	c := &TCPClient{
		name:  name,
		addr:  addr,
		onMsg: onMsg,
		rng:   rand.New(rand.NewSource(int64(h.Sum64()))),
		done:  make(chan struct{}),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// connect dials and registers.
func (c *TCPClient) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, 2*time.Second)
	if err != nil {
		return err
	}
	reg := xmlcmd.NewCommand(c.name, "mbus", 0, registerCommand)
	if err := WriteFrame(conn, reg); err != nil {
		_ = conn.Close()
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return ErrClientClosed
	}
	c.conn = conn
	c.mu.Unlock()
	return nil
}

// Send writes a frame. Failures are silent (the bus is fail-silent); a
// write error triggers reconnection.
func (c *TCPClient) Send(m *xmlcmd.Message) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		return
	}
	if err := WriteFrame(conn, m); err != nil {
		_ = conn.Close()
	}
}

// readLoop receives frames and reconnects on failure until closed.
func (c *TCPClient) readLoop() {
	defer c.wg.Done()
	backoff := 100 * time.Millisecond
	for {
		c.mu.Lock()
		conn := c.conn
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if conn != nil {
			for {
				m, err := ReadFrame(conn)
				if err != nil {
					break
				}
				backoff = 100 * time.Millisecond
				if c.onMsg != nil {
					c.onMsg(m)
				}
			}
			_ = conn.Close()
			c.mu.Lock()
			if c.conn == conn {
				c.conn = nil
			}
			c.mu.Unlock()
		}
		// Reconnect with capped, jittered backoff. Waiting on a timer
		// instead of sleeping keeps Close responsive mid-backoff, and the
		// ±20% jitter spreads a station's clients out after a broker
		// restart instead of having them reconnect in lockstep.
		t := time.NewTimer(clock.Jitter(c.rng, backoff, 0.2))
		select {
		case <-c.done:
			t.Stop()
			return
		case <-t.C:
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
		c.mu.Lock()
		closed = c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		_ = c.connect() // failure leaves conn nil; loop retries
	}
}

// Close tears the client down.
func (c *TCPClient) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}
