package bus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file implements the real message bus used by the real-time runtime
// (cmd/mercuryd): a TCP broker carrying length-prefixed XML command frames
// between named clients, exactly the role mbus plays in the paper. The
// broker can be stopped and restarted — clients reconnect with backoff, so
// the fabric exhibits the same outage/recovery behaviour the simulated bus
// models.

// Frame format: 4-byte big-endian length followed by the XML payload.
const frameHeader = 4

// TCP errors.
var (
	ErrClientClosed  = errors.New("bus: client closed")
	ErrNotRegistered = errors.New("bus: first frame must register a name")
)

// FrameWriter frames messages onto a stream, composing the length header
// and XML payload in one reusable scratch buffer so each frame costs a
// single Write call and, in steady state, zero allocations. A FrameWriter
// is owned by one connection and is not safe for concurrent use; callers
// serialise (the broker under its lock, the client under sendMu).
type FrameWriter struct {
	buf []byte
	sh  uint64 // metrics shard index; 0 = not yet assigned
}

// WriteFrame encodes m and writes it to w as one length-prefixed frame.
func (fw *FrameWriter) WriteFrame(w io.Writer, m *xmlcmd.Message) error {
	if cap(fw.buf) < frameHeader {
		fw.buf = make([]byte, frameHeader, 512)
	}
	buf, err := xmlcmd.AppendEncode(fw.buf[:frameHeader], m)
	if err != nil {
		return err
	}
	fw.buf = buf
	binary.BigEndian.PutUint32(buf[:frameHeader], uint32(len(buf)-frameHeader))
	_, err = w.Write(buf)
	if err == nil {
		if fw.sh == 0 {
			fw.sh = nextShard()
		}
		M.TCPFramesOut.Shard(fw.sh).Inc()
		M.TCPBytesOut.Shard(fw.sh).Add(uint64(len(buf)))
	}
	return err
}

// FrameReader reads length-prefixed frames from a stream, reusing one
// payload buffer across frames. Decoded messages never alias the payload
// buffer (the codec copies every string), so the buffer can be reused even
// when messages outlive the read call. A FrameReader is owned by one
// connection's read loop and is not safe for concurrent use.
type FrameReader struct {
	hdr     [frameHeader]byte
	payload []byte
	sh      uint64 // metrics shard index; 0 = not yet assigned
}

// ReadFrameInto reads one frame and decodes it into m, reusing both the
// reader's payload buffer and m's decode scratch. Suited to synchronous
// consumers like the broker's route loop, which is done with m before the
// next read; callers that hand messages off asynchronously must use
// ReadFrame so each frame gets a fresh message.
func (fr *FrameReader) ReadFrameInto(r io.Reader, m *xmlcmd.Message) error {
	if _, err := io.ReadFull(r, fr.hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:])
	if n > xmlcmd.MaxFrame {
		return xmlcmd.ErrFrameTooLarge
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	payload := fr.payload[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if fr.sh == 0 {
		fr.sh = nextShard()
	}
	M.TCPFramesIn.Shard(fr.sh).Inc()
	M.TCPBytesIn.Shard(fr.sh).Add(uint64(frameHeader) + uint64(n))
	return xmlcmd.DecodeInto(payload, m)
}

// ReadFrame reads one frame into a fresh message, reusing only the payload
// buffer. The returned message is safe to retain and hand to other
// goroutines.
func (fr *FrameReader) ReadFrame(r io.Reader) (*xmlcmd.Message, error) {
	m := new(xmlcmd.Message)
	if err := fr.ReadFrameInto(r, m); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteFrame writes one length-prefixed message. Convenience wrapper over
// a throwaway FrameWriter for one-shot callers; connection loops hold a
// FrameWriter to amortise the buffer.
func WriteFrame(w io.Writer, m *xmlcmd.Message) error {
	var fw FrameWriter
	return fw.WriteFrame(w, m)
}

// ReadFrame reads one length-prefixed message. Convenience wrapper over a
// throwaway FrameReader; connection loops hold a FrameReader to amortise
// the buffers.
func ReadFrame(r io.Reader) (*xmlcmd.Message, error) {
	var fr FrameReader
	return fr.ReadFrame(r)
}

// registerCommand is the client's first frame.
const registerCommand = "register"

// TCPBroker is the mbus broker: it accepts client connections, each
// opening with a register frame naming its bus address, and routes every
// subsequent frame to the connection registered under the frame's To
// address. Unroutable frames are dropped silently (fail-silent fabric).
type TCPBroker struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[string]*brokerConn
	closed bool
	wg     sync.WaitGroup
}

// brokerConn pairs a registered client connection with its frame writer so
// routed frames reuse one scratch buffer per destination. The writer is
// only touched under the broker lock, which also serialises writes to the
// connection.
type brokerConn struct {
	conn net.Conn
	fw   FrameWriter
}

// ListenBroker starts a broker on addr (use "127.0.0.1:0" for an ephemeral
// port).
func ListenBroker(addr string) (*TCPBroker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen: %w", err)
	}
	b := &TCPBroker{ln: ln, conns: make(map[string]*brokerConn)}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *TCPBroker) Addr() string { return b.ln.Addr().String() }

// Close shuts the broker down and disconnects every client.
func (b *TCPBroker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	err := b.ln.Close()
	for _, bc := range b.conns {
		_ = bc.conn.Close()
	}
	b.conns = make(map[string]*brokerConn)
	b.mu.Unlock()
	b.wg.Wait()
	return err
}

func (b *TCPBroker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serve(conn)
	}
}

// serve handles one client connection. The read side owns one FrameReader
// and one Message for the connection's lifetime: routing is synchronous, so
// each frame is fully forwarded before the buffers are reused, and a
// steady-state routed frame allocates nothing on the broker.
func (b *TCPBroker) serve(conn net.Conn) {
	defer b.wg.Done()
	var fr FrameReader
	// Registration.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	first, err := fr.ReadFrame(conn)
	if err != nil || first.Kind() != xmlcmd.KindCommand || first.Command.Name != registerCommand {
		_ = conn.Close()
		return
	}
	name := first.From
	_ = conn.SetReadDeadline(time.Time{})

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old, ok := b.conns[name]; ok {
		_ = old.conn.Close() // a reconnecting client replaces its old session
	}
	b.conns[name] = &brokerConn{conn: conn}
	M.TCPRegistrations.Inc()
	M.TCPConnections.Set(int64(len(b.conns)))
	b.mu.Unlock()

	var m xmlcmd.Message
	for {
		if err := fr.ReadFrameInto(conn, &m); err != nil {
			break
		}
		b.route(&m)
	}

	b.mu.Lock()
	if bc, ok := b.conns[name]; ok && bc.conn == conn {
		delete(b.conns, name)
		M.TCPConnections.Set(int64(len(b.conns)))
	}
	b.mu.Unlock()
	_ = conn.Close()
}

// route forwards a frame to its destination, dropping it if the
// destination has no live connection. Writes are serialised per
// destination under the broker lock; broker throughput is nowhere near the
// point where finer locking matters for the ground station's tens of
// messages per second.
func (b *TCPBroker) route(m *xmlcmd.Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bc, ok := b.conns[m.To]; ok {
		_ = bc.fw.WriteFrame(bc.conn, m)
	} else {
		M.TCPRouteDrops.Inc()
	}
}

// ClientNames lists currently registered clients (for tests/ops).
func (b *TCPBroker) ClientNames() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.conns))
	for n := range b.conns {
		out = append(out, n)
	}
	return out
}

// TCPClient is one component's connection to the broker. It reconnects
// with backoff when the broker goes away, so a broker restart behaves like
// the simulated bus outage: frames sent meanwhile are silently lost.
type TCPClient struct {
	name  string
	addr  string
	onMsg func(*xmlcmd.Message)
	rng   *rand.Rand // backoff jitter; owned by readLoop

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	done   chan struct{} // closed by Close; unblocks the backoff wait
	wg     sync.WaitGroup

	// sendMu serialises writers and guards fw's scratch buffer. It is
	// separate from mu so Close and the read loop never wait behind a slow
	// socket write.
	sendMu sync.Mutex
	fw     FrameWriter
}

// DialBus connects and registers a client. onMsg is invoked from the read
// goroutine for every inbound frame; the caller serialises. Each frame is
// delivered as a fresh message (only the frame buffers are reused), so
// handlers may retain it or hand it to another goroutine.
func DialBus(addr, name string, onMsg func(*xmlcmd.Message)) (*TCPClient, error) {
	// Seed the backoff jitter from the client name so a station's clients
	// desynchronise deterministically rather than herding the broker.
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	c := &TCPClient{
		name:  name,
		addr:  addr,
		onMsg: onMsg,
		rng:   rand.New(rand.NewSource(int64(h.Sum64()))),
		done:  make(chan struct{}),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// connect dials and registers.
func (c *TCPClient) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, 2*time.Second)
	if err != nil {
		return err
	}
	reg := xmlcmd.NewCommand(c.name, "mbus", 0, registerCommand)
	c.sendMu.Lock()
	err = c.fw.WriteFrame(conn, reg)
	c.sendMu.Unlock()
	if err != nil {
		_ = conn.Close()
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return ErrClientClosed
	}
	c.conn = conn
	c.mu.Unlock()
	return nil
}

// Send writes a frame. Failures are silent (the bus is fail-silent); a
// write error triggers reconnection.
func (c *TCPClient) Send(m *xmlcmd.Message) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		M.TCPSendDrops.Inc()
		return
	}
	c.sendMu.Lock()
	err := c.fw.WriteFrame(conn, m)
	c.sendMu.Unlock()
	if err != nil {
		M.TCPSendDrops.Inc()
		_ = conn.Close()
	}
}

// readLoop receives frames and reconnects on failure until closed. It owns
// a FrameReader whose buffers persist across reconnects; messages handed to
// onMsg are fresh per frame because handlers (e.g. the supervisor's
// dispatcher) hand them off asynchronously.
func (c *TCPClient) readLoop() {
	defer c.wg.Done()
	var fr FrameReader
	backoff := 100 * time.Millisecond
	for {
		c.mu.Lock()
		conn := c.conn
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if conn != nil {
			for {
				m, err := fr.ReadFrame(conn)
				if err != nil {
					break
				}
				backoff = 100 * time.Millisecond
				if c.onMsg != nil {
					c.onMsg(m)
				}
			}
			_ = conn.Close()
			c.mu.Lock()
			if c.conn == conn {
				c.conn = nil
			}
			c.mu.Unlock()
		}
		// Reconnect with capped, jittered backoff. Waiting on a timer
		// instead of sleeping keeps Close responsive mid-backoff, and the
		// ±20% jitter spreads a station's clients out after a broker
		// restart instead of having them reconnect in lockstep.
		t := time.NewTimer(clock.Jitter(c.rng, backoff, 0.2))
		select {
		case <-c.done:
			t.Stop()
			return
		case <-t.C:
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
		c.mu.Lock()
		closed = c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if c.connect() == nil { // failure leaves conn nil; loop retries
			M.TCPReconnects.Inc()
		}
	}
}

// Close tears the client down.
func (c *TCPClient) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}
