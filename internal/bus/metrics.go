package bus

import (
	"sync/atomic"

	"github.com/recursive-restart/mercury/internal/obs"
)

// BusMetrics aggregates the process-wide runtime counters for both bus
// implementations: the simulated fabric (Sim* families) and the real TCP
// broker/client (TCP* families). Counters are incremented unconditionally
// — an increment is a single atomic add, cheaper than a configuration
// branch — and only read when an obs registry renders them, so campaigns
// and goldens are unaffected.
type BusMetrics struct {
	// Simulated fabric (bus.Sim).
	SimFramesSent      obs.Counter // messages entering the fabric
	SimFramesDelivered obs.Counter // messages handed to a live destination
	SimDroppedBroker   obs.Counter // lost because mbus was not serving
	SimDroppedDest     obs.Counter // lost because the destination was dead
	SimDroppedChaos    obs.Counter // lost to the chaos layer's per-hop loss
	SimDuplicated      obs.Counter // hops duplicated by the chaos layer
	SimCrossSent       obs.Counter // messages handed to the cross-shard link

	// TCP wire path (FrameReader/FrameWriter, broker, client).
	TCPFramesIn      obs.Counter // frames read off connections
	TCPFramesOut     obs.Counter // frames written to connections
	TCPBytesIn       obs.Counter // wire bytes read (header + payload)
	TCPBytesOut      obs.Counter // wire bytes written
	TCPRouteDrops    obs.Counter // broker frames with no registered destination
	TCPReconnects    obs.Counter // client reconnects after a broker outage
	TCPSendDrops     obs.Counter // client sends lost (no live connection or write error)
	TCPRegistrations obs.Counter // broker register frames accepted
	TCPConnections   obs.Gauge   // broker connections currently registered

	// Sharded fabric + batching (mercury_bus_shard_* family).
	TCPShardFrames       *obs.CounterVec     // frames routed, by broker shard index
	TCPBatchFrames       *obs.ValueHistogram // frames coalesced per batched write
	TCPQueueBytes        obs.Gauge           // bytes pending across bounded send queues
	TCPBackpressureDrops obs.Counter         // frames rejected by a full send queue (DropNewest)
	TCPReconnectQueued   obs.Counter         // client frames parked while disconnected
	TCPReconnectDrops    obs.Counter         // client frames lost to a full reconnect queue
}

// M is the process-wide bus metrics instance. Hot call sites hold a
// per-instance obs.CounterShard into these counters (one shard per Sim
// fabric, per frame reader/writer) so concurrent writers do not contend.
var M = BusMetrics{
	TCPShardFrames: obs.NewCounterVec(),
	// Batch sizes of interest span "no batching" (1) to full 16 KiB
	// batches of ~80-byte frames (~200); powers of two up to 512.
	TCPBatchFrames: obs.NewValueHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
}

// shardSeq hands out shard indices to long-lived writers (fabrics,
// connections) round-robin, spreading them across each counter's padded
// cells.
var shardSeq atomic.Uint64

// nextShard returns the next writer's shard index.
func nextShard() uint64 { return shardSeq.Add(1) }

// RegisterMetrics registers the bus counter families with an obs
// registry under the mercury_bus_* namespace.
func RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("mercury_bus_sim_frames_sent_total",
		"Messages entering the simulated fabric.", &M.SimFramesSent)
	r.RegisterCounter("mercury_bus_sim_frames_delivered_total",
		"Messages delivered to a live destination by the simulated fabric.", &M.SimFramesDelivered)
	r.RegisterCounter("mercury_bus_sim_dropped_total",
		"Messages lost in the simulated fabric, by cause.", &M.SimDroppedBroker, "cause", "broker-down")
	r.RegisterCounter("mercury_bus_sim_dropped_total",
		"Messages lost in the simulated fabric, by cause.", &M.SimDroppedDest, "cause", "dest-dead")
	r.RegisterCounter("mercury_bus_sim_dropped_total",
		"Messages lost in the simulated fabric, by cause.", &M.SimDroppedChaos, "cause", "chaos-loss")
	r.RegisterCounter("mercury_bus_sim_duplicated_total",
		"Hops duplicated by the chaos layer.", &M.SimDuplicated)
	r.RegisterCounter("mercury_bus_sim_cross_sent_total",
		"Messages intercepted for cross-shard (inter-station) delivery.", &M.SimCrossSent)

	r.RegisterCounter("mercury_bus_tcp_frames_total",
		"Wire frames moved over TCP, by direction.", &M.TCPFramesIn, "dir", "in")
	r.RegisterCounter("mercury_bus_tcp_frames_total",
		"Wire frames moved over TCP, by direction.", &M.TCPFramesOut, "dir", "out")
	r.RegisterCounter("mercury_bus_tcp_bytes_total",
		"Wire bytes moved over TCP (header + payload), by direction.", &M.TCPBytesIn, "dir", "in")
	r.RegisterCounter("mercury_bus_tcp_bytes_total",
		"Wire bytes moved over TCP (header + payload), by direction.", &M.TCPBytesOut, "dir", "out")
	r.RegisterCounter("mercury_bus_tcp_route_drops_total",
		"Broker frames dropped for lack of a registered destination.", &M.TCPRouteDrops)
	r.RegisterCounter("mercury_bus_tcp_reconnects_total",
		"Client reconnections after losing the broker.", &M.TCPReconnects)
	r.RegisterCounter("mercury_bus_tcp_send_drops_total",
		"Client sends lost: no live connection or a failed write.", &M.TCPSendDrops)
	r.RegisterCounter("mercury_bus_tcp_registrations_total",
		"Register frames accepted by the broker.", &M.TCPRegistrations)
	r.RegisterGauge("mercury_bus_tcp_connections",
		"Connections currently registered at the broker.", &M.TCPConnections)

	r.RegisterCounterVec("mercury_bus_shard_frames_total",
		"Frames routed, by broker shard index.", "shard", M.TCPShardFrames)
	r.RegisterValueHistogram("mercury_bus_shard_batch_frames",
		"Frames coalesced into one batched write.", M.TCPBatchFrames)
	r.RegisterGauge("mercury_bus_shard_queue_bytes",
		"Bytes pending across bounded per-connection send queues.", &M.TCPQueueBytes)
	r.RegisterCounter("mercury_bus_shard_backpressure_drops_total",
		"Frames rejected by a full bounded send queue (DropNewest policy).", &M.TCPBackpressureDrops)
	r.RegisterCounter("mercury_bus_tcp_reconnect_queue_total",
		"Client frames handled by the bounded reconnect queue, by outcome.",
		&M.TCPReconnectQueued, "outcome", "queued")
	r.RegisterCounter("mercury_bus_tcp_reconnect_queue_total",
		"Client frames handled by the bounded reconnect queue, by outcome.",
		&M.TCPReconnectDrops, "outcome", "dropped")
}

// simCounters is one Sim instance's pre-resolved shard set: the fabric
// increments through these pointers so parallel trials (one Sim per
// worker) never share a counter cache line.
type simCounters struct {
	sent, delivered, dropBroker, dropDest, dropChaos, dup, crossSent *obs.CounterShard
}

// newSimCounters picks one shard index for a fabric instance.
func newSimCounters() simCounters {
	i := nextShard()
	return simCounters{
		sent:       M.SimFramesSent.Shard(i),
		delivered:  M.SimFramesDelivered.Shard(i),
		dropBroker: M.SimDroppedBroker.Shard(i),
		dropDest:   M.SimDroppedDest.Shard(i),
		dropChaos:  M.SimDroppedChaos.Shard(i),
		dup:        M.SimDuplicated.Shard(i),
		crossSent:  M.SimCrossSent.Shard(i),
	}
}

// LinkDiscards reports the chaos layer's per-link frame discards for this
// fabric as "from->to" keys. Dispatch-context only, like Stats.
func (b *Sim) LinkDiscards() map[string]uint64 {
	out := make(map[string]uint64, len(b.chaosDrops))
	for k, n := range b.chaosDrops {
		out[k.from+"->"+k.to] = n
	}
	return out
}
