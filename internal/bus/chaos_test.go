package bus

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

func TestChaosLossDropsEveryFrame(t *testing.T) {
	r := newRig(t)
	a := r.addEcho(t, "a")
	r.addEcho(t, "b")
	r.startAll(t)
	r.bus.SetChaos(&ChaosProfile{Loss: 0.999999999})
	for i := 0; i < 20; i++ {
		r.bus.Send(xmlcmd.NewEvent("b", "a", uint64(i), "doomed", ""))
	}
	_ = r.k.RunFor(time.Second)
	if len(a.received) != 0 {
		t.Fatalf("a received %d frames through a fully lossy fabric", len(a.received))
	}
	if got := r.bus.Stats().DroppedChaos; got < 20 {
		t.Fatalf("DroppedChaos = %d, want >= 20", got)
	}
}

func TestChaosDuplicationDeliversTwice(t *testing.T) {
	r := newRig(t)
	fd := r.addEcho(t, "fd")
	rec := r.addEcho(t, "rec")
	_ = fd
	r.bus.AddDirectLink("fd", "rec")
	r.startAll(t)
	// Dup ~1 on a single-hop dedicated link: exactly two copies arrive.
	r.bus.SetChaos(&ChaosProfile{Dup: 0.999999999})
	r.bus.Send(xmlcmd.NewEvent("fd", "rec", 1, "twice", ""))
	_ = r.k.RunFor(time.Second)
	if len(rec.received) != 2 {
		t.Fatalf("rec received %d copies, want 2", len(rec.received))
	}
	if got := r.bus.Stats().Duplicated; got != 1 {
		t.Fatalf("Duplicated = %d, want 1", got)
	}
}

func TestChaosJitterReordersFrames(t *testing.T) {
	r := newRig(t)
	fd := r.addEcho(t, "fd")
	rec := r.addEcho(t, "rec")
	_ = fd
	r.bus.AddDirectLink("fd", "rec")
	r.startAll(t)
	r.bus.SetChaos(&ChaosProfile{Jitter: fault.Uniform{Lo: 0, Hi: 200 * time.Millisecond}})
	for i := 0; i < 32; i++ {
		r.bus.Send(xmlcmd.NewEvent("fd", "rec", uint64(i), fmt.Sprintf("m%d", i), ""))
	}
	_ = r.k.RunFor(time.Second)
	if len(rec.received) != 32 {
		t.Fatalf("rec received %d frames, want 32", len(rec.received))
	}
	inOrder := true
	for i := 1; i < len(rec.received); i++ {
		if rec.received[i].Seq < rec.received[i-1].Seq {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("jitter up to 200ms on back-to-back sends never reordered anything")
	}
}

func TestChaosPerLinkOverride(t *testing.T) {
	r := newRig(t)
	fd := r.addEcho(t, "fd")
	rec := r.addEcho(t, "rec")
	_ = fd
	r.bus.AddDirectLink("fd", "rec")
	r.startAll(t)
	// Fabric-wide total loss, but the dedicated fd→rec hop pinned clean.
	r.bus.SetChaos(&ChaosProfile{Loss: 0.999999999})
	r.bus.SetLinkChaos("fd", "rec", nil)
	r.bus.Send(xmlcmd.NewEvent("fd", "rec", 1, "protected", ""))
	r.bus.Send(xmlcmd.NewEvent("rec", "fd", 2, "doomed", ""))
	_ = r.k.RunFor(time.Second)
	if len(rec.received) != 1 {
		t.Fatalf("rec received %d frames over the pinned-clean link, want 1", len(rec.received))
	}
}

// chaosRun drives a fixed lossy workload and returns a trace of what was
// delivered plus the final stats, for determinism comparison.
func chaosRun(t *testing.T, seed int64) (string, Stats) {
	t.Helper()
	k := sim.New(seed)
	// The manager's RNG is the kernel's stream, exactly as mercury.NewSystem
	// wires it — chaos draws must follow the trial seed.
	mgr := proc.NewManager(clock.Sim{K: k}, k.Rand(), trace.NewLog())
	b := NewSim(clock.Sim{K: k}, mgr, "mbus")
	mgr.SetTransport(b)
	if err := mgr.Register("mbus", BrokerHandler(100*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	a := &echoComp{}
	if err := mgr.Register("a", func() proc.Handler { return a }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("b", func() proc.Handler { return &echoComp{} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.StartBatch(mgr.Names()); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	b.SetChaos(&ChaosProfile{Loss: 0.3, Dup: 0.2, Jitter: fault.Uniform{Lo: 0, Hi: 50 * time.Millisecond}})
	for i := 0; i < 64; i++ {
		b.Send(xmlcmd.NewEvent("b", "a", uint64(i), fmt.Sprintf("m%d", i), ""))
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	var out string
	for _, m := range a.received {
		out += fmt.Sprintf("%d;", m.Seq)
	}
	return out, b.Stats()
}

func TestChaosDeterministicUnderSeed(t *testing.T) {
	trace1, stats1 := chaosRun(t, 42)
	trace2, stats2 := chaosRun(t, 42)
	if trace1 != trace2 || stats1 != stats2 {
		t.Fatalf("same seed diverged:\n%s %+v\n%s %+v", trace1, stats1, trace2, stats2)
	}
	trace3, _ := chaosRun(t, 43)
	if trace1 == trace3 {
		t.Fatal("different seeds produced identical chaos (suspiciously)")
	}
}

// TestChaosEnabledStillPooled pins that a chaotic fabric keeps using the
// delivery-event pool: steady-state sends allocate nothing even with
// loss, duplication and jitter all active.
func TestChaosEnabledStillPooled(t *testing.T) {
	k := sim.New(5)
	mgr := proc.NewManager(clock.Sim{K: k}, rand.New(rand.NewSource(2)), trace.NewLog())
	b := NewSim(clock.Sim{K: k}, mgr, "mbus")
	mgr.SetTransport(b)
	if err := mgr.Register("mbus", BrokerHandler(100*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("a", func() proc.Handler { return quietComp{} }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.StartBatch(mgr.Names()); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	b.SetChaos(&ChaosProfile{Loss: 0.2, Dup: 0.2, Jitter: fault.Uniform{Lo: 0, Hi: time.Millisecond}})
	m := xmlcmd.NewEvent("b", "a", 1, "x", "")
	warm := func() {
		b.Send(m)
		if err := k.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		warm()
	}
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("chaotic Send allocates %.1f objects/op, want 0", allocs)
	}
}

func TestChaosValidate(t *testing.T) {
	for _, bad := range []*ChaosProfile{{Loss: -0.1}, {Loss: 1}, {Dup: -1}, {Dup: 1.5}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("profile %+v validated", bad)
		}
	}
	var nilP *ChaosProfile
	if err := nilP.Validate(); err != nil {
		t.Fatalf("nil profile rejected: %v", err)
	}
	if err := (&ChaosProfile{Loss: 0.5, Dup: 0.1}).Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}
