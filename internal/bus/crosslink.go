package bus

import (
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file is the bus's cross-shard seam for the fleet simulator. A
// station's fabric handles all local traffic exactly as before; a message
// whose To address names another station is intercepted at the top of
// Send and pushed onto a serialized hand-off queue instead of being
// scheduled locally. Between epochs the fleet coordinator drains each
// queue in shard-index order and re-injects the messages on the
// destination shard's fabric after the inter-station link latency — which
// must be at least one epoch long for the fleet's conservative-lookahead
// protocol to hold (see internal/sim/fleet.go).

// Handoff is one intercepted cross-shard message, stamped with the send
// instant and a per-link sequence number so the exchange order is fully
// determined by (source shard, Seq).
type Handoff struct {
	// Msg is the intercepted message, its To rewritten to the address
	// local to the destination station.
	Msg *xmlcmd.Message
	// Station is the destination station index.
	Station int
	// SentAt is the virtual send instant on the source shard.
	SentAt time.Time
	// Seq orders hand-offs from this link.
	Seq uint64
}

// CrossLink intercepts and queues a fabric's outbound inter-station
// traffic. Like the Sim it plugs into, it is dispatch-context only: offer
// runs inside Send on the shard's kernel, Drain runs on the coordinator
// between epochs (the fleet barrier orders the two).
type CrossLink struct {
	clk clock.Clock
	// resolve maps a message address to (destination station, local
	// address). ok=false means the address is local to this fabric and the
	// message is not intercepted.
	resolve func(addr string) (station int, local string, ok bool)
	queue   []Handoff
	seq     uint64
}

// NewCrossLink builds a cross-link using resolve to classify addresses.
func NewCrossLink(clk clock.Clock, resolve func(addr string) (station int, local string, ok bool)) *CrossLink {
	return &CrossLink{clk: clk, resolve: resolve}
}

// offer intercepts m if it is addressed to another station, queueing it
// for the next epoch exchange. Reports whether the message was taken.
func (x *CrossLink) offer(m *xmlcmd.Message) bool {
	station, local, ok := x.resolve(m.To)
	if !ok {
		return false
	}
	m.To = local
	x.seq++
	x.queue = append(x.queue, Handoff{
		Msg:     m,
		Station: station,
		SentAt:  x.clk.Now(),
		Seq:     x.seq,
	})
	return true
}

// Drain appends the queued hand-offs to dst in send order and empties the
// queue. Coordinator-context only.
func (x *CrossLink) Drain(dst []Handoff) []Handoff {
	dst = append(dst, x.queue...)
	x.queue = x.queue[:0]
	return dst
}

// Pending reports the queued hand-off count.
func (x *CrossLink) Pending() int { return len(x.queue) }

// SetCrossLink installs (or, with nil, removes) the fabric's cross-shard
// interceptor. Installed, it sees every Send first; messages it takes are
// counted as CrossSent and never touch the local broker.
func (b *Sim) SetCrossLink(x *CrossLink) { b.xlink = x }

// DeliverLocal hands an inbound cross-shard message to this fabric's
// manager directly, bypassing the local broker: the inter-station link is
// its own transport and its latency was already paid by the fleet's
// delivery schedule. Dispatch-context only — the fleet injects via the
// destination kernel, so this runs on that shard's event loop.
func (b *Sim) DeliverLocal(m *xmlcmd.Message) {
	if b.mgr.Deliver(m) {
		b.stats.Delivered++
		b.m.delivered.Inc()
	} else {
		b.stats.DroppedDest++
		b.m.dropDest.Inc()
	}
}
