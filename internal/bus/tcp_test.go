package bus

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// collector gathers inbound frames thread-safely.
type collector struct {
	mu   sync.Mutex
	msgs []*xmlcmd.Message
}

func (c *collector) on(m *xmlcmd.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) last() *xmlcmd.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.msgs) == 0 {
		return nil
	}
	return c.msgs[len(c.msgs)-1]
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestTCPRouting(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var got collector
	recv, err := DialBus(b.Addr(), "ses", got.on)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := DialBus(b.Addr(), "fd", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	waitFor(t, "registration", func() bool { return len(b.ClientNames()) == 2 })

	send.Send(xmlcmd.NewPing("fd", "ses", 1, 42))
	waitFor(t, "delivery", func() bool { return got.count() == 1 })
	if m := got.last(); m.Kind() != xmlcmd.KindPing || m.Ping.Nonce != 42 {
		t.Fatalf("got %+v", m)
	}
}

func TestTCPUnknownDestinationDropped(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	send, err := DialBus(b.Addr(), "fd", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	send.Send(xmlcmd.NewPing("fd", "ghost", 1, 1)) // must not panic or error
	time.Sleep(50 * time.Millisecond)
}

func TestTCPPingPong(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var echo *TCPClient
	echo, err = DialBus(b.Addr(), "rtu", func(m *xmlcmd.Message) {
		if m.Kind() == xmlcmd.KindPing {
			echo.Send(xmlcmd.NewPong("rtu", m, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()

	var got collector
	fd, err := DialBus(b.Addr(), "fd", got.on)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	waitFor(t, "registration", func() bool { return len(b.ClientNames()) == 2 })

	fd.Send(xmlcmd.NewPing("fd", "rtu", 9, 77))
	waitFor(t, "pong", func() bool { return got.count() == 1 })
	if m := got.last(); m.Pong == nil || m.Pong.Nonce != 77 {
		t.Fatalf("got %+v", m)
	}
}

func TestTCPClientReconnectsAfterBrokerRestart(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()

	var got collector
	recv, err := DialBus(addr, "ses", got.on)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := DialBus(addr, "fd", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	waitFor(t, "initial registration", func() bool { return len(b.ClientNames()) == 2 })

	// Broker outage: frames vanish, clients survive.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	send.Send(xmlcmd.NewPing("fd", "ses", 1, 1)) // lost
	time.Sleep(100 * time.Millisecond)

	// Broker returns on the same address.
	b2, err := ListenBroker(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	waitFor(t, "reconnection", func() bool { return len(b2.ClientNames()) == 2 })

	send.Send(xmlcmd.NewPing("fd", "ses", 2, 2))
	waitFor(t, "post-restart delivery", func() bool { return got.count() >= 1 })
	if m := got.last(); m.Ping.Nonce != 2 {
		t.Fatalf("got nonce %d", m.Ping.Nonce)
	}
}

func TestTCPRequiresRegistration(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a non-register frame first: the broker must drop the session.
	if err := WriteFrame(conn, xmlcmd.NewPing("x", "y", 1, 1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("broker kept an unregistered session alive")
	}
}

func TestTCPReplacedSession(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var got1, got2 collector
	c1, err := DialBus(b.Addr(), "ses", got1.on)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	waitFor(t, "first session", func() bool { return len(b.ClientNames()) == 1 })
	// A second client with the same name replaces the first (restarted
	// component reconnecting).
	c2, err := DialBus(b.Addr(), "ses", got2.on)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	send, err := DialBus(b.Addr(), "fd", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	waitFor(t, "replacement", func() bool { return len(b.ClientNames()) == 2 })
	send.Send(xmlcmd.NewPing("fd", "ses", 1, 5))
	waitFor(t, "delivery to new session", func() bool { return got2.count() == 1 })
}

func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		_ = WriteFrame(client, xmlcmd.NewEvent("a", "b", 3, "boom", "detail"))
	}()
	m, err := ReadFrame(server)
	if err != nil {
		t.Fatal(err)
	}
	if m.Event.Name != "boom" || m.Seq != 3 {
		t.Fatalf("got %+v", m)
	}
}

// TestTCPCloseDuringReconnectBackoff: Close must interrupt the reconnect
// wait, not ride out a multi-second backoff sleep.
func TestTCPCloseDuringReconnectBackoff(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialBus(b.Addr(), "ses", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the broker and give the client time to fail a few dials so its
	// backoff has grown well past the tolerance below.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(700 * time.Millisecond)

	start := time.Now()
	c.Close()
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Fatalf("Close took %v during reconnect backoff, want prompt return", d)
	}
}
