package bus

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/obs"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file implements adaptive frame batching for the TCP wire path. A
// BatchWriter owns one connection's outbound side: senders encode frames
// into a shared pending buffer (concatenated length-prefixed frames — the
// wire format of a batch is byte-identical to the same frames written one
// at a time), and a single writer goroutine drains the buffer with one
// Write call per batch. Batching is adaptive: while the writer is inside a
// Write syscall, senders keep appending, so the next flush carries
// everything that accumulated — under load batches grow and the syscall
// rate collapses, while an idle connection still flushes every frame
// immediately (FlushDelay 0). The pending buffer is bounded: a full queue
// either blocks the sender (back-pressure propagates) or drops the frame
// against a counter, never grows silently.

// Batching errors.
var (
	// ErrBackpressure reports a frame rejected by a full bounded send
	// queue under the DropNewest policy.
	ErrBackpressure = errors.New("bus: bounded send queue full")
	// ErrWriterClosed reports an enqueue after Close.
	ErrWriterClosed = errors.New("bus: batch writer closed")
)

// QueuePolicy selects what a full send queue does with the next frame.
type QueuePolicy int

const (
	// Block makes Enqueue wait for queue space: back-pressure propagates
	// to the sender, so a slow connection throttles its producers instead
	// of losing traffic. The client default.
	Block QueuePolicy = iota
	// DropNewest makes Enqueue discard the offered frame (counted in
	// mercury_bus_shard_backpressure_drops_total). The broker default: one
	// stalled reader must not wedge routing for every other destination,
	// and the fabric is fail-silent by contract.
	DropNewest
)

// Batching defaults.
const (
	// DefaultFlushBytes is the batch size threshold: once the pending
	// buffer reaches it, the writer flushes even if FlushDelay has not
	// elapsed. 16 KiB ≈ 200 typical frames, far past the point where the
	// per-syscall cost is amortised.
	DefaultFlushBytes = 16 << 10
	// DefaultMaxQueue bounds the pending buffer. 256 KiB per connection
	// caps broker memory at a few MiB even with every client stalled.
	DefaultMaxQueue = 256 << 10
)

// BatchConfig tunes one connection's batching and back-pressure.
type BatchConfig struct {
	// FlushBytes flushes a batch early once the pending buffer reaches
	// this size. <= 0 selects DefaultFlushBytes.
	FlushBytes int
	// FlushDelay is the longest a queued frame may wait for its batch to
	// fill. 0 (the default) flushes as soon as the writer is free: no
	// added latency, batching arises only from writer occupancy. > 0
	// trades latency for larger batches.
	FlushDelay time.Duration
	// MaxQueue bounds the pending buffer in bytes. <= 0 selects
	// DefaultMaxQueue.
	MaxQueue int
	// Policy selects Block or DropNewest when the queue is full.
	Policy QueuePolicy
}

// withDefaults fills zero fields.
func (c BatchConfig) withDefaults() BatchConfig {
	if c.FlushBytes <= 0 {
		c.FlushBytes = DefaultFlushBytes
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MaxQueue < c.FlushBytes {
		c.MaxQueue = c.FlushBytes
	}
	return c
}

// BatchWriter coalesces frames queued by any number of goroutines into
// single Write calls on one connection, in enqueue order. Created with
// NewBatchWriter; must be Closed to stop its writer goroutine.
type BatchWriter struct {
	w   io.Writer
	cfg BatchConfig

	mu            sync.Mutex
	cond          *sync.Cond
	pending       []byte // encoded frames waiting for the next flush
	spare         []byte // previous flush's buffer, reused
	pendingFrames int
	firstAt       time.Time // when pending went non-empty (deadline base)
	kicked        bool      // explicit Flush requested
	closed        bool
	err           error

	done chan struct{} // writer goroutine exited

	// metrics shards (see metrics.go).
	framesOut, bytesOut, bpDrops *obs.CounterShard
}

// NewBatchWriter starts a batch writer over w.
func NewBatchWriter(w io.Writer, cfg BatchConfig) *BatchWriter {
	bw := &BatchWriter{
		w:    w,
		cfg:  cfg.withDefaults(),
		done: make(chan struct{}),
	}
	bw.cond = sync.NewCond(&bw.mu)
	sh := nextShard()
	bw.framesOut = M.TCPFramesOut.Shard(sh)
	bw.bytesOut = M.TCPBytesOut.Shard(sh)
	bw.bpDrops = M.TCPBackpressureDrops.Shard(sh)
	go bw.loop()
	return bw
}

// Enqueue encodes m into the pending batch. It returns nil once the frame
// is queued (delivery remains fail-silent, like the rest of the bus),
// ErrBackpressure if the DropNewest policy rejected it, ErrWriterClosed
// after Close, or the connection's write error once the writer has failed.
// Under the Block policy a full queue makes Enqueue wait for the writer to
// drain. Safe for concurrent use; frames from one goroutine are written in
// the order it enqueued them.
func (bw *BatchWriter) Enqueue(m *xmlcmd.Message) error {
	bw.mu.Lock()
	if bw.cfg.Policy == Block {
		for len(bw.pending) >= bw.cfg.MaxQueue && bw.err == nil && !bw.closed {
			bw.cond.Wait()
		}
	}
	if bw.closed {
		bw.mu.Unlock()
		return ErrWriterClosed
	}
	if bw.err != nil {
		err := bw.err
		bw.mu.Unlock()
		return err
	}
	if len(bw.pending) >= bw.cfg.MaxQueue { // DropNewest
		bw.mu.Unlock()
		bw.bpDrops.Inc()
		return ErrBackpressure
	}
	n0 := len(bw.pending)
	buf, err := xmlcmd.AppendEncode(append(bw.pending, 0, 0, 0, 0), m)
	if err != nil {
		// The pending array may have been regrown by the failed append;
		// keep the larger capacity but drop the partial frame.
		bw.pending = buf[:n0]
		bw.mu.Unlock()
		return err
	}
	binary.BigEndian.PutUint32(buf[n0:n0+frameHeader], uint32(len(buf)-n0-frameHeader))
	bw.pending = buf
	bw.pendingFrames++
	if bw.pendingFrames == 1 {
		bw.firstAt = time.Now()
	}
	M.TCPQueueBytes.Add(int64(len(buf) - n0))
	bw.cond.Broadcast()
	bw.mu.Unlock()
	return nil
}

// Flush asks the writer to flush the current batch without waiting for
// FlushDelay or FlushBytes. It does not wait for the write to complete.
func (bw *BatchWriter) Flush() {
	bw.mu.Lock()
	bw.kicked = true
	bw.cond.Broadcast()
	bw.mu.Unlock()
}

// Err returns the writer's terminal error, if any.
func (bw *BatchWriter) Err() error {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	return bw.err
}

// QueuedBytes reports the current pending-buffer size (for tests/ops).
func (bw *BatchWriter) QueuedBytes() int {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	return len(bw.pending)
}

// Close flushes every queued frame in order, stops the writer goroutine
// and returns the terminal write error, if any. It does not close the
// underlying connection.
func (bw *BatchWriter) Close() error {
	bw.mu.Lock()
	if !bw.closed {
		bw.closed = true
		bw.cond.Broadcast()
	}
	bw.mu.Unlock()
	<-bw.done
	return bw.Err()
}

// loop is the writer goroutine: swap out the pending buffer, write it in
// one call, repeat. Entered and exited holding no lock.
func (bw *BatchWriter) loop() {
	defer close(bw.done)
	bw.mu.Lock()
	for {
		for bw.pendingFrames == 0 && !bw.closed && bw.err == nil {
			bw.cond.Wait()
		}
		if bw.err != nil || (bw.closed && bw.pendingFrames == 0) {
			break
		}
		// Deadline batching: hold the batch open until FlushDelay elapses
		// from the first queued frame, the size threshold is reached, an
		// explicit Flush arrives, or the writer is closing.
		for bw.cfg.FlushDelay > 0 && !bw.kicked && !bw.closed && bw.err == nil &&
			len(bw.pending) < bw.cfg.FlushBytes {
			wait := bw.cfg.FlushDelay - time.Since(bw.firstAt)
			if wait <= 0 {
				break
			}
			bw.timedWait(wait)
		}
		if bw.err != nil {
			break
		}
		buf, frames := bw.pending, bw.pendingFrames
		bw.pending, bw.spare = bw.spare[:0], buf
		bw.pendingFrames = 0
		bw.kicked = false
		M.TCPQueueBytes.Add(-int64(len(buf)))
		bw.cond.Broadcast() // admit senders blocked on a full queue
		bw.mu.Unlock()

		_, werr := bw.w.Write(buf)
		M.TCPBatchFrames.Observe(uint64(frames))
		bw.framesOut.Add(uint64(frames))
		bw.bytesOut.Add(uint64(len(buf)))

		bw.mu.Lock()
		if werr != nil && bw.err == nil {
			bw.err = werr
			bw.cond.Broadcast()
		}
	}
	// Terminal: anything still pending is lost with the connection.
	M.TCPQueueBytes.Add(-int64(len(bw.pending)))
	bw.pending = nil
	bw.pendingFrames = 0
	bw.cond.Broadcast()
	bw.mu.Unlock()
}

// timedWait waits on the condition for at most d, returning early when any
// flush condition changes. Called with mu held; returns with mu held.
func (bw *BatchWriter) timedWait(d time.Duration) {
	fired := false
	t := time.AfterFunc(d, func() {
		bw.mu.Lock()
		fired = true
		bw.cond.Broadcast()
		bw.mu.Unlock()
	})
	for !fired && !bw.kicked && !bw.closed && bw.err == nil &&
		len(bw.pending) < bw.cfg.FlushBytes {
		bw.cond.Wait()
	}
	t.Stop()
}
