package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// trialValue is a deterministic pure function of (trial, seed) so result
// slices can be compared across worker counts.
func trialValue(_ context.Context, trial int, seed int64) (int64, error) {
	return seed*1_000 + int64(trial), nil
}

func TestSeedDerivation(t *testing.T) {
	cfg := Config{BaseSeed: 2002}
	if got := cfg.SeedFor(0); got != 2002 {
		t.Fatalf("SeedFor(0) = %d", got)
	}
	if got := cfg.SeedFor(3); got != 2002+3*DefaultStride {
		t.Fatalf("SeedFor(3) = %d", got)
	}
	custom := Config{BaseSeed: 10, Stride: 6151}
	if got := custom.SeedFor(2); got != 10+2*6151 {
		t.Fatalf("custom SeedFor(2) = %d", got)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	want, err := Run(context.Background(), Config{Workers: 1, BaseSeed: 42}, 37, trialValue)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := Run(context.Background(), Config{Workers: workers, BaseSeed: 42}, 37, trialValue)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d trial %d: got %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunSampleBitIdenticalToSequential(t *testing.T) {
	fn := func(_ context.Context, trial int, seed int64) (time.Duration, error) {
		// An uneven duration mix so fold order matters to the last ulp.
		return time.Duration(seed%997)*time.Millisecond + time.Duration(trial)*time.Microsecond, nil
	}
	seq, err := RunSample(context.Background(), Config{Workers: 1, BaseSeed: 7}, 53, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSample(context.Background(), Config{Workers: 8, BaseSeed: 7}, 53, fn)
	if err != nil {
		t.Fatal(err)
	}
	if seq.MeanSeconds() != par.MeanSeconds() {
		t.Fatalf("means differ: %v vs %v", seq.MeanSeconds(), par.MeanSeconds())
	}
	if seq.StdDev() != par.StdDev() || seq.Min() != par.Min() || seq.Max() != par.Max() {
		t.Fatalf("stats differ: %v/%v/%v vs %v/%v/%v",
			seq.StdDev(), seq.Min(), seq.Max(), par.StdDev(), par.Min(), par.Max())
	}
	p95s, _ := seq.Percentile(95)
	p95p, _ := par.Percentile(95)
	if p95s != p95p {
		t.Fatalf("P95 differs: %v vs %v", p95s, p95p)
	}
}

func TestRunFailFastCancelsOutstandingTrials(t *testing.T) {
	errBoom := errors.New("boom")
	fn := func(ctx context.Context, trial int, _ int64) (int, error) {
		if trial == 1 {
			return 0, fmt.Errorf("trial 1: %w", errBoom)
		}
		// Every other trial blocks until fail-fast cancellation releases it.
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(30 * time.Second):
			return 0, errors.New("cancellation never arrived")
		}
	}
	start := time.Now()
	_, err := Run(context.Background(), Config{Workers: 4}, 8, fn)
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, errBoom) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("fail-fast took %v; cancellation did not propagate", elapsed)
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	fn := func(_ context.Context, trial int, _ int64) (int, error) {
		return 0, fmt.Errorf("trial %d failed", trial)
	}
	_, err := Run(context.Background(), Config{Workers: 1}, 5, fn)
	if err == nil || err.Error() != "trial 0 failed" {
		t.Fatalf("err = %v", err)
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{Workers: 2}, 4, func(ctx context.Context, _ int, _ int64) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunEdgeCases(t *testing.T) {
	out, err := Run[int](context.Background(), Config{}, 0, nil)
	if err != nil || out != nil {
		t.Fatalf("zero trials: %v, %v", out, err)
	}
	if _, err := Run[int](context.Background(), Config{}, -1, nil); err == nil {
		t.Fatal("negative trial count accepted")
	}
	// nil context and more workers than trials are both fine.
	got, err := Run(nil, Config{Workers: 16, BaseSeed: 5}, 2, trialValue)
	if err != nil || len(got) != 2 {
		t.Fatalf("nil ctx run: %v, %v", got, err)
	}
}
