// Package runner is the deterministic parallel trial-execution engine
// behind every experiment harness. The paper's evaluation is
// embarrassingly parallel — each cell is N independent trials, each a
// fresh seeded simulation — so the engine fans trials out across a
// bounded worker pool while keeping three guarantees the harnesses rely
// on:
//
//  1. Deterministic seeding: trial i always runs with seed
//     BaseSeed + i*Stride, no matter which worker picks it up or in what
//     order trials finish. The stride (default 7919) is the seed-spacing
//     idiom previously duplicated across the harnesses.
//  2. Seed-ordered results: Run returns results indexed by trial, and
//     RunSample folds durations into the statistics accumulator in trial
//     order, so a parallel run is bit-identical to a sequential one.
//  3. Fail-fast: the first trial error cancels the shared context; of
//     the errors observed before the pool drains, the one with the
//     lowest trial index is returned.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/recursive-restart/mercury/internal/metrics"
)

// DefaultStride spaces consecutive trial seeds far enough apart that the
// per-trial simulations do not share RNG streams (a prime, so strides
// never resonate with seed arithmetic inside the simulation).
const DefaultStride = 7919

// Config parameterises a trial campaign.
type Config struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0). The
	// result is independent of Workers — only wall-clock time changes.
	Workers int
	// BaseSeed is trial 0's seed.
	BaseSeed int64
	// Stride is the per-trial seed spacing; 0 means DefaultStride.
	Stride int64
}

// SeedFor derives trial i's seed: BaseSeed + i*Stride.
//
// Overflow behavior, relied on at fleet scale (10k+ trials or shards):
// Go's int64 arithmetic wraps two's-complement, so SeedFor is defined for
// every (BaseSeed, i) — a campaign whose BaseSeed sits near MaxInt64
// silently wraps into negative seeds rather than faulting, and every seed
// consumer (sim.New, rand.NewSource) accepts the full int64 range. What
// matters is distinctness, not sign: seeds are spaced by an odd stride
// (DefaultStride 7919), and adding a fixed odd step modulo 2^64 is a
// bijection, so trials 0..n-1 collide only if n*Stride wraps all the way
// around — n > 2^64/7919 ≈ 2.3e15 trials for the default, far beyond any
// campaign. seed_test.go pins both properties.
func (c Config) SeedFor(i int) int64 {
	stride := c.Stride
	if stride == 0 {
		stride = DefaultStride
	}
	return c.BaseSeed + int64(i)*stride
}

// SubSeed deterministically derives the j-th child seed from a trial seed,
// for experiments that need many independent seeded objects inside one
// trial — a fleet trial seeds one kernel per station from the trial seed.
// Linear striding is the wrong tool there: per-station streams sit inside
// *one* simulation, so they must look independent, and seed+j*stride feeds
// correlated states into the simulation's own seed arithmetic. SubSeed
// instead mixes (seed, j) through the SplitMix64 finalizer, whose output
// is a bijection of the mixed input — distinct j always gives distinct
// sub-seeds, and one-bit input changes avalanche across the word.
func SubSeed(seed int64, j uint64) int64 {
	z := uint64(seed) + (j+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

func (c Config) workers(trials int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > trials {
		w = trials
	}
	return w
}

// TrialFunc runs one independent trial. It must be a pure function of
// (trial, seed) — no shared mutable state — so trials can run on any
// worker in any order. The context is cancelled when another trial fails
// or the caller aborts; long trials may honour it early.
type TrialFunc[T any] func(ctx context.Context, trial int, seed int64) (T, error)

// Run executes trials 0..n-1 across the worker pool and returns their
// results in trial order. On error it cancels outstanding work and
// returns the failing trial's error (lowest trial index wins when
// several fail before the pool drains).
func Run[T any](ctx context.Context, cfg Config, n int, fn TrialFunc[T]) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative trial count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errTrial int
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < errTrial {
			firstErr, errTrial = err, i
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < cfg.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				r, err := fn(ctx, i, cfg.SeedFor(i))
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RunSample executes duration-valued trials and folds the results into a
// metrics.Sample in trial order. Folding in seed order (rather than
// merging worker-local accumulators in completion order) makes the
// returned statistics bit-identical to a sequential run for every
// Workers setting.
func RunSample(ctx context.Context, cfg Config, n int, fn TrialFunc[time.Duration]) (*metrics.Sample, error) {
	ds, err := Run(ctx, cfg, n, fn)
	if err != nil {
		return nil, err
	}
	var s metrics.Sample
	for _, d := range ds {
		s.Add(d)
	}
	return &s, nil
}
