package runner

import (
	"math"
	"testing"
)

// TestSeedForOverflowWraps pins the documented two's-complement wrap: a
// BaseSeed at MaxInt64 must produce defined, distinct, deterministic seeds
// for a 10k-trial campaign rather than faulting or collapsing.
func TestSeedForOverflowWraps(t *testing.T) {
	cfg := Config{BaseSeed: math.MaxInt64}
	const n = 10_000
	seen := make(map[int64]int, n)
	for i := 0; i < n; i++ {
		s := cfg.SeedFor(i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: trials %d and %d both got %d", prev, i, s)
		}
		seen[s] = i
	}
	// Wrap really happened (trial 1 crossed MaxInt64 into negative space)
	// and is reproducible.
	if s := cfg.SeedFor(1); s >= 0 {
		t.Fatalf("SeedFor(1) = %d, expected negative after wrap", s)
	}
	if a, b := cfg.SeedFor(9999), cfg.SeedFor(9999); a != b {
		t.Fatalf("SeedFor not deterministic: %d vs %d", a, b)
	}
}

// TestSeedForDistinctAtFleetScale checks an ordinary base seed stays
// collision-free across a fleet-scale campaign.
func TestSeedForDistinctAtFleetScale(t *testing.T) {
	cfg := Config{BaseSeed: 2002}
	seen := make(map[int64]struct{}, 50_000)
	for i := 0; i < 50_000; i++ {
		s := cfg.SeedFor(i)
		if _, dup := seen[s]; dup {
			t.Fatalf("seed collision at trial %d", i)
		}
		seen[s] = struct{}{}
	}
}

// TestSubSeedDistinctAndDeterministic: distinct children per trial seed,
// stable across calls, full-range output.
func TestSubSeedDistinctAndDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 2002, math.MaxInt64, math.MinInt64} {
		seen := make(map[int64]uint64, 10_000)
		for j := uint64(0); j < 10_000; j++ {
			s := SubSeed(seed, j)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed %d: children %d and %d collide on %d", seed, prev, j, s)
			}
			seen[s] = j
			if s != SubSeed(seed, j) {
				t.Fatalf("SubSeed(%d, %d) not deterministic", seed, j)
			}
		}
	}
}

// TestSubSeedDecorrelatesTrials: child j of trial seed s and child j of
// trial seed s+1 must not be related by the trial-seed delta (the failure
// mode of linear striding at both levels).
func TestSubSeedDecorrelatesTrials(t *testing.T) {
	cfg := Config{BaseSeed: 2002}
	const trials, children = 200, 50
	seen := make(map[int64]struct{}, trials*children)
	for i := 0; i < trials; i++ {
		trialSeed := cfg.SeedFor(i)
		for j := uint64(0); j < children; j++ {
			s := SubSeed(trialSeed, j)
			if _, dup := seen[s]; dup {
				t.Fatalf("cross-trial child seed collision at trial %d child %d", i, j)
			}
			seen[s] = struct{}{}
		}
	}
	// Deltas between matching children of adjacent trials must vary —
	// a constant delta would mean the mix preserved the stride.
	d1 := SubSeed(cfg.SeedFor(1), 0) - SubSeed(cfg.SeedFor(0), 0)
	d2 := SubSeed(cfg.SeedFor(2), 0) - SubSeed(cfg.SeedFor(1), 0)
	if d1 == d2 {
		t.Fatalf("child seeds preserve the trial stride (delta %d)", d1)
	}
}
