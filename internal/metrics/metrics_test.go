package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func sec(f float64) time.Duration { return time.Duration(f * float64(time.Second)) }

func TestSampleMeanStd(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(sec(v))
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.MeanSeconds(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// population variance of this classic set is 4; sample stddev uses n-1.
	wantStd := math.Sqrt(32.0 / 7.0)
	if got := s.StdDev().Seconds(); math.Abs(got-wantStd) > 1e-9 {
		t.Fatalf("std = %v, want %v", got, wantStd)
	}
	if s.Min() != sec(2) || s.Max() != sec(9) {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleSingleton(t *testing.T) {
	var s Sample
	s.Add(3 * time.Second)
	if s.Mean() != 3*time.Second || s.StdDev() != 0 || s.CV() != 0 {
		t.Fatalf("singleton stats wrong: %v %v %v", s.Mean(), s.StdDev(), s.CV())
	}
	p, err := s.Percentile(50)
	if err != nil || p != 3*time.Second {
		t.Fatalf("P50 = %v, %v", p, err)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(sec(float64(i)))
	}
	p50, err := s.Percentile(50)
	if err != nil {
		t.Fatalf("P50: %v", err)
	}
	if math.Abs(p50.Seconds()-50.5) > 1e-9 {
		t.Fatalf("P50 = %v, want 50.5s", p50)
	}
	p100, _ := s.Percentile(100)
	if p100 != sec(100) {
		t.Fatalf("P100 = %v", p100)
	}
	if _, err := s.Percentile(0); err == nil {
		t.Fatal("P0 accepted")
	}
	if _, err := s.Percentile(101); err == nil {
		t.Fatal("P101 accepted")
	}
	var empty Sample
	if _, err := empty.Percentile(50); err != ErrNoSamples {
		t.Fatalf("empty percentile err = %v", err)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var empty Sample
	if _, err := empty.Percentile(50); err != ErrNoSamples {
		t.Fatalf("n=0 err = %v", err)
	}
	var one Sample
	one.Add(7 * time.Second)
	for _, p := range []float64{1, 50, 100} {
		if got, err := one.Percentile(p); err != nil || got != 7*time.Second {
			t.Fatalf("n=1 P%v = %v, %v", p, got, err)
		}
	}
	var s Sample
	s.Add(sec(1))
	s.Add(sec(3))
	// Interpolation between ranks: P50 of {1,3} is the midpoint.
	if got, _ := s.Percentile(50); got != sec(2) {
		t.Fatalf("P50 = %v, want 2s", got)
	}
	if got, _ := s.Percentile(75); got != sec(2.5) {
		t.Fatalf("P75 = %v, want 2.5s", got)
	}
	if got, _ := s.Percentile(100); got != sec(3) {
		t.Fatalf("P100 = %v, want max", got)
	}
}

func TestPercentileCacheInvalidation(t *testing.T) {
	var s Sample
	s.Add(sec(10))
	s.Add(sec(20))
	if got, _ := s.Percentile(100); got != sec(20) {
		t.Fatalf("P100 = %v", got)
	}
	// Add after a Percentile call must invalidate the cached view.
	s.Add(sec(30))
	if got, _ := s.Percentile(100); got != sec(30) {
		t.Fatalf("P100 after Add = %v, want 30s", got)
	}
	// Merge must invalidate it too.
	var o Sample
	o.Add(sec(40))
	s.Merge(&o)
	if got, _ := s.Percentile(100); got != sec(40) {
		t.Fatalf("P100 after Merge = %v, want 40s", got)
	}
	// Repeated calls on a settled sample reuse the cache and stay exact.
	p1, _ := s.Percentile(50)
	p2, _ := s.Percentile(50)
	if p1 != p2 {
		t.Fatalf("cached P50 unstable: %v vs %v", p1, p2)
	}
}

func TestMergeMatchesSequentialAdd(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9, 1.5, 12.25, 0.75}
	var whole Sample
	for _, v := range vals {
		whole.Add(sec(v))
	}
	var a, b Sample
	for _, v := range vals[:5] {
		a.Add(sec(v))
	}
	for _, v := range vals[5:] {
		b.Add(sec(v))
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.MeanSeconds()-whole.MeanSeconds()) > 1e-12 {
		t.Fatalf("mean = %v, want %v", a.MeanSeconds(), whole.MeanSeconds())
	}
	if math.Abs(a.StdDev().Seconds()-whole.StdDev().Seconds()) > 1e-9 {
		t.Fatalf("std = %v, want %v", a.StdDev(), whole.StdDev())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("min/max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	pa, _ := a.Percentile(90)
	pw, _ := whole.Percentile(90)
	if pa != pw {
		t.Fatalf("P90 = %v, want %v", pa, pw)
	}
	// b is untouched by the merge.
	if b.N() != len(vals[5:]) {
		t.Fatalf("merge mutated the argument: N = %d", b.N())
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var s Sample
	s.Merge(nil)
	s.Merge(&Sample{})
	if s.N() != 0 {
		t.Fatalf("empty merges changed N to %d", s.N())
	}
	var o Sample
	o.Add(sec(3))
	o.Add(sec(5))
	s.Merge(&o) // empty receiver copies the argument
	if s.N() != 2 || s.Min() != sec(3) || s.Max() != sec(5) {
		t.Fatalf("copy merge: N=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
	// The copy is deep: growing s must not disturb o's buffer.
	s.Add(sec(100))
	if o.N() != 2 {
		t.Fatalf("merge aliased the argument buffer")
	}
	if p, _ := o.Percentile(100); p != sec(5) {
		t.Fatalf("argument P100 = %v after receiver Add", p)
	}
}

// TestConcurrentMerge exercises Merge from many goroutines under -race:
// workers accumulate locally and combine into a shared sample under a
// mutex (Sample itself is documented as not internally synchronized).
func TestConcurrentMerge(t *testing.T) {
	const workers, perWorker = 8, 250
	var (
		mu     sync.Mutex
		merged Sample
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local Sample
			for i := 0; i < perWorker; i++ {
				local.Add(time.Duration(w*perWorker+i) * time.Millisecond)
			}
			mu.Lock()
			merged.Merge(&local)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	n := workers * perWorker
	if merged.N() != n {
		t.Fatalf("N = %d, want %d", merged.N(), n)
	}
	// Values are 0..n-1 ms regardless of merge order.
	wantMean := float64(n-1) / 2 / 1000
	if math.Abs(merged.MeanSeconds()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", merged.MeanSeconds(), wantMean)
	}
	if merged.Min() != 0 || merged.Max() != time.Duration(n-1)*time.Millisecond {
		t.Fatalf("min/max = %v/%v", merged.Min(), merged.Max())
	}
}

func TestCV(t *testing.T) {
	var s Sample
	for i := 0; i < 50; i++ {
		s.Add(10 * time.Second)
	}
	if cv := s.CV(); cv != 0 {
		t.Fatalf("constant sample CV = %v, want 0", cv)
	}
}

func TestAvailability(t *testing.T) {
	tests := []struct {
		mttf, mttr time.Duration
		want       float64
	}{
		{99 * time.Second, 1 * time.Second, 0.99},
		{time.Hour, 0, 1.0},
		{0, time.Second, 0},
		{time.Hour, -time.Second, 1.0},
	}
	for _, tt := range tests {
		if got := Availability(tt.mttf, tt.mttr); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("Availability(%v,%v) = %v, want %v", tt.mttf, tt.mttr, got, tt.want)
		}
	}
}

func TestDowntime(t *testing.T) {
	if d := Downtime(1); d != 0 {
		t.Fatalf("Downtime(1) = %v", d)
	}
	// "three nines" is famously ~8.76 hours/year.
	d := Downtime(0.999)
	if math.Abs(d.Hours()-8.76) > 0.01 {
		t.Fatalf("Downtime(0.999) = %v hours", d.Hours())
	}
	if d := Downtime(-0.5); d != 365*24*time.Hour {
		t.Fatalf("Downtime(-0.5) = %v", d)
	}
}

func TestWeightedMTTR(t *testing.T) {
	mttf := map[string]time.Duration{
		"fast-failer": 10 * time.Minute,
		"slow-failer": 1000 * time.Minute,
	}
	mttr := map[string]time.Duration{
		"fast-failer": 5 * time.Second,
		"slow-failer": 500 * time.Second,
	}
	got, err := WeightedMTTR(mttf, mttr)
	if err != nil {
		t.Fatalf("WeightedMTTR: %v", err)
	}
	// rates 0.1 and 0.001 per minute; weighted = (0.1*5+0.001*500)/0.101
	want := (0.1*5 + 0.001*500) / 0.101
	if math.Abs(got.Seconds()-want) > 1e-6 {
		t.Fatalf("WeightedMTTR = %v, want %vs", got, want)
	}
}

func TestWeightedMTTRErrors(t *testing.T) {
	if _, err := WeightedMTTR(map[string]time.Duration{"a": time.Hour}, map[string]time.Duration{}); err == nil {
		t.Fatal("missing MTTR accepted")
	}
	if _, err := WeightedMTTR(map[string]time.Duration{"a": 0}, map[string]time.Duration{"a": time.Second}); err == nil {
		t.Fatal("zero MTTF accepted")
	}
	if _, err := WeightedMTTR(nil, nil); err != ErrNoSamples {
		t.Fatal("empty maps should be ErrNoSamples")
	}
}

func TestGroupBounds(t *testing.T) {
	mttfs := []time.Duration{time.Hour, 10 * time.Minute, 5 * time.Hour}
	f, err := GroupMTTFBound(mttfs)
	if err != nil || f != 10*time.Minute {
		t.Fatalf("GroupMTTFBound = %v, %v", f, err)
	}
	mttrs := []time.Duration{5 * time.Second, 21 * time.Second, 6 * time.Second}
	r, err := GroupMTTRBound(mttrs)
	if err != nil || r != 21*time.Second {
		t.Fatalf("GroupMTTRBound = %v, %v", r, err)
	}
	if _, err := GroupMTTFBound(nil); err != ErrNoSamples {
		t.Fatal("empty MTTF bound should error")
	}
	if _, err := GroupMTTRBound(nil); err != ErrNoSamples {
		t.Fatal("empty MTTR bound should error")
	}
}

// Property: mean is always within [min, max] and CV is non-negative.
func TestPropertySampleInvariants(t *testing.T) {
	f := func(ms []uint16) bool {
		if len(ms) == 0 {
			return true
		}
		var s Sample
		for _, m := range ms {
			s.Add(time.Duration(m) * time.Millisecond)
		}
		mean := s.MeanSeconds()
		return mean >= s.Min().Seconds()-1e-9 &&
			mean <= s.Max().Seconds()+1e-9 &&
			s.CV() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted MTTR lies between the min and max component MTTR.
func TestPropertyWeightedMTTRBounds(t *testing.T) {
	f := func(r1, r2, r3 uint16) bool {
		mttf := map[string]time.Duration{
			"a": 10 * time.Minute, "b": time.Hour, "c": 5 * time.Hour,
		}
		mttr := map[string]time.Duration{
			"a": time.Duration(r1+1) * time.Millisecond,
			"b": time.Duration(r2+1) * time.Millisecond,
			"c": time.Duration(r3+1) * time.Millisecond,
		}
		w, err := WeightedMTTR(mttf, mttr)
		if err != nil {
			return false
		}
		min, max := mttr["a"], mttr["a"]
		for _, d := range mttr {
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		return w >= min-time.Microsecond && w <= max+time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
