package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestHistIndexMonotoneAndBounded(t *testing.T) {
	// Every bucket boundary must map inside the array, and the index must
	// be non-decreasing in the value (otherwise quantiles are nonsense).
	prev := -1
	for v := int64(0); v < 4096; v++ {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of [0,%d)", v, i, histBuckets)
		}
		if i < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
	// Spot-check the extremes of the representable range.
	for _, v := range []int64{math.MaxInt64, math.MaxInt64 - 1, 1 << 62, (1 << 62) - 1} {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of [0,%d)", v, i, histBuckets)
		}
	}
	if got := histIndex(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("histIndex(MaxInt64) = %d, want top bucket %d", got, histBuckets-1)
	}
}

func TestHistUpperBoundsBucket(t *testing.T) {
	// histUpper(i) must be the largest value mapping to bucket i: the value
	// itself lands in i, value+1 lands in i+1.
	for i := 0; i < histBuckets; i++ {
		u := histUpper(i)
		if got := histIndex(u); got != i {
			t.Fatalf("histIndex(histUpper(%d)=%d) = %d", i, u, got)
		}
		if u < math.MaxInt64 {
			if got := histIndex(u + 1); got != i+1 {
				t.Fatalf("histIndex(histUpper(%d)+1) = %d, want %d", i, got, i+1)
			}
		}
	}
}

// TestHistQuantileErrorBound drives random latency data through both Hist
// and the exact Sample and checks the histogram's quantiles stay within
// the bucket geometry's relative error bound of the exact order statistic.
func TestHistQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		var h Hist
		var s Sample
		// Log-normal-ish latencies spanning microseconds to seconds — the
		// shape a request plane actually produces (tight body, long tail).
		n := 20000
		for i := 0; i < n; i++ {
			v := time.Duration(math.Exp(rng.NormFloat64()*1.5+12)) * time.Nanosecond
			h.Record(v)
			s.Add(v)
		}
		for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
			hq, err := h.Quantile(q)
			if err != nil {
				t.Fatalf("Quantile(%v): %v", q, err)
			}
			sq, err := s.Percentile(q * 100)
			if err != nil {
				t.Fatalf("Percentile(%v): %v", q*100, err)
			}
			// The hist is quantized to 1/32 relative width and uses
			// nearest-rank while Sample interpolates; allow 2 bucket widths.
			tol := float64(sq) / 16
			if diff := math.Abs(float64(hq - sq)); diff > tol {
				t.Errorf("trial %d q=%v: hist %v vs exact %v (diff %v > tol %v)",
					trial, q, hq, sq, time.Duration(diff), time.Duration(tol))
			}
		}
	}
}

// TestHistMergeExact checks that merging partial histograms is lossless:
// any split of a recording stream merges back to the identical histogram,
// in any association or order. This is what lets the runner fold
// worker-local histograms in seed order and stay bit-identical to a
// sequential run. (The fold-under-runner integration lives in
// hist_runner_test.go to avoid the import cycle with internal/runner.)
func TestHistMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]time.Duration, 9999)
	for i := range vals {
		vals[i] = time.Duration(rng.Int63n(int64(5 * time.Second)))
	}

	var whole Hist
	for _, v := range vals {
		whole.Record(v)
	}

	// Split into three unequal parts.
	var a, b, c Hist
	for i, v := range vals {
		switch {
		case i < 1000:
			a.Record(v)
		case i < 5000:
			b.Record(v)
		default:
			c.Record(v)
		}
	}

	merge := func(hs ...*Hist) Hist {
		var out Hist
		for _, h := range hs {
			out.Merge(h)
		}
		return out
	}

	// Associativity: (a+b)+c == a+(b+c).
	ab := merge(&a, &b)
	abc1 := merge(&ab, &c)
	bc := merge(&b, &c)
	abc2 := merge(&a, &bc)
	if abc1 != abc2 {
		t.Fatal("merge not associative")
	}
	// Commutativity: c+b+a == a+b+c.
	abc3 := merge(&c, &b, &a)
	if abc1 != abc3 {
		t.Fatal("merge not commutative")
	}
	// Losslessness: merged parts == whole-stream recording.
	if abc1 != whole {
		t.Fatal("merged parts differ from whole-stream histogram")
	}
	// Merging must not modify the source.
	var b2 Hist
	for i, v := range vals {
		if i >= 1000 && i < 5000 {
			b2.Record(v)
		}
	}
	if b != b2 {
		t.Fatal("Merge modified its argument")
	}
}

// TestHistCoordinatedOmission is the regression test for the classic load-
// generator lie: a closed-loop driver that blocks on a stalled service
// records ONE slow sample where an open-loop arrival process would have
// recorded thousands. RecordCorrected must backfill those, inflating p99.
func TestHistCoordinatedOmission(t *testing.T) {
	const (
		interval = 1 * time.Millisecond
		stall    = 2 * time.Second // a process-restart-sized outage
	)
	// 10s of healthy traffic at 1ms intervals, 100µs latency...
	var naive, corrected Hist
	for i := 0; i < 10000; i++ {
		naive.Record(100 * time.Microsecond)
		corrected.RecordCorrected(100*time.Microsecond, interval)
	}
	// ...then the service stalls for 2s and the closed-loop driver sees a
	// single 2s response.
	naive.Record(stall)
	corrected.RecordCorrected(stall, interval)

	np99, err := naive.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	cp99, err := corrected.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	// Naive measurement hides the stall entirely at p99.
	if np99 > 200*time.Microsecond {
		t.Fatalf("naive p99 = %v, expected the stall to be hidden", np99)
	}
	// Corrected measurement must surface it: ~2000 synthetic samples out of
	// ~12000 total put the stall well inside the top 1%.
	if cp99 < 100*time.Millisecond {
		t.Fatalf("corrected p99 = %v, stall not surfaced (naive %v)", cp99, np99)
	}
	// The backfill count itself: stall/interval extra observations.
	wantExtra := uint64(stall/interval) - 1
	if got := corrected.Count() - naive.Count(); got != wantExtra {
		t.Fatalf("corrected backfilled %d samples, want %d", got, wantExtra)
	}
}

func TestHistEmptyAndBasicStats(t *testing.T) {
	var h Hist
	if _, err := h.Quantile(0.5); err != ErrNoSamples {
		t.Fatalf("empty Quantile err = %v, want ErrNoSamples", err)
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty hist stats not zero")
	}
	h.Record(10 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	h.Record(-5 * time.Millisecond) // clamps to 0
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v, want 0 (negative clamp)", h.Min())
	}
	if h.Max() != 30*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Sum() != 40*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
	if _, err := h.Quantile(0); err == nil {
		t.Fatal("Quantile(0) must error")
	}
	if _, err := h.Quantile(1.5); err == nil {
		t.Fatal("Quantile(1.5) must error")
	}
	// q=1 is the max bucket, clamped to the exact max.
	q1, err := h.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != 30*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want exact max", q1)
	}
}

// TestHistRecordAllocs pins the zero-allocation contract: Record and
// Quantile sit on the request plane's steady-state path.
func TestHistRecordAllocs(t *testing.T) {
	var h Hist
	d := 3 * time.Millisecond
	if avg := testing.AllocsPerRun(1000, func() {
		h.Record(d)
	}); avg != 0 {
		t.Fatalf("Record allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := h.Quantile(0.99); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Quantile allocates %v/op, want 0", avg)
	}
	var o Hist
	o.Record(d)
	if avg := testing.AllocsPerRun(100, func() {
		h.Merge(&o)
	}); avg != 0 {
		t.Fatalf("Merge allocates %v/op, want 0", avg)
	}
}

func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}
