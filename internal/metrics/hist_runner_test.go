package metrics_test

// The merge-under-runner-folding test lives in an external test package:
// internal/runner imports internal/metrics, so the in-package tests cannot
// import the runner without a cycle. Hist is a comparable value type, so
// == still checks bit-identity from out here.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/runner"
)

// trialHist is what one worker-local trial records: a deterministic
// function of the trial seed, like every real campaign trial.
func trialHist(seed int64, n int) metrics.Hist {
	rng := rand.New(rand.NewSource(seed))
	var h metrics.Hist
	for i := 0; i < n; i++ {
		h.Record(time.Duration(rng.Int63n(int64(2 * time.Second))))
	}
	return h
}

// TestHistRunnerFoldIdentity runs the same trial campaign at several
// worker counts and checks the seed-ordered fold of per-trial histograms
// is bit-identical — the guarantee every parallel campaign leans on — and
// that the parallel fold equals a plain sequential recording.
func TestHistRunnerFoldIdentity(t *testing.T) {
	const trials = 24
	cfg := runner.Config{BaseSeed: 1234}

	fold := func(workers int) metrics.Hist {
		c := cfg
		c.Workers = workers
		hs, err := runner.Run(context.Background(), c, trials,
			func(_ context.Context, trial int, seed int64) (metrics.Hist, error) {
				return trialHist(seed, 500+trial), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var total metrics.Hist
		for i := range hs {
			total.Merge(&hs[i])
		}
		return total
	}

	seq := fold(1)
	for _, w := range []int{2, 4, 7} {
		if par := fold(w); par != seq {
			t.Fatalf("fold with %d workers differs from sequential", w)
		}
	}

	// Sequential ground truth without the runner at all.
	var direct metrics.Hist
	for i := 0; i < trials; i++ {
		h := trialHist(cfg.SeedFor(i), 500+i)
		direct.Merge(&h)
	}
	if direct != seq {
		t.Fatal("runner fold differs from direct sequential recording")
	}
}
