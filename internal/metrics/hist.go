package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Hist is a fixed-size log-bucketed latency histogram (the HDR-histogram
// bucketing scheme): durations are classified by their most significant
// bit into octaves, each octave split into histSubBuckets linear
// sub-buckets, so the relative quantization error is bounded by
// 1/histSubBuckets everywhere in the range.
//
// Hist exists because Sample retains every observation for exact
// percentiles — the right trade for a few thousand recovery times, and the
// wrong one for the request plane, where a single campaign records tens of
// millions of latencies. Hist is the streaming complement:
//
//   - Record is zero-allocation (two integer updates into an inline
//     array), so it can sit on the open-loop engine's per-request path
//     without moving the 0 allocs/request floor.
//   - Merge adds bucket counts cell-wise, which is lossless: folding
//     worker-local histograms in seed order yields a histogram
//     bit-identical to a sequential run, the same guarantee the runner
//     gives Sample.
//   - Quantile has bounded relative error (≤ 1/32 ≈ 3.1% with the default
//     geometry), pinned against Sample.Percentile by tests.
//
// The zero value is ready to use. Hist is a value type with an inline
// bucket array: embed it, copy it across channels, return it from trials —
// no pointers, no allocation. Like Sample it is not internally
// synchronized.
type Hist struct {
	count uint64
	sum   int64 // nanoseconds; overflows only past ~292 years of recorded latency
	min   int64 // nanoseconds; valid when count > 0
	max   int64
	// buckets[i] counts observations whose index (see histIndex) is i.
	buckets [histBuckets]uint32
	// overflow counts per-bucket saturations: a uint32 cell that would wrap
	// instead sticks at MaxUint32 and the loss is counted here, so a
	// pathological workload degrades visibly rather than silently.
	overflow uint64
}

const (
	// histSubBits is the number of linear sub-bucket bits per octave:
	// 2^5 = 32 sub-buckets, bounding relative error by 1/32.
	histSubBits = 5
	histSubs    = 1 << histSubBits
	// histBuckets covers every positive int64 nanosecond duration:
	// values below histSubs are exact (one bucket each); each further
	// octave (there are 63-histSubBits of them) adds histSubs buckets.
	histBuckets = histSubs + (63-histSubBits)*histSubs
)

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	if v < histSubs {
		return int(v) // exact region
	}
	// g is the octave: how far the value's MSB sits above the exact region.
	g := bits.Len64(uint64(v)) - histSubBits - 1
	// Shifting by g brings the value into [histSubs, 2*histSubs); the low
	// histSubBits bits select the linear sub-bucket.
	return g*histSubs + int(v>>uint(g))
}

// histUpper returns the inclusive upper bound of bucket i, the value
// Quantile reports for observations in it (conservative: never under-reports
// a latency, so deadline/SLO checks against quantiles stay sound).
func histUpper(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	g := i/histSubs - 1
	return (int64(i-g*histSubs)+1)<<uint(g) - 1
}

// Record adds one duration observation. Negative durations clamp to zero
// (a scaled clock can report a tiny negative delta across a restart
// boundary). Zero-allocation and O(1).
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	i := histIndex(v)
	if h.buckets[i] == math.MaxUint32 {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// RecordCorrected records d and then applies coordinated-omission
// correction for a closed-loop measurement: when the observed latency
// exceeds the intended sampling interval, the stalled service also delayed
// the requests that *would* have been issued during the stall, so synthetic
// observations d-interval, d-2·interval, … are recorded down to the
// interval. An open-loop engine with intended-start-time accounting does
// not need this (every scheduled arrival is measured against its intended
// instant); closed-loop drivers — the TCP pump, any send-after-reply loop —
// do, or a 12 s stall collapses into one slow sample instead of thousands
// of blown deadlines.
func (h *Hist) RecordCorrected(d, interval time.Duration) {
	h.Record(d)
	if interval <= 0 {
		return
	}
	for d > interval {
		d -= interval
		h.Record(d)
	}
}

// Merge folds o into h by adding bucket counts cell-wise. The merge is
// exact (no re-quantization), associative and commutative, so the runner's
// seed-ordered fold of worker-local histograms is bit-identical to a
// sequential run. Merge does not modify o.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.count += o.count
	h.sum += o.sum
	h.overflow += o.overflow
	for i := range h.buckets {
		c := uint64(h.buckets[i]) + uint64(o.buckets[i])
		if c > math.MaxUint32 {
			h.overflow += c - math.MaxUint32
			c = math.MaxUint32
		}
		h.buckets[i] = uint32(c)
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the sum of all recorded durations.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the mean recorded duration (exact: sum/count, not
// reconstructed from buckets).
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Min returns the smallest recorded duration (exact).
func (h *Hist) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded duration (exact).
func (h *Hist) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q·count-th observation, clamped into [Min, Max].
// The relative error versus the exact order statistic is bounded by the
// bucket geometry: ≤ 1/32.
func (h *Hist) Quantile(q float64) (time.Duration, error) {
	if h.count == 0 {
		return 0, ErrNoSamples
	}
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("metrics: quantile %v out of (0,1]", q)
	}
	// rank is the 1-based index of the target observation under the
	// nearest-rank definition.
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += uint64(h.buckets[i])
		if cum >= rank {
			v := histUpper(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v), nil
		}
	}
	// Only reachable when saturated cells swallowed observations; report
	// the exact maximum.
	return time.Duration(h.max), nil
}

// Overflow reports how many observations were dropped from bucket counts
// because a 32-bit cell saturated. Zero in any sane workload; non-zero
// means quantiles are computed over a truncated distribution.
func (h *Hist) Overflow() uint64 { return h.overflow }

// Reset returns the histogram to its zero state. Campaigns use it to
// discard warm-up samples before the measured window opens.
func (h *Hist) Reset() { *h = Hist{} }
