// Package metrics provides the statistical machinery the paper's
// evaluation rests on: MTTR/MTTF estimation from samples, coefficient of
// variation (the paper assumes failure/recovery time distributions with
// small CVs), percentiles and availability arithmetic.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// ErrNoSamples is returned when a statistic is requested from an empty
// sample set.
var ErrNoSamples = errors.New("metrics: no samples")

// Sample accumulates duration observations using Welford's online
// algorithm, so means and variances are numerically stable regardless of
// sample count. The zero value is ready to use.
type Sample struct {
	n    int
	mean float64 // seconds
	m2   float64
	min  float64
	max  float64
	all  []float64 // retained for percentiles
	// sorted caches the ascending view of all; nil means stale. Rebuilt
	// lazily by Percentile, invalidated by Add and Merge.
	sorted []float64
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	x := d.Seconds()
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	s.all = append(s.all, x)
	s.sorted = nil
}

// Merge folds another sample into s using the parallel Welford combine of
// Chan, Golub & LeVeque, so worker-local accumulators can be joined
// without revisiting observations. The observation buffers are
// concatenated (percentiles stay exact) and min/max are combined. Merge
// does not modify o. Sample is not internally synchronized: concurrent
// Merge calls into the same receiver need external locking.
func (s *Sample) Merge(o *Sample) {
	if o == nil || o.n == 0 {
		return
	}
	if s.n == 0 {
		s.n, s.mean, s.m2, s.min, s.max = o.n, o.mean, o.m2, o.min, o.max
		s.all = append([]float64(nil), o.all...)
		s.sorted = nil
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
	s.all = append(s.all, o.all...)
	s.sorted = nil
}

// N reports the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean.
func (s *Sample) Mean() time.Duration {
	return time.Duration(s.mean * float64(time.Second))
}

// MeanSeconds returns the sample mean in seconds.
func (s *Sample) MeanSeconds() float64 { return s.mean }

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Sample) StdDev() time.Duration {
	if s.n < 2 {
		return 0
	}
	return time.Duration(math.Sqrt(s.m2/float64(s.n-1)) * float64(time.Second))
}

// CV returns the coefficient of variation (stddev/mean). The paper's
// restart-tree reasoning assumes distributions with small CVs; experiments
// assert this on their own measurements.
func (s *Sample) CV() float64 {
	if s.n < 2 || s.mean == 0 {
		return 0
	}
	return math.Sqrt(s.m2/float64(s.n-1)) / s.mean
}

// Min returns the smallest observation.
func (s *Sample) Min() time.Duration {
	return time.Duration(s.min * float64(time.Second))
}

// Max returns the largest observation.
func (s *Sample) Max() time.Duration {
	return time.Duration(s.max * float64(time.Second))
}

// Percentile returns the p-th percentile (0 < p <= 100) using linear
// interpolation between closest ranks. The sorted view is cached across
// calls and invalidated by Add/Merge, so percentile sweeps over a settled
// sample sort once instead of once per call.
func (s *Sample) Percentile(p float64) (time.Duration, error) {
	if s.n == 0 {
		return 0, ErrNoSamples
	}
	if p <= 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %v out of (0,100]", p)
	}
	if s.sorted == nil {
		s.sorted = make([]float64, len(s.all))
		copy(s.sorted, s.all)
		sort.Float64s(s.sorted)
	}
	sorted := s.sorted
	if len(sorted) == 1 {
		return time.Duration(sorted[0] * float64(time.Second)), nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	frac := rank - float64(lo)
	v := sorted[lo]*(1-frac) + sorted[hi]*frac
	return time.Duration(v * float64(time.Second)), nil
}

// Availability computes MTTF/(MTTF+MTTR), the standard ratio the paper
// optimises by driving MTTR down.
func Availability(mttf, mttr time.Duration) float64 {
	if mttf <= 0 {
		return 0
	}
	if mttr < 0 {
		mttr = 0
	}
	return mttf.Seconds() / (mttf.Seconds() + mttr.Seconds())
}

// Downtime returns the expected downtime per year implied by an
// availability ratio.
func Downtime(availability float64) time.Duration {
	if availability >= 1 {
		return 0
	}
	if availability < 0 {
		availability = 0
	}
	const year = 365 * 24 * time.Hour
	return time.Duration((1 - availability) * float64(year))
}

// WeightedMTTR computes a system-level mean time to recover where each
// component's recovery time is weighted by its failure rate (1/MTTF): the
// components that fail most often dominate, exactly the arithmetic behind
// the paper's "factor of four" headline.
func WeightedMTTR(mttf map[string]time.Duration, mttr map[string]time.Duration) (time.Duration, error) {
	var sumRate, sumWeighted float64
	for name, f := range mttf {
		r, ok := mttr[name]
		if !ok {
			return 0, fmt.Errorf("metrics: no MTTR for component %q", name)
		}
		if f <= 0 {
			return 0, fmt.Errorf("metrics: non-positive MTTF for component %q", name)
		}
		rate := 1 / f.Seconds()
		sumRate += rate
		sumWeighted += rate * r.Seconds()
	}
	if sumRate == 0 {
		return 0, ErrNoSamples
	}
	return time.Duration(sumWeighted / sumRate * float64(time.Second)), nil
}

// GroupMTTFBound returns the paper's restart-group MTTF upper bound
// min(MTTF_ci) over the member components.
func GroupMTTFBound(mttfs []time.Duration) (time.Duration, error) {
	if len(mttfs) == 0 {
		return 0, ErrNoSamples
	}
	min := mttfs[0]
	for _, d := range mttfs[1:] {
		if d < min {
			min = d
		}
	}
	return min, nil
}

// GroupMTTRBound returns the paper's restart-group MTTR lower bound
// max(MTTR_ci) over the member components.
func GroupMTTRBound(mttrs []time.Duration) (time.Duration, error) {
	if len(mttrs) == 0 {
		return 0, ErrNoSamples
	}
	max := mttrs[0]
	for _, d := range mttrs[1:] {
		if d > max {
			max = d
		}
	}
	return max, nil
}
