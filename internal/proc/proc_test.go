package proc

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// testComp is a minimal handler: ready after startup*stretch, replies pong
// to pings once ready, records received messages.
type testComp struct {
	startup  time.Duration
	received []*xmlcmd.Message
	ready    bool
	startGen int
}

func (tc *testComp) Start(ctx Context) {
	tc.startGen = ctx.Incarnation()
	d := time.Duration(float64(tc.startup) * ctx.Stretch())
	ctx.After(d, func() {
		tc.ready = true
		ctx.Ready()
	})
}

func (tc *testComp) Receive(ctx Context, m *xmlcmd.Message) {
	tc.received = append(tc.received, m)
	if m.Kind() == xmlcmd.KindPing && tc.ready {
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}

// directTransport delivers straight back into the manager.
type directTransport struct{ mgr *Manager }

func (d directTransport) Send(m *xmlcmd.Message) { d.mgr.Deliver(m) }

func newTestManager(t *testing.T) (*Manager, *sim.Kernel) {
	t.Helper()
	k := sim.New(11)
	mgr := NewManager(clock.Sim{K: k}, rand.New(rand.NewSource(1)), trace.NewLog())
	mgr.SetTransport(directTransport{mgr: mgr})
	return mgr, k
}

func TestStartAndReady(t *testing.T) {
	mgr, k := newTestManager(t)
	tc := &testComp{startup: 3 * time.Second}
	if err := mgr.Register("a", func() Handler { return tc }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := mgr.Start("a"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st, _ := mgr.State("a")
	if st != Starting {
		t.Fatalf("state = %v, want Starting", st)
	}
	if err := k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mgr.Serving("a") {
		t.Fatal("serving before startup complete")
	}
	if err := k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !mgr.Serving("a") {
		t.Fatal("not serving after startup")
	}
	gen, _ := mgr.Incarnation("a")
	if gen != 1 {
		t.Fatalf("incarnation = %d, want 1", gen)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	mgr, _ := newTestManager(t)
	_ = mgr.Register("a", func() Handler { return &testComp{} })
	if err := mgr.Register("a", func() Handler { return &testComp{} }); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("err = %v, want ErrAlreadyExists", err)
	}
}

func TestUnknownProcessErrors(t *testing.T) {
	mgr, _ := newTestManager(t)
	if err := mgr.Start("ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("Start ghost = %v", err)
	}
	if err := mgr.Kill("ghost", ""); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("Kill ghost = %v", err)
	}
	if _, err := mgr.State("ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("State ghost = %v", err)
	}
	if err := mgr.Restart([]string{"ghost"}); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("Restart ghost = %v", err)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	mgr, _ := newTestManager(t)
	_ = mgr.Register("a", func() Handler { return &testComp{startup: time.Second} })
	_ = mgr.Start("a")
	if err := mgr.Start("a"); !errors.Is(err, ErrNotRunnable) {
		t.Fatalf("second Start = %v, want ErrNotRunnable", err)
	}
}

func TestKillIsFailSilent(t *testing.T) {
	mgr, k := newTestManager(t)
	tc := &testComp{startup: time.Second}
	_ = mgr.Register("a", func() Handler { return tc })
	_ = mgr.Start("a")
	_ = k.RunFor(2 * time.Second)
	if err := mgr.Kill("a", "SIGKILL"); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	st, _ := mgr.State("a")
	if st != Dead {
		t.Fatalf("state = %v, want Dead", st)
	}
	n := len(tc.received)
	if ok := mgr.Deliver(xmlcmd.NewPing("fd", "a", 1, 1)); ok {
		t.Fatal("Deliver to dead process reported consumed")
	}
	if len(tc.received) != n {
		t.Fatal("dead process received a message")
	}
	// Kill twice is a no-op.
	if err := mgr.Kill("a", "again"); err != nil {
		t.Fatalf("second Kill: %v", err)
	}
}

func TestPendingTimersInvalidatedByKill(t *testing.T) {
	mgr, k := newTestManager(t)
	tc := &testComp{startup: 5 * time.Second}
	_ = mgr.Register("a", func() Handler { return tc })
	_ = mgr.Start("a")
	_ = k.RunFor(time.Second)
	_ = mgr.Kill("a", "mid-startup kill")
	_ = k.RunFor(time.Minute)
	if mgr.Serving("a") {
		t.Fatal("killed process became ready from stale timer")
	}
	if tc.ready {
		t.Fatal("stale startup callback ran after kill")
	}
}

func TestRestartCreatesFreshIncarnation(t *testing.T) {
	mgr, k := newTestManager(t)
	var made int
	_ = mgr.Register("a", func() Handler {
		made++
		return &testComp{startup: time.Second}
	})
	_ = mgr.Start("a")
	_ = k.RunFor(2 * time.Second)
	if err := mgr.Restart([]string{"a"}); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	_ = k.RunFor(2 * time.Second)
	if !mgr.Serving("a") {
		t.Fatal("not serving after restart")
	}
	gen, _ := mgr.Incarnation("a")
	if gen != 2 || made != 2 {
		t.Fatalf("incarnation=%d factories=%d, want 2/2", gen, made)
	}
	r, _ := mgr.Restarts("a")
	if r != 1 {
		t.Fatalf("Restarts = %d, want 1", r)
	}
}

func TestBatchContentionStretch(t *testing.T) {
	mgr, k := newTestManager(t)
	mgr.ContentionPerPeer = 0.1
	comps := make(map[string]*testComp)
	for _, name := range []string{"a", "b", "c"} {
		name := name
		tc := &testComp{startup: 10 * time.Second}
		comps[name] = tc
		_ = mgr.Register(name, func() Handler { return tc })
	}
	if err := mgr.StartBatch([]string{"a", "b", "c"}); err != nil {
		t.Fatalf("StartBatch: %v", err)
	}
	// stretch = 1 + 0.1*2 = 1.2 → ready at 12s, not 10s.
	_ = k.RunFor(11 * time.Second)
	if mgr.Serving("a") {
		t.Fatal("batch member ready before stretched startup elapsed")
	}
	_ = k.RunFor(2 * time.Second)
	if !mgr.AllServing("a", "b", "c") {
		t.Fatal("batch members not all serving after stretched startup")
	}
}

func TestSingleStartNoStretch(t *testing.T) {
	mgr, k := newTestManager(t)
	mgr.ContentionPerPeer = 0.5
	tc := &testComp{startup: 10 * time.Second}
	_ = mgr.Register("a", func() Handler { return tc })
	_ = mgr.Start("a")
	_ = k.RunFor(10*time.Second + 100*time.Millisecond)
	if !mgr.Serving("a") {
		t.Fatal("single start was stretched")
	}
}

func TestSilence(t *testing.T) {
	mgr, k := newTestManager(t)
	tc := &testComp{startup: time.Second}
	_ = mgr.Register("a", func() Handler { return tc })
	_ = mgr.Start("a")
	_ = k.RunFor(2 * time.Second)
	var downName string
	mgr.OnDown(func(name, reason string) { downName = name })
	if err := mgr.Silence("a"); err != nil {
		t.Fatalf("Silence: %v", err)
	}
	if mgr.Serving("a") {
		t.Fatal("silenced process still serving")
	}
	if downName != "a" {
		t.Fatal("OnDown not fired for silence")
	}
	st, _ := mgr.State("a")
	if st != Running {
		t.Fatalf("silenced state = %v, want Running", st)
	}
	if mgr.Deliver(xmlcmd.NewPing("fd", "a", 1, 1)) {
		t.Fatal("silenced process consumed a message")
	}
	// Restart clears silence.
	_ = mgr.Restart([]string{"a"})
	_ = k.RunFor(2 * time.Second)
	if !mgr.Serving("a") {
		t.Fatal("restart did not clear silence")
	}
}

func TestOnReadyAndOnBatchCallbacks(t *testing.T) {
	mgr, k := newTestManager(t)
	_ = mgr.Register("a", func() Handler { return &testComp{startup: time.Second} })
	_ = mgr.Register("b", func() Handler { return &testComp{startup: time.Second} })
	var ready []string
	var batches [][]string
	mgr.OnReady(func(name string) { ready = append(ready, name) })
	mgr.OnBatch(func(names []string) { batches = append(batches, names) })
	_ = mgr.StartBatch([]string{"a", "b"})
	_ = k.RunFor(3 * time.Second)
	if len(ready) != 2 {
		t.Fatalf("ready callbacks = %v", ready)
	}
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches = %v", batches)
	}
}

func TestDeliverRoutesToHandler(t *testing.T) {
	mgr, k := newTestManager(t)
	a := &testComp{startup: time.Second}
	fd := &testComp{startup: time.Second}
	_ = mgr.Register("a", func() Handler { return a })
	_ = mgr.Register("fd", func() Handler { return fd })
	_ = mgr.StartBatch([]string{"a", "fd"})
	_ = k.RunFor(3 * time.Second)
	if !mgr.Deliver(xmlcmd.NewPing("fd", "a", 1, 77)) {
		t.Fatal("Deliver failed")
	}
	// a replies pong to fd via the direct transport.
	if len(fd.received) != 1 || fd.received[0].Kind() != xmlcmd.KindPong {
		t.Fatalf("fd received %v", fd.received)
	}
	if fd.received[0].Pong.Nonce != 77 {
		t.Fatalf("nonce = %d", fd.received[0].Pong.Nonce)
	}
}

func TestReceiveDuringStarting(t *testing.T) {
	mgr, k := newTestManager(t)
	a := &testComp{startup: 10 * time.Second}
	_ = mgr.Register("a", func() Handler { return a })
	_ = mgr.Start("a")
	_ = k.RunFor(time.Second)
	if !mgr.Deliver(xmlcmd.NewPing("fd", "a", 1, 1)) {
		t.Fatal("starting process did not accept message")
	}
	if len(a.received) != 1 {
		t.Fatal("message not delivered to starting handler")
	}
	// But it does not pong before ready.
	if a.ready {
		t.Fatal("ready too early")
	}
}

func TestStaleContextIgnored(t *testing.T) {
	mgr, k := newTestManager(t)
	var firstCtx Context
	_ = mgr.Register("a", func() Handler {
		return handlerFunc{
			start: func(ctx Context) {
				if firstCtx == nil {
					firstCtx = ctx
				}
				ctx.After(time.Second, ctx.Ready)
			},
		}
	})
	_ = mgr.Start("a")
	_ = k.RunFor(2 * time.Second)
	_ = mgr.Restart([]string{"a"})
	_ = k.RunFor(2 * time.Second)
	gen, _ := mgr.Incarnation("a")
	if gen != 2 {
		t.Fatalf("gen = %d", gen)
	}
	// Calls on the incarnation-1 context must be no-ops now.
	firstCtx.Fail("stale fail")
	if st, _ := mgr.State("a"); st != Running {
		t.Fatalf("stale Fail affected new incarnation: %v", st)
	}
	firstCtx.Ready()
	if g, _ := mgr.Incarnation("a"); g != 2 {
		t.Fatalf("incarnation changed: %d", g)
	}
}

func TestFailCrashesProcess(t *testing.T) {
	mgr, k := newTestManager(t)
	_ = mgr.Register("a", func() Handler {
		return handlerFunc{
			start: func(ctx Context) {
				ctx.After(time.Second, func() { ctx.Fail("bug") })
			},
		}
	})
	var down string
	mgr.OnDown(func(name, reason string) { down = name + ":" + reason })
	_ = mgr.Start("a")
	_ = k.RunFor(2 * time.Second)
	if st, _ := mgr.State("a"); st != Dead {
		t.Fatalf("state = %v, want Dead", st)
	}
	if down != "a:bug" {
		t.Fatalf("down = %q", down)
	}
}

func TestDowntimeAccounting(t *testing.T) {
	mgr, k := newTestManager(t)
	_ = mgr.Register("a", func() Handler { return &testComp{startup: 2 * time.Second} })
	_ = mgr.Start("a")
	_ = k.RunFor(3 * time.Second) // ready at t=2
	_ = mgr.Kill("a", "kill")     // down at t=3
	_ = k.RunFor(5 * time.Second) // still down until t=8
	_ = mgr.Restart([]string{"a"})
	_ = k.RunFor(3 * time.Second) // ready again at t=10
	d, err := mgr.Downtime("a")
	if err != nil {
		t.Fatalf("Downtime: %v", err)
	}
	if d != 7*time.Second {
		t.Fatalf("downtime = %v, want 7s (killed t=3, ready t=10)", d)
	}
}

func TestNamesOrder(t *testing.T) {
	mgr, _ := newTestManager(t)
	for _, n := range []string{"z", "a", "m"} {
		_ = mgr.Register(n, func() Handler { return &testComp{} })
	}
	names := mgr.Names()
	if names[0] != "z" || names[1] != "a" || names[2] != "m" {
		t.Fatalf("Names = %v, want registration order", names)
	}
}

func TestStateString(t *testing.T) {
	if Running.String() != "running" || Dead.String() != "dead" {
		t.Fatal("state names wrong")
	}
	if State(42).String() == "" {
		t.Fatal("unknown state empty")
	}
}

// handlerFunc adapts closures to Handler.
type handlerFunc struct {
	start   func(Context)
	receive func(Context, *xmlcmd.Message)
}

func (h handlerFunc) Start(ctx Context) { h.start(ctx) }
func (h handlerFunc) Receive(ctx Context, m *xmlcmd.Message) {
	if h.receive != nil {
		h.receive(ctx, m)
	}
}
