package proc

import (
	"github.com/recursive-restart/mercury/internal/obs"
)

// ProcMetrics aggregates the process-wide lifecycle counters for managed
// components: every incarnation launched, every death (kills, crashes,
// restart-action teardowns), and the startup-time distribution that
// dominates recovery time. Increments happen on the dispatch context;
// reads only happen when an obs registry renders them.
type ProcMetrics struct {
	Starts       obs.Counter    // incarnations launched (first starts + restarts)
	Deaths       obs.Counter    // incarnations terminated (kill, crash, restart teardown)
	Microreboots obs.Counter    // subcomponent in-place repairs (process untouched)
	Startup      *obs.Histogram // start to functionally-ready per incarnation
}

// M is the process-wide lifecycle metrics instance.
var M = ProcMetrics{
	Startup: obs.NewHistogram(obs.DefBuckets()...),
}

// RegisterMetrics registers the lifecycle families with an obs registry
// under the mercury_proc_* namespace.
func RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("mercury_proc_starts_total",
		"Component incarnations launched.", &M.Starts)
	r.RegisterCounter("mercury_proc_deaths_total",
		"Component incarnations terminated (kill, crash or restart teardown).", &M.Deaths)
	r.RegisterCounter("mercury_proc_microreboots_total",
		"Subcomponent microreboots (in-place repair, process untouched).", &M.Microreboots)
	r.RegisterHistogram("mercury_proc_startup_seconds",
		"Component start to functionally-ready.", M.Startup)
}
