package proc

import (
	"fmt"
	"strings"
	"time"

	"github.com/recursive-restart/mercury/internal/trace"
)

// Microrebootable is implemented by handlers that host microrebootable
// subcomponents. The process is the container: its protocol shell (pings,
// bus traffic, health beacons) keeps running while an individual
// subcomponent's logic is crashed, and a microreboot repairs just that
// subcomponent by discarding its logic state and reattaching to the
// externalized state in the crash-only store.
type Microrebootable interface {
	Handler
	// SubFail crashes the named subcomponent's logic (short name, without
	// the parent prefix). The container is expected to notice and
	// self-report the failure after its assertion latency.
	SubFail(sub string)
	// SubMicroreboot discards the subcomponent's logic state and begins
	// reattaching it to externalized state, returning the re-init delay
	// after which the subcomponent is functional again.
	SubMicroreboot(sub string) time.Duration
}

// subState tracks one registered subcomponent. Subcomponents have no
// handler of their own — their logic lives inside the parent's Handler —
// but they are first-class restart-tree citizens: they appear in cure
// sets, fire OnDown/OnReady events, and occupy the cheapest rung of the
// escalation ladder.
type subState struct {
	parent       string
	short        string // name within the parent, e.g. "cache"
	state        State
	gen          int // bumped on every microreboot and parent (re)start
	microreboots int
}

// SubName joins a parent component and a subcomponent short name into the
// dotted full name used across trees, cure sets and trace events.
func SubName(parent, short string) string { return parent + "." + short }

// RegisterSub registers a subcomponent of an existing process under the
// dotted name parent.short. The parent's handler must implement
// Microrebootable by the time a fault or microreboot reaches the sub.
func (m *Manager) RegisterSub(parent, short string) error {
	if _, err := m.proc(parent); err != nil {
		return err
	}
	full := SubName(parent, short)
	if m.subs == nil {
		m.subs = make(map[string]*subState)
	}
	if _, ok := m.subs[full]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyExists, full)
	}
	if _, ok := m.procs[full]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyExists, full)
	}
	m.subs[full] = &subState{parent: parent, short: short, state: Stopped}
	m.subOrder = append(m.subOrder, full)
	return nil
}

// IsSub reports whether name is a registered subcomponent.
func (m *Manager) IsSub(name string) bool {
	_, ok := m.subs[name]
	return ok
}

// SubParent returns the hosting process of a subcomponent.
func (m *Manager) SubParent(name string) (string, error) {
	s, ok := m.subs[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownProcess, name)
	}
	return s.parent, nil
}

// Subs returns the full names of parent's subcomponents in registration
// order.
func (m *Manager) Subs(parent string) []string {
	var out []string
	for _, full := range m.subOrder {
		if m.subs[full].parent == parent {
			out = append(out, full)
		}
	}
	return out
}

// SubNames returns every registered subcomponent in registration order.
func (m *Manager) SubNames() []string {
	return append([]string(nil), m.subOrder...)
}

// SubState reports a subcomponent's state: it follows the parent while the
// parent is down or starting, and is otherwise the sub's own state
// (Dead = logic crashed inside a live container, Starting = microreboot
// in progress, Running = attached and functional).
func (m *Manager) SubState(name string) (State, error) {
	s, ok := m.subs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownProcess, name)
	}
	p := m.procs[s.parent]
	if p.state != Running && p.state != Starting {
		return p.state, nil
	}
	return s.state, nil
}

// SubServing reports whether the subcomponent is functional: parent
// serving and sub attached.
func (m *Manager) SubServing(name string) bool {
	s, ok := m.subs[name]
	return ok && m.Serving(s.parent) && s.state == Running
}

// AllSubsServing reports whether every registered subcomponent is
// functional. True when no subs are registered.
func (m *Manager) AllSubsServing() bool {
	for _, full := range m.subOrder {
		if !m.SubServing(full) {
			return false
		}
	}
	return true
}

// SubMicroreboots reports how many microreboots the subcomponent has
// absorbed (process restarts not included).
func (m *Manager) SubMicroreboots(name string) (int, error) {
	s, ok := m.subs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownProcess, name)
	}
	return s.microreboots, nil
}

// Microreboot repairs a single subcomponent in place: the cheapest rung of
// the restart ladder. The parent process must be Running — if it is not,
// the failure belongs to the process level and callers should escalate.
// The sub's logic state is discarded and reattached to the store via the
// handler's SubMicroreboot; after the returned re-init delay the sub is
// functional and OnReady fires for its dotted name.
func (m *Manager) Microreboot(name string) error {
	s, ok := m.subs[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProcess, name)
	}
	p := m.procs[s.parent]
	if p.state != Running {
		return fmt.Errorf("proc: cannot microreboot %s: parent %s is %s", name, s.parent, p.state)
	}
	h, ok := p.handler.(Microrebootable)
	if !ok {
		return fmt.Errorf("proc: %s does not host microrebootable subcomponents", s.parent)
	}
	for _, fn := range m.onBatch {
		fn([]string{name})
	}
	s.gen++
	s.state = Starting
	s.microreboots++
	M.Microreboots.Inc()
	d := h.SubMicroreboot(s.short)
	m.log.Add(m.clk.Now(), trace.ComponentStarting, name, "",
		fmt.Sprintf("microreboot=%d reinit=%.2fs", s.microreboots, d.Seconds()))
	gen, pgen := s.gen, p.gen
	m.clk.AfterFunc(d, func() {
		// A parent restart or a newer microreboot supersedes this one.
		if s.gen != gen || p.gen != pgen || p.state != Running {
			return
		}
		s.state = Running
		m.log.Add(m.clk.Now(), trace.ComponentReady, name, "",
			fmt.Sprintf("microreboot=%d reattached", s.microreboots))
		for _, fn := range m.onReady {
			fn(name)
		}
	})
	return nil
}

// subKill crashes a subcomponent's logic inside a live container. With the
// parent itself down the kill is a no-op — the process-level failure
// already covers it.
func (m *Manager) subKill(name, reason string, kind trace.Kind) error {
	s := m.subs[name]
	p := m.procs[s.parent]
	if p.state != Running && p.state != Starting || p.silenced {
		return nil
	}
	if s.state == Dead {
		return nil
	}
	h, ok := p.handler.(Microrebootable)
	if !ok {
		return fmt.Errorf("proc: %s does not host microrebootable subcomponents", s.parent)
	}
	s.gen++
	s.state = Dead
	h.SubFail(s.short)
	m.log.Add(m.clk.Now(), kind, name, "", reason)
	for _, fn := range m.onDown {
		fn(name, reason)
	}
	return nil
}

// subsOnParentStart resets subcomponents to Starting when their container
// launches a fresh incarnation; they come up with it.
func (m *Manager) subsOnParentStart(parent string) {
	for _, full := range m.subOrder {
		if s := m.subs[full]; s.parent == parent {
			s.gen++
			s.state = Starting
		}
	}
}

// subsOnParentReady marks subcomponents attached when their container
// becomes ready, firing OnReady for each dotted name so recovery actions
// that named them observe completion.
func (m *Manager) subsOnParentReady(parent string) {
	for _, full := range m.subOrder {
		s := m.subs[full]
		if s.parent != parent {
			continue
		}
		s.state = Running
		for _, fn := range m.onReady {
			fn(full)
		}
	}
}

// subsOnParentDown marks subcomponents dead with their container, firing
// OnDown for each dotted name.
func (m *Manager) subsOnParentDown(parent, reason string) {
	for _, full := range m.subOrder {
		s := m.subs[full]
		if s.parent != parent || s.state == Dead || s.state == Stopped {
			continue
		}
		s.gen++
		s.state = Dead
		for _, fn := range m.onDown {
			fn(full, reason)
		}
	}
}

// expandBatch widens a restart batch with the subcomponents of every named
// parent: a batch that restarts ses also repairs ses.cache and ses.est,
// and cure-coverage checks must see that.
func (m *Manager) expandBatch(names []string) []string {
	if len(m.subOrder) == 0 {
		return names
	}
	out := append([]string(nil), names...)
	for _, name := range names {
		out = append(out, m.Subs(name)...)
	}
	return out
}

// splitRestartSet partitions a recovery set into process names and the
// subcomponents needing an individual microreboot (subs whose parent is
// already being restarted ride along for free).
func (m *Manager) splitRestartSet(names []string) (procs, micro []string, err error) {
	inProcs := make(map[string]bool, len(names))
	for _, name := range names {
		if m.IsSub(name) {
			continue
		}
		if _, err := m.proc(name); err != nil {
			return nil, nil, err
		}
		inProcs[name] = true
		procs = append(procs, name)
	}
	for _, name := range names {
		if s, ok := m.subs[name]; ok && !inProcs[s.parent] {
			micro = append(micro, name)
		}
	}
	return procs, micro, nil
}

// DescribeSub renders "parent.short" state for operator surfaces.
func (m *Manager) DescribeSub(name string) string {
	st, err := m.SubState(name)
	if err != nil {
		return "unknown"
	}
	return strings.ToLower(st.String())
}
