// Package proc manages the lifecycle of Mercury's software components.
//
// The paper's components are independently operating JVM processes with
// autonomous loci of control; here each is a Handler hosted by a Manager.
// The Manager provides the strong fault-isolation the paper relies on:
// components can be SIGKILL-ed (hard, fail-silent), silenced (alive but
// unresponsive), and restarted with completely fresh state. Restarting a
// batch of components concurrently applies a resource-contention stretch to
// their startup times — the effect the paper observes when a whole-system
// restart is slower than the slowest individual component restart.
//
// The Manager is not internally synchronised: all calls must come from a
// single logical dispatch context. Under simulation this is the event
// kernel; under the real-time runtime it is the dispatcher goroutine.
package proc

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// State is a component process state.
type State int

// Process states.
const (
	// Stopped means never started or gracefully stopped.
	Stopped State = iota + 1
	// Starting means the startup sequence is running; the component may
	// exchange protocol messages (e.g. ses/str resync) but is not ready.
	Starting
	// Running means the component logged "functionally ready".
	Running
	// Dead means killed or crashed: fail-silent, consuming nothing.
	Dead
)

var stateNames = map[State]string{
	Stopped:  "stopped",
	Starting: "starting",
	Running:  "running",
	Dead:     "dead",
}

// String names the state.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Errors returned by Manager operations.
var (
	ErrUnknownProcess = errors.New("proc: unknown process")
	ErrAlreadyExists  = errors.New("proc: process already registered")
	ErrNotRunnable    = errors.New("proc: process already starting or running")
)

// Handler is a component implementation. A fresh Handler is created for
// every incarnation, so restart unequivocally returns the component to its
// start state — restart property (a) in the paper.
type Handler interface {
	// Start begins the startup sequence. The handler must eventually call
	// ctx.Ready() unless it is killed or fails first.
	Start(ctx Context)
	// Receive handles a message delivered from the bus. It is called only
	// while the process is Starting or Running.
	Receive(ctx Context, m *xmlcmd.Message)
}

// Transport sends a message into the message fabric. It is implemented by
// internal/bus; proc stays transport-agnostic.
type Transport interface {
	Send(m *xmlcmd.Message)
}

// Context is the capability set handed to a Handler. It is scoped to one
// incarnation: after the process is killed or restarted, calls on an old
// context become no-ops, which models the OS discarding a killed process's
// pending work.
type Context interface {
	// Name is the process's bus address.
	Name() string
	// Incarnation is the restart generation, starting at 1.
	Incarnation() int
	// Now returns the current time.
	Now() time.Time
	// After schedules fn on the dispatch context after d; fn is dropped if
	// this incarnation has ended by then.
	After(d time.Duration, fn func()) clock.Timer
	// Rand is the deterministic random source.
	Rand() *rand.Rand
	// Send emits a message via the bus.
	Send(m *xmlcmd.Message)
	// Ready declares the component functionally ready and logs the
	// timestamped ready message recovery time is measured against.
	Ready()
	// Fail crashes the component (fail-silent) with the given reason.
	Fail(reason string)
	// Stretch is the resource-contention multiplier (>= 1) in effect for
	// this startup; components multiply their base startup time by it.
	Stretch() float64
	// Log is the shared trace log for Note-level annotations.
	Log() *trace.Log
}

// Process is one managed component.
type Process struct {
	name        string
	factory     func() Handler
	mgr         *Manager
	state       State
	gen         int
	handler     Handler
	ctx         *procCtx // this incarnation's context, shared by all deliveries
	silenced    bool
	stretch     float64
	startedAt   time.Time
	readyAt     time.Time
	downAt      time.Time
	restarts    int
	downtime    time.Duration // accumulated while not serving
	lastDownAt  time.Time
	everStarted bool
}

// Manager hosts and controls a set of processes.
type Manager struct {
	clk       clock.Clock
	rng       *rand.Rand
	log       *trace.Log
	transport Transport

	procs map[string]*Process
	order []string

	// Microrebootable subcomponents (see micro.go). nil maps until the
	// first RegisterSub, so classic stations pay nothing.
	subs     map[string]*subState
	subOrder []string

	// ContentionPerPeer is the per-extra-component startup stretch: a batch
	// of k components starts with multiplier 1 + ContentionPerPeer*(k-1).
	// Calibrated so a 5-component whole-system restart shows the paper's
	// tree-I slowdown.
	ContentionPerPeer float64

	onReady []func(name string)
	onDown  []func(name, reason string)
	onBatch []func(names []string)
}

// NewManager returns an empty manager.
func NewManager(clk clock.Clock, rng *rand.Rand, log *trace.Log) *Manager {
	return &Manager{
		clk:               clk,
		rng:               rng,
		log:               log,
		procs:             make(map[string]*Process),
		ContentionPerPeer: 0.048,
	}
}

// SetTransport wires the bus in after construction (the bus needs the
// manager to deliver, so the two are created in sequence).
func (m *Manager) SetTransport(t Transport) { m.transport = t }

// Clock returns the manager's clock.
func (m *Manager) Clock() clock.Clock { return m.clk }

// Rand returns the deterministic random source.
func (m *Manager) Rand() *rand.Rand { return m.rng }

// Log returns the shared trace log.
func (m *Manager) Log() *trace.Log { return m.log }

// Register adds a process under the given bus address. The factory is
// invoked once per incarnation.
func (m *Manager) Register(name string, factory func() Handler) error {
	if _, ok := m.procs[name]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyExists, name)
	}
	m.procs[name] = &Process{
		name:    name,
		factory: factory,
		mgr:     m,
		state:   Stopped,
	}
	m.order = append(m.order, name)
	return nil
}

// Ref is a stable handle to one registered process. Process records are
// created once at Register and mutated in place ever after, so a Ref lets
// per-message hot paths (the bus's broker-serving check) test state without
// a map lookup. The zero Ref reports not serving.
type Ref struct{ p *Process }

// Ref resolves a handle for name (zero Ref if not registered).
func (m *Manager) Ref(name string) Ref { return Ref{p: m.procs[name]} }

// Valid reports whether the handle points at a registered process.
func (r Ref) Valid() bool { return r.p != nil }

// Serving mirrors Manager.Serving for the referenced process.
func (r Ref) Serving() bool {
	return r.p != nil && r.p.state == Running && !r.p.silenced
}

// Names returns registered process names in registration order.
func (m *Manager) Names() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// OnReady registers fn to run whenever a process becomes Running.
// Listeners run synchronously in registration order.
func (m *Manager) OnReady(fn func(name string)) { m.onReady = append(m.onReady, fn) }

// OnDown registers fn to run whenever a process dies (kill or crash).
func (m *Manager) OnDown(fn func(name, reason string)) { m.onDown = append(m.onDown, fn) }

// OnBatch registers fn to run at the start of every restart batch with the
// set of component names being restarted together. The fault board uses
// this to decide whether a restart action covers a fault's minimal cure.
func (m *Manager) OnBatch(fn func(names []string)) { m.onBatch = append(m.onBatch, fn) }

func (m *Manager) proc(name string) (*Process, error) {
	p, ok := m.procs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProcess, name)
	}
	return p, nil
}

// Start launches a single process with no contention.
func (m *Manager) Start(name string) error {
	return m.StartBatch([]string{name})
}

// StartStretched launches a single process with an explicit contention
// stretch. It is used when the contention arises outside this manager —
// e.g. a multi-process batch restart where each child process hosts a
// one-component manager but shares the machine with its siblings.
func (m *Manager) StartStretched(name string, stretch float64) error {
	if stretch < 1 {
		stretch = 1
	}
	return m.startAll([]string{name}, stretch)
}

// StartBatch launches the named processes concurrently, applying the
// resource-contention stretch to each startup.
func (m *Manager) StartBatch(names []string) error {
	stretch := 1.0
	if len(names) > 1 {
		stretch = 1 + m.ContentionPerPeer*float64(len(names)-1)
	}
	return m.startAll(names, stretch)
}

// startAll validates and launches processes at the given stretch.
func (m *Manager) startAll(names []string, stretch float64) error {
	// Validate first so a batch is all-or-nothing.
	procs := make([]*Process, 0, len(names))
	for _, name := range names {
		p, err := m.proc(name)
		if err != nil {
			return err
		}
		if p.state == Starting || p.state == Running {
			return fmt.Errorf("%w: %s is %s", ErrNotRunnable, name, p.state)
		}
		procs = append(procs, p)
	}
	batch := m.expandBatch(names)
	for _, fn := range m.onBatch {
		fn(append([]string(nil), batch...))
	}
	for _, p := range procs {
		p.start(stretch)
	}
	return nil
}

// Restart hard-kills then relaunches the named processes as one action.
// Already-dead members are simply relaunched. This is the "push the restart
// cell's button" primitive the recoverer uses. Subcomponent names in the
// set become microreboots: a sub whose parent is also named rides the
// process restart for free, while a lone sub set is repaired in place
// without touching the hosting process.
func (m *Manager) Restart(names []string) error {
	procs, micro, err := m.splitRestartSet(names)
	if err != nil {
		return err
	}
	for _, name := range procs {
		p := m.procs[name]
		if p.state == Starting || p.state == Running {
			p.die(trace.ComponentKilled, "restart action")
		}
	}
	if len(procs) > 0 {
		if err := m.StartBatch(procs); err != nil {
			return err
		}
	}
	for _, name := range micro {
		if err := m.Microreboot(name); err != nil {
			return err
		}
	}
	return nil
}

// Kill delivers a SIGKILL-equivalent: the process becomes fail-silent
// immediately. Killing a Stopped or Dead process is a no-op.
func (m *Manager) Kill(name, reason string) error {
	if m.IsSub(name) {
		return m.subKill(name, reason, trace.ComponentDown)
	}
	p, err := m.proc(name)
	if err != nil {
		return err
	}
	if p.state == Starting || p.state == Running {
		p.die(trace.ComponentDown, reason)
	}
	return nil
}

// Silence makes a running process fail-silent without terminating it: it
// stops receiving and replying but still counts as Running internally. The
// fault board uses this to model failures that a restart did not cure.
func (m *Manager) Silence(name string) error {
	if m.IsSub(name) {
		return m.subKill(name, "silenced (failure persists)", trace.ComponentDown)
	}
	p, err := m.proc(name)
	if err != nil {
		return err
	}
	if !p.silenced && (p.state == Running || p.state == Starting) {
		p.silenced = true
		p.markDown()
		m.log.Add(m.clk.Now(), trace.ComponentDown, name, "", "silenced (failure persists)")
		for _, fn := range m.onDown {
			fn(name, "silenced")
		}
	}
	return nil
}

// State reports a process's state.
func (m *Manager) State(name string) (State, error) {
	p, err := m.proc(name)
	if err != nil {
		return 0, err
	}
	return p.state, nil
}

// Incarnation reports a process's restart generation.
func (m *Manager) Incarnation(name string) (int, error) {
	p, err := m.proc(name)
	if err != nil {
		return 0, err
	}
	return p.gen, nil
}

// Serving reports whether the process is Running and responsive.
func (m *Manager) Serving(name string) bool {
	p, ok := m.procs[name]
	return ok && p.state == Running && !p.silenced
}

// Accepting reports whether the process can receive messages (Starting or
// Running, not silenced). Components exchange startup-protocol messages
// before they are ready, so this is broader than Serving.
func (m *Manager) Accepting(name string) bool {
	p, ok := m.procs[name]
	return ok && (p.state == Running || p.state == Starting) && !p.silenced
}

// AllServing reports whether every process whose name is in names is
// serving. With no names it checks every registered process.
func (m *Manager) AllServing(names ...string) bool {
	if len(names) == 0 {
		names = m.order
	}
	for _, name := range names {
		if !m.Serving(name) {
			return false
		}
	}
	return true
}

// Deliver routes a message to its destination handler. It reports whether
// the message was consumed; dead or silenced destinations silently drop it
// (fail-silent semantics).
func (m *Manager) Deliver(msg *xmlcmd.Message) bool {
	// Inlined Accepting: Deliver is the fabric's per-message hot path, and
	// one map lookup is half the cost of two.
	p, ok := m.procs[msg.To]
	if !ok || (p.state != Running && p.state != Starting) || p.silenced {
		return false
	}
	p.handler.Receive(p.ctx, msg)
	return true
}

// Restarts reports how many times the process has been (re)started beyond
// its first launch.
func (m *Manager) Restarts(name string) (int, error) {
	p, err := m.proc(name)
	if err != nil {
		return 0, err
	}
	return p.restarts, nil
}

// StartedAt reports when the process's current incarnation was launched
// (zero if never started).
func (m *Manager) StartedAt(name string) (time.Time, error) {
	p, err := m.proc(name)
	if err != nil {
		return time.Time{}, err
	}
	return p.startedAt, nil
}

// ReadyAt reports when the process last became functionally ready (zero if
// never ready).
func (m *Manager) ReadyAt(name string) (time.Time, error) {
	p, err := m.proc(name)
	if err != nil {
		return time.Time{}, err
	}
	return p.readyAt, nil
}

// Downtime reports the cumulative time the process has spent not serving
// since its first launch (including time spent silenced or restarting).
func (m *Manager) Downtime(name string) (time.Duration, error) {
	p, err := m.proc(name)
	if err != nil {
		return 0, err
	}
	d := p.downtime
	if p.everStarted && !m.Serving(name) {
		d += m.clk.Now().Sub(p.lastDownAt)
	}
	return d, nil
}

// start launches a fresh incarnation.
func (p *Process) start(stretch float64) {
	p.gen++
	if p.everStarted {
		p.restarts++
	}
	M.Starts.Inc()
	p.state = Starting
	p.silenced = false
	p.stretch = stretch
	p.startedAt = p.mgr.clk.Now()
	p.handler = p.factory()
	p.mgr.log.Add(p.startedAt, trace.ComponentStarting, p.name, "",
		fmt.Sprintf("incarnation=%d stretch=%.3f", p.gen, stretch))
	p.mgr.subsOnParentStart(p.name)
	p.ctx = &procCtx{p: p, gen: p.gen}
	p.handler.Start(p.ctx)
}

// die terminates the current incarnation. OnDown listeners fire for every
// death — failures and restart-action teardowns alike — so supervisors of
// external resources (a real TCP listener, a child OS process) always get
// to release them; the reason string distinguishes the cases.
func (p *Process) die(kind trace.Kind, reason string) {
	p.markDown()
	p.state = Dead
	M.Deaths.Inc()
	p.handler = nil
	p.downAt = p.mgr.clk.Now()
	p.mgr.log.Add(p.downAt, kind, p.name, "", reason)
	for _, fn := range p.mgr.onDown {
		fn(p.name, reason)
	}
	p.mgr.subsOnParentDown(p.name, reason)
}

// markDown starts the downtime clock if the process was serving.
func (p *Process) markDown() {
	if p.everStarted && p.state == Running && !p.silenced {
		p.lastDownAt = p.mgr.clk.Now()
	}
}

// procCtx is the incarnation-scoped Context implementation.
type procCtx struct {
	p   *Process
	gen int
}

var _ Context = (*procCtx)(nil)

func (c *procCtx) valid() bool {
	return c.p.gen == c.gen && (c.p.state == Starting || c.p.state == Running)
}

func (c *procCtx) Name() string     { return c.p.name }
func (c *procCtx) Incarnation() int { return c.gen }
func (c *procCtx) Now() time.Time   { return c.p.mgr.clk.Now() }
func (c *procCtx) Rand() *rand.Rand { return c.p.mgr.rng }
func (c *procCtx) Stretch() float64 { return c.p.stretch }
func (c *procCtx) Log() *trace.Log  { return c.p.mgr.log }

func (c *procCtx) After(d time.Duration, fn func()) clock.Timer {
	return c.p.mgr.clk.AfterFunc(d, func() {
		if c.valid() {
			fn()
		}
	})
}

func (c *procCtx) Send(m *xmlcmd.Message) {
	if !c.valid() || c.p.silenced {
		return
	}
	if c.p.mgr.transport == nil {
		return
	}
	c.p.mgr.transport.Send(m)
}

func (c *procCtx) Ready() {
	if !c.valid() || c.p.state == Running {
		return
	}
	p := c.p
	p.state = Running
	now := p.mgr.clk.Now()
	p.readyAt = now
	if p.everStarted && !p.lastDownAt.IsZero() {
		p.downtime += now.Sub(p.lastDownAt)
	}
	p.everStarted = true
	M.Startup.Observe(now.Sub(p.startedAt))
	p.mgr.log.Add(now, trace.ComponentReady, p.name, "",
		fmt.Sprintf("incarnation=%d startup=%.2fs", p.gen, now.Sub(p.startedAt).Seconds()))
	for _, fn := range p.mgr.onReady {
		fn(p.name)
	}
	p.mgr.subsOnParentReady(p.name)
}

func (c *procCtx) Fail(reason string) {
	if !c.valid() {
		return
	}
	c.p.die(trace.ComponentDown, reason)
}
