// Package load is the end-user request plane: an open-loop load engine
// that turns the station simulation into a service with millions of
// simulated users, so recovery can be scored in the currency users
// actually experience — failed and slow requests — instead of raw MTTR
// (ROADMAP item 2; "End-User Effects of Microreboots in Three-Tiered
// Internet Systems", PAPERS.md).
//
// # Open loop
//
// The engine is strictly open-loop: every cohort's arrival process is a
// pure function of (trial seed, cohort index), drawn from its own
// SplitMix64-derived RNG stream, and arrivals fire whether or not earlier
// requests completed. A 12 s process restart therefore shows up as
// thousands of blown deadlines — the requests users would have issued
// during the outage — not as one slow sample, which is the
// coordinated-omission trap closed-loop drivers fall into. Latency is
// accounted from the *intended* arrival instant, and failed requests are
// recorded at their timeout, so the latency histogram tells the
// user-visible truth under faults.
//
// # Zero allocation
//
// Request records live in a slot-arena with generation counters (the sim
// kernel's own recycling idiom); request envelopes are pooled through the
// fabric via xmlcmd.Recycler; deadline events are pooled and
// generation-checked instead of cancelled. In steady state issuing,
// serving and retiring a request allocates nothing, pinned by
// TestEngineSteadyStateAllocs.
//
// # Request classes
//
// Traffic maps onto the real station components, not a synthetic echo:
// pass-scheduling requests drive the tracker ("point" → str), telemetry
// requests drive the tuner cascade ("tune" → rtu, which forwards to the
// radio front end), and federation commands drive the front-end driver
// ("radio-tune" → fedr). Replies are the components' own acks, routed
// back over the two-hop bus — so a dead broker, a restarting component or
// a chaos-degraded link harms requests exactly the way it would harm
// users.
package load

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/runner"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// Gate is the default bus address of the request gateway — the component
// that terminates the client side of every simulated request.
const Gate = "gate"

// Class selects which station traffic a cohort issues.
type Class uint8

// Request classes, mapped onto real station components.
const (
	// ClassPass is pass scheduling: antenna-pointing commands served by
	// the tracker (str).
	ClassPass Class = iota
	// ClassTelemetry is the tuner cascade: tune commands served by rtu
	// (which forwards radio-tune downstream, exercising rtu→fedr→pbcom).
	ClassTelemetry
	// ClassFederation is federation commands: radio-tune served by fedr.
	ClassFederation
	numClasses
)

var classNames = [numClasses]string{"pass", "telemetry", "federation"}

// String names the class ("pass", "telemetry", "federation").
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(" + strconv.Itoa(int(c)) + ")"
}

// ParseClass resolves a class name.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("load: unknown request class %q", s)
}

// target returns the bus address serving this class.
func (c Class) target() string {
	switch c {
	case ClassPass:
		return station.STR
	case ClassTelemetry:
		return station.RTU
	default:
		return station.Fedr
	}
}

// command returns the command name this class issues.
func (c Class) command() string {
	switch c {
	case ClassPass:
		return "point"
	case ClassTelemetry:
		return "tune"
	default:
		return "radio-tune"
	}
}

// Cohort describes one user population issuing one class of traffic.
type Cohort struct {
	// Class is the request class (target component + command).
	Class Class
	// Users is the population size; each request is attributed to one
	// user, and that user's session breaks when the request fails.
	Users int
	// Rate is the cohort's aggregate arrival rate in requests/s.
	Rate float64
	// Poisson selects exponential inter-arrival times; false means a
	// constant-rate (isochronous) schedule.
	Poisson bool
	// Deadline is how long a user waits before giving up on an attempt.
	// Zero defaults to 100ms (5× the two-hop round trip).
	Deadline time.Duration
	// SlowAfter classifies a success as "slow" when its latency exceeds
	// it. Zero defaults to Deadline/2.
	SlowAfter time.Duration
	// Retries is how many times a timed-out request is re-sent before it
	// is declared failed.
	Retries int
}

func (c *Cohort) withDefaults() Cohort {
	out := *c
	if out.Users <= 0 {
		out.Users = 1
	}
	if out.Deadline <= 0 {
		out.Deadline = 100 * time.Millisecond
	}
	if out.SlowAfter <= 0 {
		out.SlowAfter = out.Deadline / 2
	}
	if out.Retries < 0 {
		out.Retries = 0
	}
	return out
}

// Config parameterises an Engine.
type Config struct {
	// Seed derives every cohort's arrival and user-pick RNG stream (via
	// runner.SubSeed), making the whole load a pure function of the seed.
	Seed int64
	// Gate overrides the gateway bus address; default Gate.
	Gate string
	// Cohorts is the traffic mix. At least one is required.
	Cohorts []Cohort
	// MaxInFlight caps the request-record arena. Zero sizes it from the
	// traffic mix: rate × deadline × (retries+1) × 1.5 summed over
	// cohorts. Arrivals that find the arena full are shed — counted as
	// failed without ever reaching the bus, exactly like a client-side
	// connection-queue overflow.
	MaxInFlight int
}

// Stats is the engine's cumulative user-harm accounting. OK/Slow/Failed
// partition completed requests; Slow counts are also OK (a slow success).
type Stats struct {
	Issued    uint64 // requests entered (one per arrival, shed included)
	Attempts  uint64 // messages actually sent (issues + retries)
	OK        uint64 // completed within their deadline budget
	Slow      uint64 // subset of OK slower than SlowAfter
	Failed    uint64 // all attempts timed out, or the service NAKed
	Shed      uint64 // subset of Failed: arena full, never sent
	Retries   uint64 // re-sent attempts after a timeout
	StaleAcks uint64 // acks that arrived after their request was retired

	// BrokenUsers is the instantaneous count of users whose last request
	// failed and who have not succeeded since.
	BrokenUsers int
	// BrokenUserSeconds integrates BrokenUsers over virtual time: the
	// campaign's user-visible downtime in user-seconds.
	BrokenUserSeconds float64
}

// record is one in-flight request in the slot arena.
type record struct {
	gen      uint32
	active   bool
	attempt  uint8
	cohort   int16
	user     int32
	intended int64 // arrival instant (kernel ns) latency is measured from
}

// Engine drives the configured traffic mix through one station's fabric.
// Like everything else in the simulation it is dispatch-context only.
type Engine struct {
	clk  clock.Clock
	kern *sim.Kernel
	bus  *bus.Sim
	mgr  *proc.Manager
	gate string

	cohorts []*cohortState

	records []record
	freeRec []int32

	msgPool []*xmlcmd.Message

	hist    metrics.Hist
	stats   Stats
	stopped bool

	// session bookkeeping: broken-user integration over virtual time
	// (kernel ns).
	lastIntegrate int64

	m reqCounters
}

// cohortState is one cohort's runtime: RNG stream, arrival event and
// session bitmap.
type cohortState struct {
	cfg Cohort
	idx int16
	eng *Engine

	rng       *rand.Rand
	meanGapNs float64
	arrival   arrivalEvent
	stopped   bool

	// dlQ is the cohort's deadline queue. Every attempt times out exactly
	// Deadline after it is sent, so due times are non-decreasing and one
	// self-rescheduling pump event sweeps them in FIFO order. Completed
	// requests are not removed — their entries go stale (generation
	// mismatch) and the sweep skips them — which keeps the kernel heap
	// free of the ~rate×deadline pending timers that would otherwise
	// dominate simulation cost at high request rates.
	dlQ    []dlEntry
	dlHead int
	dlOn   bool
	dl     dlPump

	// sessionDown marks users whose session is currently broken (bitmap;
	// a million users is 125 KB).
	sessionDown []uint64

	// vals cycles precomputed parameter strings so steady-state requests
	// never format floats.
	vals [][2]string
	vi   int
}

// NewEngine builds an engine over a station's kernel-clock, fabric and
// process manager, and registers (but does not start) the gate component.
// Call Start after the station is booted.
func NewEngine(clk clock.Clock, b *bus.Sim, mgr *proc.Manager, cfg Config) (*Engine, error) {
	if len(cfg.Cohorts) == 0 {
		return nil, fmt.Errorf("load: no cohorts configured")
	}
	gate := cfg.Gate
	if gate == "" {
		gate = Gate
	}
	ks, ok := clk.(clock.Sim)
	if !ok {
		// The engine's zero-alloc bookkeeping (slot arena, FIFO deadline
		// queues) is built on kernel virtual time; the real-time runtime
		// drives load through the TCP pump instead.
		return nil, fmt.Errorf("load: engine requires the simulation kernel clock")
	}
	e := &Engine{
		clk:  clk,
		kern: ks.K,
		bus:  b,
		mgr:  mgr,
		gate: gate,
		m:    newReqCounters(),
	}
	var inflight float64
	for i := range cfg.Cohorts {
		cc := cfg.Cohorts[i].withDefaults()
		if cc.Rate <= 0 {
			return nil, fmt.Errorf("load: cohort %d has rate %v", i, cc.Rate)
		}
		cs := &cohortState{
			cfg:         cc,
			idx:         int16(i),
			eng:         e,
			rng:         rand.New(rand.NewSource(runner.SubSeed(cfg.Seed, uint64(i)))),
			meanGapNs:   float64(time.Second) / cc.Rate,
			sessionDown: make([]uint64, (cc.Users+63)/64),
		}
		cs.arrival.c = cs
		cs.dl.c = cs
		cs.buildVals()
		e.cohorts = append(e.cohorts, cs)
		inflight += cc.Rate * cc.Deadline.Seconds() * float64(cc.Retries+1) * 1.5
	}
	max := cfg.MaxInFlight
	if max <= 0 {
		max = int(inflight)
		if max < 1<<12 {
			max = 1 << 12
		}
		if max > 1<<22 {
			max = 1 << 22
		}
	}
	e.records = make([]record, max)
	e.freeRec = make([]int32, max)
	for i := range e.freeRec {
		// LIFO free list popping from the tail: slot 0 on top keeps the
		// warm working set dense.
		e.freeRec[i] = int32(max - 1 - i)
	}
	if err := mgr.Register(gate, func() proc.Handler { return gateHandler{e} }); err != nil {
		return nil, fmt.Errorf("load: register gate: %w", err)
	}
	return e, nil
}

// buildVals precomputes a cycle of formatted parameter values spanning
// each class's realistic range, so issuing allocates no strings.
func (c *cohortState) buildVals() {
	const n = 64
	c.vals = make([][2]string, n)
	for i := range c.vals {
		switch c.cfg.Class {
		case ClassPass:
			az := c.rng.Float64() * 6.283185307179586
			el := c.rng.Float64() * 1.5707963267948966
			c.vals[i] = [2]string{formatFloat(az), formatFloat(el)}
		default:
			// Telemetry and federation both carry a frequency around the
			// UHF amateur band.
			f := 435e6 + c.rng.Float64()*3e6
			c.vals[i] = [2]string{formatFloat(f), ""}
		}
	}
}

// formatFloat renders parameter values the way a real client would — six
// decimals, not a shortest-round-trip float64 — which also keeps the
// server-side ParseFloat cheap (digit count drives its cost).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', 6, 64)
}

// Start brings up the gate component and begins every cohort's arrival
// process. The station should already be serving; requests issued before
// the target component is ready simply fail their deadlines, which is the
// correct user experience of a cold service.
func (e *Engine) Start() error {
	if err := e.mgr.Start(e.gate); err != nil {
		return fmt.Errorf("load: start gate: %w", err)
	}
	e.lastIntegrate = e.kern.NowNs()
	for _, c := range e.cohorts {
		c.scheduleNext()
	}
	return nil
}

// Stop halts new arrivals. In-flight requests keep resolving through
// their deadlines; run the kernel for the longest deadline × (retries+1)
// to drain before reading final stats.
func (e *Engine) Stop() {
	e.stopped = true
	for _, c := range e.cohorts {
		c.stopped = true
	}
}

// Stats snapshots the cumulative accounting with broken-user time
// integrated up to the current instant.
func (e *Engine) Stats() Stats {
	e.integrate()
	return e.stats
}

// Hist returns the latency histogram accumulated so far (intended-start
// accounting, failed requests recorded at their timeout).
func (e *Engine) Hist() *metrics.Hist { return &e.hist }

// InFlight reports the number of active request records.
func (e *Engine) InFlight() int { return len(e.records) - len(e.freeRec) }

// integrate folds broken-user time up to now into the accumulator.
func (e *Engine) integrate() {
	now := e.kern.NowNs()
	if dt := now - e.lastIntegrate; dt > 0 && e.stats.BrokenUsers > 0 {
		e.stats.BrokenUserSeconds += float64(e.stats.BrokenUsers) * float64(dt) / float64(time.Second)
	}
	e.lastIntegrate = now
}

// arrivalEvent is a cohort's self-rescheduling arrival chain: one event
// object per cohort, reused forever.
type arrivalEvent struct {
	c *cohortState
}

func (a *arrivalEvent) Fire() {
	c := a.c
	if c.stopped {
		return
	}
	c.eng.issue(c)
	c.scheduleNext()
}

func (c *cohortState) scheduleNext() {
	if c.stopped {
		return
	}
	gap := c.meanGapNs
	if c.cfg.Poisson {
		gap *= c.rng.ExpFloat64()
	}
	c.eng.kern.Schedule(time.Duration(gap), &c.arrival)
}

// seqFor packs a record's identity into the wire sequence number; the
// ack's OfSeq round-trips it.
func seqFor(slot int32, gen uint32) uint64 {
	return uint64(gen)<<32 | uint64(uint32(slot))
}

// issue admits one arrival: acquire a record, mint a pooled request and
// send it with a pooled deadline. The entire path is allocation-free once
// the pools are warm.
func (e *Engine) issue(c *cohortState) {
	e.stats.Issued++
	e.m.issued.Inc()
	n := len(e.freeRec)
	if n == 0 {
		// Arena full: shed at the client edge, before the bus.
		e.stats.Failed++
		e.stats.Shed++
		e.m.failed.Inc()
		e.m.shed.Inc()
		user := int32(c.rng.Intn(c.cfg.Users))
		e.breakSession(c, user)
		return
	}
	slot := e.freeRec[n-1]
	e.freeRec = e.freeRec[:n-1]
	rec := &e.records[slot]
	rec.gen++
	rec.active = true
	rec.attempt = 0
	rec.cohort = c.idx
	rec.user = int32(c.rng.Intn(c.cfg.Users))
	now := e.kern.NowNs()
	rec.intended = now
	e.m.inflight.Inc()
	e.send(c, slot, rec, now)
}

// send transmits one attempt for an active record and arms its deadline.
// now is the current kernel instant, threaded through so the hot path
// never rebuilds a time.Time.
func (e *Engine) send(c *cohortState, slot int32, rec *record, now int64) {
	e.stats.Attempts++
	m := e.acquireMsg()
	m.From = e.gate
	m.To = c.cfg.Class.target()
	m.Seq = seqFor(slot, rec.gen)
	cmd := m.Command
	cmd.Name = c.cfg.Class.command()
	v := &c.vals[c.vi]
	c.vi++
	if c.vi == len(c.vals) {
		c.vi = 0
	}
	cmd.Params = cmd.Params[:0]
	switch c.cfg.Class {
	case ClassPass:
		cmd.Params = append(cmd.Params,
			xmlcmd.Param{Key: "azRad", Value: v[0]},
			xmlcmd.Param{Key: "elRad", Value: v[1]})
	default:
		cmd.Params = append(cmd.Params, xmlcmd.Param{Key: "freqHz", Value: v[0]})
	}
	e.bus.Send(m)
	e.armDeadline(c, slot, rec.gen, now)
}

// RecycleMessage implements xmlcmd.Recycler: the fabric returns request
// envelopes here once their last in-flight copy resolves.
func (e *Engine) RecycleMessage(m *xmlcmd.Message) {
	e.msgPool = append(e.msgPool, m)
}

func (e *Engine) acquireMsg() *xmlcmd.Message {
	if n := len(e.msgPool); n > 0 {
		m := e.msgPool[n-1]
		e.msgPool = e.msgPool[:n-1]
		return m
	}
	return &xmlcmd.Message{
		Command: &xmlcmd.Command{Params: make([]xmlcmd.Param, 0, 2)},
		Owner:   e,
	}
}

// dlEntry is one armed attempt deadline (due in kernel ns). Entries are
// never cancelled: completion leaves them stale (generation mismatch) and
// the sweep drops them — the kernel's own slot/gen idiom, applied to a
// FIFO queue.
type dlEntry struct {
	due  int64
	slot int32
	gen  uint32
}

// armDeadline appends the attempt's timeout to the cohort's queue and arms
// the pump if it is asleep. Due times are monotone because the deadline is
// a cohort constant and virtual time never goes backwards.
func (e *Engine) armDeadline(c *cohortState, slot int32, gen uint32, now int64) {
	if c.dlHead > 1024 && c.dlHead*2 >= len(c.dlQ) {
		n := copy(c.dlQ, c.dlQ[c.dlHead:])
		c.dlQ = c.dlQ[:n]
		c.dlHead = 0
	}
	c.dlQ = append(c.dlQ, dlEntry{
		due:  now + int64(c.cfg.Deadline),
		slot: slot,
		gen:  gen,
	})
	if !c.dlOn {
		c.dlOn = true
		e.kern.Schedule(c.cfg.Deadline, &c.dl)
	}
}

// dlPump sweeps a cohort's deadline queue. Stale entries — requests that
// completed before their deadline, the overwhelming majority under a
// healthy service — are dropped eagerly whenever the pump is awake, so in
// steady state the pump wakes roughly once per deadline window, not once
// per request: the sweep costs ~zero kernel events until something
// actually times out.
type dlPump struct{ c *cohortState }

func (p *dlPump) Fire() {
	c := p.c
	e := c.eng
	now := e.kern.NowNs()
	for c.dlHead < len(c.dlQ) {
		ent := c.dlQ[c.dlHead]
		rec := &e.records[ent.slot]
		if !rec.active || rec.gen != ent.gen {
			c.dlHead++ // resolved before its deadline: drop without waking
			continue
		}
		if ent.due > now {
			e.kern.Schedule(time.Duration(ent.due-now), p)
			return
		}
		c.dlHead++
		e.expire(c, ent.slot, rec, now)
	}
	c.dlQ = c.dlQ[:0]
	c.dlHead = 0
	c.dlOn = false
}

// expire resolves one due, still-live deadline: retry or fail.
func (e *Engine) expire(c *cohortState, slot int32, rec *record, now int64) {
	if int(rec.attempt) < c.cfg.Retries {
		rec.attempt++
		e.stats.Retries++
		e.m.retries.Inc()
		e.send(c, slot, rec, now)
		return
	}
	// Out of patience: the user saw a failure. The full wait — intended
	// start to final timeout — goes into the latency record, so blown
	// deadlines dominate the tail exactly as users experienced them.
	e.hist.Record(time.Duration(now - rec.intended))
	e.stats.Failed++
	e.m.failed.Inc()
	e.breakSession(c, rec.user)
	e.retire(slot, rec)
}

// onAck completes the record a gate ack names, if it is still current.
func (e *Engine) onAck(m *xmlcmd.Message) {
	of := m.Ack.OfSeq
	slot := int32(uint32(of))
	gen := uint32(of >> 32)
	if slot < 0 || int(slot) >= len(e.records) {
		e.stats.StaleAcks++
		e.m.stale.Inc()
		return
	}
	rec := &e.records[slot]
	if !rec.active || rec.gen != gen {
		// The request was already retired (failed at deadline, or an
		// earlier duplicate ack won). Late acks are the receipts of work
		// the service did after the user gave up.
		e.stats.StaleAcks++
		e.m.stale.Inc()
		return
	}
	c := e.cohorts[rec.cohort]
	lat := time.Duration(e.kern.NowNs() - rec.intended)
	e.hist.Record(lat)
	if m.Ack.OK {
		e.stats.OK++
		e.m.ok.Inc()
		if lat > c.cfg.SlowAfter {
			e.stats.Slow++
			e.m.slow.Inc()
		}
		e.restoreSession(c, rec.user)
	} else {
		e.stats.Failed++
		e.m.failed.Inc()
		e.breakSession(c, rec.user)
	}
	e.retire(slot, rec)
}

func (e *Engine) retire(slot int32, rec *record) {
	rec.active = false
	e.freeRec = append(e.freeRec, slot)
	e.m.inflight.Dec()
}

// breakSession marks a user's session broken, starting their downtime
// clock.
func (e *Engine) breakSession(c *cohortState, user int32) {
	w, b := user>>6, uint64(1)<<(uint(user)&63)
	if c.sessionDown[w]&b != 0 {
		return
	}
	e.integrate()
	c.sessionDown[w] |= b
	e.stats.BrokenUsers++
	e.m.broken.Inc()
}

// restoreSession repairs a user's session on a successful request.
func (e *Engine) restoreSession(c *cohortState, user int32) {
	w, b := user>>6, uint64(1)<<(uint(user)&63)
	if c.sessionDown[w]&b == 0 {
		return
	}
	e.integrate()
	c.sessionDown[w] &^= b
	e.stats.BrokenUsers--
	e.m.broken.Dec()
}

// gateHandler terminates the client side on the bus: instantly ready,
// absorbs acks into the engine, answers pings like any component.
type gateHandler struct {
	e *Engine
}

func (g gateHandler) Start(ctx proc.Context) { ctx.After(0, ctx.Ready) }

func (g gateHandler) Receive(ctx proc.Context, m *xmlcmd.Message) {
	switch m.Kind() {
	case xmlcmd.KindAck:
		g.e.onAck(m)
	case xmlcmd.KindPing:
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}
