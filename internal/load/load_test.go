package load_test

import (
	"runtime"
	"testing"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/load"
)

// testSystem boots a classic tree-IV station and returns it.
func testSystem(t *testing.T, seed int64) *mercury.System {
	t.Helper()
	sys, err := mercury.NewSystem(mercury.Config{Seed: seed, TreeName: "IV"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func attach(t *testing.T, sys *mercury.System, cfg load.Config) *load.Engine {
	t.Helper()
	eng, err := load.NewEngine(clock.Sim{K: sys.Kernel}, sys.Bus, sys.Mgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestRequestFlowPerClass drives each class through its real component
// and expects healthy traffic to complete overwhelmingly within deadline.
func TestRequestFlowPerClass(t *testing.T) {
	for _, class := range []load.Class{load.ClassPass, load.ClassTelemetry, load.ClassFederation} {
		t.Run(class.String(), func(t *testing.T) {
			sys := testSystem(t, 11)
			eng := attach(t, sys, load.Config{
				Seed:    11,
				Cohorts: []load.Cohort{{Class: class, Users: 1000, Rate: 200, Poisson: true}},
			})
			if err := sys.RunFor(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			st := eng.Stats()
			if st.Issued < 1500 {
				t.Fatalf("issued %d requests in 10s at 200/s", st.Issued)
			}
			if st.OK == 0 {
				t.Fatalf("no successes: %+v", st)
			}
			if frac := float64(st.Failed) / float64(st.Issued); frac > 0.01 {
				t.Fatalf("healthy station failed %.1f%% of requests: %+v", frac*100, st)
			}
			p99, err := eng.Hist().Quantile(0.99)
			if err != nil {
				t.Fatal(err)
			}
			// Two-hop request + two-hop ack at 5ms per hop = 20ms floor;
			// healthy p99 must sit near it, far from the 100ms deadline.
			if p99 < 20*time.Millisecond || p99 > 60*time.Millisecond {
				t.Fatalf("healthy p99 = %v", p99)
			}
		})
	}
}

// TestDeterminism: identical seeds produce bit-identical stats and
// latency histograms, independent of other trials.
func TestDeterminism(t *testing.T) {
	run := func() (load.Stats, uint64) {
		sys := testSystem(t, 7)
		eng := attach(t, sys, load.Config{
			Seed: 7,
			Cohorts: []load.Cohort{
				{Class: load.ClassPass, Users: 10000, Rate: 500, Poisson: true},
				{Class: load.ClassTelemetry, Users: 1000, Rate: 100},
			},
		})
		if err := sys.RunFor(8 * time.Second); err != nil {
			t.Fatal(err)
		}
		sum := uint64(eng.Hist().Sum())
		return eng.Stats(), sum
	}
	s1, h1 := run()
	s2, h2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if h1 != h2 {
		t.Fatalf("latency sums differ across identical runs: %d vs %d", h1, h2)
	}
}

// TestOutageBlowsDeadlines is the open-loop property the ISSUE names: a
// dead broker must surface as thousands of blown deadlines (every request
// users would have issued during the outage), inflating the tail to the
// deadline — not as one slow sample.
func TestOutageBlowsDeadlines(t *testing.T) {
	sys := testSystem(t, 3)
	eng := attach(t, sys, load.Config{
		Seed:    3,
		Cohorts: []load.Cohort{{Class: load.ClassPass, Users: 100000, Rate: 2000, Poisson: true}},
	})
	if err := sys.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	healthy := eng.Stats()
	// Kill the broker and hold it down by injecting a repeating fault is
	// unnecessary: REC needs seconds to bring mbus back, and every arrival
	// in that window is doomed.
	if err := sys.Inject(mercury.Fault{Component: "mbus"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	newFailed := st.Failed - healthy.Failed
	if newFailed < 1000 {
		t.Fatalf("broker outage produced only %d failed requests (open-loop arrivals must keep coming)", newFailed)
	}
	p99, err := eng.Hist().Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 < 90*time.Millisecond {
		t.Fatalf("p99 = %v after outage, want ≈ the 100ms deadline (blown deadlines in the tail)", p99)
	}
	if st.BrokenUsers == 0 || st.BrokenUserSeconds <= 0 {
		t.Fatalf("outage left no session damage: %+v", st)
	}
}

// TestSessionRepair: failed requests break exactly their user's session;
// the next success repairs it and stops the downtime clock.
func TestSessionRepair(t *testing.T) {
	sys := testSystem(t, 5)
	eng := attach(t, sys, load.Config{
		Seed:    5,
		Cohorts: []load.Cohort{{Class: load.ClassPass, Users: 1, Rate: 50, Poisson: false}},
	})
	if err := sys.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.BrokenUsers != 0 {
		t.Fatalf("healthy run broke sessions: %+v", st)
	}
	if err := sys.Inject(mercury.Fault{Component: "mbus"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	mid := eng.Stats()
	if mid.BrokenUsers != 1 {
		t.Fatalf("single user not broken during outage: %+v", mid)
	}
	// Let REC recover the broker and the user succeed again.
	if err := sys.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	end := eng.Stats()
	if end.BrokenUsers != 0 {
		t.Fatalf("session not repaired after recovery: %+v", end)
	}
	if end.BrokenUserSeconds <= 0 || end.BrokenUserSeconds > 60 {
		t.Fatalf("broken-user integral implausible: %v", end.BrokenUserSeconds)
	}
}

// TestShedding: a full record arena sheds at the client edge instead of
// growing without bound.
func TestShedding(t *testing.T) {
	sys := testSystem(t, 9)
	eng := attach(t, sys, load.Config{
		Seed:        9,
		MaxInFlight: 8,
		Cohorts:     []load.Cohort{{Class: load.ClassPass, Users: 100, Rate: 5000}},
	})
	if err := sys.Inject(mercury.Fault{Component: "mbus"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Shed == 0 {
		t.Fatalf("overloaded engine shed nothing: %+v", st)
	}
	if eng.InFlight() > 8 {
		t.Fatalf("in-flight %d exceeds arena cap", eng.InFlight())
	}
}

// TestEngineSteadyStateAllocs pins the tentpole's 0 allocs/request floor:
// once pools are warm, issuing + serving + retiring a pass request must
// not allocate. Background station activity (pings, beacons, telemetry)
// allocates a little per virtual second, so the budget is a small
// fraction of an allocation per request rather than exactly zero.
func TestEngineSteadyStateAllocs(t *testing.T) {
	sys := testSystem(t, 21)
	eng := attach(t, sys, load.Config{
		Seed:    21,
		Cohorts: []load.Cohort{{Class: load.ClassPass, Users: 1 << 20, Rate: 100000, Poisson: true}},
	})
	// Warm-up: grow every pool and arena to steady state.
	if err := sys.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if err := sys.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	after := eng.Stats()
	requests := after.Issued - before.Issued
	if requests < 200000 {
		t.Fatalf("only %d requests in the measured window", requests)
	}
	perReq := float64(m1.Mallocs-m0.Mallocs) / float64(requests)
	// The request path itself must be allocation-free; the tolerance
	// covers the station's unrelated background traffic (~tens of
	// allocations per virtual second against 100k requests).
	if perReq > 0.01 {
		t.Fatalf("%.4f allocs/request (%d mallocs / %d requests), want ~0",
			perReq, m1.Mallocs-m0.Mallocs, requests)
	}
}
