package load

import (
	"sync/atomic"

	"github.com/recursive-restart/mercury/internal/obs"
)

// ReqMetrics aggregates the process-wide request-plane counters
// (mercury_req_* family). Like the bus counters they are incremented
// unconditionally through per-engine shards and only read when an obs
// registry renders them.
type ReqMetrics struct {
	Issued    obs.Counter // arrivals admitted to the engine
	OK        obs.Counter // requests completed within deadline
	Slow      obs.Counter // successes slower than their SlowAfter
	Failed    obs.Counter // requests failed (timeout, NAK or shed)
	Shed      obs.Counter // subset of failed: arena full at the client edge
	Retries   obs.Counter // attempts re-sent after a timeout
	StaleAcks obs.Counter // acks arriving after their request retired
	InFlight  obs.Gauge   // active request records
	Broken    obs.Gauge   // users with a currently-broken session
}

// M is the process-wide request-plane metrics instance.
var M ReqMetrics

// reqShardSeq hands out shard indices to engines round-robin.
var reqShardSeq atomic.Uint64

// reqCounters is one engine's pre-resolved shard set, so parallel trials
// (one engine per worker) never share a counter cache line.
type reqCounters struct {
	issued, ok, slow, failed, shed, retries, stale *obs.CounterShard
	inflight, broken                               *obs.Gauge
}

func newReqCounters() reqCounters {
	i := reqShardSeq.Add(1)
	return reqCounters{
		issued:   M.Issued.Shard(i),
		ok:       M.OK.Shard(i),
		slow:     M.Slow.Shard(i),
		failed:   M.Failed.Shard(i),
		shed:     M.Shed.Shard(i),
		retries:  M.Retries.Shard(i),
		stale:    M.StaleAcks.Shard(i),
		inflight: &M.InFlight,
		broken:   &M.Broken,
	}
}

// RegisterMetrics registers the request-plane counter families with an
// obs registry under the mercury_req_* namespace.
func RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("mercury_req_issued_total",
		"User requests admitted by the load engine.", &M.Issued)
	r.RegisterCounter("mercury_req_completed_total",
		"Requests completed, by user-visible outcome.", &M.OK, "outcome", "ok")
	r.RegisterCounter("mercury_req_completed_total",
		"Requests completed, by user-visible outcome.", &M.Slow, "outcome", "slow")
	r.RegisterCounter("mercury_req_completed_total",
		"Requests completed, by user-visible outcome.", &M.Failed, "outcome", "failed")
	r.RegisterCounter("mercury_req_shed_total",
		"Requests shed at the client edge (record arena full).", &M.Shed)
	r.RegisterCounter("mercury_req_retries_total",
		"Request attempts re-sent after a timeout.", &M.Retries)
	r.RegisterCounter("mercury_req_stale_acks_total",
		"Acks that arrived after their request was retired.", &M.StaleAcks)
	r.RegisterGauge("mercury_req_inflight",
		"Request records currently in flight.", &M.InFlight)
	r.RegisterGauge("mercury_req_broken_sessions",
		"Users whose session is currently broken.", &M.Broken)
}
