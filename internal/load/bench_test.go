package load_test

import (
	"testing"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/load"
)

// BenchmarkRequestPlane measures sustained simulated requests/s on the
// pass class: the headline number `rrbench requests -bench` records.
// b.N is interpreted as requests; virtual time advances as far as needed.
func BenchmarkRequestPlane(b *testing.B) {
	sys, err := mercury.NewSystem(mercury.Config{Seed: 1, TreeName: "IV"})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		b.Fatal(err)
	}
	const rate = 1e6 // virtual requests/s
	eng, err := load.NewEngine(clock.Sim{K: sys.Kernel}, sys.Bus, sys.Mgr, load.Config{
		Seed:    1,
		Cohorts: []load.Cohort{{Class: load.ClassPass, Users: 1 << 20, Rate: rate, Poisson: true}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	// Warm the pools before the timer.
	if err := sys.RunFor(200 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	start := eng.Stats().Issued
	b.ReportAllocs()
	b.ResetTimer()
	for eng.Stats().Issued-start < uint64(b.N) {
		if err := sys.RunFor(50 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	issued := eng.Stats().Issued - start
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "req/s")
}
