package fault

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// instantComp becomes ready immediately.
type instantComp struct{}

func (instantComp) Start(ctx proc.Context)                { ctx.After(0, ctx.Ready) }
func (instantComp) Receive(proc.Context, *xmlcmd.Message) {}

type rig struct {
	k     *sim.Kernel
	mgr   *proc.Manager
	board *Board
	log   *trace.Log
}

func newRig(t *testing.T, comps ...string) *rig {
	t.Helper()
	k := sim.New(21)
	log := trace.NewLog()
	mgr := proc.NewManager(clock.Sim{K: k}, rand.New(rand.NewSource(3)), log)
	board := NewBoard(clock.Sim{K: k}, mgr, log)
	for _, c := range comps {
		if err := mgr.Register(c, func() proc.Handler { return instantComp{} }); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.StartBatch(comps); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mgr: mgr, board: board, log: log}
}

func TestInjectKillsManifest(t *testing.T) {
	r := newRig(t, "a", "b")
	if err := r.board.Inject(Fault{Manifest: "a"}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	st, _ := r.mgr.State("a")
	if st != proc.Dead {
		t.Fatalf("state = %v, want Dead", st)
	}
	if r.board.ActiveCount() != 1 || r.board.Injected() != 1 {
		t.Fatalf("active=%d injected=%d", r.board.ActiveCount(), r.board.Injected())
	}
}

func TestRestartOfManifestCuresDefaultFault(t *testing.T) {
	r := newRig(t, "a")
	_ = r.board.Inject(Fault{Manifest: "a"})
	if err := r.mgr.Restart([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	_ = r.k.RunFor(time.Second)
	if r.board.ActiveCount() != 0 {
		t.Fatal("default fault not cured by restarting manifest")
	}
	if !r.mgr.Serving("a") {
		t.Fatal("component not serving after cure")
	}
	if r.board.Cured() != 1 {
		t.Fatalf("cured = %d", r.board.Cured())
	}
}

func TestPartialRestartDoesNotCureJointFault(t *testing.T) {
	r := newRig(t, "fedr", "pbcom")
	_ = r.board.Inject(Fault{Manifest: "pbcom", Cure: []string{"fedr", "pbcom"}})
	// Restarting pbcom alone must not cure; it comes up silenced.
	_ = r.mgr.Restart([]string{"pbcom"})
	_ = r.k.RunFor(time.Second)
	if r.board.ActiveCount() != 1 {
		t.Fatal("joint fault cured by partial restart")
	}
	if r.mgr.Serving("pbcom") {
		t.Fatal("uncured manifest is serving")
	}
	st, _ := r.mgr.State("pbcom")
	if st != proc.Running {
		t.Fatalf("uncured manifest state = %v, want Running (silenced)", st)
	}
	// Joint restart cures.
	_ = r.mgr.Restart([]string{"fedr", "pbcom"})
	_ = r.k.RunFor(time.Second)
	if r.board.ActiveCount() != 0 {
		t.Fatal("joint restart did not cure")
	}
	if !r.mgr.Serving("pbcom") || !r.mgr.Serving("fedr") {
		t.Fatal("components not serving after joint cure")
	}
}

func TestSupersetRestartCures(t *testing.T) {
	r := newRig(t, "a", "b", "c")
	_ = r.board.Inject(Fault{Manifest: "a", Cure: []string{"a", "b"}})
	_ = r.mgr.Restart([]string{"a", "b", "c"}) // superset of cure
	_ = r.k.RunFor(time.Second)
	if r.board.ActiveCount() != 0 {
		t.Fatal("superset restart did not cure")
	}
}

func TestHardFaultNeverCured(t *testing.T) {
	r := newRig(t, "a")
	_ = r.board.Inject(Fault{Manifest: "a", Hard: true})
	for i := 0; i < 3; i++ {
		_ = r.mgr.Restart([]string{"a"})
		_ = r.k.RunFor(time.Second)
	}
	if r.board.ActiveCount() != 1 {
		t.Fatal("hard fault was cured")
	}
	if r.mgr.Serving("a") {
		t.Fatal("hard-faulted component serving")
	}
}

func TestMinimalCure(t *testing.T) {
	r := newRig(t, "a", "b")
	_ = r.board.Inject(Fault{Manifest: "a", Cure: []string{"b", "a"}})
	cure, ok := r.board.MinimalCure("a")
	if !ok || len(cure) != 2 || cure[0] != "a" || cure[1] != "b" {
		t.Fatalf("MinimalCure = %v, %v", cure, ok)
	}
	if _, ok := r.board.MinimalCure("b"); ok {
		t.Fatal("MinimalCure matched non-manifest component")
	}
}

func TestInjectValidation(t *testing.T) {
	r := newRig(t, "a")
	if err := r.board.Inject(Fault{}); err == nil {
		t.Fatal("empty manifest accepted")
	}
	if err := r.board.Inject(Fault{ID: "x", Manifest: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := r.board.Inject(Fault{ID: "x", Manifest: "a"}); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestBoardClear(t *testing.T) {
	r := newRig(t, "a")
	_ = r.board.Inject(Fault{Manifest: "a"})
	r.board.Clear()
	if r.board.ActiveCount() != 0 {
		t.Fatal("Clear left active faults")
	}
}

func TestInjectorSchedulesOrganicFailures(t *testing.T) {
	r := newRig(t, "a")
	inj := NewInjector(clock.Sim{K: r.k}, r.mgr, r.board)
	inj.SetLaw("a", Deterministic{D: 10 * time.Second})
	inj.Enable()
	// Restart so the ready hook fires with the injector armed.
	_ = r.mgr.Restart([]string{"a"})
	_ = r.k.RunFor(5 * time.Second)
	if r.board.Injected() != 0 {
		t.Fatal("fault injected too early")
	}
	_ = r.k.RunFor(6 * time.Second)
	if r.board.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", r.board.Injected())
	}
	got := inj.TTFSamples("a")
	if len(got) != 1 || got[0] != 10*time.Second {
		t.Fatalf("TTF samples = %v", got)
	}
}

func TestInjectorSuppressedAfterRestart(t *testing.T) {
	r := newRig(t, "a")
	inj := NewInjector(clock.Sim{K: r.k}, r.mgr, r.board)
	inj.SetLaw("a", Deterministic{D: 10 * time.Second})
	inj.Enable()
	_ = r.mgr.Restart([]string{"a"}) // arm at ready
	_ = r.k.RunFor(5 * time.Second)
	_ = r.mgr.Restart([]string{"a"}) // new incarnation; first schedule stale
	inj.Disable()                    // prevent re-arming on the new ready
	_ = r.k.RunFor(20 * time.Second)
	if r.board.Injected() != 0 {
		t.Fatal("stale injection fired for old incarnation")
	}
}

func TestInjectorDisable(t *testing.T) {
	r := newRig(t, "a")
	inj := NewInjector(clock.Sim{K: r.k}, r.mgr, r.board)
	inj.SetLaw("a", Deterministic{D: time.Second})
	inj.Enable()
	_ = r.mgr.Restart([]string{"a"})
	inj.Disable()
	_ = r.k.RunFor(5 * time.Second)
	if r.board.Injected() != 0 {
		t.Fatal("disabled injector fired")
	}
}

func TestInjectorCureFor(t *testing.T) {
	r := newRig(t, "a", "b")
	inj := NewInjector(clock.Sim{K: r.k}, r.mgr, r.board)
	inj.SetLaw("a", Deterministic{D: time.Second})
	inj.CureFor = func(string) []string { return []string{"a", "b"} }
	inj.Enable()
	_ = r.mgr.Restart([]string{"a"})
	_ = r.k.RunFor(3 * time.Second)
	cure, ok := r.board.MinimalCure("a")
	if !ok || len(cure) != 2 {
		t.Fatalf("cure = %v, %v", cure, ok)
	}
}

func TestExponentialLawMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	law := Exponential{M: time.Hour}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += law.Sample(rng).Hours()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean = %v hours, want ~1", mean)
	}
}

func TestLogNormalLawMeanAndCV(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	law := LogNormal{M: 10 * time.Second, CV: 0.1}
	var s, s2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := law.Sample(rng).Seconds()
		s += x
		s2 += x * x
	}
	mean := s / n
	std := math.Sqrt(s2/n - mean*mean)
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("lognormal mean = %v, want ~10", mean)
	}
	if cv := std / mean; math.Abs(cv-0.1) > 0.02 {
		t.Fatalf("lognormal cv = %v, want ~0.1", cv)
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	law := LogNormal{M: 5 * time.Second, CV: 0}
	if law.Sample(rng) != 5*time.Second {
		t.Fatal("zero-CV lognormal should be deterministic")
	}
}

func TestUniformLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	law := Uniform{Lo: time.Second, Hi: 3 * time.Second}
	for i := 0; i < 1000; i++ {
		d := law.Sample(rng)
		if d < time.Second || d > 3*time.Second {
			t.Fatalf("uniform sample out of range: %v", d)
		}
	}
	if law.Mean() != 2*time.Second {
		t.Fatalf("mean = %v", law.Mean())
	}
	deg := Uniform{Lo: time.Second, Hi: time.Second}
	if deg.Sample(rng) != time.Second {
		t.Fatal("degenerate uniform wrong")
	}
}

func TestNeverLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if (Never{}).Sample(rng) < 100*365*24*time.Hour {
		t.Fatal("Never law fired too soon")
	}
}

func TestLawString(t *testing.T) {
	for _, l := range []Law{Exponential{M: time.Hour}, LogNormal{M: time.Second, CV: 0.1},
		Deterministic{D: time.Second}, Uniform{Lo: 0, Hi: time.Second}, Never{}} {
		if LawString(l) == "" {
			t.Fatalf("empty LawString for %T", l)
		}
	}
}

func TestCureList(t *testing.T) {
	f := Fault{Manifest: "m"}
	if got := f.CureList(); len(got) != 1 || got[0] != "m" {
		t.Fatalf("default CureList = %v", got)
	}
	f = Fault{Manifest: "m", Cure: []string{"b", "a", "b"}}
	got := f.CureList()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("CureList = %v", got)
	}
}

func TestHangFaultIsFailSilentButAlive(t *testing.T) {
	r := newRig(t, "a")
	if err := r.board.Inject(Fault{Manifest: "a", Hang: true}); err != nil {
		t.Fatal(err)
	}
	st, _ := r.mgr.State("a")
	if st != proc.Running {
		t.Fatalf("hung state = %v, want Running (silenced)", st)
	}
	if r.mgr.Serving("a") {
		t.Fatal("hung component still serving")
	}
	// A restart cures it like a crash.
	_ = r.mgr.Restart([]string{"a"})
	_ = r.k.RunFor(time.Second)
	if r.board.ActiveCount() != 0 || !r.mgr.Serving("a") {
		t.Fatal("restart did not cure the hang")
	}
}

func TestWeibullLawMeanAndAging(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	law := Weibull{Shape: 3, M: 10 * time.Minute}
	var sum float64
	var under5 int
	const n = 20000
	for i := 0; i < n; i++ {
		d := law.Sample(rng)
		sum += d.Minutes()
		if d < 5*time.Minute {
			under5++
		}
	}
	if mean := sum / n; math.Abs(mean-10) > 0.3 {
		t.Fatalf("weibull mean = %v min, want ~10", mean)
	}
	// Shape 3 concentrates mass near the mean: far fewer early failures
	// than the exponential with the same mean (which has ~39% below 5 min).
	frac := float64(under5) / n
	if frac > 0.2 {
		t.Fatalf("weibull(3) early-failure fraction = %.2f; aging shape lost", frac)
	}
	if law.Mean() != 10*time.Minute {
		t.Fatal("Mean() mismatch")
	}
	// Shape <= 0 degrades to exponential-like, not a crash.
	deg := Weibull{Shape: 0, M: time.Minute}
	if deg.Sample(rng) < 0 {
		t.Fatal("degenerate weibull negative")
	}
}
