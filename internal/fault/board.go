package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/trace"
)

// Fault is one injectable failure.
type Fault struct {
	// ID labels the fault in traces; the board assigns one if empty.
	ID string
	// Manifest is the component where the failure manifests: it becomes
	// fail-silent (A_cure: all failures are detectable and curable).
	Manifest string
	// Cure is the minimal set of components that must be restarted
	// together to cure the fault. Nil means {Manifest}.
	Cure []string
	// Hard marks a failure no restart can cure, used to exercise the
	// restart policy's give-up budget.
	Hard bool
	// Hang delivers the failure as a hang (the process stays up but stops
	// responding — a spin/livelock/deadlock) instead of a crash. Both are
	// fail-silent to the detector; both are curable by restart.
	Hang bool
	// StateKey marks a state-corruption fault: the component's externalized
	// state under this store key is poisoned at injection time. Restarting
	// the manifest alone reattaches to the corrupt state (the fault
	// persists); the fault is cured either by a restart batch covering the
	// full Cure set (rebuilding the state from scratch) or by a
	// checkpoint-restore of StateKey from a snapshot taken *before*
	// injection followed by a restart of the manifest.
	StateKey string
}

// cureSet normalises the cure set.
func (f Fault) cureSet() map[string]bool {
	set := make(map[string]bool, len(f.Cure)+1)
	if len(f.Cure) == 0 {
		set[f.Manifest] = true
		return set
	}
	for _, c := range f.Cure {
		set[c] = true
	}
	return set
}

// CureList returns the normalised cure set, sorted.
func (f Fault) CureList() []string {
	set := f.cureSet()
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Board tracks active faults and applies the cure semantics. It watches
// the manager's restart batches: a batch whose component set covers a
// fault's cure set cures it; a batch that restarts the manifesting
// component without covering the cure set brings the component up still
// broken — the board silences it as soon as it reports ready, so the
// failure persists observably.
type Board struct {
	clk clock.Clock
	mgr *proc.Manager
	log *trace.Log

	seq    int
	active map[string]*activeFault // by ID

	// counters
	injected int
	cured    int

	// cureSubs are notified on every cure — the online tree optimizer's
	// episode feed (an experimental device like MinimalCure: the fault's
	// true cure set is the injection plane's knowledge, not the
	// recoverer's).
	cureSubs []func(ev CureEvent)
}

// CureEvent describes one fault cure: the fault, the restart batch that
// cured it, and the injection/cure instants.
type CureEvent struct {
	Fault      Fault
	Batch      []string
	InjectedAt time.Time
	CuredAt    time.Time
}

// activeFault is one live fault plus its board-side bookkeeping: when it
// was injected and whether a pre-injection checkpoint has since been
// restored over its StateKey.
type activeFault struct {
	Fault
	injectedAt time.Time
	restored   bool
}

// NewBoard creates a board and hooks it into the manager's batch and ready
// notifications. Create the board before the recoverer so its listeners
// run first.
func NewBoard(clk clock.Clock, mgr *proc.Manager, log *trace.Log) *Board {
	b := &Board{
		clk:    clk,
		mgr:    mgr,
		log:    log,
		active: make(map[string]*activeFault),
	}
	mgr.OnBatch(b.onBatch)
	mgr.OnReady(b.onReady)
	return b
}

// Inject activates a fault: the manifesting component is killed now
// (fail-silent) and the fault stays active until a restart action covers
// its cure set.
func (b *Board) Inject(f Fault) error {
	if f.Manifest == "" {
		return fmt.Errorf("fault: fault with no manifest component")
	}
	if f.ID == "" {
		b.seq++
		f.ID = fmt.Sprintf("f%d", b.seq)
	}
	if _, dup := b.active[f.ID]; dup {
		return fmt.Errorf("fault: duplicate fault id %q", f.ID)
	}
	b.active[f.ID] = &activeFault{Fault: f, injectedAt: b.clk.Now()}
	b.injected++
	mode := "crash"
	if f.Hang {
		mode = "hang"
	}
	if f.StateKey != "" {
		mode += " state=" + f.StateKey
	}
	b.log.Add(b.clk.Now(), trace.FaultInjected, f.Manifest, "",
		fmt.Sprintf("id=%s mode=%s cure=[%s] hard=%v", f.ID, mode, strings.Join(f.CureList(), " "), f.Hard))
	if f.Hang {
		return b.mgr.Silence(f.Manifest)
	}
	return b.mgr.Kill(f.Manifest, "fault "+f.ID)
}

// onBatch applies cure semantics when a restart action begins. A fault is
// cured when the batch covers its cure set, or — for state faults whose
// pre-injection checkpoint has been restored — when the batch merely
// restarts the manifesting component over the now-clean state.
func (b *Board) onBatch(names []string) {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for id, f := range b.active {
		if f.Hard {
			continue
		}
		covered := true
		for c := range f.cureSet() {
			if !set[c] {
				covered = false
				break
			}
		}
		if !covered && !(f.restored && set[f.Manifest]) {
			continue
		}
		delete(b.active, id)
		b.cured++
		b.log.Add(b.clk.Now(), trace.FaultCured, f.Manifest, "", "id="+id)
		for _, fn := range b.cureSubs {
			fn(CureEvent{Fault: f.Fault, Batch: names, InjectedAt: f.injectedAt, CuredAt: b.clk.Now()})
		}
	}
}

// OnCure subscribes to fault cures.
func (b *Board) OnCure(fn func(ev CureEvent)) {
	b.cureSubs = append(b.cureSubs, fn)
}

// NoteRestore tells the board that the given store keys were reverted to a
// snapshot taken at takenAt. Active state faults whose StateKey was
// reverted to a pre-injection snapshot are marked restored: the next
// restart of just their manifest cures them. A snapshot taken *after*
// injection is itself corrupt — restoring it changes nothing, which is the
// staleness risk the oracle's success-probability estimate learns.
func (b *Board) NoteRestore(keys []string, takenAt time.Time) {
	reverted := make(map[string]bool, len(keys))
	for _, k := range keys {
		reverted[k] = true
	}
	for _, f := range b.active {
		if f.StateKey != "" && reverted[f.StateKey] && takenAt.Before(f.injectedAt) {
			f.restored = true
		}
	}
}

// onReady re-manifests uncured faults: a component that comes up while a
// fault manifesting in it is still active is immediately silenced.
func (b *Board) onReady(name string) {
	for _, f := range b.active {
		if f.Manifest == name {
			_ = b.mgr.Silence(name)
			return
		}
	}
}

// ActiveCount reports the number of uncured faults.
func (b *Board) ActiveCount() int { return len(b.active) }

// Injected reports the total number of injected faults.
func (b *Board) Injected() int { return b.injected }

// Cured reports the total number of cured faults.
func (b *Board) Cured() int { return b.cured }

// MinimalCure returns the cure set of the active fault manifesting at the
// component, if any. The perfect oracle consults this — the experimental
// device the paper uses in §4.4.
func (b *Board) MinimalCure(component string) ([]string, bool) {
	for _, f := range b.active {
		if f.Manifest == component {
			return f.CureList(), true
		}
	}
	return nil, false
}

// ActiveFaults returns the IDs of active faults, sorted.
func (b *Board) ActiveFaults() []string {
	out := make([]string, 0, len(b.active))
	for id := range b.active {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Clear drops all active faults without curing them (between experiment
// trials).
func (b *Board) Clear() {
	b.active = make(map[string]*activeFault)
}

// Injector drives organic failures: for each component with a configured
// law, it samples a time-to-failure each time the component becomes ready
// and injects a fault when it elapses. It also records the achieved
// time-to-failure samples, from which Table 1's MTTFs are measured.
type Injector struct {
	clk   clock.Clock
	mgr   *proc.Manager
	board *Board

	laws map[string]Law
	// CureFor, if set, decides the cure set of organically injected faults;
	// nil means each fault is cured by restarting the component alone.
	CureFor func(component string) []string

	enabled bool
	ttf     map[string][]time.Duration
}

// NewInjector builds an injector over the board. Call Enable to arm it.
func NewInjector(clk clock.Clock, mgr *proc.Manager, board *Board) *Injector {
	inj := &Injector{
		clk:   clk,
		mgr:   mgr,
		board: board,
		laws:  make(map[string]Law),
		ttf:   make(map[string][]time.Duration),
	}
	mgr.OnReady(inj.onReady)
	return inj
}

// SetLaw configures the failure law for a component.
func (inj *Injector) SetLaw(component string, law Law) {
	inj.laws[component] = law
}

// Enable arms the injector; components already running get their first
// failure scheduled on their next ready transition.
func (inj *Injector) Enable() { inj.enabled = true }

// Disable stops scheduling new failures; already-scheduled ones are
// suppressed at fire time.
func (inj *Injector) Disable() { inj.enabled = false }

// onReady schedules the next organic failure for the component.
func (inj *Injector) onReady(name string) {
	if !inj.enabled {
		return
	}
	law, ok := inj.laws[name]
	if !ok {
		return
	}
	gen, err := inj.mgr.Incarnation(name)
	if err != nil {
		return
	}
	ttf := law.Sample(inj.mgr.Rand())
	inj.clk.AfterFunc(ttf, func() {
		if !inj.enabled {
			return
		}
		// Only fire if this incarnation is still the serving one.
		g, err := inj.mgr.Incarnation(name)
		if err != nil || g != gen || !inj.mgr.Serving(name) {
			return
		}
		inj.ttf[name] = append(inj.ttf[name], ttf)
		var cure []string
		if inj.CureFor != nil {
			cure = inj.CureFor(name)
		}
		_ = inj.board.Inject(Fault{Manifest: name, Cure: cure})
	})
}

// Prime schedules the first organic failure for a component that is
// already serving — the OnReady hook only catches future ready
// transitions, so callers enabling the injector mid-run prime each
// component once.
func (inj *Injector) Prime(component string) { inj.onReady(component) }

// TTFSamples returns the achieved time-to-failure samples for a component.
func (inj *Injector) TTFSamples(component string) []time.Duration {
	out := make([]time.Duration, len(inj.ttf[component]))
	copy(out, inj.ttf[component])
	return out
}
