// Package fault provides failure laws, fault injection and the cure
// semantics the experiments are built on.
//
// A Fault manifests at one component (fail-silent, per the paper's failure
// model) and carries a minimal cure set: the set of components that must be
// restarted *together* for the fault to be cured. This directly encodes the
// paper's notion of a minimally n-curable failure — a restart at tree node
// n cures the fault iff the components restarted by n's button cover the
// cure set. Restarting a subset leaves the failure manifest (the component
// comes back up but stays unresponsive), which is what the failure detector
// then re-detects.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Law samples times to failure (or to any stochastic event).
type Law interface {
	// Sample draws one duration.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the law's expected value.
	Mean() time.Duration
}

// Exponential is the classic memoryless failure law.
type Exponential struct {
	M time.Duration
}

var _ Law = Exponential{}

// Sample draws from Exp(1/M).
func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(e.M))
}

// Mean returns M.
func (e Exponential) Mean() time.Duration { return e.M }

// LogNormal is a failure law with controllable coefficient of variation.
// The paper asserts its MTTF/MTTR distributions have small CVs; this law
// lets experiments reproduce that regime.
type LogNormal struct {
	M  time.Duration // mean
	CV float64       // coefficient of variation (stddev/mean)
}

var _ Law = LogNormal{}

// Sample draws from a lognormal with the configured mean and CV.
func (l LogNormal) Sample(rng *rand.Rand) time.Duration {
	cv := l.CV
	if cv <= 0 {
		return l.M
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(l.M.Seconds()) - sigma2/2
	x := math.Exp(mu + math.Sqrt(sigma2)*rng.NormFloat64())
	return time.Duration(x * float64(time.Second))
}

// Mean returns M.
func (l LogNormal) Mean() time.Duration { return l.M }

// Deterministic always returns D.
type Deterministic struct {
	D time.Duration
}

var _ Law = Deterministic{}

// Sample returns D.
func (d Deterministic) Sample(*rand.Rand) time.Duration { return d.D }

// Mean returns D.
func (d Deterministic) Mean() time.Duration { return d.D }

// Never is a law that effectively never fires (used to disable injection
// for a component).
type Never struct{}

var _ Law = Never{}

// aeon is far beyond any simulated horizon.
const aeon = 200 * 365 * 24 * time.Hour

// Sample returns an effectively infinite duration.
func (Never) Sample(*rand.Rand) time.Duration { return aeon }

// Mean returns an effectively infinite duration.
func (Never) Mean() time.Duration { return aeon }

// Weibull is an aging failure law: with Shape > 1 the hazard rate rises
// with uptime, so a component grows ever more likely to fail the longer it
// runs — the regime where software rejuvenation pays off (a restart resets
// the age clock). Shape = 1 degenerates to the exponential law.
type Weibull struct {
	// Shape is the Weibull k parameter (> 0; > 1 means aging).
	Shape float64
	// M is the distribution mean.
	M time.Duration
}

var _ Law = Weibull{}

// Sample draws scale * (-ln U)^(1/k) with the scale chosen so the mean is M.
func (w Weibull) Sample(rng *rand.Rand) time.Duration {
	k := w.Shape
	if k <= 0 {
		k = 1
	}
	scale := w.M.Seconds() / math.Gamma(1+1/k)
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	x := scale * math.Pow(-math.Log(u), 1/k)
	return time.Duration(x * float64(time.Second))
}

// Mean returns M.
func (w Weibull) Mean() time.Duration { return w.M }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

var _ Law = Uniform{}

// Sample draws uniformly from the interval.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(rng.Int63n(int64(u.Hi-u.Lo)))
}

// Mean returns the midpoint.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

// String helpers for experiment reports.
func LawString(l Law) string {
	switch v := l.(type) {
	case Exponential:
		return fmt.Sprintf("exp(mean=%v)", v.M)
	case LogNormal:
		return fmt.Sprintf("lognormal(mean=%v, cv=%.2f)", v.M, v.CV)
	case Deterministic:
		return fmt.Sprintf("const(%v)", v.D)
	case Weibull:
		return fmt.Sprintf("weibull(k=%.1f, mean=%v)", v.Shape, v.M)
	case Uniform:
		return fmt.Sprintf("uniform(%v..%v)", v.Lo, v.Hi)
	case Never:
		return "never"
	default:
		return fmt.Sprintf("%T", l)
	}
}
