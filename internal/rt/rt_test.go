package rt

import (
	"strings"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/trace"
)

// The real-time tests run the whole station at 100× compression: a
// calibrated 5.5 s recovery takes ~55 ms of wall time.
const testScale = 100

func startNode(t *testing.T, tree string) *Node {
	t.Helper()
	node, err := StartNode(NodeConfig{
		ListenAddr: "127.0.0.1:0",
		Scale:      testScale,
		TreeName:   tree,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("StartNode: %v", err)
	}
	t.Cleanup(node.Stop)
	return node
}

func TestLiveNodeBoots(t *testing.T) {
	node := startNode(t, "IV")
	if !node.AllServing() {
		t.Fatal("node booted but components not serving")
	}
	if node.BusAddr() == "" {
		t.Fatal("no bus address")
	}
}

func TestLiveRecoveryFromKill(t *testing.T) {
	node := startNode(t, "IV")
	if err := node.Inject(fault.Fault{Manifest: station.RTU}); err != nil {
		t.Fatal(err)
	}
	if err := node.WaitRecovered(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	var restarts int
	node.Disp.Call(func() { restarts, _ = node.Mgr.Restarts(station.RTU) })
	if restarts != 1 {
		t.Fatalf("rtu restarted %d times", restarts)
	}
	recovered := node.Log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.ComponentReady && e.Component == station.RTU
	})
	if len(recovered) < 2 { // initial boot + recovery
		t.Fatalf("rtu ready events = %d", len(recovered))
	}
}

func TestLiveBrokerOutageRecovery(t *testing.T) {
	node := startNode(t, "IV")
	if err := node.Inject(fault.Fault{Manifest: station.MBus}); err != nil {
		t.Fatal(err)
	}
	if err := node.WaitRecovered(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Only mbus should have been restarted despite everything looking dead
	// during the outage.
	for _, c := range []string{station.SES, station.STR, station.RTU} {
		var n int
		node.Disp.Call(func() { n, _ = node.Mgr.Restarts(c) })
		if n != 0 {
			t.Fatalf("%s restarted %d times during broker outage", c, n)
		}
	}
}

func TestLiveCorrelatedTrackerRecovery(t *testing.T) {
	node := startNode(t, "IV")
	if err := node.Inject(fault.Fault{Manifest: station.SES}); err != nil {
		t.Fatal(err)
	}
	if err := node.WaitRecovered(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Consolidated cell: both trackers restarted together.
	for _, c := range []string{station.SES, station.STR} {
		var n int
		node.Disp.Call(func() { n, _ = node.Mgr.Restarts(c) })
		if n != 1 {
			t.Fatalf("%s restarted %d times", c, n)
		}
	}
}

func TestUnknownTreeRejected(t *testing.T) {
	if _, err := StartNode(NodeConfig{TreeName: "nope", Scale: testScale}); err == nil {
		t.Fatal("unknown tree accepted")
	}
}

func TestDispatcherCallAndStop(t *testing.T) {
	d := NewDispatcher()
	n := 0
	d.Call(func() { n = 42 })
	if n != 42 {
		t.Fatal("Call did not run")
	}
	d.Stop()
	d.Stop() // idempotent
}

func TestClockScaling(t *testing.T) {
	d := NewDispatcher()
	defer d.Stop()
	c := Clock{D: d, Scale: 100}
	done := make(chan time.Time, 1)
	start := time.Now()
	c.AfterFunc(2*time.Second, func() { done <- time.Now() })
	select {
	case at := <-done:
		if el := at.Sub(start); el > 500*time.Millisecond {
			t.Fatalf("scaled 2s fired after %v of wall time", el)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("scaled timer never fired")
	}
}

// TestLiveNodeShardedBus boots a station over a two-shard mbus fabric,
// kills one broker shard mid-run, and verifies the station rides out the
// partial-bus outage: the dead shard's traffic parks and recovers once
// the shard restarts, and component recovery still works end to end.
func TestLiveNodeShardedBus(t *testing.T) {
	node, err := StartNode(NodeConfig{
		ListenAddr: "127.0.0.1:0",
		Scale:      testScale,
		TreeName:   "IV",
		Seed:       1,
		BusShards:  2,
	})
	if err != nil {
		t.Fatalf("StartNode: %v", err)
	}
	t.Cleanup(node.Stop)
	if !node.AllServing() {
		t.Fatal("sharded node booted but components not serving")
	}
	if !strings.Contains(node.BusAddr(), ",") {
		t.Fatalf("sharded bus address %q not a shard list", node.BusAddr())
	}

	// Kill one broker shard (a bus-fabric fault, not a component fault):
	// only the addresses hashing to it go dark. The kill/restart goes
	// through BrokerControl so it serialises with any mbus-cell restart
	// the FD/REC machinery decides on during the outage.
	if node.broker.NumShards() != 2 {
		t.Fatal("no two-shard fabric")
	}
	if err := node.broker.KillShard(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := node.broker.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	if err := node.WaitRecovered(30 * time.Second); err != nil {
		t.Fatalf("station did not settle after shard kill/restart: %v", err)
	}

	// End-to-end recovery still works over the healed fabric.
	if err := node.Inject(fault.Fault{Manifest: station.RTU}); err != nil {
		t.Fatal(err)
	}
	if err := node.WaitRecovered(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}
