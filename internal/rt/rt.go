// Package rt is the real-time runtime: it hosts the same component
// handlers the simulator runs (station components, FD, REC) on wall-clock
// time with the real TCP message bus. All actor activity is serialised
// through a single dispatcher goroutine, giving handlers the same
// single-threaded execution model the simulation kernel provides, so one
// component codebase serves both runtimes.
//
// An optional time-scale factor compresses the calibrated "paper seconds"
// (a 21 s pbcom restart) into a live demo that takes a tenth of the time.
package rt

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/ckpt"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/store"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// Dispatcher serialises all actor work onto one goroutine.
type Dispatcher struct {
	posts chan func()
	quit  chan struct{}
	done  chan struct{}
	once  sync.Once
}

// NewDispatcher starts the dispatch loop.
func NewDispatcher() *Dispatcher {
	d := &Dispatcher{
		posts: make(chan func(), 1024),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go d.loop()
	return d
}

func (d *Dispatcher) loop() {
	defer close(d.done)
	for {
		select {
		case fn := <-d.posts:
			fn()
		case <-d.quit:
			return
		}
	}
}

// Post enqueues fn on the dispatch goroutine. Posts after Stop are
// silently dropped (late timers during shutdown).
func (d *Dispatcher) Post(fn func()) {
	select {
	case d.posts <- fn:
	case <-d.quit:
	}
}

// Call runs fn on the dispatch goroutine and waits for it. After Stop it
// returns immediately without running fn.
func (d *Dispatcher) Call(fn func()) {
	done := make(chan struct{})
	d.Post(func() {
		defer close(done)
		fn()
	})
	select {
	case <-done:
	case <-d.quit:
	}
}

// Stop terminates the dispatcher; queued posts may be dropped.
func (d *Dispatcher) Stop() {
	d.once.Do(func() { close(d.quit) })
	<-d.done
}

// Clock is a wall clock whose callbacks run on the dispatcher, with
// durations compressed by Scale. Now reports *calibrated* time (wall time
// elapsed since Epoch, stretched back up by Scale): handlers compare
// Now() deltas against calibrated durations (re-report throttles, budget
// windows, grace periods), so timestamps must live in the same timebase
// the durations do — wall-clock Now would silently stretch every such
// window by Scale.
type Clock struct {
	D     *Dispatcher
	Scale float64
	// Epoch anchors calibrated time; zero means "process start".
	Epoch time.Time
}

var _ clock.Clock = Clock{}

// processEpoch anchors Clocks constructed without an explicit Epoch.
var processEpoch = time.Now()

// Now returns calibrated time: Epoch + Scale × elapsed wall time.
func (c Clock) Now() time.Time {
	epoch := c.Epoch
	if epoch.IsZero() {
		epoch = processEpoch
	}
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	return epoch.Add(time.Duration(float64(time.Since(epoch)) * s))
}

// AfterFunc schedules fn on the dispatcher after d/Scale.
func (c Clock) AfterFunc(d time.Duration, fn func()) clock.Timer {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	t := time.AfterFunc(time.Duration(float64(d)/s), func() {
		c.D.Post(fn) // dropped silently if the dispatcher has stopped
	})
	return rtTimer{t}
}

// Schedule emulates the kernel's fast path: ev.Fire is posted to the
// dispatcher after d/Scale. Wall-clock runs don't need the allocation
// guarantee, so a closure here is fine.
func (c Clock) Schedule(d time.Duration, ev clock.Event) {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	time.AfterFunc(time.Duration(float64(d)/s), func() {
		c.D.Post(ev.Fire)
	})
}

type rtTimer struct{ t *time.Timer }

func (r rtTimer) Stop() bool { return r.t.Stop() }

// FDParamsForScale adapts the failure detector to time compression. The
// calibrated 200 ms pong timeout becomes only a few milliseconds of wall
// time at high scale — too tight for real TCP and scheduling jitter — so
// the timeout is floored at ~25 ms of wall time and the ping period is
// stretched to keep at least half the cycle free.
func FDParamsForScale(scale float64) core.FDParams {
	p := core.DefaultFDParams()
	if scale <= 1 {
		return p
	}
	floor := time.Duration(float64(25*time.Millisecond) * scale)
	if p.PingTimeout < floor {
		p.PingTimeout = floor
	}
	if p.PingPeriod < 2*p.PingTimeout {
		p.PingPeriod = 2 * p.PingTimeout
	}
	if p.ReReportInterval < 2*p.PingPeriod {
		p.ReReportInterval = 2 * p.PingPeriod
	}
	return p
}

// RECParamsForScale applies the same wall-time floors to the recoverer's
// FD-monitoring link and widens the persistence/grace windows to cover the
// slower detection.
func RECParamsForScale(scale float64) core.RECParams {
	p := core.DefaultRECParams()
	if scale <= 1 {
		return p
	}
	fd := FDParamsForScale(scale)
	p.FDTimeout = fd.PingTimeout
	if p.FDPingPeriod < 2*p.FDTimeout {
		p.FDPingPeriod = 2 * p.FDTimeout
	}
	if p.PersistWindow < 2*fd.ReReportInterval {
		p.PersistWindow = 2 * fd.ReReportInterval
	}
	if p.ReadyGrace < fd.PingPeriod+fd.PingTimeout {
		p.ReadyGrace = fd.PingPeriod + fd.PingTimeout
	}
	return p
}

// NodeConfig parameterises a live node.
type NodeConfig struct {
	// ListenAddr is the broker's TCP address ("127.0.0.1:0" for ephemeral).
	ListenAddr string
	// Scale compresses calibrated durations (10 = ten times faster).
	Scale float64
	// TreeName and Policy select the restart tree and oracle (same names
	// as the simulation).
	TreeName string
	Policy   core.Oracle // optional; nil = escalating
	// Seed drives the deterministic parts (jitter, epochs).
	Seed int64
	// BusShards is the broker-shard count for the mbus fabric; 0 or 1
	// runs the classic single broker.
	BusShards int
	// Micro enables the microrebootable decomposition on a crash-only
	// store (implied by the m-variant tree names "IIIm"/"IVm"); requires a
	// split-layout tree.
	Micro bool
	// OracleName selects a built-in policy when Policy is nil:
	// "" or "escalating", "v2" (the cost-aware oracle), "fixed-micro",
	// "fixed-process", "fixed-ckpt". The checkpoint-backed policies need
	// micro mode.
	OracleName string
	// CkptInterval is the checkpoint snapshot period; zero = the ckpt
	// package default. A non-zero value forces the checkpoint plane on
	// (micro mode only).
	CkptInterval time.Duration
	// EstimatorWindow is the cost-aware oracle's EWMA window in samples;
	// zero = the estimator default.
	EstimatorWindow int
}

// Node hosts a live Mercury station: TCP broker, components, FD and REC.
type Node struct {
	Disp  *Dispatcher
	Mgr   *proc.Manager
	Board *fault.Board
	Log   *trace.Log
	Tree  *core.Tree
	// FD and REC reach the live detector/recoverer incarnations (for the
	// ops endpoints). Their accessors touch dispatcher-owned state: wrap
	// every use in Disp.Call.
	FD  *core.FDHandle
	REC *core.RECHandle
	// Store is the crash-only state store; nil unless micro mode is on.
	Store *store.Store
	// Ckpt is the checkpoint plane; nil unless a checkpoint-backed oracle
	// or an explicit CkptInterval asked for it.
	Ckpt *ckpt.Manager

	cfg     NodeConfig
	scale   float64
	comps   []string
	clients map[string]bus.Conn
	broker  *BrokerControl
	mu      sync.Mutex
	stopped bool
}

// Components returns the station component list (excluding FD/REC).
func (n *Node) Components() []string {
	return append([]string(nil), n.comps...)
}

// TreeName returns the configured restart-tree name.
func (n *Node) TreeName() string { return n.cfg.TreeName }

// BrokerControl ties the mbus process lifecycle to the real TCP fabric:
// while the process is down every shard's listener is closed and frames
// are lost. It is shared by the in-process runtime (Node) and the
// multi-process supervisor (internal/mp). With shards > 1 the mbus cell
// owns a sharded fabric; its death still takes the whole fabric down
// (mbus is one cell in the restart tree), while individual shard
// kill/recover is driven externally (rrbench shardchaos, tests) against
// the fabric handle.
type BrokerControl struct {
	addr   string
	shards int
	mu     sync.Mutex
	fabric *bus.ShardedBroker
	addrs  []string // pinned after the first Open, stable across restarts
}

func (bc *BrokerControl) Open() error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.fabric != nil {
		return nil
	}
	n := bc.shards
	if n < 1 {
		n = 1
	}
	var (
		sb  *bus.ShardedBroker
		err error
	)
	if bc.addrs != nil {
		sb, err = bus.ListenShardedAddrs(bc.addrs, brokerDefaults())
	} else {
		sb, err = bus.ListenSharded(bc.addr, n, brokerDefaults())
	}
	if err != nil {
		return err
	}
	bc.addrs = sb.Addrs() // pin ephemeral ports for restarts
	bc.fabric = sb
	return nil
}

// brokerDefaults is the live fabric's per-connection tuning: drop on
// back-pressure (a stalled component must not wedge the bus cell).
func brokerDefaults() bus.BrokerConfig {
	return bus.BrokerConfig{Batch: bus.BatchConfig{Policy: bus.DropNewest}}
}

func (bc *BrokerControl) CloseBroker() {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.fabric != nil {
		_ = bc.fabric.Close()
		bc.fabric = nil
	}
}

// Address returns the fabric's address spec: a single "host:port" for one
// shard, a comma-separated list for a sharded fabric. bus.DialAuto
// accepts either, so the spec flows through -bus flags unchanged.
func (bc *BrokerControl) Address() string {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.addrs != nil {
		return strings.Join(bc.addrs, ",")
	}
	return bc.addr
}

// Fabric returns the live sharded fabric, or nil while mbus is down (for
// shard-level chaos drivers).
func (bc *BrokerControl) Fabric() *bus.ShardedBroker {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.fabric
}

// NumShards returns the fabric width the controller manages.
func (bc *BrokerControl) NumShards() int {
	n := bc.shards
	if n < 1 {
		n = 1
	}
	return n
}

// KillShard stops one broker shard of the live fabric. A no-op while the
// whole mbus cell is down. Serialised with Open/CloseBroker so a shard
// fault cannot race the mbus cell's own restart (which rebinds every
// pinned shard port).
func (bc *BrokerControl) KillShard(i int) error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.fabric == nil {
		return nil
	}
	return bc.fabric.KillShard(i)
}

// RestartShard revives one broker shard on its pinned address. A no-op
// while the whole mbus cell is down — the cell's next Open rebinds every
// shard anyway.
func (bc *BrokerControl) RestartShard(i int) error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.fabric == nil {
		return nil
	}
	return bc.fabric.RestartShard(i)
}

// NewBrokerControl returns a controller for a single-shard broker on addr.
func NewBrokerControl(addr string) *BrokerControl {
	return &BrokerControl{addr: addr, shards: 1}
}

// NewShardedBrokerControl returns a controller for an n-shard fabric
// listening at addr (each shard on its own port).
func NewShardedBrokerControl(addr string, n int) *BrokerControl {
	return &BrokerControl{addr: addr, shards: n}
}

// NewLiveBrokerHandler returns the mbus component for real-time runtimes:
// its startup opens the TCP listener, its death closes it (via the
// manager's OnDown hook calling ctl.CloseBroker).
func NewLiveBrokerHandler(startup time.Duration, ctl *BrokerControl) func() proc.Handler {
	return func() proc.Handler { return &rtBrokerHandler{startup: startup, ctl: ctl} }
}

// rtBrokerHandler is the mbus component in real-time mode: its startup
// opens the TCP listener, its death closes it.
type rtBrokerHandler struct {
	startup time.Duration
	ctl     *BrokerControl
	ready   bool
}

func (h *rtBrokerHandler) Start(ctx proc.Context) {
	d := time.Duration(float64(h.startup) * ctx.Stretch())
	ctx.After(d, func() {
		if err := h.ctl.Open(); err != nil {
			ctx.Fail("broker listen: " + err.Error())
			return
		}
		h.ready = true
		ctx.Ready()
	})
}

func (h *rtBrokerHandler) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindPing && h.ready {
		ctx.Send(xmlcmd.NewPong(ctx.Name(), m, ctx.Incarnation()))
	}
}

// transport sends each component's traffic through its own TCP client,
// except the FD↔REC dedicated link which is delivered in-process.
type transport struct {
	node *Node
}

func (t transport) Send(m *xmlcmd.Message) {
	if (m.From == xmlcmd.AddrFD || m.From == xmlcmd.AddrREC) &&
		(m.To == xmlcmd.AddrFD || m.To == xmlcmd.AddrREC) {
		// Dedicated link: does not transit mbus.
		t.node.Mgr.Deliver(m)
		return
	}
	t.node.mu.Lock()
	c := t.node.clients[m.From]
	t.node.mu.Unlock()
	if c != nil {
		c.Send(m)
	}
}

// StartNode builds and boots a live station.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.TreeName == "" {
		cfg.TreeName = "IV"
	}

	disp := NewDispatcher()
	clk := Clock{D: disp, Scale: cfg.Scale}
	log := trace.NewLog()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mgr := proc.NewManager(clk, rng, log)

	node := &Node{
		Disp:    disp,
		Mgr:     mgr,
		Log:     log,
		cfg:     cfg,
		scale:   cfg.Scale,
		clients: make(map[string]bus.Conn),
		broker:  NewShardedBrokerControl(cfg.ListenAddr, cfg.BusShards),
	}
	mgr.SetTransport(transport{node: node})
	node.Board = fault.NewBoard(clk, mgr, log)

	params := station.DefaultParams(time.Now())
	trees, err := core.MercuryTrees(station.MonolithicComponents(), station.SplitComponents())
	if err != nil {
		return nil, err
	}
	if cfg.Micro || strings.HasSuffix(cfg.TreeName, "m") {
		node.Store = store.New(clk, store.Options{SweepPeriod: 5 * time.Second})
		params.Micro = station.DefaultMicroParams(node.Store)
		for _, base := range []string{"III", "IV"} {
			mt, err := core.SubAugment(trees[base], base+"m", station.MicroSubs())
			if err != nil {
				return nil, fmt.Errorf("rt: tree %sm: %w", base, err)
			}
			trees[base+"m"] = mt
		}
	}
	tree, ok := trees[cfg.TreeName]
	if !ok {
		return nil, fmt.Errorf("rt: unknown tree %q", cfg.TreeName)
	}
	node.Tree = tree
	layout := station.Split
	if cfg.TreeName == "I" || cfg.TreeName == "II" {
		layout = station.Monolithic
	}

	// Register the station, swapping the broker handler for the real one.
	comps, err := registerStation(mgr, params, layout, node)
	if err != nil {
		return nil, err
	}

	// Checkpoint plane: built when a checkpoint-backed oracle or an
	// explicit interval asks for it (micro mode only — the store holds the
	// state the snapshots cover).
	needCkpt := cfg.OracleName == "v2" || cfg.OracleName == "costaware" ||
		cfg.OracleName == "fixed-ckpt" || cfg.CkptInterval > 0
	if node.Store != nil && needCkpt {
		node.Ckpt = ckpt.New(clk, node.Store, ckpt.Options{
			Interval: cfg.CkptInterval,
			Keys:     station.MicroCheckpointKeys(),
		})
		node.Ckpt.OnRestore(node.Board.NoteRestore)
	}

	oracle := cfg.Policy
	if oracle == nil {
		var err error
		if oracle, err = nodeOracle(cfg, node.Ckpt); err != nil {
			return nil, err
		}
	}
	restartFD := func() {
		if st, _ := mgr.State(xmlcmd.AddrFD); st != proc.Starting {
			_ = mgr.Restart([]string{xmlcmd.AddrFD})
		}
	}
	restartREC := func() {
		if st, _ := mgr.State(xmlcmd.AddrREC); st != proc.Starting {
			_ = mgr.Restart([]string{xmlcmd.AddrREC})
		}
	}
	recParams := RECParamsForScale(cfg.Scale)
	if node.Ckpt != nil {
		ck := node.Ckpt
		recParams.CkptRestore = func(set []string) (time.Duration, error) {
			var total time.Duration
			restored := false
			for _, c := range set {
				if lat, err := ck.Restore(c); err == nil {
					total += lat
					restored = true
				}
			}
			if !restored {
				return 0, fmt.Errorf("rt: no checkpoint covering %v", set)
			}
			return total, nil
		}
	}
	recFactory, recHandle := core.NewREC(recParams, tree, oracle, mgr, restartFD)
	node.REC = recHandle
	if err := mgr.Register(xmlcmd.AddrREC, recFactory); err != nil {
		return nil, err
	}
	fdFactory, fdHandle := core.NewFDWithHandle(FDParamsForScale(cfg.Scale), comps, station.MBus, restartREC)
	node.FD = fdHandle
	if err := mgr.Register(xmlcmd.AddrFD, fdFactory); err != nil {
		return nil, err
	}
	node.comps = append([]string(nil), comps...)

	// Open bus clients for every component (FD included; REC uses only the
	// dedicated link).
	if err := node.broker.Open(); err != nil {
		return nil, err
	}
	for _, name := range append(append([]string(nil), comps...), xmlcmd.AddrFD) {
		name := name
		client, err := bus.DialAuto(node.broker.Address(), name, func(m *xmlcmd.Message) {
			disp.Post(func() { node.Mgr.Deliver(m) })
		})
		if err != nil {
			return nil, err
		}
		node.clients[name] = client
	}

	// Boot: station first, then FD/REC.
	var bootErr error
	disp.Call(func() { bootErr = mgr.StartBatch(comps) })
	if bootErr != nil {
		return nil, bootErr
	}
	deadline := time.Now().Add(scaled(90*time.Second, cfg.Scale) + 5*time.Second)
	for {
		var ok bool
		disp.Call(func() { ok = mgr.AllServing(comps...) })
		if ok {
			break
		}
		if time.Now().After(deadline) {
			node.Stop()
			return nil, errors.New("rt: station did not boot in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	disp.Call(func() { bootErr = mgr.StartBatch([]string{xmlcmd.AddrFD, xmlcmd.AddrREC}) })
	if bootErr != nil {
		node.Stop()
		return nil, bootErr
	}
	return node, nil
}

// registerStation mirrors station.Register but substitutes the live broker
// handler for mbus (the simulated one has no listener to manage).
func registerStation(mgr *proc.Manager, p station.Params, layout station.Layout, node *Node) ([]string, error) {
	names, err := layout.Components()
	if err != nil {
		return nil, err
	}
	if err := mgr.Register(station.MBus, func() proc.Handler {
		return &rtBrokerHandler{startup: p.MBusStartup, ctl: node.broker}
	}); err != nil {
		return nil, err
	}
	switch layout {
	case station.Monolithic:
		if err := mgr.Register(station.Fedrcom, station.NewFedrcom(p)); err != nil {
			return nil, err
		}
		if err := mgr.Register(station.RTU, station.NewRTU(p, station.Fedrcom)); err != nil {
			return nil, err
		}
	case station.Split:
		if err := mgr.Register(station.Fedr, station.NewFedr(p)); err != nil {
			return nil, err
		}
		if err := mgr.Register(station.Pbcom, station.NewPbcom(p)); err != nil {
			return nil, err
		}
		if err := mgr.Register(station.RTU, station.NewRTU(p, station.Fedr)); err != nil {
			return nil, err
		}
	}
	if err := mgr.Register(station.SES, station.NewSES(p)); err != nil {
		return nil, err
	}
	if err := mgr.Register(station.STR, station.NewSTR(p)); err != nil {
		return nil, err
	}
	if p.Micro != nil {
		if layout != station.Split {
			return nil, fmt.Errorf("rt: micro mode requires the split layout, got %s", layout)
		}
		if err := station.RegisterSubs(mgr); err != nil {
			return nil, err
		}
	}

	// The broker process's death must close the real listener.
	mgr.OnDown(func(name, _ string) {
		if name == station.MBus {
			node.broker.CloseBroker()
		}
	})
	return names, nil
}

// scaled converts a calibrated duration to wall time.
func scaled(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) / scale)
}

// Inject delivers a fault into the live station.
func (n *Node) Inject(f fault.Fault) error {
	var err error
	n.Disp.Call(func() { err = n.Board.Inject(f) })
	return err
}

// AllServing reports whether the station components all serve.
func (n *Node) AllServing() bool {
	var ok bool
	n.Disp.Call(func() {
		comps := []string{station.MBus, station.SES, station.STR, station.RTU}
		if n.cfg.TreeName == "I" || n.cfg.TreeName == "II" {
			comps = append(comps, station.Fedrcom)
		} else {
			comps = append(comps, station.Fedr, station.Pbcom)
		}
		ok = n.Mgr.AllServing(comps...) && n.Mgr.AllSubsServing() && n.Board.ActiveCount() == 0
	})
	return ok
}

// WaitRecovered polls until the station recovers or the wall deadline
// passes.
func (n *Node) WaitRecovered(limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if n.AllServing() {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return errors.New("rt: no recovery before deadline")
}

// BusAddr returns the live broker address (for faultgen and external
// clients).
func (n *Node) BusAddr() string { return n.broker.Address() }

// Stop tears the node down.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	clients := n.clients
	n.clients = map[string]bus.Conn{}
	n.mu.Unlock()
	// Stop the dispatcher first so no handler can reopen the broker or
	// touch clients while they are torn down.
	n.Disp.Stop()
	if n.Ckpt != nil {
		n.Ckpt.Close()
	}
	for _, c := range clients {
		c.Close()
	}
	n.broker.CloseBroker()
}

// nodeOracle builds the named built-in policy.
func nodeOracle(cfg NodeConfig, ck *ckpt.Manager) (core.Oracle, error) {
	var model core.CheckpointModel
	if ck != nil {
		model = ck
	}
	switch cfg.OracleName {
	case "", "escalating":
		return core.EscalatingOracle{}, nil
	case "v2", "costaware":
		return core.NewCostAwareOracle(core.CostAwareConfig{
			Ckpt:   model,
			Window: cfg.EstimatorWindow,
		}), nil
	case "fixed-micro":
		return &core.FixedActionOracle{Mode: core.FixedMicro}, nil
	case "fixed-process":
		return &core.FixedActionOracle{Mode: core.FixedProcess}, nil
	case "fixed-ckpt":
		return &core.FixedActionOracle{Mode: core.FixedCkpt, Ckpt: model}, nil
	default:
		return nil, fmt.Errorf("rt: unknown oracle %q", cfg.OracleName)
	}
}
