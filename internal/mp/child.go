// Package mp is the multi-process runtime: every station component runs in
// its own OS process, connected over the real TCP bus, exactly like
// Mercury's per-JVM deployment. The supervisor process hosts the bus
// broker, the failure detector and the recoverer; pushing a restart-cell
// button really SIGKILLs child processes and spawns fresh ones.
package mp

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/rt"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// Environment variables carrying a child's spec (set by the supervisor's
// default spawner; read by SpecFromEnv in the child's main).
const (
	EnvComponent   = "MERCURY_MP_COMPONENT"
	EnvBusAddr     = "MERCURY_MP_BUS"
	EnvScale       = "MERCURY_MP_SCALE"
	EnvStretch     = "MERCURY_MP_STRETCH"
	EnvSeed        = "MERCURY_MP_SEED"
	EnvLayout      = "MERCURY_MP_LAYOUT"
	EnvIncarnation = "MERCURY_MP_INCARNATION"
)

// ChildConfig parameterises one component process.
type ChildConfig struct {
	Component   string
	BusAddr     string
	Scale       float64
	Stretch     float64
	Seed        int64
	Layout      string // "split" or "monolithic"
	Incarnation int
}

// Env renders the spec as environment variable assignments.
func (c ChildConfig) Env() []string {
	return []string{
		EnvComponent + "=" + c.Component,
		EnvBusAddr + "=" + c.BusAddr,
		EnvScale + "=" + strconv.FormatFloat(c.Scale, 'g', -1, 64),
		EnvStretch + "=" + strconv.FormatFloat(c.Stretch, 'g', -1, 64),
		EnvSeed + "=" + strconv.FormatInt(c.Seed, 10),
		EnvLayout + "=" + c.Layout,
		EnvIncarnation + "=" + strconv.Itoa(c.Incarnation),
	}
}

// SpecFromEnv reads a child spec from the environment; ok is false when
// this process is not a component child. Call it first thing in main (or
// TestMain) and hand control to RunChild when ok.
func SpecFromEnv() (ChildConfig, bool) {
	comp := os.Getenv(EnvComponent)
	if comp == "" {
		return ChildConfig{}, false
	}
	scale, _ := strconv.ParseFloat(os.Getenv(EnvScale), 64)
	stretch, _ := strconv.ParseFloat(os.Getenv(EnvStretch), 64)
	seed, _ := strconv.ParseInt(os.Getenv(EnvSeed), 10, 64)
	inc, _ := strconv.Atoi(os.Getenv(EnvIncarnation))
	return ChildConfig{
		Component:   comp,
		BusAddr:     os.Getenv(EnvBusAddr),
		Scale:       scale,
		Stretch:     stretch,
		Seed:        seed,
		Layout:      os.Getenv(EnvLayout),
		Incarnation: inc,
	}, true
}

// readyPrefix is the stdout line a child prints once its component is
// functionally ready; the supervisor scans for it.
const readyPrefix = "MERCURY-READY"

// hangCommand is the bus command the supervisor sends to make a child
// unresponsive (injected hang faults).
const hangCommand = "sys-hang"

// clientTransport adapts a TCP bus client to proc.Transport.
type clientTransport struct {
	c bus.Conn
}

func (t clientTransport) Send(m *xmlcmd.Message) { t.c.Send(m) }

// hangable wraps a component handler so the supervisor can inject hangs:
// once hung, the component silently drops everything — alive at the OS
// level, dead at the application level.
type hangable struct {
	inner proc.Handler
	hung  bool
}

func (h *hangable) Start(ctx proc.Context) { h.inner.Start(ctx) }

func (h *hangable) Receive(ctx proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindCommand && m.Command.Name == hangCommand {
		h.hung = true
		return
	}
	if h.hung {
		return
	}
	h.inner.Receive(ctx, m)
}

// handlerFor maps a component name to its station handler factory.
func handlerFor(component, layout string, p station.Params) (func() proc.Handler, error) {
	switch component {
	case station.SES:
		return station.NewSES(p), nil
	case station.STR:
		return station.NewSTR(p), nil
	case station.RTU:
		front := station.Fedr
		if layout == "monolithic" {
			front = station.Fedrcom
		}
		return station.NewRTU(p, front), nil
	case station.Fedr:
		return station.NewFedr(p), nil
	case station.Pbcom:
		return station.NewPbcom(p), nil
	case station.Fedrcom:
		return station.NewFedrcom(p), nil
	default:
		return nil, fmt.Errorf("mp: no child handler for component %q", component)
	}
}

// RunChild hosts one station component in this OS process. It connects to
// the bus (retrying while the broker boots), starts the component with the
// supervisor-assigned contention stretch, announces readiness on stdout,
// and returns when the component dies — the process is the component, as
// with Mercury's JVMs, so local death means process exit.
func RunChild(cfg ChildConfig) error {
	if cfg.Component == "" || cfg.BusAddr == "" {
		return errors.New("mp: child needs a component and a bus address")
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Stretch < 1 {
		cfg.Stretch = 1
	}

	disp := rt.NewDispatcher()
	defer disp.Stop()
	clk := rt.Clock{D: disp, Scale: cfg.Scale}
	log := trace.NewLog()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mgr := proc.NewManager(clk, rng, log)

	params := station.DefaultParams(time.Now())
	factory, err := handlerFor(cfg.Component, cfg.Layout, params)
	if err != nil {
		return err
	}

	// Connect to the broker, retrying while it is still starting. The
	// handler hands each message to the dispatcher goroutine, which is safe
	// because DialBus delivers a fresh message per frame — only the
	// connection's frame buffers are reused underneath.
	var client bus.Conn
	deadline := time.Now().Add(30 * time.Second)
	for {
		client, err = bus.DialAuto(cfg.BusAddr, cfg.Component, func(m *xmlcmd.Message) {
			disp.Post(func() { mgr.Deliver(m) })
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mp: bus never came up: %w", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer client.Close()
	mgr.SetTransport(clientTransport{c: client})

	if err := mgr.Register(cfg.Component, func() proc.Handler {
		return &hangable{inner: factory()}
	}); err != nil {
		return err
	}

	died := make(chan string, 1)
	mgr.OnReady(func(name string) {
		fmt.Printf("%s %s %d\n", readyPrefix, name, cfg.Incarnation)
	})
	mgr.OnDown(func(name, reason string) {
		select {
		case died <- reason:
		default:
		}
	})

	var startErr error
	disp.Call(func() { startErr = mgr.StartStretched(cfg.Component, cfg.Stretch) })
	if startErr != nil {
		return startErr
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case reason := <-died:
		return fmt.Errorf("mp: component %s died: %s", cfg.Component, reason)
	case <-sig:
		return nil
	}
}
