package mp

import (
	"github.com/recursive-restart/mercury/internal/obs"
)

// MPMetrics aggregates the supervisor's child-process lifecycle counters:
// real OS processes spawned, SIGKILLed by restart actions, and reaped.
// Increments happen on the supervisor's I/O goroutines, so these use the
// plain (shard-0) counter path — child churn is far too slow to contend.
type MPMetrics struct {
	ChildSpawns   obs.Counter // component child processes started
	SpawnFailures obs.Counter // spawn attempts that failed before running
	ChildKills    obs.Counter // children SIGKILLed by a restart action or teardown
	ChildExits    obs.Counter // child processes reaped (any cause)
}

// M is the process-wide multi-process metrics instance.
var M MPMetrics

// RegisterMetrics registers the child-process families with an obs
// registry under the mercury_mp_* namespace.
func RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("mercury_mp_child_spawns_total",
		"Component child processes started.", &M.ChildSpawns)
	r.RegisterCounter("mercury_mp_spawn_failures_total",
		"Child spawn attempts that failed before the process ran.", &M.SpawnFailures)
	r.RegisterCounter("mercury_mp_child_kills_total",
		"Children SIGKILLed by restart actions or teardown.", &M.ChildKills)
	r.RegisterCounter("mercury_mp_child_exits_total",
		"Child processes reaped, any cause.", &M.ChildExits)
}
