package mp

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/rt"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// SpawnFunc launches one component child process. The default re-executes
// the current binary with the spec in the environment (see SpecFromEnv).
type SpawnFunc func(spec ChildConfig) (*exec.Cmd, error)

// DefaultSpawn re-executes the running binary as a component child.
func DefaultSpawn(spec ChildConfig) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("mp: locate executable: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), spec.Env()...)
	return cmd, nil
}

// SupervisorConfig parameterises the parent process.
type SupervisorConfig struct {
	// ListenAddr is the broker address ("127.0.0.1:0" for ephemeral).
	ListenAddr string
	// Scale compresses calibrated durations.
	Scale float64
	// TreeName selects the restart tree ("I" … "V").
	TreeName string
	// Seed drives the deterministic pieces.
	Seed int64
	// Spawn launches children; nil uses DefaultSpawn.
	Spawn SpawnFunc
	// Policy is the oracle; nil = escalating.
	Policy core.Oracle
	// RECParams overrides the recoverer configuration (already adjusted
	// for Scale); nil uses rt.RECParamsForScale.
	RECParams *core.RECParams
}

// managedChild tracks one live child process.
type managedChild struct {
	cmd *exec.Cmd
	gen int
}

// Supervisor is the parent process of a multi-process Mercury: it hosts
// the bus broker, the failure detector and the recoverer, and supervises
// one OS process per station component. Restart-cell buttons SIGKILL the
// children in the cell and spawn fresh processes with the appropriate
// contention stretch.
type Supervisor struct {
	Disp  *rt.Dispatcher
	Mgr   *proc.Manager
	Board *fault.Board
	Log   *trace.Log
	Tree  *core.Tree
	FD    *core.FDHandle
	REC   *core.RECHandle

	cfg      SupervisorConfig
	layout   station.Layout
	comps    []string
	broker   *rt.BrokerControl
	spawn    SpawnFunc
	seq      uint64
	fdClient bus.Conn
	mbusCli  bus.Conn
	ctl      bus.Conn

	mu       sync.Mutex
	children map[string]*managedChild
	stopped  bool
}

// supTransport carries the parent-resident endpoints' traffic: FD and the
// mbus broker handler use their TCP clients; FD↔REC ride the dedicated
// in-process link; component proxies never send (their children do).
type supTransport struct {
	s *Supervisor
}

func (t supTransport) Send(m *xmlcmd.Message) {
	if (m.From == xmlcmd.AddrFD || m.From == xmlcmd.AddrREC) &&
		(m.To == xmlcmd.AddrFD || m.To == xmlcmd.AddrREC) {
		t.s.Mgr.Deliver(m)
		return
	}
	switch m.From {
	case xmlcmd.AddrFD:
		t.s.fdClient.Send(m)
	case station.MBus:
		t.s.mbusCli.Send(m)
	}
}

// proxyHandler is the parent-side stand-in for a component child: its
// lifecycle IS the child process's lifecycle.
type proxyHandler struct {
	sup       *Supervisor
	component string
}

func (h *proxyHandler) Start(ctx proc.Context) {
	spec := ChildConfig{
		Component:   h.component,
		BusAddr:     h.sup.broker.Address(),
		Scale:       h.sup.cfg.Scale,
		Stretch:     ctx.Stretch(),
		Seed:        h.sup.cfg.Seed + nameSeed(h.component) + int64(ctx.Incarnation())*7919,
		Layout:      h.sup.layout.String(),
		Incarnation: ctx.Incarnation(),
	}
	// Process I/O happens off the dispatcher; state changes come back via
	// posts guarded by the incarnation-scoped context.
	go h.sup.spawnChild(spec, ctx)
}

func (h *proxyHandler) Receive(proc.Context, *xmlcmd.Message) {
	// Children receive their own bus traffic; nothing arrives here.
}

// spawnChild launches a component process and watches it.
func (s *Supervisor) spawnChild(spec ChildConfig, ctx proc.Context) {
	cmd, err := s.spawn(spec)
	if err != nil {
		M.SpawnFailures.Inc()
		s.Disp.Post(func() { ctx.Fail("spawn: " + err.Error()) })
		return
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		M.SpawnFailures.Inc()
		s.Disp.Post(func() { ctx.Fail("stdout pipe: " + err.Error()) })
		return
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		M.SpawnFailures.Inc()
		s.Disp.Post(func() { ctx.Fail("start child: " + err.Error()) })
		return
	}
	M.ChildSpawns.Inc()

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return
	}
	s.children[spec.Component] = &managedChild{cmd: cmd, gen: spec.Incarnation}
	s.mu.Unlock()

	// Scan the child's stdout for the readiness announcement.
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, readyPrefix) {
				s.Disp.Post(ctx.Ready)
			}
		}
	}()

	// Reap the child; an unexpected exit is a component failure.
	go func() {
		_ = cmd.Wait()
		M.ChildExits.Inc()
		s.Disp.Post(func() {
			s.mu.Lock()
			cur := s.children[spec.Component]
			if cur != nil && cur.cmd == cmd {
				delete(s.children, spec.Component)
			}
			s.mu.Unlock()
			// Only this incarnation's death matters; a restart already
			// superseded older processes.
			if inc, err := s.Mgr.Incarnation(spec.Component); err == nil && inc == spec.Incarnation {
				if st, _ := s.Mgr.State(spec.Component); st == proc.Starting || st == proc.Running {
					_ = s.Mgr.Kill(spec.Component, "child process exited")
				}
			}
		})
	}()
}

// killChild SIGKILLs a component's current child process, if any.
func (s *Supervisor) killChild(component string) {
	s.mu.Lock()
	c := s.children[component]
	delete(s.children, component)
	s.mu.Unlock()
	if c != nil && c.cmd.Process != nil {
		M.ChildKills.Inc()
		_ = c.cmd.Process.Kill()
	}
}

// ChildPID reports the live child's OS pid (0 if none).
func (s *Supervisor) ChildPID(component string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.children[component]; c != nil && c.cmd.Process != nil {
		return c.cmd.Process.Pid
	}
	return 0
}

// StartSupervisor boots a multi-process Mercury.
func StartSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.TreeName == "" {
		cfg.TreeName = "IV"
	}
	spawn := cfg.Spawn
	if spawn == nil {
		spawn = DefaultSpawn
	}

	disp := rt.NewDispatcher()
	clk := rt.Clock{D: disp, Scale: cfg.Scale}
	log := trace.NewLog()
	mgr := proc.NewManager(clk, rand.New(rand.NewSource(cfg.Seed)), log)

	trees, err := core.MercuryTrees(station.MonolithicComponents(), station.SplitComponents())
	if err != nil {
		return nil, err
	}
	tree, ok := trees[cfg.TreeName]
	if !ok {
		return nil, fmt.Errorf("mp: unknown tree %q", cfg.TreeName)
	}
	layout := station.Split
	if cfg.TreeName == "I" || cfg.TreeName == "II" {
		layout = station.Monolithic
	}
	comps, err := layout.Components()
	if err != nil {
		return nil, err
	}

	s := &Supervisor{
		Disp:     disp,
		Mgr:      mgr,
		Log:      log,
		Tree:     tree,
		cfg:      cfg,
		layout:   layout,
		comps:    comps,
		broker:   rt.NewBrokerControl(cfg.ListenAddr),
		spawn:    spawn,
		children: make(map[string]*managedChild),
	}
	mgr.SetTransport(supTransport{s: s})
	s.Board = fault.NewBoard(clk, mgr, log)

	// The broker must be reachable before children are told its address.
	if err := s.broker.Open(); err != nil {
		return nil, err
	}

	params := station.DefaultParams(time.Now())
	if err := mgr.Register(station.MBus, rt.NewLiveBrokerHandler(params.MBusStartup, s.broker)); err != nil {
		return nil, err
	}
	for _, comp := range comps {
		if comp == station.MBus {
			continue
		}
		comp := comp
		if err := mgr.Register(comp, func() proc.Handler {
			return &proxyHandler{sup: s, component: comp}
		}); err != nil {
			return nil, err
		}
	}

	oracle := cfg.Policy
	if oracle == nil {
		oracle = core.EscalatingOracle{}
	}
	restartFD := func() {
		if st, _ := mgr.State(xmlcmd.AddrFD); st != proc.Starting {
			_ = mgr.Restart([]string{xmlcmd.AddrFD})
		}
	}
	restartREC := func() {
		if st, _ := mgr.State(xmlcmd.AddrREC); st != proc.Starting {
			_ = mgr.Restart([]string{xmlcmd.AddrREC})
		}
	}
	recParams := rt.RECParamsForScale(cfg.Scale)
	if cfg.RECParams != nil {
		recParams = *cfg.RECParams
	}
	recFactory, recHandle := core.NewREC(recParams, tree, oracle, mgr, restartFD)
	s.REC = recHandle
	if err := mgr.Register(xmlcmd.AddrREC, recFactory); err != nil {
		return nil, err
	}
	fdFactory, fdHandle := core.NewFDWithHandle(rt.FDParamsForScale(cfg.Scale), comps, station.MBus, restartREC)
	s.FD = fdHandle
	if err := mgr.Register(xmlcmd.AddrFD, fdFactory); err != nil {
		return nil, err
	}

	// Lifecycle hooks: broker death closes the listener; component death
	// ends the child process; an injected hang is forwarded to the child.
	mgr.OnDown(func(name, reason string) {
		switch {
		case name == station.MBus:
			s.broker.CloseBroker()
		case name == xmlcmd.AddrFD || name == xmlcmd.AddrREC:
			// in-parent infrastructure; nothing external to clean up
		case reason == "silenced":
			if s.ctl != nil {
				s.seq++
				s.ctl.Send(xmlcmd.NewCommand("supervisor", name, s.seq, hangCommand))
			}
		default:
			s.killChild(name)
		}
	})

	// Parent-resident bus clients. Handlers post messages onto the
	// dispatcher goroutine; DialBus guarantees a fresh message per frame
	// (only the connection's frame buffers are reused), so the handoff
	// never races with the read loop.
	addr := s.broker.Address()
	s.fdClient, err = bus.DialAuto(addr, xmlcmd.AddrFD, func(m *xmlcmd.Message) {
		disp.Post(func() { mgr.Deliver(m) })
	})
	if err != nil {
		s.Stop()
		return nil, err
	}
	s.mbusCli, err = bus.DialAuto(addr, station.MBus, func(m *xmlcmd.Message) {
		disp.Post(func() { mgr.Deliver(m) })
	})
	if err != nil {
		s.Stop()
		return nil, err
	}
	s.ctl, err = bus.DialAuto(addr, "supervisor", nil)
	if err != nil {
		s.Stop()
		return nil, err
	}

	// Boot: the station batch (spawning all children), then FD and REC.
	var bootErr error
	disp.Call(func() { bootErr = mgr.StartBatch(comps) })
	if bootErr != nil {
		s.Stop()
		return nil, bootErr
	}
	deadline := time.Now().Add(scaledDur(90*time.Second, cfg.Scale) + 20*time.Second)
	for {
		var ok bool
		disp.Call(func() { ok = mgr.AllServing(comps...) })
		if ok {
			break
		}
		if time.Now().After(deadline) {
			s.Stop()
			return nil, errors.New("mp: children did not boot in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	disp.Call(func() { bootErr = mgr.StartBatch([]string{xmlcmd.AddrFD, xmlcmd.AddrREC}) })
	if bootErr != nil {
		s.Stop()
		return nil, bootErr
	}
	return s, nil
}

func scaledDur(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) / scale)
}

// nameSeed derives a per-component seed offset (FNV-1a), so sibling
// children draw distinct random streams.
func nameSeed(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h % 1000003)
}

// Inject delivers a fault (crash or hang) into the running system.
func (s *Supervisor) Inject(f fault.Fault) error {
	var err error
	s.Disp.Call(func() { err = s.Board.Inject(f) })
	return err
}

// AllServing reports whether every station component serves and no fault
// is active.
func (s *Supervisor) AllServing() bool {
	var ok bool
	s.Disp.Call(func() {
		ok = s.Mgr.AllServing(s.comps...) && s.Board.ActiveCount() == 0
	})
	return ok
}

// WaitRecovered polls until recovery or the wall-clock deadline.
func (s *Supervisor) WaitRecovered(limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if s.AllServing() {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return errors.New("mp: no recovery before deadline")
}

// BusAddr returns the broker address.
func (s *Supervisor) BusAddr() string { return s.broker.Address() }

// Components returns the station component list.
func (s *Supervisor) Components() []string {
	out := make([]string, len(s.comps))
	copy(out, s.comps)
	return out
}

// Stop tears everything down, SIGKILLing all children.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	children := s.children
	s.children = map[string]*managedChild{}
	s.mu.Unlock()

	s.Disp.Stop()
	for _, c := range children {
		if c.cmd.Process != nil {
			// The per-child reaper goroutines collect the exits.
			_ = c.cmd.Process.Kill()
		}
	}
	if s.fdClient != nil {
		s.fdClient.Close()
	}
	if s.mbusCli != nil {
		s.mbusCli.Close()
	}
	if s.ctl != nil {
		s.ctl.Close()
	}
	s.broker.CloseBroker()
}
