package mp

import (
	"fmt"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/rt"
	"github.com/recursive-restart/mercury/internal/station"
	"github.com/recursive-restart/mercury/internal/trace"
)

// TestMain doubles as the component-child entry point: when the supervisor
// re-executes the test binary with the child spec in the environment, run
// the component instead of the test suite.
func TestMain(m *testing.M) {
	if cfg, ok := SpecFromEnv(); ok {
		if err := RunChild(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(3)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// mpScale compresses the calibrated seconds for the live children.
const mpScale = 100

func startSupervisor(t *testing.T, tree string) *Supervisor {
	t.Helper()
	sup, err := StartSupervisor(SupervisorConfig{
		ListenAddr: "127.0.0.1:0",
		Scale:      mpScale,
		TreeName:   tree,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("StartSupervisor: %v", err)
	}
	t.Cleanup(sup.Stop)
	return sup
}

func TestMultiProcessBoot(t *testing.T) {
	sup := startSupervisor(t, "IV")
	if !sup.AllServing() {
		t.Fatal("not all components serving")
	}
	// Every non-broker component is a real OS process with its own pid.
	pids := map[int]bool{}
	for _, comp := range sup.Components() {
		if comp == station.MBus {
			continue
		}
		pid := sup.ChildPID(comp)
		if pid == 0 {
			t.Fatalf("%s has no child process", comp)
		}
		if pids[pid] {
			t.Fatalf("duplicate pid %d", pid)
		}
		pids[pid] = true
	}
}

func TestMultiProcessCrashRecovery(t *testing.T) {
	sup := startSupervisor(t, "IV")
	oldPID := sup.ChildPID(station.RTU)
	if err := sup.Inject(fault.Fault{Manifest: station.RTU}); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitRecovered(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	newPID := sup.ChildPID(station.RTU)
	if newPID == 0 || newPID == oldPID {
		t.Fatalf("rtu child not replaced: %d -> %d", oldPID, newPID)
	}
	// Only rtu's process was cycled.
	var restarts int
	sup.Disp.Call(func() { restarts, _ = sup.Mgr.Restarts(station.SES) })
	if restarts != 0 {
		t.Fatal("ses restarted during an rtu-only recovery")
	}
}

func TestMultiProcessHangRecovery(t *testing.T) {
	sup := startSupervisor(t, "IV")
	oldPID := sup.ChildPID(station.RTU)
	if err := sup.Inject(fault.Fault{Manifest: station.RTU, Hang: true}); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitRecovered(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sup.ChildPID(station.RTU) == oldPID {
		t.Fatal("hung rtu child was not replaced")
	}
}

// TestMultiProcessCrossProcessInducedFailure is the distributed version of
// §4.3: restarting the ses process makes the real str process crash (exit)
// via the resynchronisation protocol over TCP, and REC recovers both.
func TestMultiProcessCrossProcessInducedFailure(t *testing.T) {
	sup := startSupervisor(t, "III")
	strPID := sup.ChildPID(station.STR)
	if err := sup.Inject(fault.Fault{Manifest: station.SES}); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitRecovered(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sup.ChildPID(station.STR) == strPID {
		t.Fatal("str process survived a ses restart under tree III")
	}
	var strRestarts int
	sup.Disp.Call(func() { strRestarts, _ = sup.Mgr.Restarts(station.STR) })
	if strRestarts == 0 {
		t.Fatal("induced str failure was not recovered")
	}
}

func TestMultiProcessBrokerOutage(t *testing.T) {
	sup := startSupervisor(t, "IV")
	if err := sup.Inject(fault.Fault{Manifest: station.MBus}); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitRecovered(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The outage must not have cycled any child processes.
	for _, comp := range sup.Components() {
		if comp == station.MBus {
			continue
		}
		var n int
		sup.Disp.Call(func() { n, _ = sup.Mgr.Restarts(comp) })
		if n != 0 {
			t.Fatalf("%s restarted during broker outage", comp)
		}
	}
}

func TestUnknownTreeRejectedMP(t *testing.T) {
	if _, err := StartSupervisor(SupervisorConfig{TreeName: "bogus", Scale: mpScale}); err == nil {
		t.Fatal("unknown tree accepted")
	}
}

func TestChildSpecEnvRoundTrip(t *testing.T) {
	in := ChildConfig{
		Component: "ses", BusAddr: "127.0.0.1:9", Scale: 50, Stretch: 1.24,
		Seed: 42, Layout: "split", Incarnation: 3,
	}
	var keys []string
	for _, kv := range in.Env() {
		for i := 0; i < len(kv); i++ {
			if kv[i] == '=' {
				os.Setenv(kv[:i], kv[i+1:])
				keys = append(keys, kv[:i])
				break
			}
		}
	}
	defer func() {
		for _, k := range keys {
			os.Unsetenv(k)
		}
	}()
	got, ok := SpecFromEnv()
	if !ok {
		t.Fatal("SpecFromEnv not ok")
	}
	if got != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestRunChildValidation(t *testing.T) {
	if err := RunChild(ChildConfig{}); err == nil {
		t.Fatal("empty child config accepted")
	}
	if err := RunChild(ChildConfig{Component: "mbus", BusAddr: "x", Scale: 1}); err == nil {
		t.Fatal("mbus child accepted (broker lives in the supervisor)")
	}
}

func TestHandlerFor(t *testing.T) {
	p := station.DefaultParams(time.Now())
	for _, comp := range []string{"ses", "str", "rtu", "fedr", "pbcom", "fedrcom"} {
		if _, err := handlerFor(comp, "split", p); err != nil {
			t.Fatalf("handlerFor(%s): %v", comp, err)
		}
	}
	if _, err := handlerFor("nope", "split", p); err == nil {
		t.Fatal("unknown component accepted")
	}
}

// TestMultiProcessExternalKillMidTraffic kills a child with SIGKILL from
// outside the supervisor — the process dies at an arbitrary point, quite
// possibly mid-frame-write. The half-written frame must not wedge the
// broker, and the reaper must surface the death so REC replaces the pid.
func TestMultiProcessExternalKillMidTraffic(t *testing.T) {
	sup := startSupervisor(t, "IV")
	oldPID := sup.ChildPID(station.RTU)
	if oldPID == 0 {
		t.Fatal("rtu has no child process")
	}
	if err := syscall.Kill(oldPID, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	// The supervisor learns of the death from its reaper, not from the
	// killer; wait for that before waiting for the recovery itself.
	deadline := time.Now().Add(10 * time.Second)
	for sup.ChildPID(station.RTU) == oldPID {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never noticed the external SIGKILL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := sup.WaitRecovered(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	newPID := sup.ChildPID(station.RTU)
	if newPID == 0 || newPID == oldPID {
		t.Fatalf("externally killed rtu child not replaced: %d -> %d", oldPID, newPID)
	}
	if !sup.AllServing() {
		t.Fatal("station not fully serving after external kill recovery")
	}
}

// cellOracle always recommends the failed component's own cell, keeping a
// hard-fault storm scoped to one child so the restart *budget* — not the
// escalation ladder — is what ends it.
type cellOracle struct{}

func (cellOracle) Name() string { return "cell" }
func (cellOracle) Choose(t *core.Tree, component string, _ *core.Node, _ int) (*core.Node, error) {
	return t.CellOf(component)
}

// TestMultiProcessHardFaultGivesUp drives the restart budget end-to-end
// across real processes: a hard fault re-manifests after every restart, so
// the policy must eventually record a GiveUp and stop cycling the child.
func TestMultiProcessHardFaultGivesUp(t *testing.T) {
	// Real child respawns cost seconds of calibrated time each, so the
	// default 2-minute budget window can prune history faster than six
	// restarts accrue; widen it so the budget logic itself is what ends
	// the storm.
	recp := rt.RECParamsForScale(mpScale)
	recp.BudgetWindow = 30 * time.Minute
	sup, err := StartSupervisor(SupervisorConfig{
		ListenAddr: "127.0.0.1:0",
		Scale:      mpScale,
		TreeName:   "IV",
		Seed:       1,
		Policy:     cellOracle{},
		RECParams:  &recp,
	})
	if err != nil {
		t.Fatalf("StartSupervisor: %v", err)
	}
	t.Cleanup(sup.Stop)
	if err := sup.Inject(fault.Fault{Manifest: station.RTU, Hard: true}); err != nil {
		t.Fatal(err)
	}
	gaveUp := func() bool {
		return len(sup.Log.Filter(func(e trace.Event) bool { return e.Kind == trace.GiveUp })) > 0
	}
	deadline := time.Now().Add(90 * time.Second)
	for !gaveUp() {
		if time.Now().After(deadline) {
			t.Fatal("policy never gave up on a hard fault")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// After giving up, the abandoned component must stop being cycled.
	var before int
	sup.Disp.Call(func() { before, _ = sup.Mgr.Restarts(station.RTU) })
	time.Sleep(2 * time.Second)
	var after int
	sup.Disp.Call(func() { after, _ = sup.Mgr.Restarts(station.RTU) })
	if after != before {
		t.Fatalf("rtu still cycling after give-up: %d -> %d restarts", before, after)
	}
}
