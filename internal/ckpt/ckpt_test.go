package ckpt

import (
	"testing"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/store"
)

func rig(t *testing.T) (*Manager, *store.Store, *sim.Kernel) {
	t.Helper()
	k := sim.New(1)
	clk := clock.Sim{K: k}
	st := store.New(clk, store.Options{})
	l, err := st.Acquire("track/target", "str", time.Hour)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := l.Put([]byte("AOS-047")); err != nil {
		t.Fatalf("put: %v", err)
	}
	m := New(clk, st, Options{
		Interval: 10 * time.Second,
		Keys:     map[string][]string{"str.track": {"track/target"}},
	})
	t.Cleanup(m.Close)
	return m, st, k
}

func TestSnapshotAndRestore(t *testing.T) {
	m, st, k := rig(t)

	// The constructor took an immediate snapshot of the live key.
	if _, ok := m.RestoreCost("str.track"); !ok {
		t.Fatal("no restore cost after initial snapshot")
	}
	if _, ok := m.RestoreCost("ses.cache"); ok {
		t.Fatal("cost reported for unmapped component")
	}

	// Corrupt the value, then restore: the pre-corruption bytes return.
	l, err := st.Acquire("track/target", "str", time.Hour)
	if err != nil {
		t.Fatalf("reacquire: %v", err)
	}
	if _, err := l.Put([]byte("GARBAGE")); err != nil {
		t.Fatalf("corrupt put: %v", err)
	}
	var gotKeys []string
	var gotAt time.Time
	m.OnRestore(func(keys []string, takenAt time.Time) { gotKeys, gotAt = keys, takenAt })

	lat, err := m.Restore("str.track")
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if lat < 1200*time.Millisecond {
		t.Fatalf("restore latency %v below floor", lat)
	}
	val, _, ok := st.Get("track/target")
	if !ok || string(val) != "AOS-047" {
		t.Fatalf("after restore got %q ok=%v, want AOS-047", val, ok)
	}
	if len(gotKeys) != 1 || gotKeys[0] != "track/target" {
		t.Fatalf("OnRestore keys = %v", gotKeys)
	}
	if !gotAt.Equal(k.Now()) {
		t.Fatalf("OnRestore takenAt = %v, want initial snapshot time %v", gotAt, k.Now())
	}
}

func TestPeriodicSnapshotTracksWrites(t *testing.T) {
	m, st, k := rig(t)

	l, err := st.Acquire("track/target", "str", time.Hour)
	if err != nil {
		t.Fatalf("reacquire: %v", err)
	}
	if _, err := l.Put([]byte("AOS-048")); err != nil {
		t.Fatalf("put: %v", err)
	}
	// After a tick the snapshot advances to the new value.
	if err := k.RunFor(11 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := l.Put([]byte("AOS-049")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := m.Restore("str.track"); err != nil {
		t.Fatalf("restore: %v", err)
	}
	val, _, _ := st.Get("track/target")
	if string(val) != "AOS-048" {
		t.Fatalf("restore gave %q, want AOS-048 (last checkpointed)", val)
	}
}

func TestRestoreCostGrowsWithStaleness(t *testing.T) {
	m, _, k := rig(t)
	c0, ok := m.RestoreCost("str.track")
	if !ok {
		t.Fatal("no cost")
	}
	m.Close() // freeze snapshots; only staleness moves
	if err := k.RunFor(100 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	c1, _ := m.RestoreCost("str.track")
	if c1 <= c0 {
		t.Fatalf("cost did not grow with staleness: %v -> %v", c0, c1)
	}
	// Redo term: 100s staleness at default 0.02 adds ~2s.
	if d := c1 - c0; d < 1900*time.Millisecond || d > 2100*time.Millisecond {
		t.Fatalf("staleness delta %v, want ~2s", d)
	}
}
