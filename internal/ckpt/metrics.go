package ckpt

import (
	"github.com/recursive-restart/mercury/internal/obs"
)

// CkptMetrics aggregates the process-wide checkpoint-plane counters.
type CkptMetrics struct {
	Snapshots obs.Counter // per-key snapshots taken
	Restores  obs.Counter // component restores executed

	// RestoreSeconds is the modeled restore latency distribution;
	// SnapshotBytes the per-key snapshot size distribution.
	RestoreSeconds *obs.Histogram
	SnapshotBytes  *obs.ValueHistogram
}

// M is the process-wide checkpoint metrics instance.
var M = CkptMetrics{
	RestoreSeconds: obs.NewHistogram(obs.DefBuckets()...),
	SnapshotBytes:  obs.NewValueHistogram(16, 64, 256, 1024, 4096, 16384),
}

// RegisterMetrics registers the checkpoint family with an obs registry
// under the mercury_ckpt_* namespace.
func RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("mercury_ckpt_snapshots_total",
		"Per-key checkpoint snapshots taken.", &M.Snapshots)
	r.RegisterCounter("mercury_ckpt_restores_total",
		"Component state restores executed.", &M.Restores)
	r.RegisterHistogram("mercury_ckpt_restore_seconds",
		"Modeled checkpoint-restore latency.", M.RestoreSeconds)
	r.RegisterValueHistogram("mercury_ckpt_snapshot_bytes",
		"Per-key snapshot sizes.", M.SnapshotBytes)
}
