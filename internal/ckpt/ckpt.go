// Package ckpt maintains periodic checkpoints of externalized component
// state on the crash-only store, and prices restoring them. It is the
// mechanism behind oracle v2's third recovery action: instead of restarting
// a subtree (losing its externalized state's recent writes is never the
// problem — state *corruption* is), the recoverer can revert a component's
// store keys to the last snapshot and then reboot it, trading restore
// latency plus redo work for a shallower restart.
//
// The cost model follows "Asymptotic efficiency of restart and
// checkpointing" (PAPERS.md): a fixed restore floor (process setup), a
// bytes/throughput term (reading the snapshot back), and a redo term
// proportional to snapshot staleness (work since the checkpoint must be
// replayed or re-derived). The periodic snapshot itself is the standing
// overhead the oracle's harm model charges against the action.
//
// Everything runs on the injected clock — snapshots tick deterministically
// inside the simulation, so cost-aware campaigns stay reproducible.
package ckpt

import (
	"fmt"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/store"
)

// Options configures a checkpoint manager.
type Options struct {
	// Interval between periodic snapshots. Default 10s.
	Interval time.Duration

	// RestoreFloor is the fixed latency of any restore (locating the
	// snapshot, quiescing the component). Default 1.2s.
	RestoreFloor time.Duration

	// RestoreBytesPerSec is the modeled snapshot read-back throughput.
	// Default 64 KiB/s — deliberately slow, matching the station's
	// late-90s embedded profile.
	RestoreBytesPerSec float64

	// RedoFactor is seconds of redo work per second of snapshot
	// staleness: state written since the checkpoint must be re-derived
	// after the revert. Default 0.02.
	RedoFactor float64

	// Keys maps a component (or dotted subcomponent) to the store keys
	// holding its externalized state. Only mapped components are
	// checkpointable.
	Keys map[string][]string
}

func (o *Options) defaults() {
	if o.Interval <= 0 {
		o.Interval = 10 * time.Second
	}
	if o.RestoreFloor <= 0 {
		o.RestoreFloor = 1200 * time.Millisecond
	}
	if o.RestoreBytesPerSec <= 0 {
		o.RestoreBytesPerSec = 64 * 1024
	}
	if o.RedoFactor < 0 {
		o.RedoFactor = 0
	} else if o.RedoFactor == 0 {
		o.RedoFactor = 0.02
	}
}

// snapshot is one checkpointed key value.
type snapshot struct {
	val     []byte
	takenAt time.Time
}

// Manager takes periodic snapshots of the configured store keys and
// restores them on demand. It implements core.CheckpointModel.
type Manager struct {
	clk clock.Clock
	st  *store.Store
	opt Options

	mu        sync.Mutex
	snaps     map[string]snapshot
	onRestore []func(keys []string, takenAt time.Time)
	ticker    *clock.Ticker
	closed    bool
}

// New builds a manager, takes an immediate first snapshot, and starts the
// periodic ticker on the injected clock.
func New(clk clock.Clock, st *store.Store, opt Options) *Manager {
	opt.defaults()
	m := &Manager{
		clk:   clk,
		st:    st,
		opt:   opt,
		snaps: make(map[string]snapshot),
	}
	m.Take()
	m.ticker = clock.NewTicker(clk, opt.Interval, func() { m.Take() })
	return m
}

// OnRestore registers a callback fired after every successful Restore with
// the reverted keys and the (earliest) snapshot time they were reverted
// to. The fault board subscribes here to learn that pre-fault state is
// back in place.
func (m *Manager) OnRestore(fn func(keys []string, takenAt time.Time)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRestore = append(m.onRestore, fn)
}

// Take snapshots every configured key whose value is currently live,
// returning the number captured. Keys whose lease is dead (component mid
// crash) keep their previous snapshot — checkpointing never overwrites a
// good snapshot with absence.
func (m *Manager) Take() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0
	}
	now := m.clk.Now()
	n := 0
	for _, keys := range m.opt.Keys {
		for _, key := range keys {
			val, _, ok := m.st.Get(key)
			if !ok {
				continue
			}
			m.snaps[key] = snapshot{val: append([]byte(nil), val...), takenAt: now}
			M.Snapshots.Inc()
			M.SnapshotBytes.Observe(uint64(len(val)))
			n++
		}
	}
	return n
}

// covered returns the keys and earliest snapshot time for a component,
// ok=false when the component is unmapped or any of its keys lacks a
// snapshot. Caller holds m.mu.
func (m *Manager) covered(component string) (keys []string, oldest time.Time, bytes int, ok bool) {
	keys = m.opt.Keys[component]
	if len(keys) == 0 {
		return nil, time.Time{}, 0, false
	}
	for i, key := range keys {
		s, have := m.snaps[key]
		if !have {
			return nil, time.Time{}, 0, false
		}
		bytes += len(s.val)
		if i == 0 || s.takenAt.Before(oldest) {
			oldest = s.takenAt
		}
	}
	return keys, oldest, bytes, true
}

// cost prices a restore from the covered snapshot set. Caller holds m.mu.
func (m *Manager) cost(oldest time.Time, bytes int) time.Duration {
	age := m.clk.Now().Sub(oldest)
	if age < 0 {
		age = 0
	}
	read := time.Duration(float64(bytes) / m.opt.RestoreBytesPerSec * float64(time.Second))
	redo := time.Duration(m.opt.RedoFactor * float64(age))
	return m.opt.RestoreFloor + read + redo
}

// RestoreCost implements core.CheckpointModel: the modeled latency of
// restoring the component's state right now, ok=false when the component
// has no complete snapshot.
func (m *Manager) RestoreCost(component string) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, oldest, bytes, ok := m.covered(component)
	if !ok {
		return 0, false
	}
	return m.cost(oldest, bytes), true
}

// Restore reverts the component's store keys to their last snapshot and
// returns the modeled restore latency the recoverer must pay before
// rebooting. The revert is administrative — it bypasses lease ownership,
// because the owning component is by definition down or corrupt.
func (m *Manager) Restore(component string) (time.Duration, error) {
	m.mu.Lock()
	keys, oldest, bytes, ok := m.covered(component)
	if !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("ckpt: no snapshot covering %q", component)
	}
	for _, key := range keys {
		if _, err := m.st.Revert(key, m.snaps[key].val); err != nil {
			m.mu.Unlock()
			return 0, fmt.Errorf("ckpt: restore %q: %w", component, err)
		}
	}
	lat := m.cost(oldest, bytes)
	subs := make([]func(keys []string, takenAt time.Time), len(m.onRestore))
	copy(subs, m.onRestore)
	m.mu.Unlock()

	M.Restores.Inc()
	M.RestoreSeconds.Observe(lat)
	for _, fn := range subs {
		fn(keys, oldest)
	}
	return lat, nil
}

// Close stops the periodic ticker.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	if m.ticker != nil {
		m.ticker.Stop()
	}
}
