package experiment

import (
	"strings"
	"testing"
	"time"
)

// TestShardChaosCampaign runs the broker-shard kill/recover campaign at
// its smallest useful shape and asserts the structural properties that
// must hold on any machine: full delivery on surviving shards during
// every outage, zero delivery into dead shards, and both recovery paths
// (per-shard and whole-bus) completing.
func TestShardChaosCampaign(t *testing.T) {
	res, err := RunShardChaos(ShardChaosConfig{
		Shards:         2,
		DestsPerShard:  1,
		FramesPerPhase: 3,
		ProbeInterval:  2 * time.Millisecond,
		PhaseTimeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("got %d rounds, want 2", len(res.Rounds))
	}
	for _, rd := range res.Rounds {
		if rd.SurvivingSent == 0 {
			t.Fatalf("round %d sent no surviving-shard traffic", rd.Killed)
		}
		if rd.SurvivingDelivered != rd.SurvivingSent {
			t.Fatalf("round %d: %d/%d surviving frames delivered — shard kill leaked beyond its address slice",
				rd.Killed, rd.SurvivingDelivered, rd.SurvivingSent)
		}
		if rd.DeadDelivered != 0 {
			t.Fatalf("round %d: %d frames delivered into the dead shard", rd.Killed, rd.DeadDelivered)
		}
		if rd.Recovery <= 0 {
			t.Fatalf("round %d: non-positive recovery %v", rd.Killed, rd.Recovery)
		}
	}
	if !res.Isolated() {
		t.Fatal("Isolated() false on clean rounds")
	}
	if res.WholeBusRecovery <= 0 {
		t.Fatalf("non-positive whole-bus recovery %v", res.WholeBusRecovery)
	}

	out := RenderShardChaos(res)
	for _, want := range []string{"Broker-shard chaos", "isolation held", "whole-bus restart"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
