// Package experiment regenerates every table and figure in the paper's
// evaluation: Table 1 (observed per-component MTTFs), Table 2 (tree I vs
// II recovery), Table 3 (transformation summary), Table 4 (overall MTTRs
// across trees I–V and oracles), the restart-tree figures (2–6), the
// architecture map (figure 1), and the §8 headline ("recovery time
// improved by a factor of four").
//
// Each measured cell runs repeated independent trials — a fresh simulated
// station per trial, exactly as the paper ran 100 experiments per failed
// component — and reports the sample statistics next to the paper's
// published value.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/runner"
	"github.com/recursive-restart/mercury/internal/sim"
)

// DefaultTrials matches the paper's 100 experiments per cell.
const DefaultTrials = 100

// RunConfig parameterises a measured campaign: how many trials per cell,
// the base seed, and how wide the trial-level worker pool fans out.
// Results are independent of Workers — the runner folds trial results in
// seed order, so parallel campaigns are bit-identical to sequential ones.
type RunConfig struct {
	Trials   int
	BaseSeed int64
	// Workers bounds the trial pool; <= 0 means one worker per CPU.
	Workers int
}

func (rc RunConfig) runnerConfig(stride int64) runner.Config {
	return runner.Config{Workers: rc.Workers, BaseSeed: rc.BaseSeed, Stride: stride}
}

// PaperMTTF is Table 1 as published (operator estimates).
var PaperMTTF = map[string]time.Duration{
	"mbus":    30 * 24 * time.Hour, // "1 month"
	"fedrcom": 10 * time.Minute,
	"ses":     5 * time.Hour,
	"str":     5 * time.Hour,
	"rtu":     5 * time.Hour,
}

// SplitMTTF extends Table 1 across the fedrcom split: fedr inherits the
// instability (the buggy translator), pbcom is "simple and very stable".
var SplitMTTF = map[string]time.Duration{
	"mbus":  30 * 24 * time.Hour,
	"fedr":  10 * time.Minute,
	"pbcom": 14 * 24 * time.Hour,
	"ses":   5 * time.Hour,
	"str":   5 * time.Hour,
	"rtu":   5 * time.Hour,
}

// PaperTable4 is Table 4 as published (seconds; 0 = not applicable).
// Keyed by row label then component.
var PaperTable4 = map[string]map[string]float64{
	"I/perfect":  {"mbus": 24.75, "ses": 24.75, "str": 24.75, "rtu": 24.75, "fedrcom": 24.75},
	"II/perfect": {"mbus": 5.73, "ses": 9.50, "str": 9.76, "rtu": 5.59, "fedrcom": 20.93},
	"III/perfect": {"mbus": 5.73, "ses": 9.50, "str": 9.76, "rtu": 5.59,
		"fedr": 5.76, "pbcom": 21.24},
	"IV/perfect": {"mbus": 5.73, "ses": 6.25, "str": 6.11, "rtu": 5.59,
		"fedr": 5.76, "pbcom": 21.24},
	"IV/faulty": {"mbus": 5.73, "ses": 6.25, "str": 6.11, "rtu": 5.59,
		"fedr": 5.76, "pbcom": 29.19},
	"V/faulty": {"mbus": 5.73, "ses": 6.25, "str": 6.11, "rtu": 5.59,
		"fedr": 5.76, "pbcom": 21.63},
}

// FaultyP is the paper's arbitrary 30% wrong-guess rate (§4.4).
const FaultyP = 0.30

// Cell is one measured experiment cell: a tree, a policy, and a failed
// component.
type Cell struct {
	Tree      string
	Policy    mercury.Policy
	FaultyP   float64
	Component string
	// Cure overrides the fault's minimal cure set (nil = component only).
	// The §4.4 faulty-oracle experiments use pbcom faults curable only by
	// a joint [fedr pbcom] restart.
	Cure []string
}

// Label renders the row key ("IV/faulty").
func (c Cell) Label() string {
	switch c.Policy {
	case mercury.PolicyPerfect:
		return c.Tree + "/perfect"
	case mercury.PolicyFaulty:
		return c.Tree + "/faulty"
	default:
		return c.Tree + "/" + strings.ToLower(c.Policy.String())
	}
}

// Measure runs one independent recovery trial for the cell: a fresh
// deterministic system built from the seed, booted, injected with the
// cell's fault, and timed to full recovery. It is the pure (spec, seed) →
// result trial function the runner fans out.
func (c Cell) Measure(seed int64) (time.Duration, error) {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed:     seed,
		TreeName: c.Tree,
		Policy:   c.Policy,
		FaultyP:  c.FaultyP,
	})
	if err != nil {
		return 0, err
	}
	if err := sys.Boot(); err != nil {
		return 0, fmt.Errorf("boot: %w", err)
	}
	return sys.MeasureRecovery(mercury.Fault{Component: c.Component, Cure: c.Cure}, 5*time.Minute)
}

// RunCell measures one cell over the given number of trials, each in a
// fresh deterministic system (seed varies per trial).
func RunCell(c Cell, trials int, baseSeed int64) (*metrics.Sample, error) {
	return RunCellCfg(context.Background(), c, RunConfig{Trials: trials, BaseSeed: baseSeed})
}

// RunCellCfg measures one cell under an explicit run configuration,
// fanning trials across the runner's worker pool.
func RunCellCfg(ctx context.Context, c Cell, rc RunConfig) (*metrics.Sample, error) {
	return runCellWith(ctx, c, rc, Cell.Measure)
}

// measureFunc is one trial of a cell under some execution engine: the
// direct single-kernel path (Cell.Measure) or the 1-shard fleet bridge
// (see fleetbridge.go). Injecting the engine lets the byte-identity tests
// drive the same campaign grids through both.
type measureFunc func(c Cell, seed int64) (time.Duration, error)

// runCellWith measures one cell with an explicit trial engine.
func runCellWith(ctx context.Context, c Cell, rc RunConfig, measure measureFunc) (*metrics.Sample, error) {
	return runner.RunSample(ctx, rc.runnerConfig(runner.DefaultStride), rc.Trials,
		func(_ context.Context, i int, seed int64) (time.Duration, error) {
			d, err := measure(c, seed)
			if err != nil {
				return 0, fmt.Errorf("cell %s/%s trial %d: %w", c.Label(), c.Component, i, err)
			}
			return d, nil
		})
}

// Row is one Table 2/4 row: a tree+policy across failed components.
type Row struct {
	Label string
	Cells map[string]*metrics.Sample
}

// Table4Rows defines the paper's six Table 4 rows. The pbcom column under
// the faulty-oracle rows injects the §4.4 joint-cure fault.
func Table4Rows() []struct {
	Label   string
	Tree    string
	Policy  mercury.Policy
	FaultyP float64
} {
	return []struct {
		Label   string
		Tree    string
		Policy  mercury.Policy
		FaultyP float64
	}{
		{"I/perfect", "I", mercury.PolicyPerfect, 0},
		{"II/perfect", "II", mercury.PolicyPerfect, 0},
		{"III/perfect", "III", mercury.PolicyPerfect, 0},
		{"IV/perfect", "IV", mercury.PolicyPerfect, 0},
		{"IV/faulty", "IV", mercury.PolicyFaulty, FaultyP},
		{"V/faulty", "V", mercury.PolicyFaulty, FaultyP},
	}
}

// componentsForTree returns the failed-component columns for a tree row.
func componentsForTree(tree string) []string {
	if tree == "I" || tree == "II" {
		return []string{"mbus", "ses", "str", "rtu", "fedrcom"}
	}
	return []string{"mbus", "ses", "str", "rtu", "fedr", "pbcom"}
}

// cureForCell picks the injected fault's minimal cure for a cell,
// reproducing the paper's setups: the faulty-oracle pbcom experiments use
// failures "that manifest in pbcom but can only be cured by a joint
// restart of fedr and pbcom".
func cureForCell(rowLabel, component string) []string {
	if component == "pbcom" && strings.HasSuffix(rowLabel, "/faulty") {
		return []string{"fedr", "pbcom"}
	}
	return nil
}

// measureRows measures a sequence of table rows cell by cell; every cell
// seeds its trials from the same base, so any row subset reproduces the
// corresponding full-table rows exactly.
func measureRows(ctx context.Context, specs []struct {
	Label   string
	Tree    string
	Policy  mercury.Policy
	FaultyP float64
}, rc RunConfig) ([]Row, error) {
	return measureRowsWith(ctx, specs, rc, Cell.Measure)
}

// measureRowsWith measures table rows under an explicit trial engine.
func measureRowsWith(ctx context.Context, specs []struct {
	Label   string
	Tree    string
	Policy  mercury.Policy
	FaultyP float64
}, rc RunConfig, measure measureFunc) ([]Row, error) {
	var rows []Row
	for _, spec := range specs {
		row := Row{Label: spec.Label, Cells: make(map[string]*metrics.Sample)}
		for _, comp := range componentsForTree(spec.Tree) {
			cell := Cell{
				Tree:      spec.Tree,
				Policy:    spec.Policy,
				FaultyP:   spec.FaultyP,
				Component: comp,
				Cure:      cureForCell(spec.Label, comp),
			}
			s, err := runCellWith(ctx, cell, rc, measure)
			if err != nil {
				return nil, err
			}
			row.Cells[comp] = s
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4 measures the full Table 4 grid.
func Table4(trials int, baseSeed int64) ([]Row, error) {
	return Table4Cfg(context.Background(), RunConfig{Trials: trials, BaseSeed: baseSeed})
}

// Table4Cfg measures the full Table 4 grid under an explicit run
// configuration.
func Table4Cfg(ctx context.Context, rc RunConfig) ([]Row, error) {
	return measureRows(ctx, Table4Rows(), rc)
}

// Table2 measures the paper's Table 2: trees I and II only.
func Table2(trials int, baseSeed int64) ([]Row, error) {
	return Table2Cfg(context.Background(), RunConfig{Trials: trials, BaseSeed: baseSeed})
}

// Table2Cfg measures only the two Table 2 rows (trees I and II) rather
// than running the full six-row Table 4 grid and slicing it — about a
// third of the work — while still producing rows identical to Table 4's
// first two for the same seed.
func Table2Cfg(ctx context.Context, rc RunConfig) ([]Row, error) {
	return measureRows(ctx, Table4Rows()[:2], rc)
}

// RenderRows renders measured rows against the paper's values.
func RenderRows(rows []Row, title string) string {
	cols := []string{"mbus", "ses", "str", "rtu", "fedr", "pbcom", "fedrcom"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-12s", "tree/oracle")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %18s", c)
	}
	sb.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-12s", row.Label)
		paper := PaperTable4[row.Label]
		for _, c := range cols {
			s, ok := row.Cells[c]
			if !ok {
				fmt.Fprintf(&sb, " %18s", "—")
				continue
			}
			cell := fmt.Sprintf("%.2f", s.MeanSeconds())
			if p, ok := paper[c]; ok {
				cell += fmt.Sprintf(" (paper %.2f)", p)
			}
			fmt.Fprintf(&sb, " %18s", cell)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("measured values are means over trials; (paper x.xx) is the published number\n")
	return sb.String()
}

// Table1Result compares achieved failure-law MTTFs against Table 1.
type Table1Result struct {
	Component  string
	Configured time.Duration
	Measured   *metrics.Sample
}

// Table1 validates the failure-law calibration: for each component it
// draws samples from the lognormal law (small CV, as the paper asserts for
// its distributions) configured at the published MTTF and reports the
// achieved mean and CV.
func Table1(samples int, seed int64) ([]Table1Result, error) {
	return Table1Cfg(context.Background(), samples, RunConfig{BaseSeed: seed})
}

// Table1Cfg runs the calibration with each component as one trial on the
// runner: every component draws from its own seeded RNG stream, so rows
// are independent of each other and of the worker count.
func Table1Cfg(ctx context.Context, samples int, rc RunConfig) ([]Table1Result, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("experiment: non-positive sample count")
	}
	comps := make([]string, 0, len(PaperMTTF))
	for c := range PaperMTTF {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	return runner.Run(ctx, rc.runnerConfig(runner.DefaultStride), len(comps),
		func(_ context.Context, i int, seed int64) (Table1Result, error) {
			c := comps[i]
			law := fault.LogNormal{M: PaperMTTF[c], CV: 0.25}
			rng := sim.New(seed).Rand()
			var s metrics.Sample
			for j := 0; j < samples; j++ {
				s.Add(law.Sample(rng))
			}
			return Table1Result{Component: c, Configured: PaperMTTF[c], Measured: &s}, nil
		})
}

// RenderTable1 renders the Table 1 comparison.
func RenderTable1(res []Table1Result) string {
	var sb strings.Builder
	sb.WriteString("Table 1 — observed per-component MTTFs (failure-law calibration)\n")
	fmt.Fprintf(&sb, "%-10s %16s %16s %8s\n", "component", "paper MTTF", "achieved mean", "CV")
	for _, r := range res {
		fmt.Fprintf(&sb, "%-10s %16s %16s %8.3f\n",
			r.Component, r.Configured, r.Measured.Mean().Round(time.Second), r.Measured.CV())
	}
	return sb.String()
}

// Headline computes the §8 claim: the MTTF-weighted overall MTTR of the
// original system (tree I) versus the final system (tree V with the
// realistic escalating-equivalent faulty oracle), and the improvement
// factor. The weighting uses Table 1 failure rates so the components that
// fail most often (fedrcom/fedr) dominate, exactly as in operation.
type HeadlineResult struct {
	TreeIMTTR time.Duration
	TreeVMTTR time.Duration
	Factor    float64
}

// Headline derives the improvement factor from measured Table 4 rows.
func Headline(rows []Row) (*HeadlineResult, error) {
	var rowI, rowV *Row
	for i := range rows {
		switch rows[i].Label {
		case "I/perfect":
			rowI = &rows[i]
		case "V/faulty":
			rowV = &rows[i]
		}
	}
	if rowI == nil || rowV == nil {
		return nil, fmt.Errorf("experiment: headline needs rows I/perfect and V/faulty")
	}
	mttrI := make(map[string]time.Duration)
	for c, s := range rowI.Cells {
		mttrI[c] = s.Mean()
	}
	wI, err := metrics.WeightedMTTR(PaperMTTF, mttrI)
	if err != nil {
		return nil, err
	}
	mttrV := make(map[string]time.Duration)
	for c, s := range rowV.Cells {
		mttrV[c] = s.Mean()
	}
	wV, err := metrics.WeightedMTTR(SplitMTTF, mttrV)
	if err != nil {
		return nil, err
	}
	return &HeadlineResult{
		TreeIMTTR: wI,
		TreeVMTTR: wV,
		Factor:    wI.Seconds() / wV.Seconds(),
	}, nil
}

// RenderHeadline renders the factor-of-four claim.
func RenderHeadline(h *HeadlineResult) string {
	return fmt.Sprintf(
		"§8 headline — MTTF-weighted overall MTTR\n"+
			"  tree I  (original): %6.2f s\n"+
			"  tree V  (final):    %6.2f s\n"+
			"  improvement factor: %.1f× (paper: \"a factor of four\")\n",
		h.TreeIMTTR.Seconds(), h.TreeVMTTR.Seconds(), h.Factor)
}
