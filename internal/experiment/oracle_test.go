package experiment

import (
	"context"
	"math"
	"testing"
	"time"
)

// testOracleConfig shrinks the campaign to CI size while keeping the
// alternating state-corruption / sub-crash schedule intact.
func testOracleConfig() OracleConfig {
	cfg := DefaultOracleConfig()
	cfg.Trials = 2
	cfg.Users = 1 << 12
	cfg.PassRate = 200
	cfg.FedRate = 100
	cfg.TrainEpisodes = 4
	cfg.Episodes = 6
	return cfg
}

// TestOraclePolicyCriterion pins the issue's acceptance criterion: on the
// mixed-fault campaign the cost-aware oracle must accumulate strictly less
// measured user harm than every fixed policy.
func TestOraclePolicyCriterion(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cells, err := OracleSweep(context.Background(), testOracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 || cells[0].Policy != "costaware" {
		t.Fatalf("unexpected sweep cells: %+v", cells)
	}
	v2 := cells[0]
	if v2.Issued == 0 || v2.OK == 0 {
		t.Fatalf("degenerate costaware cell: %+v", v2)
	}
	for _, c := range cells[1:] {
		if !(v2.HarmScore < c.HarmScore) {
			t.Errorf("costaware harm %.2f not strictly below %s harm %.2f",
				v2.HarmScore, c.Policy, c.HarmScore)
		}
	}
	t.Logf("\n%s", RenderOracle(testOracleConfig(), cells))
}

// TestOracleCellReproducible: the same cell measured twice is ==.
func TestOracleCellReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testOracleConfig()
	cfg.Trials = 1
	cfg.Episodes = 2
	cfg.TrainEpisodes = 1
	pol := OraclePolicies()[0]
	a, err := RunOracleCell(context.Background(), cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOracleCell(context.Background(), cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("oracle cell not reproducible:\n%+v\n%+v", *a, *b)
	}
}

// TestTreeValidationRankCorrelation checks the analytic model against
// fleet-sim ground truth on a CI-sized random-tree population; the rrbench
// campaign runs the full 1000.
func TestTreeValidationRankCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultTreeValidationConfig()
	cfg.Trees = 60
	res, err := RunTreeValidation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != cfg.Trees {
		t.Fatalf("scored %d trees, want %d", len(res.Scores), cfg.Trees)
	}
	for _, s := range res.Scores {
		if s.Predicted <= 0 || s.Measured <= 0 || math.IsNaN(s.Measured) {
			t.Fatalf("degenerate score %+v", s)
		}
	}
	if res.Spearman < 0.6 {
		t.Fatalf("Spearman rank correlation %.3f below 0.6\n%s",
			res.Spearman, RenderTreeValidation(res))
	}
	t.Logf("\n%s", RenderTreeValidation(res))
}

// TestSpearman sanity-checks the rank-correlation helper.
func TestSpearman(t *testing.T) {
	up := []float64{1, 2, 3, 4, 5}
	down := []float64{10, 8, 6, 4, 2}
	if got := spearman(up, up); math.Abs(got-1) > 1e-12 {
		t.Errorf("spearman(up,up) = %v, want 1", got)
	}
	if got := spearman(up, down); math.Abs(got+1) > 1e-12 {
		t.Errorf("spearman(up,down) = %v, want -1", got)
	}
	// Ties share average ranks; a constant series has no ranking.
	if got := spearman(up, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Errorf("spearman vs constant = %v, want 0", got)
	}
}

// TestOnlineProposal soaks tree II′ under a correlated ses↔str failure
// regime and checks that the miner's empirical mix drives the optimizer to
// consolidate the two — the paper's hand-derived move, rediscovered from
// measured episodes alone.
func TestOnlineProposal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultOnlineConfig()
	cfg.Horizon = 2 * time.Hour
	p, err := RunOnlineProposal(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Episodes < 5 {
		t.Fatalf("soak mined only %d episodes", p.Episodes)
	}
	if len(p.Result.Steps) == 0 {
		t.Fatalf("optimizer proposed no transformation:\n%s", RenderOnlineProposal(cfg, p))
	}
	if !(p.Result.Expected < p.Result.Start) {
		t.Fatalf("proposal does not improve expected MTTR: %.2f → %.2f",
			p.Result.Start, p.Result.Expected)
	}
	tree := p.Result.Tree
	cs, err := tree.CellOf("ses")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tree.CellOf("str")
	if err != nil {
		t.Fatal(err)
	}
	if cs != ct {
		t.Fatalf("proposal did not consolidate ses+str:\n%s", tree.Render())
	}
	t.Logf("\n%s", RenderOnlineProposal(cfg, p))
}
