package experiment

import (
	"context"
	"fmt"
	"strings"

	mercury "github.com/recursive-restart/mercury"
)

// sweepPointStride spaces the base seeds of consecutive sweep points.
const sweepPointStride = 131

// This file extends §4.4 into a sensitivity study: the paper measured one
// oracle error rate (30%); the sweep varies it from 0 to 1 and shows that
// tree IV's pbcom recovery degrades linearly with the error rate while
// tree V stays flat — node promotion buys insurance whose value grows with
// oracle imperfection, and costs nothing when the oracle is perfect.

// SweepPoint is one error-rate measurement.
type SweepPoint struct {
	P      float64
	TreeIV float64 // mean recovery seconds
	TreeV  float64
}

// OracleQualitySweep measures joint-cure pbcom recoveries under trees IV
// and V across oracle error rates.
func OracleQualitySweep(ps []float64, trials int, baseSeed int64) ([]SweepPoint, error) {
	return OracleQualitySweepCfg(context.Background(), ps, RunConfig{Trials: trials, BaseSeed: baseSeed})
}

// OracleQualitySweepCfg runs the sweep with each (point, tree) cell's
// trials fanned across the runner pool. Each point keeps its own base
// seed, so the sweep trajectory is independent of the worker count.
func OracleQualitySweepCfg(ctx context.Context, ps []float64, rc RunConfig) ([]SweepPoint, error) {
	cure := []string{"fedr", "pbcom"}
	var out []SweepPoint
	for i, p := range ps {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("experiment: error rate %v outside [0,1]", p)
		}
		pointCfg := rc
		pointCfg.BaseSeed = rc.BaseSeed + int64(i)*sweepPointStride
		point := SweepPoint{P: p}
		for _, tree := range []string{"IV", "V"} {
			s, err := RunCellCfg(ctx, Cell{
				Tree: tree, Policy: mercury.PolicyFaulty, FaultyP: p,
				Component: "pbcom", Cure: cure,
			}, pointCfg)
			if err != nil {
				return nil, err
			}
			if tree == "IV" {
				point.TreeIV = s.MeanSeconds()
			} else {
				point.TreeV = s.MeanSeconds()
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// RenderSweep formats the sweep with a crude bar chart.
func RenderSweep(points []SweepPoint) string {
	var sb strings.Builder
	sb.WriteString("oracle-quality sweep — pbcom joint-fault recovery (s)\n")
	sb.WriteString("guess-too-low rate    tree IV    tree V\n")
	for _, pt := range points {
		fmt.Fprintf(&sb, "      %4.0f%%          %6.2f %s\n                         %6.2f %s  (V)\n",
			pt.P*100, pt.TreeIV, bar(pt.TreeIV), pt.TreeV, bar(pt.TreeV))
	}
	sb.WriteString("tree V is insensitive to oracle mistakes; tree IV pays ~p × (wasted pbcom restart)\n")
	return sb.String()
}

func bar(seconds float64) string {
	n := int(seconds / 2)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	return strings.Repeat("▇", n)
}

// sweepDefaults are the rates rrbench sweeps.
var sweepDefaults = []float64{0, 0.15, 0.30, 0.50, 0.75, 1.0}

// DefaultSweep runs the standard sweep.
func DefaultSweep(trials int, seed int64) ([]SweepPoint, error) {
	return OracleQualitySweep(sweepDefaults, trials, seed)
}

// DefaultSweepCfg runs the standard sweep under an explicit run
// configuration.
func DefaultSweepCfg(ctx context.Context, rc RunConfig) ([]SweepPoint, error) {
	return OracleQualitySweepCfg(ctx, sweepDefaults, rc)
}
