package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestSoakTreeIVAvailability(t *testing.T) {
	r, err := Soak("IV", 4*time.Hour, 1001)
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	// fedr alone fails ~24 times in 4h; recoveries must keep up.
	if r.Failures < 10 {
		t.Fatalf("only %d organic failures in 4h", r.Failures)
	}
	if r.GiveUps != 0 {
		t.Fatalf("%d give-ups during organic soak", r.GiveUps)
	}
	if r.Availability < 0.975 {
		t.Fatalf("tree IV availability = %.4f, want > 0.975", r.Availability)
	}
	if mean := r.Recovery.MeanSeconds(); mean > 10 {
		t.Fatalf("mean recovery = %.2fs under tree IV", mean)
	}
	out := RenderSoak(r)
	if !strings.Contains(out, "availability") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSoakTreeIWorseThanTreeIV(t *testing.T) {
	rI, err := Soak("I", 3*time.Hour, 1002)
	if err != nil {
		t.Fatalf("Soak I: %v", err)
	}
	rIV, err := Soak("IV", 3*time.Hour, 1002)
	if err != nil {
		t.Fatalf("Soak IV: %v", err)
	}
	if rIV.Availability <= rI.Availability {
		t.Fatalf("availability: IV=%.4f should beat I=%.4f",
			rIV.Availability, rI.Availability)
	}
	// Tree I pays ~25s per failure vs ~6s: mean recovery ratio ~3-4×.
	if rI.Recovery.MeanSeconds() < 2*rIV.Recovery.MeanSeconds() {
		t.Fatalf("mean recovery I=%.2f vs IV=%.2f: expected a large gap",
			rI.Recovery.MeanSeconds(), rIV.Recovery.MeanSeconds())
	}
}

func TestFreeRestartMTTF(t *testing.T) {
	r, err := FreeRestartMTTF(6*time.Hour, 1003)
	if err != nil {
		t.Fatalf("FreeRestartMTTF: %v", err)
	}
	iv, v := r.FedrFailures["IV"], r.FedrFailures["V"]
	if iv == 0 {
		t.Fatal("no fedr failures under tree IV; aging law not firing")
	}
	if v >= iv {
		t.Fatalf("free restarts did not improve fedr MTTF: IV=%d V=%d failures", iv, v)
	}
	// Both trees saw the same pbcom workload.
	if r.PbcomFailures["IV"] == 0 || r.PbcomFailures["V"] == 0 {
		t.Fatalf("pbcom workload missing: %+v", r.PbcomFailures)
	}
	out := RenderFreeRestart(r)
	if !strings.Contains(out, "MTTF^V") {
		t.Fatalf("render:\n%s", out)
	}
}
