package experiment

import (
	"fmt"
	"sort"
	"strings"

	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/station"
)

// Figure1 renders the Mercury software architecture (the paper's
// figure 1): the components, the bus, and the FD/REC sidecar with its
// dedicated link.
func Figure1() string {
	return strings.Join([]string{
		"Figure 1 — Mercury software architecture",
		"",
		"  ses ──┐   str ──┐   rtu ──┐   fedr(com) ──┐",
		"        │         │         │               │",
		"        └────┬────┴────┬────┴───────┬───────┘",
		"             │       mbus (XML message bus over TCP)",
		"             │         │",
		"            FD ────────┘   (liveness pings, 1 s period)",
		"             │",
		"   dedicated TCP link",
		"             │",
		"            REC  (restart tree + oracle; pushes restart buttons)",
		"",
		"  fedrcom: XML ↔ radio-command proxy (later split: fedr + pbcom)",
		"  ses:     satellite estimator (position, frequencies, angles)",
		"  str:     satellite tracker (antenna pointing)",
		"  rtu:     radio tuner",
		"  mbus:    message bus; monitored like any other component",
	}, "\n") + "\n"
}

// Figures renders the restart trees of figures 2–6.
func Figures() (string, error) {
	trees, err := core.MercuryTrees(station.MonolithicComponents(), station.SplitComponents())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 2 — an example restart tree (cells R_A, R_B, R_C, R_BC, R_ABC)\n")
	example, err := core.NewTree("example", &core.Node{
		Children: []*core.Node{
			{Components: []string{"A"}},
			{Children: []*core.Node{
				{Components: []string{"B"}},
				{Components: []string{"C"}},
			}},
		},
	})
	if err != nil {
		return "", err
	}
	sb.WriteString(example.Render())
	sb.WriteString("\n")
	for _, f := range []struct {
		fig  string
		name string
		note string
	}{
		{"Figure 3 (left)", "I", "original: any failure restarts everything"},
		{"Figure 3 (right)", "II", "simple depth augmentation"},
		{"Figure 4 (middle)", "IIp", "fedrcom split flat (tree II')"},
		{"Figure 4 (right)", "III", "subtree depth augmentation"},
		{"Figure 5", "IV", "group consolidation of ses+str"},
		{"Figure 6", "V", "node promotion of pbcom"},
	} {
		fmt.Fprintf(&sb, "%s — %s\n", f.fig, f.note)
		sb.WriteString(trees[f.name].Render())
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Table3 renders the transformation summary (the paper's Table 3).
func Table3() string {
	rows := []struct {
		tree, transform, benefit, assumptions, useful string
	}{
		{"I", "original tree", "any component failure triggers a whole-system restart",
			"A_cure, A_entire", "only if all component MTTRs are roughly equal"},
		{"II", "simple depth augmentation", "components independently restartable",
			"A_independent, A_oracle, A_cure, A_entire", "f_{A,B} > 0 or f_A + f_B > 0"},
		{"III", "subtree depth augmentation", "saves restarting pbcom whenever fedr fails (fedr fails often)",
			"A_independent, A_oracle, A_cure, A_entire", "f_{A,B} > 0 or f_A + f_B > 0"},
		{"IV", "group consolidation", "cuts the delay restarting correlated pairs (ses and str)",
			"A_oracle, A_cure, A_entire", "f_A + f_B << f_{A,B}"},
		{"V", "node promotion", "prevents the oracle's guess-too-low mistakes on pbcom",
			"A_cure, A_entire", "oracle is faulty (it can guess wrong)"},
	}
	var sb strings.Builder
	sb.WriteString("Table 3 — summary of restart tree transformations\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "tree %-4s %-28s\n", r.tree, r.transform)
		fmt.Fprintf(&sb, "          benefit:     %s\n", r.benefit)
		fmt.Fprintf(&sb, "          embodies:    %s\n", r.assumptions)
		fmt.Fprintf(&sb, "          useful when: %s\n", r.useful)
	}
	return sb.String()
}

// TreeNames lists the reproducible tree variants in paper order.
func TreeNames() []string { return []string{"I", "II", "IIp", "III", "IV", "V"} }

// SortedComponents lists the union of all component columns.
func SortedComponents() []string {
	set := map[string]bool{}
	for _, c := range station.MonolithicComponents() {
		set[c] = true
	}
	for _, c := range station.SplitComponents() {
		set[c] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
