package experiment

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/orbit"
	"github.com/recursive-restart/mercury/internal/proc"
	"github.com/recursive-restart/mercury/internal/runner"
	"github.com/recursive-restart/mercury/internal/sim"
	"github.com/recursive-restart/mercury/internal/trace"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file is the fleet-scale campaign: N simulated ground stations, each
// a full mercury.System with its own restart tree and organic failures,
// partitioned across shard kernels and driven in parallel by the sim.Fleet
// epoch scheduler. Stations exchange periodic telemetry beacons with their
// ring neighbor over inter-station links whose latency is derived from the
// constellation geometry (a GEO relay bounce), and that latency is the
// fleet's conservative-lookahead bound: beacons always land at least one
// epoch in the future, so shard kernels never need to roll back. The
// folded result of a campaign is byte-identical for a given configuration
// and seed no matter how many cores execute it.

// geoAltitudeKm is the geostationary orbit altitude the inter-station
// relay bounce transits (up to the relay, back down to the peer).
const geoAltitudeKm = 35786.0

// defaultLinkSeconds is the relay bounce time in seconds (a variable so
// the fractional constant can be converted to a Duration below).
var defaultLinkSeconds = 2 * geoAltitudeKm / orbit.SpeedOfLight

// DefaultLinkLatency is the one-way inter-station message latency via the
// GEO relay: 2 x 35,786 km at the speed of light, ~238.7 ms. It is also
// the default epoch length — the largest epoch the lookahead bound allows.
var DefaultLinkLatency = time.Duration(defaultLinkSeconds * float64(time.Second))

// FleetConfig parameterises a fleet campaign. The zero value of every
// field has a usable default; only Stations is required.
type FleetConfig struct {
	// Stations is the constellation size. Required, >= 1.
	Stations int
	// Group is the number of stations co-located on one shard kernel;
	// default 1 (one kernel per station). Grouping trades scheduler
	// overhead against intra-shard parallelism. Station-to-shard placement
	// affects the event schedule, so Group is part of the reproducibility
	// key (unlike Workers, which never is).
	Group int
	// Trees assigns restart trees round-robin across stations; default
	// {"IV"}.
	Trees []string
	// Policy is each station's restart policy; default escalating.
	Policy mercury.Policy
	// Horizon is the simulated campaign duration after all stations are
	// up; default 60s.
	Horizon time.Duration
	// BaseSeed seeds the campaign; per-shard kernel seeds are sub-derived
	// with runner.SubSeed.
	BaseSeed int64
	// Workers bounds the fleet's shard-execution pool; <= 0 means
	// runtime.GOMAXPROCS(0). Output-neutral.
	Workers int
	// Epoch overrides the synchronization quantum; default LinkLatency
	// (the loosest correct setting). Must be <= LinkLatency.
	Epoch time.Duration
	// LinkLatency is the one-way inter-station beacon latency; default
	// DefaultLinkLatency (GEO relay bounce).
	LinkLatency time.Duration
	// BeaconPeriod is each station's beacon interval; default 5s.
	BeaconPeriod time.Duration
	// FailMTTF is the per-component organic MTTF (lognormal, CV 0.25);
	// default 10m. Zero disables organic failures... no: zero means the
	// default; use NoFailures to disable.
	FailMTTF time.Duration
	// NoFailures disables organic fault injection (pure messaging load).
	NoFailures bool
	// Chaos, when non-nil, degrades every station's local fabric.
	Chaos *bus.ChaosProfile
}

// withDefaults returns cfg with defaults applied, or an error.
func (cfg FleetConfig) withDefaults() (FleetConfig, error) {
	if cfg.Stations < 1 {
		return cfg, fmt.Errorf("experiment: fleet needs >= 1 station, got %d", cfg.Stations)
	}
	if cfg.Group < 1 {
		cfg.Group = 1
	}
	if len(cfg.Trees) == 0 {
		cfg.Trees = []string{"IV"}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = time.Minute
	}
	if cfg.LinkLatency <= 0 {
		cfg.LinkLatency = DefaultLinkLatency
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = cfg.LinkLatency
	}
	if cfg.Epoch > cfg.LinkLatency {
		return cfg, fmt.Errorf("experiment: epoch %v exceeds link latency %v (lookahead bound)",
			cfg.Epoch, cfg.LinkLatency)
	}
	if cfg.BeaconPeriod <= 0 {
		cfg.BeaconPeriod = 5 * time.Second
	}
	if cfg.FailMTTF <= 0 {
		cfg.FailMTTF = 10 * time.Minute
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if err := cfg.Chaos.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// shardCount returns the number of shards the constellation partitions
// into.
func (cfg FleetConfig) shardCount() int {
	return (cfg.Stations + cfg.Group - 1) / cfg.Group
}

// xlinkName is the per-station component receiving inter-station beacons.
const xlinkName = "xlink"

// stationAddr renders station i's fleet-global address for a local
// component: "s<i>:<local>". Local addresses never contain ':', so the
// form is unambiguous.
func stationAddr(station int, local string) string {
	return "s" + strconv.Itoa(station) + ":" + local
}

// parseStationAddr inverts stationAddr; ok is false for local addresses.
func parseStationAddr(addr string) (station int, local string, ok bool) {
	if len(addr) < 4 || addr[0] != 's' {
		return 0, "", false
	}
	colon := strings.IndexByte(addr, ':')
	if colon <= 1 {
		return 0, "", false
	}
	n, err := strconv.Atoi(addr[1:colon])
	if err != nil || n < 0 {
		return 0, "", false
	}
	return n, addr[colon+1:], true
}

// fleetStation is one station's campaign state: the wired system plus the
// deterministic counters folded into the campaign result.
type fleetStation struct {
	idx   int
	sys   *mercury.System
	xlink *bus.CrossLink

	beaconSeq   uint64
	beaconsSent uint64
	beaconsRecv uint64

	down       bool
	downAt     time.Time
	downtimeNs int64
	recoveries uint64
	giveUps    uint64
}

// xlinkHandler is the beacon terminal: instantly ready, counts inbound
// telemetry. It lives outside the restart tree — the inter-station link
// is infrastructure, not a monitored station component.
type xlinkHandler struct {
	st *fleetStation
}

func (h *xlinkHandler) Start(ctx proc.Context) { ctx.After(0, ctx.Ready) }
func (h *xlinkHandler) Receive(_ proc.Context, m *xmlcmd.Message) {
	if m.Kind() == xmlcmd.KindTelemetry {
		h.st.beaconsRecv++
	}
}

// inbound is a cross-shard parcel payload: a beacon bound for one station.
type inbound struct {
	station int
	msg     *xmlcmd.Message
}

// fleetShard is one shard: a kernel hosting a contiguous slice of
// stations, adapting their cross-links to the sim.FleetShard exchange
// hooks.
type fleetShard struct {
	*sim.Kernel
	idx      int
	first    int // global index of stations[0]
	group    int // cfg.Group, for destination shard mapping
	latency  time.Duration
	stations []*fleetStation
	seq      uint64
	hand     []bus.Handoff // drain scratch
}

// CollectOutbound drains every station's cross-link in station order and
// converts hand-offs to parcels due one link latency after their send.
func (s *fleetShard) CollectOutbound(dst []sim.Parcel) []sim.Parcel {
	for _, st := range s.stations {
		if st.xlink.Pending() == 0 {
			continue
		}
		s.hand = st.xlink.Drain(s.hand[:0])
		for _, h := range s.hand {
			s.seq++
			dst = append(dst, sim.Parcel{
				To:      h.Station / s.group,
				At:      h.SentAt.Add(s.latency),
				Seq:     s.seq,
				Payload: inbound{station: h.Station, msg: h.Msg},
			})
		}
	}
	return dst
}

// Inject schedules an inbound beacon for local delivery at its due time.
func (s *fleetShard) Inject(p sim.Parcel) {
	in := p.Payload.(inbound)
	st := s.stations[in.station-s.first]
	s.AfterFunc(p.At.Sub(s.Now()), func() {
		st.sys.Bus.DeliverLocal(in.msg)
	})
}

// buildShard constructs and boots shard idx: its kernel (seed sub-derived
// from the campaign seed), its stations, their cross-links and beacon
// terminals, the organic-failure laws, and the optional chaos profile.
func buildShard(cfg FleetConfig, idx int) (*fleetShard, error) {
	k := sim.New(runner.SubSeed(cfg.BaseSeed, uint64(idx)))
	first := idx * cfg.Group
	count := cfg.Group
	if first+count > cfg.Stations {
		count = cfg.Stations - first
	}
	sh := &fleetShard{
		Kernel:  k,
		idx:     idx,
		first:   first,
		group:   cfg.Group,
		latency: cfg.LinkLatency,
	}
	systems := make([]*mercury.System, 0, count)
	for j := 0; j < count; j++ {
		g := first + j
		sys, err := mercury.NewSystem(mercury.Config{
			Kernel:   k,
			TreeName: cfg.Trees[g%len(cfg.Trees)],
			Policy:   cfg.Policy,
			FaultyP:  FaultyP,
		})
		if err != nil {
			return nil, fmt.Errorf("station %d: %w", g, err)
		}
		st := &fleetStation{idx: g, sys: sys}
		st.xlink = bus.NewCrossLink(clock.Sim{K: k}, func(addr string) (int, string, bool) {
			n, local, ok := parseStationAddr(addr)
			if !ok || n == g {
				return 0, "", false
			}
			return n, local, true
		})
		sys.Bus.SetCrossLink(st.xlink)
		if err := sys.Mgr.Register(xlinkName, func() proc.Handler { return &xlinkHandler{st: st} }); err != nil {
			return nil, fmt.Errorf("station %d: %w", g, err)
		}
		sys.Log.Subscribe(func(e trace.Event) {
			switch e.Kind {
			case trace.ComponentDown, trace.ComponentKilled:
				if !st.down {
					st.down = true
					st.downAt = e.At
				}
			case trace.SystemRecovered:
				if st.down {
					st.down = false
					st.downtimeNs += e.At.Sub(st.downAt).Nanoseconds()
					st.recoveries++
				}
			case trace.GiveUp:
				st.giveUps++
			}
		})
		sh.stations = append(sh.stations, st)
		systems = append(systems, sys)
	}
	if err := mercury.BootAll(k, systems); err != nil {
		return nil, fmt.Errorf("shard %d boot: %w", idx, err)
	}
	for _, st := range sh.stations {
		if err := st.sys.Mgr.Start(xlinkName); err != nil {
			return nil, err
		}
	}
	if !cfg.NoFailures {
		// Sorted component order, station by station: priming draws from
		// the shard RNG, so iteration order is part of the schedule.
		for _, st := range sh.stations {
			comps := st.sys.Components()
			sort.Strings(comps)
			for _, comp := range comps {
				st.sys.Injector.SetLaw(comp, fault.LogNormal{M: cfg.FailMTTF, CV: 0.25})
			}
			st.sys.Injector.Enable()
			for _, comp := range comps {
				st.sys.Injector.Prime(comp)
			}
		}
	}
	if cfg.Chaos != nil {
		for _, st := range sh.stations {
			if err := st.sys.SetChaos(cfg.Chaos); err != nil {
				return nil, err
			}
		}
	}
	return sh, nil
}

// scheduleBeacons arms every station's beacon ticker, aligned to the
// fleet-wide start instant so no cross-shard traffic predates the first
// epoch. Stations beacon their ring successor; the offset staggers
// senders across the period deterministically by station index.
func scheduleBeacons(cfg FleetConfig, shards []*fleetShard, start, end time.Time) {
	for _, sh := range shards {
		k := sh.Kernel
		for _, st := range sh.stations {
			st := st
			peer := (st.idx + 1) % cfg.Stations
			if peer == st.idx {
				continue // single-station fleet: no one to beacon
			}
			from := stationAddr(st.idx, xlinkName)
			to := stationAddr(peer, xlinkName)
			var tick func()
			tick = func() {
				if !k.Now().Before(end) {
					return
				}
				st.beaconSeq++
				st.beaconsSent++
				st.sys.Bus.Send(xmlcmd.NewTelemetry(from, to, st.beaconSeq,
					"fleet_beacon", float64(st.idx), k.Now()))
				k.AfterFunc(cfg.BeaconPeriod, tick)
			}
			offset := time.Duration(st.idx%97+1) * cfg.BeaconPeriod / 100
			k.AfterFunc(start.Sub(k.Now())+offset, tick)
		}
	}
}

// FleetResult is one campaign's outcome. Every field except Workers and
// Wall is a deterministic function of (FleetConfig minus Workers) — Fold
// renders exactly that deterministic subset.
type FleetResult struct {
	Stations int
	Shards   int
	Group    int
	Workers  int
	BaseSeed int64

	Horizon     time.Duration
	Epoch       time.Duration
	LinkLatency time.Duration

	Epochs  uint64
	Parcels uint64
	Events  uint64

	Failures    int
	Recoveries  uint64
	GiveUps     uint64
	BeaconsSent uint64
	BeaconsRecv uint64
	Downtime    time.Duration
	// Availability is the station-mean A_entire over the horizon.
	Availability float64
	// Digest fingerprints the full per-station outcome vector (FNV-1a
	// over each station's counters in station order), so two runs that
	// agree on aggregates but differ anywhere per-station still fold
	// differently.
	Digest uint64

	// Wall is the real elapsed execution time (excluded from Fold).
	Wall time.Duration
}

// Fold renders the deterministic byte string the reproducibility gates
// compare: equal configurations and seeds must fold identically on any
// core count.
func (r *FleetResult) Fold() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet stations=%d shards=%d group=%d seed=%d horizon=%s epoch=%s latency=%s\n",
		r.Stations, r.Shards, r.Group, r.BaseSeed, r.Horizon, r.Epoch, r.LinkLatency)
	fmt.Fprintf(&sb, "epochs=%d parcels=%d events=%d\n", r.Epochs, r.Parcels, r.Events)
	fmt.Fprintf(&sb, "failures=%d recoveries=%d giveups=%d beacons_sent=%d beacons_recv=%d\n",
		r.Failures, r.Recoveries, r.GiveUps, r.BeaconsSent, r.BeaconsRecv)
	fmt.Fprintf(&sb, "downtime=%s availability=%.6f\n", r.Downtime, r.Availability)
	fmt.Fprintf(&sb, "digest=%016x\n", r.Digest)
	return sb.String()
}

// RunFleet executes one fleet campaign.
func RunFleet(ctx context.Context, cfg FleetConfig) (*FleetResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	wallStart := time.Now()

	// Build and boot shards in parallel — each is self-contained, so this
	// is output-neutral wall-clock speedup, same as trial fan-out.
	nShards := cfg.shardCount()
	shards, err := runner.Run(ctx, runner.Config{Workers: cfg.Workers, BaseSeed: cfg.BaseSeed},
		nShards, func(_ context.Context, i int, _ int64) (*fleetShard, error) {
			return buildShard(cfg, i)
		})
	if err != nil {
		return nil, err
	}
	fleetShards := make([]sim.FleetShard, nShards)
	for i, sh := range shards {
		fleetShards[i] = sh
	}
	fl := sim.NewFleet(sim.FleetConfig{Epoch: cfg.Epoch, Workers: cfg.Workers}, fleetShards)

	// Align the campaign to the most advanced shard clock: beacons (the
	// only cross-shard traffic) start strictly after every shard has
	// passed the first epoch edge's base.
	start := fl.Now()
	end := start.Add(cfg.Horizon)
	scheduleBeacons(cfg, shards, start, end)

	if err := fl.RunUntil(end); err != nil {
		return nil, err
	}

	res := &FleetResult{
		Stations:    cfg.Stations,
		Shards:      nShards,
		Group:       cfg.Group,
		Workers:     cfg.Workers,
		BaseSeed:    cfg.BaseSeed,
		Horizon:     cfg.Horizon,
		Epoch:       cfg.Epoch,
		LinkLatency: cfg.LinkLatency,
		Epochs:      fl.Epochs(),
		Parcels:     fl.Parcels(),
		Events:      fl.Executed(),
	}
	digest := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		digest.Write(buf[:])
	}
	var availSum float64
	for _, sh := range shards {
		for _, st := range sh.stations {
			st.sys.Injector.Disable()
			if st.down {
				st.down = false
				st.downtimeNs += end.Sub(st.downAt).Nanoseconds()
			}
			failures := st.sys.Board.Injected()
			res.Failures += failures
			res.Recoveries += st.recoveries
			res.GiveUps += st.giveUps
			res.BeaconsSent += st.beaconsSent
			res.BeaconsRecv += st.beaconsRecv
			res.Downtime += time.Duration(st.downtimeNs)
			availSum += 1 - float64(st.downtimeNs)/float64(cfg.Horizon.Nanoseconds())
			put(uint64(st.idx))
			put(uint64(failures))
			put(st.recoveries)
			put(st.giveUps)
			put(uint64(st.downtimeNs))
			put(st.beaconsSent)
			put(st.beaconsRecv)
		}
	}
	res.Availability = availSum / float64(cfg.Stations)
	res.Digest = digest.Sum64()
	res.Wall = time.Since(wallStart)
	return res, nil
}

// RunFleetTrials runs independent fleet campaigns (seed varies per trial)
// on the runner pool. To avoid nested oversubscription — each campaign
// already fans its shards across cfg.Workers — the trial pool width is
// GOMAXPROCS divided by the per-campaign worker count, floored at 1.
func RunFleetTrials(ctx context.Context, cfg FleetConfig, trials int) ([]*FleetResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	trialWorkers := runtime.GOMAXPROCS(0) / cfg.Workers
	if trialWorkers < 1 {
		trialWorkers = 1
	}
	return runner.Run(ctx, runner.Config{Workers: trialWorkers, BaseSeed: cfg.BaseSeed},
		trials, func(ctx context.Context, i int, seed int64) (*FleetResult, error) {
			tcfg := cfg
			tcfg.BaseSeed = seed
			return RunFleet(ctx, tcfg)
		})
}

// RenderFleet formats a campaign result for the console.
func RenderFleet(r *FleetResult) string {
	eps := float64(r.Events) / r.Wall.Seconds()
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet campaign — %d stations on %d shards (group %d), %v horizon, seed %d\n",
		r.Stations, r.Shards, r.Group, r.Horizon, r.BaseSeed)
	fmt.Fprintf(&sb, "  epochs %d (quantum %v, link latency %v), cross-shard parcels %d\n",
		r.Epochs, r.Epoch, r.LinkLatency, r.Parcels)
	fmt.Fprintf(&sb, "  events %d in %v wall (%.0f events/sec, %d workers)\n",
		r.Events, r.Wall.Round(time.Millisecond), eps, r.Workers)
	fmt.Fprintf(&sb, "  failures %d, recoveries %d, give-ups %d\n", r.Failures, r.Recoveries, r.GiveUps)
	fmt.Fprintf(&sb, "  beacons sent %d / received %d\n", r.BeaconsSent, r.BeaconsRecv)
	fmt.Fprintf(&sb, "  downtime %v, availability %.4f, digest %016x\n",
		r.Downtime.Round(time.Millisecond), r.Availability, r.Digest)
	return sb.String()
}
