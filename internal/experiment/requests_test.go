package experiment

import (
	"context"
	"testing"
	"time"
)

// testRequestConfig is a small-but-meaningful campaign: enough load and
// episodes that recovery granularity separates, small enough for CI.
func testRequestConfig() RequestConfig {
	cfg := DefaultRequestConfig()
	cfg.Trials = 3
	cfg.Rate = 1000
	cfg.Users = 1 << 16
	cfg.Episodes = 2
	cfg.Gap = 15 * time.Second
	cfg.Warmup = 2 * time.Second
	return cfg
}

// TestRequestHarmScoring pins the campaign's headline: scored in failed
// user requests, microreboot beats whole-process restart by at least 2× —
// the per-episode outage window shrinks from a full process restart (plus
// the resync co-crash of the peer) to one subcomponent's reboot, and an
// open-loop arrival stream converts that window directly into harm.
func TestRequestHarmScoring(t *testing.T) {
	cfg := testRequestConfig()
	cells, err := RequestSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]*RequestCellResult{}
	for _, c := range cells {
		byMode[c.Mode] = c
		if c.Issued == 0 || c.OK == 0 {
			t.Fatalf("mode %s saw no traffic: %+v", c.Mode, c)
		}
		if c.GoodputPerSec <= 0 {
			t.Fatalf("mode %s has no goodput", c.Mode)
		}
		if c.Failed == 0 {
			t.Fatalf("mode %s: fault episodes harmed no requests — campaign is not measuring outages", c.Mode)
		}
	}
	micro, process := byMode["microreboot"], byMode["process"]
	if micro == nil || process == nil {
		t.Fatalf("missing modes in sweep: %v", byMode)
	}
	if 2*micro.FailedPerEpisode > process.FailedPerEpisode {
		t.Fatalf("microreboot does not beat process restart 2x on failed requests: micro=%.1f process=%.1f",
			micro.FailedPerEpisode, process.FailedPerEpisode)
	}
	if micro.DowntimePerEpisode >= process.DowntimePerEpisode {
		t.Fatalf("microreboot user-downtime %.1fs not below process %.1fs",
			micro.DowntimePerEpisode, process.DowntimePerEpisode)
	}
}

// TestRequestParallelIdentity: the campaign is bit-identical between
// sequential and parallel runs (stats, quantiles and every histogram
// bucket), the determinism contract every other experiment in this repo
// holds.
func TestRequestParallelIdentity(t *testing.T) {
	cfg := testRequestConfig()
	cfg.Trials = 4
	cfg.Episodes = 1
	cfg.Gap = 10 * time.Second
	if err := VerifyRequests(context.Background(), cfg, 4); err != nil {
		t.Fatal(err)
	}
}
