package experiment

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/xmlcmd"
)

// This file treats the message bus itself as a restartable cell class:
// the sharded TCP fabric (bus.ShardedBroker) is killed and restarted one
// shard at a time, against live clients, and the campaign measures the
// two properties the paper's recursive-restart argument predicts for a
// partitioned bus:
//
//   - isolation: killing shard k degrades only the addresses hashing to
//     k — traffic on every surviving shard keeps flowing, mid-outage,
//     with nothing delivered to the dead shard's addresses;
//   - recovery by parts: restarting one shard (clients reconnect on
//     their own backoff, no coordination) is compared with restarting
//     the whole fabric, the bus analogue of a subtree restart vs
//     restarting the entire station.
//
// Unlike the simulated campaigns this one runs on the real wire: real
// listeners, real reconnect backoff, wall-clock recovery times. The
// structural counts (delivered/sent, dead-shard deliveries) are exact;
// the durations carry scheduler noise and are reported as measurements,
// not goldens.

// ShardChaosConfig parameterises the broker-shard kill/recover campaign.
type ShardChaosConfig struct {
	// Shards is the fabric width; every shard is killed once, in order.
	Shards int
	// DestsPerShard is how many receiver addresses are pinned to each
	// shard (found by hashing candidate names).
	DestsPerShard int
	// FramesPerPhase is how many frames each destination is sent during
	// every outage phase.
	FramesPerPhase int
	// ProbeInterval paces the reachability probes that time recovery.
	ProbeInterval time.Duration
	// PhaseTimeout bounds every wait (delivery settle, recovery probe).
	PhaseTimeout time.Duration
}

// DefaultShardChaosConfig is the EXPERIMENTS.md campaign shape.
func DefaultShardChaosConfig() ShardChaosConfig {
	return ShardChaosConfig{
		Shards:         2,
		DestsPerShard:  2,
		FramesPerPhase: 5,
		ProbeInterval:  5 * time.Millisecond,
		PhaseTimeout:   30 * time.Second,
	}
}

func (c ShardChaosConfig) withDefaults() ShardChaosConfig {
	d := DefaultShardChaosConfig()
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	if c.DestsPerShard <= 0 {
		c.DestsPerShard = d.DestsPerShard
	}
	if c.FramesPerPhase <= 0 {
		c.FramesPerPhase = d.FramesPerPhase
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = d.ProbeInterval
	}
	if c.PhaseTimeout <= 0 {
		c.PhaseTimeout = d.PhaseTimeout
	}
	return c
}

// ShardChaosRound is one kill→observe→restart cycle.
type ShardChaosRound struct {
	// Killed is the shard taken down this round.
	Killed int
	// SurvivingSent/SurvivingDelivered count frames sent to destinations
	// on live shards during the outage and how many arrived. Isolation
	// holds iff they are equal.
	SurvivingSent      int
	SurvivingDelivered int
	// DeadDelivered counts frames that reached the killed shard's
	// destinations while it was down. Must be zero: a dead shard's
	// address slice is dark, not rerouted.
	DeadDelivered int
	// Recovery is restart → every killed-shard destination reachable
	// again (clients reconnected, re-registered, delivering).
	Recovery time.Duration
}

// ShardChaosResult aggregates the campaign.
type ShardChaosResult struct {
	Config ShardChaosConfig
	Rounds []ShardChaosRound
	// ShardRecoveryMean averages the per-shard recovery times.
	ShardRecoveryMean time.Duration
	// WholeBusRecovery is the final phase: every shard killed, then the
	// whole fabric restarted — the monolithic-restart baseline.
	WholeBusRecovery time.Duration
}

// Isolated reports whether every round kept its blast radius: all
// surviving-shard traffic delivered, nothing delivered on the dead shard.
func (r *ShardChaosResult) Isolated() bool {
	for _, rd := range r.Rounds {
		if rd.SurvivingDelivered != rd.SurvivingSent || rd.DeadDelivered != 0 {
			return false
		}
	}
	return true
}

// shardDest is one receiver address pinned to a shard, with its delivery
// count.
type shardDest struct {
	name  string
	shard int

	mu    sync.Mutex
	recvd int
}

func (d *shardDest) on(*xmlcmd.Message) {
	d.mu.Lock()
	d.recvd++
	d.mu.Unlock()
}

func (d *shardDest) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recvd
}

// shardDestName finds the i-th candidate name hashing to shard want.
func shardDestName(want, n, i int) (string, error) {
	seen := 0
	for c := 0; c < 100000; c++ {
		name := fmt.Sprintf("cell-%d-%d", want, c)
		if bus.ShardFor(name, n) == want {
			if seen == i {
				return name, nil
			}
			seen++
		}
	}
	return "", fmt.Errorf("experiment: no name hashes to shard %d/%d", want, n)
}

// RunShardChaos runs the campaign: boot an n-shard fabric with
// DestsPerShard receivers pinned to every shard, then kill and recover
// each shard in turn, and finally the whole fabric at once.
func RunShardChaos(cfg ShardChaosConfig) (*ShardChaosResult, error) {
	cfg = cfg.withDefaults()
	sb, err := bus.ListenSharded("127.0.0.1:0", cfg.Shards, bus.BrokerConfig{
		Batch: bus.BatchConfig{Policy: bus.DropNewest},
	})
	if err != nil {
		return nil, err
	}
	defer sb.Close()

	// Receivers: each dials only its own shard — its address never routes
	// anywhere else, so one connection is the whole footprint.
	var dests []*shardDest
	var clients []*bus.TCPClient
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for s := 0; s < cfg.Shards; s++ {
		for i := 0; i < cfg.DestsPerShard; i++ {
			name, err := shardDestName(s, cfg.Shards, i)
			if err != nil {
				return nil, err
			}
			d := &shardDest{name: name, shard: s}
			c, err := bus.DialBus(sb.Addrs()[s], name, d.on)
			if err != nil {
				return nil, err
			}
			dests = append(dests, d)
			clients = append(clients, c)
		}
	}
	sender, err := bus.DialSharded(sb.Addrs(), "shardchaos", bus.ClientConfig{}, nil)
	if err != nil {
		return nil, err
	}
	defer sender.Close()

	// Settle: every destination must be provably reachable before any
	// fault is injected.
	var seq uint64
	probeAll := func(filter func(*shardDest) bool) error {
		marks := make(map[*shardDest]int)
		for _, d := range dests {
			if filter(d) {
				marks[d] = d.count()
			}
		}
		deadline := time.Now().Add(cfg.PhaseTimeout)
		for len(marks) > 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("experiment: %d destinations unreachable after %v", len(marks), cfg.PhaseTimeout)
			}
			for d, mark := range marks {
				seq++
				sender.Send(xmlcmd.NewPing("shardchaos", d.name, seq, seq))
				if d.count() > mark {
					delete(marks, d)
				}
			}
			time.Sleep(cfg.ProbeInterval)
		}
		return nil
	}
	all := func(*shardDest) bool { return true }
	if err := probeAll(all); err != nil {
		return nil, err
	}

	res := &ShardChaosResult{Config: cfg}

	// Per-shard rounds: kill shard k, measure isolation, restart, time
	// recovery of its address slice.
	for k := 0; k < cfg.Shards; k++ {
		// Drain stragglers from the previous probe phase so in-flight
		// frames cannot be misattributed to this round's outage window.
		time.Sleep(4 * cfg.ProbeInterval)
		if err := sb.KillShard(k); err != nil {
			return nil, err
		}
		// The sender must observe the outage before the phase traffic, so
		// dead-shard frames park instead of dying with the connection.
		if err := waitDisconnected(sender.Client(k), cfg.PhaseTimeout); err != nil {
			return nil, err
		}

		round := ShardChaosRound{Killed: k}
		before := make([]int, len(dests))
		for i, d := range dests {
			before[i] = d.count()
		}
		for f := 0; f < cfg.FramesPerPhase; f++ {
			for _, d := range dests {
				seq++
				sender.Send(xmlcmd.NewPing("shardchaos", d.name, seq, seq))
				if d.shard != k {
					round.SurvivingSent++
				}
			}
		}
		// Let surviving traffic settle, then read the isolation counts.
		deadline := time.Now().Add(cfg.PhaseTimeout)
		for {
			delivered := 0
			for i, d := range dests {
				if d.shard != k {
					delivered += d.count() - before[i]
				}
			}
			if delivered >= round.SurvivingSent || time.Now().After(deadline) {
				round.SurvivingDelivered = delivered
				break
			}
			time.Sleep(cfg.ProbeInterval)
		}
		for i, d := range dests {
			if d.shard == k {
				round.DeadDelivered += d.count() - before[i]
			}
		}

		restartAt := time.Now()
		if err := sb.RestartShard(k); err != nil {
			return nil, err
		}
		if err := probeAll(func(d *shardDest) bool { return d.shard == k }); err != nil {
			return nil, err
		}
		round.Recovery = time.Since(restartAt)
		res.Rounds = append(res.Rounds, round)
	}
	var sum time.Duration
	for _, rd := range res.Rounds {
		sum += rd.Recovery
	}
	res.ShardRecoveryMean = sum / time.Duration(len(res.Rounds))

	// Whole-bus baseline: every shard down, whole fabric restarted.
	for k := 0; k < cfg.Shards; k++ {
		if err := sb.KillShard(k); err != nil {
			return nil, err
		}
	}
	for k := 0; k < cfg.Shards; k++ {
		if err := waitDisconnected(sender.Client(k), cfg.PhaseTimeout); err != nil {
			return nil, err
		}
	}
	restartAt := time.Now()
	for k := 0; k < cfg.Shards; k++ {
		if err := sb.RestartShard(k); err != nil {
			return nil, err
		}
	}
	if err := probeAll(all); err != nil {
		return nil, err
	}
	res.WholeBusRecovery = time.Since(restartAt)
	return res, nil
}

// waitDisconnected polls until the client has torn down its dead
// connection (sends park instead of racing the half-closed socket).
func waitDisconnected(c *bus.TCPClient, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for !c.Disconnected() {
		if time.Now().After(deadline) {
			return fmt.Errorf("experiment: client never observed the shard outage")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// RenderShardChaos formats the campaign for EXPERIMENTS.md.
func RenderShardChaos(r *ShardChaosResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Broker-shard chaos — %d shards, %d dests/shard, %d frames/dest per outage\n",
		r.Config.Shards, r.Config.DestsPerShard, r.Config.FramesPerPhase)
	fmt.Fprintf(&sb, "%-6s %18s %14s %12s\n", "killed", "surviving-frames", "dead-delivered", "recovery")
	for _, rd := range r.Rounds {
		fmt.Fprintf(&sb, "%-6d %11d/%-6d %14d %12s\n",
			rd.Killed, rd.SurvivingDelivered, rd.SurvivingSent, rd.DeadDelivered,
			rd.Recovery.Round(time.Millisecond))
	}
	fmt.Fprintf(&sb, "per-shard recovery mean %v; whole-bus restart %v\n",
		r.ShardRecoveryMean.Round(time.Millisecond), r.WholeBusRecovery.Round(time.Millisecond))
	if r.Isolated() {
		sb.WriteString("isolation held: every surviving-shard frame delivered, dead shards dark\n")
	} else {
		sb.WriteString("ISOLATION VIOLATED\n")
	}
	return sb.String()
}
