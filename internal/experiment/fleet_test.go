package experiment

import (
	"context"
	"testing"
	"time"
)

// smallFleet is a constellation small enough for the unit-test budget but
// wide enough to exercise cross-shard beacons, organic failures and
// recovery on several shards.
func smallFleet(workers int) FleetConfig {
	return FleetConfig{
		Stations:     8,
		Group:        2,
		Trees:        []string{"IV", "II"},
		Horizon:      90 * time.Second,
		BaseSeed:     2002,
		Workers:      workers,
		BeaconPeriod: 2 * time.Second,
		FailMTTF:     30 * time.Second,
	}
}

// TestFleetFoldByteIdenticalAcrossWorkers is the campaign-level tentpole
// gate: the same constellation and seed must fold byte-identically on a
// sequential run and on any multi-worker run.
func TestFleetFoldByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ref, err := RunFleet(context.Background(), smallFleet(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Parcels == 0 || ref.BeaconsRecv == 0 {
		t.Fatalf("no cross-shard traffic (parcels=%d, recv=%d); gate is vacuous", ref.Parcels, ref.BeaconsRecv)
	}
	if ref.Failures == 0 {
		t.Fatal("no organic failures; gate is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := RunFleet(context.Background(), smallFleet(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got.Fold() != ref.Fold() {
			t.Fatalf("workers=%d fold diverged:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, ref.Fold(), workers, got.Fold())
		}
	}
}

// TestFleetFoldSeedSensitive: different seeds must fold differently.
func TestFleetFoldSeedSensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfgA := smallFleet(2)
	cfgB := smallFleet(2)
	cfgB.BaseSeed = 2003
	a, err := RunFleet(context.Background(), cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(context.Background(), cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fold() == b.Fold() {
		t.Fatal("different seeds folded identically")
	}
}

// TestFleetBeaconsFlow: with failures off, every sent beacon that has had
// time to arrive is received (perfect links, no loss).
func TestFleetBeaconsFlow(t *testing.T) {
	cfg := FleetConfig{
		Stations:     4,
		Horizon:      20 * time.Second,
		BaseSeed:     7,
		Workers:      2,
		BeaconPeriod: 2 * time.Second,
		NoFailures:   true,
	}
	r, err := RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.BeaconsSent == 0 {
		t.Fatal("no beacons sent")
	}
	// Beacons sent in the last link-latency of the horizon are still in
	// flight at the end; everything else must have been delivered.
	if r.BeaconsRecv < r.BeaconsSent-uint64(r.Stations) || r.BeaconsRecv > r.BeaconsSent {
		t.Fatalf("beacons sent %d / received %d", r.BeaconsSent, r.BeaconsRecv)
	}
	if r.Failures != 0 || r.Downtime != 0 {
		t.Fatalf("NoFailures run had failures=%d downtime=%v", r.Failures, r.Downtime)
	}
	if r.Availability != 1 {
		t.Fatalf("availability = %v, want 1", r.Availability)
	}
}

// TestFleetSingleStation: the degenerate constellation runs (no peers, no
// cross traffic) rather than wedging on a self-link.
func TestFleetSingleStation(t *testing.T) {
	r, err := RunFleet(context.Background(), FleetConfig{
		Stations:   1,
		Horizon:    10 * time.Second,
		BaseSeed:   5,
		NoFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.BeaconsSent != 0 || r.Parcels != 0 {
		t.Fatalf("single station produced cross traffic: %+v", r)
	}
}

// TestFleetConfigValidation pins the config error paths.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := RunFleet(context.Background(), FleetConfig{}); err == nil {
		t.Fatal("zero stations accepted")
	}
	if _, err := RunFleet(context.Background(), FleetConfig{
		Stations: 2, Epoch: time.Second, LinkLatency: 100 * time.Millisecond,
	}); err == nil {
		t.Fatal("epoch > link latency accepted")
	}
}

// TestFleetGroupChangesPlacement: Group is part of the reproducibility
// key; changing it changes the schedule (and the fold says so), while the
// same Group reproduces exactly.
func TestFleetGroupChangesPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := smallFleet(2)
	a, err := RunFleet(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fold() != b.Fold() {
		t.Fatal("identical configs folded differently")
	}
	regrouped := base
	regrouped.Group = 4
	c, err := RunFleet(context.Background(), regrouped)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fold() == a.Fold() {
		t.Fatal("different Group folded identically (placement should be part of the key)")
	}
}

// TestParseStationAddr pins the address scheme.
func TestParseStationAddr(t *testing.T) {
	if got := stationAddr(12, "xlink"); got != "s12:xlink" {
		t.Fatalf("stationAddr = %q", got)
	}
	n, local, ok := parseStationAddr("s12:xlink")
	if !ok || n != 12 || local != "xlink" {
		t.Fatalf("parse = %d %q %v", n, local, ok)
	}
	for _, bad := range []string{"rtu", "mbus", "fd", "s:x", "sx:y", "s-1:x", "ops"} {
		if _, _, ok := parseStationAddr(bad); ok {
			t.Fatalf("parse accepted %q", bad)
		}
	}
}

// TestRunFleetTrials: trial fan-out derives distinct seeds and keeps every
// result reproducible.
func TestRunFleetTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := FleetConfig{
		Stations:     4,
		Horizon:      10 * time.Second,
		BaseSeed:     2002,
		Workers:      2,
		BeaconPeriod: 2 * time.Second,
		NoFailures:   true,
	}
	rs, err := RunFleetTrials(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].Fold() == rs[1].Fold() {
		t.Fatal("distinct trials folded identically")
	}
}
