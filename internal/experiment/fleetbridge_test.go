package experiment

// The satellite-task gate for the sharded fleet engine: the same campaign
// grids, driven through a 1-shard Fleet instead of the direct Step loop,
// must reproduce the existing golden traces byte-for-byte. These tests
// deliberately compare against the same files TestTable2Golden and
// TestTable4Golden pin (and never rewrite them, even under -update): the
// single-kernel path owns the goldens; the bridge must match it.

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func goldenEqual(t *testing.T, name, got string) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read golden (generate with the single-kernel golden test and -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("fleet bridge diverged from %s:\n--- golden\n%s\n--- got\n%s", name, want, got)
	}
}

func TestFleetBridgeTable2Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table2ViaFleet(context.Background(), RunConfig{Trials: 3, BaseSeed: 2002})
	if err != nil {
		t.Fatal(err)
	}
	goldenEqual(t, "table2.golden",
		RenderRows(rows, "Table 2 — tree II recovery: detection + recovery time (s)"))
}

func TestFleetBridgeTable4Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table4ViaFleet(context.Background(), RunConfig{Trials: 3, BaseSeed: 2002})
	if err != nil {
		t.Fatal(err)
	}
	goldenEqual(t, "table4.golden",
		RenderRows(rows, "Table 4 — overall MTTRs (s); rows are tree/oracle, columns failed components"))
}
