package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/sim"
)

// This file is the golden byte-identity bridge between the historical
// single-kernel trial path and the sharded fleet engine: one station
// wrapped as a 1-shard fleet, driven by epoch-sliced RunUntil instead of a
// Step loop, must reproduce the Table 2/4 golden traces byte-for-byte.
// That holds because the epoch scheduler executes the exact same local
// event sequence (it only quantizes *when the driver checks* for
// recovery, and recovery durations are read from trace timestamps, not
// from the driver's stopping instant), and it is pinned by
// TestFleetBridgeTable2Golden / TestFleetBridgeTable4Golden.

// soloShard adapts a standalone station's kernel to the fleet's shard
// surface: no cross-shard traffic exists, so the exchange hooks are no-ops.
type soloShard struct {
	*sim.Kernel
}

func (soloShard) CollectOutbound(dst []sim.Parcel) []sim.Parcel { return dst }
func (soloShard) Inject(sim.Parcel)                             {}

// bridgeEpoch is the bridge's synchronization quantum. Any positive value
// yields identical traces (the station's events are all local); 50 ms
// keeps the recovery poll fine-grained without burning epochs.
const bridgeEpoch = 50 * time.Millisecond

// measureViaFleet runs one Cell trial through a 1-shard fleet: same
// system, same seed, same fault — only the driving loop differs.
func measureViaFleet(c Cell, seed int64) (time.Duration, error) {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed:     seed,
		TreeName: c.Tree,
		Policy:   c.Policy,
		FaultyP:  c.FaultyP,
	})
	if err != nil {
		return 0, err
	}
	if err := sys.Boot(); err != nil {
		return 0, fmt.Errorf("boot: %w", err)
	}
	fl := sim.NewFleet(sim.FleetConfig{Epoch: bridgeEpoch, Workers: 1},
		[]sim.FleetShard{soloShard{sys.Kernel}})
	if err := sys.Inject(mercury.Fault{Component: c.Component, Cure: c.Cure}); err != nil {
		return 0, err
	}
	deadline := sys.Now().Add(5 * time.Minute)
	for !sys.Recovered() {
		if sys.Now().After(deadline) {
			return 0, mercury.ErrNoRecovery
		}
		if err := fl.RunUntil(sys.Now().Add(bridgeEpoch)); err != nil {
			return 0, err
		}
	}
	d, ok := sys.Log.LastRecovery()
	if !ok {
		return 0, errors.New("experiment: recovery not recorded in trace")
	}
	return d, nil
}

// Table2ViaFleet measures the Table 2 grid with every trial driven through
// the 1-shard fleet bridge.
func Table2ViaFleet(ctx context.Context, rc RunConfig) ([]Row, error) {
	return measureRowsWith(ctx, Table4Rows()[:2], rc, measureViaFleet)
}

// Table4ViaFleet measures the full Table 4 grid through the fleet bridge.
func Table4ViaFleet(ctx context.Context, rc RunConfig) ([]Row, error) {
	return measureRowsWith(ctx, Table4Rows(), rc, measureViaFleet)
}
