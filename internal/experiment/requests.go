package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/load"
	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/runner"
)

// This file re-scores the microreboot-vs-restart comparison in the
// currency users actually experience. The microreboot sweep (see
// microreboot.go) measures MTTR and peer collateral; this campaign puts a
// million-user open-loop request plane on the same station and measures
// what each recovery granularity costs those users — failed requests, slow
// requests, and broken-session user-seconds — across repeated fault
// episodes. Raw MTTR differences of a few seconds turn into thousands of
// user-visible failures once an open-loop arrival process keeps issuing
// requests into the outage, which is precisely the re-scoring the
// end-user-effects literature argues for (PAPERS.md).

// RequestConfig parameterises the user-harm campaign.
type RequestConfig struct {
	// Trials per mode. Cells share per-trial seeds (paired comparison).
	Trials int
	// Class is the request class under test; the default (ClassPass)
	// targets the tracker, the component the fault episodes hit.
	Class load.Class
	// Users is the cohort population; Rate its aggregate arrivals/s.
	Users int
	Rate  float64
	// Deadline/Retries forward to the cohort (zero = engine defaults).
	Deadline time.Duration
	Retries  int
	// Warmup runs the healthy station before measurement starts; its
	// samples are discarded.
	Warmup time.Duration
	// Episodes fault injections per trial, each followed by Gap of
	// operation (recovery happens inside the gap; arrivals never pause).
	Episodes int
	Gap      time.Duration

	BaseSeed int64
	// Workers bounds the trial pool; <= 0 means one per CPU.
	Workers int
}

// DefaultRequestConfig is the EXPERIMENTS.md "User-harm" setup.
func DefaultRequestConfig() RequestConfig {
	return RequestConfig{
		Trials:   8,
		Class:    load.ClassPass,
		Users:    1 << 20,
		Rate:     5000,
		Episodes: 3,
		Gap:      20 * time.Second,
		Warmup:   3 * time.Second,
		BaseSeed: 2002,
	}
}

func (cfg *RequestConfig) validate() error {
	if cfg.Trials <= 0 {
		return fmt.Errorf("experiment: non-positive request trial count")
	}
	if cfg.Rate <= 0 {
		return fmt.Errorf("experiment: non-positive request rate")
	}
	if cfg.Episodes <= 0 || cfg.Gap <= 0 {
		return fmt.Errorf("experiment: request campaign needs fault episodes with positive gaps")
	}
	return nil
}

// requestVictim maps the campaign's fault class onto each mode: the
// tracker subcomponent under the microrebootable decomposition, the whole
// tracker process otherwise.
func requestVictim(mode MicroMode) string {
	if mode.micro() {
		return "str.track"
	}
	return "str"
}

// requestTrial is one trial's raw measurement. It is a flat comparable
// value (the histogram is an inline array), so parallel-vs-sequential
// byte-identity is a plain == on aggregated results.
type requestTrial struct {
	Stats   load.Stats
	Hist    metrics.Hist
	Horizon time.Duration
}

// runRequestTrial is the pure (mode, seed) → measurement trial.
func runRequestTrial(cfg RequestConfig, mode MicroMode, seed int64) (requestTrial, error) {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed:     seed,
		TreeName: mode.Tree,
		Policy:   mercury.PolicyEscalating,
	})
	if err != nil {
		return requestTrial{}, err
	}
	if err := sys.Boot(); err != nil {
		return requestTrial{}, fmt.Errorf("boot: %w", err)
	}
	eng, err := load.NewEngine(clock.Sim{K: sys.Kernel}, sys.Bus, sys.Mgr, load.Config{
		Seed: seed,
		Cohorts: []load.Cohort{{
			Class:    cfg.Class,
			Users:    cfg.Users,
			Rate:     cfg.Rate,
			Poisson:  true,
			Deadline: cfg.Deadline,
			Retries:  cfg.Retries,
		}},
	})
	if err != nil {
		return requestTrial{}, err
	}
	if err := eng.Start(); err != nil {
		return requestTrial{}, err
	}
	if err := sys.RunFor(cfg.Warmup); err != nil {
		return requestTrial{}, err
	}
	base := eng.Stats()
	eng.Hist().Reset()

	victim := requestVictim(mode)
	for i := 0; i < cfg.Episodes; i++ {
		if err := sys.Inject(mercury.Fault{Component: victim}); err != nil {
			return requestTrial{}, fmt.Errorf("inject %s: %w", victim, err)
		}
		if err := sys.RunFor(cfg.Gap); err != nil {
			return requestTrial{}, err
		}
	}
	// Stop arrivals and drain so every issued request resolves (ack or
	// deadline) before the books close.
	eng.Stop()
	drain := cfg.Deadline
	if drain <= 0 {
		drain = 100 * time.Millisecond
	}
	drain *= time.Duration(cfg.Retries + 1)
	if err := sys.RunFor(2 * drain); err != nil {
		return requestTrial{}, err
	}

	end := eng.Stats()
	return requestTrial{
		Stats:   subStats(end, base),
		Hist:    *eng.Hist(),
		Horizon: time.Duration(cfg.Episodes) * cfg.Gap,
	}, nil
}

// subStats returns the counter deltas end−base (instantaneous fields keep
// their end value).
func subStats(end, base load.Stats) load.Stats {
	return load.Stats{
		Issued:            end.Issued - base.Issued,
		Attempts:          end.Attempts - base.Attempts,
		OK:                end.OK - base.OK,
		Slow:              end.Slow - base.Slow,
		Failed:            end.Failed - base.Failed,
		Shed:              end.Shed - base.Shed,
		Retries:           end.Retries - base.Retries,
		StaleAcks:         end.StaleAcks - base.StaleAcks,
		BrokenUsers:       end.BrokenUsers,
		BrokenUserSeconds: end.BrokenUserSeconds - base.BrokenUserSeconds,
	}
}

// RequestCellResult aggregates one mode's user-harm accounting. It is a
// comparable value: two campaigns agree iff their cells are ==, which is
// how the parallel-vs-sequential byte-identity check works.
type RequestCellResult struct {
	Mode string
	Tree string

	Trials   int
	Episodes int

	// Summed over trials (measured window only; warm-up excluded).
	Issued  uint64
	OK      uint64
	Slow    uint64
	Failed  uint64
	Shed    uint64
	Retries uint64

	// GoodputPerSec is OK requests per second of measured horizon.
	GoodputPerSec float64
	// FailedPerEpisode is the user-harm headline: how many requests one
	// fault episode costs users under this recovery granularity.
	FailedPerEpisode float64
	// SlowPerEpisode counts degraded-but-successful requests per episode.
	SlowPerEpisode float64
	// DowntimePerEpisode is broken-session user-seconds per episode.
	DowntimePerEpisode float64

	// Latency quantiles over the merged (lossless) trial histograms,
	// intended-start accounting: blown deadlines sit in the tail.
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration

	// Hist is the merged latency histogram itself.
	Hist metrics.Hist
}

// RunRequestCell measures one mode over cfg.Trials trials.
func RunRequestCell(ctx context.Context, cfg RequestConfig, mode MicroMode) (*RequestCellResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	trials, err := runner.Run(ctx,
		runner.Config{Workers: cfg.Workers, BaseSeed: cfg.BaseSeed, Stride: runner.DefaultStride},
		cfg.Trials,
		func(_ context.Context, i int, seed int64) (requestTrial, error) {
			tr, err := runRequestTrial(cfg, mode, seed)
			if err != nil {
				return requestTrial{}, fmt.Errorf("requests %s trial %d: %w", mode.Name, i, err)
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	res := &RequestCellResult{Mode: mode.Name, Tree: mode.Tree, Trials: len(trials), Episodes: cfg.Episodes}
	var horizon time.Duration
	var downtime float64
	for i := range trials {
		tr := &trials[i]
		res.Issued += tr.Stats.Issued
		res.OK += tr.Stats.OK
		res.Slow += tr.Stats.Slow
		res.Failed += tr.Stats.Failed
		res.Shed += tr.Stats.Shed
		res.Retries += tr.Stats.Retries
		downtime += tr.Stats.BrokenUserSeconds
		horizon += tr.Horizon
		res.Hist.Merge(&tr.Hist)
	}
	episodes := float64(len(trials) * cfg.Episodes)
	if episodes > 0 {
		res.FailedPerEpisode = float64(res.Failed) / episodes
		res.SlowPerEpisode = float64(res.Slow) / episodes
		res.DowntimePerEpisode = downtime / episodes
	}
	if horizon > 0 {
		res.GoodputPerSec = float64(res.OK) / horizon.Seconds()
	}
	if res.Hist.Count() > 0 {
		res.P50, _ = res.Hist.Quantile(0.50)
		res.P99, _ = res.Hist.Quantile(0.99)
		res.P999, _ = res.Hist.Quantile(0.999)
	}
	return res, nil
}

// RequestModes returns the full tree I–V grid the sweep re-scores, in
// tree order with each micro-augmented variant next to its base. The
// microreboot/process/group cells keep their historical mode names (the
// harm-scoring criterion test addresses them by name); the rest are named
// after their tree.
func RequestModes() []MicroMode {
	return []MicroMode{
		{Name: "I", Tree: "I"},
		{Name: "II", Tree: "II"},
		{Name: "IIp", Tree: "IIp"},
		{Name: "process", Tree: "III"},
		{Name: "microreboot", Tree: "IIIm"},
		{Name: "group", Tree: "IV"},
		{Name: "IVm", Tree: "IVm"},
		{Name: "V", Tree: "V"},
	}
}

// RequestSweep measures every cell of the tree I–V grid with paired
// seeds, in report order: the user-harm re-scoring of recovery
// granularity across the paper's whole tree progression.
func RequestSweep(ctx context.Context, cfg RequestConfig) ([]*RequestCellResult, error) {
	var out []*RequestCellResult
	for _, mode := range RequestModes() {
		cell, err := RunRequestCell(ctx, cfg, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, cell)
	}
	return out, nil
}

// VerifyRequests runs one mode's cell sequentially and with the given
// worker count and errors unless the results are bit-identical — the
// request plane's determinism check (histogram merges are lossless and
// seed-ordered, so parallelism must not change a single bucket).
func VerifyRequests(ctx context.Context, cfg RequestConfig, workers int) error {
	if workers <= 1 {
		workers = 4
	}
	mode := MicroModes()[0]
	seq := cfg
	seq.Workers = 1
	par := cfg
	par.Workers = workers
	a, err := RunRequestCell(ctx, seq, mode)
	if err != nil {
		return err
	}
	b, err := RunRequestCell(ctx, par, mode)
	if err != nil {
		return err
	}
	if *a != *b {
		return fmt.Errorf("experiment: request campaign diverged between 1 and %d workers: %+v vs %+v",
			workers, a, b)
	}
	return nil
}

// RenderRequests formats the sweep as the user-harm table.
func RenderRequests(cfg RequestConfig, cells []*RequestCellResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "User-harm re-scoring — %s-class load at %.0f req/s over %d users (%d trials/mode, %d fault episodes + %v gaps)\n",
		cfg.Class, cfg.Rate, cfg.Users, cfg.Trials, cfg.Episodes, cfg.Gap)
	fmt.Fprintf(&sb, "%-12s %-5s %12s %14s %14s %16s %9s %9s %9s\n",
		"mode", "tree", "goodput/s", "failed/episode", "slow/episode", "user-dt/episode", "p50", "p99", "p99.9")
	for _, c := range cells {
		fmt.Fprintf(&sb, "%-12s %-5s %12.0f %14.1f %14.1f %15.1fs %9s %9s %9s\n",
			c.Mode, c.Tree, c.GoodputPerSec, c.FailedPerEpisode, c.SlowPerEpisode, c.DowntimePerEpisode,
			c.P50.Round(time.Millisecond), c.P99.Round(time.Millisecond), c.P999.Round(time.Millisecond))
	}
	sb.WriteString("failed/episode = open-loop requests lost to one fault under this recovery granularity; " +
		"user-dt/episode = broken-session user-seconds (a user is down from their first failure " +
		"until their next success)\n")
	return sb.String()
}
