package experiment

import (
	"context"
	"fmt"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/runner"
)

// manualSeedStride spaces the per-trial seeds of the manual baseline.
const manualSeedStride = 6151

// This file reproduces the paper's §8 secondary claim: "in the past,
// relying on operators to notice failures was adding minutes or hours to
// the recovery time". The manual baseline models pre-RR Mercury: no FD, no
// REC — a human operator eventually notices the silent station and reboots
// the whole thing (the only procedure tree I admits).

// OperatorNotice is the paper's "minutes or hours": how long until a human
// notices the failure. The default draws from 2–45 minutes; failures
// during unattended hours sit at the long end.
var OperatorNotice = fault.Uniform{Lo: 2 * time.Minute, Hi: 45 * time.Minute}

// ManualResult compares operator-driven recovery with automated RR.
type ManualResult struct {
	Trials         int
	ManualRecovery metrics.Sample
	AutoRecovery   metrics.Sample
	ManualAvail    float64 // availability at the Table 1 fedrcom rate
	AutoAvail      float64
}

// manualTrial is one paired observation: the operator-driven recovery and
// the automated recovery of the equivalent failure under the same seed.
type manualTrial struct {
	manual, auto time.Duration
}

// measureManual runs the pre-RR procedure once: no FD/REC; the operator
// notices after OperatorNotice and performs the only procedure tree I
// admits — a whole-system restart.
func measureManual(seed int64) (time.Duration, error) {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed: seed, TreeName: "I", DisableRecovery: true,
	})
	if err != nil {
		return 0, err
	}
	if err := sys.Boot(); err != nil {
		return 0, err
	}
	start := sys.Now()
	if err := sys.Inject(mercury.Fault{Component: "fedrcom"}); err != nil {
		return 0, err
	}
	notice := OperatorNotice.Sample(sys.Kernel.Rand())
	if err := sys.Kernel.RunUntil(start.Add(notice)); err != nil {
		return 0, err
	}
	if err := sys.Mgr.Restart(sys.Components()); err != nil {
		return 0, err
	}
	deadline := sys.Now().Add(3 * time.Minute)
	for !sys.Mgr.AllServing(sys.Components()...) {
		if sys.Now().After(deadline) {
			return 0, fmt.Errorf("experiment: manual reboot did not complete")
		}
		if !sys.Kernel.Step() {
			return 0, fmt.Errorf("experiment: simulation idle during manual reboot")
		}
	}
	// The board still lists the fault (cured by the full restart's batch
	// hook); recovery spans failure → all serving.
	return sys.Now().Sub(start), nil
}

// ManualVsAuto measures recovery of the most frequent failure (the front
// end) under the pre-RR manual procedure versus the automated tree-IV
// station, and derives the availability each implies at fedrcom's
// 10-minute... (Table 1) failure rate — using the post-split fedr rate for
// the automated system.
func ManualVsAuto(trials int, baseSeed int64) (*ManualResult, error) {
	return ManualVsAutoCfg(context.Background(), RunConfig{Trials: trials, BaseSeed: baseSeed})
}

// ManualVsAutoCfg runs the paired trials across the runner pool; samples
// are folded in seed order, so results match the sequential path exactly.
func ManualVsAutoCfg(ctx context.Context, rc RunConfig) (*ManualResult, error) {
	pairs, err := runner.Run(ctx, rc.runnerConfig(manualSeedStride), rc.Trials,
		func(_ context.Context, i int, seed int64) (manualTrial, error) {
			manual, err := measureManual(seed)
			if err != nil {
				return manualTrial{}, fmt.Errorf("manual trial %d: %w", i, err)
			}
			// Automated: tree IV, escalating oracle, fedr failure.
			auto, err := Cell{
				Tree: "IV", Policy: mercury.PolicyEscalating, Component: "fedr",
			}.Measure(seed)
			if err != nil {
				return manualTrial{}, fmt.Errorf("auto trial %d: %w", i, err)
			}
			return manualTrial{manual: manual, auto: auto}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &ManualResult{Trials: rc.Trials}
	for _, p := range pairs {
		res.ManualRecovery.Add(p.manual)
		res.AutoRecovery.Add(p.auto)
	}
	res.ManualAvail = metrics.Availability(PaperMTTF["fedrcom"], res.ManualRecovery.Mean())
	res.AutoAvail = metrics.Availability(SplitMTTF["fedr"], res.AutoRecovery.Mean())
	return res, nil
}

// RenderManual formats the comparison.
func RenderManual(r *ManualResult) string {
	return fmt.Sprintf(
		"§8 — automated recovery vs. the pre-RR manual procedure (%d trials)\n"+
			"  manual (operator notices, whole-system reboot): mean %7.1f s → availability %.4f\n"+
			"  automated (FD + REC, tree IV):                  mean %7.1f s → availability %.4f\n"+
			"  the operator adds minutes; automation holds recovery to seconds\n",
		r.Trials,
		r.ManualRecovery.MeanSeconds(), r.ManualAvail,
		r.AutoRecovery.MeanSeconds(), r.AutoAvail)
}
