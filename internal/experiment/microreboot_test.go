package experiment

import (
	"context"
	"testing"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/trace"
)

// microTestConfig is a reduced sweep that keeps the test fast while
// preserving the paired-seed comparison.
func microTestConfig() MicroConfig {
	cfg := DefaultMicroConfig()
	cfg.Trials = 6
	cfg.Faults = 2
	cfg.Gap = 5 * time.Second
	return cfg
}

// TestMicrorebootCriterion pins the PR's acceptance criterion: for a
// ses/str-class fault under chaos, microreboot MTTR is at least 3× lower
// than process-restart MTTR, and ses-class faults recover without
// co-restarting str once the session state is externalized.
func TestMicrorebootCriterion(t *testing.T) {
	cfg := microTestConfig()
	cells, err := MicroSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderMicro(cfg, cells))

	byKey := make(map[string]*MicroCellResult)
	for _, c := range cells {
		byKey[c.Class+"/"+c.Mode] = c
	}
	for _, class := range MicroClasses() {
		micro := byKey[class.Name+"/microreboot"]
		process := byKey[class.Name+"/process"]
		if micro == nil || process == nil {
			t.Fatalf("missing cells for class %s", class.Name)
		}
		if micro.Recovered != micro.Trials {
			t.Errorf("%s: only %d/%d microreboot trials recovered", class.Name, micro.Recovered, micro.Trials)
		}
		if micro.MTTR.N() == 0 || process.MTTR.N() == 0 {
			t.Fatalf("%s: no MTTR samples (micro %d, process %d)", class.Name, micro.MTTR.N(), process.MTTR.N())
		}
		if m, p := micro.MTTR.MeanSeconds(), process.MTTR.MeanSeconds(); m*3 > p {
			t.Errorf("%s: microreboot MTTR %.2fs not ≥3× below process MTTR %.2fs", class.Name, m, p)
		}
		// The crash-only store removes the co-restart: the peer keeps its
		// incarnation through every microreboot recovery.
		if micro.PeerRestarts != 0 {
			t.Errorf("%s: microreboot co-restarted the peer %d times; externalized state should leave it untouched",
				class.Name, micro.PeerRestarts)
		}
		// The classic resync artifact must still be present in process
		// mode, or the comparison is vacuous.
		if process.PeerRestarts == 0 {
			t.Errorf("%s: process mode shows no peer co-restarts; resync artifact lost", class.Name)
		}
	}
}

// TestMicroSweepDeterministic pins the parallel == sequential guarantee
// for the new campaign.
func TestMicroSweepDeterministic(t *testing.T) {
	cfg := microTestConfig()
	cfg.Trials = 3
	cfg.Faults = 1

	seq := cfg
	seq.Workers = 1
	par := cfg
	par.Workers = 4

	a, err := RunMicroCell(context.Background(), seq, MicroModes()[0], MicroClasses()[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMicroCell(context.Background(), par, MicroModes()[0], MicroClasses()[0])
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := RenderMicro(seq, []*MicroCellResult{a}), RenderMicro(par, []*MicroCellResult{b}); ra != rb {
		t.Fatalf("parallel sweep diverged from sequential:\n--- workers=1\n%s\n--- workers=4\n%s", ra, rb)
	}
}

// TestMicrorebootBudgetRefund is the give-up-misfire regression: cured
// microreboots refund their budget charges, so a component that
// microreboots successfully more times than MaxRestarts must never be
// abandoned, and a later process-level fault in the same subsystem must
// still recover.
func TestMicrorebootBudgetRefund(t *testing.T) {
	recp := core.DefaultRECParams()
	recp.MaxRestarts = 3
	recp.BudgetWindow = time.Hour // nothing ages out: only the refund can save us

	sys, err := mercury.NewSystem(mercury.Config{
		Seed:      11,
		TreeName:  "IIIm",
		RECParams: &recp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	gaveUp := 0
	sys.Log.Subscribe(func(e trace.Event) {
		if e.Kind == trace.GiveUp {
			gaveUp++
			t.Errorf("give-up on %s: %s", e.Component, e.Detail)
		}
	})

	// 2×MaxRestarts successful microreboots of the same subcomponent.
	for i := 0; i < 2*recp.MaxRestarts; i++ {
		if _, err := sys.MeasureRecovery(mercury.Fault{Component: "ses.cache"}, time.Minute); err != nil {
			t.Fatalf("microreboot %d: %v", i, err)
		}
		// Let the cure verdict settle so the episode resolves and refunds.
		if err := sys.RunFor(recp.PersistWindow + time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// The process-level budget must be untouched: a real ses process fault
	// still recovers without give-up.
	if _, err := sys.MeasureRecovery(mercury.Fault{Component: "ses"}, 2*time.Minute); err != nil {
		t.Fatalf("process-level fault after microreboots: %v", err)
	}
	if gaveUp > 0 {
		t.Fatalf("%d give-ups; cured microreboots must refund their budget charges", gaveUp)
	}
}
