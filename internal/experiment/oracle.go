package experiment

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/clock"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/load"
	"github.com/recursive-restart/mercury/internal/runner"
	"github.com/recursive-restart/mercury/internal/station"
)

// This file is the oracle-v2 campaign plane (`rrbench oracle`), in three
// parts. The *policy* campaign compares the cost-aware oracle against the
// fixed baselines (always-microreboot, always-process-restart,
// always-checkpoint) on a mixed fault schedule — state-corruption faults
// where only a checkpoint restore beats a full process restart, and plain
// sub faults where a microreboot is unbeatable — scoring each policy by
// measured user harm from the open-loop request plane. The *tree
// validation* campaign boots thousands of seeded random restart trees and
// checks that the analytic model's expected-MTTR ranking matches the
// simulated ground truth (rank correlation), which is what licenses the
// online optimizer to act on analytic scores. The *online proposal* soak
// runs organic failures against a deployed tree, mines the recovery
// episodes into an empirical fault mix, and asks the optimizer to propose
// transformations — the §7 "algorithms for transforming restart trees"
// item made data-driven.

// OracleConfig parameterises the policy-comparison campaign.
type OracleConfig struct {
	// Trials per policy, with paired seeds across policies.
	Trials int
	// PassRate / FedRate are the two cohorts' aggregate arrivals/s: the
	// pass class exercises the tracker (str), the federation class the
	// translator (fedr) — the two fault sites of the schedule.
	PassRate float64
	FedRate  float64
	// Users per cohort.
	Users int
	// Warmup runs the healthy station before anything is measured.
	Warmup time.Duration
	// TrainEpisodes run before the measured window so the estimator
	// converges; their harm is discarded (every policy gets the same
	// schedule, so the comparison stays paired).
	TrainEpisodes int
	// Episodes is the measured fault-injection count; faults alternate
	// between the state-corruption and plain-sub classes.
	Episodes int
	// Gap of operation after each injection (recovery happens inside it).
	Gap time.Duration
	// CkptInterval is the checkpoint period.
	CkptInterval time.Duration

	BaseSeed int64
	Workers  int
}

// DefaultOracleConfig is the EXPERIMENTS.md "Policy choice" setup.
func DefaultOracleConfig() OracleConfig {
	return OracleConfig{
		Trials:        4,
		PassRate:      600,
		FedRate:       300,
		Users:         1 << 16,
		Warmup:        3 * time.Second,
		TrainEpisodes: 4,
		Episodes:      6,
		Gap:           20 * time.Second,
		CkptInterval:  10 * time.Second,
		BaseSeed:      2002,
	}
}

func (cfg *OracleConfig) validate() error {
	if cfg.Trials <= 0 {
		return fmt.Errorf("experiment: non-positive oracle trial count")
	}
	if cfg.Episodes <= 0 || cfg.Gap <= 0 {
		return fmt.Errorf("experiment: oracle campaign needs fault episodes with positive gaps")
	}
	if cfg.PassRate <= 0 || cfg.FedRate <= 0 {
		return fmt.Errorf("experiment: oracle campaign needs positive request rates")
	}
	return nil
}

// OraclePolicy is one policy cell of the campaign.
type OraclePolicy struct {
	Name   string
	Policy mercury.Policy
}

// OraclePolicies returns the campaign's cells in report order: oracle v2
// first, then the fixed baselines it must beat.
func OraclePolicies() []OraclePolicy {
	return []OraclePolicy{
		{Name: "costaware", Policy: mercury.PolicyCostAware},
		{Name: "fixed-micro", Policy: mercury.PolicyFixedMicro},
		{Name: "fixed-process", Policy: mercury.PolicyFixedProcess},
		{Name: "fixed-ckpt", Policy: mercury.PolicyFixedCkpt},
	}
}

// oracleFault returns the i-th episode's fault. Even episodes corrupt the
// tracker's externalized target (a microreboot faithfully reattaches to
// the poison — only a pre-fault checkpoint restore or a full tracker
// restart cures); odd episodes are plain translator-session faults where
// the microreboot is the cheapest cure and a checkpoint restore pays its
// floor for nothing.
func oracleFault(i int) mercury.Fault {
	if i%2 == 0 {
		return mercury.Fault{
			Component: "str.track",
			Cure:      []string{"str"},
			StateKey:  station.KeyTrackTarget,
		}
	}
	return mercury.Fault{Component: "fedr.session"}
}

// oracleTrial is one trial's raw measurement (flat and comparable).
type oracleTrial struct {
	Stats   load.Stats
	Horizon time.Duration
}

// runOracleTrial is the pure (policy, seed) → measurement trial.
func runOracleTrial(cfg OracleConfig, pol OraclePolicy, seed int64) (oracleTrial, error) {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed:         seed,
		TreeName:     "IIIm",
		Policy:       pol.Policy,
		CkptInterval: cfg.CkptInterval,
		HarmRates: map[string]float64{
			"str":  cfg.PassRate,
			"fedr": cfg.FedRate,
		},
	})
	if err != nil {
		return oracleTrial{}, err
	}
	if err := sys.Boot(); err != nil {
		return oracleTrial{}, fmt.Errorf("boot: %w", err)
	}
	eng, err := load.NewEngine(clock.Sim{K: sys.Kernel}, sys.Bus, sys.Mgr, load.Config{
		Seed: seed,
		Cohorts: []load.Cohort{
			{Class: load.ClassPass, Users: cfg.Users, Rate: cfg.PassRate, Poisson: true},
			{Class: load.ClassFederation, Users: cfg.Users, Rate: cfg.FedRate, Poisson: true},
		},
	})
	if err != nil {
		return oracleTrial{}, err
	}
	if err := eng.Start(); err != nil {
		return oracleTrial{}, err
	}
	if err := sys.RunFor(cfg.Warmup); err != nil {
		return oracleTrial{}, err
	}
	inject := func(i int) error {
		if err := sys.Inject(oracleFault(i)); err != nil {
			return fmt.Errorf("inject episode %d: %w", i, err)
		}
		return sys.RunFor(cfg.Gap)
	}
	// Training window: the estimator learns each site's action outcomes;
	// fixed policies just pay the same schedule.
	for i := 0; i < cfg.TrainEpisodes; i++ {
		if err := inject(i); err != nil {
			return oracleTrial{}, err
		}
	}
	base := eng.Stats()
	eng.Hist().Reset()
	for i := 0; i < cfg.Episodes; i++ {
		if err := inject(cfg.TrainEpisodes + i); err != nil {
			return oracleTrial{}, err
		}
	}
	eng.Stop()
	if err := sys.RunFor(time.Second); err != nil {
		return oracleTrial{}, err
	}
	return oracleTrial{
		Stats:   subStats(eng.Stats(), base),
		Horizon: time.Duration(cfg.Episodes) * cfg.Gap,
	}, nil
}

// OracleCellResult aggregates one policy's harm accounting. Comparable, so
// parallel-vs-sequential agreement is plain ==.
type OracleCellResult struct {
	Policy string

	Trials   int
	Episodes int

	Issued  uint64
	OK      uint64
	Failed  uint64
	Shed    uint64
	Retries uint64

	// FailedPerEpisode and DowntimePerEpisode are the two harm currencies
	// (requests lost, broken-session user-seconds), per fault episode.
	FailedPerEpisode   float64
	DowntimePerEpisode float64
	// HarmScore is the campaign's single ranking number: failed requests
	// plus broken-user-seconds per episode. The units differ, but both
	// are "user pain per fault" and the policies are compared on an
	// identical schedule, so the sum is a fair rank.
	HarmScore float64
}

// RunOracleCell measures one policy over cfg.Trials paired-seed trials.
func RunOracleCell(ctx context.Context, cfg OracleConfig, pol OraclePolicy) (*OracleCellResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	trials, err := runner.Run(ctx,
		runner.Config{Workers: cfg.Workers, BaseSeed: cfg.BaseSeed, Stride: runner.DefaultStride},
		cfg.Trials,
		func(_ context.Context, i int, seed int64) (oracleTrial, error) {
			tr, err := runOracleTrial(cfg, pol, seed)
			if err != nil {
				return oracleTrial{}, fmt.Errorf("oracle %s trial %d: %w", pol.Name, i, err)
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	res := &OracleCellResult{Policy: pol.Name, Trials: len(trials), Episodes: cfg.Episodes}
	var downtime float64
	for i := range trials {
		tr := &trials[i]
		res.Issued += tr.Stats.Issued
		res.OK += tr.Stats.OK
		res.Failed += tr.Stats.Failed
		res.Shed += tr.Stats.Shed
		res.Retries += tr.Stats.Retries
		downtime += tr.Stats.BrokenUserSeconds
	}
	episodes := float64(len(trials) * cfg.Episodes)
	if episodes > 0 {
		res.FailedPerEpisode = float64(res.Failed) / episodes
		res.DowntimePerEpisode = downtime / episodes
		res.HarmScore = res.FailedPerEpisode + res.DowntimePerEpisode
	}
	return res, nil
}

// OracleSweep measures every policy with paired seeds, in report order.
func OracleSweep(ctx context.Context, cfg OracleConfig) ([]*OracleCellResult, error) {
	var out []*OracleCellResult
	for _, pol := range OraclePolicies() {
		cell, err := RunOracleCell(ctx, cfg, pol)
		if err != nil {
			return nil, err
		}
		out = append(out, cell)
	}
	return out, nil
}

// RenderOracle formats the sweep as the policy-choice table.
func RenderOracle(cfg OracleConfig, cells []*OracleCellResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Policy choice — mixed faults (state-corruption @ str.track / sub-crash @ fedr.session), "+
		"%d trials/policy, %d train + %d measured episodes, %v gaps, checkpoints every %v\n",
		cfg.Trials, cfg.TrainEpisodes, cfg.Episodes, cfg.Gap, cfg.CkptInterval)
	fmt.Fprintf(&sb, "%-14s %12s %14s %16s %12s\n",
		"policy", "issued", "failed/episode", "user-dt/episode", "harm score")
	for _, c := range cells {
		fmt.Fprintf(&sb, "%-14s %12d %14.1f %15.1fs %12.1f\n",
			c.Policy, c.Issued, c.FailedPerEpisode, c.DowntimePerEpisode, c.HarmScore)
	}
	sb.WriteString("harm score = failed requests + broken-session user-seconds per fault episode; " +
		"costaware must rank strictly first (pinned by TestOraclePolicyCriterion)\n")
	return sb.String()
}

// --- Randomized-tree validation -------------------------------------------

// TreeValidationConfig parameterises the analytic-vs-simulated ranking
// check.
type TreeValidationConfig struct {
	// Trees is how many seeded random restart trees to score.
	Trees int
	// Limit bounds one simulated recovery.
	Limit time.Duration

	BaseSeed int64
	Workers  int
}

// DefaultTreeValidationConfig scores the acceptance-criterion population.
func DefaultTreeValidationConfig() TreeValidationConfig {
	return TreeValidationConfig{Trees: 1000, Limit: 2 * time.Minute, BaseSeed: 2002}
}

// TreeScore is one random tree's pair of numbers: the analytic prediction
// and the simulated ground truth (both weight-averaged expected MTTR over
// the Mercury fault mix, in seconds).
type TreeScore struct {
	Name      string
	Predicted float64
	Measured  float64
}

// TreeValidationResult is the campaign outcome.
type TreeValidationResult struct {
	Scores   []TreeScore
	Spearman float64
}

// runTreeScore generates tree i from its seed, predicts analytically, then
// boots the tree and measures every fault class of the Mercury mix in the
// fleet simulator.
func runTreeScore(cfg TreeValidationConfig, i int, seed int64) (TreeScore, error) {
	rng := rand.New(rand.NewSource(seed))
	name := fmt.Sprintf("rand-%d", i)
	tree, err := core.RandomTree(rng, name, station.SplitComponents())
	if err != nil {
		return TreeScore{}, err
	}
	mix := core.MercuryFaultMix()
	ap := core.MercuryAnalyticParams()
	predicted, err := core.ExpectedMTTR(tree, mix, ap, core.ModelEscalating, 0)
	if err != nil {
		return TreeScore{}, fmt.Errorf("predict %s: %w", name, err)
	}

	sys, err := mercury.NewSystem(mercury.Config{Seed: seed, CustomTree: tree})
	if err != nil {
		return TreeScore{}, err
	}
	if err := sys.Boot(); err != nil {
		return TreeScore{}, fmt.Errorf("boot %s: %w", name, err)
	}
	var sumW, sumC float64
	for _, fc := range mix {
		if fc.Weight <= 0 {
			continue
		}
		d, err := sys.MeasureRecovery(mercury.Fault{Component: fc.Manifest, Cure: fc.Cure}, cfg.Limit)
		if err != nil {
			return TreeScore{}, fmt.Errorf("measure %s/%s: %w", name, fc.Manifest, err)
		}
		sumW += fc.Weight
		sumC += fc.Weight * d.Seconds()
		if err := sys.RunFor(3 * time.Second); err != nil {
			return TreeScore{}, err
		}
	}
	return TreeScore{Name: name, Predicted: predicted, Measured: sumC / sumW}, nil
}

// RunTreeValidation scores cfg.Trees random trees and reports the Spearman
// rank correlation between analytic prediction and simulated measurement.
func RunTreeValidation(ctx context.Context, cfg TreeValidationConfig) (*TreeValidationResult, error) {
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("experiment: non-positive tree count")
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 2 * time.Minute
	}
	scores, err := runner.Run(ctx,
		runner.Config{Workers: cfg.Workers, BaseSeed: cfg.BaseSeed, Stride: runner.DefaultStride},
		cfg.Trees,
		func(_ context.Context, i int, seed int64) (TreeScore, error) {
			return runTreeScore(cfg, i, seed)
		})
	if err != nil {
		return nil, err
	}
	pred := make([]float64, len(scores))
	meas := make([]float64, len(scores))
	for i, s := range scores {
		pred[i], meas[i] = s.Predicted, s.Measured
	}
	return &TreeValidationResult{Scores: scores, Spearman: spearman(pred, meas)}, nil
}

// RenderTreeValidation summarises the validation campaign.
func RenderTreeValidation(res *TreeValidationResult) string {
	var sb strings.Builder
	n := len(res.Scores)
	fmt.Fprintf(&sb, "Analytic-vs-simulated tree ranking over %d random restart trees\n", n)
	var bestP, bestM, worstP, worstM float64
	for i, s := range res.Scores {
		if i == 0 || s.Predicted < bestP {
			bestP, bestM = s.Predicted, s.Measured
		}
		if i == 0 || s.Predicted > worstP {
			worstP, worstM = s.Predicted, s.Measured
		}
	}
	fmt.Fprintf(&sb, "  best predicted tree:  %.2f s analytic, %.2f s simulated\n", bestP, bestM)
	fmt.Fprintf(&sb, "  worst predicted tree: %.2f s analytic, %.2f s simulated\n", worstP, worstM)
	fmt.Fprintf(&sb, "  Spearman rank correlation: %.3f\n", res.Spearman)
	return sb.String()
}

// ranks assigns average ranks (ties share the mean of their positions).
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// spearman is the rank correlation of two equal-length samples.
func spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	rx, ry := ranks(x), ranks(y)
	n := float64(len(x))
	var mx, my float64
	for i := range rx {
		mx += rx[i]
		my += ry[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range rx {
		dx, dy := rx[i]-mx, ry[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// --- Online tree-optimization soak ----------------------------------------

// OnlineConfig parameterises the episode-mining soak.
type OnlineConfig struct {
	// Tree is the deployed restart tree under observation.
	Tree string
	// Horizon is the simulated soak duration.
	Horizon time.Duration
	// MTTFs sets each component's exponential failure law.
	MTTFs map[string]time.Duration
	// Correlated maps a component to the true cure set of its organic
	// faults (the injection plane's knowledge; nil entries mean the
	// component cures alone).
	Correlated map[string][]string

	Seed int64
}

// DefaultOnlineConfig is the EXPERIMENTS.md online-proposal setup: tree
// II′ soaked under an aggressive correlated ses↔str failure regime plus
// the usual buggy translator.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{
		Tree:    "IIp",
		Horizon: 4 * time.Hour,
		MTTFs: map[string]time.Duration{
			"ses":  20 * time.Minute,
			"str":  20 * time.Minute,
			"fedr": 30 * time.Minute,
		},
		Correlated: map[string][]string{
			"ses": {"ses", "str"},
			"str": {"ses", "str"},
		},
		Seed: 2002,
	}
}

// OnlineProposal is the soak outcome: the mined mix and the optimizer's
// proposed transformation sequence.
type OnlineProposal struct {
	Episodes int
	Mix      []core.FaultClass
	Result   *core.OptimizeResult
}

// RunOnlineProposal soaks the deployed tree under organic failures, mines
// every recovery episode (manifest, curing set, duration) via the fault
// board's cure feed, and asks the optimizer for transformations of that
// tree under the empirical mix.
func RunOnlineProposal(_ context.Context, cfg OnlineConfig) (*OnlineProposal, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("experiment: online soak needs a positive horizon")
	}
	sys, err := mercury.NewSystem(mercury.Config{Seed: cfg.Seed, TreeName: cfg.Tree})
	if err != nil {
		return nil, err
	}
	if err := sys.Boot(); err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	miner := core.NewOnlineOptimizer()
	sys.Board.OnCure(func(ev fault.CureEvent) {
		miner.Add(core.Episode{
			Manifest: ev.Fault.Manifest,
			CuredBy:  ev.Fault.CureList(),
			Recovery: ev.CuredAt.Sub(ev.InjectedAt),
		})
	})
	comps := make([]string, 0, len(cfg.MTTFs))
	for c := range cfg.MTTFs {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		sys.Injector.SetLaw(c, fault.Exponential{M: cfg.MTTFs[c]})
	}
	if cfg.Correlated != nil {
		sys.Injector.CureFor = func(c string) []string { return cfg.Correlated[c] }
	}
	sys.Injector.Enable()
	for _, c := range comps {
		sys.Injector.Prime(c)
	}
	if err := sys.RunFor(cfg.Horizon); err != nil {
		return nil, err
	}
	sys.Injector.Disable()
	if err := sys.RunFor(2 * time.Minute); err != nil {
		return nil, err
	}
	res, err := miner.Propose(sys.REC.Tree(), core.MercuryAnalyticParams(),
		core.ModelEscalating, 0, cfg.Horizon, nil)
	if err != nil {
		return nil, err
	}
	return &OnlineProposal{Episodes: miner.Episodes(), Mix: miner.Mix(cfg.Horizon), Result: res}, nil
}

// RenderOnlineProposal formats the soak outcome.
func RenderOnlineProposal(cfg OnlineConfig, p *OnlineProposal) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Online tree optimization — %v soak of tree %s, %d recovery episodes mined\n",
		cfg.Horizon, cfg.Tree, p.Episodes)
	sb.WriteString("empirical mix:\n")
	sb.WriteString(core.RenderMix(p.Mix))
	fmt.Fprintf(&sb, "expected MTTR: %.2f s deployed → %.2f s proposed\n", p.Result.Start, p.Result.Expected)
	for _, s := range p.Result.Steps {
		fmt.Fprintf(&sb, "  %s\n", s)
	}
	if len(p.Result.Steps) == 0 {
		sb.WriteString("  (deployed tree already optimal for the mined mix)\n")
	}
	return sb.String()
}
