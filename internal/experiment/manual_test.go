package experiment

import (
	"strings"
	"testing"
)

func TestManualVsAuto(t *testing.T) {
	r, err := ManualVsAuto(4, 11_000)
	if err != nil {
		t.Fatalf("ManualVsAuto: %v", err)
	}
	// The operator path is minutes; automation is seconds.
	if r.ManualRecovery.MeanSeconds() < 120 {
		t.Fatalf("manual recovery = %.1fs; operator model too fast", r.ManualRecovery.MeanSeconds())
	}
	if r.AutoRecovery.MeanSeconds() > 10 {
		t.Fatalf("automated recovery = %.1fs", r.AutoRecovery.MeanSeconds())
	}
	if r.ManualRecovery.MeanSeconds() < 20*r.AutoRecovery.MeanSeconds() {
		t.Fatalf("automation advantage too small: %.1f vs %.1f",
			r.ManualRecovery.MeanSeconds(), r.AutoRecovery.MeanSeconds())
	}
	// Availability ordering follows.
	if r.AutoAvail <= r.ManualAvail {
		t.Fatalf("availability: auto %.4f should beat manual %.4f", r.AutoAvail, r.ManualAvail)
	}
	out := RenderManual(r)
	if !strings.Contains(out, "automated") || !strings.Contains(out, "manual") {
		t.Fatalf("render:\n%s", out)
	}
}
