package experiment

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// testChaosConfig is a small, fast grid for determinism checks.
func testChaosConfig(workers int) ChaosConfig {
	return ChaosConfig{
		Trees:        []string{"IV"},
		LossRates:    []float64{0.10},
		SuspectAfter: []int{1, 3},
		Trials:       4,
		Horizon:      30 * time.Second,
		Jitter:       2 * time.Millisecond,
		Dup:          0.01,
		Backoff:      250 * time.Millisecond,
		BackoffMax:   2 * time.Second,
		BaseSeed:     2002,
		Workers:      workers,
	}
}

// TestChaosSweepParallelMatchesSequential: the campaign's results are a
// pure function of (config, seed); worker count changes wall time only.
func TestChaosSweepParallelMatchesSequential(t *testing.T) {
	seq, err := ChaosSweep(context.Background(), testChaosConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ChaosSweep(context.Background(), testChaosConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestChaosHardeningCriterion: in a ≥10% ping-loss regime (5% per-hop ⇒
// ~18.5% per-probe loss), SuspectAfter=3 must cut false-positive restarts
// at least 8× versus the paper's single-miss detector while keeping
// detection of a real fault under 2× the 1 s ping period. (The factor was
// 12.6× while the restart budget silently kept charges from cured
// episodes and so abandoned components mid-storm; with cured recoveries
// refunding their budget — the correct semantics — neither detector is
// throttled by give-ups and the measured gap at these parameters is ~9×.)
func TestChaosHardeningCriterion(t *testing.T) {
	cfg := testChaosConfig(0)
	cfg.LossRates = []float64{0.05}
	cfg.Trials = 8
	cfg.Horizon = 2 * time.Minute
	if pl := PingLoss(0.05, cfg.Dup); pl < 0.10 {
		t.Fatalf("per-probe ping loss %.3f below the 10%% regime the criterion targets", pl)
	}
	cells, err := ChaosSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byK := map[int]*ChaosCellResult{}
	for _, c := range cells {
		byK[c.SuspectAfter] = c
	}
	k1, k3 := byK[1], byK[3]
	if k1 == nil || k3 == nil {
		t.Fatalf("missing cells: %+v", cells)
	}
	if k1.FalseRestarts == 0 {
		t.Fatal("single-miss detector saw no false restarts; the scenario is vacuous")
	}
	if k1.FalseRestarts < 8*k3.FalseRestarts {
		t.Fatalf("SuspectAfter=3 cut false restarts only %.1f× (%.2f → %.2f), want ≥8×",
			k1.FalseRestarts/k3.FalseRestarts, k1.FalseRestarts, k3.FalseRestarts)
	}
	if k3.Detect.N() == 0 {
		t.Fatal("K=3 never detected the injected fault")
	}
	if mean := k3.Detect.MeanSeconds(); mean >= 2 {
		t.Fatalf("K=3 detection latency %.2fs, want < 2s (2× the 1s ping period)", mean)
	}
	if k3.Availability <= k1.Availability {
		t.Fatalf("hardened availability %.4f not above stock %.4f", k3.Availability, k1.Availability)
	}
}
