package experiment

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	mercury "github.com/recursive-restart/mercury"
)

// trials is kept small in unit tests; the benchmarks and cmd/rrbench run
// the paper's full 100.
const trials = 5

func TestRunCellTreeII(t *testing.T) {
	s, err := RunCell(Cell{
		Tree: "II", Policy: mercury.PolicyPerfect, Component: "rtu",
	}, trials, 1000)
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if s.N() != trials {
		t.Fatalf("N = %d", s.N())
	}
	mean := s.MeanSeconds()
	if mean < 4 || mean > 8 {
		t.Fatalf("tree II rtu mean = %.2fs, want ~5.6", mean)
	}
	// The paper's assumption: distributions with small CVs.
	if s.CV() > 0.25 {
		t.Fatalf("CV = %.3f, want small", s.CV())
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	rows, err := Table2(trials, 2000)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 2 || rows[0].Label != "I/perfect" || rows[1].Label != "II/perfect" {
		t.Fatalf("rows = %+v", rows)
	}
	treeI, treeII := rows[0].Cells, rows[1].Cells
	// Tree I: every component costs a whole-system restart — roughly equal
	// and high.
	for comp, s := range treeI {
		if s.MeanSeconds() < 20 || s.MeanSeconds() > 30 {
			t.Fatalf("tree I %s = %.2fs, want ~24.75", comp, s.MeanSeconds())
		}
	}
	// Tree II: every component recovers at least as fast; all but the
	// slowest strictly faster.
	faster := 0
	for comp, s2 := range treeII {
		s1 := treeI[comp]
		if s2.MeanSeconds() > s1.MeanSeconds()+1 {
			t.Fatalf("tree II %s slower than tree I: %.2f vs %.2f",
				comp, s2.MeanSeconds(), s1.MeanSeconds())
		}
		if s2.MeanSeconds() < s1.MeanSeconds()-2 {
			faster++
		}
	}
	if faster < 4 {
		t.Fatalf("only %d components recovered faster under tree II", faster)
	}
	// fedrcom stays the slow one (~21s), rtu the fast one (~5.6s).
	if treeII["fedrcom"].MeanSeconds() < 18 {
		t.Fatalf("fedrcom = %.2fs, want ~21", treeII["fedrcom"].MeanSeconds())
	}
	if treeII["rtu"].MeanSeconds() > 8 {
		t.Fatalf("rtu = %.2fs, want ~5.6", treeII["rtu"].MeanSeconds())
	}
}

func TestConsolidationShape(t *testing.T) {
	// Tree III ses ≈ 9.5s (sequential); tree IV ses ≈ 6.25s (max-based).
	s3, err := RunCell(Cell{Tree: "III", Policy: mercury.PolicyPerfect, Component: "ses"}, trials, 3000)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := RunCell(Cell{Tree: "IV", Policy: mercury.PolicyPerfect, Component: "ses"}, trials, 3100)
	if err != nil {
		t.Fatal(err)
	}
	if s4.MeanSeconds() >= s3.MeanSeconds()-1 {
		t.Fatalf("consolidation did not help: III=%.2f IV=%.2f",
			s3.MeanSeconds(), s4.MeanSeconds())
	}
}

func TestNodePromotionShape(t *testing.T) {
	// §4.4: joint-cure pbcom faults under the 30% faulty oracle. Tree V
	// beats tree IV; with a perfect oracle tree V is no better.
	cure := []string{"fedr", "pbcom"}
	iv, err := RunCell(Cell{Tree: "IV", Policy: mercury.PolicyFaulty, FaultyP: FaultyP,
		Component: "pbcom", Cure: cure}, 10, 4000)
	if err != nil {
		t.Fatal(err)
	}
	v, err := RunCell(Cell{Tree: "V", Policy: mercury.PolicyFaulty, FaultyP: FaultyP,
		Component: "pbcom", Cure: cure}, 10, 4100)
	if err != nil {
		t.Fatal(err)
	}
	if v.MeanSeconds() >= iv.MeanSeconds()-1 {
		t.Fatalf("promotion did not help the faulty oracle: IV=%.2f V=%.2f",
			iv.MeanSeconds(), v.MeanSeconds())
	}
	// Tree V with faulty oracle ≈ tree IV/V with perfect oracle (joint
	// restart either way).
	vPerfect, err := RunCell(Cell{Tree: "V", Policy: mercury.PolicyPerfect,
		Component: "pbcom", Cure: cure}, trials, 4200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.MeanSeconds()-vPerfect.MeanSeconds()) > 2 {
		t.Fatalf("tree V faulty (%.2f) should match tree V perfect (%.2f)",
			v.MeanSeconds(), vPerfect.MeanSeconds())
	}
}

func TestTable1Calibration(t *testing.T) {
	res, err := Table1(4000, 5)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res) != len(PaperMTTF) {
		t.Fatalf("rows = %d", len(res))
	}
	for _, r := range res {
		rel := math.Abs(r.Measured.MeanSeconds()-r.Configured.Seconds()) / r.Configured.Seconds()
		if rel > 0.05 {
			t.Fatalf("%s achieved MTTF off by %.1f%%", r.Component, rel*100)
		}
		if cv := r.Measured.CV(); cv < 0.15 || cv > 0.35 {
			t.Fatalf("%s CV = %.3f, want ~0.25", r.Component, cv)
		}
	}
	out := RenderTable1(res)
	if !strings.Contains(out, "fedrcom") {
		t.Fatalf("render missing component:\n%s", out)
	}
	if _, err := Table1(0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestHeadlineFactor(t *testing.T) {
	// Small-trial version of the §8 computation; the shape requirement is
	// an improvement factor around 4.
	rows, err := Table4(3, 6000)
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	h, err := Headline(rows)
	if err != nil {
		t.Fatalf("Headline: %v", err)
	}
	if h.Factor < 3.0 || h.Factor > 5.5 {
		t.Fatalf("improvement factor = %.2f, want ~4", h.Factor)
	}
	out := RenderHeadline(h)
	if !strings.Contains(out, "factor") {
		t.Fatalf("render:\n%s", out)
	}
	if _, err := Headline(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestRenderRows(t *testing.T) {
	rows, err := Table2(2, 7000)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRows(rows, "Table 2")
	for _, want := range []string{"Table 2", "I/perfect", "II/perfect", "paper 24.75"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigures(t *testing.T) {
	out, err := Figures()
	if err != nil {
		t.Fatalf("Figures: %v", err)
	}
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"pbcom", "fedrcom"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figures missing %q", want)
		}
	}
	f1 := Figure1()
	for _, want := range []string{"mbus", "FD", "REC", "dedicated"} {
		if !strings.Contains(f1, want) {
			t.Fatalf("figure 1 missing %q", want)
		}
	}
	t3 := Table3()
	for _, want := range []string{"depth augmentation", "group consolidation", "node promotion",
		"A_cure", "f_A + f_B"} {
		if !strings.Contains(t3, want) {
			t.Fatalf("table 3 missing %q", want)
		}
	}
}

func TestCellLabel(t *testing.T) {
	if l := (Cell{Tree: "IV", Policy: mercury.PolicyFaulty}).Label(); l != "IV/faulty" {
		t.Fatalf("label = %q", l)
	}
	if l := (Cell{Tree: "II", Policy: mercury.PolicyPerfect}).Label(); l != "II/perfect" {
		t.Fatalf("label = %q", l)
	}
	if l := (Cell{Tree: "II", Policy: mercury.PolicyLearning}).Label(); l != "II/learning" {
		t.Fatalf("label = %q", l)
	}
}

func TestCureForCell(t *testing.T) {
	if c := cureForCell("IV/faulty", "pbcom"); len(c) != 2 {
		t.Fatalf("cure = %v", c)
	}
	if c := cureForCell("IV/perfect", "pbcom"); c != nil {
		t.Fatalf("cure = %v", c)
	}
	if c := cureForCell("IV/faulty", "rtu"); c != nil {
		t.Fatalf("cure = %v", c)
	}
}

func TestTable2MatchesTable4Rows(t *testing.T) {
	// Table 2 now measures only trees I and II; its rows must still be
	// identical to the corresponding Table 4 rows for the same seed.
	t2, err := Table2(2, 9000)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	t4, err := Table4(2, 9000)
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if len(t2) != 2 {
		t.Fatalf("Table2 rows = %d", len(t2))
	}
	for i, row := range t2 {
		want := t4[i]
		if row.Label != want.Label {
			t.Fatalf("row %d label %q vs %q", i, row.Label, want.Label)
		}
		if len(row.Cells) != len(want.Cells) {
			t.Fatalf("row %s cell count %d vs %d", row.Label, len(row.Cells), len(want.Cells))
		}
		for comp, s := range row.Cells {
			w, ok := want.Cells[comp]
			if !ok {
				t.Fatalf("row %s: Table4 missing %s", row.Label, comp)
			}
			if s.MeanSeconds() != w.MeanSeconds() || s.N() != w.N() {
				t.Fatalf("row %s %s: Table2 %.6f/%d vs Table4 %.6f/%d",
					row.Label, comp, s.MeanSeconds(), s.N(), w.MeanSeconds(), w.N())
			}
		}
	}
}

func TestParallelCellBitIdenticalToSequential(t *testing.T) {
	cell := Cell{Tree: "IV", Policy: mercury.PolicyPerfect, Component: "ses"}
	seq, err := RunCellCfg(context.Background(), cell, RunConfig{Trials: 6, BaseSeed: 12_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCellCfg(context.Background(), cell, RunConfig{Trials: 6, BaseSeed: 12_000, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.MeanSeconds() != par.MeanSeconds() || seq.StdDev() != par.StdDev() ||
		seq.Min() != par.Min() || seq.Max() != par.Max() {
		t.Fatalf("parallel cell diverged: %v/%v vs %v/%v",
			seq.MeanSeconds(), seq.StdDev(), par.MeanSeconds(), par.StdDev())
	}
}

func TestSoaksMatchesSoak(t *testing.T) {
	many, err := Soaks(context.Background(), []string{"I", "IV"}, time.Hour, 1002, 2)
	if err != nil {
		t.Fatalf("Soaks: %v", err)
	}
	for i, tree := range []string{"I", "IV"} {
		one, err := Soak(tree, time.Hour, 1002)
		if err != nil {
			t.Fatalf("Soak %s: %v", tree, err)
		}
		if many[i].Availability != one.Availability || many[i].Failures != one.Failures {
			t.Fatalf("tree %s: parallel soak diverged: %+v vs %+v", tree, many[i], one)
		}
	}
}

func TestSatPassesMatchesSatPass(t *testing.T) {
	many, err := SatPasses(context.Background(), []string{"I", "IV"}, 901, 2)
	if err != nil {
		t.Fatalf("SatPasses: %v", err)
	}
	for i, tree := range []string{"I", "IV"} {
		one, err := SatPass(tree, 901)
		if err != nil {
			t.Fatalf("SatPass %s: %v", tree, err)
		}
		if many[i].Recovery != one.Recovery || many[i].CollectedKb != one.CollectedKb {
			t.Fatalf("tree %s: parallel pass diverged", tree)
		}
	}
}

func TestDeterministicCells(t *testing.T) {
	run := func() float64 {
		s, err := RunCell(Cell{Tree: "IV", Policy: mercury.PolicyPerfect, Component: "str"}, 3, 8000)
		if err != nil {
			t.Fatal(err)
		}
		return s.MeanSeconds()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different cell means: %v vs %v", a, b)
	}
}
