package experiment

// Golden-value determinism gate for the kernel optimization work: the fully
// rendered Table 2 and Table 4 must stay byte-identical across kernel and
// bus internals changes for a fixed seed. The golden files were generated
// from the pre-optimization (container/heap, time.Time, closure-routing)
// kernel; run with -update only when an intentional behaviour change is
// being made, and say so in the commit.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s output diverged from golden:\n--- golden\n%s\n--- got\n%s", name, want, got)
	}
}

func TestTable2Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table2Cfg(context.Background(), RunConfig{Trials: 3, BaseSeed: 2002})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table2.golden",
		RenderRows(rows, "Table 2 — tree II recovery: detection + recovery time (s)"))
}

func TestTable4Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table4Cfg(context.Background(), RunConfig{Trials: 3, BaseSeed: 2002})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table4.golden",
		RenderRows(rows, "Table 4 — overall MTTRs (s); rows are tree/oracle, columns failed components"))
}
