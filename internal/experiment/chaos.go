package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/runner"
	"github.com/recursive-restart/mercury/internal/trace"
)

// This file measures the system on a *degraded* network — the failure
// model the paper leaves out. The bus chaos layer drops, duplicates and
// jitters frames per hop; the sweep crosses per-hop loss rate × restart
// tree × the FD's SuspectAfter threshold and reports, per cell:
//
//   - availability over a fault-free horizon (all downtime is therefore
//     self-inflicted: false-positive restarts under A_entire),
//   - false-positive restart actions per trial over that horizon,
//   - detection latency and recovery for one real injected fault, under
//     the same chaos.
//
// Trials fan out on the runner and fold in seed order, so a parallel
// campaign is byte-identical to a sequential one.

// ChaosConfig parameterises the degraded-network sweep.
type ChaosConfig struct {
	// Trees are the restart trees to measure (e.g. "I", "IV").
	Trees []string
	// LossRates are per-hop frame-loss probabilities to sweep.
	LossRates []float64
	// SuspectAfter are the FD K-consecutive-miss thresholds to sweep.
	SuspectAfter []int
	// Trials per cell; Horizon is the fault-free observation window.
	Trials  int
	Horizon time.Duration
	// Jitter is the max extra per-hop latency (uniform 0..Jitter) and
	// Dup the per-hop duplication probability, both fixed across cells.
	Jitter time.Duration
	Dup    float64
	// Backoff/BackoffMax configure REC's restart-storm damping for every
	// cell (zero disables).
	Backoff    time.Duration
	BackoffMax time.Duration

	BaseSeed int64
	// Workers bounds the trial pool; <= 0 means one per CPU.
	Workers int
}

// DefaultChaosConfig is the EXPERIMENTS.md "Degraded network" setup.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Trees:        []string{"I", "IV"},
		LossRates:    []float64{0, 0.02, 0.05, 0.10, 0.20},
		SuspectAfter: []int{1, 3},
		Trials:       20,
		Horizon:      2 * time.Minute,
		Jitter:       2 * time.Millisecond,
		Dup:          0.01,
		Backoff:      250 * time.Millisecond,
		BackoffMax:   2 * time.Second,
		BaseSeed:     2002,
	}
}

// ChaosSpec identifies one cell of the sweep.
type ChaosSpec struct {
	Tree         string
	Loss         float64
	SuspectAfter int
}

// PingLoss converts a per-hop loss rate into the probability that one FD
// liveness probe fails: ping and pong each cross two hops (FD → broker →
// target and back), and a duplicated frame survives if either copy does.
// This is the loss rate the detector actually experiences.
func PingLoss(loss, dup float64) float64 {
	effHop := loss * (1 - dup*(1-loss)) // dup rescues a drop iff the twin survives
	deliver := 1 - effHop
	return 1 - deliver*deliver*deliver*deliver
}

// ChaosCellResult aggregates one cell's trials.
type ChaosCellResult struct {
	ChaosSpec
	Trials int
	// Availability is the mean fraction of the fault-free horizon with
	// every component serving (A_entire; all downtime is self-inflicted).
	Availability float64
	// FalseRestarts is the mean number of component restarts during the
	// fault-free horizon — every one a false positive. Counted per
	// component incarnation, so an escalated whole-station restart weighs
	// its full cost; FalseActions counts REC's restart decisions.
	FalseRestarts float64
	FalseActions  float64
	// GiveUps counts components abandoned across all trials.
	GiveUps int
	// Detected counts trials whose injected fault was detected; Detect
	// samples the fault → FailureDetected latency over those.
	Detected int
	Detect   metrics.Sample
	// Recovered counts trials whose injected fault fully recovered;
	// Recovery samples the recovery time over those.
	Recovered int
	Recovery  metrics.Sample
}

// chaosTrial is one trial's raw measurements.
type chaosTrial struct {
	falseRestarts int // component restarts during the fault-free horizon
	falseActions  int // REC restart decisions during the same window
	downtime      time.Duration
	giveUps       int
	detected      bool
	detect        time.Duration
	recovered     bool
	recovery      time.Duration
}

// chaosTarget picks the real-fault victim: the front end, the paper's
// dominant failure source.
func chaosTarget(tree string) string {
	if tree == "I" || tree == "II" {
		return "fedrcom"
	}
	return "fedr"
}

// runChaosTrial is the pure (spec, seed) → result trial: build a fresh
// station, boot it clean, degrade the fabric, observe a fault-free
// horizon, then inject one real fault and time its detection/recovery.
func runChaosTrial(cfg ChaosConfig, spec ChaosSpec, seed int64) (chaosTrial, error) {
	fdp := core.DefaultFDParams()
	fdp.SuspectAfter = spec.SuspectAfter
	recp := core.DefaultRECParams()
	recp.RestartBackoff = cfg.Backoff
	recp.RestartBackoffMax = cfg.BackoffMax

	sys, err := mercury.NewSystem(mercury.Config{
		Seed:      seed,
		TreeName:  spec.Tree,
		Policy:    mercury.PolicyEscalating,
		FDParams:  &fdp,
		RECParams: &recp,
	})
	if err != nil {
		return chaosTrial{}, err
	}
	if err := sys.Boot(); err != nil {
		return chaosTrial{}, fmt.Errorf("boot: %w", err)
	}

	var (
		res        chaosTrial
		faultFree  = true
		down       bool
		downAt     time.Time
		injected   bool
		injectedAt time.Time
		target     = chaosTarget(spec.Tree)
	)
	sys.Log.Subscribe(func(e trace.Event) {
		switch e.Kind {
		case trace.ComponentDown, trace.ComponentKilled:
			if !down {
				down = true
				downAt = e.At
			}
		case trace.SystemRecovered:
			if down {
				down = false
				if faultFree {
					res.downtime += e.At.Sub(downAt)
				}
			}
		case trace.RestartRequested:
			if faultFree {
				res.falseActions++
			}
		case trace.GiveUp:
			res.giveUps++
		case trace.FailureDetected:
			if injected && !res.detected && e.Component == target {
				res.detected = true
				res.detect = e.At.Sub(injectedAt)
			}
		}
	})

	// Phase 1 — degraded but fault-free: every restart is a false positive.
	profile := &bus.ChaosProfile{Loss: spec.Loss, Dup: cfg.Dup}
	if cfg.Jitter > 0 {
		profile.Jitter = fault.Uniform{Lo: 0, Hi: cfg.Jitter}
	}
	if err := sys.SetChaos(profile); err != nil {
		return chaosTrial{}, err
	}
	if err := sys.RunFor(cfg.Horizon); err != nil {
		return chaosTrial{}, err
	}
	if down {
		// Close the open downtime span at the horizon boundary; anything
		// after it belongs to the injected-fault phase.
		res.downtime += sys.Now().Sub(downAt)
		downAt = sys.Now()
	}
	for _, c := range sys.Components() {
		n, err := sys.Mgr.Restarts(c)
		if err != nil {
			return chaosTrial{}, err
		}
		res.falseRestarts += n
	}
	faultFree = false

	// Phase 2 — one real fault under the same chaos.
	injectedAt = sys.Now()
	injected = true
	d, err := sys.MeasureRecovery(mercury.Fault{Component: target}, 2*time.Minute)
	switch {
	case err == nil:
		res.recovered = true
		res.recovery = d
	case errors.Is(err, mercury.ErrNoRecovery):
		// A K=1 storm can abandon the target before (or after) injection;
		// that is the measurement, not an error.
	default:
		return chaosTrial{}, err
	}
	return res, nil
}

// RunChaosCell measures one cell of the sweep over cfg.Trials trials.
func RunChaosCell(ctx context.Context, cfg ChaosConfig, spec ChaosSpec) (*ChaosCellResult, error) {
	trials, err := runner.Run(ctx,
		runner.Config{Workers: cfg.Workers, BaseSeed: cfg.BaseSeed, Stride: runner.DefaultStride},
		cfg.Trials,
		func(_ context.Context, i int, seed int64) (chaosTrial, error) {
			tr, err := runChaosTrial(cfg, spec, seed)
			if err != nil {
				return chaosTrial{}, fmt.Errorf("chaos %s/loss=%.2f/k=%d trial %d: %w",
					spec.Tree, spec.Loss, spec.SuspectAfter, i, err)
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	res := &ChaosCellResult{ChaosSpec: spec, Trials: len(trials)}
	availSum := 0.0
	for _, tr := range trials {
		availSum += 1 - tr.downtime.Seconds()/cfg.Horizon.Seconds()
		res.FalseRestarts += float64(tr.falseRestarts)
		res.FalseActions += float64(tr.falseActions)
		res.GiveUps += tr.giveUps
		if tr.detected {
			res.Detected++
			res.Detect.Add(tr.detect)
		}
		if tr.recovered {
			res.Recovered++
			res.Recovery.Add(tr.recovery)
		}
	}
	if n := float64(len(trials)); n > 0 {
		res.Availability = availSum / n
		res.FalseRestarts /= n
		res.FalseActions /= n
	}
	return res, nil
}

// ChaosSweep measures the full grid in deterministic cell order
// (tree, then loss rate, then SuspectAfter). Every cell reuses the same
// per-trial seeds, so cells are paired comparisons.
func ChaosSweep(ctx context.Context, cfg ChaosConfig) ([]*ChaosCellResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiment: non-positive chaos trial count")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("experiment: non-positive chaos horizon")
	}
	var out []*ChaosCellResult
	for _, tree := range cfg.Trees {
		for _, loss := range cfg.LossRates {
			for _, k := range cfg.SuspectAfter {
				cell, err := RunChaosCell(ctx, cfg, ChaosSpec{Tree: tree, Loss: loss, SuspectAfter: k})
				if err != nil {
					return nil, err
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}

// RenderChaos formats the sweep as the availability-vs-loss table.
func RenderChaos(cfg ChaosConfig, cells []*ChaosCellResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Degraded network — availability vs per-hop loss (%d trials/cell, %v fault-free horizon, dup %.0f%%, jitter ≤%v)\n",
		cfg.Trials, cfg.Horizon, cfg.Dup*100, cfg.Jitter)
	fmt.Fprintf(&sb, "%-5s %6s %10s %8s %14s %16s %9s %12s %10s %11s %10s\n",
		"tree", "loss", "ping-loss", "suspect", "availability", "false-restarts", "give-ups", "detect-mean", "detected", "recovered", "recovery")
	for _, c := range cells {
		detect := "—"
		if c.Detect.N() > 0 {
			detect = fmt.Sprintf("%.2fs", c.Detect.MeanSeconds())
		}
		recovery := "—"
		if c.Recovery.N() > 0 {
			recovery = fmt.Sprintf("%.2fs", c.Recovery.MeanSeconds())
		}
		fmt.Fprintf(&sb, "%-5s %5.0f%% %9.1f%% %8d %14.4f %16.2f %9d %12s %7d/%d %8d/%d %10s\n",
			c.Tree, c.Loss*100, PingLoss(c.Loss, cfg.Dup)*100, c.SuspectAfter, c.Availability,
			c.FalseRestarts, c.GiveUps, detect, c.Detected, c.Trials, c.Recovered, c.Trials, recovery)
	}
	sb.WriteString("ping-loss = probability one FD probe round trip (4 lossy hops) fails; " +
		"false-restarts = component restarts per trial with no fault injected; " +
		"detect/recovery measure one real front-end fault under the same chaos\n")
	return sb.String()
}
