package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/bus"
	"github.com/recursive-restart/mercury/internal/core"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/runner"
	"github.com/recursive-restart/mercury/internal/trace"
)

// This file measures what the crash-only decomposition buys: for a
// ses/str-class fault under a lossy fabric, it compares three recovery
// granularities —
//
//	microreboot  tree IIIm: the fault hits one subcomponent (ses.cache,
//	             str.track); the container self-reports it and REC
//	             microreboots just that sub, state reattached from the
//	             crash-only store;
//	process      tree III: the same logical fault costs a full process
//	             restart, and the ses↔str resync artifact co-crashes the
//	             peer (the paper's induced correlated failure);
//	group        tree IV: the paper's own mitigation — consolidate ses+str
//	             into one group so both always restart together.
//
// Per (mode, class) cell it reports single-fault MTTR, how many times the
// *peer* component was restarted as collateral, and availability over a
// horizon of repeated faults. Cells share per-trial seeds, so the
// comparison is paired.

// MicroConfig parameterises the microreboot-vs-restart comparison.
type MicroConfig struct {
	// Trials per (mode, class) cell.
	Trials int
	// Loss/Dup/Jitter degrade the fabric for every phase (chaos is
	// installed after boot).
	Loss   float64
	Dup    float64
	Jitter time.Duration
	// SuspectAfter is the FD K-consecutive-miss threshold. The default (3)
	// suppresses false-positive storms so the comparison isolates the
	// *injected* fault's recovery cost (the chaos sweep covers storms).
	SuspectAfter int
	// Faults and Gap shape the availability phase: Faults repeated
	// injections separated by Gap of healthy operation.
	Faults int
	Gap    time.Duration

	BaseSeed int64
	// Workers bounds the trial pool; <= 0 means one per CPU.
	Workers int
}

// DefaultMicroConfig is the EXPERIMENTS.md "Microreboot" setup.
func DefaultMicroConfig() MicroConfig {
	return MicroConfig{
		Trials:       20,
		Loss:         0.02,
		Dup:          0.01,
		Jitter:       2 * time.Millisecond,
		SuspectAfter: 3,
		Faults:       4,
		Gap:          10 * time.Second,
		BaseSeed:     2002,
	}
}

// MicroModes returns the three recovery granularities in report order.
func MicroModes() []MicroMode {
	return []MicroMode{
		{Name: "microreboot", Tree: "IIIm"},
		{Name: "process", Tree: "III"},
		{Name: "group", Tree: "IV"},
	}
}

// MicroMode is one recovery granularity.
type MicroMode struct {
	Name string
	Tree string
}

// micro reports whether the mode runs the microrebootable decomposition.
func (m MicroMode) micro() bool { return strings.HasSuffix(m.Tree, "m") }

// MicroClasses returns the fault classes in report order. Target is the
// classic-mode victim component; Sub the micro-mode subcomponent inside
// it; Peer the component that classic recovery damages as collateral.
func MicroClasses() []MicroClass {
	return []MicroClass{
		{Name: "ses-session", Target: "ses", Sub: "ses.cache", Peer: "str"},
		{Name: "str-track", Target: "str", Sub: "str.track", Peer: "ses"},
	}
}

// MicroClass is one fault class.
type MicroClass struct {
	Name   string
	Target string
	Sub    string
	Peer   string
}

// victim returns the injection target for the mode.
func (c MicroClass) victim(m MicroMode) string {
	if m.micro() {
		return c.Sub
	}
	return c.Target
}

// MicroCellResult aggregates one (mode, class) cell.
type MicroCellResult struct {
	Mode  string
	Tree  string
	Class string

	Trials int
	// Recovered counts trials whose single measured fault recovered;
	// MTTR samples the recovery time over those.
	Recovered int
	MTTR      metrics.Sample
	// PeerRestarts is the total number of extra peer incarnations across
	// all single-fault measurements — collateral damage of the recovery.
	PeerRestarts int
	// Availability is the mean fraction of the repeated-fault horizon the
	// station was whole.
	Availability float64
	// GiveUps counts components abandoned across all trials.
	GiveUps int
}

// microTrial is one trial's raw measurements.
type microTrial struct {
	recovered    bool
	mttr         time.Duration
	peerRestarts int
	availability float64
	giveUps      int
}

// runMicroTrial is the pure (mode, class, seed) → result trial.
func runMicroTrial(cfg MicroConfig, mode MicroMode, class MicroClass, seed int64) (microTrial, error) {
	fdp := core.DefaultFDParams()
	if cfg.SuspectAfter > 0 {
		fdp.SuspectAfter = cfg.SuspectAfter
	}
	sys, err := mercury.NewSystem(mercury.Config{
		Seed:     seed,
		TreeName: mode.Tree,
		Policy:   mercury.PolicyEscalating,
		FDParams: &fdp,
	})
	if err != nil {
		return microTrial{}, err
	}
	if err := sys.Boot(); err != nil {
		return microTrial{}, fmt.Errorf("boot: %w", err)
	}

	var (
		res    microTrial
		down   bool
		downAt time.Time
		spans  time.Duration
	)
	sys.Log.Subscribe(func(e trace.Event) {
		switch e.Kind {
		case trace.GiveUp:
			res.giveUps++
		case trace.ComponentDown, trace.ComponentKilled:
			if !down {
				down = true
				downAt = e.At
			}
		case trace.SystemRecovered:
			if down {
				down = false
				spans += e.At.Sub(downAt)
			}
		}
	})

	profile := &bus.ChaosProfile{Loss: cfg.Loss, Dup: cfg.Dup}
	if cfg.Jitter > 0 {
		profile.Jitter = fault.Uniform{Lo: 0, Hi: cfg.Jitter}
	}
	if err := sys.SetChaos(profile); err != nil {
		return microTrial{}, err
	}

	victim := class.victim(mode)

	// Phase 1 — one measured fault: MTTR and peer collateral.
	peerInc, err := sys.Mgr.Incarnation(class.Peer)
	if err != nil {
		return microTrial{}, err
	}
	d, err := sys.MeasureRecovery(mercury.Fault{Component: victim}, 2*time.Minute)
	switch {
	case err == nil:
		res.recovered = true
		res.mttr = d
	case errors.Is(err, mercury.ErrNoRecovery):
		return res, nil // abandoned under chaos: that is the measurement
	default:
		return microTrial{}, err
	}
	after, err := sys.Mgr.Incarnation(class.Peer)
	if err != nil {
		return microTrial{}, err
	}
	res.peerRestarts = after - peerInc

	// Phase 2 — availability over repeated faults with healthy gaps.
	// Downtime is measured as ComponentDown → SystemRecovered spans, so
	// any false-positive restarts the chaos still causes count against
	// availability too (A_entire: the station is whole or it is not).
	start := sys.Now()
	spans = 0
	for i := 0; i < cfg.Faults; i++ {
		if _, err := sys.MeasureRecovery(mercury.Fault{Component: victim}, 2*time.Minute); err != nil {
			if errors.Is(err, mercury.ErrNoRecovery) {
				break
			}
			return microTrial{}, err
		}
		if err := sys.RunFor(cfg.Gap); err != nil {
			return microTrial{}, err
		}
	}
	if down {
		spans += sys.Now().Sub(downAt)
	}
	if total := sys.Now().Sub(start); total > 0 {
		res.availability = 1 - spans.Seconds()/total.Seconds()
	}
	return res, nil
}

// RunMicroCell measures one (mode, class) cell over cfg.Trials trials.
func RunMicroCell(ctx context.Context, cfg MicroConfig, mode MicroMode, class MicroClass) (*MicroCellResult, error) {
	trials, err := runner.Run(ctx,
		runner.Config{Workers: cfg.Workers, BaseSeed: cfg.BaseSeed, Stride: runner.DefaultStride},
		cfg.Trials,
		func(_ context.Context, i int, seed int64) (microTrial, error) {
			tr, err := runMicroTrial(cfg, mode, class, seed)
			if err != nil {
				return microTrial{}, fmt.Errorf("micro %s/%s trial %d: %w", mode.Name, class.Name, i, err)
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	res := &MicroCellResult{Mode: mode.Name, Tree: mode.Tree, Class: class.Name, Trials: len(trials)}
	availSum, availN := 0.0, 0
	for _, tr := range trials {
		if tr.recovered {
			res.Recovered++
			res.MTTR.Add(tr.mttr)
			availSum += tr.availability
			availN++
		}
		res.PeerRestarts += tr.peerRestarts
		res.GiveUps += tr.giveUps
	}
	if availN > 0 {
		res.Availability = availSum / float64(availN)
	}
	return res, nil
}

// MicroSweep measures every (mode, class) cell in deterministic order.
// Cells reuse the same per-trial seeds, so rows are paired comparisons.
func MicroSweep(ctx context.Context, cfg MicroConfig) ([]*MicroCellResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiment: non-positive micro trial count")
	}
	if cfg.Faults < 0 || cfg.Gap < 0 {
		return nil, fmt.Errorf("experiment: negative micro availability phase")
	}
	var out []*MicroCellResult
	for _, class := range MicroClasses() {
		for _, mode := range MicroModes() {
			cell, err := RunMicroCell(ctx, cfg, mode, class)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// RenderMicro formats the sweep as the microreboot-vs-restart table.
func RenderMicro(cfg MicroConfig, cells []*MicroCellResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Microreboot vs restart — ses/str-class faults under %.0f%% loss (%d trials/cell, %d repeated faults + %v gaps)\n",
		cfg.Loss*100, cfg.Trials, cfg.Faults, cfg.Gap)
	fmt.Fprintf(&sb, "%-12s %-12s %-5s %10s %10s %14s %14s %9s\n",
		"class", "mode", "tree", "recovered", "mttr", "peer-restarts", "availability", "give-ups")
	for _, c := range cells {
		mttr := "—"
		if c.MTTR.N() > 0 {
			mttr = fmt.Sprintf("%.2fs", c.MTTR.MeanSeconds())
		}
		fmt.Fprintf(&sb, "%-12s %-12s %-5s %7d/%d %10s %14d %14.4f %9d\n",
			c.Class, c.Mode, c.Tree, c.Recovered, c.Trials, mttr, c.PeerRestarts, c.Availability, c.GiveUps)
	}
	sb.WriteString("mttr = single-fault recovery; peer-restarts = extra incarnations of the *other* " +
		"ses/str component across all measured faults (classic resync co-crashes it; " +
		"microreboot leaves it untouched)\n")
	return sb.String()
}
