package experiment

import (
	"strings"
	"testing"
)

func TestSatPassTreeIVHoldsLink(t *testing.T) {
	o, err := SatPass("IV", 901)
	if err != nil {
		t.Fatalf("SatPass: %v", err)
	}
	if o.LinkBroken {
		t.Fatalf("tree IV broke the link with a %.2fs recovery", o.Recovery.Seconds())
	}
	if o.Recovery.Seconds() > 8 {
		t.Fatalf("tree IV fedr recovery = %.2fs", o.Recovery.Seconds())
	}
	frac := o.CollectedKb / o.AvailableKb
	if frac < 0.9 {
		t.Fatalf("tree IV collected only %.0f%% of the pass data", frac*100)
	}
}

func TestSatPassTreeILosesSession(t *testing.T) {
	o, err := SatPass("I", 902)
	if err != nil {
		t.Fatalf("SatPass: %v", err)
	}
	if !o.LinkBroken {
		t.Fatalf("tree I held the link despite a %.2fs recovery", o.Recovery.Seconds())
	}
	frac := o.CollectedKb / o.AvailableKb
	if frac > 0.7 {
		t.Fatalf("tree I collected %.0f%% despite losing the session", frac*100)
	}
}

func TestSatPassDataAccounting(t *testing.T) {
	o, err := SatPass("IV", 903)
	if err != nil {
		t.Fatal(err)
	}
	if o.CollectedKb <= 0 || o.CollectedKb > o.AvailableKb {
		t.Fatalf("collected %.0f of %.0f kbit", o.CollectedKb, o.AvailableKb)
	}
	if !o.FailureAt.After(o.Pass.AOS) || !o.FailureAt.Before(o.Pass.LOS) {
		t.Fatal("failure not mid-pass")
	}
	out := RenderPassOutcome(o)
	for _, want := range []string{"tree IV", "science data", "recovered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
