package experiment

import (
	"context"
	"fmt"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/orbit"
	"github.com/recursive-restart/mercury/internal/runner"
)

// This file reproduces the paper's §5.2 argument — "not all downtime is
// the same": downtime during a satellite pass costs science data, and if
// recovery takes too long the communication link breaks and the whole
// session is lost. A short MTTR provides high assurance the pass survives
// a failure; a large MTTF alone does not.

// DataRateKbps is Mercury's downlink rate (paper: up to 38.4 kbps).
const DataRateKbps = 38.4

// LinkBreakThreshold is how long the link survives an outage mid-pass
// before the session is unrecoverable (tracking drifts too far, protocol
// state lost). Tree I's ~25 s whole-system recovery exceeds it; tree IV's
// ~6 s partial restarts do not.
const LinkBreakThreshold = 15 * time.Second

// PassOutcome summarises one simulated pass with a mid-pass failure.
type PassOutcome struct {
	Tree        string
	Pass        orbit.Pass
	FailureAt   time.Time
	Recovery    time.Duration
	LinkBroken  bool
	CollectedKb float64
	AvailableKb float64
}

// SatPass boots a station with the given restart tree, waits for the next
// pass of the workload satellite, injects a front-end failure mid-pass
// (the most frequent failure class: fedrcom before the split, fedr after)
// and accounts for the science data.
func SatPass(tree string, seed int64) (*PassOutcome, error) {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed: seed, TreeName: tree, Policy: mercury.PolicyPerfect,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Boot(); err != nil {
		return nil, err
	}

	passes, err := orbit.PredictPasses(sys.Params.Elements, sys.Params.Ground,
		sys.Now(), 24*time.Hour, 10*3.14159/180)
	if err != nil {
		return nil, err
	}
	// Pick the first pass long enough to fail in the middle of.
	var pass *orbit.Pass
	for i := range passes {
		if passes[i].Duration() >= 4*time.Minute {
			pass = &passes[i]
			break
		}
	}
	if pass == nil {
		return nil, fmt.Errorf("experiment: no usable pass within 24h")
	}

	// Run quietly until two minutes into the pass, then fail the front end.
	failAt := pass.AOS.Add(2 * time.Minute)
	if err := sys.Kernel.RunUntil(failAt); err != nil {
		return nil, err
	}
	comp := "fedr"
	if tree == "I" || tree == "II" {
		comp = "fedrcom"
	}
	recovery, err := sys.MeasureRecovery(mercury.Fault{Component: comp}, 5*time.Minute)
	if err != nil {
		return nil, err
	}
	if err := sys.Kernel.RunUntil(pass.LOS); err != nil {
		return nil, err
	}

	out := &PassOutcome{
		Tree:        tree,
		Pass:        *pass,
		FailureAt:   failAt,
		Recovery:    recovery,
		LinkBroken:  recovery > LinkBreakThreshold,
		AvailableKb: DataRateKbps * pass.Duration().Seconds(),
	}
	if out.LinkBroken {
		// Session lost: only the data before the failure was captured.
		out.CollectedKb = DataRateKbps * failAt.Sub(pass.AOS).Seconds()
	} else {
		out.CollectedKb = DataRateKbps * (pass.Duration() - recovery).Seconds()
	}
	return out, nil
}

// SatPasses simulates one pass per tree as independent trials on the
// runner pool, all from the same seed so trees see the same pass and the
// same mid-pass failure instant.
func SatPasses(ctx context.Context, trees []string, seed int64, workers int) ([]*PassOutcome, error) {
	return runner.Run(ctx, runner.Config{Workers: workers, BaseSeed: seed}, len(trees),
		func(_ context.Context, i int, _ int64) (*PassOutcome, error) {
			return SatPass(trees[i], seed)
		})
}

// RenderPassOutcome formats one pass account.
func RenderPassOutcome(o *PassOutcome) string {
	status := "link held"
	if o.LinkBroken {
		status = "LINK BROKEN — remainder of session lost"
	}
	return fmt.Sprintf(
		"tree %-3s pass %s → %s (%.1f min, max el %.0f°)\n"+
			"         failure at +2 min, recovered in %5.2f s — %s\n"+
			"         science data: %.0f of %.0f kbit (%.0f%%)\n",
		o.Tree,
		o.Pass.AOS.Format("15:04:05"), o.Pass.LOS.Format("15:04:05"),
		o.Pass.Duration().Minutes(), o.Pass.MaxEl*180/3.14159,
		o.Recovery.Seconds(), status,
		o.CollectedKb, o.AvailableKb, 100*o.CollectedKb/o.AvailableKb)
}
