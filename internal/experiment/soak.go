package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	mercury "github.com/recursive-restart/mercury"
	"github.com/recursive-restart/mercury/internal/fault"
	"github.com/recursive-restart/mercury/internal/metrics"
	"github.com/recursive-restart/mercury/internal/runner"
	"github.com/recursive-restart/mercury/internal/trace"
)

// This file adds two long-horizon experiments beyond the paper's tables:
//
//   - Soak: organic failures drawn from Table 1's MTTFs drive the station
//     for simulated hours; measured availability = MTTF/(MTTF+MTTR) is the
//     quantity recursive restartability optimises (§3).
//   - FreeRestartMTTF: the paper's §4.4 observation that tree V's "free"
//     fedr restarts rejuvenate fedr and therefore MTTF^V ≥ MTTF^IV, made
//     measurable with an aging (Weibull) failure law.

// SoakResult summarises a long organic-failure run.
type SoakResult struct {
	Tree           string
	Horizon        time.Duration
	Failures       int
	Recoveries     int
	GiveUps        int
	SystemDowntime time.Duration
	Availability   float64
	Recovery       metrics.Sample
}

// Soak runs the station for the given simulated horizon with organic
// failures at the Table 1 rates (extended across the split layout) and
// measures system availability under A_entire: the system is down from
// each failure until every component serves again.
func Soak(tree string, horizon time.Duration, seed int64) (*SoakResult, error) {
	sys, err := mercury.NewSystem(mercury.Config{
		Seed: seed, TreeName: tree, Policy: mercury.PolicyEscalating,
	})
	if err != nil {
		return nil, err
	}

	res := &SoakResult{Tree: tree, Horizon: horizon}
	var (
		down   bool
		downAt time.Time
	)
	sys.Log.Subscribe(func(e trace.Event) {
		switch e.Kind {
		case trace.ComponentDown, trace.ComponentKilled:
			if !down {
				down = true
				downAt = e.At
			}
		case trace.SystemRecovered:
			if down {
				down = false
				d := e.At.Sub(downAt)
				res.SystemDowntime += d
				res.Recovery.Add(d)
				res.Recoveries++
			}
		case trace.GiveUp:
			res.GiveUps++
		}
	})

	if err := sys.Boot(); err != nil {
		return nil, err
	}

	mttf := SplitMTTF
	if tree == "I" || tree == "II" {
		mttf = PaperMTTF
	}
	// Iterate in sorted order: priming draws from the system's RNG, so map
	// iteration order would make the failure schedule non-deterministic.
	comps := make([]string, 0, len(mttf))
	for comp := range mttf {
		comps = append(comps, comp)
	}
	sort.Strings(comps)
	for _, comp := range comps {
		sys.Injector.SetLaw(comp, fault.LogNormal{M: mttf[comp], CV: 0.25})
	}
	sys.Injector.Enable()
	// Components are already serving, so their first organic failures must
	// be primed explicitly (the ready hook only catches future restarts).
	for _, comp := range comps {
		sys.Injector.Prime(comp)
	}

	start := sys.Now()
	if err := sys.Kernel.RunUntil(start.Add(horizon)); err != nil {
		return nil, err
	}
	sys.Injector.Disable()
	res.Failures = sys.Board.Injected()
	if down {
		res.SystemDowntime += sys.Now().Sub(downAt)
	}
	res.Availability = 1 - res.SystemDowntime.Seconds()/horizon.Seconds()
	return res, nil
}

// Soaks runs one soak per tree as independent trials on the runner pool.
// Every tree soaks under the same seed (as the sequential comparisons
// always have), so results are identical to calling Soak per tree.
func Soaks(ctx context.Context, trees []string, horizon time.Duration, seed int64, workers int) ([]*SoakResult, error) {
	return runner.Run(ctx, runner.Config{Workers: workers, BaseSeed: seed}, len(trees),
		func(_ context.Context, i int, _ int64) (*SoakResult, error) {
			return Soak(trees[i], horizon, seed)
		})
}

// RenderSoak formats a soak result.
func RenderSoak(r *SoakResult) string {
	mean := time.Duration(0)
	if r.Recovery.N() > 0 {
		mean = r.Recovery.Mean()
	}
	return fmt.Sprintf(
		"tree %-3s %v horizon: %3d failures, %3d recoveries, %d give-ups\n"+
			"         downtime %v, availability %.4f, mean recovery %.2fs\n",
		r.Tree, r.Horizon, r.Failures, r.Recoveries, r.GiveUps,
		r.SystemDowntime.Round(time.Second), r.Availability, mean.Seconds())
}

// FreeRestartResult compares fedr's achieved MTTF under trees IV and V.
type FreeRestartResult struct {
	Horizon       time.Duration
	FedrFailures  map[string]int // per tree
	PbcomFailures map[string]int
}

// FreeRestartMTTF reproduces the §4.4 rejuvenation observation: fedr ages
// (Weibull shape 3, mean 10 min); pbcom fails deterministically every
// 8 minutes. Under tree V every pbcom restart also restarts fedr for free,
// resetting fedr's age before the rising hazard bites, so fedr suffers
// fewer organic failures than under tree IV — MTTF^V ≥ MTTF^IV.
func FreeRestartMTTF(horizon time.Duration, seed int64) (*FreeRestartResult, error) {
	res := &FreeRestartResult{
		Horizon:       horizon,
		FedrFailures:  make(map[string]int, 2),
		PbcomFailures: make(map[string]int, 2),
	}
	for _, tree := range []string{"IV", "V"} {
		sys, err := mercury.NewSystem(mercury.Config{
			Seed: seed, TreeName: tree, Policy: mercury.PolicyPerfect,
		})
		if err != nil {
			return nil, err
		}
		if err := sys.Boot(); err != nil {
			return nil, err
		}
		sys.Injector.SetLaw("fedr", fault.Weibull{Shape: 3, M: 10 * time.Minute})
		sys.Injector.SetLaw("pbcom", fault.Deterministic{D: 8 * time.Minute})
		sys.Injector.Enable()
		sys.Injector.Prime("fedr")
		sys.Injector.Prime("pbcom")
		if err := sys.Kernel.RunUntil(sys.Now().Add(horizon)); err != nil {
			return nil, err
		}
		sys.Injector.Disable()
		res.FedrFailures[tree] = len(sys.Injector.TTFSamples("fedr"))
		res.PbcomFailures[tree] = len(sys.Injector.TTFSamples("pbcom"))
	}
	return res, nil
}

// RenderFreeRestart formats the MTTF comparison.
func RenderFreeRestart(r *FreeRestartResult) string {
	return fmt.Sprintf(
		"§4.4 free-restart rejuvenation over %v (fedr ages, Weibull k=3 mean 10m):\n"+
			"  tree IV: %d fedr failures (%d pbcom restarts leave fedr aging)\n"+
			"  tree V:  %d fedr failures (%d pbcom restarts rejuvenate fedr)\n"+
			"  MTTF^V >= MTTF^IV, as the paper predicts\n",
		r.Horizon,
		r.FedrFailures["IV"], r.PbcomFailures["IV"],
		r.FedrFailures["V"], r.PbcomFailures["V"])
}
