package experiment

import (
	"strings"
	"testing"
)

func TestOracleQualitySweepShape(t *testing.T) {
	points, err := OracleQualitySweep([]float64{0, 0.5, 1.0}, 8, 5000)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	// Tree IV degrades monotonically (allowing sampling noise).
	if points[2].TreeIV <= points[0].TreeIV+5 {
		t.Fatalf("tree IV not degrading with error rate: %+v", points)
	}
	// Tree V stays flat across the whole range.
	for _, pt := range points {
		if pt.TreeV > points[0].TreeV+3 || pt.TreeV < points[0].TreeV-3 {
			t.Fatalf("tree V not flat: %+v", points)
		}
	}
	// At p=0 the trees are equivalent.
	if d := points[0].TreeIV - points[0].TreeV; d > 3 || d < -3 {
		t.Fatalf("p=0 trees differ by %.2fs", d)
	}
	out := RenderSweep(points)
	if !strings.Contains(out, "tree IV") || !strings.Contains(out, "100%") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestOracleQualitySweepValidation(t *testing.T) {
	if _, err := OracleQualitySweep([]float64{1.5}, 1, 1); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}
