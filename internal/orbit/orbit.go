// Package orbit implements the satellite-estimation substrate behind the
// ses component: Keplerian two-body propagation, Earth-fixed coordinate
// transforms, topocentric look angles for a ground station, Doppler shift,
// and AOS/LOS pass prediction.
//
// The paper's ses "calculates satellite position, radio frequencies, and
// antenna pointing angles" for low-earth-orbit satellites such as Opal and
// Sapphire. This package is the math that workload runs on. Two-body
// propagation (no J2/drag) is accurate enough for the simulated pass
// workload the experiments need.
package orbit

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Physical constants (km, s, rad).
const (
	// MuEarth is Earth's gravitational parameter, km^3/s^2.
	MuEarth = 398600.4418
	// EarthRadius is the mean equatorial radius, km.
	EarthRadius = 6378.137
	// EarthRotationRate is rad/s (sidereal).
	EarthRotationRate = 7.2921158553e-5
	// SpeedOfLight in km/s.
	SpeedOfLight = 299792.458
)

// Vec3 is a 3-vector in km (or km/s for velocities).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Elements is a classical Keplerian element set.
type Elements struct {
	// SemiMajorKm is the semi-major axis a, km.
	SemiMajorKm float64
	// Eccentricity e in [0, 1).
	Eccentricity float64
	// InclinationRad, RAANRad, ArgPerigeeRad are the orientation angles.
	InclinationRad float64
	RAANRad        float64
	ArgPerigeeRad  float64
	// MeanAnomalyRad is the mean anomaly at Epoch.
	MeanAnomalyRad float64
	// Epoch anchors the element set in time.
	Epoch time.Time
}

// Validation errors.
var (
	ErrBadSemiMajor    = errors.New("orbit: semi-major axis must exceed Earth's radius")
	ErrBadEccentricity = errors.New("orbit: eccentricity must be in [0, 1)")
	ErrNoConvergence   = errors.New("orbit: Kepler solver did not converge")
)

// Validate checks the element set describes a bound, non-impacting orbit.
func (el Elements) Validate() error {
	if el.Eccentricity < 0 || el.Eccentricity >= 1 {
		return fmt.Errorf("%w: e=%v", ErrBadEccentricity, el.Eccentricity)
	}
	if el.SemiMajorKm*(1-el.Eccentricity) <= EarthRadius {
		return fmt.Errorf("%w: perigee %.1f km", ErrBadSemiMajor,
			el.SemiMajorKm*(1-el.Eccentricity))
	}
	return nil
}

// MeanMotion returns n in rad/s.
func (el Elements) MeanMotion() float64 {
	return math.Sqrt(MuEarth / (el.SemiMajorKm * el.SemiMajorKm * el.SemiMajorKm))
}

// Period returns the orbital period.
func (el Elements) Period() time.Duration {
	return time.Duration(2 * math.Pi / el.MeanMotion() * float64(time.Second))
}

// SolveKepler solves E - e*sin(E) = M for the eccentric anomaly E using
// Newton iteration. M may be any real; the result is normalised near M.
func SolveKepler(meanAnomaly, e float64) (float64, error) {
	if e < 0 || e >= 1 {
		return 0, ErrBadEccentricity
	}
	// Normalise M into [0, 2pi); the solution for the reduced anomaly is
	// shifted back by the same whole turns at the end.
	reduced := math.Mod(meanAnomaly, 2*math.Pi)
	if reduced < 0 {
		reduced += 2 * math.Pi
	}
	shift := meanAnomaly - reduced

	// f(E) = E - e sin E - M is strictly increasing for e < 1, so the root
	// is bracketed by [M-e, M+e]. Newton with a bisection safeguard
	// converges for all eccentricities.
	lo, hi := reduced-e, reduced+e
	eAnom := reduced
	if e > 0.8 {
		eAnom = math.Pi
	}
	for i := 0; i < 100; i++ {
		f := eAnom - e*math.Sin(eAnom) - reduced
		if math.Abs(f) < 1e-13 {
			return eAnom + shift, nil
		}
		if f > 0 {
			hi = eAnom
		} else {
			lo = eAnom
		}
		fp := 1 - e*math.Cos(eAnom)
		next := eAnom - f/fp
		if next <= lo || next >= hi {
			next = (lo + hi) / 2 // Newton left the bracket; bisect instead
		}
		if math.Abs(next-eAnom) < 1e-14 {
			return next + shift, nil
		}
		eAnom = next
	}
	return 0, ErrNoConvergence
}

// StateECI returns the inertial (ECI) position and velocity at time t.
func (el Elements) StateECI(t time.Time) (pos, vel Vec3, err error) {
	if err := el.Validate(); err != nil {
		return Vec3{}, Vec3{}, err
	}
	n := el.MeanMotion()
	dt := t.Sub(el.Epoch).Seconds()
	meanAnom := math.Mod(el.MeanAnomalyRad+n*dt, 2*math.Pi)
	eAnom, err := SolveKepler(meanAnom, el.Eccentricity)
	if err != nil {
		return Vec3{}, Vec3{}, err
	}
	e := el.Eccentricity
	a := el.SemiMajorKm
	cosE, sinE := math.Cos(eAnom), math.Sin(eAnom)
	// Perifocal coordinates.
	r := a * (1 - e*cosE)
	xp := a * (cosE - e)
	yp := a * math.Sqrt(1-e*e) * sinE
	// Perifocal velocity.
	factor := math.Sqrt(MuEarth*a) / r
	vxp := -factor * sinE
	vyp := factor * math.Sqrt(1-e*e) * cosE

	pos = perifocalToECI(el, Vec3{xp, yp, 0})
	vel = perifocalToECI(el, Vec3{vxp, vyp, 0})
	return pos, vel, nil
}

// perifocalToECI applies the 3-1-3 rotation (RAAN, inclination, argument of
// perigee).
func perifocalToECI(el Elements, p Vec3) Vec3 {
	cO, sO := math.Cos(el.RAANRad), math.Sin(el.RAANRad)
	ci, si := math.Cos(el.InclinationRad), math.Sin(el.InclinationRad)
	cw, sw := math.Cos(el.ArgPerigeeRad), math.Sin(el.ArgPerigeeRad)
	// Rotation matrix rows.
	r11 := cO*cw - sO*sw*ci
	r12 := -cO*sw - sO*cw*ci
	r21 := sO*cw + cO*sw*ci
	r22 := -sO*sw + cO*cw*ci
	r31 := sw * si
	r32 := cw * si
	return Vec3{
		X: r11*p.X + r12*p.Y,
		Y: r21*p.X + r22*p.Y,
		Z: r31*p.X + r32*p.Y,
	}
}

// GMST returns the Greenwich mean sidereal time angle (radians) at t,
// using the standard linear approximation from the J2000 epoch.
func GMST(t time.Time) float64 {
	j2000 := time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC)
	days := t.Sub(j2000).Seconds() / 86400
	deg := 280.46061837 + 360.98564736629*days
	rad := deg * math.Pi / 180
	rad = math.Mod(rad, 2*math.Pi)
	if rad < 0 {
		rad += 2 * math.Pi
	}
	return rad
}

// ECIToECEF rotates an inertial vector into the Earth-fixed frame at t.
func ECIToECEF(p Vec3, t time.Time) Vec3 {
	theta := GMST(t)
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{
		X: c*p.X + s*p.Y,
		Y: -s*p.X + c*p.Y,
		Z: p.Z,
	}
}

// Station is a ground-station location.
type Station struct {
	// LatitudeRad, LongitudeRad are geodetic (spherical-Earth model).
	LatitudeRad  float64
	LongitudeRad float64
	// AltitudeKm above the reference sphere.
	AltitudeKm float64
}

// ECEF returns the station position in the Earth-fixed frame.
func (s Station) ECEF() Vec3 {
	r := EarthRadius + s.AltitudeKm
	clat, slat := math.Cos(s.LatitudeRad), math.Sin(s.LatitudeRad)
	clon, slon := math.Cos(s.LongitudeRad), math.Sin(s.LongitudeRad)
	return Vec3{
		X: r * clat * clon,
		Y: r * clat * slon,
		Z: r * slat,
	}
}

// Look is a topocentric observation of the satellite from the station.
type Look struct {
	// AzimuthRad clockwise from north, [0, 2pi).
	AzimuthRad float64
	// ElevationRad above the horizon, [-pi/2, pi/2].
	ElevationRad float64
	// RangeKm is the slant range.
	RangeKm float64
	// RangeRateKmS is d(range)/dt; negative while approaching.
	RangeRateKmS float64
}

// AzimuthDeg returns azimuth in degrees.
func (l Look) AzimuthDeg() float64 { return l.AzimuthRad * 180 / math.Pi }

// ElevationDeg returns elevation in degrees.
func (l Look) ElevationDeg() float64 { return l.ElevationRad * 180 / math.Pi }

// DopplerHz returns the received-frequency offset for a carrier at freqHz.
func (l Look) DopplerHz(freqHz float64) float64 {
	return -l.RangeRateKmS / SpeedOfLight * freqHz
}

// LookAt computes the look angles from the station to the satellite at t.
func LookAt(el Elements, st Station, t time.Time) (Look, error) {
	look, err := lookInstant(el, st, t)
	if err != nil {
		return Look{}, err
	}
	// Range rate by symmetric numerical differentiation.
	const h = 500 * time.Millisecond
	before, err := lookInstant(el, st, t.Add(-h))
	if err != nil {
		return Look{}, err
	}
	after, err := lookInstant(el, st, t.Add(h))
	if err != nil {
		return Look{}, err
	}
	look.RangeRateKmS = (after.RangeKm - before.RangeKm) / (2 * h.Seconds())
	return look, nil
}

func lookInstant(el Elements, st Station, t time.Time) (Look, error) {
	posECI, _, err := el.StateECI(t)
	if err != nil {
		return Look{}, err
	}
	satECEF := ECIToECEF(posECI, t)
	staECEF := st.ECEF()
	rho := satECEF.Sub(staECEF)

	// Rotate the range vector into the local ENU (east-north-up) frame.
	clat, slat := math.Cos(st.LatitudeRad), math.Sin(st.LatitudeRad)
	clon, slon := math.Cos(st.LongitudeRad), math.Sin(st.LongitudeRad)
	east := -slon*rho.X + clon*rho.Y
	north := -slat*clon*rho.X - slat*slon*rho.Y + clat*rho.Z
	up := clat*clon*rho.X + clat*slon*rho.Y + slat*rho.Z

	rng := rho.Norm()
	az := math.Atan2(east, north)
	if az < 0 {
		az += 2 * math.Pi
	}
	elv := math.Asin(up / rng)
	return Look{AzimuthRad: az, ElevationRad: elv, RangeKm: rng}, nil
}

// Pass is one visibility window of the satellite over the station.
type Pass struct {
	AOS   time.Time // acquisition of signal (elevation crosses MinElevation upward)
	LOS   time.Time // loss of signal
	MaxEl float64   // maximum elevation, radians
	MaxAt time.Time // time of maximum elevation
}

// Duration returns LOS - AOS.
func (p Pass) Duration() time.Duration { return p.LOS.Sub(p.AOS) }

// PredictPasses scans [from, from+window] for passes where elevation
// exceeds minElevationRad, refining AOS/LOS by bisection to within one
// second. The scan step bounds the shortest detectable pass at ~30 s,
// adequate for LEO.
func PredictPasses(el Elements, st Station, from time.Time, window time.Duration, minElevationRad float64) ([]Pass, error) {
	if err := el.Validate(); err != nil {
		return nil, err
	}
	const step = 30 * time.Second
	above := func(t time.Time) (bool, error) {
		l, err := lookInstant(el, st, t)
		if err != nil {
			return false, err
		}
		return l.ElevationRad > minElevationRad, nil
	}

	var passes []Pass
	end := from.Add(window)
	prev, err := above(from)
	if err != nil {
		return nil, err
	}
	var aos time.Time
	inPass := prev
	if inPass {
		aos = from
	}
	for t := from.Add(step); !t.After(end); t = t.Add(step) {
		cur, err := above(t)
		if err != nil {
			return nil, err
		}
		switch {
		case cur && !inPass:
			at, err := bisect(el, st, t.Add(-step), t, minElevationRad, true)
			if err != nil {
				return nil, err
			}
			aos = at
			inPass = true
		case !cur && inPass:
			los, err := bisect(el, st, t.Add(-step), t, minElevationRad, false)
			if err != nil {
				return nil, err
			}
			p, err := finishPass(el, st, aos, los)
			if err != nil {
				return nil, err
			}
			passes = append(passes, p)
			inPass = false
		}
	}
	if inPass {
		p, err := finishPass(el, st, aos, end)
		if err != nil {
			return nil, err
		}
		passes = append(passes, p)
	}
	return passes, nil
}

// bisect finds the elevation threshold crossing inside (lo, hi]. rising
// selects the upward crossing.
func bisect(el Elements, st Station, lo, hi time.Time, threshold float64, rising bool) (time.Time, error) {
	for hi.Sub(lo) > time.Second {
		mid := lo.Add(hi.Sub(lo) / 2)
		l, err := lookInstant(el, st, mid)
		if err != nil {
			return time.Time{}, err
		}
		above := l.ElevationRad > threshold
		if above == rising {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// finishPass samples the window for the maximum elevation.
func finishPass(el Elements, st Station, aos, los time.Time) (Pass, error) {
	p := Pass{AOS: aos, LOS: los, MaxAt: aos}
	n := int(los.Sub(aos)/(5*time.Second)) + 1
	for i := 0; i <= n; i++ {
		t := aos.Add(time.Duration(i) * los.Sub(aos) / time.Duration(n+1))
		l, err := lookInstant(el, st, t)
		if err != nil {
			return Pass{}, err
		}
		if l.ElevationRad > p.MaxEl {
			p.MaxEl = l.ElevationRad
			p.MaxAt = t
		}
	}
	return p, nil
}

// SSOElements returns a Sapphire/Opal-like sun-synchronous LEO element set
// anchored at epoch: ~800 km circular at 98.6° inclination. Experiments
// and examples use this as the default workload satellite.
func SSOElements(epoch time.Time) Elements {
	return Elements{
		SemiMajorKm:    EarthRadius + 795,
		Eccentricity:   0.0012,
		InclinationRad: 98.6 * math.Pi / 180,
		RAANRad:        1.2,
		ArgPerigeeRad:  0.4,
		MeanAnomalyRad: 0.0,
		Epoch:          epoch,
	}
}

// StanfordStation returns the Mercury ground station's approximate
// location (Stanford, CA).
func StanfordStation() Station {
	return Station{
		LatitudeRad:  37.4275 * math.Pi / 180,
		LongitudeRad: -122.1697 * math.Pi / 180,
		AltitudeKm:   0.03,
	}
}
