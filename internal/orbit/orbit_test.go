package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)

func TestSolveKeplerResidual(t *testing.T) {
	for _, e := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99} {
		for m := -6.0; m < 6.0; m += 0.37 {
			eAnom, err := SolveKepler(m, e)
			if err != nil {
				t.Fatalf("SolveKepler(M=%v, e=%v): %v", m, e, err)
			}
			if res := eAnom - e*math.Sin(eAnom) - m; math.Abs(res) > 1e-9 {
				t.Fatalf("residual %v for M=%v e=%v", res, m, e)
			}
		}
	}
}

func TestSolveKeplerRejectsBadEccentricity(t *testing.T) {
	if _, err := SolveKepler(1, 1.0); err == nil {
		t.Fatal("e=1 accepted")
	}
	if _, err := SolveKepler(1, -0.1); err == nil {
		t.Fatal("e<0 accepted")
	}
}

func TestCircularOrbitRadiusConstant(t *testing.T) {
	el := Elements{
		SemiMajorKm:    EarthRadius + 700,
		Eccentricity:   0,
		InclinationRad: 0.9,
		Epoch:          epoch,
	}
	for i := 0; i < 20; i++ {
		pos, _, err := el.StateECI(epoch.Add(time.Duration(i) * 7 * time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if r := pos.Norm(); math.Abs(r-el.SemiMajorKm) > 1e-6 {
			t.Fatalf("circular orbit radius %v, want %v", r, el.SemiMajorKm)
		}
	}
}

func TestVisVivaEnergyConserved(t *testing.T) {
	el := Elements{
		SemiMajorKm:    EarthRadius + 800,
		Eccentricity:   0.1,
		InclinationRad: 1.1,
		RAANRad:        0.5,
		ArgPerigeeRad:  0.3,
		Epoch:          epoch,
	}
	// Specific orbital energy must equal -mu/2a everywhere.
	want := -MuEarth / (2 * el.SemiMajorKm)
	for i := 0; i < 30; i++ {
		at := epoch.Add(time.Duration(i) * 3 * time.Minute)
		pos, vel, err := el.StateECI(at)
		if err != nil {
			t.Fatal(err)
		}
		got := vel.Dot(vel)/2 - MuEarth/pos.Norm()
		if math.Abs(got-want)/math.Abs(want) > 1e-9 {
			t.Fatalf("energy %v, want %v at %v", got, want, at)
		}
	}
}

func TestPeriodMatchesReturnToStart(t *testing.T) {
	el := SSOElements(epoch)
	p0, _, err := el.StateECI(epoch)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := el.StateECI(epoch.Add(el.Period()))
	if err != nil {
		t.Fatal(err)
	}
	if d := p1.Sub(p0).Norm(); d > 1.0 {
		t.Fatalf("position after one period differs by %v km", d)
	}
}

func TestValidate(t *testing.T) {
	bad := Elements{SemiMajorKm: 100, Epoch: epoch}
	if err := bad.Validate(); err == nil {
		t.Fatal("sub-surface orbit accepted")
	}
	bad = Elements{SemiMajorKm: EarthRadius + 700, Eccentricity: 1.2, Epoch: epoch}
	if err := bad.Validate(); err == nil {
		t.Fatal("hyperbolic orbit accepted")
	}
	if _, _, err := bad.StateECI(epoch); err == nil {
		t.Fatal("StateECI accepted bad elements")
	}
}

func TestGMSTAdvancesOneRotationPerSiderealDay(t *testing.T) {
	t0 := epoch
	sidereal := time.Duration(86164.0905 * float64(time.Second))
	g0 := GMST(t0)
	g1 := GMST(t0.Add(sidereal))
	diff := math.Mod(g1-g0+4*math.Pi, 2*math.Pi)
	if diff > 1e-3 && diff < 2*math.Pi-1e-3 {
		t.Fatalf("GMST advanced %v rad over a sidereal day", diff)
	}
}

func TestLookAtGeostationaryIsFixed(t *testing.T) {
	// A geostationary satellite over the station's longitude should sit at
	// a nearly constant look angle.
	st := StanfordStation()
	el := Elements{
		SemiMajorKm:    42164,
		Eccentricity:   0,
		InclinationRad: 0,
		RAANRad:        0,
		ArgPerigeeRad:  0,
		// Choose the mean anomaly so the satellite sits near the station's
		// meridian at epoch: ECI angle = GMST + longitude.
		MeanAnomalyRad: math.Mod(GMST(epoch)+st.LongitudeRad+2*math.Pi, 2*math.Pi),
		Epoch:          epoch,
	}
	l0, err := LookAt(el, st, epoch)
	if err != nil {
		t.Fatal(err)
	}
	l6, err := LookAt(el, st, epoch.Add(6*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l0.ElevationDeg()-l6.ElevationDeg()) > 1.0 {
		t.Fatalf("GEO elevation drifted: %v vs %v deg", l0.ElevationDeg(), l6.ElevationDeg())
	}
	if math.Abs(l0.AzimuthDeg()-180) > 10 {
		t.Fatalf("GEO over own meridian should be ~south: az %v deg", l0.AzimuthDeg())
	}
	if math.Abs(l0.RangeRateKmS) > 0.05 {
		t.Fatalf("GEO range rate %v km/s, want ~0", l0.RangeRateKmS)
	}
}

func TestLEOPassesExist(t *testing.T) {
	el := SSOElements(epoch)
	st := StanfordStation()
	passes, err := PredictPasses(el, st, epoch, 48*time.Hour, 5*math.Pi/180)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) < 2 {
		t.Fatalf("expected several passes over 48h, got %d", len(passes))
	}
	for _, p := range passes {
		if !p.LOS.After(p.AOS) {
			t.Fatalf("pass with LOS <= AOS: %+v", p)
		}
		// Grazing passes can be under a minute; anything longer than ~25
		// minutes is impossible for LEO.
		if d := p.Duration(); d < 10*time.Second || d > 25*time.Minute {
			t.Fatalf("implausible LEO pass duration %v", d)
		}
		if p.MaxEl <= 5*math.Pi/180 {
			t.Fatalf("max elevation %v below threshold", p.MaxEl)
		}
		if p.MaxAt.Before(p.AOS) || p.MaxAt.After(p.LOS) {
			t.Fatalf("max-elevation time outside pass: %+v", p)
		}
		// Elevation at AOS/LOS should be near the threshold.
		for _, at := range []time.Time{p.AOS, p.LOS} {
			l, err := LookAt(el, st, at)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(l.ElevationDeg()-5) > 0.5 {
				t.Fatalf("boundary elevation %v deg, want ~5", l.ElevationDeg())
			}
		}
	}
}

func TestPassesDoNotOverlap(t *testing.T) {
	el := SSOElements(epoch)
	st := StanfordStation()
	passes, err := PredictPasses(el, st, epoch, 48*time.Hour, 5*math.Pi/180)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(passes); i++ {
		if passes[i].AOS.Before(passes[i-1].LOS) {
			t.Fatalf("passes %d and %d overlap", i-1, i)
		}
	}
}

func TestDopplerSignFlipsThroughPass(t *testing.T) {
	el := SSOElements(epoch)
	st := StanfordStation()
	passes, err := PredictPasses(el, st, epoch, 24*time.Hour, 10*math.Pi/180)
	if err != nil || len(passes) == 0 {
		t.Fatalf("no passes: %v", err)
	}
	p := passes[0]
	const carrier = 437.1e6 // Sapphire's ~437 MHz downlink
	early, err := LookAt(el, st, p.AOS.Add(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	late, err := LookAt(el, st, p.LOS.Add(-20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if early.DopplerHz(carrier) <= 0 {
		t.Fatalf("approaching Doppler should be positive, got %v", early.DopplerHz(carrier))
	}
	if late.DopplerHz(carrier) >= 0 {
		t.Fatalf("receding Doppler should be negative, got %v", late.DopplerHz(carrier))
	}
	// LEO at 437 MHz: |Doppler| is within ~12 kHz.
	if math.Abs(early.DopplerHz(carrier)) > 12000 {
		t.Fatalf("Doppler implausibly large: %v Hz", early.DopplerHz(carrier))
	}
}

func TestStationECEF(t *testing.T) {
	st := Station{LatitudeRad: 0, LongitudeRad: 0, AltitudeKm: 0}
	p := st.ECEF()
	if math.Abs(p.X-EarthRadius) > 1e-9 || math.Abs(p.Y) > 1e-9 || math.Abs(p.Z) > 1e-9 {
		t.Fatalf("equator/prime-meridian ECEF = %+v", p)
	}
	north := Station{LatitudeRad: math.Pi / 2}
	if p := north.ECEF(); math.Abs(p.Z-EarthRadius) > 1e-6 {
		t.Fatalf("north pole ECEF = %+v", p)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Fatal("Add wrong")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("Sub wrong")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatal("Scale wrong")
	}
	if a.Dot(b) != 32 {
		t.Fatal("Dot wrong")
	}
	if math.Abs((Vec3{3, 4, 0}).Norm()-5) > 1e-12 {
		t.Fatal("Norm wrong")
	}
}

// Property: orbital radius always stays within [a(1-e), a(1+e)].
func TestPropertyRadiusBounds(t *testing.T) {
	f := func(eRaw, mRaw uint16) bool {
		e := float64(eRaw) / 65536 * 0.8 // e in [0, 0.8)
		a := EarthRadius + 2000 + float64(mRaw%5000)
		el := Elements{
			SemiMajorKm:    a / (1 - e), // keep perigee above surface
			Eccentricity:   e,
			InclinationRad: 1.0,
			Epoch:          epoch,
		}
		if el.Validate() != nil {
			return true
		}
		for i := 0; i < 8; i++ {
			pos, _, err := el.StateECI(epoch.Add(time.Duration(i) * 13 * time.Minute))
			if err != nil {
				return false
			}
			r := pos.Norm()
			lo := el.SemiMajorKm * (1 - e)
			hi := el.SemiMajorKm * (1 + e)
			if r < lo-1e-6 || r > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: elevation never exceeds +90 degrees and azimuth stays in
// [0, 360).
func TestPropertyLookAngleRanges(t *testing.T) {
	el := SSOElements(epoch)
	st := StanfordStation()
	f := func(minutes uint16) bool {
		l, err := LookAt(el, st, epoch.Add(time.Duration(minutes)*time.Minute))
		if err != nil {
			return false
		}
		return l.AzimuthRad >= 0 && l.AzimuthRad < 2*math.Pi &&
			l.ElevationRad >= -math.Pi/2-1e-9 && l.ElevationRad <= math.Pi/2+1e-9 &&
			l.RangeKm > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
