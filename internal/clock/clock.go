// Package clock abstracts time so that the ground-station components, the
// failure detector and the recoverer run identically under the
// discrete-event simulator (virtual time, deterministic) and under the
// real-time runtime (wall-clock time).
package clock

import (
	"math/rand"
	"sync"
	"time"

	"github.com/recursive-restart/mercury/internal/sim"
)

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the callback if it has not fired yet and reports whether
	// it prevented the callback from running.
	Stop() bool
}

// Event is a prebound, fire-and-forget callback for the Schedule fast path
// (an alias of the kernel's event type so both layers share one contract).
type Event = sim.Event

// Clock is the time facility given to every actor in the system.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// AfterFunc schedules fn to run after d. fn runs on the runtime's
	// dispatch context; actors must not block inside it.
	AfterFunc(d time.Duration, fn func()) Timer
	// Schedule runs ev.Fire after d on the same dispatch context. It is
	// the allocation-lean path for high-volume fire-and-forget work (bus
	// hops): no Timer handle, no closure. Under the simulation kernel a
	// pooled Event costs zero allocations; real-time clocks emulate it
	// with AfterFunc.
	Schedule(d time.Duration, ev Event)
}

// Sim adapts a simulation kernel to the Clock interface.
type Sim struct {
	K *sim.Kernel
}

var _ Clock = Sim{}

// Now returns the kernel's virtual time.
func (s Sim) Now() time.Time { return s.K.Now() }

// AfterFunc schedules fn on the kernel's event queue.
func (s Sim) AfterFunc(d time.Duration, fn func()) Timer {
	return s.K.AfterFunc(d, fn)
}

// Schedule forwards to the kernel's zero-allocation fast path.
func (s Sim) Schedule(d time.Duration, ev Event) { s.K.Schedule(d, ev) }

// Real is a Clock backed by the machine clock. Callbacks fire on their own
// goroutines via time.AfterFunc; callers serialise via their own dispatch.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc wraps time.AfterFunc.
func (Real) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

// Schedule emulates the fast path with time.AfterFunc; wall-clock runs do
// not need the allocation guarantee.
func (Real) Schedule(d time.Duration, ev Event) { time.AfterFunc(d, ev.Fire) }

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Scaled is a real-time clock that compresses durations by Factor, so that
// a simulation calibrated in "paper seconds" can be demonstrated live in a
// fraction of the time (e.g. Factor 10 makes a 21 s pbcom restart take
// 2.1 s of wall time). Now still returns wall time.
type Scaled struct {
	Inner  Clock
	Factor float64
}

var _ Clock = Scaled{}

// Now returns the inner clock's time.
func (s Scaled) Now() time.Time { return s.Inner.Now() }

// AfterFunc schedules fn after d divided by Factor.
func (s Scaled) AfterFunc(d time.Duration, fn func()) Timer {
	return s.Inner.AfterFunc(s.compress(d), fn)
}

// Schedule forwards the fast path with the same compression.
func (s Scaled) Schedule(d time.Duration, ev Event) {
	s.Inner.Schedule(s.compress(d), ev)
}

func (s Scaled) compress(d time.Duration) time.Duration {
	f := s.Factor
	if f <= 0 {
		f = 1
	}
	return time.Duration(float64(d) / f)
}

// Ticker repeatedly invokes fn every period until stopped. It is built on
// Clock.AfterFunc so it works under both runtimes.
type Ticker struct {
	mu      sync.Mutex
	clk     Clock
	period  time.Duration
	fn      func()
	tickFn  func() // t.tick bound once, so re-arming allocates no closure
	timer   Timer
	stopped bool
}

// NewTicker starts a ticker that calls fn every period. The first call
// happens one period from now.
func NewTicker(clk Clock, period time.Duration, fn func()) *Ticker {
	t := &Ticker{clk: clk, period: period, fn: fn}
	t.tickFn = t.tick
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.clk.AfterFunc(t.period, t.tickFn)
}

func (t *Ticker) tick() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.arm()
	fn := t.fn
	t.mu.Unlock()
	fn()
}

// Stop halts the ticker. It is safe to call more than once.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Jitter returns d multiplied by a factor drawn uniformly from
// [1-frac, 1+frac]. It is used to de-synchronise periodic activity.
func Jitter(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * f)
}
